// Experiments T1-ECC / T1-RADIUS rows: all eccentricities and the radius,
// exact in Theta(n) (Lemmas 2, 4) vs (x,1+eps) in O(n/D + D) (Theorem 4,
// Corollary 4), plus the O(D) (x,2) bound of Remark 1.
#include <cstdio>

#include "bench_util.h"
#include "core/apsp_applications.h"
#include "core/ecc_approx.h"
#include "graph/generators.h"
#include "seq/properties.h"

using namespace dapsp;

namespace {

void ecc_error_profile() {
  const Graph g = gen::path_of_cliques(16, 32);  // n=512, D=46
  const auto truth = seq::eccentricities(g);
  bench::Table t(
      "Eccentricity estimates, path_of_cliques(16,32): error distribution");
  t.header({"eps", "k", "max_err", "avg_err", "rounds", "exact_rounds"});
  const auto exact = core::distributed_eccentricities(g);
  for (const double eps : {2.0, 1.0, 0.5, 0.25}) {
    const auto r = core::run_ecc_approx(g, {.epsilon = eps});
    std::uint32_t max_err = 0;
    double sum_err = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint32_t err = r.ecc_estimate[v] - truth[v];
      max_err = std::max(max_err, err);
      sum_err += err;
    }
    t.cell(eps);
    t.cell(std::uint64_t{r.k});
    t.cell(std::uint64_t{max_err});
    t.cell(sum_err / g.num_nodes());
    t.cell(r.stats.rounds);
    t.cell(exact.stats.rounds);
    t.end_row();
  }
  bench::note("errors never exceed k = floor(eps*D0/8) (Theorem 4).");
}

void radius_table() {
  bench::Table t("Radius: exact (Lemma 4) vs estimates");
  t.header({"family", "radius", "exact_rnds", "apx_rad", "apx_rnds",
            "2apx(D0/2)"});
  struct Case {
    const char* name;
    Graph g;
  };
  const Case cases[] = {
      {"path400", gen::path(400)},
      {"grid20x20", gen::grid(20, 20)},
      {"lollipop", gen::lollipop(60, 340)},
      {"rand400", gen::random_connected(400, 800, 11)},
  };
  for (const Case& c : cases) {
    const auto exact = core::distributed_radius(c.g);
    const auto approx = core::run_ecc_approx(c.g, {.epsilon = 0.5});
    const auto two = core::distributed_diameter_2approx(c.g);
    t.cell(std::string(c.name));
    t.cell(std::uint64_t{exact.value});
    t.cell(exact.stats.rounds);
    t.cell(std::uint64_t{approx.radius_estimate});
    t.cell(approx.stats.rounds);
    t.cell(std::uint64_t{two.value / 2});
    t.end_row();
  }
  bench::note("Remark 1: ecc(leader) = D0/2 is a (x,2) radius estimate in "
              "Theta(D) rounds.");
}

}  // namespace

int main() {
  std::printf("# bench_eccentricity — Table 1, eccentricity & radius rows\n");
  ecc_error_profile();
  radius_table();
  return 0;
}
