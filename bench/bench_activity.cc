// "Figure": the phase structure of Algorithm 1, visible as message activity
// per round. The paper has no figures; this is the closest visual artifact —
// the tree-build spike, the long staggered-flood plateau driven by the DFS
// pebble (Lemma 1: constant per-edge load throughout), and the aggregation
// tail, all readable from the profile.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/pebble_apsp.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void profile(const char* name, const Graph& g) {
  core::ApspOptions opt;
  opt.engine.record_activity = true;
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto& act = r.round_activity;

  std::printf("\n== Activity profile: Algorithm 1 on %s (%llu rounds) ==\n",
              name, static_cast<unsigned long long>(r.stats.rounds));
  // Bucket the rounds into a fixed-width profile.
  const std::size_t width = 72;
  const std::size_t per = std::max<std::size_t>(1, act.size() / width);
  std::vector<double> buckets;
  for (std::size_t i = 0; i < act.size(); i += per) {
    double sum = 0;
    for (std::size_t j = i; j < std::min(i + per, act.size()); ++j) {
      sum += static_cast<double>(act[j]);
    }
    buckets.push_back(sum / static_cast<double>(per));
  }
  const double peak = *std::max_element(buckets.begin(), buckets.end());
  const char* shades = " .:-=+*#%@";
  std::string line;
  for (const double b : buckets) {
    const int level = static_cast<int>(b / (peak + 1e-9) * 9.0);
    line += shades[level];
  }
  std::printf("  msgs/round  [%s]\n", line.c_str());
  std::printf("  peak %.0f msgs/round; phases: tree build | pebble+floods "
              "(flat: Lemma 1) | aggregation\n", peak);
}

}  // namespace

int main() {
  std::printf("# bench_activity — Algorithm 1 phase structure\n");
  profile("path(256)", gen::path(256));
  profile("grid(16x16)", gen::grid(16, 16));
  profile("random(256, m=512)", gen::random_connected(256, 256, 3));
  return 0;
}
