// Experiments T1-CENTER / T1-P.VERTICES rows: exact in Theta(n)
// (Lemmas 5, 6) vs (x,1+eps) sets in O(n/D + D) (Corollary 4) vs the
// trivial 0-round (x,2)-approximation of Remark 2 (all nodes).
#include <cstdio>

#include "bench_util.h"
#include "core/apsp_applications.h"
#include "core/ecc_approx.h"
#include "graph/generators.h"
#include "seq/properties.h"

using namespace dapsp;

namespace {

void run_case(const char* name, const Graph& g) {
  const auto exact_c = core::distributed_center(g);
  const auto exact_p = core::distributed_peripheral(g);
  const auto approx = core::run_ecc_approx(g, {.epsilon = 0.5});

  bench::Table t(std::string("Center / peripheral vertices on ") + name);
  t.header({"set", "exact_size", "exact_rnds", "apx_size", "apx_rnds",
            "Rem.2_size"});
  t.cell(std::string("center"));
  t.cell(std::uint64_t{exact_c.members.size()});
  t.cell(exact_c.stats.rounds);
  t.cell(std::uint64_t{approx.center_approx.size()});
  t.cell(approx.stats.rounds);
  t.cell(std::uint64_t{g.num_nodes()});
  t.end_row();
  t.cell(std::string("peripheral"));
  t.cell(std::uint64_t{exact_p.members.size()});
  t.cell(exact_p.stats.rounds);
  t.cell(std::uint64_t{approx.peripheral_approx.size()});
  t.cell(approx.stats.rounds);
  t.cell(std::uint64_t{g.num_nodes()});
  t.end_row();
}

}  // namespace

int main() {
  std::printf(
      "# bench_center_periphery — Table 1, center & peripheral rows\n");
  run_case("path(401)", gen::path(401));
  run_case("lollipop(50, 350)", gen::lollipop(50, 350));
  run_case("grid(20,20)", gen::grid(20, 20));
  run_case("caterpillar(100,3)", gen::caterpillar(100, 3));
  run_case("rand(400, 800)", gen::random_connected(400, 800, 23));
  bench::note(
      "the (x,1+eps) sets always contain the true sets (Cor. 4) and are far "
      "smaller than Remark 2's trivial all-nodes answer.");
  return 0;
}
