// Overload robustness gauge for the serving tier (core/resilience.h,
// DESIGN.md section 18): latency and shed-rate vs offered load under the
// seeded virtual-clock overload injector. Not a paper experiment — this is
// the harness that keeps the admission controller's promise honest: under
// 4x-saturation offered load, ADMITTED interactive requests still finish
// near their unloaded latency, the excess is shed EXPLICITLY (counted, not
// silently queued to death), and nothing served ever overclaims its
// freshness (a brownout estimate or truncated scan never reports exact).
//
// Everything here runs on the virtual clock, so the curve is bit-identical
// across hosts and runs: wall-clock only shows up as the (reported, never
// asserted) sim-execution throughput.
//
// Results land in BENCH_resilience.json in the working directory, with the
// host's hardware thread count recorded (house convention), the saturation
// offered-load (requests/sec of virtual time), and one row per offered-load
// multiplier {0.25, 0.5, 1, 2, 4}.
//
// Modes:
//   --smoke     tiny instance (n = 64, 3000 requests); used by
//               check.sh --overload-smoke.
//   --assert    fail (exit 1) unless the robustness floor holds:
//                 * same-seed reruns produce identical digests,
//                 * offered == admitted + shed on every row (no silent
//                   drops), zero overclaims on every row,
//                 * at 4x saturation, sheds > 0 (overload is refused, not
//                   absorbed) and p99 of admitted interactive requests is
//                   within 5x the unloaded (0.25x) p99,
//                 * goodput (exact + approximate answers per virtual
//                   second) at 4x is no lower than at 0.25x.
//   --n N       snapshot size (default 256).
//   --requests R  arrivals per row (default 30000).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_labels.h"
#include "core/query.h"
#include "core/resilience.h"
#include "graph/generators.h"
#include "seq/apsp.h"

using namespace dapsp;
using namespace dapsp::core;

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct Row {
  double multiplier = 0;            // offered load / saturation
  std::uint64_t arrivals_per_sec = 0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_rate = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_queue_wait = 0;
  double shed_pct = 0;
  std::uint64_t p50_interactive_us = 0;
  std::uint64_t p99_interactive_us = 0;
  std::uint64_t p99_batch_us = 0;
  double goodput_per_sec = 0;       // exact + approximate per virtual sec
  std::uint64_t deadline_truncated = 0;
  std::uint64_t approximate_served = 0;
  std::uint64_t brownout_enters = 0;
  std::uint64_t overclaims = 0;
  std::uint64_t end_us = 0;         // virtual end of the run
  std::uint64_t digest = 0;
  double wall_seconds = 0;
};

std::vector<Row> g_rows;

void record(Row r) {
  std::printf(
      "%4.2fx  offered=%-6llu shed=%5.1f%%  p99_int=%4lluus p99_bat=%4lluus  "
      "goodput=%9.0f/s  approx=%-5llu trunc=%-5llu  (%.3fs wall)\n",
      r.multiplier, static_cast<unsigned long long>(r.offered), r.shed_pct,
      static_cast<unsigned long long>(r.p99_interactive_us),
      static_cast<unsigned long long>(r.p99_batch_us), r.goodput_per_sec,
      static_cast<unsigned long long>(r.approximate_served),
      static_cast<unsigned long long>(r.deadline_truncated), r.wall_seconds);
  g_rows.push_back(r);
}

void write_json(std::uint32_t n, std::uint64_t saturation) {
  std::FILE* f = std::fopen("BENCH_resilience.json", "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\n  \"hardware_threads\": %u,\n  \"n\": %u,\n"
               "  \"saturation_arrivals_per_sec\": %llu,\n  \"results\": [\n",
               hardware_threads(), n,
               static_cast<unsigned long long>(saturation));
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(
        f,
        "    {\"multiplier\": %.2f, \"arrivals_per_sec\": %llu, "
        "\"offered\": %llu, \"admitted\": %llu, "
        "\"shed_rate\": %llu, \"shed_queue_full\": %llu, "
        "\"shed_queue_wait\": %llu, \"shed_pct\": %.2f, "
        "\"p50_interactive_us\": %llu, \"p99_interactive_us\": %llu, "
        "\"p99_batch_us\": %llu, \"goodput_per_sec\": %.0f, "
        "\"deadline_truncated\": %llu, \"approximate_served\": %llu, "
        "\"brownout_enters\": %llu, \"overclaims\": %llu, "
        "\"virtual_end_us\": %llu, \"digest\": \"%016llx\"}%s\n",
        r.multiplier, static_cast<unsigned long long>(r.arrivals_per_sec),
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.admitted),
        static_cast<unsigned long long>(r.shed_rate),
        static_cast<unsigned long long>(r.shed_queue_full),
        static_cast<unsigned long long>(r.shed_queue_wait), r.shed_pct,
        static_cast<unsigned long long>(r.p50_interactive_us),
        static_cast<unsigned long long>(r.p99_interactive_us),
        static_cast<unsigned long long>(r.p99_batch_us), r.goodput_per_sec,
        static_cast<unsigned long long>(r.deadline_truncated),
        static_cast<unsigned long long>(r.approximate_served),
        static_cast<unsigned long long>(r.brownout_enters),
        static_cast<unsigned long long>(r.overclaims),
        static_cast<unsigned long long>(r.end_us),
        static_cast<unsigned long long>(r.digest),
        i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_resilience.json (%zu rows)\n", g_rows.size());
}

// The bench admission policy: interactive gets real concurrency and a tight
// wait bound (this is what makes the 5x-p99 promise provable — an admitted
// interactive request can wait at most max_wait_us before its scan starts);
// batch and background get starved first, background also rate-limited so
// the shed_rate counter exercises on the curve.
OverloadConfig curve_config(NodeId n, std::uint64_t requests) {
  OverloadConfig cfg;
  cfg.seed = 2026;
  cfg.requests = requests;
  cfg.deadline_us = n / 32;  // budget = n/2 cells: row scans truncate,
                             // p2p batches (8 cells) always fit
  cfg.batch_pairs = 8;
  cfg.k_nearest_k = 8;
  cfg.transient_failure_ppm = 0;  // retries are gauged separately below

  auto& inter = cfg.admission.policy(PriorityClass::kInteractive);
  inter.max_concurrent = 4;
  inter.max_queue = 16;
  inter.max_wait_us = 10;
  auto& batch = cfg.admission.policy(PriorityClass::kBatch);
  batch.max_concurrent = 2;
  batch.max_queue = 8;
  batch.max_wait_us = 200;
  auto& bg = cfg.admission.policy(PriorityClass::kBackground);
  bg.tokens_per_sec = 20'000;
  bg.burst = 4;
  bg.max_concurrent = 1;
  bg.max_queue = 4;
  bg.max_wait_us = 500;

  cfg.brownout.enter_queue_depth = 6;
  cfg.brownout.exit_queue_depth = 2;
  return cfg;
}

Row run_row(const QuerySnapshot& snap, OverloadConfig cfg, double mult,
            std::uint64_t saturation) {
  cfg.arrivals_per_sec =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     static_cast<double>(saturation) * mult));
  const double t0 = now_sec();
  const SimReport rep = run_overload_sim(snap, cfg);
  Row r;
  r.multiplier = mult;
  r.arrivals_per_sec = cfg.arrivals_per_sec;
  r.offered = rep.offered;
  r.admitted = rep.admitted;
  r.shed_rate = rep.shed_rate;
  r.shed_queue_full = rep.shed_queue_full;
  r.shed_queue_wait = rep.shed_queue_wait;
  r.shed_pct = rep.offered == 0
                   ? 0
                   : 100.0 * static_cast<double>(rep.shed_total()) /
                         static_cast<double>(rep.offered);
  r.p50_interactive_us = rep.quantile_us(PriorityClass::kInteractive, 0.50);
  r.p99_interactive_us = rep.quantile_us(PriorityClass::kInteractive, 0.99);
  r.p99_batch_us = rep.quantile_us(PriorityClass::kBatch, 0.99);
  r.goodput_per_sec =
      rep.end_us == 0
          ? 0
          : static_cast<double>(rep.exact_served + rep.approximate_served) *
                1e6 / static_cast<double>(rep.end_us);
  r.deadline_truncated = rep.deadline_truncated;
  r.approximate_served = rep.approximate_served;
  r.brownout_enters = rep.brownout_enters;
  r.overclaims = rep.overclaims;
  r.end_us = rep.end_us;
  r.digest = rep.digest;
  r.wall_seconds = now_sec() - t0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool assert_floor = false;
  NodeId n = 256;
  std::uint64_t requests = 30'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--assert") == 0) {
      assert_floor = true;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }
  if (smoke) {
    n = 64;
    requests = 3'000;
  }

  std::printf("building n=%u snapshot with distance labels...\n", n);
  const Graph g = gen::random_connected(n, 2 * n, 1234);
  const DistanceMatrix dist = seq::apsp(g);
  const std::vector<std::uint8_t> active(n, 1);
  const std::vector<RowStatus> status(n, RowStatus::kExact);
  const DistanceLabeling labels = build_distance_labels(g, 2);
  const QuerySnapshot snap =
      QuerySnapshot::from_blob(encode_query_snapshot_tables(
          dist, nullptr, active, status, /*epoch=*/1, /*sequence=*/1,
          /*degraded=*/false, &labels));

  const OverloadConfig base = curve_config(n, requests);
  const std::uint64_t saturation = saturation_arrivals_per_sec(base, n);
  std::printf("saturation offered load: %llu requests/sec (virtual)\n",
              static_cast<unsigned long long>(saturation));

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ++failures;
    }
  };

  // Determinism gate: the whole gauge is worthless if the curve drifts.
  {
    const Row a = run_row(snap, base, 1.0, saturation);
    const Row b = run_row(snap, base, 1.0, saturation);
    check(a.digest == b.digest && a.end_us == b.end_us,
          "same-seed reruns diverged (digest/end_us)");
  }

  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    record(run_row(snap, base, mult, saturation));
  }

  // Retry machinery under a 10% transient-failure storm at saturation:
  // reported in stdout only (latency floors are gauged on the clean curve).
  {
    OverloadConfig storm = base;
    storm.transient_failure_ppm = 100'000;
    storm.retry.max_attempts = 3;
    storm.retry.base_us = 2;
    storm.retry.cap_us = 20;
    storm.retry.seed = base.seed;
    storm.arrivals_per_sec = saturation;
    const SimReport rep = run_overload_sim(snap, storm);
    std::printf(
        "retry storm @1x: failures=%llu retries=%llu exhausted=%llu "
        "stale=%llu overclaims=%llu\n",
        static_cast<unsigned long long>(rep.transient_failures),
        static_cast<unsigned long long>(rep.retries),
        static_cast<unsigned long long>(rep.retry_exhausted),
        static_cast<unsigned long long>(rep.stale_served),
        static_cast<unsigned long long>(rep.overclaims));
    check(rep.overclaims == 0, "retry storm produced overclaims");
    check(rep.transient_failures == rep.retries + rep.retry_exhausted,
          "retry accounting identity broke under the storm");
  }

  write_json(n, saturation);

  if (assert_floor) {
    const Row& low = g_rows[0];    // 0.25x
    const Row& high = g_rows[4];   // 4x
    for (const Row& r : g_rows) {
      check(r.offered == r.admitted + r.shed_rate + r.shed_queue_full +
                             r.shed_queue_wait,
            "offered != admitted + shed (silent drop)");
      check(r.overclaims == 0, "a degraded answer claimed exact");
    }
    check(high.shed_rate + high.shed_queue_full + high.shed_queue_wait > 0,
          "4x saturation shed nothing — overload was absorbed silently");
    check(high.p99_interactive_us <=
              5 * std::max<std::uint64_t>(low.p99_interactive_us, 1),
          "admitted interactive p99 at 4x exceeds 5x the unloaded p99");
    check(high.goodput_per_sec >= low.goodput_per_sec,
          "goodput at 4x fell below the unloaded floor");
    if (failures == 0) {
      std::printf("all robustness floors hold\n");
    }
  }
  return failures == 0 ? 0 : 1;
}
