// Shared helpers for the experiment harnesses: aligned table printing and
// log-log scaling fits. Each bench binary reproduces one row group of the
// paper's Table 1 (see DESIGN.md section 4) by printing measured rounds next
// to the paper's predicted bound.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace dapsp::bench {

// Fits rounds ~ c * x^alpha by least squares on (log x, log y); returns
// alpha. Used to check measured growth against the paper's exponent.
inline double fit_exponent(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i] > 0 ? y[i] : 1.0);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double d = static_cast<double>(n) * sxx - sx * sx;
  if (d == 0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / d;
}

struct Table {
  explicit Table(std::string title) { std::printf("\n== %s ==\n", title.c_str()); }

  void header(const std::vector<std::string>& cols) {
    for (const auto& c : cols) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%14s", "------------");
    std::printf("\n");
  }

  void cell(const std::string& s) { std::printf("%14s", s.c_str()); }
  void cell(std::uint64_t v) { std::printf("%14llu", static_cast<unsigned long long>(v)); }
  void cell(double v) { std::printf("%14.2f", v); }
  void end_row() { std::printf("\n"); }
};

inline void note(const std::string& s) { std::printf("   %s\n", s.c_str()); }

}  // namespace dapsp::bench
