// Long-running DAPSP service under churn (DESIGN.md section 14): three
// asserted experiment groups, every row appended to BENCH_service.json.
//
//  1. Churn soak — 2000-update seeded mutation streams (edge churn, node
//     join/leave) with crash-stops and stored-entry bit-rot interleaved, on
//     a random and a grid family. The service must end fully certified.
//
//  2. Repair-cost scaling — benign (fault-free, local) churn across n. The
//     dirty-region analyzer maps each batch to the invalidated rows and the
//     ladder heals exactly those, so mean engine rounds per update must grow
//     sublinearly in n (fit exponent < 0.75, against the O(n)-round full
//     recompute the paper's static Algorithm 1 would pay per change); every
//     successful epoch must also respect the O(|suspects| + D) round bound.
//
//  3. Checkpoint determinism — the checkpoint blob after a chaos stream is
//     bit-identical at 1, 2 and 8 engine threads, and a restore-continue run
//     ends bit-identical to the straight-through run.
//
//  4. Recovery — time from a cold DurableDapspService::recover() to a fully
//     certified service, as the journal suffix grows (checkpoints pinned at
//     epoch 0, so recovery replays the whole stream). The recovered state
//     must be bit-identical to the state the crashed run acknowledged.
//
// The bench exits nonzero if any certification, scaling, bound, or
// determinism assertion fails.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/durable.h"
#include "core/service.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dapsp {
namespace {

struct JsonRow {
  std::string section;  // "soak" | "scaling" | "checkpoint"
  std::string graph;
  NodeId n = 0;
  std::uint64_t updates = 0;
  double mean_rounds = 0.0;    // engine rounds per update, amortized
  double mean_suspects = 0.0;  // suspect rows per update, amortized
  std::uint64_t escalated = 0;
  std::uint64_t crashes = 0;
  std::uint64_t corrupted = 0;
  double exponent = 0.0;    // scaling rows: fitted rounds-vs-n exponent
  double recover_ms = 0.0;  // recovery rows: cold recover() wall time
  bool ok = false;
};

std::vector<JsonRow>& json_rows() {
  static std::vector<JsonRow> rows;
  return rows;
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = json_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(
        f,
        "  {\"section\": \"%s\", \"graph\": \"%s\", \"n\": %u, "
        "\"updates\": %llu, \"mean_rounds\": %.3f, \"mean_suspects\": %.3f, "
        "\"escalated\": %llu, \"crashes\": %llu, \"corrupted\": %llu, "
        "\"exponent\": %.3f, \"recover_ms\": %.3f, \"ok\": %s}%s\n",
        r.section.c_str(), r.graph.c_str(), r.n,
        static_cast<unsigned long long>(r.updates), r.mean_rounds,
        r.mean_suspects, static_cast<unsigned long long>(r.escalated),
        static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.corrupted), r.exponent,
        r.recover_ms, r.ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

struct RunResult {
  double mean_rounds = 0.0;
  double mean_suspects = 0.0;
  std::uint64_t escalated = 0;
  bool certified = false;
  bool bounds_ok = true;
  core::ServiceStats stats;
};

// Drives `updates` batches from one seeded plan through a fresh service.
RunResult drive(const Graph& g, const DeltaPlanConfig& pc,
                std::uint64_t updates, std::uint32_t scrub_every,
                bool final_scrub) {
  core::ServiceConfig cfg;
  cfg.scrub_every = scrub_every;
  core::DapspService svc(g, cfg);
  DeltaPlan plan(pc);
  RunResult r;
  std::uint64_t rounds = 0, suspects = 0;
  for (std::uint64_t u = 0; u < updates; ++u) {
    const ChurnBatch batch = plan.next(svc.dynamic_graph());
    const core::EpochReport ep = svc.step(batch);
    rounds += ep.stats.rounds;
    suspects += ep.suspect_rows;
    if (ep.escalated) ++r.escalated;
    if (ep.certified && !ep.bound_ok) r.bounds_ok = false;
  }
  if (final_scrub &&
      (svc.stats().corrupted_entries > 0 || !svc.fully_certified())) {
    svc.scrub();
  }
  r.mean_rounds = static_cast<double>(rounds) / static_cast<double>(updates);
  r.mean_suspects =
      static_cast<double>(suspects) / static_cast<double>(updates);
  r.certified = svc.fully_certified();
  r.stats = svc.stats();
  return r;
}

bool bench_soak(const Graph& g, const std::string& label,
                std::uint64_t updates) {
  DeltaPlanConfig pc;
  pc.seed = 17;
  pc.max_batch = 3;
  pc.crash_prob = 0.05;
  pc.corrupt_prob = 0.05;
  const RunResult r = drive(g, pc, updates, /*scrub_every=*/100,
                            /*final_scrub=*/true);

  bench::Table t("churn soak: " + label + " (n=" +
                 std::to_string(g.num_nodes()) + ", " +
                 std::to_string(updates) + " updates, crash+bit-rot)");
  t.header({"updates", "deltas", "crashes", "bit-rot", "escalated",
            "rows-rep", "certified"});
  t.cell(updates);
  t.cell(r.stats.deltas_applied);
  t.cell(r.stats.crashes);
  t.cell(r.stats.corrupted_entries);
  t.cell(r.escalated);
  t.cell(r.stats.rows_repaired);
  t.cell(std::string(r.certified ? "YES" : "NO"));
  t.end_row();
  const bool ok = r.certified && r.bounds_ok && r.stats.epochs_failed == 0;
  bench::note(std::string("ends fully certified, zero failed epochs, every "
                          "round bound held: ") +
              (ok ? "OK" : "FAIL"));

  JsonRow row;
  row.section = "soak";
  row.graph = label;
  row.n = g.num_nodes();
  row.updates = updates;
  row.mean_rounds = r.mean_rounds;
  row.mean_suspects = r.mean_suspects;
  row.escalated = r.escalated;
  row.crashes = r.stats.crashes;
  row.corrupted = r.stats.corrupted_entries;
  row.ok = ok;
  json_rows().push_back(row);
  return ok;
}

// Benign local churn: edge flutter. Each update removes one random
// non-bridge edge; the next update reinserts it. Density never drifts, so
// the true affected region stays local — redundant-path removals are
// screened clean by the analyzer's alternative-parent check, and the
// matching reinsert only dirties the rows the removal actually changed.
// (Random chord *inserts* are excluded on purpose: a fresh shortcut
// legitimately changes distances for Theta(n) sources — that cost is real,
// not analyzer pessimism, and the escalation ladder is the right tool.)
RunResult drive_flutter(const Graph& g, std::uint64_t updates,
                        std::uint64_t seed) {
  core::ServiceConfig cfg;
  core::DapspService svc(g, cfg);
  Rng rng(seed);
  std::optional<Edge> pending;  // removed last update, reinserted this one
  RunResult r;
  std::uint64_t rounds = 0, suspects = 0;
  for (std::uint64_t u = 0; u < updates; ++u) {
    ChurnBatch batch;
    if (pending) {
      batch.deltas.push_back({DeltaKind::kEdgeInsert, pending->u, pending->v});
      pending.reset();
    } else {
      const DynamicGraph& dg = svc.dynamic_graph();
      const std::vector<Edge> edges = dg.sorted_edges();
      for (std::size_t tries = 0; tries < edges.size(); ++tries) {
        const Edge e = edges[rng.below(edges.size())];
        if (!dg.edge_is_bridge(e.u, e.v)) {
          batch.deltas.push_back({DeltaKind::kEdgeRemove, e.u, e.v});
          pending = e;
          break;
        }
      }
    }
    const core::EpochReport ep = svc.step(batch);
    rounds += ep.stats.rounds;
    suspects += ep.suspect_rows;
    if (ep.escalated) ++r.escalated;
    if (ep.certified && !ep.bound_ok) r.bounds_ok = false;
  }
  r.mean_rounds = static_cast<double>(rounds) / static_cast<double>(updates);
  r.mean_suspects =
      static_cast<double>(suspects) / static_cast<double>(updates);
  r.certified = svc.fully_certified();
  r.stats = svc.stats();
  return r;
}

bool bench_scaling(const std::string& family, const std::vector<Graph>& gs,
                   std::uint64_t updates) {
  bench::Table t("repair cost vs n: " + family +
                 " (benign edge flutter, " + std::to_string(updates) +
                 " updates each)");
  t.header({"n", "mean-rounds", "mean-susp", "escalated", "certified"});
  std::vector<double> xs, ys;
  bool ok = true;
  for (const Graph& g : gs) {
    const RunResult r = drive_flutter(g, updates, 23);
    t.cell(std::uint64_t{g.num_nodes()});
    t.cell(r.mean_rounds);
    t.cell(r.mean_suspects);
    t.cell(r.escalated);
    t.cell(std::string(r.certified ? "YES" : "NO"));
    t.end_row();
    ok = ok && r.certified && r.bounds_ok;
    xs.push_back(static_cast<double>(g.num_nodes()));
    ys.push_back(r.mean_rounds);

    JsonRow row;
    row.section = "scaling";
    row.graph = family;
    row.n = g.num_nodes();
    row.updates = updates;
    row.mean_rounds = r.mean_rounds;
    row.mean_suspects = r.mean_suspects;
    row.escalated = r.escalated;
    row.ok = r.certified && r.bounds_ok;
    json_rows().push_back(row);
  }
  const double alpha = bench::fit_exponent(xs, ys);
  const bool sublinear = alpha < 0.75;
  ok = ok && sublinear;
  json_rows().back().exponent = alpha;
  bench::note("rounds-per-update ~ n^" + std::to_string(alpha) +
              " (sublinear target < 0.75, full recompute would be ~1): " +
              (sublinear ? "OK" : "FAIL"));
  return ok;
}

bool bench_checkpoint(const Graph& g, const std::string& label) {
  constexpr std::uint64_t kUpdates = 60;
  DeltaPlanConfig pc;
  pc.seed = 29;
  pc.crash_prob = 0.05;
  pc.corrupt_prob = 0.05;

  // One full run per thread count, blob captured at the end.
  std::vector<std::vector<std::uint8_t>> blobs;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    core::ServiceConfig cfg;
    cfg.engine.threads = threads;
    core::DapspService svc(g, cfg);
    DeltaPlan plan(pc);
    for (std::uint64_t u = 0; u < kUpdates; ++u) {
      svc.step(plan.next(svc.dynamic_graph()));
    }
    blobs.push_back(svc.checkpoint_blob());
  }
  const bool threads_ok = blobs[0] == blobs[1] && blobs[0] == blobs[2];

  // Restore-continue: checkpoint halfway, restore, finish; must match the
  // straight-through blob bit for bit.
  core::ServiceConfig cfg;
  core::DapspService svc(g, cfg);
  DeltaPlan plan(pc);
  for (std::uint64_t u = 0; u < kUpdates / 2; ++u) {
    svc.step(plan.next(svc.dynamic_graph()));
  }
  const std::uint64_t words[2] = {plan.rng_state(), plan.batches_generated()};
  const std::vector<std::uint8_t> mid = svc.checkpoint_blob(words);
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(mid.data()), mid.size()));
  std::vector<std::uint64_t> restored_words;
  core::DapspService svc2 =
      core::DapspService::restore(in, cfg, &restored_words);
  DeltaPlan plan2(pc);
  plan2.resume(restored_words[0], restored_words[1]);
  for (std::uint64_t u = kUpdates / 2; u < kUpdates; ++u) {
    svc.step(plan.next(svc.dynamic_graph()));
    svc2.step(plan2.next(svc2.dynamic_graph()));
  }
  const bool resume_ok = svc.checkpoint_blob() == svc2.checkpoint_blob();

  bench::Table t("checkpoint determinism: " + label);
  t.header({"updates", "bytes", "threads-1/2/8", "restore-cont"});
  t.cell(kUpdates);
  t.cell(std::uint64_t{blobs[0].size()});
  t.cell(std::string(threads_ok ? "IDENTICAL" : "DIVERGED"));
  t.cell(std::string(resume_ok ? "IDENTICAL" : "DIVERGED"));
  t.end_row();

  JsonRow row;
  row.section = "checkpoint";
  row.graph = label;
  row.n = g.num_nodes();
  row.updates = kUpdates;
  row.ok = threads_ok && resume_ok;
  json_rows().push_back(row);
  return threads_ok && resume_ok;
}

bool bench_recovery(const Graph& g, const std::string& label) {
  namespace fs = std::filesystem;
  bench::Table t("recovery: cold recover() vs journal suffix length (" +
                 label + ", n=" + std::to_string(g.num_nodes()) + ")");
  t.header({"journal-len", "replayed", "recover-ms", "identical",
            "certified"});
  DeltaPlanConfig pc;
  pc.seed = 31;
  pc.max_batch = 3;
  pc.crash_prob = 0.05;
  pc.corrupt_prob = 0.05;
  bool ok = true;
  for (const std::uint64_t suffix : {4u, 8u, 16u, 32u}) {
    const fs::path dir = fs::temp_directory_path() /
                         ("dapsp_bench_rec_" + label + "_" +
                          std::to_string(suffix));
    fs::remove_all(dir);
    core::DurableConfig dc;
    dc.dir = dir.string();
    dc.checkpoint_every = 0;  // only the epoch-0 rotation: recovery replays
                              // the entire acknowledged stream from the WAL
    std::vector<std::uint8_t> want;
    {
      core::DurableDapspService d(g, dc);
      DeltaPlan plan(pc);
      for (std::uint64_t u = 0; u < suffix; ++u) {
        const ChurnBatch b = plan.next(d.service().dynamic_graph());
        const std::uint64_t words[3] = {plan.rng_state(),
                                        plan.batches_generated(), u + 1};
        d.ack_and_step(b, words);
      }
      want = d.service().checkpoint_blob(d.plan_words());
    }  // dropped without a final rotation, like a crash after the last ack

    const auto t0 = std::chrono::steady_clock::now();
    core::RecoveryReport rr;
    core::DurableDapspService d =
        core::DurableDapspService::recover(dc, &g, &rr);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const bool identical =
        d.service().checkpoint_blob(d.plan_words()) == want;
    const bool certified = d.service().fully_certified();
    const bool row_ok =
        identical && certified && rr.batches_replayed == suffix;
    ok = ok && row_ok;
    fs::remove_all(dir);

    t.cell(suffix);
    t.cell(rr.batches_replayed);
    t.cell(ms);
    t.cell(std::string(identical ? "IDENTICAL" : "DIVERGED"));
    t.cell(std::string(certified ? "YES" : "NO"));
    t.end_row();

    JsonRow row;
    row.section = "recovery";
    row.graph = label;
    row.n = g.num_nodes();
    row.updates = suffix;
    row.recover_ms = ms;
    row.ok = row_ok;
    json_rows().push_back(row);
  }
  bench::note("every recovery bit-identical to the acknowledged state and "
              "fully certified: " + std::string(ok ? "OK" : "FAIL"));
  return ok;
}

}  // namespace
}  // namespace dapsp

int main() {
  using namespace dapsp;
  std::printf("Long-running DAPSP service under churn and faults.\n");
  std::printf("Every stream is seeded -- each row is reproducible.\n");

  bool ok = bench_soak(gen::random_connected(24, 20, 11), "random", 2000);
  ok = bench_soak(gen::grid(6, 4), "grid", 2000) && ok;

  std::vector<Graph> randoms, grids;
  for (const NodeId n : {16u, 32u, 64u, 128u}) {
    randoms.push_back(gen::random_connected(n, n, 7));
  }
  for (const NodeId side : {4u, 6u, 8u, 11u}) {
    grids.push_back(gen::grid(side, side));
  }
  ok = bench_scaling("random", randoms, 40) && ok;
  ok = bench_scaling("grid", grids, 40) && ok;

  ok = bench_checkpoint(gen::random_connected(20, 16, 11), "random") && ok;
  ok = bench_recovery(gen::random_connected(20, 16, 11), "random") && ok;

  write_json("BENCH_service.json");
  if (!ok) {
    std::printf("FAIL: service certification/scaling/determinism regressed\n");
    return 1;
  }
  return 0;
}
