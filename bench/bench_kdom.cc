// Experiment k-dominating set (Lemma 10 substitute): size <= n/(k+1) + 1 in
// O(D + k) rounds — the engine under Theorems 4 and 5.
#include <cstdio>

#include "bench_util.h"
#include "core/kdom.h"
#include "graph/generators.h"
#include "seq/properties.h"

using namespace dapsp;

namespace {

void sweep_k(const char* name, const Graph& g) {
  bench::Table t(std::string("k-dominating set on ") + name +
                 " (paper: |DOM| <= n/(k+1), O(D + k) rounds)");
  t.header({"k", "|DOM|", "n/(k+1)+1", "rounds", "dominates"});
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const core::KdomResult r = core::run_kdom(g, k);
    t.cell(std::uint64_t{k});
    t.cell(std::uint64_t{r.dom.size()});
    t.cell(std::uint64_t{g.num_nodes() / (k + 1) + 1});
    t.cell(r.stats.rounds);
    t.cell(std::string(seq::is_k_dominating(g, r.dom, k) ? "yes" : "NO!"));
    t.end_row();
  }
}

}  // namespace

int main() {
  std::printf("# bench_kdom — Lemma 10 substrate\n");
  sweep_k("path(512)", gen::path(512));
  sweep_k("grid(23,22)", gen::grid(23, 22));
  sweep_k("rand(512,1024)", gen::random_connected(512, 1024, 17));
  sweep_k("binary tree(511)", gen::balanced_tree(511, 2));
  return 0;
}
