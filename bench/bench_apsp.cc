// Experiment T1-APSP-exact (Table 1 row "APSP", column "exact"):
// Algorithm 1 computes APSP in Theta(n) rounds (Theorem 1, Corollary 3).
//
// We sweep n over several graph families, print measured rounds, rounds/n,
// and the fitted growth exponent, and contrast against the unmodified
// n-fold-BFS baseline (Theta(n*D)) and against Algorithm 2 with S = V
// (also O(n), the paper's "alternative, less elegant APSP").
#include <cstdio>
#include <vector>

#include "baselines/naive_apsp.h"
#include "bench_util.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/properties.h"
#include "util/bits.h"

using namespace dapsp;

namespace {

struct Family {
  const char* name;
  Graph (*make)(NodeId);
};

Graph make_path(NodeId n) { return gen::path(n); }
Graph make_cycle(NodeId n) { return gen::cycle(n); }
Graph make_grid(NodeId n) {
  const auto side = static_cast<NodeId>(isqrt(n));
  return gen::grid(side, side);
}
Graph make_rand(NodeId n) { return gen::random_connected(n, 2 * n, 12345); }
Graph make_tree(NodeId n) { return gen::balanced_tree(n, 2); }

void sweep(const Family& fam) {
  bench::Table t(std::string("T1-APSP-exact on ") + fam.name +
                 " — Algorithm 1 (paper: Theta(n) rounds)");
  t.header({"n", "m", "D", "rounds", "rounds/n", "messages", "max_edge_bits"});
  std::vector<double> xs, ys;
  for (const NodeId n : {64u, 128u, 256u, 512u, 1024u}) {
    const Graph g = fam.make(n);
    const core::ApspResult r = core::run_pebble_apsp(g);
    const std::uint32_t diam = r.diameter;
    t.cell(std::uint64_t{g.num_nodes()});
    t.cell(std::uint64_t{g.num_edges()});
    t.cell(std::uint64_t{diam});
    t.cell(r.stats.rounds);
    t.cell(static_cast<double>(r.stats.rounds) / g.num_nodes());
    t.cell(r.stats.messages);
    t.cell(std::uint64_t{r.stats.max_edge_bits});
    t.end_row();
    xs.push_back(g.num_nodes());
    ys.push_back(static_cast<double>(r.stats.rounds));
  }
  bench::note("fitted exponent alpha (rounds ~ n^alpha): " +
              std::to_string(bench::fit_exponent(xs, ys)) +
              "   [paper: 1.0]");
}

void contrast() {
  bench::Table t(
      "APSP algorithm contrast on random_connected(n, 2n) — rounds");
  t.header({"n", "pebble(Alg1)", "ssp(S=V,Alg2)", "naive(n BFS)",
            "naive/pebble"});
  for (const NodeId n : {64u, 128u, 256u}) {
    const Graph g = gen::random_connected(n, 2 * n, 999);
    const auto pebble = core::run_pebble_apsp(g);
    std::vector<NodeId> all(n);
    for (NodeId v = 0; v < n; ++v) all[v] = v;
    const auto ssp = core::run_ssp(g, all);
    const auto naive = baselines::run_naive_apsp(g);
    t.cell(std::uint64_t{n});
    t.cell(pebble.stats.rounds);
    t.cell(ssp.stats.rounds);
    t.cell(naive.stats.rounds);
    t.cell(static_cast<double>(naive.stats.rounds) /
           static_cast<double>(pebble.stats.rounds));
    t.end_row();
  }
  bench::note(
      "paper: Alg 1 and Alg 2 (S=V) are Theta(n); the unmodified n-fold BFS "
      "is Theta(n*D).");
}

}  // namespace

int main() {
  std::printf("# bench_apsp — Table 1, APSP row (Thm 1, Thm 3, Cor 3)\n");
  const Family families[] = {
      {"path (D=n-1)", make_path},     {"cycle (D=n/2)", make_cycle},
      {"grid (D=2sqrt(n))", make_grid}, {"random (D=log n)", make_rand},
      {"binary tree", make_tree},
  };
  for (const Family& f : families) sweep(f);
  contrast();
  return 0;
}
