// Experiment 2-vs-4 (Section 7.2, Theorem 7): Algorithm 3 distinguishes
// diameter 2 from diameter 4 in O(sqrt(n log n)) rounds — contrast with the
// Omega(n/B) needed for 2 vs 3 (Theorem 6; see bench_lower_bounds).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/two_vs_four.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void sweep() {
  bench::Table t(
      "Algorithm 3 rounds vs n (paper: O(sqrt(n log n)); both branches)");
  t.header({"n", "family", "answer", "branch", "|S|", "rounds",
            "rounds/sqrt(nlogn)"});
  std::vector<double> xs, ys;
  for (const NodeId n : {64u, 128u, 256u, 512u}) {
    struct Case {
      const char* name;
      Graph g;
      std::uint32_t want;
    };
    const Case cases[] = {
        {"dense_d2", gen::dense_diameter2(n), 2},
        {"diam4", gen::diameter4((n - 3) / 2), 4},
    };
    for (const Case& c : cases) {
      const auto r = core::run_two_vs_four(c.g, {.seed = 3});
      const double ref = std::sqrt(static_cast<double>(c.g.num_nodes()) *
                                   std::log2(c.g.num_nodes() + 1.0));
      t.cell(std::uint64_t{c.g.num_nodes()});
      t.cell(std::string(c.name));
      t.cell(std::uint64_t{r.answer});
      t.cell(std::string(r.used_low_degree_branch ? "low-deg" : "sampled"));
      t.cell(std::uint64_t{r.num_sources});
      t.cell(r.stats.rounds);
      t.cell(static_cast<double>(r.stats.rounds) / ref);
      t.end_row();
      if (c.want == 2) {
        xs.push_back(static_cast<double>(c.g.num_nodes()));
        ys.push_back(static_cast<double>(r.stats.rounds));
      }
      if (r.answer != c.want) {
        bench::note("!! wrong answer (sampling failure) on this seed");
      }
    }
  }
  bench::note("fitted exponent on the dense (sampled-branch) family: " +
              std::to_string(bench::fit_exponent(xs, ys)) +
              "   [paper: 0.5 up to log factors]");
}

}  // namespace

int main() {
  std::printf("# bench_two_vs_four — Theorem 7 (Algorithm 3)\n");
  sweep();
  return 0;
}
