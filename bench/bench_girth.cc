// Experiments T1-GIRTH-* (Table 1, girth row):
//   exact:     O(n)                              (Lemma 7)
//   (x,1+eps): O(min{n/g + D log(D/g), n})       (Theorem 5)
//   selector:  Corollary 2
//
// The family tree_with_cycle(n, g) fixes girth g with small diameter, so the
// n/g cost factor is visible; cycle_with_chords gives denser cyclic inputs.
#include <cstdio>

#include "bench_util.h"
#include "core/combined.h"
#include "core/girth.h"
#include "core/girth_approx.h"
#include "graph/generators.h"
#include "seq/properties.h"

using namespace dapsp;

namespace {

void girth_sweep() {
  bench::Table t(
      "Girth: exact (Lemma 7) vs (x,1.5)-approx (Thm 5), n = 600, g sweep");
  t.header({"g", "exact_g", "exact_rnds", "apx_g", "apx_rnds", "iters",
            "exact/apx"});
  for (const NodeId girth : {4u, 8u, 16u, 32u, 64u}) {
    const Graph g = gen::tree_with_cycle(600, girth, 1);
    const auto exact = core::run_girth(g);
    const auto approx = core::run_girth_approx(g, {.epsilon = 0.5});
    t.cell(std::uint64_t{girth});
    t.cell(std::uint64_t{exact.girth});
    t.cell(exact.stats.rounds);
    t.cell(std::uint64_t{approx.girth_estimate});
    t.cell(approx.stats.rounds);
    t.cell(std::uint64_t{approx.iterations.size()});
    t.cell(static_cast<double>(exact.stats.rounds) /
           static_cast<double>(approx.stats.rounds));
    t.end_row();
  }
  bench::note(
      "paper: approx cost falls as g grows (n/g term); exact stays ~n.");
}

void epsilon_sweep() {
  const Graph g = gen::tree_with_cycle(600, 24, 2);
  bench::Table t("Girth approx: accuracy/cost vs eps (g = 24, n = 600)");
  t.header({"eps", "estimate", "ratio", "rounds", "iterations"});
  for (const double eps : {2.0, 1.0, 0.5, 0.25, 0.1}) {
    const auto r = core::run_girth_approx(g, {.epsilon = eps});
    t.cell(eps);
    t.cell(std::uint64_t{r.girth_estimate});
    t.cell(static_cast<double>(r.girth_estimate) / 24.0);
    t.cell(r.stats.rounds);
    t.cell(std::uint64_t{r.iterations.size()});
    t.end_row();
  }
}

void dense_inputs() {
  bench::Table t("Girth on dense cyclic inputs (exact vs Cor. 2 selector)");
  t.header({"graph", "true_g", "exact_rnds", "sel_est", "sel_rnds",
            "fallback"});
  struct Case {
    const char* name;
    Graph g;
  };
  const Case cases[] = {
      {"chords400", gen::cycle_with_chords(400, 100, 5)},
      {"torus14x14", gen::torus(14, 14)},
      {"hypercube8", gen::hypercube(8)},
      {"petersen-ish", gen::cycle_with_chords(300, 10, 9)},
  };
  for (const Case& c : cases) {
    const std::uint32_t truth = seq::girth(c.g);
    const auto exact = core::run_girth(c.g);
    const auto sel = core::run_combined_girth_approx(c.g);
    t.cell(std::string(c.name));
    t.cell(std::uint64_t{truth});
    t.cell(exact.stats.rounds);
    t.cell(std::uint64_t{sel.estimate});
    t.cell(sel.stats.rounds);
    t.cell(std::string(sel.used_exact_fallback ? "yes" : "no"));
    t.end_row();
  }
  bench::note("selector total stays O(n) even when refinement is slow (Cor. 2).");
}

}  // namespace

int main() {
  std::printf("# bench_girth — Table 1, girth row\n");
  girth_sweep();
  epsilon_sweep();
  dense_inputs();
  return 0;
}
