// Experiment §3.1 (the paper's motivation): once messages are serialized to
// B = O(log n) bits, link-state and distance-vector APSP become superlinear
// (quadratic on dense graphs), while Algorithm 1 stays linear.
#include <cstdio>

#include "baselines/distance_vector.h"
#include "baselines/link_state.h"
#include "baselines/naive_apsp.h"
#include "bench_util.h"
#include "core/pebble_apsp.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void compare(const char* name, const Graph& g) {
  bench::Table t(std::string("APSP strategies on ") + name);
  t.header({"algorithm", "rounds", "messages", "total_bits", "rounds/n"});
  const double n = g.num_nodes();

  const auto pebble = core::run_pebble_apsp(g);
  t.cell(std::string("pebble (Alg 1)"));
  t.cell(pebble.stats.rounds);
  t.cell(pebble.stats.messages);
  t.cell(pebble.stats.total_bits);
  t.cell(static_cast<double>(pebble.stats.rounds) / n);
  t.end_row();

  const auto naive = baselines::run_naive_apsp(g);
  t.cell(std::string("n-fold BFS"));
  t.cell(naive.stats.rounds);
  t.cell(naive.stats.messages);
  t.cell(naive.stats.total_bits);
  t.cell(static_cast<double>(naive.stats.rounds) / n);
  t.end_row();

  const auto dv = baselines::run_distance_vector(g);
  t.cell(std::string("distance-vector"));
  t.cell(dv.stats.rounds);
  t.cell(dv.stats.messages);
  t.cell(dv.stats.total_bits);
  t.cell(static_cast<double>(dv.stats.rounds) / n);
  t.end_row();

  const auto ls = baselines::run_link_state(g);
  t.cell(std::string("link-state"));
  t.cell(ls.stats.rounds);
  t.cell(ls.stats.messages);
  t.cell(ls.stats.total_bits);
  t.cell(static_cast<double>(ls.stats.rounds) / n);
  t.end_row();
}

}  // namespace

int main() {
  std::printf("# bench_baselines — Section 3.1 (RIP/OSPF vs Algorithm 1)\n");
  compare("path(128)  [sparse, deep]", gen::path(128));
  compare("grid(12x12) [sparse, moderate D]", gen::grid(12, 12));
  compare("random(128, m=512)", gen::random_connected(128, 384, 5));
  compare("random dense(96, m~2300) [LS goes quadratic]",
          gen::random_connected(96, 2200, 7));
  bench::note("paper: pebble ~ n; n-fold BFS ~ n*D; link-state ~ m (+Theta(m^2) "
              "messages); distance-vector superlinear with heavy messaging.");
  return 0;
}
