// Experiment SSP (Section 6.1, Theorem 3): Algorithm 2 solves S-SP in
// O(|S| + D) rounds.
//
// Sweep 1: fixed graph, growing |S| — rounds grow linearly in |S| with
//          slope ~2 (our doubled schedule) and intercept ~D.
// Sweep 2: fixed |S|, growing D (path length) — rounds grow linearly in D.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "util/rng.h"

using namespace dapsp;

namespace {

std::vector<NodeId> pick_sources(NodeId n, std::size_t count,
                                 std::uint64_t seed) {
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  Rng rng(seed);
  shuffle(all, rng);
  all.resize(std::min<std::size_t>(count, n));
  return all;
}

void sweep_sources() {
  const Graph g = gen::grid(16, 16);  // n = 256, D = 30
  bench::Table t("S-SP rounds vs |S| on grid 16x16 (paper: O(|S| + D))");
  t.header({"|S|", "rounds", "loop", "D0", "msgs", "max_edge_bits"});
  std::vector<double> xs, ys;
  for (const std::size_t s : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto sources = pick_sources(g.num_nodes(), s, 7);
    const core::SspResult r = core::run_ssp(g, sources);
    t.cell(std::uint64_t{s});
    t.cell(r.stats.rounds);
    t.cell(r.loop_rounds);
    t.cell(std::uint64_t{r.d0});
    t.cell(r.stats.messages);
    t.cell(std::uint64_t{r.stats.max_edge_bits});
    t.end_row();
    xs.push_back(static_cast<double>(s));
    ys.push_back(static_cast<double>(r.stats.rounds));
  }
  // Linear-in-|S| check at the top end (D contribution constant).
  bench::note("rounds(|S|=128) - rounds(|S|=64) ~ 2 * 64 (schedule slope 2)");
}

void sweep_diameter() {
  bench::Table t("S-SP rounds vs D: path(n), |S| = 8 (paper: O(|S| + D))");
  t.header({"n=D+1", "rounds", "loop", "D0", "rounds/D"});
  std::vector<double> xs, ys;
  for (const NodeId n : {32u, 64u, 128u, 256u, 512u}) {
    const Graph g = gen::path(n);
    const auto sources = pick_sources(n, 8, 11);
    const core::SspResult r = core::run_ssp(g, sources);
    t.cell(std::uint64_t{n});
    t.cell(r.stats.rounds);
    t.cell(r.loop_rounds);
    t.cell(std::uint64_t{r.d0});
    t.cell(static_cast<double>(r.stats.rounds) / (n - 1));
    t.end_row();
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(r.stats.rounds));
  }
  bench::note("fitted exponent (rounds ~ D^alpha): " +
              std::to_string(bench::fit_exponent(xs, ys)) + "   [paper: 1.0]");
}

void late_improvement_audit() {
  // How often is the idealized "first arrival is shortest" ordering violated
  // (and repaired by our min-merge)? Under (dist, id) priority this reports
  // the residual corrections per run.
  bench::Table t("Claim-merge audit: late improvements per run (see ssp.h)");
  t.header({"graph", "|S|", "rounds", "late_improvements"});
  struct Case {
    const char* name;
    Graph g;
    std::size_t s;
  };
  const Case cases[] = {
      {"grid16x16", gen::grid(16, 16), 16},
      {"chords200", gen::cycle_with_chords(200, 60, 7), 16},
      {"rand256", gen::random_connected(256, 512, 3), 32},
  };
  for (const Case& c : cases) {
    const auto sources = pick_sources(c.g.num_nodes(), c.s, 5);
    // run_ssp does not currently expose the per-node counters; re-run via
    // the public result and report rounds (the counter sum is asserted ~0 in
    // tests). Kept here as a table of the runs themselves.
    const core::SspResult r = core::run_ssp(c.g, sources);
    t.cell(std::string(c.name));
    t.cell(std::uint64_t{c.s});
    t.cell(r.stats.rounds);
    t.cell(r.total_late_improvements);
    t.end_row();
  }
}

}  // namespace

int main() {
  std::printf("# bench_ssp — S-Shortest Paths (Thm 3)\n");
  sweep_sources();
  sweep_diameter();
  late_improvement_audit();
  return 0;
}
