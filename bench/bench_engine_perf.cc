// Wall-clock performance of the CONGEST engine itself (google-benchmark):
// simulation throughput is what bounds the instance sizes every other bench
// can afford. Not a paper experiment — an engineering gauge.
//
// Two parts:
//   * google-benchmark timings of the core drivers, with a thread-count
//     dimension over the sharded engine (DESIGN.md §11);
//   * a thread-scaling study run after the benchmarks: pebble-APSP and the
//     raw engine at 1/2/4/8 workers, asserting the determinism contract
//     (byte-identical RunStats at every thread count) while measuring
//     speedup. Results land in BENCH_engine.json in the working directory,
//     together with the host's hardware thread count. Thread counts beyond
//     the hardware are still measured and determinism-checked, but their
//     speedup is written as null — an oversubscribed "speedup" is fiction.
//
// Modes (standalone; google-benchmark is skipped):
//   --assert-speedup   perf-regression gate: scaling study incl. n=4096,
//                      fails below the speedup floors; self-skips on hosts
//                      with < 4 hardware threads.
//   --large            add the n=4096 workload to the default study.
//   --soak [n]         one pebble-APSP at n (default 16384), timed.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "congest/trace.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_tree_check(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeBuild)->Arg(256)->Arg(1024)->Arg(4096);

// range(0) = n, range(1) = EngineConfig::threads.
void BM_PebbleApsp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  core::ApspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pebble_apsp(g, opt));
  }
  state.SetItemsProcessed(state.iterations() * n * n);  // distances computed
}
BENCHMARK(BM_PebbleApsp)
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Args({512, 8});

// Same driver with full instrumentation attached (TraceLog + EngineMetrics +
// a send observer): collection is sharded (DESIGN.md §12), so the threads
// dimension must scale like the untraced benchmark — no serial fallback.
void BM_PebbleApspTraced(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::uint64_t observed = 0;
  core::ApspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  opt.engine.send_observer = [&observed](const congest::SendEvent&) {
    ++observed;
  };
  congest::TraceLog trace;
  congest::EngineMetrics metrics;
  opt.engine.trace = &trace;
  opt.engine.metrics = &metrics;
  for (auto _ : state) {
    trace.clear();
    metrics.clear();
    benchmark::DoNotOptimize(core::run_pebble_apsp(g, opt));
  }
  benchmark::DoNotOptimize(observed);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_PebbleApspTraced)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Args({512, 8});

void BM_Ssp16(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 16; ++v) sources.push_back(v * (n / 16));
  core::SspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_ssp(g, sources, opt));
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_Ssp16)->Args({256, 1})->Args({1024, 1})->Args({1024, 8});

// --- Thread-scaling study + BENCH_engine.json ---------------------------

struct ScalingRow {
  std::string workload;
  NodeId n = 0;
  std::uint32_t threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;        // serial time / this time
  bool oversubscribed = false;  // threads > hardware threads: no speedup claim
  bool stats_identical = false;  // RunStats byte-identical to threads=1
  std::string stats;
};

// Speedup numbers are only honest when every worker can run on its own
// hardware thread. Rows where the engine is oversubscribed (threads beyond
// std::thread::hardware_concurrency()) are measured and checked for
// determinism like any other, but their speedup is NOT claimed: the JSON
// writes null and the regression gate ignores them.
std::uint32_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;  // 0 = "unknown" per the standard; claim nothing
}

double time_apsp(const Graph& g, std::uint32_t threads, std::string* stats) {
  core::ApspOptions opt;
  opt.engine.threads = threads;
  // One warm-up, then the timed run (the engine allocates its buffers once).
  core::run_pebble_apsp(g, opt);
  const auto t0 = std::chrono::steady_clock::now();
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto t1 = std::chrono::steady_clock::now();
  *stats = r.stats.debug_string();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Timed instrumented run: trace + metrics + observer all attached. The trace
// is serialized to JSONL so callers can compare runs byte for byte.
double time_apsp_traced(const Graph& g, std::uint32_t threads,
                        std::string* stats, std::string* trace_bytes) {
  core::ApspOptions opt;
  opt.engine.threads = threads;
  congest::TraceLog trace;
  congest::EngineMetrics metrics;
  std::uint64_t observed = 0;
  opt.engine.trace = &trace;
  opt.engine.metrics = &metrics;
  opt.engine.send_observer = [&observed](const congest::SendEvent&) {
    ++observed;
  };
  core::run_pebble_apsp(g, opt);  // warm-up
  trace.clear();
  metrics.clear();
  const auto t0 = std::chrono::steady_clock::now();
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto t1 = std::chrono::steady_clock::now();
  *stats = r.stats.debug_string();
  std::ostringstream os;
  trace.write_jsonl(os);
  *trace_bytes = std::move(os).str();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Traced vs untraced at 1/2/8 workers: measures the observability overhead
// and asserts the §12 contract — trace bytes and RunStats identical at every
// thread count. Rows land in BENCH_engine.json next to the plain scaling.
bool traced_study(std::vector<ScalingRow>& rows) {
  const Graph g = gen::random_connected(512, 1024, 42);
  const std::uint32_t kThreads[] = {1, 2, 8};
  bool ok = true;

  std::string serial_stats, serial_trace;
  const double serial = time_apsp_traced(g, 1, &serial_stats, &serial_trace);
  std::string untraced_stats;
  const double untraced_serial = time_apsp(g, 1, &untraced_stats);
  for (const std::uint32_t t : kThreads) {
    std::string stats = serial_stats, trace = serial_trace;
    const double secs =
        t == 1 ? serial : time_apsp_traced(g, t, &stats, &trace);
    std::string plain_stats;
    const double plain =
        t == 1 ? untraced_serial : time_apsp(g, t, &plain_stats);
    const bool identical = stats == serial_stats && trace == serial_trace;
    const bool over = t > hardware_threads();
    ok = ok && identical;
    rows.push_back({"pebble_apsp_traced512", g.num_nodes(), t, secs,
                    serial / secs, over, identical, stats});
    if (over) {
      std::printf("%-22s n=%4u threads=%u  %8.3f ms  (oversubscribed)  "
                  "overhead=%+.1f%%  %s\n",
                  "pebble_apsp_traced512", g.num_nodes(), t, secs * 1e3,
                  (secs / plain - 1.0) * 100.0,
                  identical ? "trace+stats-identical" : "TRACE MISMATCH");
    } else {
      std::printf("%-22s n=%4u threads=%u  %8.3f ms  speedup=%.2fx  "
                  "overhead=%+.1f%%  %s\n",
                  "pebble_apsp_traced512", g.num_nodes(), t, secs * 1e3,
                  serial / secs, (secs / plain - 1.0) * 100.0,
                  identical ? "trace+stats-identical" : "TRACE MISMATCH");
    }
  }
  return ok;
}

void scaling_study(std::vector<ScalingRow>& rows, bool large) {
  const std::uint32_t kThreads[] = {1, 2, 4, 8};
  struct Workload {
    const char* name;
    Graph g;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"pebble_apsp_rand512",
                       gen::random_connected(512, 1024, 42)});
  workloads.push_back({"pebble_apsp_grid24",
                       gen::grid(24, 24)});
  // The n>=4096 workload is where parallel speedup actually pays (per-round
  // work dwarfs the barrier cost); it is also ~100x the 512 run, so it only
  // joins on request (--large, and always under --assert-speedup).
  if (large) {
    workloads.push_back({"pebble_apsp_rand4096",
                         gen::random_connected(4096, 8192, 42)});
  }

  for (const Workload& w : workloads) {
    std::string serial_stats;
    const double serial = time_apsp(w.g, 1, &serial_stats);
    for (const std::uint32_t t : kThreads) {
      std::string stats;
      const double secs = t == 1 ? serial : time_apsp(w.g, t, &stats);
      if (t == 1) stats = serial_stats;
      const bool over = t > hardware_threads();
      rows.push_back({w.name, w.g.num_nodes(), t, secs, serial / secs, over,
                      stats == serial_stats, stats});
      if (over) {
        std::printf("%-22s n=%4u threads=%u  %8.3f ms  (oversubscribed)  %s\n",
                    w.name, w.g.num_nodes(), t, secs * 1e3,
                    stats == serial_stats ? "stats-identical"
                                          : "STATS MISMATCH");
      } else {
        std::printf("%-22s n=%4u threads=%u  %8.3f ms  speedup=%.2fx  %s\n",
                    w.name, w.g.num_nodes(), t, secs * 1e3, serial / secs,
                    stats == serial_stats ? "stats-identical"
                                          : "STATS MISMATCH");
      }
    }
  }
}

// --assert-speedup: the perf-regression gate. Re-runs the scaling study
// (including the n=4096 workload) and fails unless the non-oversubscribed
// thread counts clear their floors. Self-skips on hosts with fewer than 4
// hardware threads — a 1- or 2-core box cannot demonstrate 8-way scaling,
// and pretending otherwise is exactly the dishonesty this flag exists to
// prevent.
int run_assert_speedup() {
  const std::uint32_t hw = hardware_threads();
  if (hw < 4) {
    std::printf("--assert-speedup: SKIPPED (host has %u hardware threads; "
                "need >= 4 to make a scaling claim)\n", hw);
    return 0;
  }
  struct Gate {
    std::uint32_t threads;
    double min_speedup;
  };
  const Gate kGates[] = {{2, 1.15}, {4, 1.6}, {8, 3.0}};

  std::vector<ScalingRow> rows;
  scaling_study(rows, /*large=*/true);
  bool ok = true;
  for (const ScalingRow& r : rows) {
    if (!r.stats_identical) {
      std::printf("--assert-speedup: FAIL %s threads=%u: stats mismatch\n",
                  r.workload.c_str(), r.threads);
      ok = false;
    }
    // The scaling claim itself is gated on the big workload: small runs are
    // barrier-dominated and their speedups are not the contract.
    if (r.workload != "pebble_apsp_rand4096" || r.oversubscribed) continue;
    for (const Gate& gate : kGates) {
      if (r.threads != gate.threads) continue;
      if (r.speedup < gate.min_speedup) {
        std::printf("--assert-speedup: FAIL %s threads=%u: speedup %.2fx "
                    "< required %.2fx\n",
                    r.workload.c_str(), r.threads, r.speedup,
                    gate.min_speedup);
        ok = false;
      } else {
        std::printf("--assert-speedup: ok %s threads=%u: %.2fx >= %.2fx\n",
                    r.workload.c_str(), r.threads, r.speedup,
                    gate.min_speedup);
      }
    }
  }
  return ok ? 0 : 1;
}

// --soak [n]: one serial pebble-APSP at n (default 16384) — the throughput
// ceiling probe. No speedup claim, no JSON: just wall-clock and the stats
// line, for eyeballing after engine changes.
int run_soak(NodeId n) {
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::printf("soak: pebble-APSP on %s\n", g.summary().c_str());
  core::ApspOptions opt;
  opt.engine.threads = hardware_threads() >= 4 ? 0u : 1u;
  const auto t0 = std::chrono::steady_clock::now();
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("soak: %.2f s, %s\n",
              std::chrono::duration<double>(t1 - t0).count(),
              r.stats.debug_string().c_str());
  return 0;
}

void write_json(const char* path, const std::vector<ScalingRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"hardware_threads\": %u,\n  \"scaling\": [\n",
               hardware_threads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    // Oversubscribed rows carry no speedup claim: the measurement is real,
    // the ratio would be fiction.
    char speedup[32];
    if (r.oversubscribed) {
      std::snprintf(speedup, sizeof speedup, "null");
    } else {
      std::snprintf(speedup, sizeof speedup, "%.3f", r.speedup);
    }
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %u, \"threads\": %u, "
                 "\"seconds\": %.6f, \"speedup\": %s, "
                 "\"oversubscribed\": %s, \"stats_identical\": %s}%s\n",
                 r.workload.c_str(), r.n, r.threads, r.seconds, speedup,
                 r.oversubscribed ? "true" : "false",
                 r.stats_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees (and rejects) them.
  bool assert_speedup = false;
  bool large = false;
  bool soak = false;
  NodeId soak_n = 16384;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--assert-speedup") {
      assert_speedup = true;
    } else if (arg == "--large") {
      large = true;
    } else if (arg == "--soak") {
      soak = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        soak_n = static_cast<NodeId>(std::atoi(argv[++i]));
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  // The gate and soak modes are standalone: no google-benchmark pass, no
  // JSON — CI wants one answer, fast.
  if (assert_speedup) return run_assert_speedup();
  if (soak) return run_soak(soak_n);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nThread scaling (host has %u hardware threads):\n",
              hardware_threads());
  std::vector<ScalingRow> rows;
  scaling_study(rows, large);
  std::printf("\nTraced vs untraced (sharded observability, DESIGN.md §12):\n");
  const bool traces_ok = traced_study(rows);
  write_json("BENCH_engine.json", rows);

  for (const ScalingRow& r : rows) {
    if (!r.stats_identical) {
      std::printf("ERROR: RunStats differ across thread counts\n");
      return 1;
    }
  }
  if (!traces_ok) {
    std::printf("ERROR: trace bytes differ across thread counts\n");
    return 1;
  }
  return 0;
}
