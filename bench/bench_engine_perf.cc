// Wall-clock performance of the CONGEST engine itself (google-benchmark):
// simulation throughput is what bounds the instance sizes every other bench
// can afford. Not a paper experiment — an engineering gauge.
//
// Two parts:
//   * google-benchmark timings of the core drivers, with a thread-count
//     dimension over the sharded engine (DESIGN.md §11);
//   * a thread-scaling study run after the benchmarks: pebble-APSP and the
//     raw engine at 1/2/4/8 workers, asserting the determinism contract
//     (byte-identical RunStats at every thread count) while measuring
//     speedup. Results land in BENCH_engine.json in the working directory,
//     together with the host's hardware thread count — speedup numbers are
//     only meaningful relative to it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "congest/trace.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_tree_check(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeBuild)->Arg(256)->Arg(1024)->Arg(4096);

// range(0) = n, range(1) = EngineConfig::threads.
void BM_PebbleApsp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  core::ApspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pebble_apsp(g, opt));
  }
  state.SetItemsProcessed(state.iterations() * n * n);  // distances computed
}
BENCHMARK(BM_PebbleApsp)
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Args({512, 8});

// Same driver with full instrumentation attached (TraceLog + EngineMetrics +
// a send observer): collection is sharded (DESIGN.md §12), so the threads
// dimension must scale like the untraced benchmark — no serial fallback.
void BM_PebbleApspTraced(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::uint64_t observed = 0;
  core::ApspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  opt.engine.send_observer = [&observed](const congest::SendEvent&) {
    ++observed;
  };
  congest::TraceLog trace;
  congest::EngineMetrics metrics;
  opt.engine.trace = &trace;
  opt.engine.metrics = &metrics;
  for (auto _ : state) {
    trace.clear();
    metrics.clear();
    benchmark::DoNotOptimize(core::run_pebble_apsp(g, opt));
  }
  benchmark::DoNotOptimize(observed);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_PebbleApspTraced)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Args({512, 8});

void BM_Ssp16(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 16; ++v) sources.push_back(v * (n / 16));
  core::SspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_ssp(g, sources, opt));
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_Ssp16)->Args({256, 1})->Args({1024, 1})->Args({1024, 8});

// --- Thread-scaling study + BENCH_engine.json ---------------------------

struct ScalingRow {
  std::string workload;
  NodeId n = 0;
  std::uint32_t threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;        // serial time / this time
  bool stats_identical = false;  // RunStats byte-identical to threads=1
  std::string stats;
};

double time_apsp(const Graph& g, std::uint32_t threads, std::string* stats) {
  core::ApspOptions opt;
  opt.engine.threads = threads;
  // One warm-up, then the timed run (the engine allocates its buffers once).
  core::run_pebble_apsp(g, opt);
  const auto t0 = std::chrono::steady_clock::now();
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto t1 = std::chrono::steady_clock::now();
  *stats = r.stats.debug_string();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Timed instrumented run: trace + metrics + observer all attached. The trace
// is serialized to JSONL so callers can compare runs byte for byte.
double time_apsp_traced(const Graph& g, std::uint32_t threads,
                        std::string* stats, std::string* trace_bytes) {
  core::ApspOptions opt;
  opt.engine.threads = threads;
  congest::TraceLog trace;
  congest::EngineMetrics metrics;
  std::uint64_t observed = 0;
  opt.engine.trace = &trace;
  opt.engine.metrics = &metrics;
  opt.engine.send_observer = [&observed](const congest::SendEvent&) {
    ++observed;
  };
  core::run_pebble_apsp(g, opt);  // warm-up
  trace.clear();
  metrics.clear();
  const auto t0 = std::chrono::steady_clock::now();
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto t1 = std::chrono::steady_clock::now();
  *stats = r.stats.debug_string();
  std::ostringstream os;
  trace.write_jsonl(os);
  *trace_bytes = std::move(os).str();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Traced vs untraced at 1/2/8 workers: measures the observability overhead
// and asserts the §12 contract — trace bytes and RunStats identical at every
// thread count. Rows land in BENCH_engine.json next to the plain scaling.
bool traced_study(std::vector<ScalingRow>& rows) {
  const Graph g = gen::random_connected(512, 1024, 42);
  const std::uint32_t kThreads[] = {1, 2, 8};
  bool ok = true;

  std::string serial_stats, serial_trace;
  const double serial = time_apsp_traced(g, 1, &serial_stats, &serial_trace);
  std::string untraced_stats;
  const double untraced_serial = time_apsp(g, 1, &untraced_stats);
  for (const std::uint32_t t : kThreads) {
    std::string stats = serial_stats, trace = serial_trace;
    const double secs =
        t == 1 ? serial : time_apsp_traced(g, t, &stats, &trace);
    std::string plain_stats;
    const double plain =
        t == 1 ? untraced_serial : time_apsp(g, t, &plain_stats);
    const bool identical = stats == serial_stats && trace == serial_trace;
    ok = ok && identical;
    rows.push_back({"pebble_apsp_traced512", g.num_nodes(), t, secs,
                    serial / secs, identical, stats});
    std::printf("%-22s n=%4u threads=%u  %8.3f ms  speedup=%.2fx  "
                "overhead=%+.1f%%  %s\n",
                "pebble_apsp_traced512", g.num_nodes(), t, secs * 1e3,
                serial / secs, (secs / plain - 1.0) * 100.0,
                identical ? "trace+stats-identical" : "TRACE MISMATCH");
  }
  return ok;
}

void scaling_study(std::vector<ScalingRow>& rows) {
  const std::uint32_t kThreads[] = {1, 2, 4, 8};
  struct Workload {
    const char* name;
    Graph g;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"pebble_apsp_rand512",
                       gen::random_connected(512, 1024, 42)});
  workloads.push_back({"pebble_apsp_grid24",
                       gen::grid(24, 24)});

  for (const Workload& w : workloads) {
    std::string serial_stats;
    const double serial = time_apsp(w.g, 1, &serial_stats);
    for (const std::uint32_t t : kThreads) {
      std::string stats;
      const double secs = t == 1 ? serial : time_apsp(w.g, t, &stats);
      if (t == 1) stats = serial_stats;
      rows.push_back({w.name, w.g.num_nodes(), t, secs, serial / secs,
                      stats == serial_stats, stats});
      std::printf("%-22s n=%4u threads=%u  %8.3f ms  speedup=%.2fx  %s\n",
                  w.name, w.g.num_nodes(), t, secs * 1e3, serial / secs,
                  stats == serial_stats ? "stats-identical"
                                        : "STATS MISMATCH");
    }
  }
}

void write_json(const char* path, const std::vector<ScalingRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"hardware_threads\": %u,\n  \"scaling\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %u, \"threads\": %u, "
                 "\"seconds\": %.6f, \"speedup\": %.3f, "
                 "\"stats_identical\": %s}%s\n",
                 r.workload.c_str(), r.n, r.threads, r.seconds, r.speedup,
                 r.stats_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nThread scaling (host has %u hardware threads):\n",
              std::thread::hardware_concurrency());
  std::vector<ScalingRow> rows;
  scaling_study(rows);
  std::printf("\nTraced vs untraced (sharded observability, DESIGN.md §12):\n");
  const bool traces_ok = traced_study(rows);
  write_json("BENCH_engine.json", rows);

  for (const ScalingRow& r : rows) {
    if (!r.stats_identical) {
      std::printf("ERROR: RunStats differ across thread counts\n");
      return 1;
    }
  }
  if (!traces_ok) {
    std::printf("ERROR: trace bytes differ across thread counts\n");
    return 1;
  }
  return 0;
}
