// Wall-clock performance of the CONGEST engine itself (google-benchmark):
// simulation throughput is what bounds the instance sizes every other bench
// can afford. Not a paper experiment — an engineering gauge.
#include <benchmark/benchmark.h>

#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_tree_check(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PebbleApsp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pebble_apsp(g));
  }
  state.SetItemsProcessed(state.iterations() * n * n);  // distances computed
}
BENCHMARK(BM_PebbleApsp)->Arg(128)->Arg(256)->Arg(512);

void BM_Ssp16(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 16; ++v) sources.push_back(v * (n / 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_ssp(g, sources));
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_Ssp16)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
