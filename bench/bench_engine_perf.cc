// Wall-clock performance of the CONGEST engine itself (google-benchmark):
// simulation throughput is what bounds the instance sizes every other bench
// can afford. Not a paper experiment — an engineering gauge.
//
// Two parts:
//   * google-benchmark timings of the core drivers, with a thread-count
//     dimension over the sharded engine (DESIGN.md §11);
//   * a thread-scaling study run after the benchmarks: pebble-APSP and the
//     raw engine at 1/2/4/8 workers, asserting the determinism contract
//     (byte-identical RunStats at every thread count) while measuring
//     speedup. Results land in BENCH_engine.json in the working directory,
//     together with the host's hardware thread count — speedup numbers are
//     only meaningful relative to it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "graph/generators.h"

using namespace dapsp;

namespace {

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_tree_check(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeBuild)->Arg(256)->Arg(1024)->Arg(4096);

// range(0) = n, range(1) = EngineConfig::threads.
void BM_PebbleApsp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  core::ApspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pebble_apsp(g, opt));
  }
  state.SetItemsProcessed(state.iterations() * n * n);  // distances computed
}
BENCHMARK(BM_PebbleApsp)
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Args({512, 8});

void BM_Ssp16(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::random_connected(n, 2 * n, 42);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 16; ++v) sources.push_back(v * (n / 16));
  core::SspOptions opt;
  opt.engine.threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_ssp(g, sources, opt));
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_Ssp16)->Args({256, 1})->Args({1024, 1})->Args({1024, 8});

// --- Thread-scaling study + BENCH_engine.json ---------------------------

struct ScalingRow {
  std::string workload;
  NodeId n = 0;
  std::uint32_t threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;        // serial time / this time
  bool stats_identical = false;  // RunStats byte-identical to threads=1
  std::string stats;
};

double time_apsp(const Graph& g, std::uint32_t threads, std::string* stats) {
  core::ApspOptions opt;
  opt.engine.threads = threads;
  // One warm-up, then the timed run (the engine allocates its buffers once).
  core::run_pebble_apsp(g, opt);
  const auto t0 = std::chrono::steady_clock::now();
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  const auto t1 = std::chrono::steady_clock::now();
  *stats = r.stats.debug_string();
  return std::chrono::duration<double>(t1 - t0).count();
}

void scaling_study(std::vector<ScalingRow>& rows) {
  const std::uint32_t kThreads[] = {1, 2, 4, 8};
  struct Workload {
    const char* name;
    Graph g;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"pebble_apsp_rand512",
                       gen::random_connected(512, 1024, 42)});
  workloads.push_back({"pebble_apsp_grid24",
                       gen::grid(24, 24)});

  for (const Workload& w : workloads) {
    std::string serial_stats;
    const double serial = time_apsp(w.g, 1, &serial_stats);
    for (const std::uint32_t t : kThreads) {
      std::string stats;
      const double secs = t == 1 ? serial : time_apsp(w.g, t, &stats);
      if (t == 1) stats = serial_stats;
      rows.push_back({w.name, w.g.num_nodes(), t, secs, serial / secs,
                      stats == serial_stats, stats});
      std::printf("%-22s n=%4u threads=%u  %8.3f ms  speedup=%.2fx  %s\n",
                  w.name, w.g.num_nodes(), t, secs * 1e3, serial / secs,
                  stats == serial_stats ? "stats-identical"
                                        : "STATS MISMATCH");
    }
  }
}

void write_json(const char* path, const std::vector<ScalingRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"hardware_threads\": %u,\n  \"scaling\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %u, \"threads\": %u, "
                 "\"seconds\": %.6f, \"speedup\": %.3f, "
                 "\"stats_identical\": %s}%s\n",
                 r.workload.c_str(), r.n, r.threads, r.seconds, r.speedup,
                 r.stats_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nThread scaling (host has %u hardware threads):\n",
              std::thread::hardware_concurrency());
  std::vector<ScalingRow> rows;
  scaling_study(rows);
  write_json("BENCH_engine.json", rows);

  for (const ScalingRow& r : rows) {
    if (!r.stats_identical) {
      std::printf("ERROR: RunStats differ across thread counts\n");
      return 1;
    }
  }
  return 0;
}
