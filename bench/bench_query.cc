// Wall-clock throughput of the query serving tier (core/query.h): point
// lookups against a DQRY snapshot, batched queries, label-oracle estimates
// with and without the hot-source cache, and snapshot swap/acquire costs.
// Not a paper experiment — the serving tier is an engineering subsystem and
// this gauge is what keeps its "answers are an array read" claim honest.
//
// Results land in BENCH_query.json in the working directory, with the
// host's hardware thread count recorded and the same honesty convention as
// BENCH_engine.json: reader counts beyond the hardware are still measured,
// but their speedup is written as null — oversubscribed "speedup" is
// fiction.
//
// Modes:
//   --smoke            tiny instance (n = 256), loose assertions; used by
//                      check.sh --query-smoke.
//   --assert-rate R    fail (exit 1) unless serial p2p throughput reaches R
//                      lookups/sec (e.g. --assert-rate 10000000).
//   --n N              snapshot size (default 2048).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_labels.h"
#include "core/query.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "util/rng.h"

using namespace dapsp;
using namespace dapsp::core;

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct Row {
  std::string workload;
  std::uint32_t n = 0;
  std::uint32_t threads = 1;
  double seconds = 0;
  double per_sec = 0;       // items (lookups/queries/swaps) per second
  bool oversubscribed = false;
  double speedup = -1;      // < 0 => null (baseline-less or oversubscribed)
};

std::vector<Row> g_rows;

void record(Row r) {
  std::printf("%-28s n=%-6u threads=%-2u  %12.0f /sec  (%.3fs)%s\n",
              r.workload.c_str(), r.n, r.threads, r.per_sec, r.seconds,
              r.oversubscribed ? "  [oversubscribed]" : "");
  g_rows.push_back(std::move(r));
}

void write_json() {
  std::FILE* f = std::fopen("BENCH_query.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"hardware_threads\": %u,\n  \"results\": [\n",
               hardware_threads());
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %u, \"threads\": %u, "
                 "\"seconds\": %.6f, \"per_sec\": %.0f, ",
                 r.workload.c_str(), r.n, r.threads, r.seconds, r.per_sec);
    if (r.speedup >= 0) {
      std::fprintf(f, "\"speedup\": %.3f, ", r.speedup);
    } else {
      std::fprintf(f, "\"speedup\": null, ");
    }
    std::fprintf(f, "\"oversubscribed\": %s}%s\n",
                 r.oversubscribed ? "true" : "false",
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_query.json (%zu rows)\n", g_rows.size());
}

// Pre-generated lookup mix so the timed loop is pure query work.
std::vector<std::pair<NodeId, NodeId>> make_pairs(NodeId n, std::size_t count,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.below(n)),
                       static_cast<NodeId>(rng.below(n)));
  }
  return pairs;
}

double bench_p2p_serial(const QuerySnapshot& snap,
                        std::span<const std::pair<NodeId, NodeId>> pairs,
                        std::size_t rounds) {
  std::uint64_t sink = 0;
  const double t0 = now_sec();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& [u, v] : pairs) {
      sink += snap.p2p(u, v).dist;
    }
  }
  const double dt = now_sec() - t0;
  const double total = static_cast<double>(pairs.size() * rounds);
  std::printf("  (checksum %llu)\n", static_cast<unsigned long long>(sink));
  Row row;
  row.workload = "p2p_serial";
  row.n = snap.n();
  row.seconds = dt;
  row.per_sec = total / dt;
  row.speedup = 1.0;
  record(row);
  return row.per_sec;
}

void bench_p2p_readers(SnapshotStore& store,
                       std::span<const std::pair<NodeId, NodeId>> pairs,
                       std::size_t rounds, std::uint32_t threads,
                       double serial_rate, NodeId n) {
  std::vector<std::thread> workers;
  std::vector<double> secs(threads, 0.0);
  const double t0 = now_sec();
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      SnapshotReader reader(store);
      std::uint64_t sink = 0;
      const double s0 = now_sec();
      for (std::size_t r = 0; r < rounds; ++r) {
        SnapshotRef ref = reader.acquire();
        for (const auto& [u, v] : pairs) sink += ref->p2p(u, v).dist;
      }
      secs[t] = now_sec() - s0;
      if (sink == 0xdeadbeef) std::printf("!");  // keep the sum alive
    });
  }
  for (std::thread& th : workers) th.join();
  const double dt = now_sec() - t0;
  const bool over = threads > hardware_threads();
  Row row;
  row.workload = "p2p_readers";
  row.n = n;
  row.threads = threads;
  row.seconds = dt;
  row.per_sec = static_cast<double>(pairs.size() * rounds * threads) / dt;
  row.oversubscribed = over;
  row.speedup = over ? -1 : row.per_sec / serial_rate;
  record(row);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double assert_rate = 0;
  NodeId n = 2048;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--assert-rate") == 0 && i + 1 < argc) {
      assert_rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<NodeId>(std::atoi(argv[++i]));
    }
  }
  if (smoke) n = 256;

  std::printf("building n=%u snapshot (exact tables via seq::apsp)...\n", n);
  const Graph g = gen::random_connected(n, 2 * n, 1234);
  const DistanceMatrix dist = seq::apsp(g);
  const std::vector<std::uint8_t> active(n, 1);
  const std::vector<RowStatus> status(n, RowStatus::kExact);

  const double enc0 = now_sec();
  std::vector<std::uint8_t> blob = encode_query_snapshot_tables(
      dist, nullptr, active, status, /*epoch=*/1, /*sequence=*/1, false);
  std::printf("encoded %zu MiB in %.3fs\n", blob.size() >> 20,
              now_sec() - enc0);

  SnapshotStore store;
  store.publish(std::make_unique<const QuerySnapshot>(
      QuerySnapshot::from_blob(std::move(blob))));
  SnapshotReader main_reader(store);
  SnapshotRef ref = main_reader.acquire();
  const QuerySnapshot& snap = *ref;

  const std::size_t pair_count = smoke ? (1u << 14) : (1u << 20);
  const std::size_t rounds = smoke ? 4 : 16;
  const auto pairs = make_pairs(n, pair_count, 99);

  const double serial = bench_p2p_serial(snap, pairs, rounds);

  {  // batched API
    std::vector<QueryAnswer> out;
    const double t0 = now_sec();
    for (std::size_t r = 0; r < rounds; ++r) snap.p2p_batch(pairs, out);
    const double dt = now_sec() - t0;
    Row row;
    row.workload = "p2p_batch";
    row.n = n;
    row.seconds = dt;
    row.per_sec = static_cast<double>(pair_count * rounds) / dt;
    record(row);
  }

  {  // k-nearest + eccentricity row scans
    const std::size_t queries = smoke ? 512 : 4096;
    Rng rng(7);
    double t0 = now_sec();
    std::size_t got = 0;
    for (std::size_t i = 0; i < queries; ++i) {
      got += snap.k_nearest(static_cast<NodeId>(rng.below(n)), 8)
                 .nearest.size();
    }
    double dt = now_sec() - t0;
    Row row;
    row.workload = "k_nearest8";
    row.n = n;
    row.seconds = dt;
    row.per_sec = static_cast<double>(queries) / dt;
    record(row);
    t0 = now_sec();
    std::uint64_t acc = got;
    for (std::size_t i = 0; i < queries; ++i) {
      acc += snap.eccentricity(static_cast<NodeId>(rng.below(n))).ecc;
    }
    dt = now_sec() - t0;
    row.workload = "eccentricity";
    row.seconds = dt;
    row.per_sec = static_cast<double>(queries) / dt;
    record(row);
    if (acc == 0xdeadbeef) std::printf("!");
  }

  // Concurrent readers over the store (mid-pin, no swaps): scaling rows.
  for (const std::uint32_t t : {2u, 8u}) {
    bench_p2p_readers(store, pairs, smoke ? 2 : 4, t, serial, n);
  }

  {  // label-oracle estimates, cold vs hot-source LRU cache
    const NodeId ln = smoke ? 128 : 512;
    const Graph lg = gen::random_connected(ln, 2 * ln, 77);
    const DistanceLabeling lab = build_distance_labels(lg, 2);
    const DistanceMatrix ldist = seq::apsp(lg);
    const std::vector<std::uint8_t> lactive(ln, 1);
    const std::vector<RowStatus> lstatus(ln, RowStatus::kExact);
    const QuerySnapshot lsnap =
        QuerySnapshot::from_blob(encode_query_snapshot_tables(
            ldist, nullptr, lactive, lstatus, 1, 1, false, &lab));
    const auto lpairs = make_pairs(ln, smoke ? (1u << 12) : (1u << 16), 5);

    std::uint64_t sink = 0;
    double t0 = now_sec();
    for (const auto& [u, v] : lpairs) sink += lsnap.label_estimate(u, v);
    double dt = now_sec() - t0;
    Row row;
    row.workload = "label_estimate_cold";
    row.n = ln;
    row.seconds = dt;
    row.per_sec = static_cast<double>(lpairs.size()) / dt;
    record(row);

    // Hot-source mix: 16 distinct sources, cache large enough to hold them.
    LabelCache cache(16);
    std::vector<std::pair<NodeId, NodeId>> hot(lpairs);
    for (auto& p : hot) p.first = p.first % 16;
    t0 = now_sec();
    for (const auto& [u, v] : hot) sink += cache.estimate(lsnap, u, v);
    dt = now_sec() - t0;
    row.workload = "label_estimate_lru16";
    row.seconds = dt;
    row.per_sec = static_cast<double>(hot.size()) / dt;
    record(row);
    std::printf("  cache hits=%llu misses=%llu (checksum %llu)\n",
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(sink));
  }

  {  // snapshot swap + acquire round-trip cost (small snapshots)
    const NodeId sn = 64;
    const Graph sg = gen::random_connected(sn, sn, 3);
    const DistanceMatrix sdist = seq::apsp(sg);
    const std::vector<std::uint8_t> sactive(sn, 1);
    const std::vector<RowStatus> sstatus(sn, RowStatus::kExact);
    SnapshotStore swap_store;
    SnapshotReader swap_reader(swap_store);
    const std::size_t swaps = smoke ? 200 : 2000;
    const double t0 = now_sec();
    for (std::size_t i = 0; i < swaps; ++i) {
      swap_store.publish(std::make_unique<const QuerySnapshot>(
          QuerySnapshot::from_blob(encode_query_snapshot_tables(
              sdist, nullptr, sactive, sstatus, i, i, false))));
      SnapshotRef r = swap_reader.acquire();
      if (r->sequence() != i) std::abort();
    }
    const double dt = now_sec() - t0;
    Row row;
    row.workload = "publish_acquire";
    row.n = sn;
    row.seconds = dt;
    row.per_sec = static_cast<double>(swaps) / dt;
    record(row);
    if (swap_store.retired_pending() != 0) {
      std::printf("warning: %zu snapshots unreclaimed\n",
                  swap_store.retired_pending());
    }
  }

  write_json();

  if (assert_rate > 0 && serial < assert_rate) {
    std::fprintf(stderr,
                 "FAIL: serial p2p %.0f lookups/sec below the %.0f floor\n",
                 serial, assert_rate);
    return 1;
  }
  std::printf("serial p2p: %.1fM lookups/sec\n", serial / 1e6);
  return 0;
}
