// The paper's evaluation artifact is Table 1: upper/lower bounds per problem
// and approximation ratio. This harness regenerates the table's upper-bound
// entries empirically: one row per (problem, ratio), with the measured
// rounds of our implementation on a reference instance and the paper's
// stated bound. Lower-bound entries are covered by bench_lower_bounds.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/apsp_applications.h"
#include "core/combined.h"
#include "core/ecc_approx.h"
#include "core/girth.h"
#include "core/girth_approx.h"
#include "core/pebble_apsp.h"
#include "core/two_vs_four.h"
#include "graph/generators.h"
#include "seq/properties.h"

using namespace dapsp;

namespace {

void row(bench::Table& t, const std::string& problem, const std::string& ratio,
         const std::string& paper, std::uint64_t rounds,
         const std::string& result) {
  t.cell(problem);
  t.cell(ratio);
  t.cell(paper);
  t.cell(rounds);
  t.cell(result);
  t.end_row();
}

}  // namespace

int main() {
  std::printf("# bench_table1 — the paper's Table 1, regenerated\n");
  // Reference instance: n = 512, D = 46, girth 3, non-trivial center.
  const Graph g = gen::path_of_cliques(16, 32);
  const NodeId n = g.num_nodes();
  std::printf("reference instance: path_of_cliques(16,32): n=%u m=%zu D=%u "
              "rad=%u girth=%u\n",
              n, g.num_edges(), seq::diameter(g), seq::radius(g),
              seq::girth(g));

  bench::Table t("Table 1 (upper bounds), measured on the reference instance");
  t.header({"problem", "ratio", "paper_bound", "rounds", "answer"});

  const auto apsp = core::run_pebble_apsp(g);
  row(t, "APSP", "exact", "Theta(n)", apsp.stats.rounds, "full matrix");

  const auto ecc = core::distributed_eccentricities(g);
  row(t, "eccentricity", "exact", "Theta(n)", ecc.stats.rounds,
      "per-node ecc");

  const auto eapx = core::run_ecc_approx(g, {.epsilon = 1.0});
  row(t, "eccentricity", "(x,1+eps)", "O(n/D + D)", eapx.stats.rounds,
      "err<=k=" + std::to_string(eapx.k));

  const auto diam = core::distributed_diameter(g);
  row(t, "diameter", "exact", "Theta(n)", diam.stats.rounds,
      "D=" + std::to_string(diam.value));

  const auto dapx = core::run_ecc_approx(g, {.epsilon = 1.0});
  row(t, "diameter", "(x,1+eps)", "O(n/D + D)", dapx.stats.rounds,
      "est=" + std::to_string(dapx.diameter_estimate));

  const auto comb = core::run_combined_diameter_approx(g);
  row(t, "diameter", "(x,3/2)", "O(n^3/4 + D)", comb.stats.rounds,
      "est=" + std::to_string(comb.estimate));

  const auto two = core::distributed_diameter_2approx(g);
  row(t, "diameter", "(x,2)", "Theta(D)", two.stats.rounds,
      "est=" + std::to_string(two.value));

  const auto rad = core::distributed_radius(g);
  row(t, "radius", "exact", "Theta(n)", rad.stats.rounds,
      "rad=" + std::to_string(rad.value));
  row(t, "radius", "(x,1+eps)", "O(n/D + D)", dapx.stats.rounds,
      "est=" + std::to_string(dapx.radius_estimate));

  const auto ctr = core::distributed_center(g);
  row(t, "center", "exact", "Theta(n)", ctr.stats.rounds,
      "|C|=" + std::to_string(ctr.members.size()));
  row(t, "center", "(x,1+eps)", "O(n/D + D)", eapx.stats.rounds,
      "|C~|=" + std::to_string(eapx.center_approx.size()));
  row(t, "center", "(x,2)", "0 rounds", 0, "all nodes (Rem. 2)");

  const auto per = core::distributed_peripheral(g);
  row(t, "p. vertices", "exact", "Theta(n)", per.stats.rounds,
      "|P|=" + std::to_string(per.members.size()));
  row(t, "p. vertices", "(x,1+eps)", "O(n/D + D)", eapx.stats.rounds,
      "|P~|=" + std::to_string(eapx.peripheral_approx.size()));
  row(t, "p. vertices", "(x,2)", "0 rounds", 0, "all nodes (Rem. 2)");

  const auto gir = core::run_girth(g);
  row(t, "girth", "exact", "O(n)", gir.stats.rounds,
      "g=" + std::to_string(gir.girth));

  const auto gapx = core::run_girth_approx(g, {.epsilon = 1.0});
  row(t, "girth", "(x,1+eps)", "O(n/g + D log(D/g))", gapx.stats.rounds,
      "est=" + std::to_string(gapx.girth_estimate));

  const auto gsel = core::run_combined_girth_approx(g);
  row(t, "girth", "Cor. 2 selector", "O(min{...,n})", gsel.stats.rounds,
      "est=" + std::to_string(gsel.estimate));

  // Algorithm 3 runs on its own promise family.
  const auto tvf = core::run_two_vs_four(gen::dense_diameter2(512), {.seed = 1});
  row(t, "diam 2 vs 4", "decision", "O(sqrt(n log n))", tvf.stats.rounds,
      "answer=" + std::to_string(tvf.answer));

  bench::note("lower-bound rows: see bench_lower_bounds (instance families + "
              "information audit).");
  return 0;
}
