// Experiments T1-DIAM-(+1), T1-APSP-3/2, Theorems 2/6/8 (lower bounds).
//
// Lower bounds cannot be "run"; what we reproduce is:
//   (a) the instance families, oracle-verified (see tests);
//   (b) the information audit: the two-party input is k^2 bits, the cut has
//       2k+1 edges, so ANY protocol deciding diameter 2-vs-3 needs at least
//       ceil(k^2 / ((2k+1) B)) = Omega(n/B) rounds — we print this certified
//       floor next to the rounds our exact algorithm actually takes;
//   (c) the paper's headline contrast: distinguishing 2-vs-3 takes Omega(n)
//       while 2-vs-4 takes O(sqrt(n log n)) (Theorem 7) — measured side by
//       side on the same instance sizes.
#include <cstdio>

#include "bench_util.h"
#include "core/apsp_applications.h"
#include "core/neighborhood_census.h"
#include "core/two_vs_four.h"
#include "graph/generators.h"
#include "graph/hard_instances.h"

using namespace dapsp;

namespace {

void audit_2v3() {
  bench::Table t(
      "Theorem 6 family: exact diameter on 2-vs-3 gadgets vs certified floor");
  t.header({"k", "n", "cut", "floor(B=1)", "floor(B)", "exact_rounds",
            "D_found"});
  std::vector<double> xs, ys;
  for (const std::uint32_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const hard::TwoPartyGadget gadget = hard::diameter_2_vs_3(k, true, 5);
    const auto r = core::distributed_diameter(gadget.graph);
    // The information floor is Theta(k^2 / (cut * B)) = Theta(n / B): shown
    // both bit-normalized (B = 1) and for the engine's actual B.
    t.cell(std::uint64_t{k});
    t.cell(std::uint64_t{gadget.graph.num_nodes()});
    t.cell(std::uint64_t{gadget.cut_edge_count});
    t.cell(gadget.certified_min_rounds(1));
    t.cell(gadget.certified_min_rounds(r.stats.bandwidth_bits));
    t.cell(r.stats.rounds);
    t.cell(std::uint64_t{r.value});
    t.end_row();
    xs.push_back(static_cast<double>(gadget.graph.num_nodes()));
    ys.push_back(static_cast<double>(r.stats.rounds));
  }
  bench::note("exact algorithm grows linearly in n (fitted exponent " +
              std::to_string(bench::fit_exponent(xs, ys)) +
              "), matching the Omega(n/B) information floor's shape "
              "(floor(B=1) ~ k/2 ~ n/8).");
}

void gap2_family() {
  bench::Table t(
      "Theorem 2 family: d vs d+2 instances (exact diameter cost, (+1)-apx "
      "hardness)");
  t.header({"k", "L", "n", "D(near)", "D(far)", "rounds(near)",
            "rounds(far)"});
  for (const std::uint32_t k : {4u, 8u, 16u}) {
    const std::uint32_t len = 4;
    const auto near = hard::diameter_wide_gap(k, len, false, 7);
    const auto far = hard::diameter_wide_gap(k, len, true, 7);
    const auto rn = core::distributed_diameter(near.graph);
    const auto rf = core::distributed_diameter(far.graph);
    t.cell(std::uint64_t{k});
    t.cell(std::uint64_t{len});
    t.cell(std::uint64_t{near.graph.num_nodes()});
    t.cell(std::uint64_t{rn.value});
    t.cell(std::uint64_t{rf.value});
    t.cell(rn.stats.rounds);
    t.cell(rf.stats.rounds);
    t.end_row();
  }
  bench::note(
      "any (+,1)-approximation must separate these; Theorem 2 certifies "
      "Omega(n/(D*B) + D) rounds for that.");
}

void contrast_2v3_vs_2v4() {
  bench::Table t(
      "The paper's headline asymmetry: 2-vs-3 needs Omega(n); 2-vs-4 runs in "
      "O(sqrt(n log n))");
  t.header({"n(2v3)", "exact_rounds", "n(2v4)", "alg3_rounds", "ratio"});
  for (const std::uint32_t k : {8u, 16u, 32u, 64u}) {
    const auto g3 = hard::diameter_2_vs_3(k, true, 3);
    const auto exact = core::distributed_diameter(g3.graph);
    const NodeId n4 = g3.graph.num_nodes() & ~1u;
    const auto r4 =
        core::run_two_vs_four(gen::dense_diameter2(std::max<NodeId>(n4, 6)),
                              {.seed = 2});
    t.cell(std::uint64_t{g3.graph.num_nodes()});
    t.cell(exact.stats.rounds);
    t.cell(std::uint64_t{std::max<NodeId>(n4, 6)});
    t.cell(r4.stats.rounds);
    t.cell(static_cast<double>(exact.stats.rounds) /
           static_cast<double>(r4.stats.rounds));
    t.end_row();
  }
  bench::note("Theorem 8: the same gadgets (girth 3) also make computing all "
              "2-BFS trees Omega(n/B) — deciding |N2(v)| = n for all v is "
              "exactly the 2-vs-3 question.");
}

void census_theorem8() {
  bench::Table t(
      "Theorem 8: the two-hop census (|N2(v)| for all v) — cheap on bounded "
      "degree, Theta(n) on the gadgets");
  t.header({"graph", "n", "max_deg", "rounds", "all_n2=n?"});
  struct Case {
    const char* name;
    Graph g;
  };
  const Case cases[] = {
      {"grid16x16", gen::grid(16, 16)},
      {"torus12x12", gen::torus(12, 12)},
      {"gadget k=16", hard::diameter_2_vs_3(16, true, 1).graph},
      {"gadget k=64", hard::diameter_2_vs_3(64, true, 1).graph},
  };
  for (const Case& c : cases) {
    const auto r = core::run_two_hop_census(c.g);
    bool full = true;
    for (const std::uint32_t x : r.n2) full &= x == c.g.num_nodes();
    t.cell(std::string(c.name));
    t.cell(std::uint64_t{c.g.num_nodes()});
    t.cell(std::uint64_t{r.max_degree});
    t.cell(r.stats.rounds);
    t.cell(std::string(full ? "yes(diam<=2)" : "no(diam>=3)"));
    t.end_row();
  }
  bench::note("answering \"is every |N2(v)| = n\" IS the 2-vs-3 decision; "
              "the degree-streaming protocol pays Theta(Delta) = Theta(n) on "
              "the gadgets, matching the Omega(n/B) bound.");
}

}  // namespace

int main() {
  std::printf("# bench_lower_bounds — Theorems 2, 6, 8 instance families\n");
  audit_2v3();
  gap2_family();
  contrast_2v3_vs_2v4();
  census_theorem8();
  return 0;
}
