// Round overhead of the reliable-delivery layer (congest/reliable.h) as a
// function of transport loss: wrapped pebble-APSP (Algorithm 1) and wrapped
// S-SP (Algorithm 2) on a deterministically faulty wire, versus the
// fault-free unwrapped baseline. A second section crashes nodes mid-run and
// measures the degraded-mode harvest (DESIGN.md section 10): detection cost,
// surviving coverage, and the distributed certificate's verdict. A third
// section corrupts payloads in flight (single-bit flips) and shows the
// integrity checksum keeping wrapped runs exact; a fourth sweeps
// repair_apsp() over |S_missing| and *asserts* the O(|S_missing| + D)
// schedule — the bench exits nonzero if the slope, the runtime bound, or
// re-certification regresses (DESIGN.md section 13).
//
// Reported per row: real engine rounds, the slowdown factor over the
// unwrapped baseline, retransmission volume, and a correctness verdict
// against the sequential oracle — the adapter trades a constant factor of
// rounds for exactness under loss, and for certified partial output under
// crashes. Every row is also appended to BENCH_faults.json (in the working
// directory) for machine consumption.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "congest/reliable.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "core/repair.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"

namespace dapsp {
namespace {

constexpr double kDropRates[] = {0.0, 0.05, 0.1, 0.2, 0.3};

// One machine-readable record per benchmark row; serialized to
// BENCH_faults.json so scripts can track overhead regressions.
struct JsonRow {
  std::string algorithm;  // "pebble_apsp" | "ssp"
  std::string graph;      // family label
  NodeId n = 0;
  double drop_rate = 0.0;
  std::uint32_t crashes = 0;
  std::uint64_t real_rounds = 0;
  double overhead = 0.0;  // real_rounds / fault-free unwrapped baseline
  std::string outcome;    // "exact" | "degraded" | "repaired" | "wrong"
  std::uint32_t rows_complete = 0;
  std::uint32_t rows_certified = 0;
  double corrupt_rate = 0.0;     // per-copy single-bit-flip probability
  std::uint32_t s_missing = 0;   // repair rows: |S_missing| swept
};

std::vector<JsonRow>& json_rows() {
  static std::vector<JsonRow> rows;
  return rows;
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = json_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(
        f,
        "  {\"algorithm\": \"%s\", \"graph\": \"%s\", \"n\": %u, "
        "\"drop_rate\": %.3f, \"corrupt_rate\": %.3f, \"crashes\": %u, "
        "\"s_missing\": %u, \"real_rounds\": %llu, "
        "\"overhead\": %.3f, \"outcome\": \"%s\", \"rows_complete\": %u, "
        "\"rows_certified\": %u}%s\n",
        r.algorithm.c_str(), r.graph.c_str(), r.n, r.drop_rate,
        r.corrupt_rate, r.crashes, r.s_missing,
        static_cast<unsigned long long>(r.real_rounds), r.overhead,
        r.outcome.c_str(), r.rows_complete, r.rows_certified,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

congest::FaultPlan plan_for(double drop, std::uint64_t seed) {
  congest::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = drop;
  plan.duplicate_prob = drop / 2;
  plan.delay_prob = drop / 2;
  plan.max_extra_delay = drop > 0 ? 3 : 0;
  return plan;
}

void bench_apsp(const Graph& g, const std::string& label) {
  const DistanceMatrix oracle = seq::apsp(g);
  const auto base = core::run_pebble_apsp(g);

  bench::Table t("Algorithm 1 (pebble APSP) under loss: " + label + ", " +
                 g.summary());
  t.header({"drop", "rounds", "slowdown", "dropped", "dup+delay", "exact"});
  for (const double drop : kDropRates) {
    core::ApspOptions opt;
    if (drop > 0) opt.engine.faults = plan_for(drop, 1000 + 7);
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);
    const bool exact = r.dist == oracle;
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);

    t.cell(drop);
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.messages_dropped);
    t.cell(r.stats.messages_delayed + r.stats.messages_duplicated);
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();

    json_rows().push_back({"pebble_apsp", label, g.num_nodes(), drop, 0,
                           r.stats.rounds, overhead,
                           exact ? "exact" : "wrong", g.num_nodes(),
                           g.num_nodes()});
  }
  bench::note("baseline (unwrapped, fault-free): " +
              std::to_string(base.stats.rounds) + " rounds; slowdown is "
              "wrapped-real-rounds / baseline-rounds");
}

void bench_ssp(const Graph& g, const std::string& label) {
  const NodeId n = g.num_nodes();
  const std::vector<NodeId> sources = {0, n / 3, n / 2, n - 1};
  const auto base = core::run_ssp(g, sources);

  bench::Table t("Algorithm 2 (S-SP, |S|=" + std::to_string(sources.size()) +
                 ") under loss: " + label + ", " + g.summary());
  t.header({"drop", "rounds", "slowdown", "dropped", "delayed", "exact"});
  for (const double drop : kDropRates) {
    core::SspOptions opt;
    if (drop > 0) opt.engine.faults = plan_for(drop, 2000 + 9);
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_ssp(g, sources, opt);

    bool exact = true;
    for (const NodeId s : sources) {
      const auto oracle = seq::bfs(g, s);
      for (NodeId v = 0; v < n; ++v) {
        exact = exact && r.delta[v][s] == oracle.dist[v];
      }
    }
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);
    t.cell(drop);
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.messages_dropped);
    t.cell(r.stats.messages_delayed);
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();

    json_rows().push_back({"ssp", label, n, drop, 0, r.stats.rounds, overhead,
                           exact ? "exact" : "wrong",
                           static_cast<std::uint32_t>(sources.size()),
                           static_cast<std::uint32_t>(sources.size())});
  }
  bench::note("baseline (unwrapped, fault-free): " +
              std::to_string(base.stats.rounds) + " rounds");
}

// Crash survival: wrapped pebble-APSP with crash-stop nodes mid-run. The
// run must terminate degraded (not stall to the round cap), and the
// surviving rows must pass the distributed certificate of core/certify.h.
void bench_crashes(const Graph& g, const std::string& label) {
  const NodeId n = g.num_nodes();
  const auto base = core::run_pebble_apsp(g);

  core::ApspOptions clean;
  clean.engine.max_rounds = 4000000;
  congest::apply_reliable(clean.engine);
  const auto wrapped = core::run_pebble_apsp(g, clean);
  const std::uint64_t mid = wrapped.stats.rounds / 2;

  bench::Table t("Crash survival (pebble APSP, crash at wrapped midpoint): " +
                 label + ", " + g.summary());
  t.header({"crashes", "rounds", "slowdown", "suspected", "complete",
            "certified", "status"});
  for (const std::uint32_t k : {0u, 1u, 2u, 3u}) {
    core::ApspOptions opt;
    opt.engine.max_rounds = 4000000;
    opt.engine.faults = congest::FaultPlan{};
    for (std::uint32_t i = 0; i < k; ++i) {
      // Spread crashes over distinct nodes and a few rounds.
      opt.engine.faults->crashes.push_back(
          {static_cast<NodeId>((i * (n / 3 + 1) + 1) % n), mid + 5 * i});
    }
    congest::apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);

    std::vector<NodeId> sources(n);
    for (NodeId s = 0; s < n; ++s) sources[s] = s;
    const auto report = core::certify_rows(
        g, r.survived, sources,
        [&](NodeId v, NodeId s) { return r.dist.at(v, s); });
    std::uint32_t complete = 0;
    for (const core::RowCoverage c : r.coverage) {
      if (c == core::RowCoverage::kComplete) ++complete;
    }
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);
    const bool degraded = r.status == congest::RunStatus::kDegraded;

    t.cell(std::uint64_t{k});
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.neighbors_suspected);
    t.cell(std::uint64_t{complete});
    t.cell(std::uint64_t{report.rows_certified});
    t.cell(std::string(congest::to_string(r.status)));
    t.end_row();

    const bool exact = k == 0 && r.dist == seq::apsp(g);
    json_rows().push_back({"pebble_apsp", label, n, 0.0, k, r.stats.rounds,
                           overhead,
                           k == 0 ? (exact ? "exact" : "wrong")
                                  : (degraded ? "degraded" : "wrong"),
                           complete, report.rows_certified});
  }
  bench::note("complete/certified count distance rows over the " +
              std::to_string(n) + " sources; crashed rows degrade to "
              "partial or lost but never to uncertified-wrong");
}

// Payload corruption: wrapped pebble-APSP against single-bit flips on the
// wire (plus a light 5% loss floor so ARQ is already active). The trailing
// frame checksum detects every flip with certainty, the frame is dropped
// and retransmitted, and the harvested tables stay oracle-exact; the cost
// is extra real rounds, same as loss.
void bench_corruption(const Graph& g, const std::string& label) {
  const DistanceMatrix oracle = seq::apsp(g);
  const auto base = core::run_pebble_apsp(g);

  constexpr double kCorruptRates[] = {0.0, 0.1, 0.2, 0.3};
  bench::Table t("Algorithm 1 under payload corruption (checksum + ARQ): " +
                 label + ", " + g.summary());
  t.header({"corrupt", "rounds", "slowdown", "corrupted", "dropped", "exact"});
  for (const double rate : kCorruptRates) {
    core::ApspOptions opt;
    if (rate > 0) {
      congest::FaultPlan plan;
      plan.seed = 3017;
      plan.drop_prob = 0.05;
      plan.corrupt_prob = rate;
      opt.engine.faults = plan;
    }
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);
    const bool exact = r.dist == oracle;
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);

    t.cell(rate);
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.messages_corrupted);
    t.cell(r.stats.messages_dropped);
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();

    json_rows().push_back({.algorithm = "pebble_apsp",
                           .graph = label,
                           .n = g.num_nodes(),
                           .drop_rate = rate > 0 ? 0.05 : 0.0,
                           .real_rounds = r.stats.rounds,
                           .overhead = overhead,
                           .outcome = exact ? "exact" : "wrong",
                           .rows_complete = g.num_nodes(),
                           .rows_certified = g.num_nodes(),
                           .corrupt_rate = rate});
  }
  bench::note("rows with corrupt > 0 add a 5% drop floor; every corrupted "
              "frame is checksum-detected, discarded and retransmitted — "
              "the output never degrades, only the round count");
}

// Self-healing cost: repair_apsp() on a stale harvest with exactly
// |S_missing| broken rows, swept on a fixed topology. The repair schedule
// is one S-SP pass over the suspects, so repair_rounds must grow linearly:
// slope <= kRepairRoundC rounds per extra missing row, every run under its
// runtime bound and fully re-certified. Returns false (failing the bench)
// if any of that regresses.
bool bench_repair(const Graph& g, const std::string& label) {
  const NodeId n = g.num_nodes();
  const DistanceMatrix oracle = seq::apsp(g);

  bench::Table t("Self-healing (repair_apsp) vs |S_missing|: " + label +
                 ", " + g.summary());
  t.header({"missing", "repair_rounds", "bound", "certified", "exact"});
  std::vector<std::pair<std::uint32_t, std::uint64_t>> pts;
  bool ok = true;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 12u, 16u}) {
    if (k >= n) break;
    core::ApspResult r;
    r.dist = oracle;
    r.next_hop.assign(n, std::vector<NodeId>(n, core::kNoNextHop));
    r.status = congest::RunStatus::kDegraded;
    r.survived.assign(n, 1);
    // Break k rows outright: all-infinite except the diagonal, spread over
    // the id space. Coverage flags them, repair re-solves exactly them.
    for (std::uint32_t i = 0; i < k; ++i) {
      const NodeId s = static_cast<NodeId>(
          static_cast<std::uint64_t>(i) * n / k);
      for (NodeId v = 0; v < n; ++v) {
        if (v != s) r.dist.set(v, s, kInfDist);
      }
    }
    const core::RepairReport report = core::repair_apsp(g, r);
    const bool exact = r.dist == oracle;
    const bool row_ok = report.bound_ok && report.all_certified() &&
                        report.rows_repaired == k && exact;
    ok = ok && row_ok;
    pts.emplace_back(k, report.repair_rounds);

    t.cell(std::uint64_t{k});
    t.cell(report.repair_rounds);
    t.cell(report.round_bound);
    t.cell(std::uint64_t{report.certificate.rows_certified});
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();

    json_rows().push_back(
        {.algorithm = "repair_apsp",
         .graph = label,
         .n = n,
         .real_rounds = report.repair_rounds,
         .overhead = static_cast<double>(report.repair_rounds) /
                     static_cast<double>(report.round_bound),
         .outcome = row_ok ? "repaired" : "wrong",
         .rows_complete = n,
         .rows_certified = report.certificate.rows_certified,
         .s_missing = k});
  }

  // The O(|S_missing| + D) claim, as arithmetic: D is fixed per graph, so
  // the end-to-end slope in |S_missing| bounds the linear coefficient.
  if (pts.size() >= 2) {
    const double slope =
        static_cast<double>(pts.back().second - pts.front().second) /
        static_cast<double>(pts.back().first - pts.front().first);
    const bool slope_ok = pts.back().second >= pts.front().second &&
                          slope <= static_cast<double>(core::kRepairRoundC);
    ok = ok && slope_ok;
    bench::note("repair-rounds slope = " + std::to_string(slope) +
                " rounds per missing row (limit kRepairRoundC = " +
                std::to_string(core::kRepairRoundC) + "): " +
                (slope_ok ? "OK" : "FAIL"));
  }
  return ok;
}

}  // namespace
}  // namespace dapsp

int main() {
  using namespace dapsp;
  std::printf("Reliable delivery under transport faults.\n");
  std::printf(
      "Plans: drop p, duplicate p/2, delay p/2 (1..3 extra rounds), fixed "
      "seeds -- every row is reproducible.\n");

  bench_apsp(gen::random_connected(24, 20, 11), "random");
  bench_apsp(gen::grid(5, 5), "grid");
  bench_ssp(gen::random_connected(24, 20, 11), "random");
  bench_ssp(gen::cycle_with_chords(30, 6, 13), "cycle+chords");
  bench_crashes(gen::random_connected(24, 20, 11), "random");
  bench_crashes(gen::grid(5, 5), "grid");
  bench_corruption(gen::random_connected(24, 20, 11), "random");
  bench_corruption(gen::grid(5, 5), "grid");

  bool repair_ok = bench_repair(gen::random_connected(40, 36, 11), "random");
  repair_ok = bench_repair(gen::grid(6, 6), "grid") && repair_ok;

  write_json("BENCH_faults.json");
  if (!repair_ok) {
    std::printf("FAIL: repair slope/bound/certification regressed\n");
    return 1;
  }
  return 0;
}
