// Round overhead of the reliable-delivery layer (congest/reliable.h) as a
// function of transport loss: wrapped pebble-APSP (Algorithm 1) and wrapped
// S-SP (Algorithm 2) on a deterministically faulty wire, versus the
// fault-free unwrapped baseline.
//
// Reported per drop rate: real engine rounds, the slowdown factor over the
// unwrapped baseline, retransmission volume, and a correctness verdict
// against the sequential oracle — the adapter trades a constant factor of
// rounds for exactness under loss.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "congest/reliable.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"

namespace dapsp {
namespace {

constexpr double kDropRates[] = {0.0, 0.05, 0.1, 0.2, 0.3};

congest::FaultPlan plan_for(double drop, std::uint64_t seed) {
  congest::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = drop;
  plan.duplicate_prob = drop / 2;
  plan.delay_prob = drop / 2;
  plan.max_extra_delay = drop > 0 ? 3 : 0;
  return plan;
}

void bench_apsp(const Graph& g, const std::string& label) {
  const DistanceMatrix oracle = seq::apsp(g);
  const auto base = core::run_pebble_apsp(g);

  bench::Table t("Algorithm 1 (pebble APSP) under loss: " + label + ", " +
                 g.summary());
  t.header({"drop", "rounds", "slowdown", "dropped", "dup+delay", "exact"});
  for (const double drop : kDropRates) {
    core::ApspOptions opt;
    if (drop > 0) opt.engine.faults = plan_for(drop, 1000 + 7);
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);

    t.cell(drop);
    t.cell(r.stats.rounds);
    t.cell(static_cast<double>(r.stats.rounds) /
           static_cast<double>(base.stats.rounds));
    t.cell(r.stats.messages_dropped);
    t.cell(r.stats.messages_delayed + r.stats.messages_duplicated);
    t.cell(std::string(r.dist == oracle ? "yes" : "NO"));
    t.end_row();
  }
  bench::note("baseline (unwrapped, fault-free): " +
              std::to_string(base.stats.rounds) + " rounds; slowdown is "
              "wrapped-real-rounds / baseline-rounds");
}

void bench_ssp(const Graph& g, const std::string& label) {
  const NodeId n = g.num_nodes();
  const std::vector<NodeId> sources = {0, n / 3, n / 2, n - 1};
  const auto base = core::run_ssp(g, sources);

  bench::Table t("Algorithm 2 (S-SP, |S|=" + std::to_string(sources.size()) +
                 ") under loss: " + label + ", " + g.summary());
  t.header({"drop", "rounds", "slowdown", "dropped", "delayed", "exact"});
  for (const double drop : kDropRates) {
    core::SspOptions opt;
    if (drop > 0) opt.engine.faults = plan_for(drop, 2000 + 9);
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_ssp(g, sources, opt);

    bool exact = true;
    for (const NodeId s : sources) {
      const auto oracle = seq::bfs(g, s);
      for (NodeId v = 0; v < n; ++v) {
        exact = exact && r.delta[v][s] == oracle.dist[v];
      }
    }
    t.cell(drop);
    t.cell(r.stats.rounds);
    t.cell(static_cast<double>(r.stats.rounds) /
           static_cast<double>(base.stats.rounds));
    t.cell(r.stats.messages_dropped);
    t.cell(r.stats.messages_delayed);
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();
  }
  bench::note("baseline (unwrapped, fault-free): " +
              std::to_string(base.stats.rounds) + " rounds");
}

}  // namespace
}  // namespace dapsp

int main() {
  using namespace dapsp;
  std::printf("Reliable delivery under transport faults.\n");
  std::printf(
      "Plans: drop p, duplicate p/2, delay p/2 (1..3 extra rounds), fixed "
      "seeds -- every row is reproducible.\n");

  bench_apsp(gen::random_connected(24, 20, 11), "random");
  bench_apsp(gen::grid(5, 5), "grid");
  bench_ssp(gen::random_connected(24, 20, 11), "random");
  bench_ssp(gen::cycle_with_chords(30, 6, 13), "cycle+chords");
  return 0;
}
