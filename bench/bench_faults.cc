// Round overhead of the reliable-delivery layer (congest/reliable.h) as a
// function of transport loss: wrapped pebble-APSP (Algorithm 1) and wrapped
// S-SP (Algorithm 2) on a deterministically faulty wire, versus the
// fault-free unwrapped baseline. A second section crashes nodes mid-run and
// measures the degraded-mode harvest (DESIGN.md section 10): detection cost,
// surviving coverage, and the distributed certificate's verdict.
//
// Reported per row: real engine rounds, the slowdown factor over the
// unwrapped baseline, retransmission volume, and a correctness verdict
// against the sequential oracle — the adapter trades a constant factor of
// rounds for exactness under loss, and for certified partial output under
// crashes. Every row is also appended to BENCH_faults.json (in the working
// directory) for machine consumption.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "congest/reliable.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"

namespace dapsp {
namespace {

constexpr double kDropRates[] = {0.0, 0.05, 0.1, 0.2, 0.3};

// One machine-readable record per benchmark row; serialized to
// BENCH_faults.json so scripts can track overhead regressions.
struct JsonRow {
  std::string algorithm;  // "pebble_apsp" | "ssp"
  std::string graph;      // family label
  NodeId n = 0;
  double drop_rate = 0.0;
  std::uint32_t crashes = 0;
  std::uint64_t real_rounds = 0;
  double overhead = 0.0;  // real_rounds / fault-free unwrapped baseline
  std::string outcome;    // "exact" | "degraded" | "wrong"
  std::uint32_t rows_complete = 0;
  std::uint32_t rows_certified = 0;
};

std::vector<JsonRow>& json_rows() {
  static std::vector<JsonRow> rows;
  return rows;
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  const auto& rows = json_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(
        f,
        "  {\"algorithm\": \"%s\", \"graph\": \"%s\", \"n\": %u, "
        "\"drop_rate\": %.3f, \"crashes\": %u, \"real_rounds\": %llu, "
        "\"overhead\": %.3f, \"outcome\": \"%s\", \"rows_complete\": %u, "
        "\"rows_certified\": %u}%s\n",
        r.algorithm.c_str(), r.graph.c_str(), r.n, r.drop_rate, r.crashes,
        static_cast<unsigned long long>(r.real_rounds), r.overhead,
        r.outcome.c_str(), r.rows_complete, r.rows_certified,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path);
}

congest::FaultPlan plan_for(double drop, std::uint64_t seed) {
  congest::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = drop;
  plan.duplicate_prob = drop / 2;
  plan.delay_prob = drop / 2;
  plan.max_extra_delay = drop > 0 ? 3 : 0;
  return plan;
}

void bench_apsp(const Graph& g, const std::string& label) {
  const DistanceMatrix oracle = seq::apsp(g);
  const auto base = core::run_pebble_apsp(g);

  bench::Table t("Algorithm 1 (pebble APSP) under loss: " + label + ", " +
                 g.summary());
  t.header({"drop", "rounds", "slowdown", "dropped", "dup+delay", "exact"});
  for (const double drop : kDropRates) {
    core::ApspOptions opt;
    if (drop > 0) opt.engine.faults = plan_for(drop, 1000 + 7);
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);
    const bool exact = r.dist == oracle;
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);

    t.cell(drop);
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.messages_dropped);
    t.cell(r.stats.messages_delayed + r.stats.messages_duplicated);
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();

    json_rows().push_back({"pebble_apsp", label, g.num_nodes(), drop, 0,
                           r.stats.rounds, overhead,
                           exact ? "exact" : "wrong", g.num_nodes(),
                           g.num_nodes()});
  }
  bench::note("baseline (unwrapped, fault-free): " +
              std::to_string(base.stats.rounds) + " rounds; slowdown is "
              "wrapped-real-rounds / baseline-rounds");
}

void bench_ssp(const Graph& g, const std::string& label) {
  const NodeId n = g.num_nodes();
  const std::vector<NodeId> sources = {0, n / 3, n / 2, n - 1};
  const auto base = core::run_ssp(g, sources);

  bench::Table t("Algorithm 2 (S-SP, |S|=" + std::to_string(sources.size()) +
                 ") under loss: " + label + ", " + g.summary());
  t.header({"drop", "rounds", "slowdown", "dropped", "delayed", "exact"});
  for (const double drop : kDropRates) {
    core::SspOptions opt;
    if (drop > 0) opt.engine.faults = plan_for(drop, 2000 + 9);
    opt.engine.max_rounds = 4000000;
    congest::apply_reliable(opt.engine);
    const auto r = core::run_ssp(g, sources, opt);

    bool exact = true;
    for (const NodeId s : sources) {
      const auto oracle = seq::bfs(g, s);
      for (NodeId v = 0; v < n; ++v) {
        exact = exact && r.delta[v][s] == oracle.dist[v];
      }
    }
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);
    t.cell(drop);
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.messages_dropped);
    t.cell(r.stats.messages_delayed);
    t.cell(std::string(exact ? "yes" : "NO"));
    t.end_row();

    json_rows().push_back({"ssp", label, n, drop, 0, r.stats.rounds, overhead,
                           exact ? "exact" : "wrong",
                           static_cast<std::uint32_t>(sources.size()),
                           static_cast<std::uint32_t>(sources.size())});
  }
  bench::note("baseline (unwrapped, fault-free): " +
              std::to_string(base.stats.rounds) + " rounds");
}

// Crash survival: wrapped pebble-APSP with crash-stop nodes mid-run. The
// run must terminate degraded (not stall to the round cap), and the
// surviving rows must pass the distributed certificate of core/certify.h.
void bench_crashes(const Graph& g, const std::string& label) {
  const NodeId n = g.num_nodes();
  const auto base = core::run_pebble_apsp(g);

  core::ApspOptions clean;
  clean.engine.max_rounds = 4000000;
  congest::apply_reliable(clean.engine);
  const auto wrapped = core::run_pebble_apsp(g, clean);
  const std::uint64_t mid = wrapped.stats.rounds / 2;

  bench::Table t("Crash survival (pebble APSP, crash at wrapped midpoint): " +
                 label + ", " + g.summary());
  t.header({"crashes", "rounds", "slowdown", "suspected", "complete",
            "certified", "status"});
  for (const std::uint32_t k : {0u, 1u, 2u, 3u}) {
    core::ApspOptions opt;
    opt.engine.max_rounds = 4000000;
    opt.engine.faults = congest::FaultPlan{};
    for (std::uint32_t i = 0; i < k; ++i) {
      // Spread crashes over distinct nodes and a few rounds.
      opt.engine.faults->crashes.push_back(
          {static_cast<NodeId>((i * (n / 3 + 1) + 1) % n), mid + 5 * i});
    }
    congest::apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);

    std::vector<NodeId> sources(n);
    for (NodeId s = 0; s < n; ++s) sources[s] = s;
    const auto report = core::certify_rows(
        g, r.survived, sources,
        [&](NodeId v, NodeId s) { return r.dist.at(v, s); });
    std::uint32_t complete = 0;
    for (const core::RowCoverage c : r.coverage) {
      if (c == core::RowCoverage::kComplete) ++complete;
    }
    const double overhead = static_cast<double>(r.stats.rounds) /
                            static_cast<double>(base.stats.rounds);
    const bool degraded = r.status == congest::RunStatus::kDegraded;

    t.cell(std::uint64_t{k});
    t.cell(r.stats.rounds);
    t.cell(overhead);
    t.cell(r.stats.neighbors_suspected);
    t.cell(std::uint64_t{complete});
    t.cell(std::uint64_t{report.rows_certified});
    t.cell(std::string(congest::to_string(r.status)));
    t.end_row();

    const bool exact = k == 0 && r.dist == seq::apsp(g);
    json_rows().push_back({"pebble_apsp", label, n, 0.0, k, r.stats.rounds,
                           overhead,
                           k == 0 ? (exact ? "exact" : "wrong")
                                  : (degraded ? "degraded" : "wrong"),
                           complete, report.rows_certified});
  }
  bench::note("complete/certified count distance rows over the " +
              std::to_string(n) + " sources; crashed rows degrade to "
              "partial or lost but never to uncertified-wrong");
}

}  // namespace
}  // namespace dapsp

int main() {
  using namespace dapsp;
  std::printf("Reliable delivery under transport faults.\n");
  std::printf(
      "Plans: drop p, duplicate p/2, delay p/2 (1..3 extra rounds), fixed "
      "seeds -- every row is reproducible.\n");

  bench_apsp(gen::random_connected(24, 20, 11), "random");
  bench_apsp(gen::grid(5, 5), "grid");
  bench_ssp(gen::random_connected(24, 20, 11), "random");
  bench_ssp(gen::cycle_with_chords(30, 6, 13), "cycle+chords");
  bench_crashes(gen::random_connected(24, 20, 11), "random");
  bench_crashes(gen::grid(5, 5), "grid");

  write_json("BENCH_faults.json");
  return 0;
}
