// Experiments T1-DIAM-* (Table 1, diameter row):
//   exact:     Theta(n) via APSP + aggregation (Lemma 3)
//   (x,1+eps): O(n/D + D) (Corollary 4)
//   (x,3/2):   O(min{D sqrt(n), n/D + D}) (Corollary 1)
//   (x,2):     Theta(D) (Remark 1)
//
// The family path_of_cliques(c, s) controls D (~3c) and n (= c*s)
// independently, exposing the n/D + D shape and the Corollary 1 crossover.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/apsp_applications.h"
#include "core/combined.h"
#include "core/ecc_approx.h"
#include "core/three_halves.h"
#include "graph/generators.h"
#include "seq/properties.h"

using namespace dapsp;

namespace {

void accuracy_and_cost_suite() {
  bench::Table t("Diameter: exact vs approximations (n ~ 512)");
  t.header({"family", "D", "exact_rnds", "eps.5_est", "eps.5_rnds",
            "x2_est", "x2_rnds", "c1_est", "c1_rnds", "acim_est",
            "acim_rnds"});
  struct Case {
    const char* name;
    Graph g;
  };
  const Case cases[] = {
      {"path512", gen::path(512)},
      {"cliques8x64", gen::path_of_cliques(8, 64)},
      {"cliques32x16", gen::path_of_cliques(32, 16)},
      {"grid23x22", gen::grid(23, 22)},
      {"rand512", gen::random_connected(512, 1024, 3)},
  };
  for (const Case& c : cases) {
    const auto exact = core::distributed_diameter(c.g);
    const auto approx = core::run_ecc_approx(c.g, {.epsilon = 0.5});
    const auto two = core::distributed_diameter_2approx(c.g);
    const auto comb = core::run_combined_diameter_approx(c.g);
    const auto acim = core::run_three_halves_diameter(c.g);
    t.cell(std::string(c.name));
    t.cell(std::uint64_t{exact.value});
    t.cell(exact.stats.rounds);
    t.cell(std::uint64_t{approx.diameter_estimate});
    t.cell(approx.stats.rounds);
    t.cell(std::uint64_t{two.value});
    t.cell(two.stats.rounds);
    t.cell(std::uint64_t{comb.estimate});
    t.cell(comb.stats.rounds);
    t.cell(std::uint64_t{acim.answer});
    t.cell(acim.stats.rounds);
    t.end_row();
  }
  bench::note(
      "paper shape: exact ~ n; (x,1+eps) ~ n/D + D; (x,2) ~ D; Cor.1 ~ "
      "min{D sqrt(n), n/D + D}; acim = our O~(sqrt(n)+D) (x,3/2) extension.");
}

void nd_shape() {
  // Fixed n = 512, sweep D via path_of_cliques: the (x,1+eps) cost is
  // U-shaped in D (n/D falls, D rises) while exact stays ~n.
  bench::Table t(
      "(x,1+eps=0.5) diameter approx: rounds vs D at fixed n=512 (Cor. 4)");
  t.header({"cliques", "D", "|DOM|", "apx_rounds", "exact_rounds",
            "exact/apx"});
  for (const NodeId c : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const Graph g = gen::path_of_cliques(c, 512 / c);
    const std::uint32_t diam = seq::diameter(g);
    const auto approx = core::run_ecc_approx(g, {.epsilon = 0.5});
    const auto exact = core::distributed_diameter(g);
    t.cell(std::uint64_t{c});
    t.cell(std::uint64_t{diam});
    t.cell(std::uint64_t{approx.dom_size});
    t.cell(approx.stats.rounds);
    t.cell(exact.stats.rounds);
    t.cell(static_cast<double>(exact.stats.rounds) /
           static_cast<double>(approx.stats.rounds));
    t.end_row();
  }
  bench::note(
      "the advantage of Theorem 4 over exact peaks at moderate D, exactly "
      "the paper's n/D + D prediction.");
}

void corollary1_crossover() {
  bench::Table t(
      "Corollary 1 selector: chosen arm and rounds across the D spectrum");
  t.header({"family", "n", "D", "arm", "rounds", "estimate", "true_D"});
  struct Case {
    const char* name;
    Graph g;
  };
  const Case cases[] = {
      {"dense_d2(256)", gen::dense_diameter2(256)},
      {"cliques4x64", gen::path_of_cliques(4, 64)},
      {"cliques16x16", gen::path_of_cliques(16, 16)},
      {"grid16x16", gen::grid(16, 16)},
      {"path256", gen::path(256)},
  };
  for (const Case& c : cases) {
    const std::uint32_t diam = seq::diameter(c.g);
    const auto r = core::run_combined_diameter_approx(c.g);
    t.cell(std::string(c.name));
    t.cell(std::uint64_t{c.g.num_nodes()});
    t.cell(std::uint64_t{diam});
    t.cell(std::string(r.arm == core::DiameterArm::kPrt ? "PRT D*sqrt(n)"
                                                        : "ours n/D+D"));
    t.cell(r.stats.rounds);
    t.cell(std::uint64_t{r.estimate});
    t.cell(std::uint64_t{diam});
    t.end_row();
  }
  bench::note("crossover at D ~ n^(1/4), total O(n^(3/4) + D) (Cor. 1).");
}

}  // namespace

int main() {
  std::printf("# bench_diameter — Table 1, diameter row\n");
  accuracy_and_cost_suite();
  nd_shape();
  corollary1_crossover();
  return 0;
}
