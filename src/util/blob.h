// Shared blob-file conventions: read-only memory mapping and atomic writes.
//
// Every on-disk artifact in this repo (DSVC checkpoints, DJRN journals, and
// now DQRY query snapshots) is a little-endian, self-delimiting byte blob
// with a trailing FNV-1a checksum. This module supplies the two file-level
// operations those formats share:
//
//   * MappedBlob — a read-only view of a file's bytes, mmap'd when the
//     platform allows it (zero-copy: the query tier serves point lookups
//     straight off the page cache) with a plain read-into-memory fallback.
//     The view is immutable and stable for the object's lifetime, which is
//     exactly the contract the lock-free snapshot store needs.
//
//   * write_blob_atomic — tmp + rename within the target directory, the same
//     never-tear discipline as the durable layer's checkpoint rotation: a
//     reader (or a crash) can only ever observe the old bytes or the whole
//     new bytes, never a prefix.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dapsp {

class MappedBlob {
 public:
  MappedBlob() = default;
  ~MappedBlob() { reset(); }

  MappedBlob(MappedBlob&& other) noexcept { *this = std::move(other); }
  MappedBlob& operator=(MappedBlob&& other) noexcept;
  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  // Maps `path` read-only. Throws std::runtime_error when the file cannot be
  // opened; an empty file maps to an empty span. Falls back to reading the
  // bytes into memory when mmap is unavailable.
  static MappedBlob map_file(const std::string& path);

  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  bool empty() const noexcept { return size_ == 0; }
  // True when the bytes are a live mmap view rather than an owned copy.
  bool is_mapped() const noexcept { return mapped_; }

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                // munmap on destruction
  std::vector<std::uint8_t> owned_;    // fallback storage
};

// Writes `bytes` to `path` via a sibling temp file + rename. Throws
// std::runtime_error on any I/O failure; on failure the target is untouched.
void write_blob_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

}  // namespace dapsp
