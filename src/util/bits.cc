#include "util/bits.h"

#include <bit>

namespace dapsp {

int bits_for(std::uint64_t n) noexcept {
  if (n == 0) return 1;
  return 64 - std::countl_zero(n);
}

int ceil_log2(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  return bits_for(n - 1);
}

std::uint64_t isqrt(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  std::uint64_t r = static_cast<std::uint64_t>(__builtin_sqrtl(static_cast<long double>(n)));
  while (r > 0 && r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

}  // namespace dapsp
