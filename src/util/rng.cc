#include "util/rng.h"

namespace dapsp {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free mapping is overkill here; use modulo with a
  // rejection loop to remove bias (bound is tiny compared to 2^64 in all of
  // our uses, so the loop almost never iterates).
  const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() noexcept {
  // 53 random bits into the mantissa.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace dapsp
