#include "util/arena.h"

#include <atomic>

namespace dapsp {

namespace {
// Atomic: concurrent shards grow their own arenas in parallel phases. Only
// growth events pay the (relaxed) RMW — steady-state pushes never touch it.
std::atomic<std::uint64_t> g_arena_slab_allocations{0};
}  // namespace

std::uint64_t arena_slab_allocations() noexcept {
  return g_arena_slab_allocations.load(std::memory_order_relaxed);
}

namespace detail {
void count_arena_slab_allocation() noexcept {
  g_arena_slab_allocations.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace dapsp
