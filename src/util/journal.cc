#include "util/journal.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace dapsp {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteReader::need(std::size_t k) const {
  if (left_ < k) {
    throw std::runtime_error(std::string(context_) + ": truncated input");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  const std::uint8_t v = *p_;
  ++p_;
  --left_;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p_[i]} << (8 * i);
  p_ += 4;
  left_ -= 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p_[i]} << (8 * i);
  p_ += 8;
  left_ -= 8;
  return v;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t k) {
  need(k);
  std::vector<std::uint8_t> out(p_, p_ + k);
  p_ += k;
  left_ -= k;
  return out;
}

void ByteReader::skip(std::size_t k) {
  need(k);
  p_ += k;
  left_ -= k;
}

// ------------------------------------------------------------------ FileSink

struct FileSink::Impl {
  std::ofstream out;
};

FileSink::FileSink(const std::string& path, Mode mode, CrashPoint* crash)
    : impl_(new Impl), crash_(crash) {
  const auto flags = std::ios::binary | std::ios::out |
                     (mode == Mode::kAppend ? std::ios::app : std::ios::trunc);
  impl_->out.open(path, flags);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("FileSink: cannot open " + path);
  }
}

FileSink::~FileSink() { delete impl_; }

void FileSink::write(std::span<const std::uint8_t> bytes) {
  std::size_t allowed = bytes.size();
  bool fire = false;
  if (crash_ != nullptr && crash_->kill_at_byte != 0) {
    const std::uint64_t room = crash_->kill_at_byte > crash_->written
                                   ? crash_->kill_at_byte - crash_->written
                                   : 0;
    if (room < bytes.size()) {
      allowed = static_cast<std::size_t>(room);
      fire = true;
    }
  }
  if (allowed > 0) {
    impl_->out.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(allowed));
    if (!impl_->out) throw std::runtime_error("FileSink: write failed");
    written_ += allowed;
    if (crash_ != nullptr) crash_->written += allowed;
  }
  if (fire) {
    // The prefix is durable, the rest of this write is lost — exactly a
    // process kill at this byte offset.
    impl_->out.flush();
    if (crash_->hard_exit) {
      std::fprintf(stderr, "killed at durable byte %llu (by request)\n",
                   static_cast<unsigned long long>(crash_->written));
      std::_Exit(42);
    }
    throw CrashPointReached(crash_->written);
  }
}

void FileSink::flush() {
  impl_->out.flush();
  if (!impl_->out) throw std::runtime_error("FileSink: flush failed");
}

// ------------------------------------------------------------------- journal

const char* to_string(JournalError e) noexcept {
  switch (e) {
    case JournalError::kNone:
      return "none";
    case JournalError::kMissing:
      return "missing";
    case JournalError::kTornHeader:
      return "torn-header";
    case JournalError::kBadMagic:
      return "bad-magic";
    case JournalError::kVersionMismatch:
      return "version-mismatch";
    case JournalError::kTornTail:
      return "torn-tail";
  }
  return "?";
}

JournalScan scan_journal(const std::string& path) {
  JournalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    scan.error = JournalError::kMissing;
    return scan;
  }
  std::vector<std::uint8_t> b{std::istreambuf_iterator<char>(in), {}};
  scan.file_bytes = b.size();
  if (b.size() < kJournalHeaderBytes) {
    scan.error = JournalError::kTornHeader;
    return scan;
  }
  if (std::memcmp(b.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    scan.error = JournalError::kBadMagic;
    return scan;
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= std::uint32_t{b[4 + static_cast<std::size_t>(i)]} << (8 * i);
  }
  if (version != kJournalVersion) {
    scan.error = JournalError::kVersionMismatch;
    return scan;
  }
  scan.valid_bytes = kJournalHeaderBytes;
  ByteReader r(std::span<const std::uint8_t>(b).subspan(kJournalHeaderBytes),
               "scan_journal");
  while (r.left() > 0) {
    if (!r.can_read(4 + 8)) {
      scan.error = JournalError::kTornTail;  // partial record header
      return scan;
    }
    const std::uint32_t len = r.u32();
    const std::uint64_t want = r.u64();
    if (len > kJournalMaxPayload || !r.can_read(len)) {
      scan.error = JournalError::kTornTail;  // partial (or absurd) payload
      return scan;
    }
    std::vector<std::uint8_t> payload = r.bytes(len);
    if (fnv1a64(payload) != want) {
      // A checksum break is treated as tail damage: everything from this
      // record on is dropped (crash-only fault model — see header).
      scan.error = JournalError::kTornTail;
      return scan;
    }
    scan.records.push_back(std::move(payload));
    scan.valid_bytes += 4 + 8 + std::uint64_t{len};
  }
  return scan;
}

bool repair_journal(const std::string& path) {
  const JournalScan scan = scan_journal(path);
  switch (scan.error) {
    case JournalError::kNone:
    case JournalError::kMissing:
      return false;
    case JournalError::kBadMagic:
    case JournalError::kVersionMismatch:
      throw std::runtime_error("repair_journal: " + path + " is " +
                               to_string(scan.error) +
                               " — refusing to truncate a foreign file");
    case JournalError::kTornHeader:
      // Nothing durable inside — remove the husk entirely (a zero-byte
      // file would classify as torn forever).
      std::filesystem::remove(path);
      return true;
    case JournalError::kTornTail:
      break;
  }
  std::filesystem::resize_file(path, scan.valid_bytes);
  return true;
}

JournalWriter::JournalWriter(const std::string& path, FileSink::Mode mode,
                             CrashPoint* crash)
    : sink_(path,
            [&] {
              if (mode == FileSink::Mode::kAppend) {
                std::error_code ec;
                const auto size = std::filesystem::file_size(path, ec);
                // A missing or header-less file cannot be appended to —
                // restart it fresh (the header is rewritten below).
                if (ec || size < kJournalHeaderBytes) {
                  return FileSink::Mode::kTruncate;
                }
              }
              return mode;
            }(),
            crash) {
  if (sink_.bytes_written() == 0 &&
      [&] {
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        return !ec && size >= kJournalHeaderBytes;
      }()) {
    return;  // appending to an existing, headered journal
  }
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kJournalMagic, kJournalMagic + 4);
  put_u32(header, kJournalVersion);
  sink_.write(header);
  sink_.flush();
}

std::uint64_t JournalWriter::append(std::span<const std::uint8_t> payload) {
  if (payload.size() > kJournalMaxPayload) {
    throw std::invalid_argument("JournalWriter::append: payload too large");
  }
  std::vector<std::uint8_t> rec;
  rec.reserve(12 + payload.size());
  put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  put_u64(rec, fnv1a64(payload));
  rec.insert(rec.end(), payload.begin(), payload.end());
  sink_.write(rec);
  sink_.flush();
  ++records_;
  return rec.size();
}

}  // namespace dapsp
