// Lightweight metrics: exact integer histograms and a named registry with
// JSON/CSV exporters.
//
// The CONGEST engine's cost measures are small non-negative integers (bits
// per edge-round, messages per round), so Histogram stores exact per-value
// counts in a dense vector — no bucketing error, O(1) add, and a merge that
// is a plain vector sum. Merging is commutative and associative, which is
// what lets the sharded engine (DESIGN.md §11-§12) collect samples per shard
// and fold them in fixed shard order with a partition-independent result.
//
// MetricsRegistry is a string-keyed bag of counters and histograms for
// surfaces (CLI --metrics-out, benches) that want one self-describing
// artifact; iteration order is insertion order so exports are deterministic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dapsp {

// Exact histogram over small non-negative integer samples: counts_[v] is the
// multiplicity of sample value v.
class Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);
  // Per-value counts merge by addition (commutative: shard order immaterial).
  void merge(const Histogram& other);
  void clear();

  std::uint64_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }
  // Count of one exact value (0 for anything never observed).
  std::uint64_t count(std::uint64_t value) const noexcept;
  // Smallest / largest value observed. Only meaningful when !empty().
  std::uint64_t min_value() const noexcept;
  std::uint64_t max_value() const noexcept;
  double mean() const noexcept;
  // Smallest value v with cdf(v) >= q, q in [0, 1]. quantile(1.0) is the max.
  std::uint64_t quantile(double q) const noexcept;

  // Dense per-value counts, index = sample value (may have trailing zeros).
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Insertion-ordered registry of named counters and histograms.
class MetricsRegistry {
 public:
  // Returns (creating on first use) the named metric. References stay valid
  // for the registry's lifetime.
  std::uint64_t& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  const std::vector<std::pair<std::string, std::uint64_t>>& counters()
      const noexcept {
    return counters_;
  }
  const std::vector<std::pair<std::string, Histogram>>& histograms()
      const noexcept {
    return histograms_;
  }

  // One JSON object: {"counters": {...}, "histograms": {name: {"total": ...,
  // "min": ..., "max": ..., "mean": ..., "counts": {"value": count, ...}}}}.
  void write_json(std::ostream& os) const;
  // Long-form CSV: metric,kind,value,count — counters use value "" and the
  // counter reading as count, histogram rows are one per distinct value.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace dapsp
