#include "util/metrics.h"

#include <algorithm>
#include <ostream>

namespace dapsp {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (counts_.size() <= value) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
}

void Histogram::merge(const Histogram& other) {
  if (counts_.size() < other.counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  total_ += other.total_;
}

void Histogram::clear() {
  counts_.clear();
  total_ = 0;
}

std::uint64_t Histogram::count(std::uint64_t value) const noexcept {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t Histogram::min_value() const noexcept {
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] != 0) return v;
  }
  return 0;
}

std::uint64_t Histogram::max_value() const noexcept {
  for (std::size_t v = counts_.size(); v > 0; --v) {
    if (counts_[v - 1] != 0) return v - 1;
  }
  return 0;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    seen += counts_[v];
    if (static_cast<double>(seen) >= target && counts_[v] != 0) return v;
  }
  return max_value();
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  for (auto& [key, value] : counters_) {
    if (key == name) return value;
  }
  counters_.emplace_back(std::string(name), 0);
  return counters_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  for (auto& [key, value] : histograms_) {
    if (key == name) return value;
  }
  histograms_.emplace_back(std::string(name), Histogram{});
  return histograms_.back().second;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << counters_[i].first
       << "\": " << counters_[i].second;
  }
  os << (counters_.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const auto& [name, h] = histograms_[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name << "\": {\"total\": "
       << h.total() << ", \"min\": " << h.min_value()
       << ", \"max\": " << h.max_value() << ", \"mean\": " << h.mean()
       << ", \"counts\": {";
    bool first = true;
    const auto counts = h.counts();
    for (std::size_t v = 0; v < counts.size(); ++v) {
      if (counts[v] == 0) continue;
      os << (first ? "" : ", ") << "\"" << v << "\": " << counts[v];
      first = false;
    }
    os << "}}";
  }
  os << (histograms_.empty() ? "}" : "\n  }") << "\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "metric,kind,value,count\n";
  for (const auto& [name, value] : counters_) {
    os << name << ",counter,," << value << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto counts = h.counts();
    for (std::size_t v = 0; v < counts.size(); ++v) {
      if (counts[v] == 0) continue;
      os << name << ",histogram," << v << "," << counts[v] << "\n";
    }
  }
}

}  // namespace dapsp
