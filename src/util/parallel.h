// A small persistent worker pool for the round engine's per-round fan-out.
//
// The CONGEST engine steps thousands of rounds, each with one parallel
// region; spawning threads per round would dominate the work. WorkerPool
// keeps its threads alive across calls and hands out shard indices through
// an atomic counter, so one run() costs two condition-variable hops, not a
// thread launch. Shard *assignment* to threads is racy by design; callers
// must make the result independent of it (the engine does: each shard owns a
// fixed node range and a private accumulator, merged in shard order).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dapsp {

// Non-owning reference to a callable invoked as void(unsigned). run() used
// to take std::function, whose construction heap-allocates once the capture
// list outgrows the small-buffer optimisation — a per-round allocation in
// the engine's hot loop. FunctionRef is two words, never allocates, and the
// referenced callable only needs to outlive the run() call (the engine's
// shard lambda lives on the caller's stack for exactly that long).
class FunctionRef {
 public:
  FunctionRef() = default;
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f) noexcept  // NOLINT: implicit by design, mirrors std::function
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, unsigned shard) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(shard);
        }) {}

  void operator()(unsigned shard) const { call_(obj_, shard); }
  explicit operator bool() const noexcept { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, unsigned) = nullptr;
};

class WorkerPool {
 public:
  // Spawns `workers` threads (>= 1). The calling thread also participates in
  // every run(), so total parallelism is workers + 1.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Invokes fn(shard) once for every shard in [0, num_shards), distributed
  // over the pool threads and the caller; returns when all invocations have
  // finished. The referenced callable must outlive the call (it is not
  // copied — no allocation per run). fn must not call run() reentrantly.
  // Exceptions thrown by fn terminate (the engine catches per-node failures
  // itself and never lets them escape into the pool).
  void run(unsigned num_shards, FunctionRef fn);

  unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  void worker_loop();
  void drain();  // grab-and-run shards until the current job is exhausted

  std::mutex mutex_;
  std::condition_variable wake_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // run() waits for remaining_ == 0
  FunctionRef fn_;
  unsigned num_shards_ = 0;
  std::atomic<unsigned> next_shard_{0};
  unsigned remaining_ = 0;            // guarded by mutex_
  unsigned in_drain_ = 0;             // guarded by mutex_: workers inside drain()
  std::uint64_t generation_ = 0;      // guarded by mutex_
  bool stop_ = false;                 // guarded by mutex_
  std::vector<std::thread> threads_;
};

}  // namespace dapsp
