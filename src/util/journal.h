// Append-only write-ahead journal with torn-tail recovery (DESIGN.md §15).
//
// The long-running service acknowledges a churn batch only after it is
// durable; a process kill between delta batches or inside a checkpoint write
// must never lose an acknowledged update. This module supplies the storage
// substrate for that contract:
//
//   * File format — an 8-byte versioned header ("DJRN" + little-endian
//     format version) followed by self-delimiting records:
//         u32 payload_len | u64 fnv1a64(payload) | payload bytes
//     Every field is little-endian. The per-record checksum catches bit
//     damage; the length prefix makes the valid prefix recognizable after a
//     crash mid-append.
//
//   * Torn-tail semantics — a crash can leave any byte prefix of the file.
//     scan_journal() reads the longest valid record prefix and classifies
//     the remainder: a partial header, a partial record, or a record whose
//     checksum fails is a *torn tail* (kTornTail) and repair_journal()
//     truncates it away; a full header with the wrong magic or version is
//     NOT crash damage and is reported distinctly (kBadMagic /
//     kVersionMismatch) so callers can refuse rather than silently destroy
//     a foreign file.
//
//   * Crash-point injection — every durable byte flows through a FileSink
//     that honors an optional CrashPoint budget: after exactly
//     `kill_at_byte` cumulative bytes the sink writes the partial prefix,
//     flushes it, and either throws CrashPointReached (the deterministic
//     in-process fuzzer) or terminates the process with exit code 42
//     (examples/dapsp_service --kill-at-byte). Byte offsets are global
//     across journal appends and checkpoint writes, so one integer
//     deterministically names any crash point in the durable stream.
//
// Durability note: "flushed" here means pushed through the C++ stream layer
// to the OS (the crash model is process death, which the fuzzer and the
// kill matrix exercise); surviving a kernel or power crash would need an
// fsync at the same points.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dapsp {

// FNV-1a 64-bit over `bytes` — the checksum used by journal records and
// service checkpoints.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

// Little-endian append helpers shared by every serializer in the repo.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);

// Bounds-checked little-endian reader. Throws std::runtime_error with
// `context` in the message when a read would run past the end.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes, const char* context)
      : p_(bytes.data()), left_(bytes.size()), context_(context) {}

  std::size_t left() const noexcept { return left_; }
  bool can_read(std::size_t k) const noexcept { return left_ >= k; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  // Copies `k` raw bytes out.
  std::vector<std::uint8_t> bytes(std::size_t k);
  void skip(std::size_t k);

 private:
  void need(std::size_t k) const;

  const std::uint8_t* p_;
  std::size_t left_;
  const char* context_;
};

// Thrown by a sink when its CrashPoint budget fires in soft mode: the bytes
// up to the budget are durable, everything after is lost — exactly what a
// process kill at that offset would leave.
struct CrashPointReached : std::runtime_error {
  explicit CrashPointReached(std::uint64_t at)
      : std::runtime_error("crash point reached at durable byte " +
                           std::to_string(at)),
        at_byte(at) {}
  std::uint64_t at_byte;
};

// A deterministic kill switch shared by every durable writer of one run.
// `written` accumulates across sinks (journal appends, checkpoint temp
// files), so kill_at_byte addresses one global offset in the durable stream.
struct CrashPoint {
  std::uint64_t kill_at_byte = 0;  // fire when `written` reaches this; 0 = off
  bool hard_exit = false;          // std::_Exit(42) instead of throwing
  std::uint64_t written = 0;       // cumulative durable bytes so far
};

// A file-backed byte sink honoring an optional CrashPoint. Not buffered
// beyond the underlying stream; flush() pushes to the OS.
class FileSink {
 public:
  enum class Mode { kTruncate, kAppend };
  // Throws std::runtime_error if the file cannot be opened.
  FileSink(const std::string& path, Mode mode, CrashPoint* crash = nullptr);
  ~FileSink();

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  // Writes `bytes`, stopping short (then flushing and firing) when the
  // crash budget lands inside the span.
  void write(std::span<const std::uint8_t> bytes);
  void flush();

  std::uint64_t bytes_written() const noexcept { return written_; }

 private:
  struct Impl;
  Impl* impl_;
  CrashPoint* crash_;
  std::uint64_t written_ = 0;
};

inline constexpr char kJournalMagic[4] = {'D', 'J', 'R', 'N'};
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 8;
// Sanity cap on one record's payload; larger length prefixes are treated as
// tail damage rather than attempted as allocations.
inline constexpr std::uint32_t kJournalMaxPayload = 1u << 30;

enum class JournalError : std::uint8_t {
  kNone = 0,         // clean: header + zero or more whole records
  kMissing = 1,      // no file
  kTornHeader = 2,   // fewer than 8 bytes — a crash before the header landed
  kBadMagic = 3,     // 8+ bytes but not a journal (never auto-repaired)
  kVersionMismatch = 4,  // journal from a different format version
  kTornTail = 5,     // valid prefix, then a partial/corrupt record
};

const char* to_string(JournalError e) noexcept;

struct JournalScan {
  JournalError error = JournalError::kNone;
  // The valid record payloads, in append order (the prefix before any tear).
  std::vector<std::vector<std::uint8_t>> records;
  std::uint64_t valid_bytes = 0;  // header + whole valid records
  std::uint64_t file_bytes = 0;
};

// Reads the longest valid prefix of the journal at `path`. Never throws on
// file damage — the classification is the result.
JournalScan scan_journal(const std::string& path);

// Truncate-on-torn-tail recovery: drops a torn tail (or torn header) in
// place and returns true when bytes were removed. kBadMagic and
// kVersionMismatch are NOT repaired (throws std::runtime_error — the file
// is not ours to destroy); kMissing and kNone return false untouched.
bool repair_journal(const std::string& path);

// Append-only writer. kTruncate starts a fresh journal (header written
// immediately); kAppend continues one whose damaged tail, if any, has been
// repaired — a missing or header-less file is (re)started fresh.
class JournalWriter {
 public:
  JournalWriter(const std::string& path, FileSink::Mode mode,
                CrashPoint* crash = nullptr);

  // Appends one length-prefixed, checksummed record and flushes — the
  // acknowledgement point of the WAL protocol. Returns the record's size on
  // disk (header excluded).
  std::uint64_t append(std::span<const std::uint8_t> payload);

  std::uint64_t records_appended() const noexcept { return records_; }

 private:
  FileSink sink_;
  std::uint64_t records_ = 0;
};

}  // namespace dapsp
