// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every randomized component in this library (graph generators, randomized
// dominating-set sampling in Algorithm 3, ID shuffles) takes an explicit
// seed, so that each test and bench run is bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dapsp {

// SplitMix64: tiny, fast, statistically solid generator used to seed and to
// drive all randomness in the library. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept;

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  // Derive an independent child generator (for nested components).
  Rng fork() noexcept { return Rng((*this)()); }

  // The full generator state (SplitMix64 is its counter). Re-seeding a new
  // Rng with this value resumes the exact stream — the serialization hook
  // used by checkpointable components (graph/delta.h plans).
  std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

// In-place Fisher-Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace dapsp
