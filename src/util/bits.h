// Small bit-arithmetic helpers used by the CONGEST bandwidth accounting.
#pragma once

#include <cstdint>

namespace dapsp {

// Number of bits needed to represent values in [0, n] (at least 1).
// bits_for(0) == 1, bits_for(1) == 1, bits_for(2) == 2, bits_for(255) == 8.
int bits_for(std::uint64_t n) noexcept;

// ceil(log2(n)) for n >= 1; ceil_log2(1) == 0.
int ceil_log2(std::uint64_t n) noexcept;

// Integer square root: largest r with r*r <= n.
std::uint64_t isqrt(std::uint64_t n) noexcept;

// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace dapsp
