// Flat-memory primitives for the round engine's hot path (DESIGN.md §16).
//
// The CONGEST engine steps thousands of rounds; before this header existed,
// every round touched O(n) little `std::vector`s (per-node outboxes, delivery
// lists, event buffers), so the round loop was allocation- and pointer-chase
// bound instead of compute-bound. These types replace that idiom with flat,
// pooled, structure-of-arrays buffers:
//
//   * BumpArena<T> — a bump-pointer buffer of trivially copyable records.
//     push() bumps a cursor; reset() rewinds it WITHOUT freeing, so after a
//     warm-up round the steady-state round loop performs zero heap
//     allocations (tests/test_arena.cc pins this with an operator-new hook).
//     Under AddressSanitizer the tail [size, capacity) is manually poisoned
//     on every reset, so any read of a stale span from a previous round —
//     the classic arena-reuse bug — faults immediately instead of yielding
//     quietly wrong bytes. Slab growths are counted in a global probe
//     (arena_slab_allocations()) so tests can assert "no growth after
//     warm-up" without instrumenting malloc.
//
//   * CacheAligned<T> — pads a per-shard counter block to a cache line so
//     concurrent shards never false-share (the 8-thread scaling cliff in the
//     pre-flat engine was partly adjacent ShardAccums sharing lines).
//
//   * Bitset — a flat word-array bitset for per-round frontier/exclusion
//     sets (core/pebble_apsp.cc uses one to mark same-round flood senders
//     instead of per-root `std::vector` scans).
//
// All three are deliberately minimal: no iterators beyond span(), no
// erase, no non-trivial element types. The engine's determinism contract
// (DESIGN.md §11) depends only on WHAT is stored, never on where; these
// buffers change the where.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define DAPSP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DAPSP_ASAN 1
#endif
#endif

#ifndef DAPSP_ASAN
#define DAPSP_ASAN 0
#endif

#if DAPSP_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace dapsp {

inline constexpr std::size_t kCacheLineBytes = 64;

// Slab (backing-store) allocations performed by every BumpArena in the
// process since start. Steady-state round loops must not move this: a test
// snapshots it, runs N rounds, and asserts the delta is zero (capacity was
// reused, nothing grew). The counter is relaxed-atomic underneath — shards
// grow their own arenas concurrently — but tests read it at quiescent points.
std::uint64_t arena_slab_allocations() noexcept;

namespace detail {
void count_arena_slab_allocation() noexcept;

inline void poison(const void* p, std::size_t bytes) noexcept {
#if DAPSP_ASAN
  __asan_poison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

inline void unpoison(const void* p, std::size_t bytes) noexcept {
#if DAPSP_ASAN
  __asan_unpoison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}
}  // namespace detail

// Bump-pointer buffer of trivially copyable records. Owned by exactly one
// shard/thread at a time; not thread-safe by itself.
template <typename T>
class BumpArena {
  static_assert(std::is_trivially_copyable_v<T>,
                "BumpArena records are memcpy-moved on growth");

 public:
  BumpArena() = default;
  ~BumpArena() {
    if (data_ != nullptr) {
      detail::unpoison(data_, capacity_ * sizeof(T));
      std::allocator<T>{}.deallocate(data_, capacity_);
    }
  }
  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;
  BumpArena(BumpArena&& other) noexcept { swap(other); }
  BumpArena& operator=(BumpArena&& other) noexcept {
    swap(other);
    return *this;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }
  const T* data() const noexcept { return data_; }

  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }

  // Everything pushed since the last reset(), in push order.
  std::span<const T> span() const noexcept { return {data_, size_}; }
  // The records [first, first + count) — for per-node segments registered as
  // (mark, size-mark) pairs. Resolved at call time, so arena growth between
  // registration and read never invalidates a segment.
  std::span<const T> span(std::size_t first, std::size_t count) const noexcept {
    return {data_ + first, count};
  }

  // Cursor position, for delimiting a segment before a batch of pushes.
  std::size_t mark() const noexcept { return size_; }

  // Rewinds the cursor. Capacity (and the backing slab) are retained — this
  // is the "reset per round without freeing" half of the arena contract.
  // Under ASan the whole retained region is poisoned; stale spans from
  // before the reset fault on first touch.
  void reset() noexcept {
    size_ = 0;
    detail::poison(data_, capacity_ * sizeof(T));
  }

  T& push(const T& v) {
    if (size_ == capacity_) grow(size_ + 1);
    detail::unpoison(data_ + size_, sizeof(T));
    T* slot = data_ + size_;
    std::memcpy(static_cast<void*>(slot), &v, sizeof(T));
    ++size_;
    return *slot;
  }

  // Pre-grows the slab to hold at least `n` records (no size change). The
  // engine calls this once at init so steady-state rounds never grow.
  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

 private:
  void swap(BumpArena& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

  void grow(std::size_t need) {
    std::size_t cap = capacity_ == 0 ? 16 : capacity_ * 2;
    if (cap < need) cap = need;
    T* fresh = std::allocator<T>{}.allocate(cap);
    detail::count_arena_slab_allocation();
    if (size_ != 0) {
      std::memcpy(static_cast<void*>(fresh), data_, size_ * sizeof(T));
    }
    if (data_ != nullptr) {
      detail::unpoison(data_, capacity_ * sizeof(T));
      std::allocator<T>{}.deallocate(data_, capacity_);
    }
    data_ = fresh;
    capacity_ = cap;
    detail::poison(data_ + size_, (capacity_ - size_) * sizeof(T));
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

// Pads T to a cache line so per-shard instances in one array never share a
// line. alignof is the line size, so std::vector<CacheAligned<T>> lays the
// elements out one per line (C++17 aligned operator new).
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

// Flat word-array bitset sized at run time. Unlike std::vector<bool> the
// word array is directly addressable, and clear_prefix() lets a per-round
// user wipe only the words it dirtied.
class Bitset {
 public:
  void resize(std::size_t bits) {
    words_.assign((bits + 63) / 64, 0);
    bits_ = bits;
  }
  // Grows to at least `bits` without clearing existing words (new words are
  // zero). For per-round sets that expand as slots are discovered.
  void ensure(std::size_t bits) {
    if (bits > bits_) {
      words_.resize((bits + 63) / 64, 0);
      bits_ = bits;
    }
  }
  std::size_t size() const noexcept { return bits_; }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) noexcept { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void unset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  // Zeroes the words covering bits [0, bits) — O(bits/64), not O(size).
  // The empty-bitset guards matter: memset is declared nonnull, and a
  // never-grown bitset has a null word array (UBSan flags the call).
  void clear_prefix(std::size_t bits) noexcept {
    const std::size_t words = std::min(words_.size(), (bits + 63) / 64);
    if (words != 0) {
      std::memset(words_.data(), 0, words * sizeof(std::uint64_t));
    }
  }
  void clear_all() noexcept {
    if (!words_.empty()) {
      std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t));
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace dapsp
