#include "util/blob.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DAPSP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dapsp {

MappedBlob& MappedBlob::operator=(MappedBlob&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    owned_ = std::move(other.owned_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    if (!mapped_ && size_ > 0) data_ = owned_.data();
  }
  return *this;
}

void MappedBlob::reset() noexcept {
#ifdef DAPSP_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.clear();
}

MappedBlob MappedBlob::map_file(const std::string& path) {
  MappedBlob b;
#ifdef DAPSP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MappedBlob: cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("MappedBlob: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return b;
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p != MAP_FAILED) {
    b.data_ = static_cast<const std::uint8_t*>(p);
    b.size_ = size;
    b.mapped_ = true;
    return b;
  }
#endif
  // Fallback: plain read into owned memory.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MappedBlob: cannot open " + path);
  }
  b.owned_.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  b.data_ = b.owned_.data();
  b.size_ = b.owned_.size();
  b.mapped_ = false;
  return b;
}

void write_blob_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_blob_atomic: cannot write " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("write_blob_atomic: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_blob_atomic: rename failed for " + path);
  }
}

}  // namespace dapsp
