#include "util/parallel.h"

namespace dapsp {

WorkerPool::WorkerPool(unsigned workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(unsigned num_shards, FunctionRef fn) {
  if (num_shards == 0) return;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    // A worker that finished the previous job's last shard may still be about
    // to probe the ticket counter once more; recycling the counter under it
    // would hand it a phantom shard. Wait for every straggler to leave.
    done_cv_.wait(lk, [&] { return in_drain_ == 0; });
    fn_ = fn;
    num_shards_ = num_shards;
    next_shard_.store(0, std::memory_order_relaxed);
    remaining_ = num_shards;
    ++generation_;
  }
  wake_cv_.notify_all();
  drain();  // the caller is always a participant
  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] { return remaining_ == 0; });
  fn_ = FunctionRef{};
}

void WorkerPool::drain() {
  // fn_/num_shards_ are written under mutex_ before the generation bump and
  // read here strictly after an acquire of mutex_ (workers observe the bump
  // under the lock; the caller set them itself), so plain reads are ordered.
  for (;;) {
    const unsigned s = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (s >= num_shards_) return;
    fn_(s);
    std::lock_guard<std::mutex> lk(mutex_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    ++in_drain_;
    lk.unlock();
    drain();
    lk.lock();
    if (--in_drain_ == 0) done_cv_.notify_all();
  }
}

}  // namespace dapsp
