// Structured event tracing for the CONGEST engine (DESIGN.md §12).
//
// A TraceLog attached via EngineConfig::trace records one TraceEvent per
// observable transport/protocol happening: sends (with the full message),
// deliveries, the fate faults dealt a message (drop / extra delay /
// duplication), crash-stops, failure-detector NeighborDown verdicts, and
// protocol-level BFS frontier progress (RoundCtx::trace_frontier).
//
// Collection is sharded: during the parallel phases every event is appended
// to a per-sender buffer owned by that node's shard (lock-free — shards own
// disjoint node ranges), and after the round the engine drains the buffers
// in ascending sender order into the log. The resulting stream is
// round-major, then sender-major, then send-order — exactly the serial
// engine's global send order — so trace files are byte-identical at every
// EngineConfig::threads value (the determinism contract, DESIGN.md §11).
// Events recorded during serial engine phases (deliveries, crashes) are
// appended directly, at fixed points of the round, so they land at the same
// stream positions regardless of thread count.
//
// The same merged stream drives EngineConfig::send_observer, which therefore
// no longer forces a serial accounting pass (the pre-§12 serialization
// cliff): observers see kSend events replayed in the order above.
//
// Exporters: Chrome-trace JSON (load into chrome://tracing or Perfetto; one
// lane per node, or one lane per flood source for kApspFlood/kSspToken/
// frontier events; ts = round, strictly non-decreasing in file order),
// JSONL (one event object per line) and CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"

namespace dapsp::congest {

enum class TraceEventKind : std::uint8_t {
  kSend = 0,          // node -> peer, msg: the message (post-validation)
  kDeliver = 1,       // peer -> node's inbox at `round`, msg: the message
  kDrop = 2,          // the send node -> peer was lost (fault plan / crash)
  kDelay = 3,         // a copy held back; aux = extra rounds of latency
  kDuplicate = 4,     // a second copy of node -> peer was created
  kCrash = 5,         // node crash-stopped at `round`
  kNeighborDown = 6,  // node's detector declared peer dead
  kFrontier = 7,      // node joined source `peer`'s BFS frontier; msg.f[0] =
                      // adopted distance (RoundCtx::trace_frontier)
  kCorrupt = 8,       // a delivered copy of node -> peer had one payload bit
                      // flipped; aux = flipped bit index, msg = corrupted copy
  kDelta = 9,         // service graph mutation applied (core/service.h):
                      // node = u, peer = v (or u for node deltas), round =
                      // service epoch, aux = graph delta kind (graph/delta.h)
  kEpoch = 10,        // service repair epoch completed: node = epoch index,
                      // peer = suspect-row count, round = service epoch,
                      // aux = outcome (0 clean, 1 repaired, 2 retried,
                      // 3 escalated to full recompute)
  kJournal = 11,      // durable service WAL record acknowledged
                      // (core/durable.h): node = record index this process,
                      // peer = payload bytes, round = epoch the record
                      // creates
  kRecovery = 12,     // durable recovery completed: node = checkpoint epoch
                      // (low 32 bits), peer = journal batches replayed,
                      // round = recovered epoch, aux = bit 0 checkpoint
                      // generation fallback, bit 1 journal tail truncated,
                      // bit 2 fresh start (no usable checkpoint)
  kShed = 13,         // admission controller refused a request
                      // (core/resilience.h): node = request id (low 32
                      // bits), peer = priority class (0 interactive,
                      // 1 batch, 2 background), round = virtual time of
                      // the shed decision (us; arrival for rate/queue-full
                      // sheds, reap time for queue-wait sheds — monotone),
                      // aux = shed reason (0 rate-limited, 1 queue-full,
                      // 2 queue-wait deadline)
  kBreaker = 14,      // repair circuit breaker observed-state change
                      // (core/service.h RepairGate): node = new state
                      // (0 closed, 1 open, 2 half-open), peer = previous
                      // state, round = service epoch, aux = cumulative
                      // observed-transition count
};

const char* to_string(TraceEventKind k) noexcept;

// Sentinel for events with no peer (crashes).
inline constexpr NodeId kTraceNoPeer = 0xffffffffu;

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSend;
  NodeId node = 0;            // acting node (sender / crasher / suspecter)
  NodeId peer = kTraceNoPeer; // receiver / suspected neighbor / flood source
  std::uint64_t round = 0;
  std::uint32_t aux = 0;      // kDelay: extra rounds of latency; else 0
  Message msg{};              // payload where the kind defines one

  bool operator==(const TraceEvent&) const = default;
};

// Which Chrome-trace lane an event lands in.
enum class TraceLanes {
  kPerNode,   // tid = acting node: every event
  kPerFlood,  // tid = flood source: only kApspFlood/kSspToken sends and
              // kFrontier events (source-major view of Lemma 1's schedule)
};

// An append-only event log. Attach one via EngineConfig::trace; the engine
// appends, the caller exports/inspects after the run. Engine::init() does
// NOT clear it (so multi-phase protocols can share one log) — call clear()
// between unrelated runs. Not thread-safe by itself: the engine appends only
// from its serial merge points.
class TraceLog {
 public:
  std::span<const TraceEvent> events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  void append(const TraceEvent& ev) { events_.push_back(ev); }

  // Chrome-trace JSON ("traceEvents" array of duration-1 "X" events,
  // ts = round). Timestamps are non-decreasing in file order.
  void write_chrome_json(std::ostream& os,
                         TraceLanes lanes = TraceLanes::kPerNode) const;
  // One JSON object per line: {"kind": "...", "node": ..., "peer": ...,
  // "round": ..., "msg_kind": ..., "f": [...]}.
  void write_jsonl(std::ostream& os) const;
  // kind,node,peer,round,msg_kind,f0,f1,f2,f3,f4 (header row included).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

// Largest number of kSend events of message kind `msg_kind` crossing any one
// directed edge in any one round — Lemma 1's congestion profile: 1 for
// kApspFlood on a fault-free pebble-APSP run. (Tests feed this into a
// util/metrics Histogram for the full distribution.)
std::uint64_t max_sends_per_edge_round(std::span<const TraceEvent> events,
                                       std::uint8_t msg_kind);

}  // namespace dapsp::congest
