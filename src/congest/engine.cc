#include "congest/engine.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <thread>

#include "util/bits.h"
#include "util/parallel.h"

namespace dapsp::congest {

void EngineMetrics::merge(const EngineMetrics& other) {
  edge_bits.merge(other.edge_bits);
  edge_messages.merge(other.edge_messages);
  round_activity.merge(other.round_activity);
}

void EngineMetrics::clear() {
  edge_bits.clear();
  edge_messages.clear();
  round_activity.clear();
}

void accumulate(RunStats& into, const RunStats& from) {
  if (into.bandwidth_bits != 0 && from.bandwidth_bits != 0 &&
      into.bandwidth_bits != from.bandwidth_bits) {
    throw std::invalid_argument(
        "accumulate: mismatched bandwidth budgets B=" +
        std::to_string(into.bandwidth_bits) + " vs B=" +
        std::to_string(from.bandwidth_bits) +
        " — stats from phases enforced under different budgets cannot share "
        "one bandwidth_bits field");
  }
  into.rounds += from.rounds;
  into.messages += from.messages;
  into.total_bits += from.total_bits;
  into.max_edge_bits = std::max(into.max_edge_bits, from.max_edge_bits);
  into.max_edge_messages =
      std::max(into.max_edge_messages, from.max_edge_messages);
  into.max_node_bits = std::max(into.max_node_bits, from.max_node_bits);
  into.bandwidth_bits = std::max(into.bandwidth_bits, from.bandwidth_bits);
  into.messages_dropped += from.messages_dropped;
  into.messages_delayed += from.messages_delayed;
  into.messages_duplicated += from.messages_duplicated;
  into.messages_corrupted += from.messages_corrupted;
  into.nodes_crashed += from.nodes_crashed;
  into.node_stall_rounds += from.node_stall_rounds;
  into.neighbors_suspected += from.neighbors_suspected;
  into.repairs_attempted += from.repairs_attempted;
  into.repairs_escalated += from.repairs_escalated;
  into.checkpoint_bytes += from.checkpoint_bytes;
}

std::string RunStats::debug_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " messages=" << messages
     << " bits=" << total_bits << " max_edge_bits=" << max_edge_bits << "/B="
     << bandwidth_bits << " max_edge_msgs=" << max_edge_messages
     << " max_node_bits=" << max_node_bits;
  if (messages_dropped || messages_delayed || messages_duplicated ||
      messages_corrupted || nodes_crashed || node_stall_rounds ||
      neighbors_suspected) {
    os << " dropped=" << messages_dropped << " delayed=" << messages_delayed
       << " duplicated=" << messages_duplicated
       << " crashed=" << nodes_crashed
       << " suspected=" << neighbors_suspected;
    // Keep the counters introduced with the corruption/stall fault classes
    // out of older outputs: print them only when nonzero.
    if (messages_corrupted) os << " corrupted=" << messages_corrupted;
    if (node_stall_rounds) os << " stall_rounds=" << node_stall_rounds;
  }
  // Service-mode health counters: print only when nonzero, so one-shot runs
  // keep their historical output.
  if (repairs_attempted) os << " repairs=" << repairs_attempted;
  if (repairs_escalated) os << " escalated=" << repairs_escalated;
  if (checkpoint_bytes) os << " checkpoint_bytes=" << checkpoint_bytes;
  return std::move(os).str();
}

std::ostream& operator<<(std::ostream& os, const RunStats& s) {
  return os << s.debug_string();
}

const char* to_string(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRoundLimit:
      return "round-limit";
    case RunStatus::kCongestion:
      return "congestion";
    case RunStatus::kDegraded:
      return "degraded";
  }
  return "?";
}

void RoundCtx::send_all(const Message& m) {
  const std::uint32_t d = degree();
  for (std::uint32_t i = 0; i < d; ++i) send(i, m);
}

namespace {

// Applies FaultDecision::corrupt_bit to a message: wire bit layout is the
// kTagBits kind bits followed by num_fields fields of value_bits bits each
// (matching Message::bit_cost, which bounded the draw).
Message corrupt_message(Message m, std::uint32_t bit,
                        std::uint32_t value_bits) {
  if (bit < static_cast<std::uint32_t>(kTagBits)) {
    m.kind = static_cast<std::uint8_t>(m.kind ^ (1u << bit));
  } else {
    const std::uint32_t i = (bit - kTagBits) / value_bits;
    const std::uint32_t j = (bit - kTagBits) % value_bits;
    m.f[i] ^= (1u << j);
  }
  return m;
}

}  // namespace

// The engine-backed round context: the real graph, the real round number,
// the engine's frozen inboxes and buffered sends. One Ctx lives on a worker
// stack per node per round; everything it touches is either read-only during
// the round (graph, round number, the previous round's inboxes) or owned by
// the node/shard (outbox, shard accumulator), so contexts never race.
class Engine::Ctx final : public RoundCtx {
 public:
  Ctx(Engine& engine, NodeId id, ShardAccum& acc) noexcept
      : RoundCtx(id), engine_(engine), acc_(acc) {}

  NodeId n() const noexcept override { return engine_.graph().num_nodes(); }
  std::uint64_t round() const noexcept override {
    return engine_.current_round();
  }
  std::uint32_t degree() const noexcept override {
    return engine_.graph().degree(id_);
  }
  NodeId neighbor(std::uint32_t index) const override {
    return engine_.graph().neighbors(id_)[index];
  }
  std::span<const Received> inbox() const noexcept override {
    const InboxFrame& frame = engine_.inbox_[engine_.cur_inbox_];
    return frame.len[id_] == 0
               ? std::span<const Received>{}
               : std::span<const Received>{frame.items.data() + frame.begin[id_],
                                           frame.len[id_]};
  }
  void send(std::uint32_t index, const Message& m) override {
    if (index >= degree()) {
      throw std::out_of_range("send: bad neighbor index");
    }
    acc_.outbox.push(PendingSend{index, m});
  }
  void note_neighbor_suspected(std::uint32_t neighbor_index) override {
    ++acc_.stats.neighbors_suspected;
    if (engine_.record_trace_) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kNeighborDown;
      ev.node = id_;
      ev.peer = engine_.graph().neighbors(id_)[neighbor_index];
      ev.round = engine_.round_;
      acc_.events.push(ev);
    }
  }
  void trace_frontier(NodeId source, std::uint32_t dist) override {
    if (!engine_.record_trace_) return;
    TraceEvent ev;
    ev.kind = TraceEventKind::kFrontier;
    ev.node = id_;
    ev.peer = source;
    ev.round = engine_.round_;
    ev.msg.num_fields = 1;
    ev.msg.f[0] = dist;
    acc_.events.push(ev);
  }

 private:
  Engine& engine_;
  ShardAccum& acc_;
};

Engine::Engine(const Graph& g, EngineConfig config)
    : graph_(&g), config_(std::move(config)) {
  const NodeId n = g.num_nodes();
  if (n == 0) {
    throw std::invalid_argument(
        "Engine: empty graph (0 nodes); nothing to simulate");
  }
  if (config_.bandwidth_ids == 0) {
    throw std::invalid_argument(
        "Engine: bandwidth_ids must be >= 1 (B would admit no payload)");
  }
  // All transported values (ids, distances, 2*ecc estimates, counts,
  // sub-protocol tags) are < max(2n, 256); size the field width accordingly.
  // This is Theta(log n) with an 8-bit floor so that protocol tag constants
  // fit even on toy graphs.
  value_bits_ = static_cast<std::uint32_t>(
      bits_for(std::max<std::uint64_t>(2 * std::uint64_t{n}, 255)));
  bandwidth_bits_ =
      static_cast<std::uint32_t>(kTagBits) + config_.bandwidth_ids * value_bits_;
  max_rounds_ =
      config_.max_rounds != 0 ? config_.max_rounds : 64 * std::uint64_t{n} + 1024;

  for (InboxFrame& frame : inbox_) {
    frame.begin.assign(n, 0);
    frame.len.assign(n, 0);
  }
  inbox_cursor_.assign(n, 0);
  edge_offsets_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    edge_offsets_[v + 1] = edge_offsets_[v] + g.degree(v);
  }
  const std::size_t directed_edges = edge_offsets_[n];
  // Receiver-side index of every directed edge, built once: the adjacency is
  // CSR with sorted neighbor lists, so the one-time build is O(m log deg)
  // and every subsequent message delivery is a plain load.
  mirror_index_.resize(directed_edges);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      mirror_index_[edge_offsets_[v] + i] = *g.neighbor_index(nbrs[i], v);
    }
  }
  edge_bits_.assign(directed_edges, 0);
  edge_msgs_.assign(directed_edges, 0);
  edge_stamp_.assign(directed_edges, ~std::uint64_t{0});
  node_bits_.assign(n, 0);
  node_stamp_.assign(n, ~std::uint64_t{0});

  if (config_.faults) {
    faults_ = std::make_unique<FaultInjector>(g, *config_.faults);
    delay_ring_.resize(std::size_t{faults_->max_extra_delay()} + 2);
  }
  crashed_.assign(n, 0);

  threads_ = config_.threads != 0
                 ? config_.threads
                 : std::max(1u, std::thread::hardware_concurrency());
  record_trace_ = config_.trace != nullptr;
  record_events_ = record_trace_ || static_cast<bool>(config_.send_observer);
  const std::uint32_t shards =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(threads_, n));
  accum_.resize(shards);
  if (shards > 1) pool_ = std::make_unique<WorkerPool>(shards - 1);
}

Engine::~Engine() = default;

void Engine::init(
    const std::function<std::unique_ptr<Process>(NodeId)>& factory) {
  const NodeId n = graph_->num_nodes();
  processes_.clear();
  processes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = factory(v);
    if (config_.process_wrapper) p = config_.process_wrapper(v, std::move(p));
    processes_.push_back(std::move(p));
  }
  round_ = 0;
  stats_ = RunStats{};
  stats_.bandwidth_bits = bandwidth_bits_;
  pending_messages_ = 0;
  cur_inbox_ = 0;
  for (InboxFrame& frame : inbox_) {
    frame.items.clear();  // capacity retained
    std::fill(frame.begin.begin(), frame.begin.end(), std::size_t{0});
    std::fill(frame.len.begin(), frame.len.end(), std::size_t{0});
  }
  for (ShardAccum& acc : accum_) acc.reset();
  crashed_.assign(n, 0);
  for (auto& slot : delay_ring_) slot.clear();
  delayed_pending_ = 0;
  // Crash-at-round-0 nodes never execute at all.
  apply_crashes();
}

void Engine::run_node(NodeId v, ShardAccum& acc) {
  if (crashed_[v] != 0) return;  // crash-stop: no execution, no sends
  if (faults_ && faults_->stalled(v, round_)) {
    // Transient stall: no execution, no sends, and the round's frozen inbox
    // is never read — the frame swap discards it, so count it as dropped
    // here (shard-local; v's inbox is owned by v's shard this round).
    acc.stats.messages_dropped += inbox_[cur_inbox_].len[v];
    ++acc.stats.node_stall_rounds;
    return;
  }
  acc.outbox.reset();  // the previous node's sends were consumed below
  Ctx ctx(*this, v, acc);
  try {
    processes_[v]->on_round(ctx);
  } catch (...) {
    // Capture instead of unwinding through the worker pool. Every node still
    // runs its round — which errors occur must not depend on the shard
    // partition — and the smallest-node error is rethrown after the merge.
    if (!acc.failed) {
      acc.failed = true;
      acc.failed_node = v;
      acc.error = std::current_exception();
    }
  }
  // Sends buffered before a mid-round failure are still accounted and
  // delivered, mirroring the serial engine (they were already on the wire).
  account_node(v, acc);
}

void Engine::account_node(NodeId v, ShardAccum& acc) {
  const auto outbox = acc.outbox.span();
  if (outbox.empty()) return;
  // An accounting violation reported by node v supersedes a phase-A failure
  // of the same node (the serial engine surfaced the send-time error first)
  // but never an earlier node's failure.
  const auto fail = [&](std::string text) {
    if (acc.failed && acc.failed_node != v) return;
    acc.failed = true;
    acc.failed_node = v;
    acc.error = std::make_exception_ptr(CongestionError(std::move(text)));
  };
  const auto nbrs = graph_->neighbors(v);
  // Event recording goes into the shard's own arena: shard-local, merged
  // later by drain_node_events() in shard order (= ascending sender order).
  const auto record = [&](TraceEventKind kind, NodeId to, const Message& m,
                          std::uint32_t aux) {
    TraceEvent ev;
    ev.kind = kind;
    ev.node = v;
    ev.peer = to;
    ev.round = round_;
    ev.aux = aux;
    ev.msg = m;
    acc.events.push(ev);
  };
  // The node's private fault-decision stream for this round: keyed by
  // (plan seed, v, round), so draws need no cross-shard coordination.
  Rng stream = faults_ ? faults_->stream(v, round_) : Rng(0);
  for (const PendingSend& ps : outbox) {
    const Message& m = ps.msg;
    // Payload honesty: every field must fit the declared field width. This
    // is what makes the B = O(log n) accounting meaningful.
    bool bad_field = false;
    for (int i = 0; i < m.num_fields; ++i) {
      if (std::uint64_t{m.f[static_cast<std::size_t>(i)]} >> value_bits_) {
        fail("message field exceeds value width: " + m.debug_string());
        bad_field = true;
        break;
      }
    }
    if (bad_field) break;  // rest of this node's outbox never hits the wire
    const NodeId to = nbrs[ps.neighbor_index];
    // Directed-edge and per-node load counters are owned by the sender, so
    // shards write disjoint slots.
    const std::size_t edge = edge_offsets_[v] + ps.neighbor_index;
    if (edge_stamp_[edge] != round_) {
      edge_stamp_[edge] = round_;
      edge_bits_[edge] = 0;
      edge_msgs_[edge] = 0;
      if (config_.metrics) acc.touched_edges.push_back(edge);
    }
    const std::uint32_t cost = m.bit_cost(value_bits_);
    edge_bits_[edge] += cost;
    edge_msgs_[edge] += 1;
    if (config_.enforce_bandwidth && edge_bits_[edge] > bandwidth_bits_) {
      fail("bandwidth exceeded on edge " + std::to_string(v) + "->" +
           std::to_string(to) + " in round " + std::to_string(round_) + ": " +
           std::to_string(edge_bits_[edge]) + " > B=" +
           std::to_string(bandwidth_bits_) + " bits (last: " +
           m.debug_string() + ")");
      break;
    }
    acc.stats.max_edge_bits = std::max(acc.stats.max_edge_bits,
                                       edge_bits_[edge]);
    acc.stats.max_edge_messages =
        std::max(acc.stats.max_edge_messages, edge_msgs_[edge]);
    if (node_stamp_[v] != round_) {
      node_stamp_[v] = round_;
      node_bits_[v] = 0;
    }
    node_bits_[v] += cost;
    acc.stats.max_node_bits = std::max(acc.stats.max_node_bits, node_bits_[v]);
    acc.stats.messages += 1;
    acc.stats.total_bits += cost;
    if (record_events_) record(TraceEventKind::kSend, to, m, 0);
    if (config_.record_activity) ++acc.activity;

    // Index of `v` in `to`'s adjacency list: a precomputed load, not a
    // binary search — this runs once per message.
    const Received rec{mirror_index_[edge], m};

    if (faults_) {
      // The message was sent (and charged) — now the wire decides its fate.
      if (faults_->link_down(edge, round_)) {
        ++acc.stats.messages_dropped;
        if (record_trace_) record(TraceEventKind::kDrop, to, m, 0);
        continue;
      }
      const FaultDecision d = faults_->decide(stream, edge, cost);
      if (d.dropped) {
        ++acc.stats.messages_dropped;
        if (record_trace_) record(TraceEventKind::kDrop, to, m, 0);
        continue;
      }
      if (d.copies > 1) {
        ++acc.stats.messages_duplicated;
        if (record_trace_) record(TraceEventKind::kDuplicate, to, m, 0);
      }
      for (std::uint32_t c = 0; c < d.copies; ++c) {
        if (d.extra_delay[c] != 0) {
          ++acc.stats.messages_delayed;
          if (record_trace_) {
            record(TraceEventKind::kDelay, to, m, d.extra_delay[c]);
          }
        }
        Received copy = rec;
        if (d.corrupt_bit[c] != kNoCorruption) {
          copy.msg = corrupt_message(copy.msg, d.corrupt_bit[c], value_bits_);
          ++acc.stats.messages_corrupted;
          if (record_trace_) {
            record(TraceEventKind::kCorrupt, to, copy.msg, d.corrupt_bit[c]);
          }
        }
        acc.deliveries.push(ResolvedDelivery{v, to, copy, d.extra_delay[c]});
      }
      continue;
    }
    acc.deliveries.push(ResolvedDelivery{v, to, rec, 0});
  }
  if (config_.metrics) {
    // Final per-(edge, round) values: the sender owns its edges, so after
    // its outbox the counters are complete for the round.
    for (const std::size_t edge : acc.touched_edges) {
      acc.metrics.edge_bits.add(edge_bits_[edge]);
      acc.metrics.edge_messages.add(edge_msgs_[edge]);
    }
    acc.touched_edges.clear();
  }
}

void Engine::run_phases() {
  const NodeId n = graph_->num_nodes();
  const std::uint32_t shards =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(threads_, n));
  for (ShardAccum& acc : accum_) acc.reset();

  // Phases A+B fused, always inline: observers and traces are fed from the
  // per-sender event buffers after the merge, so instrumentation never
  // forces a serial accounting pass (the pre-§12 serialization cliff).
  const auto shard_body = [&](unsigned s) {
    const NodeId lo = static_cast<NodeId>(std::uint64_t{n} * s / shards);
    const NodeId hi = static_cast<NodeId>(std::uint64_t{n} * (s + 1) / shards);
    ShardAccum& acc = accum_[s];
    for (NodeId v = lo; v < hi; ++v) run_node(v, acc);
  };
  if (pool_) {
    pool_->run(shards, shard_body);
  } else {
    shard_body(0);
  }

  // Merge in fixed shard order. Counters add, loads take maxima and
  // histograms sum per value, so the merged RunStats and metrics are
  // independent of the shard partition — the determinism contract across
  // thread counts.
  std::uint64_t activity = 0;
  std::uint64_t round_messages = 0;
  for (const ShardAccum& acc : accum_) {
    accumulate(stats_, acc.stats);
    activity += acc.activity;
    round_messages += acc.stats.messages;
    if (config_.metrics) config_.metrics->merge(acc.metrics);
  }
  if (config_.metrics) config_.metrics->round_activity.add(round_messages);
  if (config_.record_activity && activity > 0) {
    if (activity_.size() <= round_) activity_.resize(round_ + 1, 0);
    activity_[round_] = activity;
  }

  // Replay buffered events in global send order before error propagation:
  // the serial engine surfaced observer callbacks for every accounted send
  // of the failing round too.
  if (record_events_) drain_node_events();

  // Rethrow the failure of the smallest node (shard ranges ascend, so the
  // first failed shard's record is the smallest; scan all for clarity). A
  // same-node tie between a phase-A error and an accounting error was
  // already resolved in favor of the accounting error by fail() above.
  const ShardAccum* worst = nullptr;
  for (const ShardAccum& acc : accum_) {
    if (!acc.failed) continue;
    if (worst == nullptr || acc.failed_node < worst->failed_node) {
      worst = &acc;
    }
  }
  if (worst != nullptr) std::rethrow_exception(worst->error);
}

void Engine::drain_node_events() {
  // Shards own ascending node ranges and run their nodes in order, so the
  // arenas concatenated in shard order replay events in ascending sender
  // order, each sender's events in append order — the serial engine's
  // global send order.
  for (const ShardAccum& acc : accum_) {
    for (const TraceEvent& ev : acc.events.span()) {
      if (config_.send_observer && ev.kind == TraceEventKind::kSend) {
        config_.send_observer(SendEvent{ev.node, ev.peer, ev.round, ev.msg});
      }
      if (record_trace_) config_.trace->append(ev);
    }
  }
}

void Engine::deliver_round() {
  // Count + prefix-sum + scatter into the next frame. Within a receiver's
  // segment: normal deliveries in ascending sender order (then send order),
  // followed by delayed copies coming due in ring order — exactly the
  // per-node delivery order of the pre-flat engine. Delayed copies are
  // routed to the ring during the counting pass.
  const NodeId n = graph_->num_nodes();
  InboxFrame& next = inbox_[cur_inbox_ ^ 1u];
  std::fill(next.len.begin(), next.len.end(), std::size_t{0});
  std::uint64_t total = 0;
  for (const ShardAccum& acc : accum_) {
    for (const ResolvedDelivery& d : acc.deliveries.span()) {
      if (d.extra_delay == 0) {
        ++next.len[d.to];
        ++total;
      } else {
        const std::uint64_t due = round_ + 1 + d.extra_delay;
        delay_ring_[due % delay_ring_.size()].push_back({d.to, d.rec});
        ++delayed_pending_;
      }
    }
  }
  // Delayed copies whose delivery round has come join the same frame, after
  // every normal delivery of their receiver.
  std::vector<std::pair<NodeId, Received>>* due_slot = nullptr;
  if (faults_) {
    due_slot = &delay_ring_[(round_ + 1) % delay_ring_.size()];
    for (const auto& [to, rec] : *due_slot) {
      ++next.len[to];
      ++total;
    }
  }
  std::size_t offset = 0;
  for (NodeId v = 0; v < n; ++v) {
    next.begin[v] = offset;
    inbox_cursor_[v] = offset;
    offset += next.len[v];
  }
  next.items.resize(offset);  // within retained capacity after warm-up
  for (const ShardAccum& acc : accum_) {
    for (const ResolvedDelivery& d : acc.deliveries.span()) {
      if (d.extra_delay != 0) continue;
      next.items[inbox_cursor_[d.to]++] = d.rec;
      if (record_trace_) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kDeliver;
        ev.node = d.to;
        ev.peer = d.from;
        ev.round = round_ + 1;  // the round the receiver sees it
        ev.msg = d.rec.msg;
        config_.trace->append(ev);
      }
    }
  }
  if (due_slot != nullptr) {
    for (auto& [to, rec] : *due_slot) {
      --delayed_pending_;
      next.items[inbox_cursor_[to]++] = rec;
      if (record_trace_) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kDeliver;
        ev.node = to;
        ev.peer = graph_->neighbors(to)[rec.from_index];
        ev.round = round_ + 1;
        ev.msg = rec.msg;
        config_.trace->append(ev);
      }
    }
    due_slot->clear();
  }
  pending_messages_ = total;
  cur_inbox_ ^= 1u;
}

void Engine::apply_crashes() {
  if (!faults_) return;
  const NodeId n = graph_->num_nodes();
  InboxFrame& cur = inbox_[cur_inbox_];
  for (NodeId v = 0; v < n; ++v) {
    if (crashed_[v] == 0 && faults_->crashed(v, round_)) {
      crashed_[v] = 1;
      ++stats_.nodes_crashed;
      if (record_trace_) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kCrash;
        ev.node = v;
        ev.round = round_;
        config_.trace->append(ev);
      }
    }
    if (crashed_[v] != 0 && cur.len[v] != 0) {
      // Deliveries to a crashed node vanish (the segment stays in items but
      // is unreachable once len is zeroed).
      stats_.messages_dropped += cur.len[v];
      pending_messages_ -= cur.len[v];
      cur.len[v] = 0;
    }
  }
}

void Engine::step() {
  if (round_ >= max_rounds_) {
    throw RoundLimitError("round limit exceeded (" +
                          std::to_string(max_rounds_) +
                          " rounds); protocol livelock?");
  }
  run_phases();
  // What was queued this round (plus delayed copies coming due) becomes next
  // round's frozen frame.
  deliver_round();
  ++round_;
  stats_.rounds = round_;
  // Crashes scheduled for the new round silence the node before it runs, and
  // absorb anything addressed to it (normal or delayed).
  apply_crashes();
}

bool Engine::quiescent() const {
  if (pending_messages_ > 0 || delayed_pending_ > 0) return false;
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (crashed_[v] == 0 && !processes_[v]->done()) return false;
  }
  return true;
}

RunStats Engine::run() {
  while (!quiescent()) step();
  return stats_;
}

RunStats Engine::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
  return stats_;
}

Outcome Engine::run_bounded() {
  Outcome out;
  try {
    out.stats = run();
    // Quiescence with observed node failures is survival, not success: the
    // caller gets kDegraded plus the crash/detector counters, and should
    // treat harvested tables as partial until certified (core/certify.h).
    if (out.stats.nodes_crashed > 0 || out.stats.neighbors_suspected > 0) {
      out.status = RunStatus::kDegraded;
      out.message = "terminated degraded: crashed=" +
                    std::to_string(out.stats.nodes_crashed) +
                    " neighbors_suspected=" +
                    std::to_string(out.stats.neighbors_suspected);
    } else {
      out.status = RunStatus::kCompleted;
    }
  } catch (const RoundLimitError& e) {
    out.status = RunStatus::kRoundLimit;
    out.stats = stats_;
    out.message = e.what();
  } catch (const CongestionError& e) {
    out.status = RunStatus::kCongestion;
    out.stats = stats_;
    out.message = e.what();
  }
  return out;
}

}  // namespace dapsp::congest
