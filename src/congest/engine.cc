#include "congest/engine.h"

#include <algorithm>

#include "util/bits.h"

namespace dapsp::congest {

void accumulate(RunStats& into, const RunStats& from) {
  into.rounds += from.rounds;
  into.messages += from.messages;
  into.total_bits += from.total_bits;
  into.max_edge_bits = std::max(into.max_edge_bits, from.max_edge_bits);
  into.max_edge_messages =
      std::max(into.max_edge_messages, from.max_edge_messages);
  into.max_node_bits = std::max(into.max_node_bits, from.max_node_bits);
  into.bandwidth_bits = std::max(into.bandwidth_bits, from.bandwidth_bits);
}

NodeId RoundCtx::n() const noexcept { return engine_.graph().num_nodes(); }
std::uint64_t RoundCtx::round() const noexcept { return engine_.current_round(); }
std::uint32_t RoundCtx::degree() const noexcept {
  return engine_.graph().degree(id_);
}
NodeId RoundCtx::neighbor(std::uint32_t index) const {
  return engine_.graph().neighbors(id_)[index];
}
std::span<const Received> RoundCtx::inbox() const noexcept {
  return engine_.inboxes_[id_];
}
void RoundCtx::send(std::uint32_t index, const Message& m) {
  engine_.queue_message(id_, index, m);
}
void RoundCtx::send_all(const Message& m) {
  const std::uint32_t d = degree();
  for (std::uint32_t i = 0; i < d; ++i) send(i, m);
}

Engine::Engine(const Graph& g, EngineConfig config)
    : graph_(&g), config_(config) {
  const NodeId n = g.num_nodes();
  // All transported values (ids, distances, 2*ecc estimates, counts,
  // sub-protocol tags) are < max(2n, 256); size the field width accordingly.
  // This is Theta(log n) with an 8-bit floor so that protocol tag constants
  // fit even on toy graphs.
  value_bits_ = static_cast<std::uint32_t>(
      bits_for(std::max<std::uint64_t>(2 * std::uint64_t{n}, 255)));
  bandwidth_bits_ =
      static_cast<std::uint32_t>(kTagBits) + config_.bandwidth_ids * value_bits_;
  max_rounds_ =
      config_.max_rounds != 0 ? config_.max_rounds : 64 * std::uint64_t{n} + 1024;

  inboxes_.resize(n);
  next_inboxes_.resize(n);
  edge_offsets_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    edge_offsets_[v + 1] = edge_offsets_[v] + g.degree(v);
  }
  const std::size_t directed_edges = edge_offsets_[n];
  edge_bits_.assign(directed_edges, 0);
  edge_msgs_.assign(directed_edges, 0);
  edge_stamp_.assign(directed_edges, ~std::uint64_t{0});
  node_bits_.assign(n, 0);
  node_stamp_.assign(n, ~std::uint64_t{0});
}

void Engine::init(
    const std::function<std::unique_ptr<Process>(NodeId)>& factory) {
  const NodeId n = graph_->num_nodes();
  processes_.clear();
  processes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) processes_.push_back(factory(v));
  round_ = 0;
  stats_ = RunStats{};
  stats_.bandwidth_bits = bandwidth_bits_;
  pending_messages_ = 0;
  for (auto& box : inboxes_) box.clear();
  for (auto& box : next_inboxes_) box.clear();
}

void Engine::queue_message(NodeId from, std::uint32_t neighbor_index,
                           const Message& m) {
  const auto nbrs = graph_->neighbors(from);
  if (neighbor_index >= nbrs.size()) {
    throw std::out_of_range("send: bad neighbor index");
  }
  const NodeId to = nbrs[neighbor_index];

  // Payload honesty: every field must fit the declared field width. This is
  // what makes the B = O(log n) accounting meaningful.
  for (int i = 0; i < m.num_fields; ++i) {
    if (std::uint64_t{m.f[static_cast<std::size_t>(i)]} >>
        value_bits_) {
      throw CongestionError("message field exceeds value width: " +
                            m.debug_string());
    }
  }

  const std::size_t edge = edge_offsets_[from] + neighbor_index;
  if (edge_stamp_[edge] != round_) {
    edge_stamp_[edge] = round_;
    edge_bits_[edge] = 0;
    edge_msgs_[edge] = 0;
  }
  const std::uint32_t cost = m.bit_cost(value_bits_);
  edge_bits_[edge] += cost;
  edge_msgs_[edge] += 1;
  if (config_.enforce_bandwidth && edge_bits_[edge] > bandwidth_bits_) {
    throw CongestionError(
        "bandwidth exceeded on edge " + std::to_string(from) + "->" +
        std::to_string(to) + " in round " + std::to_string(round_) + ": " +
        std::to_string(edge_bits_[edge]) + " > B=" +
        std::to_string(bandwidth_bits_) + " bits (last: " + m.debug_string() +
        ")");
  }
  stats_.max_edge_bits = std::max(stats_.max_edge_bits, edge_bits_[edge]);
  stats_.max_edge_messages = std::max(stats_.max_edge_messages, edge_msgs_[edge]);
  if (node_stamp_[from] != round_) {
    node_stamp_[from] = round_;
    node_bits_[from] = 0;
  }
  node_bits_[from] += cost;
  stats_.max_node_bits = std::max(stats_.max_node_bits, node_bits_[from]);
  stats_.messages += 1;
  stats_.total_bits += cost;
  if (config_.record_activity) {
    if (activity_.size() <= round_) activity_.resize(round_ + 1, 0);
    ++activity_[round_];
  }

  // Index of `from` in `to`'s adjacency list.
  const auto back = graph_->neighbor_index(to, from);
  next_inboxes_[to].push_back(Received{*back, m});
  ++pending_messages_;
}

void Engine::step() {
  if (round_ >= max_rounds_) {
    throw RoundLimitError("round limit exceeded (" +
                          std::to_string(max_rounds_) +
                          " rounds); protocol livelock?");
  }
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    RoundCtx ctx(*this, v);
    processes_[v]->on_round(ctx);
  }
  // Deliver: what was queued this round becomes next round's inboxes.
  for (NodeId v = 0; v < n; ++v) {
    inboxes_[v].swap(next_inboxes_[v]);
    next_inboxes_[v].clear();
  }
  pending_messages_ = 0;
  for (NodeId v = 0; v < n; ++v) pending_messages_ += inboxes_[v].size();
  ++round_;
  stats_.rounds = round_;
}

bool Engine::quiescent() const {
  if (pending_messages_ > 0) return false;
  return std::all_of(processes_.begin(), processes_.end(),
                     [](const auto& p) { return p->done(); });
}

RunStats Engine::run() {
  while (!quiescent()) step();
  return stats_;
}

RunStats Engine::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
  return stats_;
}

}  // namespace dapsp::congest
