#include "congest/engine.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <thread>

#include "util/bits.h"
#include "util/parallel.h"

namespace dapsp::congest {

void accumulate(RunStats& into, const RunStats& from) {
  into.rounds += from.rounds;
  into.messages += from.messages;
  into.total_bits += from.total_bits;
  into.max_edge_bits = std::max(into.max_edge_bits, from.max_edge_bits);
  into.max_edge_messages =
      std::max(into.max_edge_messages, from.max_edge_messages);
  into.max_node_bits = std::max(into.max_node_bits, from.max_node_bits);
  into.bandwidth_bits = std::max(into.bandwidth_bits, from.bandwidth_bits);
  into.messages_dropped += from.messages_dropped;
  into.messages_delayed += from.messages_delayed;
  into.messages_duplicated += from.messages_duplicated;
  into.nodes_crashed += from.nodes_crashed;
  into.neighbors_suspected += from.neighbors_suspected;
}

std::string RunStats::debug_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " messages=" << messages
     << " bits=" << total_bits << " max_edge_bits=" << max_edge_bits << "/B="
     << bandwidth_bits << " max_edge_msgs=" << max_edge_messages
     << " max_node_bits=" << max_node_bits;
  if (messages_dropped || messages_delayed || messages_duplicated ||
      nodes_crashed || neighbors_suspected) {
    os << " dropped=" << messages_dropped << " delayed=" << messages_delayed
       << " duplicated=" << messages_duplicated
       << " crashed=" << nodes_crashed
       << " suspected=" << neighbors_suspected;
  }
  return std::move(os).str();
}

std::ostream& operator<<(std::ostream& os, const RunStats& s) {
  return os << s.debug_string();
}

const char* to_string(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRoundLimit:
      return "round-limit";
    case RunStatus::kCongestion:
      return "congestion";
    case RunStatus::kDegraded:
      return "degraded";
  }
  return "?";
}

void RoundCtx::send_all(const Message& m) {
  const std::uint32_t d = degree();
  for (std::uint32_t i = 0; i < d; ++i) send(i, m);
}

// The engine-backed round context: the real graph, the real round number,
// the engine's frozen inboxes and buffered sends. One Ctx lives on a worker
// stack per node per round; everything it touches is either read-only during
// the round (graph, round number, the previous round's inboxes) or owned by
// the node/shard (outbox, shard accumulator), so contexts never race.
class Engine::Ctx final : public RoundCtx {
 public:
  Ctx(Engine& engine, NodeId id, ShardAccum& acc) noexcept
      : RoundCtx(id), engine_(engine), acc_(acc) {}

  NodeId n() const noexcept override { return engine_.graph().num_nodes(); }
  std::uint64_t round() const noexcept override {
    return engine_.current_round();
  }
  std::uint32_t degree() const noexcept override {
    return engine_.graph().degree(id_);
  }
  NodeId neighbor(std::uint32_t index) const override {
    return engine_.graph().neighbors(id_)[index];
  }
  std::span<const Received> inbox() const noexcept override {
    return engine_.inboxes_[id_];
  }
  void send(std::uint32_t index, const Message& m) override {
    engine_.buffer_send(id_, index, m);
  }
  void note_neighbor_suspected() override {
    ++acc_.stats.neighbors_suspected;
  }

 private:
  Engine& engine_;
  ShardAccum& acc_;
};

Engine::Engine(const Graph& g, EngineConfig config)
    : graph_(&g), config_(std::move(config)) {
  const NodeId n = g.num_nodes();
  if (n == 0) {
    throw std::invalid_argument(
        "Engine: empty graph (0 nodes); nothing to simulate");
  }
  if (config_.bandwidth_ids == 0) {
    throw std::invalid_argument(
        "Engine: bandwidth_ids must be >= 1 (B would admit no payload)");
  }
  // All transported values (ids, distances, 2*ecc estimates, counts,
  // sub-protocol tags) are < max(2n, 256); size the field width accordingly.
  // This is Theta(log n) with an 8-bit floor so that protocol tag constants
  // fit even on toy graphs.
  value_bits_ = static_cast<std::uint32_t>(
      bits_for(std::max<std::uint64_t>(2 * std::uint64_t{n}, 255)));
  bandwidth_bits_ =
      static_cast<std::uint32_t>(kTagBits) + config_.bandwidth_ids * value_bits_;
  max_rounds_ =
      config_.max_rounds != 0 ? config_.max_rounds : 64 * std::uint64_t{n} + 1024;

  inboxes_.resize(n);
  next_inboxes_.resize(n);
  edge_offsets_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    edge_offsets_[v + 1] = edge_offsets_[v] + g.degree(v);
  }
  const std::size_t directed_edges = edge_offsets_[n];
  edge_bits_.assign(directed_edges, 0);
  edge_msgs_.assign(directed_edges, 0);
  edge_stamp_.assign(directed_edges, ~std::uint64_t{0});
  node_bits_.assign(n, 0);
  node_stamp_.assign(n, ~std::uint64_t{0});

  if (config_.faults) {
    faults_ = std::make_unique<FaultInjector>(g, *config_.faults);
    delay_ring_.resize(std::size_t{faults_->max_extra_delay()} + 2);
  }
  crashed_.assign(n, 0);

  threads_ = config_.threads != 0
                 ? config_.threads
                 : std::max(1u, std::thread::hardware_concurrency());
  outboxes_.resize(n);
  deliveries_.resize(n);
  const std::uint32_t shards =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(threads_, n));
  // One accumulator per shard plus a dedicated slot for the serial
  // accounting pass used when a send observer demands global send order.
  accum_.resize(std::size_t{shards} + 1);
  if (shards > 1) pool_ = std::make_unique<WorkerPool>(shards - 1);
}

Engine::~Engine() = default;

void Engine::init(
    const std::function<std::unique_ptr<Process>(NodeId)>& factory) {
  const NodeId n = graph_->num_nodes();
  processes_.clear();
  processes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = factory(v);
    if (config_.process_wrapper) p = config_.process_wrapper(v, std::move(p));
    processes_.push_back(std::move(p));
  }
  round_ = 0;
  stats_ = RunStats{};
  stats_.bandwidth_bits = bandwidth_bits_;
  pending_messages_ = 0;
  for (auto& box : inboxes_) box.clear();
  for (auto& box : next_inboxes_) box.clear();
  for (auto& box : outboxes_) box.clear();
  for (auto& box : deliveries_) box.clear();
  crashed_.assign(n, 0);
  for (auto& slot : delay_ring_) slot.clear();
  delayed_pending_ = 0;
  // Crash-at-round-0 nodes never execute at all.
  apply_crashes();
}

void Engine::buffer_send(NodeId from, std::uint32_t neighbor_index,
                         const Message& m) {
  if (neighbor_index >= graph_->degree(from)) {
    throw std::out_of_range("send: bad neighbor index");
  }
  outboxes_[from].push_back(PendingSend{neighbor_index, m});
}

void Engine::run_node(NodeId v, ShardAccum& acc, bool account_inline) {
  outboxes_[v].clear();
  deliveries_[v].clear();
  if (crashed_[v] != 0) return;  // crash-stop: no execution, no sends
  Ctx ctx(*this, v, acc);
  try {
    processes_[v]->on_round(ctx);
  } catch (...) {
    // Capture instead of unwinding through the worker pool. Every node still
    // runs its round — which errors occur must not depend on the shard
    // partition — and the smallest-node error is rethrown after the merge.
    if (!acc.failed) {
      acc.failed = true;
      acc.failed_node = v;
      acc.error = std::current_exception();
    }
  }
  // Sends buffered before a mid-round failure are still accounted and
  // delivered, mirroring the serial engine (they were already on the wire).
  if (account_inline) account_node(v, acc);
}

void Engine::account_node(NodeId v, ShardAccum& acc) {
  const auto& outbox = outboxes_[v];
  if (outbox.empty()) return;
  // An accounting violation reported by node v supersedes a phase-A failure
  // of the same node (the serial engine surfaced the send-time error first)
  // but never an earlier node's failure.
  const auto fail = [&](std::string text) {
    if (acc.failed && acc.failed_node != v) return;
    acc.failed = true;
    acc.failed_node = v;
    acc.error = std::make_exception_ptr(CongestionError(std::move(text)));
  };
  const auto nbrs = graph_->neighbors(v);
  // The node's private fault-decision stream for this round: keyed by
  // (plan seed, v, round), so draws need no cross-shard coordination.
  Rng stream = faults_ ? faults_->stream(v, round_) : Rng(0);
  for (const PendingSend& ps : outbox) {
    const Message& m = ps.msg;
    // Payload honesty: every field must fit the declared field width. This
    // is what makes the B = O(log n) accounting meaningful.
    for (int i = 0; i < m.num_fields; ++i) {
      if (std::uint64_t{m.f[static_cast<std::size_t>(i)]} >> value_bits_) {
        fail("message field exceeds value width: " + m.debug_string());
        return;
      }
    }
    const NodeId to = nbrs[ps.neighbor_index];
    // Directed-edge and per-node load counters are owned by the sender, so
    // shards write disjoint slots.
    const std::size_t edge = edge_offsets_[v] + ps.neighbor_index;
    if (edge_stamp_[edge] != round_) {
      edge_stamp_[edge] = round_;
      edge_bits_[edge] = 0;
      edge_msgs_[edge] = 0;
    }
    const std::uint32_t cost = m.bit_cost(value_bits_);
    edge_bits_[edge] += cost;
    edge_msgs_[edge] += 1;
    if (config_.enforce_bandwidth && edge_bits_[edge] > bandwidth_bits_) {
      fail("bandwidth exceeded on edge " + std::to_string(v) + "->" +
           std::to_string(to) + " in round " + std::to_string(round_) + ": " +
           std::to_string(edge_bits_[edge]) + " > B=" +
           std::to_string(bandwidth_bits_) + " bits (last: " +
           m.debug_string() + ")");
      return;
    }
    acc.stats.max_edge_bits = std::max(acc.stats.max_edge_bits,
                                       edge_bits_[edge]);
    acc.stats.max_edge_messages =
        std::max(acc.stats.max_edge_messages, edge_msgs_[edge]);
    if (node_stamp_[v] != round_) {
      node_stamp_[v] = round_;
      node_bits_[v] = 0;
    }
    node_bits_[v] += cost;
    acc.stats.max_node_bits = std::max(acc.stats.max_node_bits, node_bits_[v]);
    acc.stats.messages += 1;
    acc.stats.total_bits += cost;
    if (config_.send_observer) {
      config_.send_observer(SendEvent{v, to, round_, m});
    }
    if (config_.record_activity) ++acc.activity;

    // Index of `v` in `to`'s adjacency list.
    const auto back = graph_->neighbor_index(to, v);
    const Received rec{*back, m};

    if (faults_) {
      // The message was sent (and charged) — now the wire decides its fate.
      if (faults_->link_down(edge, round_)) {
        ++acc.stats.messages_dropped;
        continue;
      }
      const FaultDecision d = faults_->decide(stream, edge);
      if (d.dropped) {
        ++acc.stats.messages_dropped;
        continue;
      }
      if (d.copies > 1) ++acc.stats.messages_duplicated;
      for (std::uint32_t c = 0; c < d.copies; ++c) {
        if (d.extra_delay[c] != 0) ++acc.stats.messages_delayed;
        deliveries_[v].push_back(ResolvedDelivery{to, rec, d.extra_delay[c]});
      }
      continue;
    }
    deliveries_[v].push_back(ResolvedDelivery{to, rec, 0});
  }
}

void Engine::run_phases() {
  const NodeId n = graph_->num_nodes();
  const std::uint32_t shards =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(threads_, n));
  // A send observer must see events in the serial engine's global send order
  // (sender-major), so accounting then runs as its own serial pass.
  const bool inline_accounting = !config_.send_observer;
  for (ShardAccum& acc : accum_) acc.reset();

  const auto shard_body = [&](unsigned s) {
    const NodeId lo = static_cast<NodeId>(std::uint64_t{n} * s / shards);
    const NodeId hi = static_cast<NodeId>(std::uint64_t{n} * (s + 1) / shards);
    ShardAccum& acc = accum_[s];
    for (NodeId v = lo; v < hi; ++v) run_node(v, acc, inline_accounting);
  };
  if (pool_) {
    pool_->run(shards, shard_body);
  } else {
    shard_body(0);
  }

  ShardAccum& serial_acc = accum_.back();
  if (!inline_accounting) {
    for (NodeId v = 0; v < n; ++v) account_node(v, serial_acc);
  }

  // Merge in fixed shard order. Counters add and loads take maxima, so the
  // merged RunStats is independent of the shard partition — the determinism
  // contract across thread counts.
  std::uint64_t activity = 0;
  for (const ShardAccum& acc : accum_) {
    accumulate(stats_, acc.stats);
    activity += acc.activity;
  }
  if (config_.record_activity && activity > 0) {
    if (activity_.size() <= round_) activity_.resize(round_ + 1, 0);
    activity_[round_] = activity;
  }

  // Rethrow the failure of the smallest node (shard ranges ascend, but scan
  // everything: the serial-accounting slot is ordered last while its nodes
  // are not). On a tie the accounting error wins (see fail() above).
  const ShardAccum* worst = nullptr;
  for (const ShardAccum& acc : accum_) {
    if (!acc.failed) continue;
    if (worst == nullptr || acc.failed_node < worst->failed_node ||
        (&acc == &serial_acc && acc.failed_node == worst->failed_node)) {
      worst = &acc;
    }
  }
  if (worst != nullptr) std::rethrow_exception(worst->error);
}

void Engine::deliver_round() {
  // Ascending sender order: each receiver's next inbox is filled by sender
  // id, then send order — exactly the serial engine's delivery order.
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    for (const ResolvedDelivery& d : deliveries_[v]) {
      if (d.extra_delay == 0) {
        next_inboxes_[d.to].push_back(d.rec);
        ++pending_messages_;
      } else {
        const std::uint64_t due = round_ + 1 + d.extra_delay;
        delay_ring_[due % delay_ring_.size()].push_back({d.to, d.rec});
        ++delayed_pending_;
      }
    }
  }
}

void Engine::apply_crashes() {
  if (!faults_) return;
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (crashed_[v] == 0 && faults_->crashed(v, round_)) {
      crashed_[v] = 1;
      ++stats_.nodes_crashed;
    }
    if (crashed_[v] != 0 && !inboxes_[v].empty()) {
      // Deliveries to a crashed node vanish.
      stats_.messages_dropped += inboxes_[v].size();
      pending_messages_ -= inboxes_[v].size();
      inboxes_[v].clear();
    }
  }
}

void Engine::step() {
  if (round_ >= max_rounds_) {
    throw RoundLimitError("round limit exceeded (" +
                          std::to_string(max_rounds_) +
                          " rounds); protocol livelock?");
  }
  const NodeId n = graph_->num_nodes();
  run_phases();
  deliver_round();
  // Deliver: what was queued this round becomes next round's inboxes.
  for (NodeId v = 0; v < n; ++v) {
    inboxes_[v].swap(next_inboxes_[v]);
    next_inboxes_[v].clear();
  }
  pending_messages_ = 0;
  for (NodeId v = 0; v < n; ++v) pending_messages_ += inboxes_[v].size();
  ++round_;
  stats_.rounds = round_;

  if (faults_) {
    // Delayed copies whose delivery round has come join the new inboxes.
    auto& due = delay_ring_[round_ % delay_ring_.size()];
    for (auto& [to, rec] : due) {
      --delayed_pending_;
      inboxes_[to].push_back(rec);
      ++pending_messages_;
    }
    due.clear();
    // Crashes scheduled for the new round silence the node before it runs,
    // and absorb anything addressed to it (normal or delayed).
    apply_crashes();
  }
}

bool Engine::quiescent() const {
  if (pending_messages_ > 0 || delayed_pending_ > 0) return false;
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (crashed_[v] == 0 && !processes_[v]->done()) return false;
  }
  return true;
}

RunStats Engine::run() {
  while (!quiescent()) step();
  return stats_;
}

RunStats Engine::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
  return stats_;
}

Outcome Engine::run_bounded() {
  Outcome out;
  try {
    out.stats = run();
    // Quiescence with observed node failures is survival, not success: the
    // caller gets kDegraded plus the crash/detector counters, and should
    // treat harvested tables as partial until certified (core/certify.h).
    if (out.stats.nodes_crashed > 0 || out.stats.neighbors_suspected > 0) {
      out.status = RunStatus::kDegraded;
      out.message = "terminated degraded: crashed=" +
                    std::to_string(out.stats.nodes_crashed) +
                    " neighbors_suspected=" +
                    std::to_string(out.stats.neighbors_suspected);
    } else {
      out.status = RunStatus::kCompleted;
    }
  } catch (const RoundLimitError& e) {
    out.status = RunStatus::kRoundLimit;
    out.stats = stats_;
    out.message = e.what();
  } catch (const CongestionError& e) {
    out.status = RunStatus::kCongestion;
    out.stats = stats_;
    out.message = e.what();
  }
  return out;
}

}  // namespace dapsp::congest
