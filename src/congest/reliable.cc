#include "congest/reliable.h"

#include <algorithm>
#include <stdexcept>

namespace dapsp::congest {

namespace {

// 8-bit integrity checksum of a frame body (kind + payload fields, without
// the trailing checksum field). Each field XOR-folds to a byte and is
// rotated by a field-index-dependent amount before mixing, so a single
// flipped wire bit — the fault model's corruption granularity — is detected
// with certainty: a kind flip toggles the matching checksum bit directly, a
// payload flip toggles exactly one bit of its field's rotated fold, and a
// flip inside the checksum field itself mismatches the recomputation (the
// stored value stays below 256, so even a flip of one of that field's high
// bits is caught).
std::uint32_t frame_checksum(const Message& m) {
  std::uint32_t ck = m.kind;
  for (int i = 0; i < m.num_fields; ++i) {
    const std::uint32_t x = m.f[static_cast<std::size_t>(i)];
    const std::uint32_t fold = (x ^ (x >> 8) ^ (x >> 16) ^ (x >> 24)) & 0xffu;
    const std::uint32_t rot = (static_cast<std::uint32_t>(i) * 3 + 1) & 7u;
    ck ^= ((fold << rot) | (fold >> (8 - rot))) & 0xffu;
  }
  return ck & 0xffu;
}

// Appends the checksum as the frame's last wire field. Every kRel* frame is
// sealed exactly once, at creation.
Message seal(Message m) {
  m.f[m.num_fields] = frame_checksum(m);
  ++m.num_fields;
  return m;
}

// True when the trailing checksum verifies against the rest of the frame.
bool frame_intact(const Message& m) {
  if (m.num_fields == 0) return false;  // every kRel* frame is sealed
  Message body = m;
  --body.num_fields;
  return m.f[static_cast<std::size_t>(m.num_fields) - 1] ==
         frame_checksum(body);
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-edge state

// Sender half of one directed-edge stream (us -> neighbor e).
struct ReliableAdapter::EdgeTx {
  std::deque<Message> queue;           // encoded frames awaiting first send
  std::optional<Message> outstanding;  // stop-and-wait: one frame in flight
  std::uint64_t last_send = 0;         // real round of last (re)transmission
  std::uint32_t next_seq = 0;
  // Highest virtual round whose closing marker has been enqueued. Markers of
  // passive (inner-done, no-data) rounds are withheld until demanded, so a
  // globally quiescent protocol also quiesces on the wire.
  std::int64_t marker_enqueued = -1;
};

// Receiver half (neighbor e -> us).
struct ReliableAdapter::EdgeRx {
  std::uint32_t expected_seq = 0;
  // Highest virtual round the peer has evidently executed (any accepted
  // frame of bucket b proves the peer ran round b).
  std::int64_t peer_exec = -1;
  std::uint64_t buckets_completed = 0;  // markers received = index now filling
  std::vector<Message> filling;         // decoded inner messages, open bucket
  // Closed buckets not yet consumed; front() is the batch of virtual round
  // (buckets_completed - completed.size()), which the synchronizer keeps
  // equal to our executed_ round.
  std::deque<std::vector<Message>> completed;
  bool frag_pending = false;
  Message frag;  // first half of a fragmented inner message
  // At most one ack per edge per round (bandwidth discipline).
  bool ack_due = false;
  bool ack_accept = false;  // the due ack is for a newly accepted frame
  std::uint32_t ack_seq = 0;
};

// The synchronous world presented to the inner process: virtual round
// number, exactly-once inbox, captured sends.
class ReliableAdapter::VirtualCtx final : public RoundCtx {
 public:
  VirtualCtx(RoundCtx& real, std::uint64_t vround,
             std::span<const Received> inbox,
             std::vector<std::vector<Message>>& outboxes) noexcept
      : RoundCtx(real.id()),
        real_(real),
        vround_(vround),
        inbox_(inbox),
        outboxes_(outboxes) {}

  NodeId n() const noexcept override { return real_.n(); }
  std::uint64_t round() const noexcept override { return vround_; }
  std::uint32_t degree() const noexcept override { return real_.degree(); }
  NodeId neighbor(std::uint32_t index) const override {
    return real_.neighbor(index);
  }
  std::span<const Received> inbox() const noexcept override { return inbox_; }
  void send(std::uint32_t index, const Message& m) override {
    if (index >= outboxes_.size()) {
      throw std::out_of_range("send: bad neighbor index");
    }
    outboxes_[index].push_back(m);
  }
  // Instrumentation hooks pass through to the engine-backed context so that
  // wrapped protocols land in RunStats and the trace like unwrapped ones.
  void note_neighbor_suspected(std::uint32_t neighbor_index) override {
    real_.note_neighbor_suspected(neighbor_index);
  }
  void trace_frontier(NodeId source, std::uint32_t dist) override {
    real_.trace_frontier(source, dist);
  }

 private:
  RoundCtx& real_;
  std::uint64_t vround_;
  std::span<const Received> inbox_;
  std::vector<std::vector<Message>>& outboxes_;
};

// ---------------------------------------------------------------------------

ReliableAdapter::ReliableAdapter(std::unique_ptr<Process> inner,
                                 ReliableConfig config)
    : inner_(std::move(inner)), config_(config) {
  if (config_.retransmit_after < 2) {
    throw std::invalid_argument(
        "ReliableConfig: retransmit_after must cover the 2-round trip");
  }
  if (config_.heartbeat_every == 0) {
    throw std::invalid_argument("ReliableConfig: heartbeat_every must be >= 1");
  }
  if (config_.suspect_after != 0 &&
      config_.suspect_after <= config_.heartbeat_every + 2) {
    throw std::invalid_argument(
        "ReliableConfig: suspect_after must exceed the heartbeat round trip "
        "(heartbeat_every + 2); every live edge would be suspected");
  }
}

ReliableAdapter::~ReliableAdapter() = default;

void ReliableAdapter::ensure_edges(RoundCtx& ctx) {
  if (edges_ready_) return;
  edges_ready_ = true;
  tx_.resize(ctx.degree());
  rx_.resize(ctx.degree());
  outboxes_.resize(ctx.degree());
  last_heard_.assign(ctx.degree(), ctx.round());
  last_sent_any_.assign(ctx.degree(), ctx.round());
  beat_owed_.assign(ctx.degree(), 0);
  down_.assign(ctx.degree(), 0);
}

std::uint32_t ReliableAdapter::take_seq(std::uint32_t e) {
  const std::uint32_t s = tx_[e].next_seq;
  tx_[e].next_seq = (s + 1) % kRelSeqMod;
  return s;
}

void ReliableAdapter::process_inbox(RoundCtx& ctx) {
  for (const Received& r : ctx.inbox()) {
    const std::uint32_t e = r.from_index;
    const Message& m = r.msg;
    if (down_[e] != 0) {
      // Declared dead: a declaration is permanent, so late traffic (only
      // possible under false suspicion, i.e. extreme loss) is discarded —
      // the ARQ state it refers to is gone.
      ++stats_.stale_frames;
      continue;
    }
    // Arrival — even of a frame about to fail its checksum — refreshes the
    // failure detector's clock: crashed nodes send nothing, so any frame is
    // sound liveness evidence and pure corruption can never produce a false
    // NeighborDown.
    last_heard_[e] = ctx.round();
    if (!frame_intact(m)) {
      // Discard; the ARQ recovers data/marker frames by retransmission and
      // acks by the sender's stale-frame re-ack path. Beats carry no ARQ,
      // but a corrupted beat already served its liveness purpose above.
      ++stats_.corrupt_frames_dropped;
      continue;
    }
    if (m.kind == kRelBeat) {
      beat_owed_[e] = 1;  // answered in transmit() unless other traffic flows
      continue;
    }
    if (m.kind == kRelBeatAck) continue;  // pure liveness evidence
    if (m.kind == kRelAck) {
      EdgeTx& tx = tx_[e];
      if (tx.outstanding && tx.outstanding->f[0] == m.f[0]) {
        tx.outstanding.reset();  // frame crossed; next one may go this round
      }
      continue;
    }
    if (m.kind < kRelMark || m.kind > kRelFragBLast) {
      throw std::logic_error(
          "ReliableAdapter: non-reliable frame on the wire: " +
          m.debug_string());
    }
    EdgeRx& rx = rx_[e];
    const std::uint32_t seq = m.f[0];
    if (seq == rx.expected_seq) {
      rx.expected_seq = (rx.expected_seq + 1) % kRelSeqMod;
      accept_frame(e, m);
      rx.ack_due = true;
      rx.ack_accept = true;
      rx.ack_seq = seq;
    } else {
      // Stale duplicate (our ack was lost, or a delayed copy): discard, but
      // re-ack so the sender stops retransmitting. Never shadow an accept.
      ++stats_.stale_frames;
      if (!rx.ack_accept) {
        rx.ack_due = true;
        rx.ack_seq = seq;
      }
    }
  }
}

void ReliableAdapter::accept_frame(std::uint32_t e, const Message& m) {
  EdgeRx& rx = rx_[e];
  rx.peer_exec =
      std::max(rx.peer_exec, static_cast<std::int64_t>(rx.buckets_completed));
  bool closes = false;
  switch (m.kind) {
    case kRelMark:
      closes = true;
      break;
    case kRelData0:
    case kRelData1:
    case kRelData2:
    case kRelData0Last:
    case kRelData1Last:
    case kRelData2Last: {
      const bool last = m.kind >= kRelData0Last;
      const std::uint8_t nf = static_cast<std::uint8_t>(
          m.kind - (last ? kRelData0Last : kRelData0));
      if (rx.frag_pending) {
        throw std::logic_error("ReliableAdapter: data frame inside fragment");
      }
      Message inner;
      inner.kind = static_cast<std::uint8_t>(m.f[1]);
      inner.num_fields = nf;
      for (std::uint8_t i = 0; i < nf; ++i) inner.f[i] = m.f[2 + i];
      rx.filling.push_back(inner);
      closes = last;
      break;
    }
    case kRelFragA3:
    case kRelFragA4: {
      if (rx.frag_pending) {
        throw std::logic_error("ReliableAdapter: fragment inside fragment");
      }
      rx.frag = Message{};
      rx.frag.kind = static_cast<std::uint8_t>(m.f[1]);
      rx.frag.num_fields = m.kind == kRelFragA3 ? 3 : 4;
      rx.frag.f[0] = m.f[2];
      rx.frag.f[1] = m.f[3];
      rx.frag_pending = true;
      break;
    }
    case kRelFragB:
    case kRelFragBLast: {
      if (!rx.frag_pending) {
        throw std::logic_error("ReliableAdapter: dangling second fragment");
      }
      rx.frag.f[2] = m.f[1];
      if (rx.frag.num_fields == 4) rx.frag.f[3] = m.f[2];
      rx.filling.push_back(rx.frag);
      rx.frag_pending = false;
      closes = m.kind == kRelFragBLast;
      break;
    }
    default:
      throw std::logic_error("ReliableAdapter: unknown frame kind");
  }
  if (closes) {
    rx.completed.push_back(std::move(rx.filling));
    rx.filling.clear();
    ++rx.buckets_completed;
  }
}

void ReliableAdapter::detect_failures(RoundCtx& ctx, bool active) {
  if (config_.suspect_after == 0) return;
  const std::uint64_t now = ctx.round();
  if (!active) {
    // A passive node expects nothing from its neighbors; its clocks follow
    // real time so a later reactivation starts a fresh suspicion window.
    for (std::uint32_t e = 0; e < rx_.size(); ++e) {
      if (down_[e] == 0) last_heard_[e] = now;
    }
    return;
  }
  for (std::uint32_t e = 0; e < rx_.size(); ++e) {
    if (down_[e] != 0 || now < last_heard_[e] + config_.suspect_after) {
      continue;
    }
    // NeighborDown: cancel ARQ toward the dead edge, drop the half-received
    // batch (it can never complete), keep already-closed buckets (that data
    // was delivered reliably before the silence), and stop requiring the
    // edge's markers so virtual time advances without it.
    down_[e] = 1;
    ++stats_.neighbors_declared_down;
    tx_[e].outstanding.reset();
    tx_[e].queue.clear();
    rx_[e].filling.clear();
    rx_[e].frag_pending = false;
    rx_[e].ack_due = false;
    rx_[e].ack_accept = false;
    beat_owed_[e] = 0;
    ctx.note_neighbor_suspected(e);
    inner_->on_neighbor_down(e, virtual_round());
  }
}

void ReliableAdapter::enqueue_markers_upto(std::uint32_t e,
                                           std::int64_t round) {
  EdgeTx& tx = tx_[e];
  if (down_[e] != 0) return;
  while (tx.marker_enqueued < round) {
    ++tx.marker_enqueued;
    tx.queue.push_back(seal(Message::make(kRelMark, take_seq(e))));
  }
}

void ReliableAdapter::encode(std::uint32_t e, const Message& inner,
                             bool last) {
  ++stats_.inner_messages;
  EdgeTx& tx = tx_[e];
  const std::uint8_t nf = inner.num_fields;
  if (nf <= 2) {
    Message f;
    f.kind = static_cast<std::uint8_t>((last ? kRelData0Last : kRelData0) + nf);
    f.num_fields = static_cast<std::uint8_t>(2 + nf);
    f.f[0] = take_seq(e);
    f.f[1] = inner.kind;
    for (std::uint8_t i = 0; i < nf; ++i) f.f[2 + i] = inner.f[i];
    tx.queue.push_back(seal(f));
    return;
  }
  Message a;
  a.kind = nf == 3 ? kRelFragA3 : kRelFragA4;
  a.num_fields = 4;
  a.f[0] = take_seq(e);
  a.f[1] = inner.kind;
  a.f[2] = inner.f[0];
  a.f[3] = inner.f[1];
  tx.queue.push_back(seal(a));
  Message b;
  b.kind = last ? kRelFragBLast : kRelFragB;
  b.num_fields = static_cast<std::uint8_t>(nf - 1);  // seq + 1 or 2 fields
  b.f[0] = take_seq(e);
  b.f[1] = inner.f[2];
  if (nf == 4) b.f[2] = inner.f[3];
  tx.queue.push_back(seal(b));
}

void ReliableAdapter::enqueue_round_output(std::uint32_t e,
                                           const std::vector<Message>& outbox) {
  EdgeTx& tx = tx_[e];
  if (outbox.empty()) {
    tx.queue.push_back(seal(Message::make(kRelMark, take_seq(e))));
  } else {
    for (std::size_t i = 0; i < outbox.size(); ++i) {
      encode(e, outbox[i], /*last=*/i + 1 == outbox.size());
    }
  }
  tx.marker_enqueued = executed_;
}

bool ReliableAdapter::undelivered_data() const {
  for (std::uint32_t e = 0; e < rx_.size(); ++e) {
    const EdgeRx& rx = rx_[e];
    // Data received and closed before a neighbor died is still delivered;
    // only its never-to-complete open batch is ignored.
    if (down_[e] == 0 && (!rx.filling.empty() || rx.frag_pending)) return true;
    for (const auto& bucket : rx.completed) {
      if (!bucket.empty()) return true;
    }
  }
  return false;
}

bool ReliableAdapter::peer_ahead() const {
  for (std::uint32_t e = 0; e < rx_.size(); ++e) {
    if (down_[e] == 0 && rx_[e].peer_exec > executed_) return true;
  }
  return false;
}

bool ReliableAdapter::buckets_ready() const {
  if (executed_ < 0) return true;  // virtual round 0 needs no input
  for (std::uint32_t e = 0; e < rx_.size(); ++e) {
    // Dead neighbors contribute empty batches forever.
    if (down_[e] == 0 && rx_[e].completed.empty()) return false;
  }
  return true;
}

void ReliableAdapter::execute_virtual_round(RoundCtx& ctx) {
  const std::uint64_t vr = static_cast<std::uint64_t>(executed_ + 1);
  std::vector<Received> vinbox;
  if (executed_ >= 0) {
    for (std::uint32_t e = 0; e < rx_.size(); ++e) {
      if (rx_[e].completed.empty()) continue;  // dead edge, batches exhausted
      std::vector<Message>& bucket = rx_[e].completed.front();
      for (const Message& m : bucket) vinbox.push_back(Received{e, m});
      rx_[e].completed.pop_front();
    }
  }
  for (auto& ob : outboxes_) ob.clear();
  VirtualCtx vctx(ctx, vr, vinbox, outboxes_);
  inner_->on_round(vctx);
  ++executed_;
  ++stats_.virtual_rounds;

  bool has_data = false;
  for (const auto& ob : outboxes_) has_data = has_data || !ob.empty();
  if (!inner_->done() || has_data) {
    // Active round: publish the batch (plus any withheld markers first, so
    // the per-edge streams stay in round order). Dead edges get nothing —
    // anything the inner process addressed to them is dropped here.
    for (std::uint32_t e = 0; e < tx_.size(); ++e) {
      if (down_[e] != 0) continue;
      enqueue_markers_upto(e, executed_ - 1);
      enqueue_round_output(e, outboxes_[e]);
    }
  }
  // Passive round (inner done, nothing to say): withhold the markers; they
  // are supplied on demand, and a globally quiet protocol stays quiet.
}

void ReliableAdapter::transmit(RoundCtx& ctx, bool active) {
  const std::uint64_t now = ctx.round();
  for (std::uint32_t e = 0; e < tx_.size(); ++e) {
    if (down_[e] != 0) continue;
    bool sent = false;
    EdgeRx& rx = rx_[e];
    if (rx.ack_due) {
      ctx.send(e, seal(Message::make(kRelAck, rx.ack_seq)));
      ++stats_.acks_sent;
      rx.ack_due = false;
      rx.ack_accept = false;
      sent = true;
    }
    EdgeTx& tx = tx_[e];
    if (tx.outstanding) {
      if (now - tx.last_send >= config_.retransmit_after) {
        ctx.send(e, *tx.outstanding);
        tx.last_send = now;
        ++stats_.retransmissions;
        sent = true;
      }
    } else if (!tx.queue.empty()) {
      tx.outstanding = tx.queue.front();
      tx.queue.pop_front();
      ctx.send(e, *tx.outstanding);
      tx.last_send = now;
      ++stats_.frames_sent;
      sent = true;
    }
    if (!sent && config_.suspect_after != 0) {
      // Heartbeats ride only on otherwise-idle edges, so the per-edge budget
      // stays within the frame+ack worst case. A beat answer has priority
      // (and is itself never answered — quiescent pairs stay quiet); fresh
      // beats are initiated by active nodes only.
      if (beat_owed_[e] != 0) {
        ctx.send(e, seal(Message::make(kRelBeatAck)));
        ++stats_.beats_sent;
        sent = true;
      } else if (active && now - last_sent_any_[e] >= config_.heartbeat_every) {
        ctx.send(e, seal(Message::make(kRelBeat)));
        ++stats_.beats_sent;
        sent = true;
      }
    }
    if (sent) {
      // Any outbound traffic doubles as liveness evidence for the peer, so
      // an owed beat answer is satisfied by it.
      last_sent_any_[e] = now;
      beat_owed_[e] = 0;
    }
  }
}

void ReliableAdapter::on_round(RoundCtx& ctx) {
  ensure_edges(ctx);
  process_inbox(ctx);

  // Failure detection runs on the pre-round view: `active` means this
  // adapter is waiting on something (inner busy or transport in flight), so
  // neighbor silence is meaningful. A passive node judges nobody.
  const bool active = !done();
  detect_failures(ctx, active);

  // Drive the synchronizer. `want` = virtual time must advance here: the
  // inner process has work, a neighbor's batch carries data for it, or a
  // neighbor has executed past us (and will need our marker to proceed).
  const bool want = !inner_->done() || undelivered_data() || peer_ahead();
  if (want) {
    // Demand wave: flush every withheld marker so neighbors can complete
    // the batches we are waiting for (they respond via the supply rule).
    for (std::uint32_t e = 0; e < tx_.size(); ++e) {
      enqueue_markers_upto(e, executed_);
    }
    if (buckets_ready()) execute_virtual_round(ctx);
  } else {
    // Supply rule: release withheld markers up to what each peer's own
    // traffic proves it has executed — it may be blocked on exactly those.
    for (std::uint32_t e = 0; e < tx_.size(); ++e) {
      enqueue_markers_upto(e, std::min(rx_[e].peer_exec, executed_));
    }
  }

  transmit(ctx, active);
}

bool ReliableAdapter::done() const {
  if (!inner_->done()) return false;
  if (!edges_ready_) return true;  // never scheduled; mirrors engine idle
  if (undelivered_data()) return false;
  for (std::uint32_t e = 0; e < tx_.size(); ++e) {
    if (down_[e] != 0) continue;  // ARQ toward a dead edge was canceled
    if (tx_[e].outstanding || !tx_[e].queue.empty()) return false;
  }
  return true;
}

EngineConfig::ProcessWrapper reliable_wrapper(ReliableConfig config) {
  return [config](NodeId, std::unique_ptr<Process> inner) {
    return std::make_unique<ReliableAdapter>(std::move(inner), config);
  };
}

void apply_reliable(EngineConfig& config, ReliableConfig rc) {
  config.process_wrapper = reliable_wrapper(rc);
  config.bandwidth_ids = std::max(config.bandwidth_ids, kReliableBandwidthIds);
}

}  // namespace dapsp::congest
