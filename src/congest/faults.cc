#include "congest/faults.h"

#include <limits>
#include <stdexcept>
#include <string>

namespace dapsp::congest {

namespace {

void check_prob(double p, const char* what) {
  // Also rejects NaN (comparisons are false).
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must lie in [0, 1]");
  }
}

}  // namespace

FaultInjector::FaultInjector(const Graph& g, const FaultPlan& plan)
    : plan_(plan) {
  check_prob(plan.drop_prob, "drop_prob");
  check_prob(plan.duplicate_prob, "duplicate_prob");
  check_prob(plan.delay_prob, "delay_prob");
  check_prob(plan.corrupt_prob, "corrupt_prob");
  if (plan.delay_prob > 0.0 && plan.max_extra_delay == 0) {
    throw std::invalid_argument(
        "FaultPlan: delay_prob > 0 requires max_extra_delay >= 1");
  }
  if (plan.max_extra_delay > kMaxExtraDelay) {
    throw std::invalid_argument(
        "FaultPlan: max_extra_delay exceeds the supported bound (" +
        std::to_string(kMaxExtraDelay) +
        "); the reliable layer's sequence window assumes bounded reordering");
  }

  const NodeId n = g.num_nodes();
  std::vector<std::size_t> offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + g.degree(v);
  const std::size_t directed_edges = offsets[n];

  drop_prob_.assign(directed_edges, plan.drop_prob);
  corrupt_prob_.assign(directed_edges, plan.corrupt_prob);
  link_down_round_.assign(directed_edges,
                          std::numeric_limits<std::uint64_t>::max());
  crash_round_.assign(n, std::numeric_limits<std::uint64_t>::max());
  stall_windows_.assign(n, {});

  // Every entry that names nodes or edges is validated here, before any
  // per-node / per-edge vector is indexed — the Engine constructs the
  // injector up front, so a malformed plan is rejected with a clear error at
  // construction instead of corrupting a run.
  const auto directed_index = [&](NodeId from, NodeId to,
                                  const char* what) -> std::size_t {
    if (from >= n || to >= n) {
      throw std::invalid_argument(
          std::string("FaultPlan: ") + what + " names node " +
          std::to_string(std::max(from, to)) + ", out of range (n=" +
          std::to_string(n) + ")");
    }
    if (from == to) {
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " names the self-loop " +
                                  std::to_string(from) + "->" +
                                  std::to_string(to) +
                                  "; graphs here are simple");
    }
    const auto idx = g.neighbor_index(from, to);
    if (!idx) {
      throw std::invalid_argument(
          std::string("FaultPlan: ") + what + " names " +
          std::to_string(from) + "->" + std::to_string(to) +
          ", which is not an edge of the graph");
    }
    return offsets[from] + *idx;
  };

  for (const EdgeDropRate& e : plan.edge_drop_overrides) {
    check_prob(e.drop_prob, "edge_drop_overrides[].drop_prob");
    drop_prob_[directed_index(e.from, e.to, "edge_drop_overrides[]")] =
        e.drop_prob;
  }
  for (const EdgeCorruptRate& e : plan.edge_corrupt_overrides) {
    check_prob(e.corrupt_prob, "edge_corrupt_overrides[].corrupt_prob");
    corrupt_prob_[directed_index(e.from, e.to, "edge_corrupt_overrides[]")] =
        e.corrupt_prob;
  }
  for (const LinkFailure& f : plan.link_failures) {
    // A failed link is dead in both directions. Duplicate entries for one
    // link resolve to the earliest failure round, independent of plan order.
    const std::size_t fwd = directed_index(f.u, f.v, "link_failures[]");
    const std::size_t bwd = directed_index(f.v, f.u, "link_failures[]");
    link_down_round_[fwd] = std::min(link_down_round_[fwd], f.round);
    link_down_round_[bwd] = std::min(link_down_round_[bwd], f.round);
  }
  for (const NodeCrash& c : plan.crashes) {
    if (c.v >= n) {
      throw std::invalid_argument("FaultPlan: crashes[] names node " +
                                  std::to_string(c.v) + ", out of range (n=" +
                                  std::to_string(n) + ")");
    }
    // Duplicate entries resolve to the earliest crash round (order-free).
    crash_round_[c.v] = std::min(crash_round_[c.v], c.round);
  }
  for (const NodeStall& s : plan.stalls) {
    if (s.v >= n) {
      throw std::invalid_argument("FaultPlan: stalls[] names node " +
                                  std::to_string(s.v) + ", out of range (n=" +
                                  std::to_string(n) + ")");
    }
    if (s.duration == 0) {
      throw std::invalid_argument(
          "FaultPlan: stalls[] entry has duration 0; a stall must cover at "
          "least one round");
    }
    if (s.round > std::numeric_limits<std::uint64_t>::max() - s.duration) {
      throw std::invalid_argument("FaultPlan: stalls[] window overflows");
    }
    // Canonicalize against the node's crash: a crashed node can no longer
    // stall, so a window is truncated at the (earliest-wins, resolved above)
    // crash round and dropped entirely when it starts at or after it. This
    // mirrors the earliest-wins rule for duplicate crash/link entries and is
    // behavior-neutral — the engine checks crashed(v) before stalled(v) — but
    // it keeps stalled() and node_stall_rounds accounting from ever naming
    // rounds the node was already dead for.
    const std::uint64_t end =
        std::min(s.round + s.duration, crash_round_[s.v]);
    if (s.round >= end) continue;
    stall_windows_[s.v].emplace_back(s.round, end);
  }
}

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mix, used to fold the
// (node, round) key into the plan seed so that adjacent keys yield
// statistically independent streams.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng FaultInjector::stream(NodeId node, std::uint64_t round) const noexcept {
  // Two finalization rounds with distinct odd multipliers per key component:
  // streams for neighboring (node, round) pairs share no affine structure.
  std::uint64_t z = plan_.seed;
  z = mix64(z ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{node} + 1)));
  z = mix64(z ^ (0xd1342543de82ef95ULL * (round + 1)));
  return Rng(z);
}

FaultDecision FaultInjector::decide(Rng& stream, std::size_t directed_edge,
                                    std::uint32_t message_bits) const {
  FaultDecision d;
  // Fixed draw order (drop, duplicate, per-copy delay, per-copy corruption)
  // keeps runs reproducible: Rng::chance(0) returns without consuming state,
  // so a plan field left at zero influences neither the outcome nor the
  // stream — in particular, plans written before corrupt_prob existed draw
  // bit-identical fates.
  if (stream.chance(drop_prob_[directed_edge])) {
    d.dropped = true;
    return d;
  }
  if (stream.chance(plan_.duplicate_prob)) d.copies = 2;
  for (std::uint32_t c = 0; c < d.copies; ++c) {
    if (stream.chance(plan_.delay_prob)) {
      d.extra_delay[c] =
          static_cast<std::uint32_t>(stream.between(1, plan_.max_extra_delay));
    }
  }
  for (std::uint32_t c = 0; c < d.copies; ++c) {
    if (stream.chance(corrupt_prob_[directed_edge]) && message_bits > 0) {
      d.corrupt_bit[c] = static_cast<std::uint32_t>(stream.below(message_bits));
    }
  }
  return d;
}

}  // namespace dapsp::congest
