// The synchronous CONGEST round engine.
//
// Model (Section 2 of the paper): in each synchronous round, every node may
// send up to B bits over each incident edge (different messages to different
// neighbors are allowed), then receives everything its neighbors sent to it
// in that round. Local computation is free. The engine:
//
//   * drives one Process per node, round by round, in a deterministic order;
//   * delivers messages with exactly one round of latency;
//   * charges every message its bit cost and enforces the per-(directed
//     edge, round) budget B, throwing CongestionError on violation — the
//     paper's congestion-freedom claims (Lemma 1) become checked runtime
//     invariants;
//   * terminates on global quiescence: every process reports done() and no
//     messages are in flight;
//   * reports RunStats (rounds, message count, total bits, worst per-edge
//     load) — the paper's cost measures.
//
// Beyond the idealized model, an optional FaultPlan (congest/faults.h)
// perturbs the transport deterministically: messages may be dropped,
// duplicated, delayed or payload-corrupted (one wire bit flipped per
// corrupted copy), links may fail at scheduled rounds, and nodes may
// crash-stop or stall transiently. Faulty runs that stall are better driven
// through
// run_bounded(), which reports an Outcome with partial stats instead of
// throwing. The reliable-delivery adapter (congest/reliable.h) restores the
// synchronous abstraction for unmodified protocols on top of lossy links.
//
// Execution is sharded (DESIGN.md §11): within a round every node reads only
// the previous round's frozen inboxes, so EngineConfig::threads > 1 runs the
// node loop on a worker pool — per-node sends are buffered, bandwidth and
// fault accounting stay sender-owned, and per-shard counters are merged in
// fixed node order, making every observable output (rounds, messages, bits,
// per-edge loads, congestion errors, fault decisions, RunStats) bit-identical
// at every thread count, including 1. Observability (DESIGN.md §12) rides the
// same machinery: send observers, the structured TraceLog and EngineMetrics
// histograms are collected per shard and merged/replayed in fixed sender
// order, so instrumented runs keep both the parallel speedup and the
// bit-identical-output contract.
//
// Memory layout is flat (DESIGN.md §16): adjacency is the graph's CSR plus a
// precomputed mirror-edge table (the receiver-side index of every directed
// edge, replacing a per-message binary search), message buffers are per-shard
// bump-pointer arenas (util/arena.h) that reset each round without freeing,
// and each round's deliveries are scattered into one flat double-buffered
// inbox array with per-receiver [begin, len) segments. After a warm-up round
// the steady-state round loop performs zero heap allocations
// (tests/test_arena.cc pins this); tests/test_engine_equivalence.cc pins the
// flat engine's observable behaviour against an independently written serial
// reference model over randomized graphs, fault plans and thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/faults.h"
#include "congest/message.h"
#include "congest/trace.h"
#include "graph/graph.h"
#include "util/arena.h"
#include "util/metrics.h"

namespace dapsp {
class WorkerPool;
}

namespace dapsp::congest {

class Engine;

// Per-round view handed to a Process. Valid only during on_round(). Abstract
// so that delivery layers (e.g. the ReliableAdapter) can interpose a virtual
// round context between the engine and a wrapped process.
class RoundCtx {
 public:
  virtual ~RoundCtx() = default;

  // Delivery layers report failure-detector verdicts here so they land in
  // RunStats::neighbors_suspected (and the trace as kNeighborDown).
  // `neighbor_index` names the silent neighbor in the caller's adjacency
  // list. No-op outside the engine-backed context.
  virtual void note_neighbor_suspected(std::uint32_t neighbor_index) {
    (void)neighbor_index;
  }

  // Protocol-progress hook: this node adopted distance `dist` from `source`'s
  // BFS flood in this round. Recorded as a kFrontier trace event when a
  // TraceLog is attached; otherwise free. Delivery wrappers forward it to the
  // engine-backed context.
  virtual void trace_frontier(NodeId source, std::uint32_t dist) {
    (void)source;
    (void)dist;
  }

  NodeId id() const noexcept { return id_; }
  virtual NodeId n() const noexcept = 0;
  virtual std::uint64_t round() const noexcept = 0;
  virtual std::uint32_t degree() const noexcept = 0;
  virtual NodeId neighbor(std::uint32_t index) const = 0;

  // Messages delivered this round (sent by neighbors last round), ordered by
  // sender index, then by send order.
  virtual std::span<const Received> inbox() const noexcept = 0;

  // Queues a message to neighbor `index` for delivery next round. Multiple
  // sends to the same neighbor in one round are allowed as long as their
  // total bit cost fits the bandwidth B.
  virtual void send(std::uint32_t index, const Message& m) = 0;
  // Convenience: send to every neighbor.
  void send_all(const Message& m);

 protected:
  explicit RoundCtx(NodeId id) noexcept : id_(id) {}
  NodeId id_;
};

// A node's algorithm. One instance per node; the engine owns them.
class Process {
 public:
  virtual ~Process() = default;

  // Called once per round for every node (even with an empty inbox).
  virtual void on_round(RoundCtx& ctx) = 0;

  // Quiescence flag: true when this node has nothing scheduled — it will not
  // send anything unless a future message wakes it. The engine stops when
  // every process is done and no messages are in flight.
  virtual bool done() const = 0;

  // Failure-detector event: the delivery layer (congest/reliable.h) has
  // declared the neighbor at `neighbor_index` dead after prolonged silence.
  // `virtual_round` is the wrapped protocol's round at the declaration.
  // Called between on_round() invocations (no context is available); record
  // state and react in the next on_round(). Default: ignore.
  virtual void on_neighbor_down(std::uint32_t neighbor_index,
                                std::uint64_t virtual_round) {
    (void)neighbor_index;
    (void)virtual_round;
  }

  // The algorithm process results are harvested from. Delivery-layer
  // wrappers (ReliableAdapter) override this to return the wrapped process,
  // so Engine::process_as<T>() works unchanged on wrapped runs.
  virtual Process& underlying() { return *this; }
  const Process& underlying() const {
    return const_cast<Process*>(this)->underlying();
  }
};

// One message send, as seen by EngineConfig::send_observer: the directed
// edge, the round the send happened in, and the message itself. Observers
// see every send (including ones later dropped by a fault plan) — they watch
// the protocol, not the wire.
struct SendEvent {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t round = 0;
  Message msg;
};

// Engine-collected load distributions (attach via EngineConfig::metrics).
// Samples are exact integers (util/metrics.h); collection is per-shard with
// a commutative merge in fixed shard order, so contents are identical at
// every thread count. Histograms accumulate across runs sharing the sink;
// Engine::init() does not clear them.
struct EngineMetrics {
  // One sample per (directed edge, round) pair on which the edge carried
  // traffic: total bits / message count over that edge in that round. Under
  // Lemma 1's schedule every value stays within one message's budget.
  Histogram edge_bits;
  Histogram edge_messages;
  // One sample per executed round: messages sent in that round.
  Histogram round_activity;

  void merge(const EngineMetrics& other);
  void clear();
};

struct EngineConfig {
  // Per-edge per-round budget B = kTagBits + bandwidth_ids * value_bits,
  // where value_bits = bits needed for values in [0, 2n). The default allows
  // one (id, distance) payload plus one small control message per edge per
  // round — a constant number of ids, as the paper assumes. Must be >= 1.
  std::uint32_t bandwidth_ids = 4;
  bool enforce_bandwidth = true;
  // Safety valve: run() throws RoundLimitError beyond this many rounds.
  std::uint64_t max_rounds = 0;  // 0 = default 64*n + 1024
  // Record the number of messages sent in each round (round_activity()),
  // e.g. to plot a protocol's phase structure.
  bool record_activity = false;

  // Workers for the per-round node loop. 1 (default) steps nodes on the
  // calling thread; k > 1 shards the nodes across k workers (the caller plus
  // k-1 pool threads); 0 = one worker per hardware thread. The CONGEST model
  // is embarrassingly parallel within a round — every node reads only the
  // previous round's frozen inboxes — and the engine merges per-shard
  // accounting in fixed node order, so rounds, messages, bits, per-edge
  // loads, congestion checks and fault decisions are bit-identical at every
  // thread count (the determinism contract; DESIGN.md §11).
  std::uint32_t threads = 1;

  // Optional transport faults, injected deterministically from the plan's
  // seed (see congest/faults.h). Absent = the idealized model. A trivial
  // (all-default) plan leaves delivery — and round counts — bit-identical
  // to a run without one.
  std::optional<FaultPlan> faults;

  // Optional hook wrapping every process installed by init(), e.g.
  // reliable_wrapper() from congest/reliable.h. The wrapper's underlying()
  // must expose the inner process for harvesting.
  using ProcessWrapper =
      std::function<std::unique_ptr<Process>(NodeId, std::unique_ptr<Process>)>;
  ProcessWrapper process_wrapper;

  // Optional per-send observer, e.g. core/certify.h's FloodCongestionMonitor
  // checking Lemma 1's zero-congestion invariant at runtime. Sees every send
  // after payload validation, before any fault decision. Events are collected
  // per shard during the parallel phases and replayed serially after the
  // round's merge in the serial engine's global order (round-major, then
  // sender-major, then send order) — installing an observer no longer forces
  // a serial accounting pass (DESIGN.md §12), and the observed stream is
  // identical at every thread count.
  using SendObserver = std::function<void(const SendEvent&)>;
  SendObserver send_observer;

  // Optional structured event log (congest/trace.h): sends, deliveries,
  // fault fates (drop/delay/duplicate), crashes, NeighborDown verdicts and
  // kFrontier progress, in the same deterministic order as send_observer.
  // Caller-owned and NOT cleared by init(), so multi-phase protocols share
  // one log; clear() it between unrelated runs. Must outlive the engine.
  TraceLog* trace = nullptr;

  // Optional histogram sink for per-(edge, round) load and per-round
  // activity distributions (e.g. Lemma 1 congestion profiles). Collected per
  // shard, merged in fixed shard order — thread-count independent.
  // Caller-owned and NOT cleared by init(); must outlive the engine.
  EngineMetrics* metrics = nullptr;
};

struct RunStats {
  std::uint64_t rounds = 0;       // rounds executed until quiescence
  std::uint64_t messages = 0;     // total messages sent (incl. later-dropped)
  std::uint64_t total_bits = 0;   // total bits sent
  // Worst per-(directed edge, round) loads. 64-bit: with enforce_bandwidth
  // off nothing caps a round's per-edge bits, and fault-heavy runs multiply
  // message counts, so 32-bit counters could wrap.
  std::uint64_t max_edge_bits = 0;      // worst (directed edge, round) load
  std::uint64_t max_edge_messages = 0;  // worst message count per edge-round
  std::uint64_t max_node_bits = 0;      // worst per-(node, round) outgoing load
  std::uint32_t bandwidth_bits = 0;     // the enforced budget B

  // Fault accounting (all zero in fault-free runs). Dropped counts messages
  // lost to drop probability, failed links, deliveries to crashed nodes, and
  // inboxes discarded by stalled nodes; duplicated counts the extra copies;
  // delayed counts copies held back beyond the normal one-round latency;
  // corrupted counts delivered copies with a flipped payload bit.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint32_t nodes_crashed = 0;
  // Rounds in which some node was stalled (one count per stalled node-round).
  std::uint64_t node_stall_rounds = 0;
  // Failure-detector verdicts: NeighborDown declarations made by delivery
  // layers (one per directed edge that went silent past suspect_after).
  std::uint64_t neighbors_suspected = 0;

  // Service-mode health (core/service.h; zero outside service runs).
  // repairs_attempted counts repair_apsp invocations folded into these stats;
  // repairs_escalated counts the subset that were full-recompute escalations
  // (oversized dirty region, exhausted retries, or watchdog trips);
  // checkpoint_bytes totals the serialized checkpoint blobs written.
  std::uint64_t repairs_attempted = 0;
  std::uint64_t repairs_escalated = 0;
  std::uint64_t checkpoint_bytes = 0;

  // One-line human-readable rendering, e.g. for benches and examples.
  std::string debug_string() const;
};

std::ostream& operator<<(std::ostream& os, const RunStats& s);

// Accumulates statistics across the phases of a multi-run protocol:
// rounds/messages/bits and fault counters add, per-edge loads take the
// maximum. Budget policy: a side whose bandwidth_bits is 0 (freshly
// default-constructed stats) adopts the other's budget; two *different*
// nonzero budgets throw std::invalid_argument — phases enforced under
// different B cannot be summarized by one budget field, and silently taking
// the max would misreport what was enforced.
void accumulate(RunStats& into, const RunStats& from);

class CongestionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
class RoundLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// How a bounded run ended.
enum class RunStatus {
  kCompleted,   // global quiescence, no node failures observed
  kRoundLimit,  // the configured round limit was hit (stall / livelock)
  kCongestion,  // a bandwidth or field-width violation
  kDegraded,    // global quiescence, but nodes crashed or were declared dead:
                // results are partial and should be certified (core/certify.h)
};

// Result of Engine::run_bounded(): status plus the stats accumulated up to
// the stop, so stalled faulty runs yield diagnostics instead of an abort.
// A quiescent run that saw crash-stops or failure-detector verdicts reports
// kDegraded (with the counters in stats) rather than pretending completion.
struct Outcome {
  using Status = RunStatus;

  RunStatus status = RunStatus::kCompleted;
  RunStats stats;
  std::string message;  // the error text for non-completed outcomes

  bool ok() const noexcept { return status == RunStatus::kCompleted; }
  bool degraded() const noexcept { return status == RunStatus::kDegraded; }
  // Quiescence was reached (completed or degraded) — the run did not stall.
  bool terminated() const noexcept { return ok() || degraded(); }
};

const char* to_string(RunStatus s) noexcept;

class Engine {
 public:
  // The graph must outlive the engine. Throws std::invalid_argument on an
  // empty graph, a zero bandwidth budget, or an invalid fault plan.
  Engine(const Graph& g, EngineConfig config = {});
  ~Engine();

  // Installs processes: factory(v) creates node v's process (wrapped by
  // config.process_wrapper when set). Resets round/stat/fault state.
  void init(const std::function<std::unique_ptr<Process>(NodeId)>& factory);

  const Graph& graph() const noexcept { return *graph_; }
  std::uint32_t value_bits() const noexcept { return value_bits_; }
  std::uint32_t bandwidth_bits() const noexcept { return bandwidth_bits_; }
  std::uint64_t current_round() const noexcept { return round_; }
  // Resolved worker count (config.threads with 0 expanded to the hardware).
  std::uint32_t threads() const noexcept { return threads_; }

  // Runs rounds until quiescence (all processes done, no messages pending).
  // Throws RoundLimitError if the configured round limit is exceeded and
  // CongestionError if a bandwidth violation occurs.
  RunStats run();

  // Runs exactly `rounds` additional rounds (for protocols with a known
  // round bound), regardless of done() flags.
  RunStats run_rounds(std::uint64_t rounds);

  // Like run(), but never throws the engine errors: stalls (round limit) and
  // congestion violations are reported as an Outcome carrying the partial
  // stats. The engine is left at the round where the run stopped.
  Outcome run_bounded();

  // Messages sent per round (only populated with config.record_activity).
  const std::vector<std::uint64_t>& round_activity() const {
    return activity_;
  }

  // Access to a node's process after the run (to harvest results). Returns
  // the outermost process; process_as<T>() sees through delivery wrappers
  // via Process::underlying().
  Process& process(NodeId v) { return *processes_[v]; }
  const Process& process(NodeId v) const { return *processes_[v]; }

  // Typed harvest helper.
  template <typename T>
  T& process_as(NodeId v) {
    return dynamic_cast<T&>(processes_[v]->underlying());
  }

  // True once v has crash-stopped (per the fault plan).
  bool crashed(NodeId v) const noexcept {
    return !crashed_.empty() && crashed_[v] != 0;
  }

 private:
  class Ctx;  // the engine-backed RoundCtx implementation

  // One send buffered during the parallel node phase, in per-sender order.
  struct PendingSend {
    std::uint32_t neighbor_index;
    Message msg;
  };
  // A send after bandwidth accounting and fault resolution: one delivered
  // copy with its receiver-side view and any extra delay. The sender is
  // carried along so deliver_round() can emit kDeliver traces without a
  // reverse adjacency lookup.
  struct ResolvedDelivery {
    NodeId from;
    NodeId to;
    Received rec;
    std::uint32_t extra_delay;
  };
  // Per-shard round accumulator. Shards own disjoint contiguous node ranges;
  // counters and maxima are merged into stats_ in fixed shard order after the
  // parallel phase (sums and maxima make the merge order immaterial — the
  // basis of the thread-count determinism contract). Padded to a cache line
  // so adjacent shards' counters never false-share while the parallel phase
  // hammers them.
  struct alignas(kCacheLineBytes) ShardAccum {
    RunStats stats;             // deltas only: counters and per-round maxima
    std::uint64_t activity = 0;  // sends this round (record_activity)
    EngineMetrics metrics;       // this round's samples (config.metrics only)
    // Distinct directed edges the current node touched this round — scratch
    // of account_node(), drained into `metrics` after the node's outbox.
    std::vector<std::size_t> touched_edges;
    // The current node's buffered sends (reset per NODE: the fused phase B
    // consumes each node's outbox before the next node runs).
    BumpArena<PendingSend> outbox;
    // This shard's resolved deliveries and trace events for the round (reset
    // per ROUND). Nodes run in ascending order within the shard, so the
    // arenas' push order concatenated across shards IS ascending sender
    // order — deliver_round() and drain_node_events() rely on this.
    BumpArena<ResolvedDelivery> deliveries;
    BumpArena<TraceEvent> events;
    // First failure in this shard's node range (nodes are processed in
    // ascending order, so this is the smallest failing node of the shard).
    bool failed = false;
    NodeId failed_node = 0;
    std::exception_ptr error;
    void reset() {
      stats = RunStats{};
      activity = 0;
      metrics.clear();
      touched_edges.clear();
      outbox.reset();
      deliveries.reset();
      events.reset();
      failed = false;
      failed_node = 0;
      error = nullptr;
    }
  };

  // One round's delivered messages, flat: items[begin[v] .. begin[v]+len[v])
  // is node v's inbox, normals in ascending-sender order followed by any
  // delayed copies that came due, in ring order — exactly the per-node
  // delivery order of the pre-flat engine. Two frames double-buffer the
  // current and the next round; capacity is retained across rounds.
  struct InboxFrame {
    std::vector<Received> items;
    std::vector<std::size_t> begin;  // n entries
    std::vector<std::size_t> len;    // n entries
  };

  void step();  // executes one round
  // Phase A: one node's on_round() against the frozen inbox frame; sends are
  // buffered into the shard's outbox arena. Exceptions are captured into
  // `acc`. Phase B (account_node) runs fused, inline, for every node —
  // observers and traces are fed from the buffered events afterwards, never
  // by serializing this.
  void run_node(NodeId v, ShardAccum& acc);
  // Phase B: bandwidth accounting + fault resolution for the node's buffered
  // outbox. Only sender-owned state (edge/node counters of v's directed
  // edges, the shard's delivery/event arenas, the shard accumulator) is
  // written, so shards never race.
  void account_node(NodeId v, ShardAccum& acc);
  // Phase C (serial): count + prefix-sum + scatter the shards' resolved
  // deliveries (plus delayed copies coming due) into the next inbox frame in
  // ascending sender order, then swap frames.
  void deliver_round();
  void run_phases();  // A+B across shards, merge, error propagation
  // Replays the per-shard event arenas in shard order (= ascending sender
  // order) into the send observer and the trace log — the serial engine's
  // global send order.
  void drain_node_events();
  void apply_crashes();
  bool quiescent() const;

  const Graph* graph_;
  EngineConfig config_;
  std::uint32_t value_bits_ = 0;
  std::uint32_t bandwidth_bits_ = 0;
  std::uint64_t max_rounds_ = 0;
  std::uint32_t threads_ = 1;  // resolved worker count (>= 1)

  std::vector<std::unique_ptr<Process>> processes_;

  // Double-buffered flat inboxes: inbox_[cur_inbox_] is the round's frozen
  // frame, the other is scattered into by deliver_round().
  InboxFrame inbox_[2];
  unsigned cur_inbox_ = 0;
  std::vector<std::size_t> inbox_cursor_;  // scatter cursors (scratch)
  std::uint64_t pending_messages_ = 0;     // messages in the current frame

  std::vector<ShardAccum> accum_;
  std::unique_ptr<WorkerPool> pool_;  // engaged when threads_ > 1

  bool record_events_ = false;  // send_observer or trace attached
  bool record_trace_ = false;   // trace attached

  // Per directed edge: bits sent this round (lazy-reset via round stamps).
  // Directed edge index = graph offsets[u] + neighbor_index. 64-bit so that
  // unenforced (enforce_bandwidth=false) rounds cannot wrap the counters
  // that RunStats maxima and EngineMetrics samples are read from.
  std::vector<std::size_t> edge_offsets_;
  // mirror_index_[offsets[u] + i] = index of u in neighbors(neighbors(u)[i]):
  // the receiver-side view of every directed edge, precomputed once so the
  // per-message reverse lookup is a load instead of a binary search.
  std::vector<std::uint32_t> mirror_index_;
  std::vector<std::uint64_t> edge_bits_;
  std::vector<std::uint64_t> edge_msgs_;
  std::vector<std::uint64_t> edge_stamp_;
  std::vector<std::uint64_t> node_bits_;
  std::vector<std::uint64_t> node_stamp_;

  // Fault state (engaged only when config_.faults is set).
  std::unique_ptr<FaultInjector> faults_;
  std::vector<std::uint8_t> crashed_;  // crash-stop applied
  // Ring of future deliveries for delayed messages, indexed by absolute
  // delivery round modulo the ring size.
  std::vector<std::vector<std::pair<NodeId, Received>>> delay_ring_;
  std::uint64_t delayed_pending_ = 0;

  std::uint64_t round_ = 0;
  RunStats stats_;
  std::vector<std::uint64_t> activity_;
};

}  // namespace dapsp::congest
