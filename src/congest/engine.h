// The synchronous CONGEST round engine.
//
// Model (Section 2 of the paper): in each synchronous round, every node may
// send up to B bits over each incident edge (different messages to different
// neighbors are allowed), then receives everything its neighbors sent to it
// in that round. Local computation is free. The engine:
//
//   * drives one Process per node, round by round, in a deterministic order;
//   * delivers messages with exactly one round of latency;
//   * charges every message its bit cost and enforces the per-(directed
//     edge, round) budget B, throwing CongestionError on violation — the
//     paper's congestion-freedom claims (Lemma 1) become checked runtime
//     invariants;
//   * terminates on global quiescence: every process reports done() and no
//     messages are in flight;
//   * reports RunStats (rounds, message count, total bits, worst per-edge
//     load) — the paper's cost measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"

namespace dapsp::congest {

class Engine;

// Per-round view handed to a Process. Valid only during on_round().
class RoundCtx {
 public:
  NodeId id() const noexcept { return id_; }
  NodeId n() const noexcept;
  std::uint64_t round() const noexcept;
  std::uint32_t degree() const noexcept;
  NodeId neighbor(std::uint32_t index) const;

  // Messages delivered this round (sent by neighbors last round), ordered by
  // sender index, then by send order.
  std::span<const Received> inbox() const noexcept;

  // Queues a message to neighbor `index` for delivery next round. Multiple
  // sends to the same neighbor in one round are allowed as long as their
  // total bit cost fits the bandwidth B.
  void send(std::uint32_t index, const Message& m);
  // Convenience: send to every neighbor.
  void send_all(const Message& m);

 private:
  friend class Engine;
  RoundCtx(Engine& engine, NodeId id) : engine_(engine), id_(id) {}
  Engine& engine_;
  NodeId id_;
};

// A node's algorithm. One instance per node; the engine owns them.
class Process {
 public:
  virtual ~Process() = default;

  // Called once per round for every node (even with an empty inbox).
  virtual void on_round(RoundCtx& ctx) = 0;

  // Quiescence flag: true when this node has nothing scheduled — it will not
  // send anything unless a future message wakes it. The engine stops when
  // every process is done and no messages are in flight.
  virtual bool done() const = 0;
};

struct EngineConfig {
  // Per-edge per-round budget B = kTagBits + bandwidth_ids * value_bits,
  // where value_bits = bits needed for values in [0, 2n). The default allows
  // one (id, distance) payload plus one small control message per edge per
  // round — a constant number of ids, as the paper assumes.
  std::uint32_t bandwidth_ids = 4;
  bool enforce_bandwidth = true;
  // Safety valve: run() throws RoundLimitError beyond this many rounds.
  std::uint64_t max_rounds = 0;  // 0 = default 64*n + 1024
  // Record the number of messages sent in each round (round_activity()),
  // e.g. to plot a protocol's phase structure.
  bool record_activity = false;
};

struct RunStats {
  std::uint64_t rounds = 0;       // rounds executed until quiescence
  std::uint64_t messages = 0;     // total messages delivered
  std::uint64_t total_bits = 0;   // total bits delivered
  std::uint32_t max_edge_bits = 0;      // worst (directed edge, round) load
  std::uint32_t max_edge_messages = 0;  // worst message count per edge-round
  std::uint64_t max_node_bits = 0;      // worst per-(node, round) outgoing load
  std::uint32_t bandwidth_bits = 0;     // the enforced budget B
};

// Accumulates statistics across the phases of a multi-run protocol:
// rounds/messages/bits add, per-edge loads take the maximum.
void accumulate(RunStats& into, const RunStats& from);

class CongestionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
class RoundLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  // The graph must outlive the engine.
  Engine(const Graph& g, EngineConfig config = {});

  // Installs processes: factory(v) creates node v's process.
  void init(const std::function<std::unique_ptr<Process>(NodeId)>& factory);

  const Graph& graph() const noexcept { return *graph_; }
  std::uint32_t value_bits() const noexcept { return value_bits_; }
  std::uint32_t bandwidth_bits() const noexcept { return bandwidth_bits_; }
  std::uint64_t current_round() const noexcept { return round_; }

  // Runs rounds until quiescence (all processes done, no messages pending).
  // Throws RoundLimitError if the configured round limit is exceeded and
  // CongestionError if a bandwidth violation occurs.
  RunStats run();

  // Runs exactly `rounds` additional rounds (for protocols with a known
  // round bound), regardless of done() flags.
  RunStats run_rounds(std::uint64_t rounds);

  // Messages sent per round (only populated with config.record_activity).
  const std::vector<std::uint64_t>& round_activity() const {
    return activity_;
  }

  // Access to a node's process after the run (to harvest results).
  Process& process(NodeId v) { return *processes_[v]; }
  const Process& process(NodeId v) const { return *processes_[v]; }

  // Typed harvest helper.
  template <typename T>
  T& process_as(NodeId v) {
    return dynamic_cast<T&>(*processes_[v]);
  }

 private:
  friend class RoundCtx;

  void step();  // executes one round
  void queue_message(NodeId from, std::uint32_t neighbor_index,
                     const Message& m);
  bool quiescent() const;

  const Graph* graph_;
  EngineConfig config_;
  std::uint32_t value_bits_ = 0;
  std::uint32_t bandwidth_bits_ = 0;
  std::uint64_t max_rounds_ = 0;

  std::vector<std::unique_ptr<Process>> processes_;

  // inboxes_[v]: messages delivered to v this round.
  // next_inboxes_[v]: messages queued during this round for next round.
  std::vector<std::vector<Received>> inboxes_;
  std::vector<std::vector<Received>> next_inboxes_;
  std::uint64_t pending_messages_ = 0;  // messages in next_inboxes_

  // Per directed edge: bits sent this round (lazy-reset via round stamps).
  // Directed edge index = graph offsets[u] + neighbor_index.
  std::vector<std::size_t> edge_offsets_;
  std::vector<std::uint32_t> edge_bits_;
  std::vector<std::uint32_t> edge_msgs_;
  std::vector<std::uint64_t> edge_stamp_;
  std::vector<std::uint64_t> node_bits_;
  std::vector<std::uint64_t> node_stamp_;

  std::uint64_t round_ = 0;
  RunStats stats_;
  std::vector<std::uint64_t> activity_;
};

}  // namespace dapsp::congest
