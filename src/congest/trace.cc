#include "congest/trace.h"

#include <algorithm>
#include <map>
#include <ostream>

namespace dapsp::congest {

const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kSend:
      return "send";
    case TraceEventKind::kDeliver:
      return "deliver";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kDelay:
      return "delay";
    case TraceEventKind::kDuplicate:
      return "duplicate";
    case TraceEventKind::kCrash:
      return "crash";
    case TraceEventKind::kNeighborDown:
      return "neighbor-down";
    case TraceEventKind::kFrontier:
      return "frontier";
    case TraceEventKind::kCorrupt:
      return "corrupt";
    case TraceEventKind::kDelta:
      return "delta";
    case TraceEventKind::kEpoch:
      return "epoch";
    case TraceEventKind::kJournal:
      return "journal";
    case TraceEventKind::kRecovery:
      return "recovery";
    case TraceEventKind::kShed:
      return "shed";
    case TraceEventKind::kBreaker:
      return "breaker";
  }
  return "?";
}

namespace {

// Lane (Chrome tid) of an event, or -1 when the lane mode excludes it.
std::int64_t lane_of(const TraceEvent& ev, TraceLanes lanes) {
  if (lanes == TraceLanes::kPerNode) return ev.node;
  switch (ev.kind) {
    case TraceEventKind::kSend:
      // Flood-carrying protocol messages name their source in f[0]
      // (kApspFlood = 7, kSspToken = 8; see core/primitives/bfs_process.h).
      if (ev.msg.kind == 7 || ev.msg.kind == 8) return ev.msg.f[0];
      return -1;
    case TraceEventKind::kFrontier:
      return ev.peer;  // the flood source
    default:
      return -1;
  }
}

void write_args(std::ostream& os, const TraceEvent& ev) {
  os << "{\"node\": " << ev.node;
  if (ev.peer != kTraceNoPeer) os << ", \"peer\": " << ev.peer;
  os << ", \"msg_kind\": " << static_cast<unsigned>(ev.msg.kind) << ", \"f\": [";
  for (int i = 0; i < ev.msg.num_fields; ++i) {
    os << (i == 0 ? "" : ", ") << ev.msg.f[static_cast<std::size_t>(i)];
  }
  os << "]";
  if (ev.aux != 0) os << ", \"aux\": " << ev.aux;
  os << "}";
}

}  // namespace

void TraceLog::write_chrome_json(std::ostream& os, TraceLanes lanes) const {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    const std::int64_t lane = lane_of(ev, lanes);
    if (lane < 0) continue;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"" << to_string(ev.kind) << " k"
       << static_cast<unsigned>(ev.msg.kind) << "\", \"cat\": \""
       << to_string(ev.kind) << "\", \"ph\": \"X\", \"ts\": " << ev.round
       << ", \"dur\": 1, \"pid\": 0, \"tid\": " << lane << ", \"args\": ";
    write_args(os, ev);
    os << "}";
  }
  os << "\n]}\n";
}

void TraceLog::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : events_) {
    os << "{\"kind\": \"" << to_string(ev.kind) << "\", \"round\": " << ev.round
       << ", \"args\": ";
    write_args(os, ev);
    os << "}\n";
  }
}

void TraceLog::write_csv(std::ostream& os) const {
  os << "kind,node,peer,round,msg_kind,f0,f1,f2,f3,f4,aux\n";
  for (const TraceEvent& ev : events_) {
    os << to_string(ev.kind) << "," << ev.node << ",";
    if (ev.peer != kTraceNoPeer) os << ev.peer;
    os << "," << ev.round << "," << static_cast<unsigned>(ev.msg.kind);
    for (int i = 0; i < kMaxFields; ++i) {
      os << ",";
      if (i < ev.msg.num_fields) os << ev.msg.f[static_cast<std::size_t>(i)];
    }
    os << "," << ev.aux << "\n";
  }
}

std::uint64_t max_sends_per_edge_round(std::span<const TraceEvent> events,
                                       std::uint8_t msg_kind) {
  // Events arrive round-major and sender-major, so one (edge, round) key is
  // contiguous per round; a map keyed by (from, to) reset on round change
  // keeps this O(sends log deg) without knowing the graph.
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> per_edge;
  std::uint64_t current_round = 0;
  std::uint64_t worst = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEventKind::kSend || ev.msg.kind != msg_kind) continue;
    if (ev.round != current_round) {
      per_edge.clear();
      current_round = ev.round;
    }
    const std::uint64_t c = ++per_edge[{ev.node, ev.peer}];
    worst = std::max(worst, c);
  }
  return worst;
}

}  // namespace dapsp::congest
