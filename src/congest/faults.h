// Deterministic, seeded fault injection for the CONGEST engine.
//
// The paper's model is idealized: every message sent in round r arrives in
// round r+1 and no node ever fails. A FaultPlan perturbs that transport —
// message drops, duplication, bounded extra delivery delay, scheduled link
// failures and crash-stop node failures — while keeping every run exactly
// reproducible: all randomness flows from the plan's seed through the
// library's SplitMix64 generator (util/rng.h). Decisions for the messages
// one node sends in one round are drawn, in send order, from an independent
// stream keyed by (seed, node, round) — the fate of a message depends only
// on who sent it, when, and how many sends preceded it from that node in
// that round, never on what other nodes did. This is what makes the sharded
// engine (DESIGN.md §11) bit-identical to the serial one: senders' streams
// can be drawn concurrently without any shared RNG state. Running the same
// plan twice (at any thread count) yields bit-identical traces and RunStats
// (including the fault counters).
//
// Faults model the *network*, not the algorithm: a dropped message was sent
// (it is charged bandwidth and counted in RunStats::messages) but never
// arrives. The companion reliable-delivery layer (congest/reliable.h) makes
// the paper's algorithms survive such transports unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dapsp::congest {

// Per-directed-edge override of the base drop probability.
struct EdgeDropRate {
  NodeId from = 0;
  NodeId to = 0;
  double drop_prob = 0.0;
};

// Per-directed-edge override of the base payload-corruption probability.
struct EdgeCorruptRate {
  NodeId from = 0;
  NodeId to = 0;
  double corrupt_prob = 0.0;
};

// From `round` on, the (undirected) link u—v delivers nothing in either
// direction. Messages sent across it are counted as dropped.
struct LinkFailure {
  NodeId u = 0;
  NodeId v = 0;
  std::uint64_t round = 0;
};

// Crash-stop: from the start of `round` on, node v executes no rounds,
// sends nothing, and every message addressed to it is dropped. Messages it
// sent before crashing are still delivered (they were already on the wire).
struct NodeCrash {
  NodeId v = 0;
  std::uint64_t round = 0;
};

// Transient stall: for rounds [round, round + duration) node v executes
// nothing — it sends no messages and reads none (its inbox for those rounds
// is discarded, counted as drops) — but it does not die: from round
// `round + duration` on it resumes normally. Messages addressed to it while
// stalled are lost exactly as if the node were briefly deaf; messages it
// sent before stalling are still delivered. Overlapping stalls for one node
// union naturally. Windows overlapping the node's crash round are
// canonicalized at plan compilation: truncated at the crash round (a dead
// node cannot also stall) and dropped when they begin at or after it.
struct NodeStall {
  NodeId v = 0;
  std::uint64_t round = 0;
  std::uint64_t duration = 1;
};

// A complete description of the faults injected into one run. Value type;
// carried inside EngineConfig. An all-default plan injects nothing and the
// engine's delivery behaviour (and round counts) are bit-identical to a run
// without a plan.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Base per-message probabilities, applied to every directed edge unless
  // overridden. All probabilities must lie in [0, 1].
  double drop_prob = 0.0;       // message vanishes
  double duplicate_prob = 0.0;  // a second copy is delivered
  double delay_prob = 0.0;      // delivery is late by 1..max_extra_delay
  double corrupt_prob = 0.0;    // one payload bit of a delivered copy flips

  // Extra delivery latency (in rounds, beyond the normal one round) drawn
  // uniformly from [1, max_extra_delay] for delayed messages. Must be >= 1
  // when delay_prob > 0, and <= kMaxExtraDelay (the reliable layer's
  // sequence-number window assumes a bounded reordering horizon).
  std::uint32_t max_extra_delay = 0;

  // Overrides are applied in order; when one directed edge appears several
  // times, the last entry wins.
  std::vector<EdgeDropRate> edge_drop_overrides;
  std::vector<EdgeCorruptRate> edge_corrupt_overrides;
  std::vector<LinkFailure> link_failures;
  std::vector<NodeCrash> crashes;
  std::vector<NodeStall> stalls;

  // True when the plan can affect delivery at all (used by tests/benches to
  // label runs; the engine injects faults whenever a plan is present).
  bool trivial() const noexcept {
    return drop_prob == 0.0 && duplicate_prob == 0.0 && delay_prob == 0.0 &&
           corrupt_prob == 0.0 && edge_drop_overrides.empty() &&
           edge_corrupt_overrides.empty() && link_failures.empty() &&
           crashes.empty() && stalls.empty();
  }
};

inline constexpr std::uint32_t kMaxExtraDelay = 64;

// FaultDecision::corrupt_bit value meaning "this copy arrives intact".
inline constexpr std::uint32_t kNoCorruption = 0xffffffffu;

// The fate of one sent message, drawn from the plan's RNG.
struct FaultDecision {
  bool dropped = false;
  std::uint32_t copies = 1;  // 2 when duplicated (and not dropped)
  // Extra delivery delay per copy (0 = deliver next round as usual).
  std::uint32_t extra_delay[2] = {0, 0};
  // Index of the wire bit flipped in each copy (kNoCorruption = intact).
  // Bits 0..kTagBits-1 are the message kind; from kTagBits on, bit
  // kTagBits + i*value_bits + j is bit j of field i. Exactly one bit flips
  // per corrupted copy — the granularity the reliable layer's checksum is
  // guaranteed to detect.
  std::uint32_t corrupt_bit[2] = {kNoCorruption, kNoCorruption};
};

// Compiled form of a FaultPlan against a concrete graph: per-directed-edge
// probabilities and failure rounds, per-node crash rounds. Immutable after
// construction (all mutable randomness lives in caller-held per-(node, round)
// streams), so one injector can serve concurrent shards of the parallel
// engine without locks, and repeated runs of one engine are identical with
// no reset step.
class FaultInjector {
 public:
  // Validates the plan against the graph; throws std::invalid_argument on
  // out-of-range probabilities/delays, unknown edges or nodes.
  FaultInjector(const Graph& g, const FaultPlan& plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  // Largest extra delay any message can incur (sizes the delivery ring).
  std::uint32_t max_extra_delay() const noexcept {
    return plan_.max_extra_delay;
  }

  // Crash round of v (UINT64_MAX if v never crashes).
  std::uint64_t crash_round(NodeId v) const noexcept {
    return crash_round_[v];
  }
  bool crashed(NodeId v, std::uint64_t round) const noexcept {
    return round >= crash_round_[v];
  }

  // True when v is inside one of its scheduled stall windows at `round`.
  bool stalled(NodeId v, std::uint64_t round) const noexcept {
    for (const auto& [begin, end] : stall_windows_[v]) {
      if (round >= begin && round < end) return true;
    }
    return false;
  }

  // True when the directed edge (indexed as graph offsets[u] + neighbor
  // index, the engine's numbering) is failed at `round`.
  bool link_down(std::size_t directed_edge, std::uint64_t round) const noexcept {
    return round >= link_down_round_[directed_edge];
  }

  // The decision stream for the messages `node` sends in `round`: an
  // independent SplitMix64 generator seeded by a finalized mix of
  // (plan seed, node, round). The caller draws one decide() per send, in
  // send order; streams of distinct (node, round) pairs never interact, so
  // shards may hold them concurrently.
  Rng stream(NodeId node, std::uint64_t round) const noexcept;

  // Draws the fate of one message sent over `directed_edge` from the
  // sender's stream. Call exactly once per sent message, in send order
  // within the (node, round) stream, for reproducibility. `message_bits` is
  // the message's wire width (Message::bit_cost) — the corruption draw picks
  // a uniform bit below it; pass 0 only when the plan cannot corrupt.
  FaultDecision decide(Rng& stream, std::size_t directed_edge,
                       std::uint32_t message_bits = 0) const;

 private:
  FaultPlan plan_;
  std::vector<double> drop_prob_;            // per directed edge
  std::vector<double> corrupt_prob_;         // per directed edge
  std::vector<std::uint64_t> link_down_round_;  // per directed edge
  std::vector<std::uint64_t> crash_round_;      // per node
  // Per node, the [begin, end) stall windows (usually zero or one).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      stall_windows_;
};

}  // namespace dapsp::congest
