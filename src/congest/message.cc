#include "congest/message.h"

#include <sstream>

namespace dapsp::congest {

std::string Message::debug_string() const {
  std::ostringstream out;
  out << "Message(kind=" << static_cast<int>(kind) << ", fields=[";
  for (int i = 0; i < num_fields; ++i) {
    if (i > 0) out << ", ";
    out << f[static_cast<std::size_t>(i)];
  }
  out << "])";
  return out.str();
}

}  // namespace dapsp::congest
