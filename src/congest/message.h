// Messages in the CONGEST model.
//
// A message is a small tagged record of up to five integer fields. Its cost
// in bits is what the bandwidth accounting charges: a tag byte plus
// `num_fields` values of `value_bits` bits each, where value_bits is derived
// from n (everything a message carries — ids, distances, counts, diameter
// estimates — is < 2n in this library). This realizes the paper's
// B = O(log n): with the default budget a message carrying an (id, distance)
// pair fits comfortably in one round's bandwidth. (The fifth field exists for
// the reliable layer's per-frame integrity checksum; protocol messages in
// src/core use at most four.)
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace dapsp::congest {

inline constexpr int kTagBits = 8;
inline constexpr int kMaxFields = 5;

struct Message {
  std::uint8_t kind = 0;
  std::uint8_t num_fields = 0;
  std::array<std::uint32_t, kMaxFields> f{};

  static Message make(std::uint8_t kind) { return Message{kind, 0, {}}; }
  static Message make(std::uint8_t kind, std::uint32_t a) {
    return Message{kind, 1, {a}};
  }
  static Message make(std::uint8_t kind, std::uint32_t a, std::uint32_t b) {
    return Message{kind, 2, {a, b}};
  }
  static Message make(std::uint8_t kind, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c) {
    return Message{kind, 3, {a, b, c}};
  }
  static Message make(std::uint8_t kind, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c, std::uint32_t d) {
    return Message{kind, 4, {a, b, c, d}};
  }
  static Message make(std::uint8_t kind, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c, std::uint32_t d, std::uint32_t e) {
    return Message{kind, 5, {a, b, c, d, e}};
  }

  // Cost charged against the per-edge bandwidth.
  std::uint32_t bit_cost(std::uint32_t value_bits) const {
    return kTagBits + num_fields * value_bits;
  }

  std::string debug_string() const;
};

// A message together with the index (in the receiver's adjacency list) of
// the neighbor it came from.
struct Received {
  std::uint32_t from_index = 0;
  Message msg;
};

// Protocol-level "no value / infinity" sentinel: the largest value that fits
// a message field (all real payloads — ids, distances, D0 = 2*ecc, counts —
// are strictly smaller). Protocols use this instead of kInfDist on the wire.
inline std::uint32_t wire_infinity(NodeId n) { return 2 * n - 1; }

}  // namespace dapsp::congest
