// Reliable delivery over faulty links: a process adapter that lets the
// paper's synchronous algorithms run unchanged on a lossy transport.
//
// ReliableAdapter wraps any inner Process and simulates the idealized
// synchronous CONGEST model in *virtual rounds* on top of a real network
// that may drop, duplicate or delay messages (congest/faults.h). The inner
// process sees a RoundCtx whose round() is the virtual round and whose inbox
// contains exactly the messages its neighbors' inner processes sent in the
// previous virtual round — exactly-once, in sender order. Any protocol that
// is correct in the synchronous model is therefore correct wrapped, at a
// constant-factor round cost (measured by bench_faults).
//
// Mechanics, per directed edge:
//   * every inner message is encoded into 1–2 frames (messages with more
//     than two payload fields are fragmented, since a frame also carries a
//     sequence number and the inner tag);
//   * every frame — data, marker, ack, beat — carries a trailing integrity
//     checksum field (an 8-bit XOR-fold of the kind and the other fields,
//     with a per-field rotation). A frame whose checksum does not verify is
//     counted (ReliableStats::corrupt_frames_dropped) and discarded; the
//     stop-and-wait ARQ then recovers it by retransmission, so payload
//     corruption (FaultPlan::corrupt_prob, one flipped wire bit per
//     corrupted copy — a granularity the checksum detects with certainty)
//     never reaches the inner process. A corrupted arrival still refreshes
//     the failure detector's last-heard clock: crashed nodes send nothing,
//     so even a garbled frame is sound evidence the peer is alive;
//   * frames form a FIFO stream with per-edge sequence numbers (mod 256) and
//     stop-and-wait ARQ: one frame outstanding, positive acks, retransmit
//     after `retransmit_after` silent rounds; the receiver dedups stale
//     sequence numbers, giving at-least-once transport, exactly-once
//     delivery;
//   * a round *marker* frame closes each virtual round's batch (piggybacked
//     on the last data frame when there is one). A node executes virtual
//     round r+1 once it holds the complete round-r batch from every
//     neighbor — the classical alpha-synchronizer, made demand-driven:
//     a node whose inner process is done withholds its marker (so a fully
//     quiescent network also quiesces at the engine level) and supplies it
//     only when a neighbor's own traffic shows the marker is needed.
//
// Bandwidth: with the trailing checksum the largest frame carries 5 fields,
// so a frame plus an ack on one directed edge in one round costs up to
// 2*kTagBits + 7*value_bits <= kTagBits + 8*value_bits (value_bits >= 8),
// and wrapped runs need EngineConfig::bandwidth_ids >= kReliableBandwidthIds.
// apply_reliable() sets this up.
//
// Failure detection (crash survival, DESIGN.md §10): crash-stop nodes and
// permanently failed links cannot be masked — the ARQ would retransmit into
// the void forever and the synchronizer would wait for a marker that never
// comes. Instead the adapter runs a per-edge heartbeat/timeout detector:
//   * while the adapter is active (inner not done, or transport busy) it
//     sends a kRelBeat on every edge that has been silent outbound for
//     `heartbeat_every` real rounds; any adapter answers a beat with a
//     kRelBeatAck (never re-answered, so quiescent pairs stay quiet);
//   * an edge on which nothing (frame, ack, beat or beat-ack) has been
//     heard for `suspect_after` consecutive *active* real rounds is declared
//     dead: ARQ state toward it is canceled, the synchronizer stops
//     requiring its round batches (virtual time advances without it), the
//     event is counted in RunStats::neighbors_suspected, and the inner
//     process is told via Process::on_neighbor_down(index, virtual_round).
//   Silence while this adapter is passive is never counted (a quiet, done
//   neighbor is not a dead one), and a declaration is permanent (crash-stop
//   model). With delays bounded by the plan's max_extra_delay, a live
//   neighbor is heard at least every heartbeat_every + 2 + 2*max_extra_delay
//   rounds, so any suspect_after above that bound — the default covers the
//   global kMaxExtraDelay — makes false suspicion impossible under
//   drop-free plans and astronomically unlikely otherwise.
//
// Caveats (documented in DESIGN.md):
//   * the engine's per-edge budget B applies to the adapter's frames; the
//     inner protocol's own congestion-freedom is attested by its fault-free
//     runs, not re-checked under wrapping (inner sends are queued, not
//     bandwidth-stamped);
//   * a wrapped process is only re-invoked when virtual time advances; a
//     process that spontaneously leaves done() without any input cannot be
//     simulated (none in this library does);
//   * with the detector disabled (suspect_after = 0), crash-stop and
//     permanent link failures stall the synchronizer, which
//     Engine::run_bounded() reports as kRoundLimit.
//
// Threading: the adapter keeps all of its state (ARQ windows, reassembly
// buffers, virtual-round queues, detector timers) inside the per-node
// instance and touches nothing shared — it reads only its own RoundCtx and
// writes only via ctx.send()/note_neighbor_suspected(), both shard-local in
// the parallel engine. Wrapped runs are therefore bit-identical at every
// EngineConfig::threads value, like unwrapped ones (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "congest/engine.h"
#include "congest/message.h"

namespace dapsp::congest {

// Outer wire-protocol tags. Kept in a high slice of the 8-bit kind space so
// they never collide with protocol tags (src/core uses 1..12). The field
// lists below omit the trailing integrity checksum every frame additionally
// carries as its last field.
enum ReliableKind : std::uint8_t {
  kRelAck = 240,        // (seq): cumulative ack of frame `seq`
  kRelMark = 241,       // (seq): round marker, no data this virtual round
  kRelData0 = 242,      // (seq, inner_kind): 0-field inner message
  kRelData1 = 243,      // (seq, inner_kind, f0)
  kRelData2 = 244,      // (seq, inner_kind, f0, f1)
  kRelData0Last = 245,  // ditto, closing the virtual round's batch
  kRelData1Last = 246,
  kRelData2Last = 247,
  kRelFragA3 = 248,  // (seq, inner_kind, f0, f1): first half, 3-field inner
  kRelFragA4 = 249,  // (seq, inner_kind, f0, f1): first half, 4-field inner
  kRelFragB = 250,      // (seq, f2[, f3]): second half
  kRelFragBLast = 251,  // ditto, closing the batch
  kRelBeat = 252,       // heartbeat: "are you alive?" (no payload, no ARQ)
  kRelBeatAck = 253,    // heartbeat answer; never answered itself
};

// Sequence numbers live mod kRelSeqMod (they must fit one message field,
// whose width has an 8-bit floor). Safe against stale duplicates as long as
// fewer than kRelSeqMod frames can progress within one reordering window —
// guaranteed by FaultPlan's kMaxExtraDelay bound.
inline constexpr std::uint32_t kRelSeqMod = 256;

// Minimum EngineConfig::bandwidth_ids for wrapped runs (frame + ack per
// directed edge per round, both checksummed).
inline constexpr std::uint32_t kReliableBandwidthIds = 8;

// Default failure-detector timeout: safely above the worst-case heartbeat
// round trip under the globally bounded reordering horizon
// (heartbeat_every + 2 + 2*kMaxExtraDelay = 134 with the defaults), so a
// delay-only plan can never produce a false NeighborDown.
inline constexpr std::uint32_t kDefaultSuspectAfter = 150;

struct ReliableConfig {
  // Retransmit an unacknowledged frame after this many rounds of silence.
  // Must cover the round trip (2 rounds fault-free; add 2*max_extra_delay
  // when the plan delays messages) or retransmissions go spurious — still
  // correct, just wasteful.
  std::uint32_t retransmit_after = 4;

  // Failure detector: declare a neighbor dead after this many consecutive
  // silent real rounds on its edge while this node is active. 0 disables
  // detection (crashes then stall the run, as before PR 2). Must exceed
  // heartbeat_every + 2 + 2*max_extra_delay of the plan in use to rule out
  // false suspicion; the default covers the global kMaxExtraDelay bound.
  std::uint32_t suspect_after = kDefaultSuspectAfter;

  // Send a heartbeat on any edge that has been silent outbound for this
  // many real rounds (while active). Must be >= 1.
  std::uint32_t heartbeat_every = 4;
};

// Transport counters of one adapter (sum over nodes for a run's view).
struct ReliableStats {
  std::uint64_t virtual_rounds = 0;   // inner rounds executed
  std::uint64_t frames_sent = 0;      // first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t stale_frames = 0;     // duplicates discarded by dedup
  std::uint64_t inner_messages = 0;   // inner sends carried
  std::uint64_t beats_sent = 0;       // heartbeats + heartbeat answers
  // Frames whose integrity checksum failed to verify: discarded, recovered
  // by the ARQ. Nonzero only under FaultPlan::corrupt_prob.
  std::uint64_t corrupt_frames_dropped = 0;
  std::uint32_t neighbors_declared_down = 0;  // detector verdicts
};

class ReliableAdapter final : public Process {
 public:
  explicit ReliableAdapter(std::unique_ptr<Process> inner,
                           ReliableConfig config = {});
  ~ReliableAdapter() override;

  void on_round(RoundCtx& ctx) override;
  bool done() const override;

  // Harvest hooks: Engine::process_as<T>() resolves through to the inner
  // algorithm process.
  Process& underlying() override { return inner_->underlying(); }
  Process& inner() { return *inner_; }

  const ReliableStats& stats() const noexcept { return stats_; }
  std::uint64_t virtual_round() const noexcept {
    return static_cast<std::uint64_t>(executed_ + 1);
  }

  // True once the failure detector has declared the neighbor at `index`
  // dead. Permanent for the rest of the run.
  bool neighbor_down(std::uint32_t index) const {
    return index < down_.size() && down_[index] != 0;
  }

 private:
  class VirtualCtx;
  struct EdgeTx;
  struct EdgeRx;

  void ensure_edges(RoundCtx& ctx);
  void detect_failures(RoundCtx& ctx, bool active);
  void process_inbox(RoundCtx& ctx);
  void accept_frame(std::uint32_t e, const Message& m);
  void enqueue_markers_upto(std::uint32_t e, std::int64_t round);
  void enqueue_round_output(std::uint32_t e,
                            const std::vector<Message>& outbox);
  void encode(std::uint32_t e, const Message& inner, bool last);
  std::uint32_t take_seq(std::uint32_t e);
  bool undelivered_data() const;
  bool peer_ahead() const;
  bool buckets_ready() const;
  void execute_virtual_round(RoundCtx& ctx);
  void transmit(RoundCtx& ctx, bool active);

  std::unique_ptr<Process> inner_;
  ReliableConfig config_;
  ReliableStats stats_;

  bool edges_ready_ = false;
  std::vector<EdgeTx> tx_;
  std::vector<EdgeRx> rx_;

  // Failure-detector state, per edge. last_heard_ counts only rounds while
  // this adapter was active (passive rounds refresh it, so a done node's
  // silence never accrues toward suspicion).
  std::vector<std::uint64_t> last_heard_;
  std::vector<std::uint64_t> last_sent_any_;
  std::vector<std::uint8_t> beat_owed_;
  std::vector<std::uint8_t> down_;

  // Highest virtual round whose inner on_round has run (-1 = none yet).
  std::int64_t executed_ = -1;
  // Sends captured from the inner process during execute_virtual_round.
  std::vector<std::vector<Message>> outboxes_;
};

// EngineConfig::process_wrapper hook wrapping every process in a
// ReliableAdapter.
EngineConfig::ProcessWrapper reliable_wrapper(ReliableConfig config = {});

// Convenience: installs reliable_wrapper and raises bandwidth_ids to the
// adapter's minimum. The caller still owns max_rounds (wrapped runs take a
// constant factor more real rounds; raise it for lossy plans).
void apply_reliable(EngineConfig& config, ReliableConfig rc = {});

}  // namespace dapsp::congest
