#include "graph/delta.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/journal.h"

namespace dapsp {

namespace {

constexpr NodeId kNone = 0xffffffffu;

void insert_sorted(std::vector<NodeId>& v, NodeId x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

void erase_sorted(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  v.erase(it);
}

}  // namespace

const char* to_string(DeltaKind k) noexcept {
  switch (k) {
    case DeltaKind::kEdgeInsert:
      return "edge-insert";
    case DeltaKind::kEdgeRemove:
      return "edge-remove";
    case DeltaKind::kNodeJoin:
      return "node-join";
    case DeltaKind::kNodeLeave:
      return "node-leave";
  }
  return "?";
}

std::vector<std::uint8_t> encode_churn_batch(const ChurnBatch& b) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + b.deltas.size() * 9 + b.crashes.size() * 4);
  put_u32(out, static_cast<std::uint32_t>(b.deltas.size()));
  for (const GraphDelta& d : b.deltas) {
    out.push_back(static_cast<std::uint8_t>(d.kind));
    put_u32(out, d.u);
    put_u32(out, d.v);
  }
  put_u32(out, static_cast<std::uint32_t>(b.crashes.size()));
  for (const NodeId v : b.crashes) put_u32(out, v);
  put_u32(out, b.corrupt_flips);
  put_u64(out, b.corrupt_seed);
  return out;
}

ChurnBatch decode_churn_batch(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes, "decode_churn_batch");
  ChurnBatch b;
  const std::uint32_t n_deltas = r.u32();
  b.deltas.reserve(n_deltas);
  for (std::uint32_t i = 0; i < n_deltas; ++i) {
    GraphDelta d;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(DeltaKind::kNodeLeave)) {
      throw std::runtime_error("decode_churn_batch: bad delta kind");
    }
    d.kind = static_cast<DeltaKind>(kind);
    d.u = r.u32();
    d.v = r.u32();
    b.deltas.push_back(d);
  }
  const std::uint32_t n_crashes = r.u32();
  b.crashes.reserve(n_crashes);
  for (std::uint32_t i = 0; i < n_crashes; ++i) b.crashes.push_back(r.u32());
  b.corrupt_flips = r.u32();
  b.corrupt_seed = r.u64();
  if (r.left() != 0) {
    throw std::runtime_error("decode_churn_batch: trailing bytes");
  }
  return b;
}

std::string to_string(const GraphDelta& d) {
  std::string s = to_string(d.kind);
  s += ' ';
  s += std::to_string(d.u);
  if (d.kind == DeltaKind::kEdgeInsert || d.kind == DeltaKind::kEdgeRemove) {
    s += '-';
    s += std::to_string(d.v);
  }
  return s;
}

DynamicGraph::DynamicGraph(NodeId universe)
    : n_(universe),
      active_count_(universe),
      active_(universe, 1),
      adj_(universe) {
  if (universe == 0) {
    throw std::invalid_argument("DynamicGraph: empty universe");
  }
}

DynamicGraph::DynamicGraph(const Graph& g) : DynamicGraph(g.num_nodes()) {
  for (const Edge& e : g.edges()) {
    insert_sorted(adj_[e.u], e.v);
    insert_sorted(adj_[e.v], e.u);
  }
  m_ = g.num_edges();
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) return false;
  const auto& a = adj_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

bool DynamicGraph::can_apply(const GraphDelta& d) const noexcept {
  const NodeId u = d.u;
  const NodeId v = d.v;
  switch (d.kind) {
    case DeltaKind::kEdgeInsert:
      return u < n_ && v < n_ && u != v && active_[u] && active_[v] &&
             !has_edge(u, v);
    case DeltaKind::kEdgeRemove:
      return u < n_ && v < n_ && u != v && has_edge(u, v);
    case DeltaKind::kNodeJoin:
      return u < n_ && v == u && !active_[u];
    case DeltaKind::kNodeLeave:
      return u < n_ && v == u && active_[u];
  }
  return false;
}

void DynamicGraph::apply(const GraphDelta& d) {
  if (!can_apply(d)) {
    throw std::invalid_argument("DynamicGraph: cannot apply " + to_string(d) +
                                " (invalid against the current state)");
  }
  switch (d.kind) {
    case DeltaKind::kEdgeInsert:
      insert_sorted(adj_[d.u], d.v);
      insert_sorted(adj_[d.v], d.u);
      ++m_;
      break;
    case DeltaKind::kEdgeRemove:
      erase_sorted(adj_[d.u], d.v);
      erase_sorted(adj_[d.v], d.u);
      --m_;
      break;
    case DeltaKind::kNodeJoin:
      active_[d.u] = 1;
      ++active_count_;
      break;
    case DeltaKind::kNodeLeave:
      // Incident edges go with the node (the adjacency invariant: inactive
      // nodes are isolated).
      for (const NodeId w : adj_[d.u]) {
        erase_sorted(adj_[w], d.u);
      }
      m_ -= adj_[d.u].size();
      adj_[d.u].clear();
      active_[d.u] = 0;
      --active_count_;
      break;
  }
}

Graph DynamicGraph::snapshot() const {
  const std::vector<Edge> es = sorted_edges();
  return Graph(n_, std::span<const Edge>(es.data(), es.size()));
}

std::vector<Edge> DynamicGraph::sorted_edges() const {
  std::vector<Edge> es;
  es.reserve(m_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId v : adj_[u]) {
      if (u < v) es.push_back(Edge{u, v});
    }
  }
  return es;  // u-major, v-minor: already sorted
}

NodeId DynamicGraph::reach_count(NodeId skip, NodeId eu, NodeId ev) const {
  NodeId start = kNone;
  for (NodeId v = 0; v < n_; ++v) {
    if (active_[v] && v != skip) {
      start = v;
      break;
    }
  }
  if (start == kNone) return 0;
  std::vector<std::uint8_t> seen(n_, 0);
  std::vector<NodeId> queue{start};
  seen[start] = 1;
  NodeId reached = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++reached;
    for (const NodeId w : adj_[v]) {
      if (seen[w] || w == skip) continue;
      if ((v == eu && w == ev) || (v == ev && w == eu)) continue;
      seen[w] = 1;
      queue.push_back(w);
    }
  }
  return reached;
}

bool DynamicGraph::connected_active() const {
  if (active_count_ == 0) return true;
  return reach_count(kNone, kNone, kNone) == active_count_;
}

bool DynamicGraph::edge_is_bridge(NodeId u, NodeId v) const {
  if (!has_edge(u, v)) {
    throw std::invalid_argument("DynamicGraph::edge_is_bridge: no such edge");
  }
  // Only meaningful relative to a currently-connected active subgraph; the
  // probe answers "does removing {u, v} reduce reachability".
  return reach_count(kNone, u, v) < active_count_;
}

bool DynamicGraph::node_is_cut(NodeId v) const {
  if (v >= n_ || !active_[v]) {
    throw std::invalid_argument("DynamicGraph::node_is_cut: inactive node");
  }
  if (active_count_ <= 2) return false;
  return reach_count(v, kNone, kNone) < active_count_ - 1;
}

namespace {

// Bridges and articulation points of the active subgraph in one iterative
// low-link DFS — O(n + m), so the plan generator can filter removal / leave
// candidates per draw without quadratic rescans.
struct ConnStructure {
  std::vector<std::uint8_t> is_cut;            // per universe node
  std::vector<std::pair<NodeId, NodeId>> bridges;  // u < v
};

ConnStructure connectivity_structure(const DynamicGraph& g) {
  const NodeId n = g.universe();
  ConnStructure cs;
  cs.is_cut.assign(n, 0);
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<NodeId> parent(n, kNone);
  std::vector<std::uint32_t> root_children(n, 0);
  std::uint32_t timer = 1;

  struct Frame {
    NodeId v;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  for (NodeId r = 0; r < n; ++r) {
    if (!g.active(r) || disc[r] != 0) continue;
    disc[r] = low[r] = timer++;
    stack.push_back({r, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NodeId v = f.v;
      const auto nbrs = g.neighbors(v);
      if (f.next_child < nbrs.size()) {
        const NodeId w = nbrs[f.next_child++];
        if (disc[w] == 0) {
          parent[w] = v;
          if (v == r) ++root_children[r];
          disc[w] = low[w] = timer++;
          stack.push_back({w, 0});
        } else if (w != parent[v]) {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        const NodeId p = parent[v];
        if (p != kNone) {
          low[p] = std::min(low[p], low[v]);
          if (low[v] > disc[p]) {
            cs.bridges.emplace_back(std::min(p, v), std::max(p, v));
          }
          if (p != r && low[v] >= disc[p]) cs.is_cut[p] = 1;
        }
      }
    }
    if (root_children[r] >= 2) cs.is_cut[r] = 1;
  }
  std::sort(cs.bridges.begin(), cs.bridges.end());
  return cs;
}

}  // namespace

DeltaPlan::DeltaPlan(const DeltaPlanConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.max_batch == 0) {
    throw std::invalid_argument("DeltaPlanConfig: max_batch must be >= 1");
  }
  const auto check_w = [](double w, const char* what) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument(std::string("DeltaPlanConfig: ") + what +
                                  " must be >= 0");
    }
  };
  check_w(config.w_insert, "w_insert");
  check_w(config.w_remove, "w_remove");
  check_w(config.w_join, "w_join");
  check_w(config.w_leave, "w_leave");
}

bool DeltaPlan::draw_delta(DynamicGraph& work, std::vector<GraphDelta>& out) {
  const NodeId active = work.num_active();
  // Cheap feasibility screen; realization may still come up empty (e.g.
  // every edge is a bridge), in which case the kind's weight is zeroed and
  // the draw repeats — all from the same deterministic stream.
  double w[4];
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(active) * (active > 0 ? active - 1 : 0) / 2;
  w[0] = (active >= 2 && work.num_edges() < pairs) ? config_.w_insert : 0.0;
  w[1] = work.num_edges() > 0 ? config_.w_remove : 0.0;
  w[2] = (work.universe() > active) ? config_.w_join : 0.0;
  w[3] = (active > config_.min_active) ? config_.w_leave : 0.0;

  for (int attempt = 0; attempt < 4; ++attempt) {
    const double total = w[0] + w[1] + w[2] + w[3];
    if (total <= 0.0) return false;
    double pick = rng_.uniform01() * total;
    int kind = 0;
    for (; kind < 3; ++kind) {
      if (pick < w[kind]) break;
      pick -= w[kind];
    }

    switch (kind) {
      case 0: {  // insert: uniform over non-adjacent active pairs
        std::vector<GraphDelta> cands;
        for (NodeId u = 0; u < work.universe(); ++u) {
          if (!work.active(u)) continue;
          for (NodeId v = u + 1; v < work.universe(); ++v) {
            if (!work.active(v) || work.has_edge(u, v)) continue;
            cands.push_back({DeltaKind::kEdgeInsert, u, v});
          }
        }
        if (cands.empty()) break;
        const GraphDelta d = cands[rng_.below(cands.size())];
        work.apply(d);
        out.push_back(d);
        return true;
      }
      case 1: {  // remove: uniform over (non-bridge, when keeping connected)
        std::vector<Edge> cands = work.sorted_edges();
        if (config_.keep_connected && !cands.empty()) {
          const ConnStructure cs = connectivity_structure(work);
          std::erase_if(cands, [&](const Edge& e) {
            return std::binary_search(cs.bridges.begin(), cs.bridges.end(),
                                      std::make_pair(e.u, e.v));
          });
        }
        if (cands.empty()) break;
        const Edge e = cands[rng_.below(cands.size())];
        const GraphDelta d{DeltaKind::kEdgeRemove, e.u, e.v};
        work.apply(d);
        out.push_back(d);
        return true;
      }
      case 2: {  // join: activate an inactive slot, attach to random actives
        std::vector<NodeId> inactive;
        for (NodeId v = 0; v < work.universe(); ++v) {
          if (!work.active(v)) inactive.push_back(v);
        }
        if (inactive.empty()) break;
        const NodeId joiner = inactive[rng_.below(inactive.size())];
        std::vector<NodeId> anchors;
        for (NodeId v = 0; v < work.universe(); ++v) {
          if (work.active(v)) anchors.push_back(v);
        }
        const std::uint32_t want = std::min<std::uint32_t>(
            std::max<std::uint32_t>(config_.join_attachments, 1),
            static_cast<std::uint32_t>(anchors.size()));
        const GraphDelta jd{DeltaKind::kNodeJoin, joiner, joiner};
        work.apply(jd);
        out.push_back(jd);
        for (std::uint32_t k = 0; k < want; ++k) {
          const std::size_t i = rng_.below(anchors.size());
          const GraphDelta ed{DeltaKind::kEdgeInsert, joiner, anchors[i]};
          anchors.erase(anchors.begin() + static_cast<std::ptrdiff_t>(i));
          work.apply(ed);
          out.push_back(ed);
        }
        return true;
      }
      case 3: {  // leave: uniform over droppable (non-cut) active nodes
        if (work.num_active() <= config_.min_active) break;
        std::vector<NodeId> cands;
        const ConnStructure cs = config_.keep_connected
                                     ? connectivity_structure(work)
                                     : ConnStructure{};
        for (NodeId v = 0; v < work.universe(); ++v) {
          if (!work.active(v)) continue;
          if (config_.keep_connected && cs.is_cut[v]) continue;
          cands.push_back(v);
        }
        if (cands.empty()) break;
        const NodeId v = cands[rng_.below(cands.size())];
        const GraphDelta d{DeltaKind::kNodeLeave, v, v};
        work.apply(d);
        out.push_back(d);
        return true;
      }
    }
    w[kind] = 0.0;  // realization came up empty; redraw among the rest
  }
  return false;
}

ChurnBatch DeltaPlan::next(const DynamicGraph& g) {
  ChurnBatch batch;
  DynamicGraph work = g;
  const std::uint64_t count = rng_.between(1, config_.max_batch);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!draw_delta(work, batch.deltas)) break;
  }
  if (rng_.chance(config_.crash_prob)) {
    std::vector<NodeId> cands;
    if (work.num_active() > config_.min_active) {
      const ConnStructure cs = config_.keep_connected
                                   ? connectivity_structure(work)
                                   : ConnStructure{};
      for (NodeId v = 0; v < work.universe(); ++v) {
        if (!work.active(v)) continue;
        if (config_.keep_connected && cs.is_cut[v]) continue;
        cands.push_back(v);
      }
    }
    if (!cands.empty()) {
      const NodeId v = cands[rng_.below(cands.size())];
      work.apply({DeltaKind::kNodeLeave, v, v});
      batch.crashes.push_back(v);
    }
  }
  if (rng_.chance(config_.corrupt_prob)) {
    batch.corrupt_flips = config_.corrupt_entries;
    batch.corrupt_seed = rng_();
  }
  ++batches_;
  return batch;
}

}  // namespace dapsp
