// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the topology substrate under both the sequential reference
// algorithms (src/seq) and the CONGEST simulator (src/congest). Nodes are
// identified by dense ids 0..n-1; in the paper's terms, node 0 plays the role
// of "the node with ID 1" (the distinguished leader).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dapsp {

using NodeId = std::uint32_t;

// Sentinel "infinite" distance (graph is unweighted; all finite distances
// are < n <= 2^31).
inline constexpr std::uint32_t kInfDist = 0xffffffffu;

// Saturating distance addition: infinity absorbs, and a finite sum that
// would reach or wrap past the sentinel clamps to kInfDist instead of
// wrapping to a tiny bogus value. Every d(u,s) + d(s,v) style combination
// (2-hop label estimates, query-tier triangle bounds) must go through this.
inline constexpr std::uint32_t sat_add_dist(std::uint32_t a,
                                            std::uint32_t b) noexcept {
  if (a == kInfDist || b == kInfDist) return kInfDist;
  const std::uint64_t sum = std::uint64_t{a} + b;
  return sum >= kInfDist ? kInfDist : static_cast<std::uint32_t>(sum);
}

struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  // Empty graph (0 nodes); useful as a placeholder before assignment.
  Graph() : offsets_(1, 0) {}

  // Builds a graph over n nodes from an edge list. Self-loops are rejected;
  // duplicate edges (in either orientation) are collapsed.
  Graph(NodeId n, std::span<const Edge> edges);
  Graph(NodeId n, std::initializer_list<Edge> edges)
      : Graph(n, std::span<const Edge>(edges.begin(), edges.size())) {}

  NodeId num_nodes() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return edge_list_.size(); }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Neighbors of v, sorted ascending by id.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  bool has_edge(NodeId u, NodeId v) const;

  // Index of neighbor `v` in `neighbors(u)`, if adjacent.
  std::optional<std::uint32_t> neighbor_index(NodeId u, NodeId v) const;

  // Unique undirected edges, each listed once with u < v.
  std::span<const Edge> edges() const noexcept { return edge_list_; }

  std::uint32_t max_degree() const noexcept { return max_degree_; }

  // Returns a graph isomorphic to *this with node ids permuted by a random
  // permutation drawn from `seed`. Used to ensure algorithms do not rely on
  // accidental id structure of the generators. The permutation maps old id i
  // to new id perm[i]; `perm_out` (if non-null) receives it.
  Graph relabeled(std::uint64_t seed, std::vector<NodeId>* perm_out = nullptr) const;

  // Human-readable one-line summary, e.g. "Graph(n=16, m=24)".
  std::string summary() const;

 private:
  NodeId n_ = 0;
  std::vector<std::size_t> offsets_;   // n_+1 entries
  std::vector<NodeId> adjacency_;      // 2m entries, sorted per node
  std::vector<Edge> edge_list_;        // m entries, u < v, sorted
  std::uint32_t max_degree_ = 0;
};

}  // namespace dapsp
