// Lower-bound instance families (Theorems 2, 6 and 8 of the paper).
//
// The paper's lower bounds reduce two-party set disjointness to distributed
// diameter computation: Alice holds a k x k bit matrix S_A, Bob holds S_B,
// and a graph gadget is built whose diameter depends on whether the 1-sets
// of S_A and S_B intersect. All Theta(k^2) input bits must cross a cut of
// only Theta(k) edges, so any correct algorithm needs Omega(k / B) rounds;
// with n = Theta(k) nodes this is Omega(n / B).
//
// We implement two parametric gadgets:
//
// 1. two_party_gadget(L, S_A, S_B) - "gap-1" gadget.
//    Nodes: row nodes a_0..a_{k-1}, b_0..b_{k-1} (Alice) and a'_i, b'_i
//    (Bob), each group a clique; hubs c_A (adjacent to every a_i, b_i) and
//    c_B (adjacent to every a'_i, b'_i); disjoint paths a_i ~ a'_i and
//    b_i ~ b'_i of length L; a hub path c_A ~ c_B of length L+1.
//    Input: edge (a_i, b_j) iff S_A[i][j] == 0; Bob symmetric.
//    Diameter (verified in tests against the sequential oracle):
//        L+1  iff the 1-sets are disjoint,
//        L+2  otherwise (the hub detour bounds every pair by L+2).
//    With L == 1 this is the Theorem 6 family (diameter 2 vs 3); its cliques
//    make girth 3 for k >= 3, giving the Theorem 8 family; Lemma 11 uses it
//    for (x,3/2-eps)-APSP hardness.
//
// 2. wide_gap_gadget(L) - "gap-2" gadget for Theorem 2 benches (L >= 3).
//    Same skeleton, but every hub spoke (c_A ~ a_i, c_A ~ b_i, c_B ~ a'_i,
//    c_B ~ b'_i) is a path of length 2 and the hub path has length L-1.
//    Diameter (oracle-verified in tests): with d := L+2,
//        d    for disjoint inputs   (the far pairs are hub-spoke internals),
//        d+2  for all-ones inputs   (the only inputs that block every 2-hop
//                                    in-side detour).
//    This is exactly Theorem 2's "diameter d or d+2" promise family. Note
//    the all-ones "far" instance carries no disjointness entropy, so the
//    information-theoretic cut audit (certified_min_rounds) is only
//    meaningful for the gap-1 family; benches use it there only.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dapsp::hard {

// Dense k x k bit matrix.
class BitMatrix {
 public:
  explicit BitMatrix(std::uint32_t k) : k_(k), bits_(std::size_t{k} * k, 0) {}

  std::uint32_t k() const noexcept { return k_; }
  bool at(std::uint32_t i, std::uint32_t j) const {
    return bits_[std::size_t{i} * k_ + j] != 0;
  }
  void set(std::uint32_t i, std::uint32_t j, bool value = true) {
    bits_[std::size_t{i} * k_ + j] = value ? 1 : 0;
  }
  void fill(bool value);
  // Number of 1-entries.
  std::size_t popcount() const;
  // True iff this and other share a common 1-entry.
  bool intersects(const BitMatrix& other) const;

 private:
  std::uint32_t k_;
  std::vector<std::uint8_t> bits_;
};

// A built gadget instance plus the bookkeeping benches need.
struct TwoPartyGadget {
  Graph graph;
  std::uint32_t k = 0;
  std::uint32_t path_len = 0;      // L
  std::uint32_t expected_diameter = 0;
  std::size_t cut_edge_count = 0;  // edges crossing the Alice/Bob cut

  NodeId a(std::uint32_t i) const { return i; }
  NodeId b(std::uint32_t i) const { return k + i; }
  NodeId a_prime(std::uint32_t i) const { return 2 * k + i; }
  NodeId b_prime(std::uint32_t i) const { return 3 * k + i; }
  NodeId c_alice() const { return 4 * k; }
  NodeId c_bob() const { return 4 * k + 1; }

  // Bits of two-party input encoded in the instance.
  std::uint64_t input_bits() const { return std::uint64_t{k} * k; }
  // Information-theoretic certified minimum number of rounds for any
  // protocol deciding set disjointness on this family with per-edge
  // bandwidth B bits: ceil(k^2 / (cut * B)).
  std::uint64_t certified_min_rounds(std::uint32_t bandwidth_bits) const;
};

// Total node count of the gap-1 gadget for given (k, L).
NodeId gadget_num_nodes(std::uint32_t k, std::uint32_t path_len);
// Total node count of the wide-gap gadget for given (k, L).
NodeId wide_gap_num_nodes(std::uint32_t k, std::uint32_t path_len);

// Gap-1 gadget (diameter L+1 vs L+2). path_len >= 1, k >= 1.
TwoPartyGadget two_party_gadget(std::uint32_t path_len,
                                const BitMatrix& s_alice,
                                const BitMatrix& s_bob);

// Wide-gap gadget (diameter L+2 for disjoint inputs, L+4 for all-ones).
// path_len >= 3.
TwoPartyGadget wide_gap_gadget(std::uint32_t path_len,
                               const BitMatrix& s_alice,
                               const BitMatrix& s_bob);

enum class GadgetCase {
  kDisjoint,      // diameter L+1 (both gadgets)
  kIntersecting,  // gap-1 gadget: diameter L+2
};

// Random gap-1 instance of the requested case.
TwoPartyGadget random_gadget(std::uint32_t k, std::uint32_t path_len,
                             GadgetCase which, std::uint64_t seed);

// Theorem 6 family: diameter 2 (want_diameter3 == false) or 3.
TwoPartyGadget diameter_2_vs_3(std::uint32_t k, bool want_diameter3,
                               std::uint64_t seed);

// Theorem 2 family: diameter d = path_len+2 (want_large == false) or d+2.
// path_len >= 3.
TwoPartyGadget diameter_wide_gap(std::uint32_t k, std::uint32_t path_len,
                                 bool want_large, std::uint64_t seed);

// Largest k such that gadget_num_nodes(k, path_len) <= max_nodes (0 if none).
std::uint32_t max_k_for_nodes(NodeId max_nodes, std::uint32_t path_len);

}  // namespace dapsp::hard
