// Graph generators used by tests, benches and examples.
//
// Each generator is deterministic given its parameters (and seed, where
// randomized). Generators whose diameter/girth is analytically known document
// it, so tests can assert exact values without the oracle.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace dapsp::gen {

// Path v0 - v1 - ... - v_{n-1}. Diameter n-1. Requires n >= 1.
Graph path(NodeId n);

// Cycle of length n. Diameter floor(n/2), girth n. Requires n >= 3.
Graph cycle(NodeId n);

// Complete graph K_n. Diameter 1 (n >= 2), girth 3 (n >= 3).
Graph complete(NodeId n);

// Star: node 0 is the hub, nodes 1..n-1 are leaves. Diameter 2 (n >= 3).
Graph star(NodeId n);

// Complete bipartite K_{a,b}: nodes 0..a-1 vs a..a+b-1.
// Diameter 2 (a,b >= 2), girth 4 (a,b >= 2).
Graph complete_bipartite(NodeId a, NodeId b);

// Balanced tree with given branching factor, exactly n nodes (the last level
// may be partial). arity >= 1; arity == 1 yields a path.
Graph balanced_tree(NodeId n, std::uint32_t arity);

// rows x cols grid. Diameter (rows-1)+(cols-1); girth 4 (rows,cols >= 2).
Graph grid(NodeId rows, NodeId cols);

// rows x cols torus (wrap-around grid). Requires rows,cols >= 3.
Graph torus(NodeId rows, NodeId cols);

// Hypercube of dimension dim: 2^dim nodes, diameter dim, girth 4 (dim >= 2).
Graph hypercube(std::uint32_t dim);

// Erdos-Renyi G(n, p). May be disconnected.
Graph erdos_renyi(NodeId n, double p, std::uint64_t seed);

// Connected random graph: uniform random spanning tree (random attachment)
// plus `extra_edges` additional distinct random edges.
Graph random_connected(NodeId n, std::size_t extra_edges, std::uint64_t seed);

// Two cliques of size k joined by a path with `bridge_len` edges
// (bridge_len == 1 means a single edge between the cliques).
// Diameter bridge_len + 2 for k >= 3.
Graph barbell(NodeId k, NodeId bridge_len);

// Clique of size k with a path ("tail") of tail_len edges attached.
Graph lollipop(NodeId k, NodeId tail_len);

// Caterpillar: spine path of `spine` nodes, `legs` leaves per spine node.
Graph caterpillar(NodeId spine, NodeId legs);

// `num_cliques` cliques of size `clique_size` arranged on a path; consecutive
// cliques joined by one edge between representatives. Lets benches control
// diameter (~2*num_cliques) and n (~num_cliques*clique_size) independently.
// Diameter: for num_cliques >= 2 it is 3*num_cliques - 2 - (clique_size==1)...
// exact value depends on parameters; computed by tests via the oracle.
Graph path_of_cliques(NodeId num_cliques, NodeId clique_size);

// Cycle of length n with `chords` random chords added. Girth shrinks as
// chords are added; connected, diameter <= n/2.
Graph cycle_with_chords(NodeId n, std::size_t chords, std::uint64_t seed);

// Balanced binary tree with one extra cycle of length exactly g spliced into
// it: girth exactly g, diameter O(log n + g). Requires g >= 3, n >= g.
Graph tree_with_cycle(NodeId n, NodeId g, std::uint64_t seed);

// The Petersen graph: n=10, m=15, diameter 2, girth 5, 3-regular.
Graph petersen();

// Family with diameter exactly 2 where every node has degree >= n/2
// (complement of a perfect matching). Requires even n >= 6.
Graph dense_diameter2(NodeId n);

// Family with diameter exactly 4: three hubs on a path, leaves on the two end
// hubs. `leaves` per end hub; n = 3 + 2*leaves.
Graph diameter4(NodeId leaves);

}  // namespace dapsp::gen
