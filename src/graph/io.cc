#include "graph/io.h"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dapsp::io {
namespace {

// Strips comments and returns the next non-empty line's token stream.
bool next_content_line(std::istream& in, std::istringstream& tokens) {
  std::string line;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream probe(line);
    std::string word;
    if (probe >> word) {
      tokens = std::istringstream(line);
      return true;
    }
  }
  return false;
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::istringstream tokens;
  if (!next_content_line(in, tokens)) {
    throw std::invalid_argument("edge list: missing header");
  }
  std::uint64_t n = 0, m = 0;
  if (!(tokens >> n >> m)) {
    throw std::invalid_argument("edge list: bad header");
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    if (!next_content_line(in, tokens)) {
      throw std::invalid_argument("edge list: truncated");
    }
    std::uint64_t u = 0, v = 0;
    if (!(tokens >> u >> v)) {
      throw std::invalid_argument("edge list: bad edge line");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return Graph(static_cast<NodeId>(n), edges);
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

std::string to_dot(const Graph& g) {
  std::ostringstream out;
  out << "graph G {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) out << "  " << v << ";\n";
  for (const Edge& e : g.edges()) out << "  " << e.u << " -- " << e.v << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace dapsp::io
