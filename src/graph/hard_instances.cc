#include "graph/hard_instances.h"

#include <algorithm>
#include <stdexcept>

#include "util/bits.h"
#include "util/rng.h"

namespace dapsp::hard {

void BitMatrix::fill(bool value) {
  std::fill(bits_.begin(), bits_.end(), value ? std::uint8_t{1} : std::uint8_t{0});
}

std::size_t BitMatrix::popcount() const {
  std::size_t c = 0;
  for (const std::uint8_t b : bits_) c += b;
  return c;
}

bool BitMatrix::intersects(const BitMatrix& other) const {
  if (other.k_ != k_) throw std::invalid_argument("BitMatrix size mismatch");
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != 0 && other.bits_[i] != 0) return true;
  }
  return false;
}

std::uint64_t TwoPartyGadget::certified_min_rounds(
    std::uint32_t bandwidth_bits) const {
  return ceil_div(input_bits(), cut_edge_count * bandwidth_bits);
}

NodeId gadget_num_nodes(std::uint32_t k, std::uint32_t path_len) {
  // 4k row nodes + 2 hubs + internals: 2k matching paths with (L-1)
  // internals each, hub path of length L+1 with L internals.
  return 4 * k + 2 + 2 * k * (path_len - 1) + path_len;
}

NodeId wide_gap_num_nodes(std::uint32_t k, std::uint32_t path_len) {
  // As above, but 4k spokes of length 2 contribute one internal node each
  // and the hub path has length L-1 (L-2 internals).
  return 4 * k + 2 + 2 * k * (path_len - 1) + 4 * k + (path_len - 2);
}

namespace {

struct GadgetShape {
  std::uint32_t spoke_len;     // length of each hub spoke (1 or 2)
  std::uint32_t hub_path_len;  // length of the c_A ~ c_B path
};

TwoPartyGadget build_gadget(std::uint32_t path_len, const BitMatrix& s_alice,
                            const BitMatrix& s_bob, const GadgetShape& shape,
                            NodeId n) {
  const std::uint32_t k = s_alice.k();
  if (s_bob.k() != k) throw std::invalid_argument("gadget: input size mismatch");
  if (k < 1) throw std::invalid_argument("gadget: k >= 1");
  const std::uint32_t L = path_len;

  TwoPartyGadget g;
  g.k = k;
  g.path_len = L;

  std::vector<Edge> e;
  NodeId next_internal = 4 * k + 2;

  // Connects u ~ v by a path with `len` edges, allocating len-1 fresh
  // internal nodes.
  auto add_path = [&](NodeId u, NodeId v, std::uint32_t len) {
    NodeId prev = u;
    for (std::uint32_t t = 0; t + 1 < len; ++t) {
      e.push_back({prev, next_internal});
      prev = next_internal++;
    }
    e.push_back({prev, v});
  };

  // Cliques on each of the four row groups.
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = i + 1; j < k; ++j) {
      e.push_back({g.a(i), g.a(j)});
      e.push_back({g.b(i), g.b(j)});
      e.push_back({g.a_prime(i), g.a_prime(j)});
      e.push_back({g.b_prime(i), g.b_prime(j)});
    }
  }
  // Hub spokes.
  for (std::uint32_t i = 0; i < k; ++i) {
    add_path(g.c_alice(), g.a(i), shape.spoke_len);
    add_path(g.c_alice(), g.b(i), shape.spoke_len);
    add_path(g.c_bob(), g.a_prime(i), shape.spoke_len);
    add_path(g.c_bob(), g.b_prime(i), shape.spoke_len);
  }
  // Cross paths (the communication cut: one crossing edge per path).
  for (std::uint32_t i = 0; i < k; ++i) {
    add_path(g.a(i), g.a_prime(i), L);
    add_path(g.b(i), g.b_prime(i), L);
  }
  add_path(g.c_alice(), g.c_bob(), shape.hub_path_len);
  g.cut_edge_count = std::size_t{2} * k + 1;

  // Inputs: edge iff the bit is 0.
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) {
      if (!s_alice.at(i, j)) e.push_back({g.a(i), g.b(j)});
      if (!s_bob.at(i, j)) e.push_back({g.a_prime(i), g.b_prime(j)});
    }
  }

  if (next_internal != n) throw std::logic_error("gadget: node count mismatch");
  g.graph = Graph(n, e);
  return g;
}

}  // namespace

TwoPartyGadget two_party_gadget(std::uint32_t path_len,
                                const BitMatrix& s_alice,
                                const BitMatrix& s_bob) {
  if (path_len < 1) throw std::invalid_argument("gadget: path_len >= 1");
  TwoPartyGadget g = build_gadget(
      path_len, s_alice, s_bob,
      GadgetShape{.spoke_len = 1, .hub_path_len = path_len + 1},
      gadget_num_nodes(s_alice.k(), path_len));
  g.expected_diameter =
      s_alice.intersects(s_bob) ? path_len + 2 : path_len + 1;
  return g;
}

TwoPartyGadget wide_gap_gadget(std::uint32_t path_len,
                               const BitMatrix& s_alice,
                               const BitMatrix& s_bob) {
  if (path_len < 3) throw std::invalid_argument("wide_gap_gadget: path_len >= 3");
  const std::uint32_t k = s_alice.k();
  TwoPartyGadget g = build_gadget(
      path_len, s_alice, s_bob,
      GadgetShape{.spoke_len = 2, .hub_path_len = path_len - 1},
      wide_gap_num_nodes(k, path_len));
  const bool all_ones =
      s_alice.popcount() == std::size_t{k} * k &&
      s_bob.popcount() == std::size_t{k} * k;
  if (all_ones) {
    g.expected_diameter = path_len + 4;
  } else if (!s_alice.intersects(s_bob)) {
    g.expected_diameter = path_len + 2;
  } else {
    g.expected_diameter = 0;  // unsupported input regime; caller beware
  }
  return g;
}

TwoPartyGadget random_gadget(std::uint32_t k, std::uint32_t path_len,
                             GadgetCase which, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix sa(k), sb(k);
  // Random background: each entry goes to S_A only, S_B only, or neither,
  // keeping the 1-sets disjoint.
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) {
      switch (rng.below(3)) {
        case 0: sa.set(i, j); break;
        case 1: sb.set(i, j); break;
        default: break;
      }
    }
  }
  if (which == GadgetCase::kIntersecting) {
    // Plant a single witness entry present in both matrices.
    const auto wi = static_cast<std::uint32_t>(rng.below(k));
    const auto wj = static_cast<std::uint32_t>(rng.below(k));
    sa.set(wi, wj);
    sb.set(wi, wj);
  }
  return two_party_gadget(path_len, sa, sb);
}

TwoPartyGadget diameter_2_vs_3(std::uint32_t k, bool want_diameter3,
                               std::uint64_t seed) {
  return random_gadget(
      k, 1,
      want_diameter3 ? GadgetCase::kIntersecting : GadgetCase::kDisjoint,
      seed);
}

TwoPartyGadget diameter_wide_gap(std::uint32_t k, std::uint32_t path_len,
                                 bool want_large, std::uint64_t seed) {
  if (want_large) {
    BitMatrix sa(k), sb(k);
    sa.fill(true);
    sb.fill(true);
    return wide_gap_gadget(path_len, sa, sb);
  }
  Rng rng(seed);
  BitMatrix sa(k), sb(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) {
      switch (rng.below(3)) {
        case 0: sa.set(i, j); break;
        case 1: sb.set(i, j); break;
        default: break;
      }
    }
  }
  return wide_gap_gadget(path_len, sa, sb);
}

std::uint32_t max_k_for_nodes(NodeId max_nodes, std::uint32_t path_len) {
  std::uint32_t k = 0;
  while (gadget_num_nodes(k + 1, path_len) <= max_nodes) ++k;
  return k;
}

}  // namespace dapsp::hard
