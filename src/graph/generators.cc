#include "graph/generators.h"

#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace dapsp::gen {
namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

Graph path(NodeId n) {
  require(n >= 1, "path: n >= 1");
  std::vector<Edge> e;
  for (NodeId i = 0; i + 1 < n; ++i) e.push_back({i, i + 1});
  return Graph(n, e);
}

Graph cycle(NodeId n) {
  require(n >= 3, "cycle: n >= 3");
  std::vector<Edge> e;
  for (NodeId i = 0; i + 1 < n; ++i) e.push_back({i, i + 1});
  e.push_back({n - 1, 0});
  return Graph(n, e);
}

Graph complete(NodeId n) {
  require(n >= 1, "complete: n >= 1");
  std::vector<Edge> e;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) e.push_back({i, j});
  return Graph(n, e);
}

Graph star(NodeId n) {
  require(n >= 2, "star: n >= 2");
  std::vector<Edge> e;
  for (NodeId i = 1; i < n; ++i) e.push_back({0, i});
  return Graph(n, e);
}

Graph complete_bipartite(NodeId a, NodeId b) {
  require(a >= 1 && b >= 1, "complete_bipartite: a,b >= 1");
  std::vector<Edge> e;
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b; ++j) e.push_back({i, a + j});
  return Graph(a + b, e);
}

Graph balanced_tree(NodeId n, std::uint32_t arity) {
  require(n >= 1, "balanced_tree: n >= 1");
  require(arity >= 1, "balanced_tree: arity >= 1");
  std::vector<Edge> e;
  for (NodeId i = 1; i < n; ++i) e.push_back({(i - 1) / arity, i});
  return Graph(n, e);
}

Graph grid(NodeId rows, NodeId cols) {
  require(rows >= 1 && cols >= 1, "grid: rows,cols >= 1");
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> e;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) e.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) e.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Graph(rows * cols, e);
}

Graph torus(NodeId rows, NodeId cols) {
  require(rows >= 3 && cols >= 3, "torus: rows,cols >= 3");
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> e;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      e.push_back({id(r, c), id(r, (c + 1) % cols)});
      e.push_back({id(r, c), id((r + 1) % rows, c)});
    }
  }
  return Graph(rows * cols, e);
}

Graph hypercube(std::uint32_t dim) {
  require(dim >= 1 && dim < 25, "hypercube: 1 <= dim < 25");
  const NodeId n = NodeId{1} << dim;
  std::vector<Edge> e;
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t d = 0; d < dim; ++d) {
      const NodeId u = v ^ (NodeId{1} << d);
      if (v < u) e.push_back({v, u});
    }
  }
  return Graph(n, e);
}

Graph erdos_renyi(NodeId n, double p, std::uint64_t seed) {
  require(n >= 1, "erdos_renyi: n >= 1");
  Rng rng(seed);
  std::vector<Edge> e;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.chance(p)) e.push_back({i, j});
  return Graph(n, e);
}

Graph random_connected(NodeId n, std::size_t extra_edges, std::uint64_t seed) {
  require(n >= 1, "random_connected: n >= 1");
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> used;
  std::vector<Edge> e;
  auto add = [&](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    if (u == v) return false;
    if (!used.insert({u, v}).second) return false;
    e.push_back({u, v});
    return true;
  };
  for (NodeId i = 1; i < n; ++i) {
    add(static_cast<NodeId>(rng.below(i)), i);  // random attachment tree
  }
  const std::size_t max_extra =
      static_cast<std::size_t>(n) * (n - 1) / 2 - e.size();
  extra_edges = std::min(extra_edges, max_extra);
  std::size_t added = 0;
  while (added < extra_edges) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (add(u, v)) ++added;
  }
  return Graph(n, e);
}

Graph barbell(NodeId k, NodeId bridge_len) {
  require(k >= 2 && bridge_len >= 1, "barbell: k >= 2, bridge_len >= 1");
  // Nodes: 0..k-1 left clique, k..2k-1 right clique,
  // 2k..2k+bridge_len-2 internal bridge nodes.
  const NodeId n = 2 * k + bridge_len - 1;
  std::vector<Edge> e;
  for (NodeId i = 0; i < k; ++i)
    for (NodeId j = i + 1; j < k; ++j) {
      e.push_back({i, j});
      e.push_back({k + i, k + j});
    }
  NodeId prev = 0;  // representative of left clique
  for (NodeId b = 0; b + 1 < bridge_len; ++b) {
    e.push_back({prev, 2 * k + b});
    prev = 2 * k + b;
  }
  e.push_back({prev, k});  // representative of right clique
  return Graph(n, e);
}

Graph lollipop(NodeId k, NodeId tail_len) {
  require(k >= 2 && tail_len >= 1, "lollipop: k >= 2, tail_len >= 1");
  const NodeId n = k + tail_len;
  std::vector<Edge> e;
  for (NodeId i = 0; i < k; ++i)
    for (NodeId j = i + 1; j < k; ++j) e.push_back({i, j});
  NodeId prev = 0;
  for (NodeId t = 0; t < tail_len; ++t) {
    e.push_back({prev, k + t});
    prev = k + t;
  }
  return Graph(n, e);
}

Graph caterpillar(NodeId spine, NodeId legs) {
  require(spine >= 1, "caterpillar: spine >= 1");
  const NodeId n = spine * (1 + legs);
  std::vector<Edge> e;
  for (NodeId s = 0; s + 1 < spine; ++s) e.push_back({s, s + 1});
  for (NodeId s = 0; s < spine; ++s)
    for (NodeId l = 0; l < legs; ++l)
      e.push_back({s, spine + s * legs + l});
  return Graph(n, e);
}

Graph path_of_cliques(NodeId num_cliques, NodeId clique_size) {
  require(num_cliques >= 1 && clique_size >= 1,
          "path_of_cliques: num_cliques, clique_size >= 1");
  const NodeId n = num_cliques * clique_size;
  std::vector<Edge> e;
  for (NodeId c = 0; c < num_cliques; ++c) {
    const NodeId base = c * clique_size;
    for (NodeId i = 0; i < clique_size; ++i)
      for (NodeId j = i + 1; j < clique_size; ++j)
        e.push_back({base + i, base + j});
    if (c + 1 < num_cliques) {
      // Join the last node of this clique to the first node of the next.
      e.push_back({base + clique_size - 1, base + clique_size});
    }
  }
  return Graph(n, e);
}

Graph cycle_with_chords(NodeId n, std::size_t chords, std::uint64_t seed) {
  require(n >= 3, "cycle_with_chords: n >= 3");
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> used;
  std::vector<Edge> e;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId j = (i + 1) % n;
    used.insert({std::min(i, j), std::max(i, j)});
    e.push_back({i, j});
  }
  const std::size_t max_extra =
      static_cast<std::size_t>(n) * (n - 1) / 2 - n;
  chords = std::min(chords, max_extra);
  std::size_t added = 0;
  while (added < chords) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!used.insert({u, v}).second) continue;
    e.push_back({u, v});
    ++added;
  }
  return Graph(n, e);
}

Graph tree_with_cycle(NodeId n, NodeId g, std::uint64_t seed) {
  require(g >= 3 && n >= g, "tree_with_cycle: g >= 3, n >= g");
  // Nodes 0..g-1 form the cycle; the remaining n-g nodes hang off the cycle
  // as a random binary-ish tree attached to cycle node 0.
  (void)seed;
  std::vector<Edge> e;
  for (NodeId i = 0; i < g; ++i) e.push_back({i, (i + 1) % g});
  // Balanced binary tree rooted at node 0 over nodes {0} u {g..n-1}.
  // Child i (0-based among tree nodes) has parent (i-1)/2 within the tree
  // numbering; tree node 0 is cycle node 0.
  const NodeId tree_nodes = n - g + 1;
  auto tree_id = [g](NodeId t) { return t == 0 ? NodeId{0} : g + t - 1; };
  for (NodeId t = 1; t < tree_nodes; ++t) {
    e.push_back({tree_id((t - 1) / 2), tree_id(t)});
  }
  return Graph(n, e);
}

Graph petersen() {
  std::vector<Edge> e;
  for (NodeId i = 0; i < 5; ++i) {
    e.push_back({i, (i + 1) % 5});                      // outer 5-cycle
    e.push_back({i, i + 5});                            // spokes
    e.push_back({i + 5, ((i + 2) % 5) + 5});            // inner pentagram
  }
  return Graph(10, e);
}

Graph dense_diameter2(NodeId n) {
  require(n >= 6 && n % 2 == 0, "dense_diameter2: even n >= 6");
  // Complement of a perfect matching {2i, 2i+1}: every pair is adjacent
  // except matched pairs, which share all other nodes as common neighbors.
  std::vector<Edge> e;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const bool matched = (i % 2 == 0) && (j == i + 1);
      if (!matched) e.push_back({i, j});
    }
  }
  return Graph(n, e);
}

Graph diameter4(NodeId leaves) {
  require(leaves >= 1, "diameter4: leaves >= 1");
  // Hubs 0 - 1 - 2; leaves on hub 0 and hub 2. A leaf of hub 0 and a leaf of
  // hub 2 are at distance 4; no pair is further.
  const NodeId n = 3 + 2 * leaves;
  std::vector<Edge> e{{0, 1}, {1, 2}};
  for (NodeId l = 0; l < leaves; ++l) {
    e.push_back({0, static_cast<NodeId>(3 + l)});
    e.push_back({2, static_cast<NodeId>(3 + leaves + l)});
  }
  return Graph(n, e);
}

}  // namespace dapsp::gen
