// Graph churn: mutable graph views, deltas, and seeded mutation plans.
//
// The paper's Algorithm 1 computes APSP for one static graph; ROADMAP item 2
// asks for a long-running service where the topology mutates under it. This
// module supplies the churn substrate:
//
//   * GraphDelta — one atomic mutation (edge insert/remove, node join/leave)
//     over a fixed node *universe* 0..n-1. Nodes never change identity; a
//     "joined" node is a universe slot switched active, a "left" node is a
//     slot switched inactive with its incident edges implicitly removed.
//     Fixing the universe keeps every downstream table (DistanceMatrix,
//     next_hop, survived masks) index-stable across arbitrarily long runs —
//     the same convention the crash machinery already uses for dead nodes.
//
//   * DynamicGraph — an adjacency-list graph over the universe supporting
//     apply(delta) with full validation, O(1) activity queries, CSR
//     snapshot() for the engine, and the connectivity probes (bridge / cut
//     vertex) the plan generator uses to keep benign streams connected.
//
//   * DeltaPlan — a seeded generator of ChurnBatch mutation schedules:
//     deltas drawn by weighted kind, optionally constrained to preserve
//     active-subgraph connectivity and a minimum active population, plus
//     interleaved *fault* events (crash-stops and stored-entry corruption)
//     so service soaks exercise churn and faults together. All randomness is
//     one SplitMix64 stream; the full generator state is (config, rng state,
//     batch counter), which is what makes plans checkpointable — restore the
//     two scalars and the stream continues bit-identically (util/rng.h
//     Rng::state()).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dapsp {

enum class DeltaKind : std::uint8_t {
  kEdgeInsert = 0,  // add edge {u, v}; both endpoints must be active
  kEdgeRemove = 1,  // remove existing edge {u, v}
  kNodeJoin = 2,    // activate inactive node u (v == u); joins edgeless
  kNodeLeave = 3,   // deactivate active node u (v == u); incident edges
                    // are removed implicitly
};

const char* to_string(DeltaKind k) noexcept;

struct GraphDelta {
  DeltaKind kind = DeltaKind::kEdgeInsert;
  NodeId u = 0;
  NodeId v = 0;  // == u for node deltas

  friend bool operator==(const GraphDelta&, const GraphDelta&) = default;
};

std::string to_string(const GraphDelta& d);

// A mutable undirected simple graph over a fixed universe of nodes, each
// active or inactive. Inactive nodes have no incident edges by invariant.
class DynamicGraph {
 public:
  // All nodes active, no edges. Throws on an empty universe.
  explicit DynamicGraph(NodeId universe);
  // All nodes active, edges copied from g (the service's usual start state).
  explicit DynamicGraph(const Graph& g);

  NodeId universe() const noexcept { return n_; }
  NodeId num_active() const noexcept { return active_count_; }
  std::size_t num_edges() const noexcept { return m_; }

  bool active(NodeId v) const { return active_[v] != 0; }
  // Per-node activity mask — identical layout to ApspResult::survived, so
  // the service hands it to the repair machinery directly.
  const std::vector<std::uint8_t>& active_mask() const noexcept {
    return active_;
  }

  bool has_edge(NodeId u, NodeId v) const;
  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(adj_[v].size());
  }
  // Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const { return adj_[v]; }

  // Applies one delta; throws std::invalid_argument on anything invalid
  // (out-of-range ids, self-loops, inserting an existing edge or one with an
  // inactive endpoint, removing a missing edge, joining an active node,
  // leaving an inactive one). Use can_apply() to probe without throwing.
  void apply(const GraphDelta& d);
  bool can_apply(const GraphDelta& d) const noexcept;

  // Immutable CSR snapshot over the full universe: inactive nodes are
  // present but isolated (degree 0), so engine tables stay index-aligned.
  Graph snapshot() const;
  // Unique undirected edges, u < v, sorted — the canonical edge set used for
  // batch diffs and checkpoints.
  std::vector<Edge> sorted_edges() const;

  // True when all active nodes lie in one connected component (vacuously
  // true with zero active nodes).
  bool connected_active() const;
  // Would removing edge {u, v} (which must exist) disconnect the active
  // subgraph?
  bool edge_is_bridge(NodeId u, NodeId v) const;
  // Would deactivating v (active) disconnect the *other* active nodes?
  bool node_is_cut(NodeId v) const;

 private:
  // Connectivity probe: BFS over active nodes, optionally pretending node
  // `skip` is inactive and/or edge {eu, ev} absent; returns nodes reached.
  NodeId reach_count(NodeId skip, NodeId eu, NodeId ev) const;

  NodeId n_ = 0;
  NodeId active_count_ = 0;
  std::vector<std::uint8_t> active_;
  std::vector<std::vector<NodeId>> adj_;  // each sorted ascending
  std::size_t m_ = 0;
};

// One epoch's worth of churn: the graph deltas plus the fault events the
// service injects alongside them.
struct ChurnBatch {
  std::vector<GraphDelta> deltas;
  // Nodes that crash-stop during this epoch: the service deactivates them
  // like an unannounced kNodeLeave and counts them in nodes_crashed.
  std::vector<NodeId> crashes;
  // Stored-state bit-rot: this many finite distance entries get one bit
  // flipped (chosen from corrupt_seed). Invisible to the dirty-region
  // analyzer by design — the service's scrub pass is what catches it.
  std::uint32_t corrupt_flips = 0;
  std::uint64_t corrupt_seed = 0;

  bool empty() const noexcept {
    return deltas.empty() && crashes.empty() && corrupt_flips == 0;
  }

  friend bool operator==(const ChurnBatch&, const ChurnBatch&) = default;
};

// Wire format for one ChurnBatch — the payload of a write-ahead journal
// record (util/journal.h) and the replay entry point of durable recovery
// (core/durable.h). Little-endian, self-delimiting, versioned by the
// journal that carries it.
std::vector<std::uint8_t> encode_churn_batch(const ChurnBatch& b);
// Throws std::runtime_error on truncated input or an out-of-range delta
// kind; trailing bytes after the batch are also an error.
ChurnBatch decode_churn_batch(std::span<const std::uint8_t> bytes);

struct DeltaPlanConfig {
  std::uint64_t seed = 1;

  // Deltas per batch, uniform in [1, max_batch].
  std::uint32_t max_batch = 3;

  // Relative weights of the four delta kinds. Infeasible kinds (no inactive
  // node to join, connectivity would break, ...) drop out of the draw; a
  // batch slot where nothing is feasible is skipped.
  double w_insert = 1.0;
  double w_remove = 1.0;
  double w_join = 0.5;
  double w_leave = 0.5;

  // Never disconnect the active subgraph at batch end: removals avoid
  // bridges, leaves/crashes avoid cut vertices, and joins attach
  // immediately. (Mid-batch states may be transiently disconnected — a join
  // lands edgeless one delta before its attachments — but batches apply
  // atomically before any repair looks at the graph.)
  bool keep_connected = true;
  // Leaves/crashes never push the active population below this.
  NodeId min_active = 4;
  // Edges a joining node attaches with (capped by the active population).
  std::uint32_t join_attachments = 2;

  // Per-batch fault probabilities (both may fire in one batch).
  double crash_prob = 0.0;
  double corrupt_prob = 0.0;
  std::uint32_t corrupt_entries = 2;  // flips per corruption event
};

// Seeded churn-schedule generator. next() draws one ChurnBatch valid against
// the graph state it is shown (deltas are sequentially applicable in order).
// Deterministic: (config, rng state, batch counter) is the whole state.
class DeltaPlan {
 public:
  explicit DeltaPlan(const DeltaPlanConfig& config);

  const DeltaPlanConfig& config() const noexcept { return config_; }

  // Generates the next batch against g's current state. Does not mutate g.
  ChurnBatch next(const DynamicGraph& g);

  std::uint64_t batches_generated() const noexcept { return batches_; }

  // Checkpoint hooks: capture the two state scalars, or resume from them.
  std::uint64_t rng_state() const noexcept { return rng_.state(); }
  void resume(std::uint64_t rng_state, std::uint64_t batches) {
    rng_ = Rng(rng_state);
    batches_ = batches;
  }

 private:
  // Draws one feasible delta against `work` (the batch's working copy), or
  // returns false when nothing is feasible.
  bool draw_delta(DynamicGraph& work, std::vector<GraphDelta>& out);

  DeltaPlanConfig config_;
  Rng rng_;
  std::uint64_t batches_ = 0;
};

}  // namespace dapsp
