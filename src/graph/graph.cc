#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace dapsp {

Graph::Graph(NodeId n, std::span<const Edge> edges) : n_(n) {
  edge_list_.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("Graph: self-loops are not allowed");
    }
    edge_list_.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(edge_list_.begin(), edge_list_.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  edge_list_.erase(std::unique(edge_list_.begin(), edge_list_.end()),
                   edge_list_.end());

  std::vector<std::size_t> deg(n_ + 1, 0);
  for (const Edge& e : edge_list_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  offsets_.assign(n_ + 1, 0);
  for (NodeId v = 0; v < n_; ++v) offsets_[v + 1] = offsets_[v] + deg[v];
  adjacency_.resize(offsets_[n_]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edge_list_) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
  for (NodeId v = 0; v < n_; ++v) {
    auto nb = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto ne = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(nb, ne);
    max_degree_ = std::max(max_degree_, degree(v));
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::optional<std::uint32_t> Graph::neighbor_index(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return std::nullopt;
  return static_cast<std::uint32_t>(it - nb.begin());
}

Graph Graph::relabeled(std::uint64_t seed, std::vector<NodeId>* perm_out) const {
  Rng rng(seed);
  std::vector<NodeId> perm(n_);
  for (NodeId i = 0; i < n_; ++i) perm[i] = i;
  shuffle(perm, rng);
  std::vector<Edge> relabeled_edges;
  relabeled_edges.reserve(edge_list_.size());
  for (const Edge& e : edge_list_) {
    relabeled_edges.push_back({perm[e.u], perm[e.v]});
  }
  if (perm_out != nullptr) *perm_out = perm;
  return Graph(n_, relabeled_edges);
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(n_) + ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace dapsp
