// Text serialization of graphs: a simple edge-list format and GraphViz DOT.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dapsp::io {

// Edge-list format:
//   line 1: "<n> <m>"
//   next m lines: "<u> <v>"
// Comments ('#' to end of line) and blank lines are ignored.
void write_edge_list(std::ostream& out, const Graph& g);
Graph read_edge_list(std::istream& in);

std::string to_edge_list(const Graph& g);
Graph from_edge_list(const std::string& text);

// GraphViz "graph { ... }" output for visual inspection.
std::string to_dot(const Graph& g);

}  // namespace dapsp::io
