#include "core/repair.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/primitives/bfs_process.h"
#include "core/ssp.h"

namespace dapsp::core {

namespace {

// Repair models the post-incident network: the surviving subgraph is healthy,
// so the sub-runs and certification passes run fault-free and uninstrumented.
// Only the caller's capacity knobs survive.
congest::EngineConfig sanitized(const congest::EngineConfig& in) {
  congest::EngineConfig cfg = in;
  cfg.faults.reset();
  cfg.process_wrapper = nullptr;
  cfg.send_observer = nullptr;
  cfg.trace = nullptr;
  cfg.metrics = nullptr;
  cfg.record_activity = false;
  return cfg;
}

// Sub-runs use per-component graphs whose bandwidth budgets differ (B depends
// on the component's n), so the budget is dropped before accumulation.
void fold_stats(congest::RunStats& into, congest::RunStats from) {
  from.bandwidth_bits = 0;
  congest::accumulate(into, from);
}

void add_coverage(Histogram& h, std::span<const RowCoverage> cov) {
  for (const RowCoverage c : cov) {
    h.add(static_cast<std::uint64_t>(c));
  }
}

}  // namespace

RepairReport repair_apsp(const Graph& g, ApspResult& result,
                         const RepairOptions& options) {
  const NodeId n = g.num_nodes();
  if (result.dist.n() != n || result.next_hop.size() != n ||
      result.survived.size() != n) {
    throw std::invalid_argument(
        "repair_apsp: result tables do not match the graph");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (result.next_hop[v].size() != n) {
      throw std::invalid_argument(
          "repair_apsp: result tables do not match the graph");
    }
  }

  std::vector<NodeId> all_sources(n);
  for (NodeId v = 0; v < n; ++v) all_sources[v] = v;
  const DistEntryFn entry = [&result](NodeId v, NodeId s) {
    return result.dist.at(v, s);
  };

  RepairReport report;

  // 1. Take stock: the as-harvested coverage picture, then zero the rows of
  // crashed sources over the survivors. A dead source is unreachable in the
  // surviving subgraph, so all-infinite is its exact (and certifiable) row;
  // any stale finite entries are leftovers from before the crash.
  const std::vector<RowCoverage> before =
      classify_coverage(result.survived, all_sources, entry);
  add_coverage(report.coverage_before, before);
  for (NodeId s = 0; s < n; ++s) {
    if (result.survived[s] != 0) continue;
    for (NodeId v = 0; v < n; ++v) {
      if (result.survived[v] == 0) continue;
      result.dist.set(v, s, kInfDist);
      result.next_hop[v][s] = kNoNextHop;
    }
  }

  // 2. Find suspects among the surviving sources. Either the caller already
  // knows them (core/service.h's dirty-region analyzer hands them in — no
  // detection sweep at all), or every surviving row is put through the
  // distributed certificate and the failures are the suspects. Certifying
  // *all* surviving rows — not only coverage-complete ones — is what makes
  // repair idempotent: an exact-but-partial row (e.g. all-infinite entries
  // across a surviving cut) passes the certificate and is left alone on a
  // second repair instead of being blanket-suspected again; the certificate's
  // completeness (certify.h) guarantees no stale row slips through.
  CertifyOptions copts;
  copts.engine = sanitized(options.engine);
  std::vector<NodeId> suspects;
  if (options.suspects) {
    suspects = *options.suspects;
    std::sort(suspects.begin(), suspects.end());
    suspects.erase(std::unique(suspects.begin(), suspects.end()),
                   suspects.end());
    for (const NodeId s : suspects) {
      if (s >= n || result.survived[s] == 0) {
        throw std::invalid_argument(
            "repair_apsp: supplied suspect " + std::to_string(s) +
            (s >= n ? " is out of range" : " names a dead source"));
      }
    }
  } else {
    std::vector<NodeId> surviving;
    surviving.reserve(n);
    for (NodeId s = 0; s < n; ++s) {
      if (result.survived[s] != 0) surviving.push_back(s);
    }
    if (!surviving.empty()) {
      const CertifyReport pre =
          certify_rows(g, result.survived, surviving, entry, copts);
      for (std::size_t k = 0; k < surviving.size(); ++k) {
        if (pre.certified[k] == 0) suspects.push_back(surviving[k]);
      }
      fold_stats(report.stats, pre.stats);
    }
  }
  report.suspect_sources = suspects;
  report.rows_repaired = static_cast<std::uint32_t>(suspects.size());
  report.stats.repairs_attempted = 1;

  // Supplied-empty fast path: nothing to repair, and with certify_all off
  // nothing to certify either — return a zero-cost report (the convergence
  // contract service epochs with a clean dirty set rely on).
  if (suspects.empty() && options.suspects && !options.certify_all) {
    const std::vector<RowCoverage> after_now =
        classify_coverage(result.survived, all_sources, entry);
    add_coverage(report.coverage_after, after_now);
    result.coverage = after_now;
    return report;
  }

  // 3. Connected components of the surviving subgraph. Members are collected
  // ascending, so members[0] — the subgraph's node 0 after relabeling — is
  // the component's smallest surviving id, satisfying run_ssp's leader-is-
  // node-0 convention.
  constexpr std::uint32_t kNoComp = 0xffffffffu;
  std::vector<std::uint32_t> comp_of(n, kNoComp);
  std::vector<std::vector<NodeId>> comps;
  std::vector<NodeId> queue;
  for (NodeId r = 0; r < n; ++r) {
    if (result.survived[r] == 0 || comp_of[r] != kNoComp) continue;
    const auto ci = static_cast<std::uint32_t>(comps.size());
    comps.emplace_back();
    comp_of[r] = ci;
    queue.assign(1, r);
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      comps[ci].push_back(v);
      for (const NodeId w : g.neighbors(v)) {
        if (result.survived[w] == 0 || comp_of[w] != kNoComp) continue;
        comp_of[w] = ci;
        queue.push_back(w);
      }
    }
    std::sort(comps[ci].begin(), comps[ci].end());
  }

  std::vector<std::vector<NodeId>> comp_suspects(comps.size());
  for (const NodeId s : suspects) comp_suspects[comp_of[s]].push_back(s);

  // 4. Repair: re-run S-SP per component that owns suspects and merge the
  // deltas / parent indices back. Components repair independently (on the
  // real network they would run concurrently), so the repair's round cost is
  // the maximum over components, and each component is held to the paper's
  // O(|S| + D) bound.
  SspOptions sopts;
  sopts.engine = sanitized(options.engine);
  std::vector<NodeId> new_id(n, kNoComp);
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    const std::vector<NodeId>& sc = comp_suspects[ci];
    if (sc.empty()) continue;
    const std::vector<NodeId>& members = comps[ci];

    if (members.size() == 1) {
      // An isolated survivor: its own row is trivially 0 at itself and
      // infinite elsewhere; no protocol needed (0 rounds, bound trivially
      // holds).
      const NodeId s = sc.front();
      for (NodeId v = 0; v < n; ++v) {
        if (result.survived[v] == 0) continue;
        result.dist.set(v, s, v == s ? 0 : kInfDist);
        result.next_hop[v][s] = kNoNextHop;
      }
      report.round_bound = std::max(
          report.round_bound, kRepairRoundC * 1 + kRepairRoundSlack);
      continue;
    }

    for (std::size_t i = 0; i < members.size(); ++i) {
      new_id[members[i]] = static_cast<NodeId>(i);
    }
    std::vector<Edge> sub_edges;
    for (const Edge& e : g.edges()) {
      if (comp_of[e.u] != ci || comp_of[e.v] != ci) continue;
      if (result.survived[e.u] == 0 || result.survived[e.v] == 0) continue;
      sub_edges.push_back(Edge{new_id[e.u], new_id[e.v]});
    }
    const Graph sub(static_cast<NodeId>(members.size()), sub_edges);

    std::vector<NodeId> sub_sources;
    sub_sources.reserve(sc.size());
    for (const NodeId s : sc) sub_sources.push_back(new_id[s]);

    const SspResult rc = run_ssp(sub, sub_sources, sopts);

    const std::uint64_t bound =
        kRepairRoundC * (sc.size() + rc.d0) + kRepairRoundSlack;
    report.round_bound = std::max(report.round_bound, bound);
    report.repair_rounds = std::max(report.repair_rounds, rc.stats.rounds);
    if (rc.stats.rounds > bound) report.bound_ok = false;
    fold_stats(report.stats, rc.stats);

    for (const NodeId s : sc) {
      const NodeId ns = new_id[s];
      for (NodeId v = 0; v < n; ++v) {
        if (result.survived[v] == 0) continue;
        if (comp_of[v] != ci) {
          // Other components cannot reach s on the surviving subgraph.
          result.dist.set(v, s, kInfDist);
          result.next_hop[v][s] = kNoNextHop;
          continue;
        }
        const NodeId nv = new_id[v];
        result.dist.set(v, s, rc.delta[nv][ns]);
        const std::uint32_t pi = rc.parent_index[nv][ns];
        result.next_hop[v][s] =
            pi == kNoParent ? kNoNextHop : members[sub.neighbors(nv)[pi]];
      }
    }
  }

  // 5. Re-certify — every row (crashed sources included, whose all-infinite
  // rows certify vacuously) by default, only the repaired rows in
  // incremental mode — and refresh the result's coverage picture.
  const std::vector<RowCoverage> after =
      classify_coverage(result.survived, all_sources, entry);
  add_coverage(report.coverage_after, after);
  result.coverage = after;
  const std::vector<NodeId>& cert_sources =
      options.certify_all ? all_sources : suspects;
  if (!cert_sources.empty()) {
    report.certificate =
        certify_rows(g, result.survived, cert_sources, entry, copts);
    fold_stats(report.stats, report.certificate.stats);
  }
  return report;
}

std::string RepairReport::debug_string() const {
  std::ostringstream os;
  os << "repair: rows=" << rows_repaired << " rounds=" << repair_rounds
     << " bound=" << round_bound
     << (bound_ok ? "" : " BOUND-EXCEEDED") << " certified="
     << certificate.rows_certified << "/" << certificate.certified.size()
     << " coverage(lost/partial/complete) " << coverage_before.count(0) << "/"
     << coverage_before.count(1) << "/" << coverage_before.count(2) << " -> "
     << coverage_after.count(0) << "/" << coverage_after.count(1) << "/"
     << coverage_after.count(2);
  return std::move(os).str();
}

}  // namespace dapsp::core
