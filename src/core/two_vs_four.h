// Algorithm 3 (Theorem 7): distinguish diameter-2 graphs from diameter-4
// graphs in O(sqrt(n log n)) rounds, whp.
//
// Distributed realization of the Aingworth-Chekuri-Indyk-Motwani "2-vs-4"
// test (Section 7.2), with degree threshold s = ceil(sqrt(n log n)):
//
//   * If some node has |N1(v)| < s (a low-degree node exists), elect the
//     lowest-id one by an arg-min convergecast over T1 and let S = N1(v)
//     (v recruits its neighbors in one round).
//   * Otherwise every node joins S independently with probability
//     sqrt(log n / n); whp S is a dominating set of size O(sqrt(n log n))
//     (Remark 6) — we count |S| by a convergecast.
//   * Solve S-SP (Algorithm 2, O(|S| + D) rounds; the paper's sequential
//     BFS would also do since D <= 4 under the promise).
//   * Answer 2 iff every BFS tree has depth <= 2, i.e. the global max of
//     delta[*] is <= 2 (max convergecast + answer broadcast).
//
// Correctness under the promise (Theorem 3.1 of [2]): a diameter-2 graph
// makes every BFS tree depth <= 2; in a diameter-4 graph, S dominating (or
// S = N1(v)) forces some tree to depth >= 3. The only failure mode is the
// random sample not dominating (probability o(1)); the result reports the
// sample size so callers can detect pathological draws.
#pragma once

#include <cstdint>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

struct TwoVsFourOptions {
  congest::EngineConfig engine{};
  std::uint64_t seed = 1;  // randomness for the high-degree branch
};

struct TwoVsFourResult {
  std::uint32_t answer = 0;  // 2 or 4
  bool used_low_degree_branch = false;
  std::uint32_t s_threshold = 0;  // ceil(sqrt(n log n))
  std::uint32_t num_sources = 0;  // |S|
  congest::RunStats stats;
};

// Requires a connected graph whose diameter is exactly 2 or exactly 4.
TwoVsFourResult run_two_vs_four(const Graph& g,
                                const TwoVsFourOptions& options = {});

}  // namespace dapsp::core
