#include "core/neighborhood_census.h"

#include <memory>
#include <set>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"

namespace dapsp::core {
namespace {

constexpr std::uint8_t kAdjEntry = 95;    // (neighbor id)
constexpr std::uint32_t kTagMaxDeg = 97;  // convergecast: (max degree)
constexpr std::uint32_t kTagGo = 98;      // broadcast: (max degree)

// Phase A: build T1 and agree on the maximum degree (so everyone knows when
// the streaming phase ends). Phase B: stream adjacency lists pairwise.
class CensusProcess final : public congest::Process {
 public:
  CensusProcess(NodeId id, NodeId n)
      : id_(id),
        n_(n),
        maxdeg_up_(kTagMaxDeg, Convergecast::Op::kMax),
        go_bcast_(kTagGo) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (maxdeg_up_.handle(r)) continue;
      if (r.msg.kind == kAdjEntry) {
        two_hop_.insert(r.msg.f[0]);
        continue;
      }
      if (go_bcast_.handle(r)) start_streaming(ctx);
    }

    tree_.advance(ctx);
    if (tree_.finished(id_) && !armed_) {
      if (finish_seen_) {  // one round after the echo (bandwidth)
        armed_ = true;
        maxdeg_up_.arm(ctx.degree());
      }
      finish_seen_ = true;
    }
    if (armed_) maxdeg_up_.advance(ctx, tree_);
    if (id_ == 0 && maxdeg_up_.complete() && !go_sent_) {
      go_sent_ = true;
      go_bcast_.start(maxdeg_up_.value(0));
      start_streaming(ctx);
    }
    go_bcast_.advance(ctx, tree_);

    // Streaming: one adjacency entry per neighbor per round. Starts one
    // round after GO so the entry never shares an edge-round with the GO
    // broadcast itself (bandwidth).
    if (streaming_ && ctx.round() >= stream_start_ && cursor_ < max_degree_) {
      const auto deg = ctx.degree();
      for (std::uint32_t i = 0; i < deg; ++i) {
        if (cursor_ < deg) {
          ctx.send(i, congest::Message::make(kAdjEntry,
                                             ctx.neighbor(cursor_)));
        }
      }
      ++cursor_;
      if (cursor_ >= max_degree_) finished_streaming_ = true;
    }

    quiescent_ = tree_.finished(id_) && finished_streaming_;
  }

  bool done() const override { return quiescent_; }

  std::uint32_t count(const Graph& g) const {
    // |N2(v)|: self + direct neighbors + everything heard, deduplicated.
    std::set<std::uint32_t> all(two_hop_.begin(), two_hop_.end());
    all.insert(id_);
    for (const NodeId u : g.neighbors(id_)) all.insert(u);
    return static_cast<std::uint32_t>(all.size());
  }
  std::uint32_t max_degree() const { return max_degree_; }

 private:
  void start_streaming(congest::RoundCtx& ctx) {
    if (streaming_) return;
    streaming_ = true;
    stream_start_ = ctx.round() + 1;
    max_degree_ = id_ == 0 ? maxdeg_up_.value(0) : go_bcast_.value(0);
    if (ctx.degree() == 0 || max_degree_ == 0) finished_streaming_ = true;
  }

  NodeId id_;
  NodeId n_;
  TreeMachine tree_;
  Convergecast maxdeg_up_;
  Broadcast go_bcast_;
  std::set<std::uint32_t> two_hop_;
  bool finish_seen_ = false;
  bool armed_ = false;
  bool go_sent_ = false;
  bool streaming_ = false;
  bool finished_streaming_ = false;
  bool quiescent_ = false;
  std::uint32_t max_degree_ = 0;
  std::uint32_t cursor_ = 0;
  std::uint64_t stream_start_ = 0;
};

}  // namespace

CensusResult run_two_hop_census(const Graph& g,
                                const congest::EngineConfig& cfg) {
  const NodeId n = g.num_nodes();
  congest::Engine engine(g, cfg);
  engine.init([&](NodeId v) {
    return std::make_unique<CensusProcess>(v, n);
  });

  CensusResult out;
  out.stats = engine.run();
  out.n2.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<CensusProcess>(v);
    out.n2[v] = p.count(g);
    if (v == 0) out.max_degree = p.max_degree();
  }
  return out;
}

}  // namespace dapsp::core
