#include "core/ssp.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/primitives/aggregation.h"

namespace dapsp::core {

SspMachine::SspMachine(NodeId id, NodeId n, bool in_s)
    : id_(id), n_(n), in_s_(in_s) {}

void SspMachine::configure(std::uint64_t start_round,
                           std::uint64_t loop_rounds) {
  start_round_ = start_round;
  loop_rounds_ = loop_rounds;
  configured_ = true;
}

void SspMachine::set_in_s(bool in_s) {
  if (storage_ready_) {
    throw std::logic_error("SspMachine::set_in_s: loop already running");
  }
  in_s_ = in_s;
}

void SspMachine::set_cap(std::uint32_t cap) {
  if (storage_ready_) {
    throw std::logic_error("SspMachine::set_cap: loop already running");
  }
  cap_ = cap;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
SspMachine::nearest_sources() const {
  if (cap_ != 0) return {learned_.begin(), learned_.end()};
  std::vector<Entry> all;
  for (std::uint32_t u = 0; u < delta_.size(); ++u) {
    if (delta_[u] != kInfDist) all.push_back({delta_[u], u});
  }
  std::sort(all.begin(), all.end());
  return all;
}

void SspMachine::ensure_storage(congest::RoundCtx& ctx) {
  if (storage_ready_) return;
  storage_ready_ = true;
  delta_.assign(n_, kInfDist);
  parent_.assign(n_, kNoParent);
  in_l_.assign(n_, 0);
  lists_.resize(ctx.degree());
  last_sent_.assign(ctx.degree(), kInfDist);  // kInfDist = "sent nothing"
  last_sent_dist_.assign(ctx.degree(), kInfDist);
  heard_from_.assign(ctx.degree(), 0);
  if (in_s_) {
    delta_[id_] = 0;
    in_l_[id_] = 1;
    for (auto& l : lists_) l.insert({0, id_});
    if (cap_ != 0) learned_.insert({0, id_});
  }
}

bool SspMachine::handle(congest::RoundCtx& ctx, const congest::Received& r) {
  if (r.msg.kind != kSspToken) return false;
  ensure_storage(ctx);
  const std::uint32_t src = r.msg.f[0];
  const std::uint32_t dist = r.msg.f[1];
  const std::uint32_t i = r.from_index;
  heard_from_[i] = 1;

  // Resolve last round's simultaneous exchange on this edge (shifted one
  // round by the engine's delivery latency). The paper's rule (lines 19-27):
  // the *smaller* id wins the edge. If the neighbor's id is not smaller than
  // what we sent, our send succeeded (drop it from L_i) and the incoming
  // message is discarded — the neighbor saw the failure and will retry.
  // Accepting failed transmissions would break the delay symmetry on which
  // Theorem 3's first-arrival argument rests.
  // Lexicographic wire priority: (claimed distance, source id).
  const auto incoming = std::make_pair(dist, src);
  const auto sent = std::make_pair(last_sent_dist_[i], last_sent_[i]);
  if (last_sent_[i] != kInfDist && !(incoming < sent)) {
    const bool tie = incoming == sent;
    resolve_success(i);
    if (!tie) {
      return true;  // a lower-priority incoming claim failed; sender retries
    }
    // Tie: both endpoints offered the same id and both transmissions count
    // as successful — this is the edge where two wavefronts of the flood
    // meet. The two claims may differ (ours may have been learned via a
    // detour), so the incoming one must still be merged below; the merge
    // pass also records the meeting-edge cycle witness, which is how odd
    // minimum cycles are detected.
  }

  // Accepted. Buffer it: all of a round's accepted claims for one source are
  // merged in advance() so that inbox order cannot select a non-minimal
  // claim (wavefronts of the same flood may arrive together with different
  // claimed distances when one path was priority-delayed and another not —
  // a case the extended abstract's pseudocode glosses over).
  pending_.push_back(PendingReceipt{src, dist, i});
  return true;
}

void SspMachine::merge_pending() {
  // First pass: minimal claim per source this round.
  for (const PendingReceipt& p : pending_) {
    if (in_l_[p.src] == 0) {
      if (cap_ != 0 && learned_.size() >= cap_) {
        // Truncated detection: only the cap lexicographically smallest
        // (dist, id) sources are kept; a better claim evicts the current
        // worst (whose queued entries go stale and are skipped at send).
        const Entry worst = *learned_.rbegin();
        if (Entry{p.dist, p.src} >= worst) continue;
        learned_.erase(worst);
        in_l_[worst.second] = 0;
        delta_[worst.second] = kInfDist;
        parent_[worst.second] = kNoParent;
      }
      learn(p.src, p.dist, p.from_index);
      if (cap_ != 0) learned_.insert({p.dist, p.src});
    } else if (p.dist < delta_[p.src]) {
      const bool cross_round = !std::binary_search(
          fresh_this_round_.begin(), fresh_this_round_.end(), p.src);
      if (cap_ != 0) {
        learned_.erase({delta_[p.src], p.src});
        learned_.insert({p.dist, p.src});
      }
      delta_[p.src] = p.dist;
      parent_[p.src] = p.from_index;
      // Re-queue the corrected claim everywhere (the entries inserted with
      // the superseded distance are lazily dropped by the send phase).
      // Cross-round corrections are counted; bench_ssp reports how often
      // the idealized first-arrival ordering is violated in practice.
      if (cross_round) ++late_improvements_;
      for (std::uint32_t j = 0; j < lists_.size(); ++j) {
        if (j != p.from_index) lists_[j].insert({p.dist, p.src});
      }
    }
  }
  // Second pass: every non-defining receipt is a cycle witness
  // (delta_v + (delta_w + 1), both paths genuinely disjoint from the edge).
  for (const PendingReceipt& p : pending_) {
    if (p.dist > delta_[p.src] ||
        (p.dist == delta_[p.src] && parent_[p.src] != p.from_index)) {
      girth_witness_ = std::min(girth_witness_, delta_[p.src] + p.dist);
    }
  }
  pending_.clear();
  fresh_this_round_.clear();
}

void SspMachine::learn(std::uint32_t src, std::uint32_t dist,
                       std::uint32_t from_index) {
  delta_[src] = dist;
  parent_[src] = from_index;
  in_l_[src] = 1;
  for (std::uint32_t i = 0; i < lists_.size(); ++i) {
    if (i != from_index) lists_[i].insert({dist, src});
  }
  fresh_this_round_.insert(
      std::lower_bound(fresh_this_round_.begin(), fresh_this_round_.end(), src),
      src);
}

void SspMachine::advance(congest::RoundCtx& ctx) {
  if (!configured_) return;
  const std::uint64_t t = ctx.round();
  if (t < start_round_ || t > start_round_ + loop_rounds_) return;
  ensure_storage(ctx);

  merge_pending();

  // Silence from a neighbor also means last round's send succeeded.
  if (t > start_round_) {
    for (std::uint32_t i = 0; i < lists_.size(); ++i) {
      if (!heard_from_[i] && last_sent_[i] != kInfDist) {
        resolve_success(i);
      }
    }
  }
  std::fill(heard_from_.begin(), heard_from_.end(), 0);

  if (t == start_round_ + loop_rounds_) return;  // trailing receive round

  for (std::uint32_t i = 0; i < lists_.size(); ++i) {
    // Skip entries whose claim was since improved (a fresher entry exists).
    while (!lists_[i].empty() &&
           lists_[i].begin()->first != delta_[lists_[i].begin()->second]) {
      lists_[i].erase(lists_[i].begin());
    }
    if (lists_[i].empty()) {
      last_sent_[i] = kInfDist;
      continue;
    }
    const auto [dist, li] = *lists_[i].begin();
    ctx.send(i, congest::Message::make(kSspToken, li, dist + 1));
    last_sent_[i] = li;
    last_sent_dist_[i] = dist + 1;
  }
}

void SspMachine::resolve_success(std::uint32_t i) {
  // The claim we sent crossed the edge: retire that exact entry. If the
  // distance has improved since, the improved entry is a different (smaller)
  // pair and stays queued.
  lists_[i].erase({last_sent_dist_[i] - 1, last_sent_[i]});
  last_sent_[i] = kInfDist;
  last_sent_dist_[i] = kInfDist;
}

std::uint32_t SspMachine::max_delta() const {
  std::uint32_t best = 0;
  for (const std::uint32_t d : delta_) {
    if (d != kInfDist) best = std::max(best, d);
  }
  return best;
}

namespace {

constexpr std::uint32_t kTagSspParams = 10;

// Standalone Algorithm 2 driver process.
class SspProcess final : public congest::Process {
 public:
  SspProcess(NodeId id, NodeId n, bool in_s)
      : id_(id), tree_(in_s), ssp_(id, n, in_s), params_(kTagSspParams) {}

  void on_round(congest::RoundCtx& ctx) override {
    absorb_failure_notices(ctx);

    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind == kFailNotice) continue;  // consumed above
      if (tree_.handle(ctx, r)) continue;
      if (ssp_.handle(ctx, r)) continue;
      if (params_.handle(r)) {
        // (|S|, D0, delta): the loop starts `delta` rounds after the root
        // sent this broadcast; recover the absolute round from our depth.
        const std::uint64_t t_start =
            ctx.round() - tree_.dist() + params_.value(2);
        ssp_.configure(t_start, SspMachine::schedule_length(
                                    params_.value(0), params_.value(1)));
      }
    }

    tree_.advance(ctx);

    if (id_ == 0 && tree_.root_complete() && !params_sent_) {
      params_sent_ = true;
      const std::uint32_t s_count = tree_.root_marked_count();
      const std::uint32_t d0 = 2 * tree_.root_ecc();
      const std::uint32_t delta = tree_.root_ecc() + 1;
      params_.start(s_count, d0, delta);
      ssp_.configure(ctx.round() + delta,
                     SspMachine::schedule_length(s_count, d0));
      d0_ = d0;
    }
    params_.advance(ctx, tree_);
    ssp_.advance(ctx);

    quiescent_ = tree_.finished(id_) && params_.idle() &&
                 ssp_.configured() && ssp_.finished(ctx.round());
  }

  bool done() const override {
    // Keep schedulable until a detector verdict's notice flood is out; a
    // degraded node is otherwise done (it still relays the token loop while
    // messages flow, which drains on its own schedule).
    if (notice_pending_) return false;
    if (degraded_) return true;
    return quiescent_;
  }

  void on_neighbor_down(std::uint32_t, std::uint64_t) override {
    notice_pending_ = true;
  }

  const SspMachine& ssp() const { return ssp_; }
  const TreeMachine& tree() const { return tree_; }
  std::uint32_t d0() const { return d0_; }
  bool degraded() const { return degraded_; }

 private:
  void absorb_failure_notices(congest::RoundCtx& ctx) {
    bool saw = notice_pending_;
    notice_pending_ = false;
    notice_exclude_.clear();
    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind == kFailNotice) {
        saw = true;
        notice_exclude_.push_back(r.from_index);
      }
    }
    if (!saw || degraded_) return;  // forward-once flood
    degraded_ = true;
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t i = 0; i < deg; ++i) {
      if (std::find(notice_exclude_.begin(), notice_exclude_.end(), i) !=
          notice_exclude_.end()) {
        continue;
      }
      ctx.send(i, congest::Message::make(kFailNotice));
    }
  }

  NodeId id_;
  TreeMachine tree_;
  SspMachine ssp_;
  Broadcast params_;
  bool params_sent_ = false;
  std::uint32_t d0_ = 0;
  bool quiescent_ = false;
  bool notice_pending_ = false;
  bool degraded_ = false;
  std::vector<std::uint32_t> notice_exclude_;
};

}  // namespace

SspResult run_ssp(const Graph& g, std::span<const NodeId> sources,
                  const SspOptions& options) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> in_s(n, 0);
  for (const NodeId s : sources) {
    if (s >= n) throw std::invalid_argument("run_ssp: source out of range");
    in_s[s] = 1;
  }

  congest::Engine engine(g, options.engine);
  engine.init([&](NodeId v) {
    return std::make_unique<SspProcess>(v, n, in_s[v] != 0);
  });

  SspResult out;
  out.sources.assign(sources.begin(), sources.end());
  std::sort(out.sources.begin(), out.sources.end());
  out.sources.erase(std::unique(out.sources.begin(), out.sources.end()),
                    out.sources.end());
  // run_bounded: degraded terminations become a status; genuine stalls and
  // congestion violations keep throwing as before.
  const congest::Outcome outcome = engine.run_bounded();
  if (outcome.status == congest::RunStatus::kRoundLimit) {
    throw congest::RoundLimitError(outcome.message);
  }
  if (outcome.status == congest::RunStatus::kCongestion) {
    throw congest::CongestionError(outcome.message);
  }
  out.status = outcome.status;
  out.stats = outcome.stats;
  out.survived.resize(n);
  for (NodeId v = 0; v < n; ++v) out.survived[v] = engine.crashed(v) ? 0 : 1;
  out.delta.resize(n);
  out.parent_index.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<SspProcess>(v);
    out.delta[v] = p.ssp().delta();
    if (out.delta[v].empty()) out.delta[v].assign(n, kInfDist);
    out.parent_index[v] = p.ssp().parent_index();
    if (out.parent_index[v].empty()) out.parent_index[v].assign(n, kNoParent);
    if (out.survived[v] != 0 && p.degraded()) out.degraded_nodes.push_back(v);
    out.min_girth_witness =
        std::min(out.min_girth_witness, p.ssp().girth_witness());
    out.total_late_improvements += p.ssp().late_improvements();
    if (v == 0) {
      out.leader_ecc = p.tree().root_ecc();
      out.d0 = p.d0();
      out.loop_rounds =
          SspMachine::schedule_length(out.sources.size(), out.d0);
    }
  }
  out.coverage = classify_coverage(
      out.survived, out.sources,
      [&](NodeId v, NodeId s) { return out.delta[v][s]; });
  return out;
}

}  // namespace dapsp::core
