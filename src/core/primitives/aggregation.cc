// Broadcast and Convergecast are header-only; this translation unit just
// compile-checks the header in isolation.
#include "core/primitives/aggregation.h"
