#include "core/primitives/bfs_process.h"

#include <algorithm>

#include "graph/graph.h"

namespace dapsp::core {

bool TreeMachine::handle(congest::RoundCtx& ctx, const congest::Received& r) {
  switch (r.msg.kind) {
    case kFlood: {
      ++receipts_;
      if (dist_ == kInfDist) {
        dist_ = r.msg.f[0];
        parent_idx_ = r.from_index;  // inbox is ordered: lowest index first
        flood_senders_.push_back(r.from_index);
      } else if (!flooded_) {
        // Another flood in the adoption round (a second potential parent).
        flood_senders_.push_back(r.from_index);
      }
      return true;
    }
    case kAck:
      children_.push_back(r.from_index);
      return true;
    case kEcho:
      ++echoes_received_;
      agg_depth_ = std::max(agg_depth_, r.msg.f[0]);
      agg_marked_ += r.msg.f[1];
      agg_flags_ |= r.msg.f[2];
      return true;
    default:
      (void)ctx;
      return false;
  }
}

void TreeMachine::advance(congest::RoundCtx& ctx) {
  // Root bootstraps itself in round 0.
  if (ctx.round() == 0 && ctx.id() == 0) {
    dist_ = 0;
    parent_idx_ = kNoParent;
  }
  if (dist_ == kInfDist) return;

  if (!flooded_) {
    // Forward the flood to every neighbor except the same-round senders
    // (Claim 1's rule), and acknowledge the parent.
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t i = 0; i < deg; ++i) {
      if (std::find(flood_senders_.begin(), flood_senders_.end(), i) !=
          flood_senders_.end()) {
        continue;
      }
      ctx.send(i, congest::Message::make(kFlood, dist_ + 1));
    }
    if (parent_idx_ != kNoParent) {
      ctx.send(parent_idx_, congest::Message::make(kAck));
    }
    flooded_ = true;
  }

  if (!children_final_ && ctx.round() >= std::uint64_t{dist_} + 2) {
    children_final_ = true;
  }
  maybe_send_echo(ctx);
}

void TreeMachine::maybe_send_echo(congest::RoundCtx& ctx) {
  if (echo_sent_ || root_complete_ || !children_final_) return;
  if (echoes_received_ < children_.size()) return;

  agg_depth_ = std::max(agg_depth_, dist_);
  agg_marked_ += marked_ ? 1u : 0u;
  if (receipts_ >= 2) agg_flags_ |= kEchoCycleFlag;

  if (parent_idx_ == kNoParent) {
    root_complete_ = true;
  } else {
    ctx.send(parent_idx_, congest::Message::make(kEcho, agg_depth_,
                                                 agg_marked_, agg_flags_));
    echo_sent_ = true;
  }
}

}  // namespace dapsp::core
