// Broadcast and convergecast over the leader tree T1.
//
// These realize the paper's "aggregate using T1 in additional time O(D)"
// steps (Lemmas 3-7): a Broadcast carries a small payload from the root to
// every node in depth(T1) rounds; a Convergecast folds per-node values up to
// the root with max/min/sum per field.
//
// Both are tagged so several instances can coexist in one protocol.
#pragma once

#include <array>
#include <cstdint>

#include "congest/engine.h"
#include "core/primitives/bfs_process.h"

namespace dapsp::core {

// One-shot broadcast of (tag, a, b, c) down the tree.
class Broadcast {
 public:
  explicit Broadcast(std::uint32_t tag) : tag_(tag) {}

  // Root: inject the payload (call once).
  void start(std::uint32_t a, std::uint32_t b = 0, std::uint32_t c = 0) {
    payload_ = {a, b, c};
    delivered_ = true;
    forward_pending_ = true;
  }

  // Returns true if consumed (a kBcast with this tag).
  bool handle(const congest::Received& r) {
    if (r.msg.kind != kBcast || r.msg.f[0] != tag_) return false;
    payload_ = {r.msg.f[1], r.msg.f[2], r.msg.f[3]};
    delivered_ = true;
    forward_pending_ = true;
    return true;
  }

  // Forwards to children once delivered. Requires children to be final.
  void advance(congest::RoundCtx& ctx, const TreeMachine& tree) {
    if (!forward_pending_) return;
    for (const std::uint32_t child : tree.children()) {
      ctx.send(child, congest::Message::make(kBcast, tag_, payload_[0],
                                             payload_[1], payload_[2]));
    }
    forward_pending_ = false;
  }

  bool delivered() const { return delivered_; }
  bool idle() const { return !forward_pending_; }
  std::uint32_t value(int i) const { return payload_[static_cast<std::size_t>(i)]; }

 private:
  std::uint32_t tag_;
  std::array<std::uint32_t, 3> payload_{};
  bool delivered_ = false;
  bool forward_pending_ = false;
};

// One-shot convergecast of three values folded with per-field operations.
class Convergecast {
 public:
  enum class Op : std::uint8_t { kMax, kMin, kSum };

  Convergecast(std::uint32_t tag, Op op0, Op op1 = Op::kMax, Op op2 = Op::kMax)
      : tag_(tag), ops_{op0, op1, op2} {
    acc_ = {identity(op0), identity(op1), identity(op2)};
  }

  // Provide this node's contribution (call once, any round before or after
  // children report).
  void arm(std::uint32_t a, std::uint32_t b = 0, std::uint32_t c = 0) {
    fold(0, a);
    fold(1, b);
    fold(2, c);
    armed_ = true;
  }

  bool handle(const congest::Received& r) {
    if (r.msg.kind != kAggUp || r.msg.f[0] != tag_) return false;
    fold(0, r.msg.f[1]);
    fold(1, r.msg.f[2]);
    fold(2, r.msg.f[3]);
    ++reports_;
    return true;
  }

  // Sends up once armed and all children reported. At the root, flips
  // complete() instead.
  void advance(congest::RoundCtx& ctx, const TreeMachine& tree) {
    if (sent_ || complete_ || !armed_) return;
    if (reports_ < tree.children().size()) return;
    if (tree.parent_index() == kNoParent) {
      complete_ = true;
    } else {
      ctx.send(tree.parent_index(),
               congest::Message::make(kAggUp, tag_, acc_[0], acc_[1], acc_[2]));
      sent_ = true;
    }
  }

  bool complete() const { return complete_; }  // root only
  bool idle() const { return sent_ || complete_ || !armed_; }
  std::uint32_t value(int i) const { return acc_[static_cast<std::size_t>(i)]; }

  static std::uint32_t identity(Op op) {
    switch (op) {
      case Op::kMax: return 0;
      case Op::kMin: return 0xffffffffu;
      case Op::kSum: return 0;
    }
    return 0;
  }

 private:
  void fold(int i, std::uint32_t v) {
    auto& slot = acc_[static_cast<std::size_t>(i)];
    switch (ops_[static_cast<std::size_t>(i)]) {
      case Op::kMax: slot = std::max(slot, v); break;
      case Op::kMin: slot = std::min(slot, v); break;
      case Op::kSum: slot += v; break;
    }
  }

  std::uint32_t tag_;
  std::array<Op, 3> ops_;
  std::array<std::uint32_t, 3> acc_{};
  std::size_t reports_ = 0;
  bool armed_ = false;
  bool sent_ = false;
  bool complete_ = false;
};

// Convergecast of a (key, payload) pair keeping the entry with the smallest
// key (ties: the one folded first wins; with distinct ids as keys this is
// deterministic). Used e.g. to elect the lowest-id low-degree node in
// Algorithm 3 together with its degree.
class ArgMinConvergecast {
 public:
  explicit ArgMinConvergecast(std::uint32_t tag) : tag_(tag) {}

  void arm(std::uint32_t key, std::uint32_t payload) {
    fold(key, payload);
    armed_ = true;
  }

  bool handle(const congest::Received& r) {
    if (r.msg.kind != kAggUp || r.msg.f[0] != tag_) return false;
    fold(r.msg.f[1], r.msg.f[2]);
    ++reports_;
    return true;
  }

  void advance(congest::RoundCtx& ctx, const TreeMachine& tree) {
    if (sent_ || complete_ || !armed_) return;
    if (reports_ < tree.children().size()) return;
    if (tree.parent_index() == kNoParent) {
      complete_ = true;
    } else {
      ctx.send(tree.parent_index(),
               congest::Message::make(kAggUp, tag_, key_, payload_));
      sent_ = true;
    }
  }

  bool complete() const { return complete_; }
  bool idle() const { return sent_ || complete_ || !armed_; }
  std::uint32_t key() const { return key_; }
  std::uint32_t payload() const { return payload_; }

 private:
  void fold(std::uint32_t key, std::uint32_t payload) {
    if (key < key_) {
      key_ = key;
      payload_ = payload;
    }
  }

  std::uint32_t tag_;
  std::uint32_t key_ = 0xffffffffu;
  std::uint32_t payload_ = 0;
  std::size_t reports_ = 0;
  bool armed_ = false;
  bool sent_ = false;
  bool complete_ = false;
};

}  // namespace dapsp::core
