// Distributed protocol primitives shared by all algorithms in src/core.
//
// TreeMachine builds the paper's tree T1: a BFS tree rooted at the leader
// (node 0, playing "the node with ID 1"). It implements:
//   * the BFS flood of Claim 1 (forward to every neighbor except those the
//     flood was received from in the same round),
//   * parent acknowledgements so every node learns its tree children,
//   * an echo (convergecast) wave that detects termination and aggregates
//     - the maximum depth (so the root learns ecc(root), hence the paper's
//       D0 = 2*ecc(root) >= D bound via Fact 1),
//     - a cycle-evidence flag (a node receiving the flood more than once;
//       by Claim 1, absence of such evidence proves G is a tree),
//     - the number of "marked" nodes (used to count |S| for S-SP).
//
// Round timeline (round t delivers messages sent in round t-1):
//   t = dist(v):     v receives the flood, adopts the lowest-index sender as
//                    parent, forwards the flood, ACKs its parent.
//   t = dist(v)+1:   same-level neighbors' floods arrive (counted as cycle
//                    evidence, per Claim 1).
//   t = dist(v)+2:   ACKs from children arrive; the children set is final.
//   t >= dist(v)+2:  once every child echoed, v echoes to its parent.
// The root is complete once all its children echoed: <= 2*ecc(root)+3 rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"

namespace dapsp::core {

// Message tags shared across the core protocols. Each protocol uses a
// disjoint slice so traces stay readable.
enum MsgKind : std::uint8_t {
  kFlood = 1,   // tree build: (claimed distance)
  kAck = 2,     // tree build: child -> parent
  kEcho = 3,    // tree build: (max_depth, marked_count, flags)
  kBcast = 4,   // generic broadcast down T1: (tag, a, b, c)
  kAggUp = 5,   // generic convergecast up T1: (tag, a, b, c)
  kPebble = 6,  // Algorithm 1: the DFS pebble
  kApspFlood = 7,   // Algorithm 1: (root id, claimed distance)
  kSspToken = 8,    // Algorithm 2: (id, distance)
  kKdomCount = 9,   // k-dominating set: (residue, count)
  kStartBfs = 10,   // naive baseline scheduling
  kLinkEdge = 11,   // link-state baseline: (u, v)
  kDvEntry = 12,    // distance-vector baseline: (dest, dist)
  kCertValue = 13,  // certification (core/certify): (source index, distance)
  kFailNotice = 14,  // degraded mode: "a neighbor crashed", flooded once
};

// Echo flag bits.
inline constexpr std::uint32_t kEchoCycleFlag = 1;

inline constexpr std::uint32_t kNoParent = 0xffffffffu;

class TreeMachine {
 public:
  // `marked` feeds the marked-node count aggregated to the root.
  explicit TreeMachine(bool marked = false) : marked_(marked) {}

  // Handles one message if it belongs to the tree build. Returns true if
  // consumed. Call for every inbox entry each round.
  bool handle(congest::RoundCtx& ctx, const congest::Received& r);

  // Drives flood/ack/echo sends. Call once per round after handling inbox.
  void advance(congest::RoundCtx& ctx);

  // Local participation complete (echo sent, or root: all echoes received).
  bool finished(NodeId self) const {
    return self == 0 ? root_complete_ : echo_sent_;
  }

  // Root only: true once the whole tree is built and aggregated.
  bool root_complete() const { return root_complete_; }

  std::uint32_t dist() const { return dist_; }
  std::uint32_t parent_index() const { return parent_idx_; }
  const std::vector<std::uint32_t>& children() const { return children_; }
  std::uint32_t flood_receipts() const { return receipts_; }

  // Root aggregates, valid once root_complete():
  std::uint32_t root_ecc() const { return agg_depth_; }
  bool root_cycle_evidence() const { return (agg_flags_ & kEchoCycleFlag) != 0; }
  std::uint32_t root_marked_count() const { return agg_marked_; }

 private:
  void maybe_send_echo(congest::RoundCtx& ctx);

  bool marked_;
  std::uint32_t dist_ = 0xffffffffu;  // kInfDist until reached
  std::uint32_t parent_idx_ = kNoParent;
  std::vector<std::uint32_t> children_;      // neighbor indexes
  std::vector<std::uint32_t> flood_senders_; // senders in the adoption round
  bool flooded_ = false;      // forwarded the flood already
  bool children_final_ = false;
  std::uint32_t receipts_ = 0;
  std::uint32_t echoes_received_ = 0;
  bool echo_sent_ = false;
  bool root_complete_ = false;
  // Aggregates over own subtree (merged from children echoes).
  std::uint32_t agg_depth_ = 0;
  std::uint32_t agg_marked_ = 0;
  std::uint32_t agg_flags_ = 0;
};

}  // namespace dapsp::core
