#include "core/pebble_apsp.h"

#include <algorithm>
#include <memory>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "util/arena.h"

namespace dapsp::core {
namespace {

// Convergecast/broadcast tags used by the aggregation phase.
constexpr std::uint32_t kTagCollect = 1;
constexpr std::uint32_t kTagSummary = 2;
constexpr std::uint32_t kTagResult = 3;

class PebbleApspProcess final : public congest::Process {
 public:
  PebbleApspProcess(NodeId id, NodeId n, bool aggregate)
      : id_(id),
        n_(n),
        aggregate_(aggregate),
        dist_row_(n, kInfDist),
        parent_row_(n, kNoParent),
        collect_bcast_(kTagCollect),
        summary_up_(kTagSummary, Convergecast::Op::kMax, Convergecast::Op::kMin,
                    Convergecast::Op::kMin),
        result_bcast_(kTagResult) {
    dist_row_[id] = 0;
  }

  void on_round(congest::RoundCtx& ctx) override {
    // Failure notices first: a node that learns of a crash this round (own
    // detector verdict, or a kFailNotice from a neighbor) degrades before
    // doing anything else, and forwards the notice exactly once.
    absorb_failure_notices(ctx);

    // Group this round's flood receipts by root: new roots must be forwarded
    // to everyone except their same-round senders (Claim 1's rule, which also
    // keeps every girth witness genuine). The per-root sender sets live in a
    // flat bitset over neighbor indices, one word-aligned slot per root, so
    // a round with many concurrent floods does bit tests instead of walking
    // per-root vectors.
    if (excl_stride_ == 0) {
      excl_stride_ = std::max<std::size_t>(
          64, ((std::size_t{ctx.degree()} + 63) / 64) * 64);
    }
    round_excl_.clear_prefix(round_roots_.size() * excl_stride_);
    round_roots_.clear();

    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      switch (r.msg.kind) {
        case kApspFlood:
          // Handled even in degraded mode: relaying in-flight floods costs
          // nothing extra and maximizes surviving coverage.
          handle_flood(ctx, r);
          break;
        case kPebble:
          // A degraded node swallows the pebble — no new floods are started
          // behind a failure, so the traversal ends with the notice.
          if (!degraded_) handle_pebble(ctx);
          break;
        case kBcast:
          if (collect_bcast_.handle(r)) {
            arm_summary(ctx);
          } else if (result_bcast_.handle(r)) {
            adopt_result();
          }
          break;
        case kAggUp:
          summary_up_.handle(r);
          break;
        default:
          break;
      }
    }

    tree_.advance(ctx);

    // Root: kick off the pebble once T1 is complete.
    if (id_ == 0 && tree_.root_complete() && !visited_ && !degraded_) {
      handle_pebble(ctx);  // the pebble "enters" the root
    }

    // Scheduled actions fire one round after the pebble's first visit. A
    // degraded node still starts its already-scheduled flood (free coverage)
    // but keeps the pebble.
    if (visited_ && !acted_ && ctx.round() >= act_round_) {
      start_own_flood(ctx);
      if (!degraded_) forward_pebble(ctx);
      acted_ = true;
    }

    flush_new_roots(ctx);

    if (aggregate_ && !degraded_) run_aggregation(ctx);
  }

  bool done() const override {
    // An undelivered failure notice keeps the node schedulable so the
    // notice flood gets out (the detector's verdict arrives between rounds).
    if (notice_pending_) return false;
    if (degraded_) return !visited_ || acted_;
    if (!visited_ || !acted_) return false;
    if (!aggregate_) return true;
    return have_result_ && result_bcast_.idle();
  }

  void on_neighbor_down(std::uint32_t, std::uint64_t) override {
    notice_pending_ = true;
  }

  // -- Harvest (after the run) ------------------------------------------
  const std::vector<std::uint32_t>& dist_row() const { return dist_row_; }
  const std::vector<std::uint32_t>& parent_row() const { return parent_row_; }
  const TreeMachine& tree() const { return tree_; }
  std::uint32_t local_ecc() const { return local_ecc_; }
  std::uint32_t diameter() const { return result_[0]; }
  std::uint32_t radius() const { return result_[1]; }
  std::uint32_t girth_wire() const { return result_[2]; }
  bool is_center() const { return local_ecc_ == result_[1]; }
  bool is_peripheral() const { return local_ecc_ == result_[0]; }
  bool degraded() const { return degraded_; }
  bool has_result() const { return have_result_; }

 private:
  void absorb_failure_notices(congest::RoundCtx& ctx) {
    bool saw = notice_pending_;
    notice_pending_ = false;
    notice_exclude_.clear();
    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind == kFailNotice) {
        saw = true;
        notice_exclude_.push_back(r.from_index);
      }
    }
    if (!saw || degraded_) return;  // forward-once flood
    degraded_ = true;
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t i = 0; i < deg; ++i) {
      if (std::find(notice_exclude_.begin(), notice_exclude_.end(), i) !=
          notice_exclude_.end()) {
        continue;
      }
      ctx.send(i, congest::Message::make(kFailNotice));
    }
  }
  void handle_flood(congest::RoundCtx& ctx, const congest::Received& r) {
    const std::uint32_t root = r.msg.f[0];
    const std::uint32_t d = r.msg.f[1];
    if (dist_row_[root] == kInfDist) {
      dist_row_[root] = d;
      parent_row_[root] = r.from_index;  // Remark 4: parent in T_root
      ctx.trace_frontier(root, d);  // kFrontier: root's BFS wave reached us
      const std::size_t slot = round_roots_.size();
      round_roots_.push_back(root);
      // Reused slot words were zeroed by the previous flush's clear_prefix
      // (the stride is word-aligned, so the prefix covers them exactly).
      round_excl_.ensure((slot + 1) * excl_stride_);
      round_excl_.set(slot * excl_stride_ + r.from_index);
    } else {
      // Duplicate receipt: a cycle witness (Lemma 7). If the root became
      // known this very round, the sender is a co-parent and must also be
      // excluded from the forward. Roots are unique in round_roots_ (a root
      // is appended only on its first receipt), so stop at the hit.
      girth_candidate_ = std::min(girth_candidate_, dist_row_[root] + d);
      for (std::size_t s = 0; s < round_roots_.size(); ++s) {
        if (round_roots_[s] == root) {
          round_excl_.set(s * excl_stride_ + r.from_index);
          break;
        }
      }
    }
  }

  void flush_new_roots(congest::RoundCtx& ctx) {
    const std::uint32_t deg = ctx.degree();
    for (std::size_t s = 0; s < round_roots_.size(); ++s) {
      const std::uint32_t root = round_roots_[s];
      const std::uint32_t d = dist_row_[root] + 1;
      const std::size_t base = s * excl_stride_;
      for (std::uint32_t i = 0; i < deg; ++i) {
        if (round_excl_.test(base + i)) continue;
        ctx.send(i, congest::Message::make(kApspFlood, root, d));
      }
    }
    round_excl_.clear_prefix(round_roots_.size() * excl_stride_);
    round_roots_.clear();
  }

  void handle_pebble(congest::RoundCtx& ctx) {
    if (!visited_) {
      // First visit: wait one round, then start our BFS and move the pebble.
      visited_ = true;
      act_round_ = ctx.round() + 1;
    } else {
      forward_pebble(ctx);  // revisit: the pebble moves on immediately
    }
  }

  void start_own_flood(congest::RoundCtx& ctx) {
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t i = 0; i < deg; ++i) {
      ctx.send(i, congest::Message::make(kApspFlood, id_, 1));
    }
  }

  void forward_pebble(congest::RoundCtx& ctx) {
    const auto& kids = tree_.children();
    if (child_cursor_ < kids.size()) {
      ctx.send(kids[child_cursor_++], congest::Message::make(kPebble));
    } else if (tree_.parent_index() != kNoParent) {
      ctx.send(tree_.parent_index(), congest::Message::make(kPebble));
    } else {
      // Root: traversal complete. Every flood has started by now; the last
      // one quiesces within 2*ecc(root) + 2 more rounds (Fact 1: D <= 2 ecc).
      traversal_done_ = true;
      collect_round_ = ctx.round() + 2 * std::uint64_t{tree_.root_ecc()} + 2;
    }
  }

  void arm_summary(congest::RoundCtx& ctx) {
    // COLLECT has arrived: all floods are over; fold
    // (max ecc, min ecc, min girth witness) to the root.
    local_ecc_ = 0;
    for (const std::uint32_t d : dist_row_) {
      local_ecc_ = std::max(local_ecc_, d);  // connected: all finite
    }
    // On a disconnected input local_ecc_ is kInfDist; clamp to the wire
    // sentinel so the leader's component still quiesces and the run fails
    // with the documented RoundLimitError (other components never finish).
    const std::uint32_t inf = congest::wire_infinity(n_);
    local_ecc_ = std::min(local_ecc_, inf);
    summary_up_.arm(local_ecc_, local_ecc_,
                    std::min(girth_candidate_, inf));
    (void)ctx;
  }

  void adopt_result() {
    result_ = {result_bcast_.value(0), result_bcast_.value(1),
               result_bcast_.value(2)};
    have_result_ = true;
  }

  void run_aggregation(congest::RoundCtx& ctx) {
    // Root: fire COLLECT at the scheduled round.
    if (id_ == 0 && traversal_done_ && !collect_fired_ &&
        ctx.round() >= collect_round_) {
      collect_fired_ = true;
      collect_bcast_.start(0);
      arm_summary(ctx);
    }
    collect_bcast_.advance(ctx, tree_);
    summary_up_.advance(ctx, tree_);
    if (id_ == 0 && summary_up_.complete() && !result_fired_) {
      result_fired_ = true;
      result_bcast_.start(summary_up_.value(0), summary_up_.value(1),
                          summary_up_.value(2));
      adopt_result();
    }
    result_bcast_.advance(ctx, tree_);
  }

  NodeId id_;
  NodeId n_;
  bool aggregate_;

  TreeMachine tree_;
  std::vector<std::uint32_t> dist_row_;
  std::vector<std::uint32_t> parent_row_;  // neighbor index toward each root

  // Degraded mode (crash survival).
  bool notice_pending_ = false;  // detector verdict awaiting its flood
  bool degraded_ = false;
  std::vector<std::uint32_t> notice_exclude_;

  // Pebble state.
  bool visited_ = false;
  bool acted_ = false;
  std::uint64_t act_round_ = 0;
  std::size_t child_cursor_ = 0;
  bool traversal_done_ = false;

  // Flood bookkeeping for the current round, flat: the roots first heard
  // this round, plus one word-aligned bitset slot per root marking the
  // same-round senders to exclude from the forward (capacity reused across
  // rounds; see DESIGN.md §16).
  std::vector<std::uint32_t> round_roots_;
  Bitset round_excl_;
  std::size_t excl_stride_ = 0;  // bits per root slot (degree, word-rounded)

  // Aggregation.
  std::uint32_t girth_candidate_ = kInfDist;
  std::uint32_t local_ecc_ = 0;
  Broadcast collect_bcast_;
  Convergecast summary_up_;
  Broadcast result_bcast_;
  std::uint64_t collect_round_ = 0;
  bool collect_fired_ = false;
  bool result_fired_ = false;
  bool have_result_ = false;
  std::array<std::uint32_t, 3> result_{};
};

}  // namespace

ApspResult run_pebble_apsp(const Graph& g, const ApspOptions& options) {
  const NodeId n = g.num_nodes();
  congest::Engine engine(g, options.engine);
  engine.init([&](NodeId v) {
    return std::make_unique<PebbleApspProcess>(v, n, options.aggregate);
  });

  ApspResult out;
  // run_bounded so degraded terminations surface as a status instead of an
  // exception; genuine stalls (e.g. disconnected inputs) and congestion
  // violations keep their documented throwing behavior.
  const congest::Outcome outcome = engine.run_bounded();
  if (outcome.status == congest::RunStatus::kRoundLimit) {
    throw congest::RoundLimitError(outcome.message);
  }
  if (outcome.status == congest::RunStatus::kCongestion) {
    throw congest::CongestionError(outcome.message);
  }
  out.status = outcome.status;
  out.stats = outcome.stats;
  out.round_activity = engine.round_activity();
  out.dist = DistanceMatrix(n);
  out.next_hop.assign(n, std::vector<NodeId>(n, kNoNextHop));
  out.ecc.resize(n);
  out.is_center.assign(n, 0);
  out.is_peripheral.assign(n, 0);
  out.survived.resize(n);
  for (NodeId v = 0; v < n; ++v) out.survived[v] = engine.crashed(v) ? 0 : 1;

  const std::uint32_t inf = congest::wire_infinity(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<PebbleApspProcess>(v);
    const auto nbrs = g.neighbors(v);
    for (NodeId u = 0; u < n; ++u) {
      out.dist.set(v, u, p.dist_row()[u]);
      if (p.parent_row()[u] != kNoParent) {
        out.next_hop[v][u] = nbrs[p.parent_row()[u]];
      }
    }
    if (out.survived[v] != 0 && p.degraded()) out.degraded_nodes.push_back(v);
    if (v == 0) {
      out.leader_ecc = p.tree().root_ecc();
      out.tree_cycle_evidence = p.tree().root_cycle_evidence();
    }
    if (options.aggregate) {
      out.ecc[v] = p.local_ecc();
      out.is_center[v] = p.is_center() ? 1 : 0;
      out.is_peripheral[v] = p.is_peripheral() ? 1 : 0;
      if (v == 0) {
        out.diameter = p.diameter();
        out.radius = p.radius();
        out.girth = p.girth_wire() >= inf ? seq::kInfGirth : p.girth_wire();
      }
    }
  }
  out.aggregates_valid =
      options.aggregate && out.status == congest::RunStatus::kCompleted;

  // Coverage accounting: every node is a source; rows are judged over the
  // survivors only. (Fault-free runs trivially report all-complete.)
  std::vector<NodeId> sources(n);
  for (NodeId s = 0; s < n; ++s) sources[s] = s;
  out.coverage = classify_coverage(
      out.survived, sources,
      [&](NodeId v, NodeId s) { return out.dist.at(v, s); });
  return out;
}

std::vector<NodeId> extract_route(const ApspResult& r, NodeId from,
                                  NodeId to) {
  std::vector<NodeId> route{from};
  NodeId cur = from;
  while (cur != to) {
    const NodeId nh = r.next_hop[cur][to];
    if (nh == kNoNextHop) {
      throw std::logic_error("extract_route: no next hop recorded");
    }
    cur = nh;
    route.push_back(cur);
    if (route.size() > r.dist.n() + 1) {
      throw std::logic_error("extract_route: routing loop");
    }
  }
  return route;
}

}  // namespace dapsp::core
