// Corollaries 1 and 2: min-selectors combining this paper's approximation
// algorithms with the (independent) Peleg-Roditty-Tal ICALP'12 ones.
//
// Corollary 1: a (x,3/2)-approximation of the diameter in
// O(min{D sqrt(n), n/D + D}) = O(n^{3/4} + D) rounds: first learn
// D0 = 2*ecc(leader) in O(D) (Remark 1), then pick the cheaper arm:
//   * "ours":  Theorem 4 with eps = 1/2           — O(n/D + D) rounds,
//   * "PRT":   sequential sampled BFS (baselines)  — O(D sqrt(n)) rounds,
//     reported as ceil(3 * est / 2) so that D <= answer always holds
//     (the arm's raw estimate is a lower bound on D).
//
// Corollary 2: a girth approximation in O(min{n/g + D log(D/g), n}) rounds:
// Theorem 5's refinement with a Theta(n) round budget; if the budget is hit
// the exact Lemma 7 algorithm finishes the job. (The paper's
// O(n^{2/3} + D log(D/g)) variant additionally uses PRT's O(D + sqrt(g n))
// girth algorithm, which belongs to [33]; see DESIGN.md.)
#pragma once

#include <cstdint>

#include "congest/engine.h"
#include "graph/graph.h"
#include "seq/properties.h"

namespace dapsp::core {

enum class DiameterArm { kOurs, kPrt };

struct CombinedDiameterResult {
  std::uint32_t estimate = 0;  // D <= estimate <= (3/2) D (PRT arm: whp)
  DiameterArm arm = DiameterArm::kOurs;
  std::uint32_t d0 = 0;
  congest::RunStats stats;  // including the O(D) probe
};

struct CombinedDiameterOptions {
  congest::EngineConfig engine{};
  std::uint64_t seed = 1;
};

CombinedDiameterResult run_combined_diameter_approx(
    const Graph& g, const CombinedDiameterOptions& options = {});

struct CombinedGirthResult {
  std::uint32_t estimate = seq::kInfGirth;
  bool used_exact_fallback = false;
  congest::RunStats stats;
};

struct CombinedGirthOptions {
  congest::EngineConfig engine{};
  double epsilon = 0.5;
};

CombinedGirthResult run_combined_girth_approx(
    const Graph& g, const CombinedGirthOptions& options = {});

}  // namespace dapsp::core
