#include "core/combined.h"

#include <algorithm>

#include "baselines/prt_diameter.h"
#include "core/apsp_applications.h"
#include "core/ecc_approx.h"
#include "core/girth.h"
#include "core/girth_approx.h"
#include "util/bits.h"

namespace dapsp::core {

CombinedDiameterResult run_combined_diameter_approx(
    const Graph& g, const CombinedDiameterOptions& options) {
  const NodeId n = g.num_nodes();
  CombinedDiameterResult out;

  // O(D) probe: D0 = 2*ecc(leader) (Remark 1). Both arms' costs can then be
  // predicted and the cheaper one chosen — the paper's min{.} selector.
  const PropertyRun probe = distributed_diameter_2approx(g, options.engine);
  out.stats = probe.stats;
  out.d0 = probe.value;
  const std::uint64_t d = std::max<std::uint64_t>(out.d0 / 2, 1);

  const std::uint64_t cost_ours = std::uint64_t{n} / d + 8 * d;
  const std::uint64_t cost_prt = d * isqrt(std::uint64_t{n});

  if (cost_ours <= cost_prt) {
    out.arm = DiameterArm::kOurs;
    EccApproxOptions eo;
    eo.engine = options.engine;
    eo.epsilon = 0.5;
    const EccApproxResult r = run_ecc_approx(g, eo);
    congest::accumulate(out.stats, r.stats);
    out.estimate = r.diameter_estimate;
  } else {
    out.arm = DiameterArm::kPrt;
    baselines::PrtDiameterOptions po;
    po.engine = options.engine;
    po.seed = options.seed;
    const baselines::PrtDiameterResult r = baselines::run_prt_diameter(g, po);
    congest::accumulate(out.stats, r.stats);
    // The arm's estimate is a max of true eccentricities: a lower bound on D
    // with est >= D/2 always (Fact 1); scale so that D <= answer <= (3/2)D
    // whenever est >= 2D/3 (whp).
    out.estimate = (3 * r.estimate + 1) / 2;
  }
  return out;
}

CombinedGirthResult run_combined_girth_approx(
    const Graph& g, const CombinedGirthOptions& options) {
  CombinedGirthResult out;
  GirthApproxOptions ao;
  ao.engine = options.engine;
  ao.epsilon = options.epsilon;
  ao.round_budget = 3 * std::uint64_t{g.num_nodes()} + 256;
  const GirthApproxResult approx = run_girth_approx(g, ao);
  out.stats = approx.stats;
  out.estimate = approx.was_tree ? seq::kInfGirth : approx.girth_estimate;
  if (approx.was_tree || approx.exact) return out;

  // Did the refinement finish within its budget? If it stopped early because
  // of the budget, fall back to the exact O(n) algorithm (Lemma 7), keeping
  // the total at O(n).
  const auto& last = approx.iterations.back();
  const bool converged =
      static_cast<double>(last.k) <=
      options.epsilon * static_cast<double>(approx.girth_estimate) / 4.0;
  if (!converged) {
    out.used_exact_fallback = true;
    const GirthRun exact = run_girth(g, options.engine);
    congest::accumulate(out.stats, exact.stats);
    out.estimate = exact.girth;
  }
  return out;
}

}  // namespace dapsp::core
