// Certified outputs for degraded runs (DESIGN.md §10).
//
// When a run ends kDegraded (crash-stops, NeighborDown verdicts), the
// harvested distance tables are partial: some rows are exact, some were cut
// off mid-flood, some are gone with their crashed holders. This module turns
// "partial" into a checked statement, two ways:
//
//  1. classify_coverage(): a local bookkeeping pass labelling each source row
//     kComplete / kPartial / kLost over the *surviving* nodes — the
//     accounting the degraded harvest reports.
//
//  2. certify_rows(): a distributed O(1)-rounds-per-row verifier, run as its
//     own CONGEST protocol on the surviving subgraph. For each source s it
//     checks, at every surviving node v with entry d_s(v) and over every
//     surviving edge {u, v}:
//       (a) d_s(s) = 0, and d_s(v) = 0 only at v = s;
//       (b) |d_s(u) - d_s(v)| <= 1, where "infinite vs finite" is a
//           violation (the 1-Lipschitz property of BFS distances);
//       (c) every finite non-source v has a neighbor u with
//           d_s(u) = d_s(v) - 1 (a shortest-path witness).
//     A row passes iff no surviving node reports a violation. These local
//     rules are sound and complete: a row is certified iff its surviving
//     entries are exactly the distances from s in the surviving subgraph.
//     (<=: witness chains descend to the unique 0 at s, so entries are upper
//     bounds on nothing — they bound true distance from above via (c) and
//     from below via (b) along a true shortest path; both give equality.
//     Components not containing s certify as all-infinite.) In particular a
//     stale row learned through a crashed relay fails (c) at its minimum
//     surviving entry, and a crashed source's row is never certifiable —
//     no survivor may claim 0.
//
//     Each check uses one broadcast round plus one comparison round per row,
//     matching the O(1)-round certificate flavor of the paper's lower-bound
//     section (checking is as hard as computing only when done from scratch).
//
//  3. FloodCongestionMonitor: an engine-level observer asserting Lemma 1 /
//     Claim 1 at runtime — in a fault-free pebble run, no directed edge ever
//     carries two kApspFlood messages in one round. Wire it into
//     EngineConfig::send_observer on an *unwrapped* run (wrapped runs put
//     kRel* frames on the wire, not protocol messages). Under the sharded
//     observer API (DESIGN.md §12) the hook is invoked from the engine's
//     serial replay of per-shard event buffers — global send order, one
//     thread — so its unsynchronized state is safe at every thread count and
//     the monitor no longer costs the parallel speedup. The same check runs
//     offline via scan() over a recorded TraceLog.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

// Coverage of one source row over the surviving nodes.
enum class RowCoverage : std::uint8_t {
  kLost,      // (almost) nothing: at most the source's own trivial 0 survives
  kPartial,   // some surviving nodes know their distance, some do not
  kComplete,  // every surviving node has a finite entry for this source
};

const char* to_string(RowCoverage c) noexcept;

// entry(v, s): the distance-to-source-s value node v holds (kInfDist when
// unknown). The indirection lets one certifier serve pebble-APSP rows,
// S-SP deltas, and hand-built tables in tests.
using DistEntryFn = std::function<std::uint32_t(NodeId v, NodeId source)>;

// Labels each source row. survived[v] != 0 marks the nodes still alive at
// harvest; entries of dead nodes are never consulted.
std::vector<RowCoverage> classify_coverage(
    std::span<const std::uint8_t> survived, std::span<const NodeId> sources,
    const DistEntryFn& entry);

struct CertifyOptions {
  congest::EngineConfig engine{};
};

struct CertifyReport {
  // certified[k] != 0: row sources[k] passed every local check at every
  // surviving node.
  std::vector<std::uint8_t> certified;
  std::uint32_t rows_certified = 0;
  // Individual local-rule violations, summed over nodes and rows (a single
  // bad entry typically trips several).
  std::uint64_t checks_failed = 0;
  congest::RunStats stats;

  bool all_certified() const noexcept {
    return rows_certified == certified.size();
  }
};

// Runs the distributed verifier over the surviving subgraph (dead nodes are
// crash-stopped at round 0, so their entries neither broadcast nor judge).
// Two engine rounds per row. Throws std::invalid_argument on size mismatches
// or out-of-range sources.
CertifyReport certify_rows(const Graph& g,
                           std::span<const std::uint8_t> survived,
                           std::span<const NodeId> sources,
                           const DistEntryFn& entry,
                           const CertifyOptions& options = {});

// Lemma 1 monitor: counts kApspFlood sends per (directed edge, round); any
// second flood message on the same edge-round is a violation of the paper's
// zero-congestion claim. The hook is a copyable std::function sharing this
// monitor's state, so the monitor can be inspected after the run.
class FloodCongestionMonitor {
 public:
  explicit FloodCongestionMonitor(const Graph& g);

  // Install as EngineConfig::send_observer (also reachable through
  // ApspOptions::engine). Invoked serially, in global send order, from the
  // engine's post-round event replay.
  congest::EngineConfig::SendObserver hook() const;

  // Offline variant: runs the same per-(edge, round) check over a recorded
  // event stream (kSend events only), e.g. a TraceLog's events(). Counts
  // accumulate with any live hook() observations.
  void scan(std::span<const congest::TraceEvent> events);

  std::uint64_t flood_sends() const noexcept;
  std::uint64_t violations() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace dapsp::core
