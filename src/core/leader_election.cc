#include "core/leader_election.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/primitives/bfs_process.h"

namespace dapsp::core {
namespace {

constexpr std::uint8_t kMinLabel = 90;  // message: (best label seen)

class ElectionProcess final : public congest::Process {
 public:
  ElectionProcess(std::uint32_t label, std::uint64_t run_rounds)
      : best_(label), run_rounds_(run_rounds) {}

  void on_round(congest::RoundCtx& ctx) override {
    bool improved = ctx.round() == 0;  // announce own label in round 0
    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind != kMinLabel) continue;
      if (r.msg.f[0] < best_) {
        best_ = r.msg.f[0];
        improved = true;
      }
    }
    if (improved && ctx.round() < run_rounds_) {
      ctx.send_all(congest::Message::make(kMinLabel, best_));
    }
    finished_ = ctx.round() >= run_rounds_;
  }

  bool done() const override { return finished_; }

  std::uint32_t best() const { return best_; }

 private:
  std::uint32_t best_;
  std::uint64_t run_rounds_;
  bool finished_ = false;
};

}  // namespace

LeaderElectionResult run_leader_election(const Graph& g,
                                         std::span<const std::uint32_t> labels,
                                         const LeaderElectionOptions& o) {
  const NodeId n = g.num_nodes();
  if (labels.size() != n) {
    throw std::invalid_argument("leader election: one label per node");
  }
  const std::uint64_t rounds =
      o.diameter_hint == 0 ? std::uint64_t{n} : std::uint64_t{o.diameter_hint} + 1;

  congest::Engine engine(g, o.engine);
  engine.init([&](NodeId v) {
    return std::make_unique<ElectionProcess>(labels[v], rounds);
  });

  LeaderElectionResult out;
  out.stats = engine.run();
  out.believed_label.resize(n);
  out.leader_label = 0xffffffffu;
  for (NodeId v = 0; v < n; ++v) {
    out.believed_label[v] = engine.process_as<ElectionProcess>(v).best();
    if (labels[v] < out.leader_label) {
      out.leader_label = labels[v];
      out.leader = v;
    }
  }
  return out;
}

Graph relabel_leader_first(const Graph& g, NodeId leader,
                           std::vector<NodeId>* perm_out) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == leader) {
      perm[v] = 0;
    } else {
      perm[v] = v < leader ? v + 1 : v;
    }
  }
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (const Edge& e : g.edges()) edges.push_back({perm[e.u], perm[e.v]});
  if (perm_out != nullptr) *perm_out = perm;
  return Graph(n, edges);
}

}  // namespace dapsp::core
