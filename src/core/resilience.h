// Overload robustness for the serving path (DESIGN.md §18): deadline
// budgets, admission control, seeded retry/backoff, circuit-broken repair,
// and brownout — all deterministic under a virtual clock.
//
// The paper's discipline is doing APSP inside a hard per-round budget; this
// layer extends that budget-consciousness to the serving tier. Five pieces:
//
//   * ServeStatus — the answer-level status lattice. RowStatus (kExact /
//     kRepaired / kStale) is a *row* property serialized inside DQRY blobs
//     and checkpoints; ServeStatus is what a *request* is told, and adds the
//     overload outcomes: kApproximate (a LabelCache estimate served under
//     brownout — never claims exactness, the PR's status-lattice bugfix),
//     kDeadlineExceeded (the work budget ran out; the answer is a truncated
//     partial result), kShed (admission refused; no answer at all). The two
//     enums are deliberately separate so the wire format never widens.
//
//   * AdmissionController — per-priority-class token bucket (integer
//     micro-token arithmetic, so refill is exact at any virtual-clock step),
//     bounded concurrency, and a bounded-wait FIFO queue. Every refusal is
//     counted by reason (rate / queue-full / queue-wait) — load is shed
//     explicitly, never silently queued.
//
//   * Retry policy — decorrelated jitter (delay uniform in [base, 3*prev],
//     capped), deterministic from a (seed, request, attempt) key using the
//     same keyed-stream construction as the fault injector. Co-located
//     retriers spread out; reruns reproduce byte-for-byte.
//
//   * CircuitBreaker / BreakerRepairGate — wraps the service's repair
//     ladder via core/service.h's RepairGate hook. K consecutive failed
//     repairs open it: the service stops burning engine rounds on doomed
//     ladders (epochs report kSuppressed), pins the last certified snapshot
//     and serves degraded. After a cooldown (measured in epochs — a virtual
//     clock, never wall time) it half-opens and one probe repair is
//     re-admitted; success closes it, failure re-opens. scrub() bypasses
//     the gate but reports its outcome, so maintenance can always heal.
//
//   * Brownout + overload simulation — a seeded virtual-clock injector
//     generates arrival streams (class mix, bursts), and run_overload_sim
//     drives them through a real QuerySnapshot with real reads: admission,
//     deadline-budgeted row scans, seeded transient failures + retries, and
//     a brownout ladder that swaps heavy exact row scans for LabelCache
//     estimate rows when the wait queues back up (the label table is
//     O(n*|DOM|) bytes and stays cache-resident under load while the O(n^2)
//     exact tables thrash — modeled as a fixed cell-cost divisor). Every
//     estimate-served answer carries kApproximate. Time is virtual
//     microseconds; work is counted in table cells (WorkBudget) and
//     converted at a fixed cells-per-us rate, so latency curves, shed
//     rates and the breaker schedule are bit-identical at any thread count
//     and on any host.
//
// HealthReport rolls the whole picture (staleness, breaker, shed/retry/
// deadline/brownout counters) into one struct with a MetricsRegistry
// exporter; scripts/validate_trace.py cross-checks the kShed/kBreaker trace
// events against those counters.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "congest/trace.h"
#include "core/query.h"
#include "core/service.h"
#include "util/metrics.h"

namespace dapsp::core {

// ---- Answer-level status lattice -----------------------------------------

// What a request is told about its answer. Ordered by decreasing claim
// strength; the first three mirror RowStatus, the rest are overload
// outcomes that only this layer can produce.
enum class ServeStatus : std::uint8_t {
  kExact = 0,             // consulted row certified, values exact
  kRepaired = 1,          // certified after an incremental heal
  kStale = 2,             // row certification pending/failed; values served
  kApproximate = 3,       // label-estimate answer (brownout): additive
                          // <= 2k slack, never claims exactness
  kDeadlineExceeded = 4,  // budget ran out; truncated partial result
  kShed = 5,              // admission refused; no result
};

const char* to_string(ServeStatus s) noexcept;

// The row-status embedding. Estimate-sourced answers must NOT go through
// this — they are kApproximate regardless of how fresh the label rows are.
constexpr ServeStatus serve_status_from_row(RowStatus s) noexcept {
  return static_cast<ServeStatus>(s);
}

// ---- Priority classes and admission --------------------------------------

enum class PriorityClass : std::uint8_t {
  kInteractive = 0,  // user-facing point lookups; lowest latency tolerance
  kBatch = 1,        // analytical row scans (k-nearest, ...)
  kBackground = 2,   // scrub-style sweeps (eccentricity, ...)
};

inline constexpr std::size_t kPriorityClassCount = 3;

const char* to_string(PriorityClass c) noexcept;

// Why a request was shed (the kShed trace event's aux value).
enum class ShedReason : std::uint8_t {
  kRate = 0,       // token bucket empty
  kQueueFull = 1,  // wait queue at capacity
  kQueueWait = 2,  // queued longer than the class allows
};

const char* to_string(ShedReason r) noexcept;

struct ClassPolicy {
  // Token-bucket refill rate (tokens per virtual second; 0 = no rate
  // limit) and depth. One admission costs one token.
  std::uint32_t tokens_per_sec = 0;
  std::uint32_t burst = 1;
  // Concurrency bound: requests running at once.
  std::uint32_t max_concurrent = 1;
  // Bounded-wait queue: at most this many requests waiting for a slot
  // (0 = no queue, a full class sheds immediately), each for at most
  // max_wait_us virtual microseconds (0 = no wait bound).
  std::uint32_t max_queue = 0;
  std::uint64_t max_wait_us = 0;
};

struct AdmissionConfig {
  std::array<ClassPolicy, kPriorityClassCount> classes{};

  ClassPolicy& policy(PriorityClass c) {
    return classes[static_cast<std::size_t>(c)];
  }
  const ClassPolicy& policy(PriorityClass c) const {
    return classes[static_cast<std::size_t>(c)];
  }
};

enum class AdmitResult : std::uint8_t {
  kAdmitted = 0,  // a concurrency slot was granted; run now
  kQueued = 1,    // waiting for a slot (bounded queue, bounded wait)
  kShed = 2,      // refused; see reason
};

struct AdmissionDecision {
  AdmitResult result = AdmitResult::kShed;
  ShedReason reason = ShedReason::kRate;  // meaningful only when kShed
};

struct ClassCounters {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;  // granted a slot (directly or via the queue)
  std::uint64_t queued = 0;    // entered the wait queue
  std::uint64_t shed_rate = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_queue_wait = 0;

  std::uint64_t shed_total() const noexcept {
    return shed_rate + shed_queue_full + shed_queue_wait;
  }
};

// Deterministic admission: token bucket + bounded concurrency + bounded
// wait queue per class. Driven by a caller-supplied monotone virtual clock
// in microseconds — never reads wall time. Single-threaded by design (the
// serving loop owns it); determinism is the point.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  // One request arrives at virtual time now_us. kAdmitted took a slot
  // (pair it with release()); kQueued parked it; kShed counted it.
  AdmissionDecision offer(PriorityClass c, std::uint64_t id,
                          std::uint64_t now_us);

  // A running request of class c finished: frees its slot.
  void release(PriorityClass c);

  struct Ready {
    std::uint64_t id = 0;
    std::uint64_t enqueued_us = 0;
  };

  // Pops the next queued request of class c that can start at now_us, after
  // reaping (and reporting via shed_out, when non-null) every queue entry
  // whose bounded wait expired. Returns nullopt when nothing can start.
  // Expired entries are reaped even when no slot is free, so a stalled
  // class still sheds instead of queueing silently.
  std::optional<Ready> next_ready(PriorityClass c, std::uint64_t now_us,
                                  std::vector<Ready>* shed_out = nullptr);

  std::uint32_t running(PriorityClass c) const noexcept;
  std::size_t queue_depth(PriorityClass c) const noexcept;
  std::size_t total_queued() const noexcept;
  const ClassCounters& counters(PriorityClass c) const noexcept;

 private:
  struct Bucket {
    ClassPolicy policy;
    // 1 token = 1'000'000 micro-tokens: refill is integer-exact at any
    // clock step (tokens_per_sec micro-tokens accrue per microsecond).
    std::uint64_t micro_tokens = 0;
    std::uint64_t last_refill_us = 0;
    std::uint32_t running = 0;
    std::deque<Ready> queue;
    ClassCounters counters;
  };

  Bucket& bucket(PriorityClass c) {
    return buckets_[static_cast<std::size_t>(c)];
  }
  const Bucket& bucket(PriorityClass c) const {
    return buckets_[static_cast<std::size_t>(c)];
  }
  void refill(Bucket& b, std::uint64_t now_us);

  std::array<Bucket, kPriorityClassCount> buckets_;
};

// ---- Seeded jittered retry ------------------------------------------------

struct RetryPolicy {
  std::uint32_t max_attempts = 3;  // total tries (first attempt included)
  std::uint64_t base_us = 100;     // jitter floor (0 = retry immediately)
  std::uint64_t cap_us = 10'000;   // envelope ceiling
  std::uint64_t seed = 1;
};

// Backoff before retry `attempt` (1-based) of request `request_id`:
// decorrelated jitter, uniform in [base, min(cap, 3 * max(base, prev_us))],
// deterministic from the (seed, request, attempt) stream — the retry-side
// sibling of the service's decorrelated_backoff_ms. prev_us is the previous
// delay of the same request (0 before the first retry).
std::uint64_t retry_delay_us(const RetryPolicy& policy,
                             std::uint64_t request_id, std::uint32_t attempt,
                             std::uint64_t prev_us) noexcept;

// ---- Circuit breaker ------------------------------------------------------

// Numeric values match the kBreaker trace-event encoding and
// RepairGate::state().
enum class BreakerState : std::uint8_t {
  kClosed = 0,    // repairs flow; consecutive failures are counted
  kOpen = 1,      // repairs refused until the cooldown elapses
  kHalfOpen = 2,  // probe repairs admitted; success closes, failure re-opens
};

const char* to_string(BreakerState s) noexcept;

struct BreakerConfig {
  std::uint32_t failure_threshold = 3;  // consecutive failures to open
  std::uint64_t cooldown_ticks = 8;     // open -> half-open after this many
                                        // ticks (epochs, for the repair gate)
  std::uint32_t probe_successes = 1;    // half-open successes to close
};

// Tick-driven circuit breaker. The clock is whatever monotone counter the
// caller feeds in (service epochs for the repair gate, virtual microseconds
// elsewhere) — never wall time, so open/half-open/close schedules are
// deterministic and thread-count-independent.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config = {});

  // May the protected operation run at `now`? Transitions kOpen ->
  // kHalfOpen once the cooldown has elapsed (and then admits the probe).
  bool allow(std::uint64_t now);

  // kClosed: resets the failure streak. kHalfOpen: counts a probe success,
  // closing at probe_successes. kOpen: closes directly — the success came
  // from a path that bypasses allow() (the service's scrub), and a fully
  // certified table is a fully healed circuit.
  void record_success(std::uint64_t now);

  // kClosed: extends the streak, opening at failure_threshold. kHalfOpen:
  // the probe failed — re-open and restart the cooldown. kOpen: re-arms
  // the cooldown (a bypassing scrub failed; stay open longer).
  void record_failure(std::uint64_t now);

  BreakerState state() const noexcept { return state_; }
  std::uint32_t consecutive_failures() const noexcept { return failures_; }
  std::uint64_t transitions() const noexcept { return transitions_; }
  std::uint64_t opens() const noexcept { return opens_; }

 private:
  void become(BreakerState next);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint32_t failures_ = 0;         // consecutive, while closed
  std::uint32_t probes_succeeded_ = 0; // while half-open
  std::uint64_t opened_at_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t opens_ = 0;
};

// The RepairGate adapter: plugs a CircuitBreaker into
// ServiceConfig::repair_gate with the service epoch as the tick.
class BreakerRepairGate final : public RepairGate {
 public:
  explicit BreakerRepairGate(const BreakerConfig& config = {})
      : breaker_(config) {}

  bool allow_repair(std::uint64_t epoch) override {
    return breaker_.allow(epoch);
  }
  void on_repair_outcome(std::uint64_t epoch, bool certified) override {
    if (certified) {
      breaker_.record_success(epoch);
    } else {
      breaker_.record_failure(epoch);
    }
  }
  std::uint8_t state() const override {
    return static_cast<std::uint8_t>(breaker_.state());
  }

  const CircuitBreaker& breaker() const noexcept { return breaker_; }

 private:
  CircuitBreaker breaker_;
};

// ---- Brownout -------------------------------------------------------------

enum class BrownoutLevel : std::uint8_t {
  kNormal = 0,     // exact answers
  kEstimates = 1,  // heavy row scans served from LabelCache estimate rows,
                   // marked kApproximate
};

struct BrownoutPolicy {
  // Hysteresis on the controller's total queue depth: level rises to
  // kEstimates when depth >= enter_queue_depth (0 disables brownout
  // entirely) and falls back once depth <= exit_queue_depth.
  std::uint32_t enter_queue_depth = 0;
  std::uint32_t exit_queue_depth = 0;
};

class BrownoutController {
 public:
  explicit BrownoutController(const BrownoutPolicy& policy)
      : policy_(policy) {}

  BrownoutLevel update(std::size_t total_queued) noexcept;
  BrownoutLevel level() const noexcept { return level_; }
  std::uint64_t enters() const noexcept { return enters_; }
  std::uint64_t exits() const noexcept { return exits_; }

 private:
  BrownoutPolicy policy_;
  BrownoutLevel level_ = BrownoutLevel::kNormal;
  std::uint64_t enters_ = 0;
  std::uint64_t exits_ = 0;
};

// ---- Health ---------------------------------------------------------------

// One structured snapshot of the serving tier's robustness state: what an
// operator (or the overload smoke) needs to answer "is this thing healthy,
// and if not, is it degrading the way it promised to".
struct HealthReport {
  // Staleness of the snapshot being served.
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t snapshot_sequence = 0;
  std::uint32_t stale_rows = 0;
  bool degraded = false;

  // Repair circuit breaker (from the gate / ServiceStats).
  std::uint8_t breaker_state = 0;  // BreakerState encoding
  std::uint64_t breaker_transitions = 0;
  std::uint64_t repairs_suppressed = 0;

  // Admission / serving counters (summed over classes).
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_rate = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_queue_wait = 0;
  std::uint64_t deadline_truncated = 0;
  std::uint64_t approximate_served = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_exhausted = 0;
  std::uint64_t slots_exhausted = 0;  // SnapshotStore reader saturation
  std::uint8_t brownout_level = 0;    // BrownoutLevel encoding
  std::uint64_t brownout_enters = 0;

  std::uint64_t shed_total() const noexcept {
    return shed_rate + shed_queue_full + shed_queue_wait;
  }

  // Exports every field as resilience_* counters (the names
  // scripts/validate_trace.py cross-checks against kShed trace events).
  void to_metrics(MetricsRegistry& reg) const;
  std::string debug_string() const;
};

// ---- Seeded virtual-clock overload injection ------------------------------

// One synthetic request. kind mirrors the class 1:1 by default (interactive
// -> p2p batches, batch -> k-nearest, background -> eccentricity), so the
// classes have genuinely different cost profiles.
struct SimRequest {
  std::uint64_t id = 0;
  std::uint64_t at_us = 0;  // virtual arrival time
  PriorityClass cls = PriorityClass::kInteractive;
  std::uint8_t kind = 0;  // 0 p2p-batch, 1 k-nearest, 2 eccentricity
  NodeId u = 0;           // source node (k-nearest / eccentricity)
  std::uint32_t k = 0;    // k-nearest k
};

// The virtual cost model: one table cell takes 1/kSimCellsPerUs virtual
// microseconds to scan, every request pays a fixed overhead, and a
// brownout-served estimate row costs 1/kSimBrownoutDivisor of the exact
// scan (the label table is O(n*|DOM|) bytes and cache-resident under load;
// the exact tables are O(n^2) and thrash).
inline constexpr std::uint64_t kSimCellsPerUs = 16;
inline constexpr std::uint64_t kSimFixedOverheadUs = 2;
inline constexpr std::uint64_t kSimBrownoutDivisor = 8;

struct OverloadConfig {
  std::uint64_t seed = 1;
  std::uint64_t requests = 10'000;
  // Mean offered load (arrivals per virtual second); interarrivals are
  // uniform in [0, 2 * mean] so the stream is irregular but seeded.
  std::uint64_t arrivals_per_sec = 100'000;
  // Every burst_every-th arrival lands together with the next burst_size
  // arrivals at the same instant (0 disables bursts).
  std::uint32_t burst_every = 0;
  std::uint32_t burst_size = 0;
  // Per-request deadline in virtual microseconds (0 = none), converted to a
  // WorkBudget of deadline_us * kSimCellsPerUs cells.
  std::uint64_t deadline_us = 0;
  // Request shapes.
  std::uint32_t batch_pairs = 8;  // pairs per interactive p2p batch
  std::uint32_t k_nearest_k = 4;
  AdmissionConfig admission;
  RetryPolicy retry;
  BrownoutPolicy brownout;
  // Seeded transient failure (snapshot-swap race model) per attempt, in
  // millionths (0 = never, 1'000'000 = always). Drives the retry policy.
  std::uint32_t transient_failure_ppm = 0;
};

// The deterministic arrival stream for a config (sorted by at_us; ids are
// the stream position). Pure function of (config, n).
std::vector<SimRequest> generate_overload_arrivals(const OverloadConfig& cfg,
                                                   NodeId n);

// Mean offered arrivals/sec at which the configured class mix exactly
// saturates its concurrency slots — the 1x point of an offered-load curve.
std::uint64_t saturation_arrivals_per_sec(const OverloadConfig& cfg, NodeId n);

struct SimReport {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;   // granted a slot at some point
  std::uint64_t completed = 0;  // produced an answer (any ServeStatus)
  std::uint64_t shed_rate = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_queue_wait = 0;
  std::uint64_t exact_served = 0;  // kExact / kRepaired answers
  std::uint64_t stale_served = 0;
  std::uint64_t approximate_served = 0;
  std::uint64_t deadline_truncated = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_exhausted = 0;  // all attempts failed
  // Structural assertion: answers whose claimed status overstates what was
  // actually served (estimate or truncated result claiming exact). The
  // status plumbing makes this impossible; the counter proves it stayed 0.
  std::uint64_t overclaims = 0;
  std::uint64_t brownout_enters = 0;
  std::uint64_t brownout_exits = 0;
  std::uint32_t max_total_queued = 0;
  std::uint64_t end_us = 0;    // virtual time of the last completion
  std::uint64_t digest = 0;    // FNV over the completion stream — the
                               // determinism fingerprint
  // Completion-to-arrival latency of every completed request, per class
  // (unsorted; use quantile_us).
  std::array<std::vector<std::uint64_t>, kPriorityClassCount> latency_us;

  std::uint64_t shed_total() const noexcept {
    return shed_rate + shed_queue_full + shed_queue_wait;
  }
  // Smallest latency l with cdf(l) >= q over the class's completions
  // (0 when the class completed nothing).
  std::uint64_t quantile_us(PriorityClass c, double q) const;

  // Rolls the sim counters into a HealthReport (snapshot fields from
  // `snap` when non-null).
  HealthReport health(const QuerySnapshot* snap) const;
};

// Runs the seeded overload simulation against a real snapshot: virtual
// clock, real reads. Emits one kShed trace event per shed request when
// `trace` is non-null (round = virtual us, monotone). Deterministic:
// identical (snapshot bytes, config) => identical SimReport including the
// digest.
SimReport run_overload_sim(const QuerySnapshot& snap,
                           const OverloadConfig& cfg,
                           congest::TraceLog* trace = nullptr);

}  // namespace dapsp::core
