// Durable DAPSP service: write-ahead journal + atomic checkpoint rotation
// (DESIGN.md §15).
//
// DapspService (core/service.h) keeps the APSP answer alive across graph
// churn; this layer keeps it alive across *process death*. The contract is
// the classic WAL protocol:
//
//   ack_and_step(batch):
//     1. append one record (epoch | plan words | encoded batch) to the
//        journal and flush — THE acknowledgement point;
//     2. apply the batch via DapspService::step();
//     3. every checkpoint_every acked batches, rotate a checkpoint and
//        reset the journal.
//
// A kill at any durable byte offset then loses at most the *unacknowledged*
// tail: recover() repairs the journal's torn tail, loads the newest valid
// checkpoint generation (falling back to the previous generation when the
// newest is damaged), replays the journal suffix through the ordinary
// step() path, and hands back the plan words of the last acknowledged
// record so the driver resumes exactly where it acked.
//
// Checkpoint rotation is atomic at every instant: the blob is written to
// `<base>.tmp`, flushed, then renamed over the OLDER generation slot
// (`<base>.g0` / `<base>.g1`) — the last-good generation is never the
// rename target, so a kill mid-write leaves it untouched and a kill before
// the rename leaves both old slots intact. After a successful rotation the
// journal is reset (records ≤ the checkpoint epoch are dead weight); a kill
// between the two steps is safe in either order because replay skips
// records at or below the checkpoint epoch.
//
// Determinism: replay drives the same step() machinery as live operation
// and the service excludes stats from checkpoints, so a killed-and-
// recovered run's next checkpoint is bit-identical to the straight-through
// run's — at any thread count. The crash-point fuzzer
// (tests/test_crashpoint.cc) sweeps kills across every durable byte and
// asserts exactly that, plus "no acknowledged epoch lost".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/service.h"
#include "util/journal.h"

namespace dapsp::core {

// Two-generation checkpoint store under `<base>.g0` / `<base>.g1` with
// `<base>.tmp` as the staging file. All blob bytes flow through a FileSink
// honoring the optional CrashPoint.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string base, CrashPoint* crash = nullptr);

  // Atomically installs `blob` as the newest generation (see header note).
  void rotate(std::span<const std::uint8_t> blob);

  struct Loaded {
    std::vector<std::uint8_t> blob;  // empty when no slot is valid
    bool fallback = false;  // a damaged slot was passed over for a valid one
    // Classification of the slot that was passed over (kMissing when both
    // slots were empty or the chosen one was the only candidate).
    CheckpointError rejected_error = CheckpointError::kMissing;
    CheckpointError slot_errors[2] = {CheckpointError::kMissing,
                                      CheckpointError::kMissing};
  };
  // Classifies both slots and returns the valid one with the larger stored
  // epoch. Never throws on damage — damage is the result.
  Loaded load() const;

  std::string slot_path(int slot) const;  // slot in {0, 1}
  std::string tmp_path() const;

  std::uint64_t rotations() const noexcept { return rotations_; }

 private:
  std::string base_;
  CrashPoint* crash_;
  std::uint64_t rotations_ = 0;
};

struct DurableConfig {
  // Directory holding `journal.wal` and `ckpt.g0` / `ckpt.g1` / `ckpt.tmp`.
  // Created if missing.
  std::string dir;
  // Rotate a checkpoint (and reset the journal) every k acknowledged
  // batches; 0 = only on explicit rotate_checkpoint() calls.
  std::uint32_t checkpoint_every = 0;
  ServiceConfig service{};
  // Shared kill switch for every durable write of this service (journal
  // appends, checkpoint staging). Optional; owned by the caller.
  CrashPoint* crash = nullptr;
};

struct DurableStats {
  std::uint64_t journal_appends = 0;  // records acked by this process
  std::uint64_t journal_bytes = 0;    // record bytes appended (headers excl.)
  std::uint64_t checkpoints_rotated = 0;
  std::uint64_t recoveries = 0;        // 1 when this process recovered
  std::uint64_t batches_replayed = 0;  // journal records replayed at recovery

  std::string debug_string() const;
};

// What recover() found and did.
struct RecoveryReport {
  std::uint64_t checkpoint_epoch = 0;  // epoch of the loaded generation
  std::uint64_t recovered_epoch = 0;   // service epoch after replay
  std::uint64_t batches_replayed = 0;
  bool generation_fallback = false;   // newest slot damaged, older used
  bool journal_tail_truncated = false;
  bool fresh_start = false;  // no usable checkpoint; rebuilt from the graph
  // Why the passed-over slot was rejected (fallback or fresh start).
  CheckpointError rejected_error = CheckpointError::kMissing;

  std::string debug_string() const;
};

// A DapspService wrapped in the WAL + checkpoint-rotation protocol above.
// Movable, not copyable.
class DurableDapspService {
 public:
  // Fresh start: builds the certified service from `initial`, writes the
  // generation-0 checkpoint and a fresh journal under cfg.dir.
  DurableDapspService(const Graph& initial, const DurableConfig& cfg);

  // Crash recovery (see header note). `initial` is the fresh-start fallback
  // when no checkpoint generation is usable — pass nullptr to throw in that
  // case instead. Throws std::runtime_error on an epoch gap between the
  // checkpoint and the journal suffix (an acknowledged update was lost —
  // the one unrecoverable state) and on a journal that is not ours
  // (bad magic / version).
  static DurableDapspService recover(const DurableConfig& cfg,
                                     const Graph* initial = nullptr,
                                     RecoveryReport* report = nullptr);

  // The WAL step: append + flush the record (acknowledgement point), then
  // apply the batch. `plan_words` is the driver's opaque resume state (e.g.
  // DeltaPlan rng/counter), stored in the record and in every later
  // checkpoint. Returns step()'s report.
  EpochReport ack_and_step(const ChurnBatch& batch,
                           std::span<const std::uint64_t> plan_words = {});

  // Writes a checkpoint of the current state (rotating generations) and
  // resets the journal.
  void rotate_checkpoint();

  DapspService& service() noexcept { return svc_; }
  const DapspService& service() const noexcept { return svc_; }
  const DurableStats& durable_stats() const noexcept { return dstats_; }
  // Plan words of the last acknowledged record (or of the loaded
  // checkpoint when nothing was replayed) — the driver's resume point.
  std::span<const std::uint64_t> plan_words() const noexcept {
    return plan_words_;
  }
  std::string journal_path() const;

 private:
  DurableDapspService(DapspService&& svc, const DurableConfig& cfg);

  void emit_journal_event(std::uint64_t payload_bytes, std::uint64_t epoch);
  void reset_journal();

  DurableConfig cfg_;
  DapspService svc_;
  CheckpointStore store_;
  std::unique_ptr<JournalWriter> journal_;
  std::vector<std::uint64_t> plan_words_;
  DurableStats dstats_;
  std::uint32_t acked_since_checkpoint_ = 0;
};

}  // namespace dapsp::core
