#include "core/service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/journal.h"
#include "util/rng.h"

namespace dapsp::core {

namespace {

using congest::TraceEvent;
using congest::TraceEventKind;

// kDelta aux encoding: low byte = DeltaKind; bit 8 marks an *unannounced*
// crash (applied as a node-leave the analyzer treats identically, but worth
// telling apart in traces).
constexpr std::uint32_t kDeltaCrashBit = 0x100u;

// First four bytes identify the file kind, the next four its format
// version — classify_checkpoint_blob tells the two mismatches apart.
constexpr char kCheckpointMagic[4] = {'D', 'S', 'V', 'C'};
constexpr char kCheckpointVersion[4] = {'0', '0', '0', '1'};

// FNV-1a 64 over the blob body — catches truncation and bit damage of a
// checkpoint file before any field is trusted.
std::uint64_t blob_checksum(std::span<const std::uint8_t> bytes) {
  return fnv1a64(bytes);
}

std::uint32_t abs_diff(std::uint32_t a, std::uint32_t b) {
  return a > b ? a - b : b - a;
}

}  // namespace

const char* to_string(CheckpointError e) noexcept {
  switch (e) {
    case CheckpointError::kNone:
      return "none";
    case CheckpointError::kMissing:
      return "missing";
    case CheckpointError::kTruncated:
      return "truncated";
    case CheckpointError::kBadMagic:
      return "bad-magic";
    case CheckpointError::kVersionMismatch:
      return "version-mismatch";
    case CheckpointError::kChecksumMismatch:
      return "checksum-mismatch";
    case CheckpointError::kBadPayload:
      return "bad-payload";
  }
  return "?";
}

CheckpointError classify_checkpoint_blob(
    std::span<const std::uint8_t> blob) noexcept {
  if (blob.empty()) return CheckpointError::kMissing;
  if (blob.size() < 8) return CheckpointError::kTruncated;
  if (std::memcmp(blob.data(), kCheckpointMagic, 4) != 0) {
    return CheckpointError::kBadMagic;
  }
  if (std::memcmp(blob.data() + 4, kCheckpointVersion, 4) != 0) {
    return CheckpointError::kVersionMismatch;
  }
  // Dry structural parse (sizes only): the blob is self-delimiting, so its
  // exact length is recomputable — shorter is truncation, longer means
  // appended bytes the checksum cannot cover.
  const std::uint64_t size = blob.size();
  std::uint64_t need = 8;  // magic + version
  const auto fits = [&](std::uint64_t more) {
    if (more > size - need) return false;
    need += more;
    return true;
  };
  const auto read_u32 = [&](std::uint64_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{blob[static_cast<std::size_t>(at) +
                              static_cast<std::size_t>(i)]}
           << (8 * i);
    }
    return v;
  };
  const auto read_u64 = [&](std::uint64_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{blob[static_cast<std::size_t>(at) +
                              static_cast<std::size_t>(i)]}
           << (8 * i);
    }
    return v;
  };
  if (!fits(4)) return CheckpointError::kTruncated;
  const std::uint64_t n = read_u32(need - 4);
  if (n == 0) return CheckpointError::kBadPayload;
  if (!fits(8)) return CheckpointError::kTruncated;  // epoch
  if (!fits(8)) return CheckpointError::kTruncated;  // user word count
  const std::uint64_t user_count = read_u64(need - 8);
  if (user_count > size / 8 || !fits(user_count * 8)) {
    return CheckpointError::kTruncated;
  }
  if (!fits(n)) return CheckpointError::kTruncated;  // active mask
  if (!fits(8)) return CheckpointError::kTruncated;  // edge count
  const std::uint64_t m = read_u64(need - 8);
  if (m > size / 8 || !fits(m * 8)) return CheckpointError::kTruncated;
  if (!fits(n)) return CheckpointError::kTruncated;  // row statuses
  // Four n*n u32 tables, then the trailing checksum.
  if (n > (std::uint64_t{1} << 20) || !fits(4 * n * n * 4)) {
    return CheckpointError::kTruncated;
  }
  if (!fits(8)) return CheckpointError::kTruncated;  // checksum
  if (need != size) return CheckpointError::kChecksumMismatch;  // extra bytes
  const std::span<const std::uint8_t> body = blob.first(blob.size() - 8);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : body) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  if (h != read_u64(size - 8)) return CheckpointError::kChecksumMismatch;
  return CheckpointError::kNone;
}

std::uint64_t peek_checkpoint_epoch(
    std::span<const std::uint8_t> blob) noexcept {
  if (blob.size() < 20) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{blob[12 + static_cast<std::size_t>(i)]} << (8 * i);
  }
  return v;
}

std::uint64_t backoff_delay_ms(std::uint64_t base_ms,
                               std::uint64_t exp) noexcept {
  if (base_ms == 0) return 0;
  if (base_ms >= kMaxBackoffMs || exp >= 63) return kMaxBackoffMs;
  const std::uint64_t shifted = base_ms << exp;
  // Saturate on wrap (base << exp no longer round-trips) or past the cap.
  if ((shifted >> exp) != base_ms || shifted > kMaxBackoffMs) {
    return kMaxBackoffMs;
  }
  return shifted;
}

namespace {

// SplitMix64 finalizer — the same full-avalanche mix the fault injector
// uses to key its per-(node, round) streams (congest/faults.cc).
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t jitter_between(std::uint64_t lo, std::uint64_t hi,
                             std::uint64_t seed, std::uint64_t a,
                             std::uint64_t b) noexcept {
  if (hi <= lo) return lo;
  std::uint64_t z = seed;
  z = mix64(z ^ (0x9e3779b97f4a7c15ULL * (a + 1)));
  z = mix64(z ^ (0xd1342543de82ef95ULL * (b + 1)));
  return lo + Rng(z).below(hi - lo + 1);
}

std::uint64_t decorrelated_backoff_ms(std::uint64_t base_ms,
                                      std::uint64_t prev_ms,
                                      std::uint64_t seed, std::uint64_t epoch,
                                      std::uint64_t attempt) noexcept {
  if (base_ms == 0) return 0;
  const std::uint64_t lo = std::min(base_ms, kMaxBackoffMs);
  // max(base, prev) * 3, saturating at the cap: prev and base are both
  // <= kMaxBackoffMs (60'000) after clamping, so the product cannot wrap.
  const std::uint64_t anchor = std::min(std::max(base_ms, prev_ms),
                                        kMaxBackoffMs);
  const std::uint64_t hi = std::min(anchor * 3, kMaxBackoffMs);
  return jitter_between(lo, hi, seed, epoch, attempt);
}

const char* to_string(RowStatus s) noexcept {
  switch (s) {
    case RowStatus::kExact:
      return "exact";
    case RowStatus::kRepaired:
      return "repaired";
    case RowStatus::kStale:
      return "stale";
  }
  return "?";
}

const char* to_string(EpochOutcome o) noexcept {
  switch (o) {
    case EpochOutcome::kClean:
      return "clean";
    case EpochOutcome::kRepaired:
      return "repaired";
    case EpochOutcome::kRetried:
      return "retried";
    case EpochOutcome::kEscalated:
      return "escalated";
    case EpochOutcome::kSuppressed:
      return "suppressed";
  }
  return "?";
}

DirtyReport analyze_dirty_rows(const DistanceMatrix& dist,
                               std::span<const std::uint8_t> active_before,
                               std::span<const Edge> edges_before,
                               const DynamicGraph& after) {
  const NodeId n = after.universe();
  if (dist.n() != n || active_before.size() != n) {
    throw std::invalid_argument(
        "analyze_dirty_rows: table/mask sizes do not match the universe");
  }

  DirtyReport dr;
  std::vector<std::uint8_t> is_joined(n, 0), is_left(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const bool before = active_before[v] != 0;
    const bool now = after.active(v);
    if (now && !before) {
      is_joined[v] = 1;
      dr.joined.push_back(v);
    } else if (before && !now) {
      is_left[v] = 1;
      dr.left.push_back(v);
    }
  }

  // Canonical edge diffs (both lists sorted u-major, v-minor, u < v).
  const std::vector<Edge> edges_after = after.sorted_edges();
  const auto edge_lt = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  std::vector<Edge> ins_raw, rem_raw;
  std::set_difference(edges_after.begin(), edges_after.end(),
                      edges_before.begin(), edges_before.end(),
                      std::back_inserter(ins_raw), edge_lt);
  std::set_difference(edges_before.begin(), edges_before.end(),
                      edges_after.begin(), edges_after.end(),
                      std::back_inserter(rem_raw), edge_lt);
  for (const Edge& e : ins_raw) {
    // Edges at a joined endpoint are its attachment frontier — covered by
    // the join rule, not the insert rule (the joined side has no meaningful
    // old distance to compare).
    if (is_joined[e.u] || is_joined[e.v]) continue;
    dr.inserted.push_back(e);
  }
  for (const Edge& e : rem_raw) {
    // Edges at a left endpoint are covered by the leave boundary rule.
    if (is_left[e.u] || is_left[e.v]) continue;
    dr.removed.push_back(e);
  }

  // Adjacent joins break the patch premise (a frontier node's distances must
  // be *old* certified values): hand the whole epoch to a full recompute.
  for (const NodeId w : dr.joined) {
    for (const NodeId x : after.neighbors(w)) {
      if (is_joined[x]) {
        dr.needs_full = true;
        return dr;
      }
    }
  }

  // Pre-batch adjacency of the left nodes (their boundary edges).
  std::vector<std::vector<NodeId>> left_boundary(dr.left.size());
  if (!dr.left.empty()) {
    for (const Edge& e : edges_before) {
      for (std::size_t i = 0; i < dr.left.size(); ++i) {
        const NodeId x = dr.left[i];
        if (e.u == x && !is_left[e.v] && after.active(e.v)) {
          left_boundary[i].push_back(e.v);
        } else if (e.v == x && !is_left[e.u] && after.active(e.u)) {
          left_boundary[i].push_back(e.u);
        }
      }
    }
  }

  for (NodeId s = 0; s < n; ++s) {
    if (!after.active(s)) continue;
    if (is_joined[s]) {
      dr.dirty.push_back(s);  // fresh row, always recomputed
      continue;
    }
    bool d = false;
    for (const Edge& e : dr.inserted) {
      const std::uint32_t a = dist.at(e.u, s), b = dist.at(e.v, s);
      if (a == kInfDist && b == kInfDist) continue;
      if (a == kInfDist || b == kInfDist || abs_diff(a, b) >= 2) {
        d = true;
        break;
      }
    }
    // Shared by the removal and leave rules: did downstream node `hi` (old
    // distance pd + 1) keep an alternative parent at distance pd in the
    // post-batch graph? If so its distance — and everything beyond it — is
    // unchanged (the old shortest-path suffix from hi survives; distances
    // strictly increase along it, so it cannot reuse the lost connection).
    // Checking against the *after* adjacency keeps multi-delta batches
    // sound: a parent lost to another delta in the same batch doesn't count.
    const auto has_alt_parent = [&](NodeId hi, std::uint32_t pd) {
      for (const NodeId y : after.neighbors(hi)) {
        // A joined node has no trustworthy old-table entry yet.
        if (!is_joined[y] && dist.at(y, s) == pd) return true;
      }
      return false;
    };
    if (!d) {
      for (const Edge& e : dr.removed) {
        const std::uint32_t a = dist.at(e.u, s), b = dist.at(e.v, s);
        if (a == kInfDist && b == kInfDist) continue;
        // A certified table is 1-Lipschitz across existing edges, so one
        // infinite endpoint means the table was already suspect.
        if (a == kInfDist || b == kInfDist) {
          d = true;
          break;
        }
        // The edge mattered for row s only if it sat on a shortest path
        // (diff 1) AND the downstream endpoint lost its last parent.
        if (abs_diff(a, b) != 1) continue;
        const NodeId hi = a > b ? e.u : e.v;
        if (!has_alt_parent(hi, std::min(a, b))) {
          d = true;
          break;
        }
      }
    }
    if (!d) {
      for (std::size_t i = 0; i < dr.left.size() && !d; ++i) {
        const NodeId x = dr.left[i];
        const std::uint32_t a = dist.at(x, s);
        if (a == kInfDist) continue;  // x was unreachable: no s-path used it
        for (const NodeId y : left_boundary[i]) {
          const std::uint32_t b = dist.at(y, s);
          // y's shortest path may have run through x — unless y kept
          // another parent at x's old distance.
          if (b != kInfDist && b == a + 1 && !has_alt_parent(y, a)) {
            d = true;
            break;
          }
        }
      }
    }
    if (!d) {
      for (const NodeId w : dr.joined) {
        std::uint32_t mn = kInfDist;
        bool any_inf = false;
        std::uint32_t mx = 0;
        for (const NodeId x : after.neighbors(w)) {
          const std::uint32_t dx = dist.at(x, s);
          if (dx == kInfDist) {
            any_inf = true;
          } else {
            mn = std::min(mn, dx);
            mx = std::max(mx, dx);
          }
        }
        if (mn == kInfDist) continue;  // frontier unreachable (or empty)
        if (any_inf || mx > mn + 2) {
          // w shortcuts between frontier nodes (or bridges s's component to
          // an unreachable one): the row changes beyond the one new entry.
          d = true;
          break;
        }
      }
    }
    if (d) dr.dirty.push_back(s);
  }
  return dr;
}

void DapspService::validate_config() const {
  if (!(config_.escalate_fraction > 0.0 && config_.escalate_fraction <= 1.0)) {
    throw std::invalid_argument(
        "ServiceConfig: escalate_fraction must lie in (0, 1]");
  }
  if (config_.max_repair_attempts == 0) {
    throw std::invalid_argument(
        "ServiceConfig: max_repair_attempts must be >= 1");
  }
}

DapspService::DapspService(const Graph& initial, const ServiceConfig& config)
    : config_(config), graph_(initial), served_dist_(initial.num_nodes()) {
  validate_config();
  const NodeId n = initial.num_nodes();
  apsp_.dist = DistanceMatrix(n);
  apsp_.next_hop.assign(n, std::vector<NodeId>(n, kNoNextHop));
  apsp_.survived.assign(n, 1);
  apsp_.status = congest::RunStatus::kCompleted;
  served_next_hop_.assign(n, std::vector<NodeId>(n, kNoNextHop));
  row_status_.assign(n, RowStatus::kStale);

  // Initial build: one full S-SP recompute (works on disconnected inputs —
  // the repair layer runs per component), certified over every row.
  RepairOptions ropts;
  ropts.engine = config_.engine;
  if (config_.watchdog_rounds) ropts.engine.max_rounds = config_.watchdog_rounds;
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  ropts.suspects = all;
  ropts.certify_all = true;
  const RepairReport rep = repair_apsp(initial, apsp_, ropts);
  if (!rep.all_certified()) {
    throw std::runtime_error(
        "DapspService: initial build failed to certify: " +
        rep.debug_string());
  }
  stats_.rows_repaired += rep.rows_repaired;
  congest::accumulate(stats_.run, rep.stats);
  std::vector<NodeId> rows(all);
  refresh_served(rows, RowStatus::kExact);
  if (config_.snapshot_sink != nullptr) {
    config_.snapshot_sink->on_snapshot(*this, /*degraded=*/false);
  }
}

DapspService::DapspService(RestoreTag, const ServiceConfig& config,
                           DynamicGraph graph)
    : config_(config), graph_(std::move(graph)) {
  validate_config();
}

void DapspService::zero_row(NodeId x) {
  const NodeId n = graph_.universe();
  for (NodeId v = 0; v < n; ++v) {
    apsp_.dist.set(v, x, kInfDist);
    apsp_.next_hop[v][x] = kNoNextHop;
    served_dist_.set(v, x, kInfDist);
    served_next_hop_[v][x] = kNoNextHop;
  }
  row_status_[x] = RowStatus::kStale;
}

void DapspService::patch_join_entries(const DirtyReport& dr) {
  // For clean rows (not about to be recomputed) the joined node's entry is
  // determined by its frontier: D_s(w) = 1 + min over attachments. Suspect
  // rows get patched too — harmlessly, their repair overwrites everything.
  const NodeId n = graph_.universe();
  for (const NodeId w : dr.joined) {
    const auto frontier = graph_.neighbors(w);
    for (NodeId s = 0; s < n; ++s) {
      if (!graph_.active(s) || s == w) continue;
      std::uint32_t mn = kInfDist;
      NodeId arg = kNoNextHop;
      for (const NodeId x : frontier) {
        const std::uint32_t dx = apsp_.dist.at(x, s);
        if (dx < mn) {
          mn = dx;
          arg = x;
        }
      }
      apsp_.dist.set(w, s, mn == kInfDist ? kInfDist : mn + 1);
      apsp_.next_hop[w][s] = arg;
    }
  }
}

void DapspService::refresh_served(std::span<const NodeId> rows,
                                  RowStatus status) {
  const NodeId n = graph_.universe();
  for (const NodeId s : rows) {
    for (NodeId v = 0; v < n; ++v) {
      served_dist_.set(v, s, apsp_.dist.at(v, s));
      served_next_hop_[v][s] = apsp_.next_hop[v][s];
    }
    row_status_[s] = status;
  }
}

void DapspService::run_repair_ladder(
    std::optional<std::vector<NodeId>> suspects, bool force_escalate,
    EpochReport& ep) {
  const auto wall_start = std::chrono::steady_clock::now();
  const auto wall_blown = [&]() {
    if (config_.watchdog_wall_ms == 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - wall_start);
    return static_cast<std::uint64_t>(elapsed.count()) >
           config_.watchdog_wall_ms;
  };

  const Graph snap = graph_.snapshot();
  apsp_.survived = graph_.active_mask();

  std::vector<NodeId> all_active;
  for (NodeId v = 0; v < graph_.universe(); ++v) {
    if (graph_.active(v)) all_active.push_back(v);
  }

  // The ladder's rungs: incremental (when the analyzer supplied suspects),
  // certificate-driven detection, full recompute. force_escalate (oversized
  // region / needs_full) jumps straight to the last rung.
  struct Rung {
    std::optional<std::vector<NodeId>> suspects;
    bool certify_all = true;
    bool escalation = false;
  };
  std::vector<Rung> rungs;
  if (!force_escalate) {
    if (suspects) rungs.push_back({suspects, false, false});
    rungs.push_back({std::nullopt, true, false});
  }
  rungs.push_back({all_active, true, true});
  if (rungs.size() > config_.max_repair_attempts) {
    // Keep the first rungs but always end on the full recompute.
    rungs.erase(rungs.begin() + (config_.max_repair_attempts - 1),
                rungs.end() - 1);
  }

  // Jittered-backoff envelope: the degraded streak sets where the
  // decorrelated walk starts (saturating via backoff_delay_ms — a plain
  // shift would overflow past 2^63), and each sleep this epoch then draws
  // uniform in [base, 3 * prev], keyed by (seed, epoch, attempt). Determinism
  // survives (same key, same sleep) while co-churning shards decorrelate.
  std::uint64_t prev_backoff_ms =
      backoff_delay_ms(config_.backoff_base_ms, degraded_streak_);
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    if (i > 0) {
      if (config_.backoff_base_ms > 0) {
        const std::uint64_t ms =
            decorrelated_backoff_ms(config_.backoff_base_ms, prev_backoff_ms,
                                    config_.backoff_seed, epoch_, i);
        prev_backoff_ms = ms;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        stats_.backoff_ms += ms;
      }
      // Wall watchdog: skip intermediate rungs, keep only the final
      // escalation (the one guaranteed-simple recovery path).
      if (wall_blown() && i + 1 < rungs.size()) continue;
    }
    const Rung& rung = rungs[i];
    ++ep.attempts;
    if (rung.escalation) {
      ep.escalated = true;
      ep.stats.repairs_escalated += 1;
    }
    RepairOptions ropts;
    ropts.engine = config_.engine;
    if (config_.watchdog_rounds) {
      ropts.engine.max_rounds = config_.watchdog_rounds;
    }
    ropts.suspects = rung.suspects;
    ropts.certify_all = rung.certify_all;
    try {
      const RepairReport rep = repair_apsp(snap, apsp_, ropts);
      congest::accumulate(ep.stats, rep.stats);
      if (!rep.all_certified()) continue;  // failed attempt: next rung
      ep.certified = true;
      ep.suspect_rows = rep.rows_repaired;
      ep.repair_rounds = rep.repair_rounds;
      ep.round_bound = rep.round_bound;
      ep.bound_ok = rep.bound_ok;
      stats_.rows_repaired += rep.rows_repaired;
      degraded_streak_ = 0;
      if (rung.certify_all) {
        // Every active row certified against the current graph.
        refresh_served(all_active, RowStatus::kExact);
      } else {
        refresh_served(rep.suspect_sources, RowStatus::kRepaired);
      }
      return;
    } catch (const congest::RoundLimitError&) {
      // Watchdog trip: the attempt is over budget, move up the ladder.
      continue;
    } catch (const congest::CongestionError&) {
      continue;
    }
  }

  // Every rung failed: mark what we meant to heal stale; the served snapshot
  // keeps answering from the last certified state.
  ep.certified = false;
  ++degraded_streak_;
  ++stats_.epochs_failed;
  const std::vector<NodeId>& stale = suspects ? *suspects : all_active;
  for (const NodeId s : stale) {
    if (graph_.active(s)) row_status_[s] = RowStatus::kStale;
  }
}

void DapspService::note_gate_state() {
  if (config_.repair_gate == nullptr) return;
  const std::uint8_t gs = config_.repair_gate->state();
  if (gs == last_gate_state_) return;
  ++stats_.breaker_transitions;
  if (config_.engine.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kBreaker;
    ev.node = gs;
    ev.peer = last_gate_state_;
    ev.round = epoch_;
    ev.aux = static_cast<std::uint32_t>(stats_.breaker_transitions);
    config_.engine.trace->append(ev);
  }
  last_gate_state_ = gs;
}

void DapspService::emit_epoch_event(const EpochReport& ep) {
  if (config_.engine.trace == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kEpoch;
  ev.node = static_cast<NodeId>(ep.epoch);
  ev.peer = ep.suspect_rows;
  ev.round = ep.epoch;
  ev.aux = static_cast<std::uint32_t>(ep.outcome);
  config_.engine.trace->append(ev);
}

EpochReport DapspService::step(const ChurnBatch& batch) {
  ++epoch_;
  EpochReport ep;
  ep.epoch = epoch_;

  const std::vector<Edge> edges_before = graph_.sorted_edges();
  const std::vector<std::uint8_t> active_before = graph_.active_mask();

  congest::TraceLog* trace = config_.engine.trace;
  const auto emit_delta = [&](const GraphDelta& d, bool crash) {
    if (trace == nullptr) return;
    TraceEvent ev;
    ev.kind = TraceEventKind::kDelta;
    ev.node = d.u;
    ev.peer = d.v;
    ev.round = epoch_;
    ev.aux = static_cast<std::uint32_t>(d.kind) | (crash ? kDeltaCrashBit : 0);
    trace->append(ev);
  };

  for (const GraphDelta& d : batch.deltas) {
    graph_.apply(d);
    emit_delta(d, false);
    ++ep.deltas_applied;
  }
  for (const NodeId v : batch.crashes) {
    if (!graph_.active(v)) continue;  // already gone; nothing to crash
    const GraphDelta d{DeltaKind::kNodeLeave, v, v};
    graph_.apply(d);
    emit_delta(d, true);
    ++ep.crashes;
    ep.stats.nodes_crashed += 1;
  }

  // Analyze against the pre-epoch table, then retire dead rows.
  const DirtyReport dr = analyze_dirty_rows(apsp_.dist, active_before,
                                            edges_before, graph_);
  for (const NodeId x : dr.left) zero_row(x);

  // Suspects = the analyzed dirty set plus any rows still stale from failed
  // earlier epochs (or a restore) — staleness carries over until healed.
  std::vector<NodeId> suspects = dr.dirty;
  for (NodeId s = 0; s < graph_.universe(); ++s) {
    if (graph_.active(s) && row_status_[s] == RowStatus::kStale) {
      suspects.push_back(s);
    }
  }
  std::sort(suspects.begin(), suspects.end());
  suspects.erase(std::unique(suspects.begin(), suspects.end()),
                 suspects.end());

  // Conservative disclosure (see header): every implicated row drops to
  // kStale *now*, before the repair ladder runs. A snapshot published (or a
  // query answered) between here and certification discloses the row as
  // stale instead of overclaiming exactness for pre-batch values. On
  // needs_full the analyzer could not bound the region, so every active row
  // is implicated.
  bool downgraded = false;
  const auto downgrade = [&](NodeId s) {
    if (row_status_[s] != RowStatus::kStale) {
      row_status_[s] = RowStatus::kStale;
      downgraded = true;
    }
  };
  // A joined node's cell is wrong in *every* row (not just the dirty ones)
  // until patch_join_entries lands and its result is served, so a join
  // implicates even the clean rows — but only in that one cell. Downgrade
  // them too, remembering their pre-join status so certification (which
  // serves the exact-by-construction patched cells) can restore it; if the
  // epoch fails, they stay stale and re-enter the suspect set next epoch.
  std::vector<std::pair<NodeId, RowStatus>> join_guard;
  if (dr.needs_full) {
    for (NodeId s = 0; s < graph_.universe(); ++s) {
      if (graph_.active(s)) downgrade(s);
    }
  } else {
    for (const NodeId s : suspects) downgrade(s);
    if (!dr.joined.empty()) {
      for (NodeId s = 0; s < graph_.universe(); ++s) {
        if (!graph_.active(s) || row_status_[s] == RowStatus::kStale) continue;
        join_guard.emplace_back(s, row_status_[s]);
        downgrade(s);
      }
    }
  }
  if (config_.snapshot_sink != nullptr && downgraded) {
    config_.snapshot_sink->on_snapshot(*this, /*degraded=*/true);
  }

  bool force = dr.needs_full;
  if (!force && !suspects.empty()) {
    const double frac = static_cast<double>(suspects.size()) /
                        static_cast<double>(std::max<NodeId>(
                            graph_.num_active(), 1));
    if (frac > config_.escalate_fraction) force = true;
  }

  if (suspects.empty() && !force) {
    ep.outcome = EpochOutcome::kClean;
    ep.certified = true;
    degraded_streak_ = 0;
  } else if (config_.repair_gate != nullptr &&
             !config_.repair_gate->allow_repair(epoch_)) {
    // The gate (an open circuit breaker) refused the ladder: spend nothing.
    // Every implicated row was already downgraded to kStale above, so the
    // epoch serves degraded from the last certified values and the suspects
    // re-enter next epoch's set. Join-guard rows stay stale too — their
    // patched cells were never computed. Not a failed repair: the degraded
    // streak and epochs_failed are untouched.
    ep.outcome = EpochOutcome::kSuppressed;
    ep.certified = false;
    ++stats_.repairs_suppressed;
  } else {
    if (!force) patch_join_entries(dr);
    run_repair_ladder(force ? std::nullopt
                            : std::optional<std::vector<NodeId>>(suspects),
                      force, ep);
    if (config_.repair_gate != nullptr) {
      config_.repair_gate->on_repair_outcome(epoch_, ep.certified);
    }
    if (ep.certified && !force && !dr.joined.empty()) {
      // The direct-patched entries of clean rows (one cell per joined node
      // per row) are exact by construction — serve them too, and lift the
      // join-guard downgrade now that the rows are whole again.
      for (const NodeId w : dr.joined) {
        for (NodeId s = 0; s < graph_.universe(); ++s) {
          if (!graph_.active(s)) continue;
          served_dist_.set(w, s, apsp_.dist.at(w, s));
          served_next_hop_[w][s] = apsp_.next_hop[w][s];
        }
      }
      for (const auto& [s, prev] : join_guard) {
        if (graph_.active(s) && row_status_[s] == RowStatus::kStale) {
          row_status_[s] = prev;
        }
      }
    }
    ep.outcome = ep.escalated ? EpochOutcome::kEscalated
                 : ep.attempts > 1
                     ? EpochOutcome::kRetried
                     : EpochOutcome::kRepaired;
  }

  // Bit-rot lands after the epoch's certification (it models decay between
  // epochs); it is invisible to the analyzer and waits for a scrub — or for
  // its row to turn suspect for other reasons.
  if (batch.corrupt_flips > 0) {
    Rng rot(batch.corrupt_seed);
    for (std::uint32_t i = 0; i < batch.corrupt_flips; ++i) {
      const NodeId v = static_cast<NodeId>(rot.below(graph_.universe()));
      const NodeId s = static_cast<NodeId>(rot.below(graph_.universe()));
      if (!graph_.active(v) || !graph_.active(s)) continue;
      const std::uint32_t bit = static_cast<std::uint32_t>(rot.below(16));
      apsp_.dist.set(v, s, apsp_.dist.at(v, s) ^ (1u << bit));
      ++ep.corrupted_entries;
    }
  }

  stats_.epochs += 1;
  stats_.deltas_applied += ep.deltas_applied;
  stats_.crashes += ep.crashes;
  stats_.corrupted_entries += ep.corrupted_entries;
  congest::accumulate(stats_.run, ep.stats);
  note_gate_state();
  emit_epoch_event(ep);

  if (config_.scrub_every > 0 && epoch_ % config_.scrub_every == 0) {
    scrub();
  }
  if (config_.snapshot_sink != nullptr) {
    config_.snapshot_sink->on_snapshot(*this, /*degraded=*/false);
  }
  return ep;
}

EpochReport DapspService::scrub() {
  EpochReport ep;
  ep.epoch = epoch_;
  // Deliberately not gated: a scrub is operator-initiated maintenance and
  // must always be able to heal. Its outcome still feeds the gate, so a
  // successful scrub closes an open breaker (and a failed one re-opens it).
  run_repair_ladder(std::nullopt, false, ep);
  if (config_.repair_gate != nullptr) {
    config_.repair_gate->on_repair_outcome(epoch_, ep.certified);
  }
  ep.outcome = ep.escalated  ? EpochOutcome::kEscalated
               : ep.attempts > 1 ? EpochOutcome::kRetried
                                 : EpochOutcome::kRepaired;
  stats_.scrubs += 1;
  congest::accumulate(stats_.run, ep.stats);
  note_gate_state();
  emit_epoch_event(ep);
  if (config_.snapshot_sink != nullptr) {
    config_.snapshot_sink->on_snapshot(*this, /*degraded=*/false);
  }
  return ep;
}

bool DapspService::fully_certified() const {
  for (NodeId s = 0; s < graph_.universe(); ++s) {
    if (graph_.active(s) && row_status_[s] == RowStatus::kStale) return false;
  }
  return true;
}

ServiceQuery DapspService::query(NodeId from, NodeId to) const {
  if (from >= graph_.universe() || to >= graph_.universe()) {
    throw std::invalid_argument("DapspService::query: node out of universe");
  }
  ServiceQuery q;
  if (!graph_.active(from) || !graph_.active(to)) return q;
  q.active = true;
  q.dist = served_dist_.at(from, to);
  q.next_hop = served_next_hop_[from][to];
  q.status = row_status_[to];
  return q;
}

std::vector<std::uint8_t> DapspService::checkpoint_blob(
    std::span<const std::uint64_t> user_words) {
  const NodeId n = graph_.universe();
  std::vector<std::uint8_t> b;
  b.reserve(64 + std::size_t{n} * n * 16);
  for (const char c : kCheckpointMagic) {
    b.push_back(static_cast<std::uint8_t>(c));
  }
  for (const char c : kCheckpointVersion) {
    b.push_back(static_cast<std::uint8_t>(c));
  }
  put_u32(b, n);
  put_u64(b, epoch_);
  put_u64(b, user_words.size());
  for (const std::uint64_t w : user_words) put_u64(b, w);
  for (NodeId v = 0; v < n; ++v) b.push_back(graph_.active(v) ? 1 : 0);
  const std::vector<Edge> edges = graph_.sorted_edges();
  put_u64(b, edges.size());
  for (const Edge& e : edges) {
    put_u32(b, e.u);
    put_u32(b, e.v);
  }
  for (NodeId s = 0; s < n; ++s) {
    b.push_back(static_cast<std::uint8_t>(row_status_[s]));
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) put_u32(b, apsp_.dist.at(v, s));
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) put_u32(b, apsp_.next_hop[v][s]);
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) put_u32(b, served_dist_.at(v, s));
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) put_u32(b, served_next_hop_[v][s]);
  }
  put_u64(b, blob_checksum(b));

  stats_.checkpoints += 1;
  stats_.run.checkpoint_bytes += b.size();
  return b;
}

void DapspService::checkpoint(std::ostream& out,
                              std::span<const std::uint64_t> user_words) {
  const std::vector<std::uint8_t> b = checkpoint_blob(user_words);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  if (!out) {
    throw std::runtime_error("DapspService::checkpoint: write failed");
  }
}

DapspService DapspService::restore(std::istream& in,
                                   const ServiceConfig& config,
                                   std::vector<std::uint64_t>* user_words_out) {
  const std::vector<std::uint8_t> b(std::istreambuf_iterator<char>(in), {});
  return restore_blob(b, config, user_words_out);
}

DapspService DapspService::restore_blob(
    std::span<const std::uint8_t> blob, const ServiceConfig& config,
    std::vector<std::uint64_t>* user_words_out) {
  const CheckpointError err = classify_checkpoint_blob(blob);
  if (err != CheckpointError::kNone) {
    throw std::runtime_error(std::string("DapspService::restore: ") +
                             to_string(err) + " checkpoint");
  }
  // Magic, version and trailing checksum verified by the classification;
  // parse the body between them.
  ByteReader r(blob.subspan(8, blob.size() - 16), "DapspService::restore");
  const NodeId n = r.u32();
  const std::uint64_t epoch = r.u64();
  const std::uint64_t user_count = r.u64();
  std::vector<std::uint64_t> user(user_count);
  for (std::uint64_t i = 0; i < user_count; ++i) user[i] = r.u64();

  std::vector<std::uint8_t> active(n);
  for (NodeId v = 0; v < n; ++v) active[v] = r.u8();
  DynamicGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!active[v]) g.apply({DeltaKind::kNodeLeave, v, v});
  }
  const std::uint64_t m = r.u64();
  for (std::uint64_t i = 0; i < m; ++i) {
    const NodeId u = r.u32();
    const NodeId v = r.u32();
    g.apply({DeltaKind::kEdgeInsert, u, v});  // throws on inconsistent blobs
  }

  DapspService svc(RestoreTag{}, config, std::move(g));
  svc.epoch_ = epoch;
  svc.row_status_.resize(n);
  for (NodeId s = 0; s < n; ++s) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(RowStatus::kStale)) {
      throw std::runtime_error("DapspService::restore: bad row status");
    }
    svc.row_status_[s] = static_cast<RowStatus>(raw);
  }
  svc.apsp_.dist = DistanceMatrix(n);
  svc.apsp_.next_hop.assign(n, std::vector<NodeId>(n, kNoNextHop));
  svc.served_dist_ = DistanceMatrix(n);
  svc.served_next_hop_.assign(n, std::vector<NodeId>(n, kNoNextHop));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) svc.apsp_.dist.set(v, s, r.u32());
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) svc.apsp_.next_hop[v][s] = r.u32();
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) svc.served_dist_.set(v, s, r.u32());
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) svc.served_next_hop_[v][s] = r.u32();
  }
  svc.apsp_.survived = svc.graph_.active_mask();
  svc.apsp_.status = congest::RunStatus::kCompleted;

  if (user_words_out != nullptr) *user_words_out = std::move(user);
  return svc;
}

std::optional<DapspService> DapspService::try_restore_blob(
    std::span<const std::uint8_t> blob, const ServiceConfig& config,
    std::vector<std::uint64_t>* user_words_out, CheckpointError* error_out) {
  CheckpointError err = classify_checkpoint_blob(blob);
  if (err == CheckpointError::kNone) {
    try {
      std::optional<DapspService> svc =
          restore_blob(blob, config, user_words_out);
      if (error_out != nullptr) *error_out = CheckpointError::kNone;
      return svc;
    } catch (const std::exception&) {
      // Checksum held but a field is inconsistent (bad row status, edge at
      // an inactive endpoint, trailing body bytes...).
      err = CheckpointError::kBadPayload;
    }
  }
  if (error_out != nullptr) *error_out = err;
  return std::nullopt;
}

std::string EpochReport::debug_string() const {
  std::ostringstream os;
  os << "epoch " << epoch << ": " << to_string(outcome)
     << " deltas=" << deltas_applied << " crashes=" << crashes
     << " suspects=" << suspect_rows << " attempts=" << attempts
     << " rounds=" << repair_rounds << "/bound=" << round_bound
     << (bound_ok ? "" : " BOUND-EXCEEDED")
     << (certified ? "" : " NOT-CERTIFIED");
  return std::move(os).str();
}

std::string ServiceStats::debug_string() const {
  std::ostringstream os;
  os << "epochs=" << epochs << " deltas=" << deltas_applied
     << " crashes=" << crashes << " corrupted=" << corrupted_entries
     << " rows_repaired=" << rows_repaired << " failed=" << epochs_failed
     << " suppressed=" << repairs_suppressed
     << " scrubs=" << scrubs << " checkpoints=" << checkpoints << " | "
     << run.debug_string();
  return std::move(os).str();
}

}  // namespace dapsp::core
