// Theorem 5: a (x,1+eps)-approximation of the girth in
// O(min{n/g + D log(D/g), n}) rounds.
//
// The extended abstract only sketches the algorithm ("start with a loose
// upper bound on the girth which is improved over time; for each
// improvement, run an instance of S-SP on a k-dominating set, where k
// depends on the current estimate"); we implement that sketch directly
// (documented reconstruction, see DESIGN.md):
//
//   g_hat := 2*D0 + 1                    (any cycle has length <= 2D+1)
//   repeat:
//     k     := floor(min(eps,1) * g_hat / 8)
//     DOM   := k-dominating set           (KdomMachine, O(D + k) rounds)
//     run DOM-SP with cycle-witness detection (SspMachine keeps, per node,
//       the smallest duplicate-receipt walk length delta[s] + claimed).
//       A dominator s within distance k of a minimum cycle C detects a
//       witness of length <= g + 2k; no witness is ever shorter than g.
//     w     := min witness (convergecast)
//     g_hat := min(g_hat, w)
//   until k <= eps * g_hat / 4           (then g <= g_hat <= (1+eps) g)
//
// Each iteration costs O(n/g_hat + D); g_hat shrinks geometrically while
// g_hat >> g, giving the paper's O(n/g + D log(D/g)) shape. Trees are
// dispatched by Claim 1 in O(D).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"
#include "seq/properties.h"

namespace dapsp::core {

struct GirthApproxOptions {
  congest::EngineConfig engine{};
  double epsilon = 0.5;  // must be > 0
  // Abort the refinement once this many total rounds were spent and fall
  // back to reporting the current estimate (used by the Corollary 2
  // selector; 0 = never).
  std::uint64_t round_budget = 0;
};

struct GirthApproxIteration {
  std::uint32_t k = 0;
  std::uint32_t dom_size = 0;
  std::uint32_t witness = 0;    // min cycle witness found this iteration
  std::uint64_t rounds = 0;
};

struct GirthApproxResult {
  std::uint32_t girth_estimate = seq::kInfGirth;  // g <= est <= (1+eps) g
  bool was_tree = false;
  bool exact = false;  // the last iteration ran with k == 0 (exact answer)
  std::vector<GirthApproxIteration> iterations;
  congest::RunStats stats;  // summed over all phases
};

// Connected graphs only.
GirthApproxResult run_girth_approx(const Graph& g,
                                   const GirthApproxOptions& options = {});

}  // namespace dapsp::core
