// Claim 1: one BFS from the leader decides whether G is a tree, in O(D).
//
// The flood forwards to every neighbor except same-round senders; G is a
// tree iff no node ever receives the flood more than once. TreeMachine
// already counts receipts and ORs the evidence into the echo, so the check
// is the tree build itself plus a broadcast of the verdict.
#pragma once

#include <cstdint>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

struct TreeCheckRun {
  bool is_tree = false;
  std::uint32_t leader_ecc = 0;
  congest::RunStats stats;
};

// Connected graphs only (the flood must reach every node).
TreeCheckRun run_tree_check(const Graph& g,
                            const congest::EngineConfig& cfg = {});

}  // namespace dapsp::core
