// Distributed k-dominating set construction (the paper's Lemma 10).
//
// The paper invokes Kutten & Peleg's Diam_DOM [27] (size <= max{1,
// floor(n/(k+1))}, 6D + k rounds). We use an equivalent tree-level-residue
// construction on the already-built leader tree T1 (documented deviation,
// see DESIGN.md):
//
//   * every node knows its T1 depth d; the nodes with d = r (mod k+1), for
//     the residue class r* of minimum cardinality, plus the root, form a
//     k-dominating set: walking up the tree from any node reaches a chosen
//     level (or the root) within k hops, and tree distance bounds graph
//     distance;
//   * by pigeonhole the smallest class has <= floor(n/(k+1)) nodes, so
//     |DOM| <= floor(n/(k+1)) + 1;
//   * counting the k+1 class sizes is a pipelined convergecast: each node
//     streams its subtree's per-residue counts upward in residue order, one
//     message per round — O(depth(T1) + k) rounds, exactly the additive
//     O(D + k) shape Lemma 10 provides.
//
// KdomMachine is embeddable (used by Theorems 4 and 5); run_kdom() is a
// standalone driver for tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "core/primitives/bfs_process.h"
#include "graph/graph.h"

namespace dapsp::core {

// Pipelined residue-count convergecast + local membership rule. The owner
// must have a finished TreeMachine, must tell every node k (start()), and
// must broadcast the root's pick (the machine only computes it).
class KdomMachine {
 public:
  // Call once k is known at this node (k >= 0; k+1 residue classes).
  void start(std::uint32_t k) {
    k_ = k;
    counts_.assign(std::size_t{k} + 1, 0);
    started_ = true;
  }
  bool started() const { return started_; }

  // Consumes kKdomCount messages.
  bool handle(const congest::Received& r);
  // Streams counts upward; call once per round (after the tree is built).
  void advance(congest::RoundCtx& ctx, const TreeMachine& tree);

  // Root: all residue classes fully counted?
  bool root_counts_complete(const TreeMachine& tree) const;
  // Root: residue class of minimum cardinality (smallest r on ties).
  std::uint32_t root_best_residue() const;
  // Root: |DOM| for that residue (class size + root if not already counted).
  std::uint32_t root_dom_size() const;

  // Local membership, once the winning residue is known (from the owner's
  // broadcast): depth = r* (mod k+1), or being the root.
  static bool member(const TreeMachine& tree, NodeId self, std::uint32_t k,
                     std::uint32_t residue) {
    return self == 0 || tree.dist() % (k + 1) == residue;
  }

 private:
  std::uint32_t k_ = 0;
  bool started_ = false;
  std::vector<std::uint32_t> counts_;     // per residue: subtree totals so far
  std::vector<std::uint32_t> child_progress_;  // messages received per child
  std::uint32_t send_cursor_ = 0;         // next residue to send upward
  bool own_counted_ = false;
};

struct KdomResult {
  std::uint32_t k = 0;
  std::uint32_t residue = 0;
  std::vector<NodeId> dom;       // members, ascending
  std::uint32_t dom_size = 0;    // as computed at the root
  std::uint32_t leader_ecc = 0;
  congest::RunStats stats;
};

// Standalone driver: builds T1, broadcasts k, runs the count pipeline, picks
// and broadcasts the winning residue. Connected graphs only.
KdomResult run_kdom(const Graph& g, std::uint32_t k,
                    const congest::EngineConfig& engine_config = {});

}  // namespace dapsp::core
