#include "core/distance_labels.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/kdom.h"
#include "core/ssp.h"
#include "seq/bfs.h"

namespace dapsp::core {

std::uint32_t DistanceLabeling::combine(
    std::span<const std::uint32_t> lu,
    std::span<const std::uint32_t> lv) noexcept {
  std::uint32_t best = kInfDist;
  for (std::size_t i = 0; i < lu.size(); ++i) {
    // sat_add_dist absorbs the kInfDist sentinel and clamps near-max sums:
    // the old plain u32 addition here wrapped (inf + anything, or two
    // half-range distances) into a tiny bogus estimate.
    best = std::min(best, sat_add_dist(lu[i], lv[i]));
  }
  return best;
}

std::uint32_t DistanceLabeling::estimate(NodeId u, NodeId v) const {
  if (u == v) return 0;
  return combine(labels_[u], labels_[v]);
}

DistanceLabeling build_distance_labels(const Graph& g, std::uint32_t k,
                                       const congest::EngineConfig& cfg) {
  const NodeId n = g.num_nodes();
  if (n == 0) {
    throw std::invalid_argument("build_distance_labels: empty graph");
  }
  // Fail fast on disconnected inputs: the distributed construction below
  // would otherwise stall until the round watchdog trips (an opaque
  // RoundLimitError) or, worse, harvest partial labels. A cheap sequential
  // BFS probe names the problem instead.
  {
    const std::vector<std::uint32_t> d = seq::bfs(g, 0).dist;
    const auto unreachable =
        std::find(d.begin(), d.end(), kInfDist) - d.begin();
    if (static_cast<std::size_t>(unreachable) < d.size()) {
      throw std::invalid_argument(
          "build_distance_labels: graph is disconnected (node " +
          std::to_string(unreachable) +
          " is unreachable from the leader); labels would be partial");
    }
  }

  DistanceLabeling out;
  out.k_ = k;

  // Phase 1: k-dominating set (Lemma 10 substitute), O(D + k) rounds.
  // k = 0 is the degenerate exact path: one residue class, every node a
  // member, DOM = V (and the bound below becomes |DOM| <= n + 1).
  const KdomResult dom = run_kdom(g, k, cfg);
  out.dom_ = dom.dom;
  out.stats_ = dom.stats;

  // Lemma 10: |DOM| <= floor(n/(k+1)) + 1. k+1 >= 1, so the division is
  // well-defined for every k including 0.
  const std::uint64_t dom_bound =
      std::uint64_t{n} / (std::uint64_t{k} + 1) + 1;
  if (out.dom_.empty() || out.dom_.size() > dom_bound) {
    throw std::logic_error(
        "build_distance_labels: dominating set violates the Lemma 10 bound "
        "(|DOM| = " +
        std::to_string(out.dom_.size()) + ", bound " +
        std::to_string(dom_bound) + ", k = " + std::to_string(k) + ")");
  }

  // Phase 2: DOM-SP (Algorithm 2), O(|DOM| + D) rounds.
  SspOptions so;
  so.engine = cfg;
  const SspResult ssp = run_ssp(g, out.dom_, so);
  congest::accumulate(out.stats_, ssp.stats);

  // Harvest per-node labels, indexed by dominator order. Each label holds
  // exactly |DOM| entries — no over-reservation on the k = 0 (DOM = V)
  // path beyond the n entries the exact oracle genuinely needs.
  out.labels_.assign(n, std::vector<std::uint32_t>(out.dom_.size(), kInfDist));
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < out.dom_.size(); ++i) {
      out.labels_[v][i] = ssp.delta[v][out.dom_[i]];
    }
  }
  // Connected input + verified DOM ⇒ every label entry is finite; a hole
  // here means the S-SP schedule under-ran and the oracle would silently
  // degrade, so refuse to return it.
  for (NodeId v = 0; v < n; ++v) {
    for (const std::uint32_t d : out.labels_[v]) {
      if (d == kInfDist) {
        throw std::logic_error(
            "build_distance_labels: incomplete label at node " +
            std::to_string(v) + " despite a connected input");
      }
    }
  }
  return out;
}

}  // namespace dapsp::core
