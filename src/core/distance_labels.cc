#include "core/distance_labels.h"

#include <algorithm>
#include <stdexcept>

#include "core/kdom.h"
#include "core/ssp.h"

namespace dapsp::core {

std::uint32_t DistanceLabeling::estimate(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  std::uint32_t best = kInfDist;
  for (std::size_t i = 0; i < lu.size(); ++i) {
    if (lu[i] == kInfDist || lv[i] == kInfDist) continue;
    best = std::min(best, lu[i] + lv[i]);
  }
  if (best == kInfDist) {
    throw std::logic_error("DistanceLabeling: incomplete labels");
  }
  return best;
}

DistanceLabeling build_distance_labels(const Graph& g, std::uint32_t k,
                                       const congest::EngineConfig& cfg) {
  DistanceLabeling out;
  out.k_ = k;

  // Phase 1: k-dominating set (Lemma 10 substitute), O(D + k) rounds.
  const KdomResult dom = run_kdom(g, k, cfg);
  out.dom_ = dom.dom;
  out.stats_ = dom.stats;

  // Phase 2: DOM-SP (Algorithm 2), O(|DOM| + D) rounds.
  SspOptions so;
  so.engine = cfg;
  const SspResult ssp = run_ssp(g, out.dom_, so);
  congest::accumulate(out.stats_, ssp.stats);

  // Harvest per-node labels, indexed by dominator order.
  const NodeId n = g.num_nodes();
  out.labels_.assign(n, std::vector<std::uint32_t>(out.dom_.size(), kInfDist));
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < out.dom_.size(); ++i) {
      out.labels_[v][i] = ssp.delta[v][out.dom_[i]];
    }
  }
  return out;
}

}  // namespace dapsp::core
