// Section 8: counting the nodes in the greater (2-hop) neighborhood.
//
// Computing all depth-2 BFS trees — equivalently, |N2(v)| for every v — is
// the task Theorem 8 proves Omega(n/B)-hard in the worst case (the girth-3
// two-party gadgets: deciding whether every |N2(v)| = n is exactly the
// diameter 2-vs-3 question). The natural upper bound is degree-limited:
// every node streams its adjacency list to each neighbor, one id per round;
// after max-degree rounds every node can unite what it heard and count its
// 2-neighborhood locally.
//
//   rounds    = Theta(max degree)   (+ O(D) to agree on termination)
//   messages  = sum_v deg(v)^2
//
// On bounded-degree graphs this is fast; on the lower-bound gadgets the
// degree is Theta(n) and the protocol takes Theta(n) rounds — the pair of
// measurements bench_lower_bounds reports next to Theorem 8.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

struct CensusResult {
  // n2[v] = |N2(v)| including v itself (Definition: Nk(v) contains v).
  std::vector<std::uint32_t> n2;
  std::uint32_t max_degree = 0;
  congest::RunStats stats;
};

// Connected graphs only.
CensusResult run_two_hop_census(const Graph& g,
                                const congest::EngineConfig& cfg = {});

}  // namespace dapsp::core
