// Algorithm 2 of the paper: S-Shortest Paths in O(|S| + D) rounds.
//
// All |S| BFS floods start in the same round. On every edge and in every
// round, each endpoint offers the highest-priority (source, distance) claim
// it still owes that neighbor (the per-neighbor lists L_i of the paper); a
// transmission succeeds unless the neighbor simultaneously sends a higher-
// priority one. Theorem 3: each flood is delayed at most once per higher-
// priority source, so after O(|S| + D0) loop rounds (D0 = 2*ecc(leader) >= D,
// broadcast beforehand) every node knows its exact distance to every source.
//
// REPRODUCTION NOTE (documented in DESIGN.md): the extended abstract's
// pseudocode prioritizes by source id alone and updates delta on first
// receipt. Implemented literally, this computes wrong distances: wavefronts
// of one flood can reach a node in the same round with different claimed
// distances (a shorter path can be priority-delayed while a longer one is
// not), and an id-priority tie can retire a stale claim on both sides of an
// edge. We therefore (a) prioritize claims lexicographically by
// (distance, id) — the classical "source detection" discipline, for which
// the paper's delay-charging argument holds verbatim — and (b) min-merge
// claims per round, re-propagating corrections. Tests assert exactness on
// the full suite; the bench_ssp audit reports how often corrections fire.
//
// SspMachine is the embeddable core (also used by the Theorem 4 / Theorem 5
// approximation protocols and by Algorithm 3); run_ssp() is the standalone
// driver: tree build -> parameter broadcast -> synchronized loop -> harvest.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "congest/engine.h"
#include "core/certify.h"
#include "core/primitives/bfs_process.h"
#include "graph/graph.h"

namespace dapsp::core {

// The synchronized token-exchange loop of Algorithm 2 (lines 13-31).
// The owner process must:
//   * construct with `in_s` (whether this node is a source),
//   * call configure() once the loop start round and length are known
//     (they must be identical at every node),
//   * call handle() for every inbox message and advance() once per round.
class SspMachine {
 public:
  SspMachine(NodeId id, NodeId n, bool in_s);

  // Loop schedule used by every driver: the paper runs |S| + D0 rounds
  // (Theorem 3), but its charging argument misses two effects observable in
  // our traces: (a) wavefronts of one flood can arrive in the same round
  // with different claimed distances, and (b) a smaller id can delay a
  // larger one twice — once by sitting ahead in a list and once by an "echo"
  // collision when a node re-offers an already-known id back across an edge.
  // Doubling the schedule (still O(|S| + D)) restores exactness; tests
  // verify correctness within it on the whole suite. This is a documented
  // reproduction finding (see DESIGN.md / EXPERIMENTS.md).
  static std::uint64_t schedule_length(std::uint64_t s_count,
                                       std::uint64_t d0) {
    return 2 * (s_count + d0) + 4;
  }

  void configure(std::uint64_t start_round, std::uint64_t loop_rounds);
  bool configured() const { return configured_; }

  // Source membership may be decided late (e.g. Algorithm 3 recruits the
  // neighborhood of the elected node), but only before the loop starts.
  void set_in_s(bool in_s);

  // Truncated source detection: keep (and forward) only the `cap` sources
  // with lexicographically smallest (distance, id). With a cap, each node's
  // final delta describes exactly its cap nearest sources — the partial
  // "s-BFS from every node" primitive of the Aingworth-style (x,3/2)
  // diameter approximation (Section 3.3 / the ICALP'12 companion [33]).
  // Call before the loop starts. 0 = unlimited (default).
  void set_cap(std::uint32_t cap);

  // With a cap: the learned sources, ascending by (distance, id), and the
  // distance of the worst one (the "radius" of the partial BFS ball).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> nearest_sources() const;

  // Consumes kSspToken messages. Call for every inbox entry.
  bool handle(congest::RoundCtx& ctx, const congest::Received& r);
  // Performs this round's sends; call after the inbox has been handled.
  void advance(congest::RoundCtx& ctx);

  // True once the loop (including the trailing receive round) is over.
  bool finished(std::uint64_t round) const {
    return configured_ && round > start_round_ + loop_rounds_;
  }

  // delta[u]: distance to source u (kInfDist if u is not a source or the
  // flood did not arrive within the loop).
  const std::vector<std::uint32_t>& delta() const { return delta_; }
  // parent_index[u]: neighbor index toward source u (kNoParent if none);
  // the trees T_u of the paper, stored distributedly.
  const std::vector<std::uint32_t>& parent_index() const { return parent_; }
  // Smallest cycle witness observed (Lemma 7 rule applied to the S floods):
  // min over duplicate receipts of delta[u] + claimed distance. kInfDist if
  // none. Genuine upper bound on the girth; at most girth + 2*max_s d(s, C)
  // for the minimum cycle C (used by Theorem 5).
  std::uint32_t girth_witness() const { return girth_witness_; }
  // Largest finite delta (used by Theorem 4's eccentricity estimate).
  std::uint32_t max_delta() const;

  // How often a known source's distance was improved by a later claim (see
  // the min-merge note in ssp.cc). Exposed for tests/benches.
  std::uint64_t late_improvements() const { return late_improvements_; }

 private:
  using Entry = std::pair<std::uint32_t, std::uint32_t>;  // (dist, id)

  NodeId id_;
  NodeId n_;
  bool in_s_;
  bool configured_ = false;
  std::uint64_t start_round_ = 0;
  std::uint64_t loop_rounds_ = 0;

  std::vector<std::uint32_t> delta_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> in_l_;
  // L_i per neighbor, ordered by (distance, id): the edge priority. The
  // extended abstract orders by id alone, but id-only priority provably
  // cannot deliver exact distances (see the header note); (dist, id) order
  // is the classical source-detection fix and preserves the paper's
  // delay-charging argument verbatim.
  std::vector<std::set<Entry>> lists_;
  std::vector<std::uint32_t> last_sent_;       // id sent last round per nbr
  std::vector<std::uint32_t> last_sent_dist_;  // wire distance it carried
  std::vector<std::uint8_t> heard_from_;  // token received this round
  std::uint32_t girth_witness_ = kInfDist;
  std::uint64_t late_improvements_ = 0;
  bool storage_ready_ = false;
  std::uint32_t cap_ = 0;            // 0 = unlimited
  std::set<Entry> learned_;          // (dist, id), maintained only with a cap

  struct PendingReceipt {
    std::uint32_t src;
    std::uint32_t dist;
    std::uint32_t from_index;
  };

  void ensure_storage(congest::RoundCtx& ctx);
  void learn(std::uint32_t src, std::uint32_t dist, std::uint32_t from_index);
  void merge_pending();
  void resolve_success(std::uint32_t i);

  std::vector<PendingReceipt> pending_;        // this round's accepted claims
  std::vector<std::uint32_t> fresh_this_round_;  // sources first seen now
};

struct SspOptions {
  congest::EngineConfig engine{};
};

struct SspResult {
  std::vector<NodeId> sources;
  // dist[v][u] for u in 0..n-1: distance from v to u if u is a source
  // (kInfDist otherwise). Kept dense for simplicity of validation.
  std::vector<std::vector<std::uint32_t>> delta;
  // parent_index[v][u]: index (in v's adjacency list) of v's parent in
  // source u's BFS tree T_u (kNoParent if v learned no distance to u, or
  // v == u) — the distributedly stored trees of Remark 4, harvested so that
  // callers (core/repair.h) can rebuild next-hop tables from repaired rows.
  std::vector<std::vector<std::uint32_t>> parent_index;
  std::uint32_t leader_ecc = 0;
  std::uint32_t d0 = 0;                  // the broadcast 2*ecc(leader) bound
  std::uint64_t loop_rounds = 0;         // schedule_length(|S|, D0)
  std::uint32_t min_girth_witness = kInfDist;  // min over nodes
  std::uint64_t total_late_improvements = 0;   // summed over nodes

  // Crash survival (DESIGN.md §10): kDegraded when nodes crashed or the
  // failure detector fired; delta is then partial, `coverage` (one entry per
  // element of `sources`) says how partial over the surviving nodes.
  congest::RunStatus status = congest::RunStatus::kCompleted;
  std::vector<std::uint8_t> survived;   // per node: 1 = alive at harvest
  std::vector<RowCoverage> coverage;    // per source, over survivors
  std::vector<NodeId> degraded_nodes;   // survivors that saw a failure notice

  congest::RunStats stats;
};

// Runs Algorithm 2 on a connected graph with the given source set
// (`in_s[v]` per node — each node only knows its own membership, as in the
// paper; |S| is counted by the tree echo).
SspResult run_ssp(const Graph& g, std::span<const NodeId> sources,
                  const SspOptions& options = {});

}  // namespace dapsp::core
