#include "core/ecc_approx.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/kdom.h"
#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "core/ssp.h"

namespace dapsp::core {
namespace {

constexpr std::uint32_t kTagK = 40;       // broadcast: (k)
constexpr std::uint32_t kTagPick = 41;    // broadcast: (residue, |DOM|, delta)
constexpr std::uint32_t kTagSummary = 42; // convergecast: (max est, min est)
constexpr std::uint32_t kTagResult = 43;  // broadcast: (diam est, rad est)

class EccApproxProcess final : public congest::Process {
 public:
  EccApproxProcess(NodeId id, NodeId n, double epsilon)
      : id_(id),
        n_(n),
        epsilon_(epsilon),
        ssp_(id, n, /*in_s=*/false),
        k_bcast_(kTagK),
        pick_bcast_(kTagPick),
        summary_up_(kTagSummary, Convergecast::Op::kMax, Convergecast::Op::kMin),
        result_bcast_(kTagResult) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (kdom_.started() && kdom_.handle(r)) continue;
      if (ssp_member_decided_ && ssp_.handle(ctx, r)) continue;
      if (k_bcast_.handle(r)) {
        k_ = k_bcast_.value(0);
        d0_ = k_bcast_.value(1);
        kdom_.start(k_);
      } else if (pick_bcast_.handle(r)) {
        adopt_pick(ctx);
      } else if (summary_up_.handle(r)) {
      } else if (result_bcast_.handle(r)) {
        adopt_result();
      }
    }

    tree_.advance(ctx);

    // Root: choose k once T1 is complete.
    if (id_ == 0 && tree_.root_complete() && !k_sent_) {
      k_sent_ = true;
      d0_ = 2 * tree_.root_ecc();
      k_ = static_cast<std::uint32_t>(
          std::floor(epsilon_ * static_cast<double>(d0_) / 8.0));
      k_bcast_.start(k_, d0_);
      kdom_.start(k_);
    }
    k_bcast_.advance(ctx, tree_);
    if (kdom_.started()) kdom_.advance(ctx, tree_);

    // Root: pick the residue and schedule the DOM-SP loop.
    if (id_ == 0 && !pick_sent_ && kdom_.started() &&
        kdom_.root_counts_complete(tree_)) {
      pick_sent_ = true;
      const std::uint32_t residue = kdom_.root_best_residue();
      const std::uint32_t dom_size = kdom_.root_dom_size();
      const std::uint32_t delta = tree_.root_ecc() + 1;
      pick_bcast_.start(residue, dom_size, delta);
      adopt_pick(ctx);
    }
    pick_bcast_.advance(ctx, tree_);

    if (ssp_member_decided_) {
      ssp_.advance(ctx);
      // Loop over: estimate and fold.
      if (ssp_.finished(ctx.round()) && !armed_) {
        armed_ = true;
        ecc_estimate_ = ssp_.max_delta() + k_;
        summary_up_.arm(ecc_estimate_, ecc_estimate_);
      }
    }
    if (armed_) summary_up_.advance(ctx, tree_);
    if (id_ == 0 && summary_up_.complete() && !result_sent_) {
      result_sent_ = true;
      result_bcast_.start(summary_up_.value(0), summary_up_.value(1));
      adopt_result();
    }
    result_bcast_.advance(ctx, tree_);

    quiescent_ = tree_.finished(id_) && have_result_ && result_bcast_.idle();
  }

  bool done() const override { return quiescent_; }

  std::uint32_t ecc_estimate() const { return ecc_estimate_; }
  std::uint32_t diameter_estimate() const { return result_[0]; }
  std::uint32_t radius_estimate() const { return result_[1]; }
  bool in_center_approx() const {
    return ecc_estimate_ <= std::uint64_t{result_[1]} + k_;
  }
  bool in_peripheral_approx() const {
    return std::uint64_t{ecc_estimate_} + k_ >= result_[0];
  }
  bool is_dominator() const { return is_dominator_; }
  std::uint32_t k() const { return k_; }
  std::uint32_t d0() const { return d0_; }
  std::uint32_t dom_size() const { return dom_size_; }

 private:
  void adopt_pick(congest::RoundCtx& ctx) {
    if (ssp_member_decided_) return;
    const std::uint32_t residue = pick_bcast_.delivered()
                                      ? pick_bcast_.value(0)
                                      : kdom_.root_best_residue();
    // (Root adopts directly; others from the broadcast payload.)
    const std::uint32_t dom_size = pick_bcast_.delivered()
                                       ? pick_bcast_.value(1)
                                       : kdom_.root_dom_size();
    const std::uint32_t delta = pick_bcast_.delivered()
                                    ? pick_bcast_.value(2)
                                    : 0;  // unused for root
    is_dominator_ = KdomMachine::member(tree_, id_, k_, residue);
    dom_size_ = dom_size;
    // Synchronized loop start: the root sent PICK in round T_b; node v
    // received it at T_b + dist(v).
    const std::uint64_t t_start =
        id_ == 0 ? ctx.round() + (tree_.root_ecc() + 1)
                 : ctx.round() - tree_.dist() + delta;
    ssp_ = SspMachine(id_, n_, is_dominator_);
    ssp_.configure(t_start, SspMachine::schedule_length(dom_size, d0_));
    ssp_member_decided_ = true;
  }

  void adopt_result() {
    result_ = {result_bcast_.value(0), result_bcast_.value(1)};
    have_result_ = true;
  }

  NodeId id_;
  NodeId n_;
  double epsilon_;
  TreeMachine tree_;
  KdomMachine kdom_;
  SspMachine ssp_;
  Broadcast k_bcast_;
  Broadcast pick_bcast_;
  Convergecast summary_up_;
  Broadcast result_bcast_;

  bool k_sent_ = false;
  bool pick_sent_ = false;
  bool result_sent_ = false;
  bool ssp_member_decided_ = false;
  bool armed_ = false;
  bool have_result_ = false;
  bool quiescent_ = false;
  bool is_dominator_ = false;
  std::uint32_t k_ = 0;
  std::uint32_t d0_ = 0;
  std::uint32_t dom_size_ = 0;
  std::uint32_t ecc_estimate_ = 0;
  std::array<std::uint32_t, 2> result_{};
};

}  // namespace

EccApproxResult run_ecc_approx(const Graph& g,
                               const EccApproxOptions& options) {
  if (options.epsilon <= 0.0) {
    throw std::invalid_argument("run_ecc_approx: epsilon must be > 0");
  }
  const NodeId n = g.num_nodes();
  congest::Engine engine(g, options.engine);
  engine.init([&](NodeId v) {
    return std::make_unique<EccApproxProcess>(v, n, options.epsilon);
  });

  EccApproxResult out;
  out.stats = engine.run();
  out.ecc_estimate.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<EccApproxProcess>(v);
    out.ecc_estimate[v] = p.ecc_estimate();
    if (p.in_center_approx()) out.center_approx.push_back(v);
    if (p.in_peripheral_approx()) out.peripheral_approx.push_back(v);
    if (v == 0) {
      out.k = p.k();
      out.d0 = p.d0();
      out.dom_size = p.dom_size();
      out.diameter_estimate = p.diameter_estimate();
      out.radius_estimate = p.radius_estimate();
    }
  }
  return out;
}

}  // namespace dapsp::core
