// A distributed Aingworth-style (x,3/2) diameter estimator in
// O~(sqrt(n) + D) rounds — the Section 3.3 / 3.6 direction, realized with
// the paper's own machinery plus truncated source detection.
//
// Section 3.3 discusses implementing the sequential Aingworth-Chekuri-
// Indyk-Motwani (x,3/2) approximation distributedly; the companion paper
// [33] achieved O(D*sqrt(n)) by running the ~sqrt(n) BFS sequentially, and
// Corollary 1 combines that with Theorem 4. Running the SAME plan through
// Algorithm 2 instead of sequential BFS removes the D factor:
//
//   1. truncated source detection with S = V and cap s = sqrt(n log n):
//      every node learns its s nearest nodes (its partial s-BFS) in
//      O(s + D) rounds — Algorithm 2's lists, kept to the s
//      lexicographically smallest (distance, id) claims;
//   2. w := argmax_v (radius of v's partial ball)   (convergecast);
//   3. a full BFS from w teaches everyone d(v, w); the ball
//      B(w, r_s(w)) (a superset of w's s nearest) self-selects;
//   4. every node independently joins a hitting-set sample DOM with
//      probability ~ln(n)/s (whp DOM hits every partial ball — the
//      randomized stand-in for [2]'s greedy hitting set);
//   5. one S-SP run from {w} u B(w, r_s(w)) u DOM (O(|S| + D) rounds);
//      the estimate is the largest distance any node sees — the maximum
//      eccentricity over all those sources.
//
// Guarantee (as in [2], whp): floor(2D/3) <= estimate <= D; report
// ceil(3*estimate/2) to get a one-sided (x,3/2) answer. Cost:
// O(s + |S| + D) = O~(sqrt(n) + D) rounds.
#pragma once

#include <cstdint>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

struct ThreeHalvesOptions {
  congest::EngineConfig engine{};
  std::uint64_t seed = 1;
  std::uint32_t s = 0;  // 0 = ceil(sqrt(n log n))
};

struct ThreeHalvesRun {
  std::uint32_t estimate = 0;       // max ecc over sources: in [2D/3, D] whp
  std::uint32_t answer = 0;         // ceil(3*estimate/2): in [D, 3D/2] whp
  NodeId deepest = 0;               // w
  std::uint32_t ball_radius = 0;    // r_s(w)
  std::uint32_t num_sources = 0;    // |{w} u ball u DOM|
  congest::RunStats stats;
};

// Connected graphs only.
ThreeHalvesRun run_three_halves_diameter(const Graph& g,
                                         const ThreeHalvesOptions& o = {});

}  // namespace dapsp::core
