// Self-healing APSP: repair of degraded runs via S-SP (DESIGN.md §13).
//
// PR 2 made degraded runs honest (RunStatus::kDegraded, per-row coverage,
// certify_rows); this module closes the loop. The paper's Algorithm 2 is the
// repair tool: S-SP recomputes exactly the suspect source rows on the
// surviving subgraph in O(|S_missing| + D) rounds — the distributed analogue
// of recompute-what-broke strategies, and far cheaper than restarting the
// whole O(n)-round APSP when only a few rows were damaged.
//
// repair_apsp() pipeline, over a degraded ApspResult:
//   1. take stock: recompute per-row coverage over the survivors; zero the
//      rows of crashed sources to all-infinite (a dead source is unreachable
//      in the surviving subgraph, so all-infinite is its exact — and
//      certifiable — row);
//   2. find suspects: either supplied by the caller (RepairOptions::suspects
//      — the service's dirty-region analyzer path, skipping detection
//      entirely), or every surviving row is run through the distributed
//      certificate and the failures become S_missing (rule (c) catches
//      stale-relay rows whose entries no surviving neighborhood can witness;
//      exact-but-partial rows pass, making repeated repair a no-op);
//   3. repair: per connected component of the surviving subgraph, re-run
//      S-SP with the component's suspects as the source set and merge the
//      resulting delta / parent_index into dist / next_hop (cross-component
//      entries become infinite — correct on the surviving subgraph);
//   4. re-certify every row (crashed sources included — their all-infinite
//      rows certify vacuously) and report before/after coverage histograms.
//
// Round-bound check: component repairs are independent (they would run
// concurrently on the real network), so the repair cost is the maximum over
// components of the component's S-SP rounds. Each component run is bounded
// by kRepairRoundC * (|S_c| + D0_c) + kRepairRoundSlack real rounds, where
// D0_c = 2*ecc(component leader) is the component's broadcast diameter bound
// (D0_c <= 2*D_c, so this is the paper's O(|S| + D)): the run costs a tree
// build (~1.5*D0_c), a parameter broadcast (~0.5*D0_c) and the doubled
// Theorem 3 schedule (2*(|S_c| + D0_c) + 4), comfortably within c = 4 and a
// small additive slack. The check is evaluated at runtime and reported as
// RepairReport::bound_ok (a regression here means the implementation lost
// the paper's asymptotics, not that the repair is wrong).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "congest/engine.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "graph/graph.h"
#include "util/metrics.h"

namespace dapsp::core {

// Multiplier and additive slack of the asserted repair round bound
// rounds <= kRepairRoundC * (|S_component| + D0_component) + kRepairRoundSlack.
inline constexpr std::uint64_t kRepairRoundC = 4;
inline constexpr std::uint64_t kRepairRoundSlack = 16;

struct RepairOptions {
  // Engine settings for the repair S-SP runs and the certification passes.
  // Faults, process wrappers and instrumentation sinks are stripped: repair
  // models the post-incident network, where the surviving subgraph is
  // healthy. threads / bandwidth_ids / max_rounds are honored.
  congest::EngineConfig engine{};

  // Externally-supplied suspect rows (core/service.h's dirty-region
  // analyzer). When set, the detection pass is skipped and exactly these
  // surviving sources are recomputed, so the repair costs O(|suspects| + D)
  // rounds with no O(n) certification sweep. Out-of-range or dead sources
  // throw. A supplied *empty* set short-circuits: with certify_all false no
  // engine runs at all and the report comes back zero-cost. nullopt = detect
  // suspects from coverage + certificates, as before.
  std::optional<std::vector<NodeId>> suspects;

  // When false, the post-repair certificate covers only the repaired rows
  // instead of all n — incremental-service mode, where global certification
  // is amortized across epochs (core/service.h tracks per-row status and
  // scrubs periodically). Default true: certify everything, the one-shot
  // recovery behavior.
  bool certify_all = true;
};

struct RepairReport {
  // The suspect sources (ascending): surviving nodes whose row was lost,
  // partial, or failed pre-repair certification.
  std::vector<NodeId> suspect_sources;
  std::uint32_t rows_repaired = 0;  // |suspect_sources|

  // Real engine rounds of the repair: max over surviving components that
  // re-ran S-SP (component repairs are independent).
  std::uint64_t repair_rounds = 0;
  // The asserted bound: max over repaired components of
  // kRepairRoundC * (|S_c| + D0_c) + kRepairRoundSlack.
  std::uint64_t round_bound = kRepairRoundSlack;
  bool bound_ok = true;  // repair_rounds of every component within its bound

  // Post-repair certificate: over ALL source rows (crashed sources certify
  // as all-infinite) by default, or only the repaired rows when
  // RepairOptions::certify_all is false. The acceptance bar:
  // certificate.all_certified().
  CertifyReport certificate;

  // Row-coverage distribution before and after the repair, indexed by the
  // RowCoverage enum value (0 = lost, 1 = partial, 2 = complete).
  Histogram coverage_before;
  Histogram coverage_after;

  // Stats accumulated over the repair sub-runs and certification passes
  // (bandwidth budgets differ per component, so bandwidth_bits is zeroed).
  congest::RunStats stats;

  bool all_certified() const noexcept { return certificate.all_certified(); }

  // One-line human-readable rendering for CLI / examples.
  std::string debug_string() const;
};

// Repairs a degraded pebble-APSP result in place: dist / next_hop rows of
// suspect sources are recomputed on the surviving subgraph, crashed-source
// rows are zeroed to all-infinite, and result.coverage is refreshed. The
// result's status is left untouched (it records what happened); the repair's
// success is the returned report's all_certified(). Also valid on a
// completed result (no suspects, certification only). Throws
// std::invalid_argument when result's tables do not match g.
RepairReport repair_apsp(const Graph& g, ApspResult& result,
                         const RepairOptions& options = {});

}  // namespace dapsp::core
