#include "core/apsp_applications.h"

#include <memory>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"

namespace dapsp::core {
namespace {

ApspResult run_with(const Graph& g, const congest::EngineConfig& cfg) {
  ApspOptions options;
  options.engine = cfg;
  options.aggregate = true;
  return run_pebble_apsp(g, options);
}

}  // namespace

EccRun distributed_eccentricities(const Graph& g,
                                  const congest::EngineConfig& cfg) {
  ApspResult r = run_with(g, cfg);
  return EccRun{std::move(r.ecc), r.stats};
}

PropertyRun distributed_diameter(const Graph& g,
                                 const congest::EngineConfig& cfg) {
  ApspResult r = run_with(g, cfg);
  return PropertyRun{r.diameter, r.stats};
}

PropertyRun distributed_radius(const Graph& g,
                               const congest::EngineConfig& cfg) {
  ApspResult r = run_with(g, cfg);
  return PropertyRun{r.radius, r.stats};
}

SetRun distributed_center(const Graph& g, const congest::EngineConfig& cfg) {
  ApspResult r = run_with(g, cfg);
  SetRun out;
  out.stats = r.stats;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.is_center[v]) out.members.push_back(v);
  }
  return out;
}

SetRun distributed_peripheral(const Graph& g,
                              const congest::EngineConfig& cfg) {
  ApspResult r = run_with(g, cfg);
  SetRun out;
  out.stats = r.stats;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.is_peripheral[v]) out.members.push_back(v);
  }
  return out;
}

namespace {

// One leader BFS with echo, then a broadcast of 2*ecc(leader): Remark 1.
class TwoApproxProcess final : public congest::Process {
 public:
  explicit TwoApproxProcess(NodeId id) : id_(id), result_(/*tag=*/30) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (result_.handle(r)) estimate_ = result_.value(0);
    }
    tree_.advance(ctx);
    if (id_ == 0 && tree_.root_complete() && !sent_) {
      sent_ = true;
      estimate_ = 2 * tree_.root_ecc();
      result_.start(estimate_);
    }
    result_.advance(ctx, tree_);
    quiescent_ = tree_.finished(id_) && estimate_ != kInfDist && result_.idle();
  }

  bool done() const override { return quiescent_; }
  std::uint32_t estimate() const { return estimate_; }

 private:
  NodeId id_;
  TreeMachine tree_;
  Broadcast result_;
  bool sent_ = false;
  std::uint32_t estimate_ = kInfDist;
  bool quiescent_ = false;
};

}  // namespace

PropertyRun distributed_diameter_2approx(const Graph& g,
                                         const congest::EngineConfig& cfg) {
  congest::Engine engine(g, cfg);
  engine.init([](NodeId v) { return std::make_unique<TwoApproxProcess>(v); });
  PropertyRun out;
  out.stats = engine.run();
  out.value = engine.process_as<TwoApproxProcess>(0).estimate();
  return out;
}

}  // namespace dapsp::core
