#include "core/query.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "graph/delta.h"
#include "util/journal.h"

namespace dapsp::core {
namespace {

// The read path hands out reinterpret_cast'd u32 table views straight into
// the (4-byte-aligned) blob, which is only the on-disk format on
// little-endian hosts. Every target this repo builds for is LE; refuse to
// compile elsewhere rather than serve byte-swapped distances.
static_assert(std::endian::native == std::endian::little,
              "DQRY snapshots assume a little-endian host");

constexpr std::size_t kQueryHeaderBytes = 40;
constexpr std::uint32_t kMaxQueryNodes = 1u << 20;

std::uint32_t load_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return std::uint64_t{load_u32(p)} | std::uint64_t{load_u32(p + 4)} << 32;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

struct QueryLayout {
  std::uint64_t dist_off;    // == kQueryHeaderBytes
  std::uint64_t hop_off;
  std::uint64_t dom_off;
  std::uint64_t labels_off;
  std::uint64_t active_off;
  std::uint64_t status_off;
  std::uint64_t checksum_off;
  std::uint64_t total;
};

QueryLayout layout_for(std::uint64_t n, std::uint64_t dom_count) {
  QueryLayout lo;
  const std::uint64_t table = 4 * n * n;
  lo.dist_off = kQueryHeaderBytes;
  lo.hop_off = lo.dist_off + table;
  lo.dom_off = lo.hop_off + table;
  lo.labels_off = lo.dom_off + 4 * dom_count;
  lo.active_off = lo.labels_off + 4 * n * dom_count;
  lo.status_off = lo.active_off + n;
  lo.checksum_off = lo.status_off + n;
  lo.total = lo.checksum_off + 8;
  return lo;
}

}  // namespace

CheckpointError classify_query_blob(
    std::span<const std::uint8_t> blob) noexcept {
  if (blob.size() < kQueryHeaderBytes + 8) return CheckpointError::kTruncated;
  if (std::memcmp(blob.data(), kQueryMagic, 4) != 0) {
    return CheckpointError::kBadMagic;
  }
  if (std::memcmp(blob.data() + 4, kQueryVersion, 4) != 0) {
    return CheckpointError::kVersionMismatch;
  }
  const std::uint32_t n = load_u32(blob.data() + 8);
  const std::uint32_t flags = load_u32(blob.data() + 28);
  const std::uint32_t dom_count = load_u32(blob.data() + 36);
  if (n == 0 || n > kMaxQueryNodes) return CheckpointError::kBadPayload;
  if ((flags & ~(kQueryFlagLabels | kQueryFlagDegraded)) != 0) {
    return CheckpointError::kBadPayload;
  }
  const bool has_labels = (flags & kQueryFlagLabels) != 0;
  if (!has_labels && dom_count != 0) return CheckpointError::kBadPayload;
  if (has_labels && (dom_count == 0 || dom_count > n)) {
    return CheckpointError::kBadPayload;
  }
  const QueryLayout lo = layout_for(n, dom_count);
  if (blob.size() != lo.total) return CheckpointError::kTruncated;
  const std::uint64_t want = load_u64(blob.data() + lo.checksum_off);
  if (fnv1a64(blob.first(lo.checksum_off)) != want) {
    return CheckpointError::kChecksumMismatch;
  }
  // Field-level sanity: dominator ids in-universe, statuses in-enum,
  // active mask boolean.
  const std::uint8_t* base = blob.data();
  for (std::uint32_t i = 0; i < dom_count; ++i) {
    if (load_u32(base + lo.dom_off + 4 * std::uint64_t{i}) >= n) {
      return CheckpointError::kBadPayload;
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (base[lo.active_off + v] > 1) return CheckpointError::kBadPayload;
    if (base[lo.status_off + v] >
        static_cast<std::uint8_t>(RowStatus::kStale)) {
      return CheckpointError::kBadPayload;
    }
  }
  return CheckpointError::kNone;
}

void QuerySnapshot::bind(std::span<const std::uint8_t> blob) {
  const std::uint8_t* base = blob.data();
  n_ = load_u32(base + 8);
  epoch_ = load_u64(base + 12);
  sequence_ = load_u64(base + 20);
  flags_ = load_u32(base + 28);
  k_ = load_u32(base + 32);
  dom_count_ = load_u32(base + 36);
  const QueryLayout lo = layout_for(n_, dom_count_);
  dist_ = reinterpret_cast<const std::uint32_t*>(base + lo.dist_off);
  hop_ = reinterpret_cast<const std::uint32_t*>(base + lo.hop_off);
  dom_ = reinterpret_cast<const std::uint32_t*>(base + lo.dom_off);
  labels_ = reinterpret_cast<const std::uint32_t*>(base + lo.labels_off);
  active_ = base + lo.active_off;
  status_ = base + lo.status_off;
}

QuerySnapshot QuerySnapshot::from_blob(std::vector<std::uint8_t> bytes) {
  const CheckpointError err = classify_query_blob(bytes);
  if (err != CheckpointError::kNone) {
    throw std::runtime_error(std::string("QuerySnapshot: ") + to_string(err) +
                             " blob");
  }
  QuerySnapshot snap;
  snap.owned_ = std::move(bytes);
  snap.bind(snap.owned_);
  return snap;
}

QuerySnapshot QuerySnapshot::from_file(const std::string& path) {
  MappedBlob mapped = MappedBlob::map_file(path);
  const CheckpointError err = classify_query_blob(mapped.bytes());
  if (err != CheckpointError::kNone) {
    throw std::runtime_error(std::string("QuerySnapshot: ") + to_string(err) +
                             " blob at " + path);
  }
  QuerySnapshot snap;
  snap.mapped_ = std::move(mapped);
  snap.bind(snap.mapped_.bytes());
  return snap;
}

std::span<const std::uint8_t> QuerySnapshot::bytes() const noexcept {
  return owned_.empty() ? mapped_.bytes()
                        : std::span<const std::uint8_t>(owned_);
}

QueryAnswer QuerySnapshot::p2p(NodeId from, NodeId to) const {
  if (from >= n_ || to >= n_) {
    throw std::invalid_argument("QuerySnapshot::p2p: node out of universe");
  }
  QueryAnswer q;
  if (active_[from] == 0 || active_[to] == 0) return q;
  q.active = true;
  const std::size_t idx = std::size_t{to} * n_ + from;
  q.dist = dist_[idx];
  q.next_hop = hop_[idx];
  q.status = status(to);
  return q;
}

void QuerySnapshot::p2p_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    std::vector<QueryAnswer>& out, WorkBudget* budget) const {
  out.clear();
  out.reserve(pairs.size());
  for (const auto& [from, to] : pairs) {
    // One cell per pair; an exhausted budget truncates the batch to the
    // answered prefix (out.size() < pairs.size()).
    if (budget != nullptr && budget->grant(1) == 0) return;
    out.push_back(p2p(from, to));
  }
}

KNearestAnswer QuerySnapshot::k_nearest(NodeId u, std::uint32_t k,
                                        WorkBudget* budget) const {
  if (u >= n_) {
    throw std::invalid_argument(
        "QuerySnapshot::k_nearest: node out of universe");
  }
  KNearestAnswer ans;
  if (active_[u] == 0) return ans;
  ans.active = true;
  ans.status = status(u);
  const std::uint32_t* row = dist_ + std::size_t{u} * n_;
  // The budget bounds how much of the row this query may scan; the answer
  // stays exact over the scanned prefix.
  const NodeId scan = budget == nullptr
                          ? n_
                          : static_cast<NodeId>(std::min<std::uint64_t>(
                                n_, budget->grant(n_)));
  std::vector<NearNeighbor> cand;
  cand.reserve(scan);
  for (NodeId v = 0; v < scan; ++v) {
    if (v == u || active_[v] == 0 || row[v] == kInfDist) continue;
    cand.push_back({v, row[v]});
  }
  const auto by_dist_then_id = [](const NearNeighbor& a,
                                  const NearNeighbor& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.node < b.node;
  };
  const std::size_t keep = std::min<std::size_t>(k, cand.size());
  std::partial_sort(cand.begin(),
                    cand.begin() + static_cast<std::ptrdiff_t>(keep),
                    cand.end(), by_dist_then_id);
  cand.resize(keep);
  ans.nearest = std::move(cand);
  if (scan < n_) {
    ans.truncated = true;
    ans.scanned = scan;
  }
  return ans;
}

EccentricityAnswer QuerySnapshot::eccentricity(NodeId u,
                                               WorkBudget* budget) const {
  if (u >= n_) {
    throw std::invalid_argument(
        "QuerySnapshot::eccentricity: node out of universe");
  }
  EccentricityAnswer ans;
  if (active_[u] == 0) return ans;
  ans.active = true;
  ans.status = status(u);
  const std::uint32_t* row = dist_ + std::size_t{u} * n_;
  const NodeId scan = budget == nullptr
                          ? n_
                          : static_cast<NodeId>(std::min<std::uint64_t>(
                                n_, budget->grant(n_)));
  for (NodeId v = 0; v < scan; ++v) {
    if (active_[v] == 0) continue;
    if (row[v] == kInfDist) {
      if (v != u) ++ans.unreachable;
      continue;
    }
    if (row[v] > ans.ecc) {
      ans.ecc = row[v];
      ans.farthest = v;
    }
  }
  if (ans.farthest == kNoNextHop) ans.farthest = u;  // isolated-in-component
  if (scan < n_) {
    ans.truncated = true;
    ans.scanned = scan;
  }
  return ans;
}

std::uint32_t QuerySnapshot::label_estimate(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) {
    throw std::invalid_argument(
        "QuerySnapshot::label_estimate: node out of universe");
  }
  if (!has_labels()) {
    throw std::logic_error(
        "QuerySnapshot::label_estimate: snapshot has no label section");
  }
  if (u == v) return 0;
  return DistanceLabeling::combine(label_row(u), label_row(v));
}

// ---- Encoders ------------------------------------------------------------

namespace {

std::vector<std::uint8_t> encode_common(
    std::uint32_t n, std::uint64_t epoch, std::uint64_t sequence,
    bool degraded, const DistanceLabeling* labels,
    std::span<const std::uint8_t> active, std::span<const RowStatus> status,
    const auto& dist_to, const auto& hop_to) {
  if (n == 0) {
    throw std::invalid_argument("encode_query_snapshot: empty universe");
  }
  if (active.size() != n || status.size() != n) {
    throw std::invalid_argument(
        "encode_query_snapshot: active/status size mismatch");
  }
  std::uint32_t dom_count = 0;
  std::uint32_t flags = degraded ? kQueryFlagDegraded : 0u;
  if (labels != nullptr) {
    dom_count = static_cast<std::uint32_t>(labels->dominators().size());
    flags |= kQueryFlagLabels;
    if (dom_count == 0 || dom_count > n) {
      throw std::invalid_argument(
          "encode_query_snapshot: label section does not match universe");
    }
  }
  const QueryLayout lo = layout_for(n, dom_count);
  std::vector<std::uint8_t> out(lo.total);
  std::uint8_t* base = out.data();
  std::memcpy(base, kQueryMagic, 4);
  std::memcpy(base + 4, kQueryVersion, 4);
  store_u32(base + 8, n);
  store_u64(base + 12, epoch);
  store_u64(base + 20, sequence);
  store_u32(base + 28, flags);
  store_u32(base + 32, labels != nullptr ? labels->k() : 0u);
  store_u32(base + 36, dom_count);
  // Row s = served values toward source s, indexed by node v.
  for (std::uint32_t s = 0; s < n; ++s) {
    std::uint8_t* drow = base + lo.dist_off + 4 * std::uint64_t{s} * n;
    std::uint8_t* hrow = base + lo.hop_off + 4 * std::uint64_t{s} * n;
    for (std::uint32_t v = 0; v < n; ++v) {
      store_u32(drow + 4 * std::size_t{v}, dist_to(v, s));
      store_u32(hrow + 4 * std::size_t{v}, hop_to(v, s));
    }
  }
  if (labels != nullptr) {
    const std::vector<NodeId>& dom = labels->dominators();
    for (std::uint32_t i = 0; i < dom_count; ++i) {
      store_u32(base + lo.dom_off + 4 * std::uint64_t{i}, dom[i]);
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::span<const std::uint32_t> lab = labels->label(v);
      if (lab.size() != dom_count) {
        throw std::invalid_argument(
            "encode_query_snapshot: ragged label row");
      }
      std::uint8_t* lrow =
          base + lo.labels_off + 4 * std::uint64_t{v} * dom_count;
      for (std::uint32_t i = 0; i < dom_count; ++i) {
        store_u32(lrow + 4 * std::size_t{i}, lab[i]);
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    base[lo.active_off + v] = active[v] != 0 ? 1 : 0;
    base[lo.status_off + v] = static_cast<std::uint8_t>(status[v]);
  }
  store_u64(base + lo.checksum_off,
            fnv1a64(std::span<const std::uint8_t>(out).first(lo.checksum_off)));
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_query_snapshot(
    const DapspService& svc, std::uint64_t sequence, bool degraded,
    const DistanceLabeling* labels) {
  const DistanceMatrix& dist = svc.served_dist();
  const std::vector<std::vector<NodeId>>& hop = svc.served_next_hop();
  const std::uint32_t n = svc.dynamic_graph().universe();
  return encode_common(
      n, svc.epoch(), sequence, degraded, labels,
      svc.dynamic_graph().active_mask(), svc.row_statuses(),
      [&](NodeId v, NodeId s) { return dist.at(v, s); },
      [&](NodeId v, NodeId s) { return hop[v][s]; });
}

std::vector<std::uint8_t> encode_query_snapshot_tables(
    const DistanceMatrix& dist,
    const std::vector<std::vector<NodeId>>* next_hop,
    std::span<const std::uint8_t> active, std::span<const RowStatus> status,
    std::uint64_t epoch, std::uint64_t sequence, bool degraded,
    const DistanceLabeling* labels) {
  const std::uint32_t n = static_cast<std::uint32_t>(dist.n());
  return encode_common(
      n, epoch, sequence, degraded, labels, active, status,
      [&](NodeId v, NodeId s) { return dist.at(v, s); },
      [&](NodeId v, NodeId s) {
        return next_hop != nullptr ? (*next_hop)[v][s] : kNoNextHop;
      });
}

// ---- SnapshotStore -------------------------------------------------------

SnapshotStore::~SnapshotStore() {
  // Readers are required to be gone; drop everything unconditionally.
  std::lock_guard<std::mutex> lk(retire_mu_);
  retired_.clear();
  current_owner_.reset();
}

void SnapshotStore::publish(std::unique_ptr<const QuerySnapshot> snap) {
  if (snap == nullptr) {
    throw std::invalid_argument("SnapshotStore::publish: null snapshot");
  }
  std::lock_guard<std::mutex> lk(retire_mu_);
  const QuerySnapshot* raw = snap.get();
  const QuerySnapshot* old = current_.exchange(raw, std::memory_order_seq_cst);
  // The epoch value during which `old` was last current: readers pinned at
  // an epoch <= this may still hold it.
  const std::uint64_t retire_epoch =
      epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (old != nullptr) {
    retired_.push_back({std::move(current_owner_), retire_epoch});
  }
  current_owner_ = std::move(snap);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  reclaim_locked();
}

void SnapshotStore::reclaim_locked() {
  std::uint64_t min_pin = kSlotIdle;
  for (const Slot& slot : slots_) {
    if (slot.claimed.load(std::memory_order_seq_cst) == 0) continue;
    min_pin = std::min(min_pin, slot.pin.load(std::memory_order_seq_cst));
  }
  // A snapshot retired at epoch r can be referenced only by a reader whose
  // pinned epoch is <= r, so it is free to reclaim once r < min_pin.
  std::erase_if(retired_, [min_pin](const Retired& r) {
    return r.retire_epoch < min_pin;
  });
}

std::size_t SnapshotStore::retired_pending() const {
  std::lock_guard<std::mutex> lk(retire_mu_);
  return retired_.size();
}

SnapshotReader::SnapshotReader(SnapshotStore& store, std::uint32_t max_spins)
    : store_(&store) {
  // Bounded spin-yield: a full claim sweep, then yield and retry. A burst of
  // short-lived readers cycling slots resolves within a few yields — only a
  // genuine reader leak (kMaxSnapshotReaders live readers) exhausts the
  // budget and throws. The slots_exhausted metric counts contended
  // constructions (once each, on the first failed sweep), not spins, so it
  // reads as "registrations that hit saturation".
  for (std::uint32_t spin = 0;; ++spin) {
    for (std::size_t i = 0; i < kMaxSnapshotReaders; ++i) {
      std::uint8_t expect = 0;
      if (store_->slots_[i].claimed.compare_exchange_strong(
              expect, 1, std::memory_order_seq_cst)) {
        slot_ = i;
        store_->slots_[i].pin.store(SnapshotStore::kSlotIdle,
                                    std::memory_order_seq_cst);
        return;
      }
    }
    if (spin == 0) {
      store_->slots_exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    if (spin >= max_spins) {
      throw std::runtime_error(
          "SnapshotReader: all reader slots claimed (spin budget exhausted)");
    }
    std::this_thread::yield();
  }
}

SnapshotReader::~SnapshotReader() {
  store_->slots_[slot_].pin.store(SnapshotStore::kSlotIdle,
                                  std::memory_order_seq_cst);
  store_->slots_[slot_].claimed.store(0, std::memory_order_seq_cst);
}

SnapshotRef SnapshotReader::acquire() {
  SnapshotStore::Slot& slot = store_->slots_[slot_];
  // Announce-then-verify: publish the epoch we intend to pin, then re-read.
  // Once the announced value is a current-or-earlier epoch that the writer
  // is guaranteed to observe before freeing anything retired at or after
  // it, the subsequent pointer load is protected. One iteration suffices in
  // the common case; the loop only spins while publishes race past us.
  std::uint64_t e = store_->epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.pin.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = store_->epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
  const QuerySnapshot* snap = store_->current_.load(std::memory_order_seq_cst);
  if (snap == nullptr) {
    slot.pin.store(SnapshotStore::kSlotIdle, std::memory_order_seq_cst);
    return {};
  }
  return SnapshotRef(store_, slot_, snap);
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    release();
    store_ = other.store_;
    slot_ = other.slot_;
    snap_ = other.snap_;
    other.store_ = nullptr;
    other.snap_ = nullptr;
  }
  return *this;
}

void SnapshotRef::release() noexcept {
  if (store_ != nullptr) {
    store_->slots_[slot_].pin.store(SnapshotStore::kSlotIdle,
                                    std::memory_order_seq_cst);
    store_ = nullptr;
    snap_ = nullptr;
  }
}

void ServingPublisher::on_snapshot(const DapspService& svc, bool degraded) {
  std::vector<std::uint8_t> blob =
      encode_query_snapshot(svc, sequence_++, degraded);
  store_->publish(std::make_unique<const QuerySnapshot>(
      QuerySnapshot::from_blob(std::move(blob))));
}

// ---- LabelCache ----------------------------------------------------------

std::span<const std::uint32_t> LabelCache::row(const QuerySnapshot& snap,
                                               NodeId u) {
  if (!snap.has_labels()) {
    throw std::logic_error("LabelCache::row: snapshot has no label section");
  }
  ++tick_;
  for (Entry& e : entries_) {
    if (e.sequence == snap.sequence() && e.source == u) {
      e.last_used = tick_;
      ++hits_;
      return e.row;
    }
  }
  ++misses_;
  std::vector<std::uint32_t> row(snap.n(), kInfDist);
  const std::span<const std::uint32_t> lu = snap.label_row(u);
  for (NodeId v = 0; v < snap.n(); ++v) {
    row[v] = v == u ? 0 : DistanceLabeling::combine(lu, snap.label_row(v));
  }
  if (capacity_ == 0) {  // caching disabled: compute-only path
    scratch_ = std::move(row);
    return scratch_;
  }
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
    entries_.erase(victim);
  }
  entries_.push_back({snap.sequence(), u, tick_, std::move(row)});
  return entries_.back().row;
}

std::uint32_t LabelCache::estimate(const QuerySnapshot& snap, NodeId u,
                                   NodeId v) {
  if (v >= snap.n()) {
    throw std::invalid_argument("LabelCache::estimate: node out of universe");
  }
  return row(snap, u)[v];
}

}  // namespace dapsp::core
