// Applications of the O(n) APSP algorithm (Section 4.2, Lemmas 2-7).
//
// These are thin named drivers over run_pebble_apsp: the paper derives each
// property by running Algorithm 1 and aggregating over T1 in O(D) extra
// rounds — exactly what the aggregation phase of the APSP process does. Each
// driver returns the property together with the round statistics, so tests
// and benches can assert both correctness and the O(n) complexity.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "core/pebble_apsp.h"
#include "graph/graph.h"

namespace dapsp::core {

struct PropertyRun {
  std::uint32_t value = 0;  // the scalar property (diameter/radius/girth)
  congest::RunStats stats;
};

struct SetRun {
  std::vector<NodeId> members;  // nodes that decided they belong to the set
  congest::RunStats stats;
};

struct EccRun {
  std::vector<std::uint32_t> ecc;  // per node (Definition 6: each node knows
                                   // its own eccentricity)
  congest::RunStats stats;
};

// Lemma 2: all eccentricities in O(n).
EccRun distributed_eccentricities(const Graph& g,
                                  const congest::EngineConfig& cfg = {});
// Lemma 3: diameter in O(n).
PropertyRun distributed_diameter(const Graph& g,
                                 const congest::EngineConfig& cfg = {});
// Lemma 4: radius in O(n).
PropertyRun distributed_radius(const Graph& g,
                               const congest::EngineConfig& cfg = {});
// Lemma 5: center in O(n).
SetRun distributed_center(const Graph& g,
                          const congest::EngineConfig& cfg = {});
// Lemma 6: peripheral vertices in O(n).
SetRun distributed_peripheral(const Graph& g,
                              const congest::EngineConfig& cfg = {});

// Remark 1: a (x,2)-approximation of the diameter (and of the radius and of
// every eccentricity) in O(D): one BFS with echo from the leader; every node
// learns 2*ecc(leader) >= D (Fact 1: ecc(leader) <= D <= 2 ecc(leader)).
PropertyRun distributed_diameter_2approx(const Graph& g,
                                         const congest::EngineConfig& cfg = {});

}  // namespace dapsp::core
