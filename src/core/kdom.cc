#include "core/kdom.h"

#include <algorithm>
#include <memory>

#include "core/primitives/aggregation.h"

namespace dapsp::core {

bool KdomMachine::handle(const congest::Received& r) {
  if (r.msg.kind != kKdomCount) return false;
  const std::uint32_t residue = r.msg.f[0];
  const std::uint32_t count = r.msg.f[1];
  counts_[residue] += count;
  if (child_progress_.size() <= r.from_index) {
    child_progress_.resize(r.from_index + 1, 0);
  }
  ++child_progress_[r.from_index];
  return true;
}

void KdomMachine::advance(congest::RoundCtx& ctx, const TreeMachine& tree) {
  if (!started_ || tree.dist() == kInfDist) return;
  if (!own_counted_) {
    counts_[tree.dist() % (k_ + 1)] += 1;
    own_counted_ = true;
  }
  // Only stream upward once the tree echo is done: before that the children
  // set is not final and counts could be sent without some child's share.
  if (!tree.finished(ctx.id())) return;
  if (send_cursor_ > k_) return;
  if (tree.parent_index() == kNoParent) return;  // root keeps the totals

  // Residue send_cursor_ may go up once every child has streamed it.
  for (const std::uint32_t child : tree.children()) {
    const std::uint32_t got =
        child < child_progress_.size() ? child_progress_[child] : 0;
    if (got <= send_cursor_) return;  // child hasn't delivered this residue
  }
  ctx.send(tree.parent_index(),
           congest::Message::make(kKdomCount, send_cursor_,
                                  counts_[send_cursor_]));
  ++send_cursor_;
}

bool KdomMachine::root_counts_complete(const TreeMachine& tree) const {
  if (!started_ || !own_counted_) return false;
  for (const std::uint32_t child : tree.children()) {
    const std::uint32_t got =
        child < child_progress_.size() ? child_progress_[child] : 0;
    if (got <= k_) return false;
  }
  return true;
}

std::uint32_t KdomMachine::root_best_residue() const {
  std::uint32_t best = 0;
  for (std::uint32_t r = 1; r <= k_; ++r) {
    if (counts_[r] < counts_[best]) best = r;
  }
  return best;
}

std::uint32_t KdomMachine::root_dom_size() const {
  const std::uint32_t r = root_best_residue();
  // The root (depth 0) is in residue class 0; if another class wins it joins
  // additionally.
  return counts_[r] + (r == 0 ? 0 : 1);
}

namespace {

constexpr std::uint32_t kTagKdomK = 20;
constexpr std::uint32_t kTagKdomPick = 21;

class KdomProcess final : public congest::Process {
 public:
  KdomProcess(NodeId id, std::uint32_t k)
      : id_(id), k_(k), k_bcast_(kTagKdomK), pick_bcast_(kTagKdomPick) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (kdom_.handle(r)) continue;
      if (k_bcast_.handle(r)) {
        kdom_.start(k_bcast_.value(0));
      } else if (pick_bcast_.handle(r)) {
        residue_ = pick_bcast_.value(0);
        dom_size_ = pick_bcast_.value(1);
        picked_ = true;
      }
    }

    tree_.advance(ctx);
    if (id_ == 0 && tree_.root_complete() && !k_sent_) {
      k_sent_ = true;
      k_bcast_.start(k_);
      kdom_.start(k_);
    }
    k_bcast_.advance(ctx, tree_);
    if (kdom_.started()) kdom_.advance(ctx, tree_);

    if (id_ == 0 && !pick_sent_ && kdom_.started() &&
        kdom_.root_counts_complete(tree_)) {
      pick_sent_ = true;
      residue_ = kdom_.root_best_residue();
      dom_size_ = kdom_.root_dom_size();
      picked_ = true;
      pick_bcast_.start(residue_, dom_size_);
    }
    pick_bcast_.advance(ctx, tree_);

    quiescent_ = tree_.finished(id_) && picked_ && pick_bcast_.idle() &&
                 k_bcast_.idle();
  }

  bool done() const override { return quiescent_; }

  bool is_member() const {
    return KdomMachine::member(tree_, id_, k_, residue_);
  }
  std::uint32_t residue() const { return residue_; }
  std::uint32_t dom_size() const { return dom_size_; }
  const TreeMachine& tree() const { return tree_; }

 private:
  NodeId id_;
  std::uint32_t k_;
  TreeMachine tree_;
  KdomMachine kdom_;
  Broadcast k_bcast_;
  Broadcast pick_bcast_;
  bool k_sent_ = false;
  bool pick_sent_ = false;
  bool picked_ = false;
  std::uint32_t residue_ = 0;
  std::uint32_t dom_size_ = 0;
  bool quiescent_ = false;
};

}  // namespace

KdomResult run_kdom(const Graph& g, std::uint32_t k,
                    const congest::EngineConfig& engine_config) {
  congest::Engine engine(g, engine_config);
  engine.init(
      [&](NodeId v) { return std::make_unique<KdomProcess>(v, k); });

  KdomResult out;
  out.k = k;
  out.stats = engine.run();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& p = engine.process_as<KdomProcess>(v);
    if (p.is_member()) out.dom.push_back(v);
    if (v == 0) {
      out.residue = p.residue();
      out.dom_size = p.dom_size();
      out.leader_ecc = p.tree().root_ecc();
    }
  }
  return out;
}

}  // namespace dapsp::core
