#include "core/durable.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "congest/trace.h"

namespace dapsp::core {

namespace {

using congest::TraceEvent;
using congest::TraceEventKind;

// Missing file reads as empty — classify_checkpoint_blob maps that to
// kMissing, which is the right answer for an absent generation slot.
std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

bool is_damage(CheckpointError e) {
  return e != CheckpointError::kNone && e != CheckpointError::kMissing;
}

// One journal record: the epoch the batch creates, the driver's opaque
// resume words, then the batch itself (self-delimiting; decode_churn_batch
// rejects trailing bytes).
std::vector<std::uint8_t> encode_record(std::uint64_t epoch,
                                        std::span<const std::uint64_t> words,
                                        const ChurnBatch& batch) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, epoch);
  put_u32(payload, static_cast<std::uint32_t>(words.size()));
  for (const std::uint64_t w : words) put_u64(payload, w);
  const std::vector<std::uint8_t> body = encode_churn_batch(batch);
  payload.insert(payload.end(), body.begin(), body.end());
  return payload;
}

struct DecodedRecord {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> words;
  ChurnBatch batch;
};

DecodedRecord decode_record(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "durable journal record");
  DecodedRecord rec;
  rec.epoch = r.u64();
  const std::uint32_t nw = r.u32();
  rec.words.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) rec.words.push_back(r.u64());
  rec.batch = decode_churn_batch(r.bytes(r.left()));
  return rec;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string base, CrashPoint* crash)
    : base_(std::move(base)), crash_(crash) {}

std::string CheckpointStore::slot_path(int slot) const {
  return base_ + (slot == 0 ? ".g0" : ".g1");
}

std::string CheckpointStore::tmp_path() const { return base_ + ".tmp"; }

void CheckpointStore::rotate(std::span<const std::uint8_t> blob) {
  // Target the damaged/empty slot if there is one, else the older of the
  // two valid generations — the newest valid generation is never the
  // rename target, so it survives a kill at any byte of this call.
  bool valid[2];
  std::uint64_t epoch[2];
  for (int slot = 0; slot < 2; ++slot) {
    const std::vector<std::uint8_t> b = read_file(slot_path(slot));
    valid[slot] = classify_checkpoint_blob(b) == CheckpointError::kNone;
    epoch[slot] = valid[slot] ? peek_checkpoint_epoch(b) : 0;
  }
  int target;
  if (!valid[0]) {
    target = 0;
  } else if (!valid[1]) {
    target = 1;
  } else {
    target = epoch[0] <= epoch[1] ? 0 : 1;
  }
  {
    FileSink sink(tmp_path(), FileSink::Mode::kTruncate, crash_);
    sink.write(blob);  // the crash budget can fire anywhere in here
    sink.flush();
  }
  // The atomic commit point: before this rename the target slot is intact,
  // after it the new generation is fully in place.
  std::filesystem::rename(tmp_path(), slot_path(target));
  ++rotations_;
}

CheckpointStore::Loaded CheckpointStore::load() const {
  Loaded out;
  std::vector<std::uint8_t> blobs[2];
  for (int slot = 0; slot < 2; ++slot) {
    blobs[slot] = read_file(slot_path(slot));
    out.slot_errors[slot] = classify_checkpoint_blob(blobs[slot]);
  }
  int best = -1;
  for (int slot = 0; slot < 2; ++slot) {
    if (out.slot_errors[slot] != CheckpointError::kNone) continue;
    if (best < 0 ||
        peek_checkpoint_epoch(blobs[slot]) > peek_checkpoint_epoch(blobs[best])) {
      best = slot;
    }
  }
  for (int slot = 0; slot < 2; ++slot) {
    if (slot != best && is_damage(out.slot_errors[slot])) {
      out.rejected_error = out.slot_errors[slot];
      out.fallback = best >= 0;
    }
  }
  if (best >= 0) out.blob = std::move(blobs[best]);
  return out;
}

std::string DurableStats::debug_string() const {
  std::ostringstream os;
  os << "journal_appends=" << journal_appends
     << " journal_bytes=" << journal_bytes
     << " checkpoints_rotated=" << checkpoints_rotated
     << " recoveries=" << recoveries
     << " batches_replayed=" << batches_replayed;
  return std::move(os).str();
}

std::string RecoveryReport::debug_string() const {
  std::ostringstream os;
  os << "recovered epoch " << recovered_epoch << " from checkpoint epoch "
     << checkpoint_epoch << " + " << batches_replayed << " replayed batches"
     << (generation_fallback ? " [generation-fallback]" : "")
     << (journal_tail_truncated ? " [torn-tail-truncated]" : "")
     << (fresh_start ? " [fresh-start]" : "");
  if (is_damage(rejected_error)) {
    os << " rejected=" << to_string(rejected_error);
  }
  return std::move(os).str();
}

DurableDapspService::DurableDapspService(const Graph& initial,
                                         const DurableConfig& cfg)
    : cfg_(cfg),
      svc_(initial, cfg.service),
      store_((std::filesystem::create_directories(cfg.dir),
              cfg.dir + "/ckpt"),
             cfg.crash) {
  // Generation 0 + fresh journal. A kill inside leaves no usable
  // checkpoint; recover() then needs the initial graph again.
  rotate_checkpoint();
}

DurableDapspService::DurableDapspService(DapspService&& svc,
                                         const DurableConfig& cfg)
    : cfg_(cfg),
      svc_(std::move(svc)),
      store_((std::filesystem::create_directories(cfg.dir),
              cfg.dir + "/ckpt"),
             cfg.crash) {
  // Continue the (already repaired) journal in place.
  journal_ = std::make_unique<JournalWriter>(
      journal_path(), FileSink::Mode::kAppend, cfg_.crash);
}

std::string DurableDapspService::journal_path() const {
  return cfg_.dir + "/journal.wal";
}

void DurableDapspService::reset_journal() {
  journal_.reset();  // close before truncating
  journal_ = std::make_unique<JournalWriter>(
      journal_path(), FileSink::Mode::kTruncate, cfg_.crash);
}

void DurableDapspService::emit_journal_event(std::uint64_t payload_bytes,
                                             std::uint64_t epoch) {
  congest::TraceLog* trace = cfg_.service.engine.trace;
  if (trace == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kJournal;
  ev.node = static_cast<NodeId>(dstats_.journal_appends - 1);
  ev.peer = static_cast<NodeId>(payload_bytes);
  ev.round = epoch;
  trace->append(ev);
}

EpochReport DurableDapspService::ack_and_step(
    const ChurnBatch& batch, std::span<const std::uint64_t> plan_words) {
  const std::uint64_t epoch = svc_.epoch() + 1;
  const std::vector<std::uint8_t> payload =
      encode_record(epoch, plan_words, batch);
  // THE acknowledgement point: returns only once the record is durable (a
  // crash budget landing inside throws/exits with the batch unacked).
  const std::uint64_t on_disk = journal_->append(payload);
  ++dstats_.journal_appends;
  dstats_.journal_bytes += on_disk;
  emit_journal_event(payload.size(), epoch);
  plan_words_.assign(plan_words.begin(), plan_words.end());

  EpochReport ep = svc_.step(batch);
  if (cfg_.checkpoint_every > 0 &&
      ++acked_since_checkpoint_ >= cfg_.checkpoint_every) {
    rotate_checkpoint();
  }
  return ep;
}

void DurableDapspService::rotate_checkpoint() {
  const std::vector<std::uint8_t> blob = svc_.checkpoint_blob(plan_words_);
  store_.rotate(blob);
  ++dstats_.checkpoints_rotated;
  acked_since_checkpoint_ = 0;
  // Records at or below the checkpoint epoch are dead weight now. A kill
  // between the rename above and the header write below is safe: replay
  // skips records the checkpoint already covers.
  reset_journal();
}

DurableDapspService DurableDapspService::recover(const DurableConfig& cfg,
                                                 const Graph* initial,
                                                 RecoveryReport* report) {
  RecoveryReport rr;
  const std::string jpath = cfg.dir + "/journal.wal";
  const JournalScan scan = scan_journal(jpath);
  if (scan.error == JournalError::kBadMagic ||
      scan.error == JournalError::kVersionMismatch) {
    throw std::runtime_error(
        std::string("DurableDapspService::recover: journal is ") +
        to_string(scan.error) + " — refusing to repair a foreign file");
  }
  if (scan.error == JournalError::kTornTail ||
      scan.error == JournalError::kTornHeader) {
    repair_journal(jpath);
    rr.journal_tail_truncated = true;
  }

  // Newest restorable generation wins; damaged slots are recorded and
  // passed over (the generation fallback).
  CheckpointStore store(cfg.dir + "/ckpt", cfg.crash);
  struct Candidate {
    std::vector<std::uint8_t> blob;
    std::uint64_t epoch;
  };
  std::vector<Candidate> candidates;
  for (int slot = 0; slot < 2; ++slot) {
    std::vector<std::uint8_t> blob = read_file(store.slot_path(slot));
    const CheckpointError err = classify_checkpoint_blob(blob);
    if (err == CheckpointError::kNone) {
      const std::uint64_t epoch = peek_checkpoint_epoch(blob);
      candidates.push_back({std::move(blob), epoch});
    } else if (is_damage(err)) {
      rr.rejected_error = err;
      rr.generation_fallback = true;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.epoch > b.epoch;
            });

  std::optional<DapspService> svc;
  std::vector<std::uint64_t> words;
  for (std::size_t i = 0; i < candidates.size() && !svc; ++i) {
    CheckpointError err = CheckpointError::kNone;
    svc = DapspService::try_restore_blob(candidates[i].blob, cfg.service,
                                         &words, &err);
    if (svc) {
      rr.checkpoint_epoch = candidates[i].epoch;
      if (i > 0) rr.generation_fallback = true;
    } else {
      rr.rejected_error = err;
      rr.generation_fallback = true;
    }
  }
  if (!svc) {
    rr.generation_fallback = false;  // nothing to fall back TO
    if (initial == nullptr) {
      throw std::runtime_error(
          "DurableDapspService::recover: no usable checkpoint generation "
          "and no initial graph to rebuild from");
    }
    svc.emplace(*initial, cfg.service);
    rr.fresh_start = true;
  }

  DurableDapspService d(std::move(*svc), cfg);
  d.plan_words_ = std::move(words);

  // Replay the journal suffix through the ordinary step() path. Records the
  // checkpoint already covers are skipped; a gap above the state's epoch
  // means an acknowledged batch is gone — the one unrecoverable state.
  for (const std::vector<std::uint8_t>& payload : scan.records) {
    const DecodedRecord rec = decode_record(payload);
    if (rec.epoch <= d.svc_.epoch()) continue;
    if (rec.epoch != d.svc_.epoch() + 1) {
      std::ostringstream os;
      os << "DurableDapspService::recover: acknowledged update lost — "
            "journal resumes at epoch "
         << rec.epoch << " but recovered state ends at epoch "
         << d.svc_.epoch();
      throw std::runtime_error(std::move(os).str());
    }
    d.svc_.step(rec.batch);
    d.plan_words_ = rec.words;
    ++rr.batches_replayed;
  }
  rr.recovered_epoch = d.svc_.epoch();
  d.dstats_.recoveries = 1;
  d.dstats_.batches_replayed = rr.batches_replayed;

  if (congest::TraceLog* trace = cfg.service.engine.trace) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kRecovery;
    ev.node = static_cast<NodeId>(rr.checkpoint_epoch);
    ev.peer = static_cast<NodeId>(rr.batches_replayed);
    ev.round = rr.recovered_epoch;
    ev.aux = (rr.generation_fallback ? 1u : 0u) |
             (rr.journal_tail_truncated ? 2u : 0u) |
             (rr.fresh_start ? 4u : 0u);
    trace->append(ev);
  }
  if (report != nullptr) *report = rr;
  return d;
}

}  // namespace dapsp::core
