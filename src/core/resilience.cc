#include "core/resilience.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <utility>

#include "util/rng.h"

namespace dapsp::core {

namespace {

// SplitMix64 finalizer — the same keyed-stream construction the fault
// injector and the service's jittered backoff use.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Keyed per-request generator: independent streams per (seed, salt, id).
Rng keyed_rng(std::uint64_t seed, std::uint64_t salt,
              std::uint64_t id) noexcept {
  std::uint64_t z = mix64(seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1)));
  z = mix64(z ^ (0xd1342543de82ef95ULL * (id + 1)));
  return Rng(z);
}

// FNV-1a 64 over the 8 little-endian bytes of a word — the digest
// accumulator for the completion stream.
std::uint64_t fnv1a64_u64(std::uint64_t h, std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

}  // namespace

// ---- Status / enum names ---------------------------------------------------

const char* to_string(ServeStatus s) noexcept {
  switch (s) {
    case ServeStatus::kExact: return "exact";
    case ServeStatus::kRepaired: return "repaired";
    case ServeStatus::kStale: return "stale";
    case ServeStatus::kApproximate: return "approximate";
    case ServeStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ServeStatus::kShed: return "shed";
  }
  return "?";
}

const char* to_string(PriorityClass c) noexcept {
  switch (c) {
    case PriorityClass::kInteractive: return "interactive";
    case PriorityClass::kBatch: return "batch";
    case PriorityClass::kBackground: return "background";
  }
  return "?";
}

const char* to_string(ShedReason r) noexcept {
  switch (r) {
    case ShedReason::kRate: return "rate-limited";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kQueueWait: return "queue-wait";
  }
  return "?";
}

const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

// ---- AdmissionController ---------------------------------------------------

AdmissionController::AdmissionController(const AdmissionConfig& config) {
  for (std::size_t i = 0; i < kPriorityClassCount; ++i) {
    buckets_[i].policy = config.classes[i];
    // Start full: a fresh controller admits up to one burst immediately.
    buckets_[i].micro_tokens =
        std::uint64_t{buckets_[i].policy.burst} * 1'000'000;
  }
}

void AdmissionController::refill(Bucket& b, std::uint64_t now_us) {
  if (b.policy.tokens_per_sec == 0) return;
  if (now_us <= b.last_refill_us) return;
  const std::uint64_t elapsed = now_us - b.last_refill_us;
  // tokens_per_sec tokens per 1e6 us == tokens_per_sec micro-tokens per us:
  // the refill is integer-exact at any clock step.
  const std::uint64_t cap = std::uint64_t{b.policy.burst} * 1'000'000;
  const std::uint64_t add = elapsed * b.policy.tokens_per_sec;
  b.micro_tokens = std::min(cap, b.micro_tokens + add);
  b.last_refill_us = now_us;
}

AdmissionDecision AdmissionController::offer(PriorityClass c, std::uint64_t id,
                                             std::uint64_t now_us) {
  Bucket& b = bucket(c);
  ++b.counters.offered;
  refill(b, now_us);
  if (b.policy.tokens_per_sec != 0) {
    if (b.micro_tokens < 1'000'000) {
      ++b.counters.shed_rate;
      return {AdmitResult::kShed, ShedReason::kRate};
    }
    b.micro_tokens -= 1'000'000;
  }
  if (b.running < b.policy.max_concurrent) {
    ++b.running;
    ++b.counters.admitted;
    return {AdmitResult::kAdmitted, ShedReason::kRate};
  }
  if (b.queue.size() < b.policy.max_queue) {
    b.queue.push_back(Ready{id, now_us});
    ++b.counters.queued;
    return {AdmitResult::kQueued, ShedReason::kRate};
  }
  ++b.counters.shed_queue_full;
  return {AdmitResult::kShed, ShedReason::kQueueFull};
}

void AdmissionController::release(PriorityClass c) {
  Bucket& b = bucket(c);
  if (b.running > 0) --b.running;
}

std::optional<AdmissionController::Ready> AdmissionController::next_ready(
    PriorityClass c, std::uint64_t now_us, std::vector<Ready>* shed_out) {
  Bucket& b = bucket(c);
  while (!b.queue.empty()) {
    const Ready front = b.queue.front();
    if (b.policy.max_wait_us != 0 &&
        now_us - front.enqueued_us > b.policy.max_wait_us) {
      b.queue.pop_front();
      ++b.counters.shed_queue_wait;
      if (shed_out != nullptr) shed_out->push_back(front);
      continue;
    }
    if (b.running >= b.policy.max_concurrent) return std::nullopt;
    b.queue.pop_front();
    ++b.running;
    ++b.counters.admitted;
    return front;
  }
  return std::nullopt;
}

std::uint32_t AdmissionController::running(PriorityClass c) const noexcept {
  return bucket(c).running;
}

std::size_t AdmissionController::queue_depth(PriorityClass c) const noexcept {
  return bucket(c).queue.size();
}

std::size_t AdmissionController::total_queued() const noexcept {
  std::size_t total = 0;
  for (const Bucket& b : buckets_) total += b.queue.size();
  return total;
}

const ClassCounters& AdmissionController::counters(
    PriorityClass c) const noexcept {
  return bucket(c).counters;
}

// ---- Retry -----------------------------------------------------------------

std::uint64_t retry_delay_us(const RetryPolicy& policy,
                             std::uint64_t request_id, std::uint32_t attempt,
                             std::uint64_t prev_us) noexcept {
  if (policy.base_us == 0) return 0;
  const std::uint64_t lo = std::min(policy.base_us, policy.cap_us);
  const std::uint64_t anchor =
      std::min(std::max(policy.base_us, prev_us), policy.cap_us);
  // 3 * anchor without overflow: saturate at the cap.
  const std::uint64_t hi =
      anchor > policy.cap_us / 3 ? policy.cap_us
                                 : std::max(lo, anchor * 3);
  return jitter_between(lo, hi, policy.seed ^ 0x72657472794a4954ULL,
                        request_id, attempt);
}

// ---- CircuitBreaker --------------------------------------------------------

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {}

void CircuitBreaker::become(BreakerState next) {
  if (next == state_) return;
  state_ = next;
  ++transitions_;
}

bool CircuitBreaker::allow(std::uint64_t now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now >= opened_at_ && now - opened_at_ >= config_.cooldown_ticks) {
        become(BreakerState::kHalfOpen);
        probes_succeeded_ = 0;
        return true;  // the probe
      }
      return false;
    case BreakerState::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(std::uint64_t now) {
  (void)now;
  switch (state_) {
    case BreakerState::kClosed:
      failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++probes_succeeded_ >= config_.probe_successes) {
        become(BreakerState::kClosed);
        failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A success reported while open can only come from a path that
      // bypasses allow() — the service's operator scrub. A certified scrub
      // is a full-table heal: close directly.
      become(BreakerState::kClosed);
      failures_ = 0;
      break;
  }
}

void CircuitBreaker::record_failure(std::uint64_t now) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++failures_ >= config_.failure_threshold) {
        become(BreakerState::kOpen);
        opened_at_ = now;
        ++opens_;
      }
      break;
    case BreakerState::kHalfOpen:
      become(BreakerState::kOpen);
      opened_at_ = now;
      ++opens_;
      break;
    case BreakerState::kOpen:
      opened_at_ = now;  // a bypassing scrub failed: re-arm the cooldown
      break;
  }
}

// ---- Brownout --------------------------------------------------------------

BrownoutLevel BrownoutController::update(std::size_t total_queued) noexcept {
  if (policy_.enter_queue_depth == 0) return level_;  // disabled
  if (level_ == BrownoutLevel::kNormal) {
    if (total_queued >= policy_.enter_queue_depth) {
      level_ = BrownoutLevel::kEstimates;
      ++enters_;
    }
  } else if (total_queued <= policy_.exit_queue_depth) {
    level_ = BrownoutLevel::kNormal;
    ++exits_;
  }
  return level_;
}

// ---- HealthReport ----------------------------------------------------------

void HealthReport::to_metrics(MetricsRegistry& reg) const {
  reg.counter("resilience_snapshot_epoch") = snapshot_epoch;
  reg.counter("resilience_snapshot_sequence") = snapshot_sequence;
  reg.counter("resilience_stale_rows") = stale_rows;
  reg.counter("resilience_degraded") = degraded ? 1 : 0;
  reg.counter("resilience_breaker_state") = breaker_state;
  reg.counter("resilience_breaker_transitions") = breaker_transitions;
  reg.counter("resilience_repairs_suppressed") = repairs_suppressed;
  reg.counter("resilience_offered") = offered;
  reg.counter("resilience_admitted") = admitted;
  reg.counter("resilience_shed_rate") = shed_rate;
  reg.counter("resilience_shed_queue_full") = shed_queue_full;
  reg.counter("resilience_shed_queue_wait") = shed_queue_wait;
  reg.counter("resilience_shed_total") = shed_total();
  reg.counter("resilience_deadline_truncated") = deadline_truncated;
  reg.counter("resilience_approximate_served") = approximate_served;
  reg.counter("resilience_retries") = retries;
  reg.counter("resilience_retry_exhausted") = retry_exhausted;
  reg.counter("resilience_slots_exhausted") = slots_exhausted;
  reg.counter("resilience_brownout_level") = brownout_level;
  reg.counter("resilience_brownout_enters") = brownout_enters;
}

std::string HealthReport::debug_string() const {
  std::ostringstream os;
  os << "health{epoch=" << snapshot_epoch << " seq=" << snapshot_sequence
     << " stale_rows=" << stale_rows << " degraded=" << (degraded ? 1 : 0)
     << " breaker=" << to_string(static_cast<BreakerState>(breaker_state))
     << " transitions=" << breaker_transitions
     << " suppressed=" << repairs_suppressed << " offered=" << offered
     << " admitted=" << admitted << " shed=" << shed_total() << " (rate="
     << shed_rate << " qfull=" << shed_queue_full << " qwait="
     << shed_queue_wait << ") deadline_truncated=" << deadline_truncated
     << " approximate=" << approximate_served << " retries=" << retries
     << " retry_exhausted=" << retry_exhausted
     << " slots_exhausted=" << slots_exhausted << " brownout="
     << static_cast<unsigned>(brownout_level) << " (enters="
     << brownout_enters << ")}";
  return os.str();
}

// ---- Arrival stream --------------------------------------------------------

std::vector<SimRequest> generate_overload_arrivals(const OverloadConfig& cfg,
                                                   NodeId n) {
  std::vector<SimRequest> out;
  out.reserve(cfg.requests);
  Rng rng(mix64(cfg.seed ^ 0x6f766572'6c6f6164ULL));  // "overload"
  const std::uint64_t rate = std::max<std::uint64_t>(1, cfg.arrivals_per_sec);
  // Gaps accumulate in milli-microseconds so rates above 1M/s (mean gap
  // under 1 us) still produce the right AVERAGE rate instead of collapsing
  // every arrival onto t = 0; the clock the sim sees stays integer us.
  const std::uint64_t mean_gap_mus = 1'000'000'000 / rate;
  std::uint64_t t_mus = 0;
  std::uint32_t burst_left = 0;
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    if (burst_left > 0) {
      --burst_left;  // lands at the same instant as the burst head
    } else {
      t_mus += mean_gap_mus == 0 ? 0 : rng.below(2 * mean_gap_mus + 1);
      if (cfg.burst_every != 0 && i != 0 && i % cfg.burst_every == 0) {
        burst_left = cfg.burst_size;
      }
    }
    SimRequest r;
    r.id = i;
    r.at_us = t_mus / 1'000;
    // 70/20/10 class mix; kind mirrors the class (see header).
    const std::uint64_t d = rng.below(10);
    r.cls = d < 7 ? PriorityClass::kInteractive
                  : (d < 9 ? PriorityClass::kBatch : PriorityClass::kBackground);
    r.kind = static_cast<std::uint8_t>(r.cls);
    r.u = static_cast<NodeId>(rng.below(n));
    r.k = cfg.k_nearest_k;
    out.push_back(r);
  }
  return out;
}

namespace {

// Virtual cells one exact request of the given kind scans (before any
// deadline cap).
std::uint64_t exact_cells(const OverloadConfig& cfg, std::uint8_t kind,
                          NodeId n) {
  return kind == 0 ? cfg.batch_pairs : n;
}

std::uint64_t service_us_for_cells(std::uint64_t cells) {
  return kSimFixedOverheadUs + (cells + kSimCellsPerUs - 1) / kSimCellsPerUs;
}

}  // namespace

std::uint64_t saturation_arrivals_per_sec(const OverloadConfig& cfg,
                                          NodeId n) {
  // Class mix in tenths (matches generate_overload_arrivals).
  constexpr std::uint64_t kMixTenths[kPriorityClassCount] = {7, 2, 1};
  const std::uint64_t deadline_cells =
      cfg.deadline_us == 0 ? ~std::uint64_t{0}
                           : cfg.deadline_us * kSimCellsPerUs;
  std::uint64_t saturation = ~std::uint64_t{0};
  for (std::size_t c = 0; c < kPriorityClassCount; ++c) {
    const std::uint64_t cells = std::min(
        deadline_cells, exact_cells(cfg, static_cast<std::uint8_t>(c), n));
    const std::uint64_t svc_us = service_us_for_cells(cells);
    const std::uint32_t conc = cfg.admission.classes[c].max_concurrent;
    // Requests/sec this class can complete, scaled to the offered rate that
    // sends it exactly that much (offered * mix/10 == capacity).
    const std::uint64_t capacity = std::uint64_t{conc} * 1'000'000 / svc_us;
    saturation = std::min(saturation, capacity * 10 / kMixTenths[c]);
  }
  return saturation;
}

// ---- SimReport -------------------------------------------------------------

std::uint64_t SimReport::quantile_us(PriorityClass c, double q) const {
  const auto& v = latency_us[static_cast<std::size_t>(c)];
  if (v.empty()) return 0;
  std::vector<std::uint64_t> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::clamp<std::uint64_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

HealthReport SimReport::health(const QuerySnapshot* snap) const {
  HealthReport h;
  if (snap != nullptr) {
    h.snapshot_epoch = snap->epoch();
    h.snapshot_sequence = snap->sequence();
    h.degraded = snap->degraded();
    for (NodeId v = 0; v < snap->n(); ++v) {
      if (snap->active(v) && snap->status(v) == RowStatus::kStale) {
        ++h.stale_rows;
      }
    }
  }
  h.offered = offered;
  h.admitted = admitted;
  h.shed_rate = shed_rate;
  h.shed_queue_full = shed_queue_full;
  h.shed_queue_wait = shed_queue_wait;
  h.deadline_truncated = deadline_truncated;
  h.approximate_served = approximate_served;
  h.retries = retries;
  h.retry_exhausted = retry_exhausted;
  h.brownout_enters = brownout_enters;
  return h;
}

// ---- Overload simulation ---------------------------------------------------

namespace {

// The answer of one executed attempt: digest material + honesty markers.
struct ExecResult {
  ServeStatus status = ServeStatus::kStale;
  bool truncated = false;  // deadline partial result
  bool estimate = false;   // served from the label section
  std::uint64_t cells = 0;
  std::uint64_t payload = 0;  // digest contribution (answer values)
};

// Executes one request against the snapshot for real: the values that feed
// the digest come from actual table/label reads, so the sim exercises the
// same code paths the server does.
ExecResult execute_request(const QuerySnapshot& snap, const OverloadConfig& cfg,
                           const SimRequest& r, BrownoutLevel level,
                           LabelCache& cache) {
  ExecResult res;
  const NodeId n = snap.n();
  WorkBudget budget;
  budget.limit = cfg.deadline_us == 0 ? 0 : cfg.deadline_us * kSimCellsPerUs;
  const bool brownout_served = level == BrownoutLevel::kEstimates &&
                               r.kind != 0 && snap.has_labels();
  std::uint64_t payload = kFnvOffset;
  if (r.kind == 0) {
    // Interactive point-to-point batch: cfg.batch_pairs seeded endpoints.
    Rng pr = keyed_rng(cfg.seed, 0x70327062ULL, r.id);  // "p2pb"
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(cfg.batch_pairs);
    for (std::uint32_t i = 0; i < cfg.batch_pairs; ++i) {
      pairs.emplace_back(static_cast<NodeId>(pr.below(n)),
                         static_cast<NodeId>(pr.below(n)));
    }
    std::vector<QueryAnswer> out;
    snap.p2p_batch(pairs, out, &budget);
    RowStatus worst = RowStatus::kExact;
    for (const QueryAnswer& a : out) {
      worst = std::max(worst, a.status);
      payload = fnv1a64_u64(payload, a.dist);
      payload = fnv1a64_u64(payload, a.next_hop);
    }
    res.truncated = out.size() < pairs.size();
    res.status = res.truncated ? ServeStatus::kDeadlineExceeded
                               : serve_status_from_row(worst);
    res.cells = budget.used;
  } else if (brownout_served) {
    // Heavy scan under brownout: the LabelCache estimate row. Virtual cost
    // is the exact scan divided by kSimBrownoutDivisor (the label table
    // stays cache-resident; the n^2 tables thrash). The answer NEVER
    // claims exactness — kApproximate end to end.
    const auto row = cache.row(snap, r.u);
    if (r.kind == 1) {
      std::vector<NearNeighbor> best;  // ascending (dist, id), size <= k
      for (NodeId v = 0; v < n; ++v) {
        if (v == r.u || !snap.active(v)) continue;
        const std::uint32_t d = row[v];
        if (d == kInfDist) continue;
        NearNeighbor nb{v, d};
        auto pos = std::upper_bound(
            best.begin(), best.end(), nb, [](const auto& a, const auto& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.node < b.node;
            });
        best.insert(pos, nb);
        if (best.size() > r.k) best.pop_back();
      }
      for (const NearNeighbor& nb : best) {
        payload = fnv1a64_u64(payload, nb.node);
        payload = fnv1a64_u64(payload, nb.dist);
      }
    } else {
      std::uint32_t ecc = 0;
      std::uint32_t unreachable = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (v == r.u || !snap.active(v)) continue;
        const std::uint32_t d = row[v];
        if (d == kInfDist) {
          ++unreachable;
        } else {
          ecc = std::max(ecc, d);
        }
      }
      payload = fnv1a64_u64(payload, ecc);
      payload = fnv1a64_u64(payload, unreachable);
    }
    res.estimate = true;
    res.status = ServeStatus::kApproximate;
    res.cells = std::max<std::uint64_t>(1, std::uint64_t{n} / kSimBrownoutDivisor);
  } else if (r.kind == 1) {
    const KNearestAnswer ans = snap.k_nearest(r.u, r.k, &budget);
    for (const NearNeighbor& nb : ans.nearest) {
      payload = fnv1a64_u64(payload, nb.node);
      payload = fnv1a64_u64(payload, nb.dist);
    }
    res.truncated = ans.truncated;
    res.status = ans.truncated ? ServeStatus::kDeadlineExceeded
                               : serve_status_from_row(ans.status);
    res.cells = budget.used;
  } else {
    const EccentricityAnswer ans = snap.eccentricity(r.u, &budget);
    payload = fnv1a64_u64(payload, ans.ecc);
    payload = fnv1a64_u64(payload, ans.unreachable);
    res.truncated = ans.truncated;
    res.status = ans.truncated ? ServeStatus::kDeadlineExceeded
                               : serve_status_from_row(ans.status);
    res.cells = budget.used;
  }
  res.payload = payload;
  return res;
}

struct Completion {
  std::uint64_t finish_us = 0;
  std::uint64_t seq = 0;  // deterministic heap tie-break: start order
  SimRequest req;
  ExecResult exec;
  std::uint32_t attempts = 1;
  bool exhausted = false;  // every attempt hit a transient failure
};

struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const {
    if (a.finish_us != b.finish_us) return a.finish_us > b.finish_us;
    return a.seq > b.seq;
  }
};

}  // namespace

SimReport run_overload_sim(const QuerySnapshot& snap, const OverloadConfig& cfg,
                           congest::TraceLog* trace) {
  const std::vector<SimRequest> arrivals = generate_overload_arrivals(cfg, snap.n());
  AdmissionController adm(cfg.admission);
  BrownoutController brown(cfg.brownout);
  LabelCache cache(128);
  std::priority_queue<Completion, std::vector<Completion>, CompletionLater> heap;

  SimReport rep;
  rep.offered = arrivals.size();
  rep.digest = kFnvOffset;
  std::uint64_t start_seq = 0;

  const auto shed = [&](std::uint64_t id, PriorityClass cls,
                        std::uint64_t decision_us, ShedReason reason) {
    switch (reason) {
      case ShedReason::kRate: ++rep.shed_rate; break;
      case ShedReason::kQueueFull: ++rep.shed_queue_full; break;
      case ShedReason::kQueueWait: ++rep.shed_queue_wait; break;
    }
    if (trace != nullptr) {
      congest::TraceEvent ev;
      ev.kind = congest::TraceEventKind::kShed;
      ev.node = static_cast<NodeId>(id & 0xffffffffu);
      ev.peer = static_cast<NodeId>(cls);
      ev.round = decision_us;  // monotone: the shed-decision instant
      ev.aux = static_cast<std::uint32_t>(reason);
      trace->append(ev);
    }
  };

  // Grants a slot at start_us: runs the request (with seeded transient
  // failures + decorrelated-jitter retries) and schedules its completion.
  const auto start_request = [&](const SimRequest& r, std::uint64_t start_us) {
    const BrownoutLevel level = brown.level();
    Completion c;
    c.req = r;
    c.seq = start_seq++;
    c.exec = execute_request(snap, cfg, r, level, cache);
    const std::uint64_t svc_us = service_us_for_cells(c.exec.cells);
    std::uint64_t total_us = 0;
    std::uint64_t prev_delay = 0;
    const std::uint32_t max_attempts = std::max(1u, cfg.retry.max_attempts);
    for (std::uint32_t attempt = 1;; ++attempt) {
      total_us += svc_us;
      const bool fails =
          cfg.transient_failure_ppm != 0 &&
          jitter_between(0, 999'999, cfg.seed ^ 0x7377617052414345ULL, r.id,
                         attempt) < cfg.transient_failure_ppm;
      if (!fails) break;
      ++rep.transient_failures;
      if (attempt >= max_attempts) {
        // Out of attempts: the answer raced snapshot swaps every time, so
        // it is served but never as certified-fresh.
        c.exhausted = true;
        if (c.exec.status == ServeStatus::kExact ||
            c.exec.status == ServeStatus::kRepaired) {
          c.exec.status = ServeStatus::kStale;
        }
        break;
      }
      const std::uint64_t delay =
          retry_delay_us(cfg.retry, r.id, attempt, prev_delay);
      prev_delay = delay;
      total_us += delay;
      ++rep.retries;
      c.attempts = attempt + 1;
    }
    c.finish_us = start_us + total_us;
    heap.push(std::move(c));
  };

  const auto complete_one = [&](const Completion& c) {
    ++rep.completed;
    switch (c.exec.status) {
      case ServeStatus::kExact:
      case ServeStatus::kRepaired: ++rep.exact_served; break;
      case ServeStatus::kStale: ++rep.stale_served; break;
      case ServeStatus::kApproximate: ++rep.approximate_served; break;
      case ServeStatus::kDeadlineExceeded: ++rep.deadline_truncated; break;
      case ServeStatus::kShed: break;  // unreachable: shed never starts
    }
    // The structural honesty check: an answer built from an estimate row or
    // a truncated scan must never claim exactness.
    if ((c.exec.status == ServeStatus::kExact ||
         c.exec.status == ServeStatus::kRepaired) &&
        (c.exec.estimate || c.exec.truncated)) {
      ++rep.overclaims;
    }
    if (c.exhausted) ++rep.retry_exhausted;
    rep.latency_us[static_cast<std::size_t>(c.req.cls)].push_back(
        c.finish_us - c.req.at_us);
    rep.end_us = std::max(rep.end_us, c.finish_us);
    rep.digest = fnv1a64_u64(rep.digest, c.req.id);
    rep.digest = fnv1a64_u64(rep.digest,
                             static_cast<std::uint64_t>(c.exec.status));
    rep.digest = fnv1a64_u64(rep.digest, c.exec.payload);
    // The freed slot may start queued work of the same class.
    adm.release(c.req.cls);
    std::vector<AdmissionController::Ready> expired;
    while (auto ready = adm.next_ready(c.req.cls, c.finish_us, &expired)) {
      start_request(arrivals[ready->id], c.finish_us);
    }
    for (const auto& ex : expired) {
      shed(ex.id, c.req.cls, c.finish_us, ShedReason::kQueueWait);
    }
    brown.update(adm.total_queued());
  };

  for (const SimRequest& r : arrivals) {
    while (!heap.empty() && heap.top().finish_us <= r.at_us) {
      const Completion c = heap.top();
      heap.pop();
      complete_one(c);
    }
    // Reap wait-expired queue entries (all classes) at the arrival instant:
    // a stalled class sheds on schedule even with no completion in sight.
    for (std::size_t ci = 0; ci < kPriorityClassCount; ++ci) {
      const auto cls = static_cast<PriorityClass>(ci);
      std::vector<AdmissionController::Ready> expired;
      while (auto ready = adm.next_ready(cls, r.at_us, &expired)) {
        start_request(arrivals[ready->id], r.at_us);
      }
      for (const auto& ex : expired) {
        shed(ex.id, cls, r.at_us, ShedReason::kQueueWait);
      }
    }
    brown.update(adm.total_queued());
    const AdmissionDecision dec = adm.offer(r.cls, r.id, r.at_us);
    if (dec.result == AdmitResult::kAdmitted) {
      start_request(r, r.at_us);
    } else if (dec.result == AdmitResult::kShed) {
      shed(r.id, r.cls, r.at_us, dec.reason);
    }
    rep.max_total_queued = std::max(
        rep.max_total_queued, static_cast<std::uint32_t>(adm.total_queued()));
  }
  // Drain: every running request completes; completions free slots, which
  // start (or wait-shed) everything still queued until the system is idle.
  while (!heap.empty()) {
    const Completion c = heap.top();
    heap.pop();
    complete_one(c);
  }

  for (std::size_t ci = 0; ci < kPriorityClassCount; ++ci) {
    rep.admitted += adm.counters(static_cast<PriorityClass>(ci)).admitted;
  }
  rep.brownout_enters = brown.enters();
  rep.brownout_exits = brown.exits();
  return rep;
}

}  // namespace dapsp::core
