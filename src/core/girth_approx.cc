#include "core/girth_approx.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/kdom.h"
#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "core/ssp.h"
#include "core/tree_check.h"

namespace dapsp::core {
namespace {

constexpr std::uint32_t kTagK = 50;        // broadcast: (k, d0)
constexpr std::uint32_t kTagPick = 51;     // broadcast: (residue, |DOM|, delta)
constexpr std::uint32_t kTagWitness = 52;  // convergecast: (min witness)

// One Theorem-5 iteration: k-dominating set + DOM-SP + witness convergecast.
class DomGirthProcess final : public congest::Process {
 public:
  DomGirthProcess(NodeId id, NodeId n, std::uint32_t k)
      : id_(id),
        n_(n),
        k_(k),
        ssp_(id, n, false),
        k_bcast_(kTagK),
        pick_bcast_(kTagPick),
        witness_up_(kTagWitness, Convergecast::Op::kMin) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (kdom_.started() && kdom_.handle(r)) continue;
      if (configured_ && ssp_.handle(ctx, r)) continue;
      if (k_bcast_.handle(r)) {
        k_ = k_bcast_.value(0);
        d0_ = k_bcast_.value(1);
        kdom_.start(k_);
      } else if (pick_bcast_.handle(r)) {
        adopt_pick(ctx);
      } else {
        witness_up_.handle(r);
      }
    }

    tree_.advance(ctx);
    if (id_ == 0 && tree_.root_complete() && !k_sent_) {
      k_sent_ = true;
      d0_ = 2 * tree_.root_ecc();
      k_bcast_.start(k_, d0_);
      kdom_.start(k_);
    }
    k_bcast_.advance(ctx, tree_);
    if (kdom_.started()) kdom_.advance(ctx, tree_);

    if (id_ == 0 && !pick_sent_ && kdom_.started() &&
        kdom_.root_counts_complete(tree_)) {
      pick_sent_ = true;
      pick_bcast_.start(kdom_.root_best_residue(), kdom_.root_dom_size(),
                        tree_.root_ecc() + 1);
      adopt_pick(ctx);
    }
    pick_bcast_.advance(ctx, tree_);

    if (configured_) {
      ssp_.advance(ctx);
      if (ssp_.finished(ctx.round()) && !armed_) {
        armed_ = true;
        witness_up_.arm(std::min(ssp_.girth_witness(),
                                 congest::wire_infinity(n_)));
      }
    }
    if (armed_) witness_up_.advance(ctx, tree_);

    quiescent_ = tree_.finished(id_) && armed_ && witness_up_.idle();
  }

  bool done() const override { return quiescent_; }

  std::uint32_t root_witness() const { return witness_up_.value(0); }
  std::uint32_t dom_size() const { return dom_size_; }
  std::uint32_t d0() const { return d0_; }

 private:
  void adopt_pick(congest::RoundCtx& ctx) {
    if (configured_) return;
    const bool from_bcast = pick_bcast_.delivered() && id_ != 0;
    const std::uint32_t residue =
        from_bcast ? pick_bcast_.value(0) : kdom_.root_best_residue();
    dom_size_ = from_bcast ? pick_bcast_.value(1) : kdom_.root_dom_size();
    const std::uint32_t delta =
        from_bcast ? pick_bcast_.value(2) : tree_.root_ecc() + 1;
    const bool member = KdomMachine::member(tree_, id_, k_, residue);
    const std::uint64_t t_start =
        id_ == 0 ? ctx.round() + delta : ctx.round() - tree_.dist() + delta;
    ssp_ = SspMachine(id_, n_, member);
    ssp_.configure(t_start, SspMachine::schedule_length(dom_size_, d0_));
    configured_ = true;
  }

  NodeId id_;
  NodeId n_;
  std::uint32_t k_;
  std::uint32_t d0_ = 0;
  std::uint32_t dom_size_ = 0;
  TreeMachine tree_;
  KdomMachine kdom_;
  SspMachine ssp_;
  Broadcast k_bcast_;
  Broadcast pick_bcast_;
  Convergecast witness_up_;
  bool k_sent_ = false;
  bool pick_sent_ = false;
  bool configured_ = false;
  bool armed_ = false;
  bool quiescent_ = false;
};

struct IterationOutcome {
  std::uint32_t witness;
  std::uint32_t dom_size;
  congest::RunStats stats;
};

IterationOutcome run_iteration(const Graph& g, std::uint32_t k,
                               const congest::EngineConfig& cfg) {
  congest::Engine engine(g, cfg);
  const NodeId n = g.num_nodes();
  engine.init([&](NodeId v) {
    return std::make_unique<DomGirthProcess>(v, n, k);
  });
  IterationOutcome out{};
  out.stats = engine.run();
  auto& root = engine.process_as<DomGirthProcess>(0);
  out.witness = root.root_witness();
  out.dom_size = root.dom_size();
  return out;
}

}  // namespace

GirthApproxResult run_girth_approx(const Graph& g,
                                   const GirthApproxOptions& options) {
  if (options.epsilon <= 0.0) {
    throw std::invalid_argument("run_girth_approx: epsilon must be > 0");
  }
  const double eps = options.epsilon;
  const double shrink = std::min(eps, 1.0);

  GirthApproxResult out;
  const TreeCheckRun check = run_tree_check(g, options.engine);
  out.stats = check.stats;
  if (check.is_tree) {
    out.was_tree = true;
    return out;
  }

  const std::uint32_t inf = congest::wire_infinity(g.num_nodes());
  const std::uint32_t d0 = 2 * check.leader_ecc;
  std::uint32_t g_hat = 2 * d0 + 1;  // girth <= 2D+1 <= 2*D0+1
  for (int iter = 0; iter < 64; ++iter) {
    const auto k = static_cast<std::uint32_t>(
        std::floor(shrink * static_cast<double>(g_hat) / 8.0));
    const IterationOutcome o = run_iteration(g, k, options.engine);
    congest::accumulate(out.stats, o.stats);
    const std::uint32_t witness = o.witness >= inf ? seq::kInfGirth : o.witness;
    g_hat = std::min(g_hat, witness);
    out.iterations.push_back({k, o.dom_size, witness, o.stats.rounds});
    if (k == 0) {
      out.exact = true;  // DOM = V: the witnesses are exact (Lemma 7)
      break;
    }
    if (static_cast<double>(k) <= eps * static_cast<double>(g_hat) / 4.0) {
      break;
    }
    if (options.round_budget != 0 && out.stats.rounds >= options.round_budget) {
      break;
    }
  }
  out.girth_estimate = g_hat;
  return out;
}

}  // namespace dapsp::core
