// Lemma 7: exact girth in O(n) rounds.
//
// First run Claim 1's tree check in O(D); trees have infinite girth and
// need no further work. Otherwise run Algorithm 1; every duplicate flood
// receipt is a cycle witness of length d(u,v) + d(w,v) + 1, the minimum of
// which — aggregated over T1 — is exactly the girth (the BFS from any vertex
// of a minimum cycle certifies it; no witness is ever shorter).
#pragma once

#include <cstdint>

#include "congest/engine.h"
#include "graph/graph.h"
#include "seq/properties.h"

namespace dapsp::core {

struct GirthRun {
  std::uint32_t girth = seq::kInfGirth;  // kInfGirth for trees
  bool was_tree = false;                 // short-circuited by Claim 1
  congest::RunStats stats;               // summed over both phases
};

// Connected graphs only.
GirthRun run_girth(const Graph& g, const congest::EngineConfig& cfg = {});

}  // namespace dapsp::core
