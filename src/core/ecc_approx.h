// Theorem 4 and Corollary 4: (x,1+eps)-approximation of all eccentricities,
// diameter, radius, center and peripheral vertices in O(n/D + D) rounds.
//
// Pipeline (Section 6.2):
//   1. Build T1; the root learns ecc(leader) and sets D0 = 2*ecc(leader)
//      (Fact 1: D <= D0 <= 2D).
//   2. Pick the additive slack k = floor(eps * D0 / 8) and build a
//      k-dominating set DOM (|DOM| <= n/(k+1) + 1) via KdomMachine.
//      The divisor 8 calibrates all downstream guarantees to a clean
//      (x,1+eps): k <= eps*D0/8 <= eps*D/4 <= (eps/2)*ecc(v) for every v,
//      and the center/peripheral sets carry 2k <= eps*rad slack.
//   3. Solve DOM-SP with Algorithm 2 in O(|DOM| + D) rounds.
//   4. Every node v estimates ecc~(v) = max_{u in DOM} d(v,u) + k; since
//      every node is within k of a dominator, ecc(v) <= ecc~(v) <= ecc(v)+k.
//   5. Convergecast max/min of the estimates; broadcast the results; nodes
//      decide membership locally (Definition 6):
//        center~:     ecc~(v) <= radius~ + k   (contains the true center;
//                     members have ecc(v) <= rad + 2k <= (1+eps) rad)
//        peripheral~: ecc~(v) >= diameter~ - k (contains the true peripheral
//                     set; members have ecc(v) >= D - 2k >= D/(1+eps)).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

struct EccApproxOptions {
  congest::EngineConfig engine{};
  double epsilon = 0.5;  // must be > 0
};

struct EccApproxResult {
  std::uint32_t k = 0;   // additive slack actually used (may be 0: exact)
  std::uint32_t d0 = 0;  // the 2*ecc(leader) diameter bound
  std::uint32_t dom_size = 0;
  std::vector<std::uint32_t> ecc_estimate;  // ecc(v) <= est <= ecc(v)+k
  std::uint32_t diameter_estimate = 0;      // D <= est <= D+k
  std::uint32_t radius_estimate = 0;        // rad <= est <= rad+k
  std::vector<NodeId> center_approx;
  std::vector<NodeId> peripheral_approx;
  congest::RunStats stats;
};

// Connected graphs only.
EccApproxResult run_ecc_approx(const Graph& g,
                               const EccApproxOptions& options = {});

}  // namespace dapsp::core
