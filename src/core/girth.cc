#include "core/girth.h"

#include "core/pebble_apsp.h"
#include "core/tree_check.h"

namespace dapsp::core {

GirthRun run_girth(const Graph& g, const congest::EngineConfig& cfg) {
  GirthRun out;
  const TreeCheckRun check = run_tree_check(g, cfg);
  out.stats = check.stats;
  if (check.is_tree) {
    out.was_tree = true;
    out.girth = seq::kInfGirth;
    return out;
  }
  ApspOptions options;
  options.engine = cfg;
  options.aggregate = true;
  const ApspResult apsp = run_pebble_apsp(g, options);
  congest::accumulate(out.stats, apsp.stats);
  out.girth = apsp.girth;
  return out;
}

}  // namespace dapsp::core
