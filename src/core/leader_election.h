// Leader election: discharging the paper's Section 2 assumption.
//
// The model section assumes "there is a node with ID 1" (our drivers use
// node 0) and argues that "the time to find the node with smallest ID and
// rename it to 1 would not affect the asymptotic runtime". This module makes
// that reduction concrete:
//
//   * every node starts with an arbitrary distinct label (the IDs of the
//     paper, up to 2^O(log n));
//   * a min-label flood runs for n rounds (n is known, and D <= n-1, so the
//     minimum has stabilized everywhere); each node then knows the leader's
//     label and whether it is the leader — O(n) rounds, O(m * changes)
//     messages, one label per message;
//   * with a diameter hint (e.g. from a prior run), the flood can stop after
//     hint+1 rounds instead: O(D) when the hint is tight.
//
// run_with_elected_leader() composes the reduction end to end: elect, then
// re-run any node-0-rooted driver on the graph relabeled so that the winner
// is node 0, exactly the renaming step the paper waves at.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

struct LeaderElectionOptions {
  congest::EngineConfig engine{};
  // 0 = run the full n rounds; otherwise stop after hint+1 rounds (the
  // caller asserts D <= hint).
  std::uint32_t diameter_hint = 0;
};

struct LeaderElectionResult {
  NodeId leader = 0;                 // topology id of the winner
  std::uint32_t leader_label = 0;    // its label (the global minimum)
  std::vector<std::uint32_t> believed_label;  // per node, for agreement tests
  congest::RunStats stats;
};

// `labels[v]` is node v's initial identifier; must be distinct and fit the
// engine's field width (< 2n is always safe; pass relabeled ids).
LeaderElectionResult run_leader_election(const Graph& g,
                                         std::span<const std::uint32_t> labels,
                                         const LeaderElectionOptions& o = {});

// Builds the permutation that renames `leader` to topology id 0 (shifting
// everything else up in label order) and returns the relabeled graph;
// perm_out[old] = new.
Graph relabel_leader_first(const Graph& g, NodeId leader,
                           std::vector<NodeId>* perm_out = nullptr);

}  // namespace dapsp::core
