// Query serving tier: immutable DQRY snapshots, lock-free snapshot swap,
// batched distance queries (DESIGN.md §17, ROADMAP item 3).
//
// The service layer (core/service.h) keeps APSP tables certified under
// churn; this module is the consumer story. Three pieces:
//
//   * DQRY snapshot blobs — an immutable, checksummed serialization of the
//     service's served tables (flat row-major u32 distance + next-hop
//     tables, per-row exact/repaired/stale status, active mask, optional
//     2-hop label section from core/distance_labels.h), following the same
//     blob conventions as DSVC0001 checkpoints: little-endian fields,
//     self-delimiting structure, trailing FNV-1a 64 checksum. Blobs are
//     mmap-able (util/blob.h): the table pointers of a file-backed
//     QuerySnapshot read straight off the page cache.
//
//     Layout (all little-endian):
//       "DQRY" | "0001" | u32 n | u64 epoch | u64 sequence | u32 flags
//       | u32 k | u32 dom_count                      (40-byte header)
//       | u32 dist[n*n]      dist[s*n + v] = served d(v, s)
//       | u32 next_hop[n*n]  next_hop[s*n + v] = v's hop toward s
//       | u32 dom[dom_count] | u32 labels[n*dom_count]   (iff flags bit 0)
//       | u8 active[n] | u8 status[n] | u64 fnv1a64(everything before)
//     Row s carries the served distances *to* source s for every node, so
//     every query kind scans one contiguous row and inherits exactly that
//     row's status — the same per-row freshness contract DapspService::query
//     exposes. flags bit 0 = label section present, bit 1 = degraded
//     (published mid-epoch, after dirty analysis and before repair).
//
//   * SnapshotStore — an epoch-tagged atomic snapshot pointer with
//     hazard-free retire-after-grace reclamation. publish() swaps the
//     current snapshot with one release-ordered exchange; readers pin a
//     per-reader epoch slot (SnapshotReader::acquire, wait-free: announce
//     epoch, load pointer) and a retired snapshot is freed only once every
//     pinned epoch has moved past its retirement — repairs and recomputes
//     land without ever blocking a reader, and a reader mid-batch keeps a
//     stable view for as long as it holds the SnapshotRef.
//
//   * Batched queries — point-to-point, k-nearest, eccentricity, each
//     answered from one snapshot row with that row's status threaded into
//     the answer, plus an LRU hot-source cache for 2-hop-label estimates.
//
// Status semantics per query: an answer's `status` is the publish-time
// status of the one row consulted (row `to` for p2p, row `u` for k-nearest
// and eccentricity). kExact / kRepaired mean that row was certified against
// the snapshot's graph at publish time; kStale means certification was
// pending or failed and the values may predate recent churn. The service's
// conservative downgrade (rows drop to kStale the moment the dirty analyzer
// implicates them, before any repair runs) plus the degraded mid-epoch
// publish make the disclosed status monotone-conservative across the
// snapshot sequence: no published snapshot ever claims exactness for a row
// whose invalidation was already known.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_labels.h"
#include "core/pebble_apsp.h"
#include "core/service.h"
#include "graph/graph.h"
#include "util/blob.h"

namespace dapsp::core {

inline constexpr char kQueryMagic[4] = {'D', 'Q', 'R', 'Y'};
inline constexpr char kQueryVersion[4] = {'0', '0', '0', '1'};
inline constexpr std::uint32_t kQueryFlagLabels = 1u << 0;
inline constexpr std::uint32_t kQueryFlagDegraded = 1u << 1;

// Classifies a DQRY blob without building a snapshot from it. Same failure
// taxonomy as service checkpoints (the blob conventions are shared), pure
// and noexcept: a dry structural parse plus the trailing-checksum check.
CheckpointError classify_query_blob(
    std::span<const std::uint8_t> blob) noexcept;

// Deterministic per-request work budget (core/resilience.h threads one
// through every query a request makes). The unit is one table cell touched
// — a pure function of the query and the snapshot, never of wall time — so
// deadline behavior is bit-reproducible at any thread count. limit == 0
// means unbounded. A query that exhausts the budget mid-row stops scanning
// and returns a truncated partial answer (see the `truncated` fields);
// the resilience layer downgrades such answers to kDeadlineExceeded.
struct WorkBudget {
  std::uint64_t limit = 0;  // total cells this request may touch (0 = inf)
  std::uint64_t used = 0;   // cells charged so far

  bool exhausted() const noexcept { return limit != 0 && used >= limit; }
  std::uint64_t remaining() const noexcept {
    if (limit == 0) return ~std::uint64_t{0};
    return limit > used ? limit - used : 0;
  }
  // Charges up to `want` cells; returns how many were granted.
  std::uint64_t grant(std::uint64_t want) noexcept {
    if (limit != 0) want = std::min(want, remaining());
    used += want;
    return want;
  }
};

// One point-to-point answer. `status` is the consulted row's publish-time
// status (see header); inactive endpoints answer active = false with
// everything else defaulted — exactly DapspService::query's contract.
struct QueryAnswer {
  bool active = false;
  std::uint32_t dist = kInfDist;
  NodeId next_hop = kNoNextHop;
  RowStatus status = RowStatus::kStale;
};

struct NearNeighbor {
  NodeId node = 0;
  std::uint32_t dist = 0;
};

struct KNearestAnswer {
  bool active = false;
  RowStatus status = RowStatus::kStale;
  // Up to k active nodes nearest to u (u excluded, unreachable excluded),
  // ascending by (distance, id).
  std::vector<NearNeighbor> nearest;
  // Deadline partial-result marker: only row cells [0, scanned) were
  // considered (the budget ran out mid-row). `nearest` is exact over that
  // prefix — correct neighbors may be missing beyond it.
  bool truncated = false;
  std::uint32_t scanned = 0;  // meaningful only when truncated
};

struct EccentricityAnswer {
  bool active = false;
  RowStatus status = RowStatus::kStale;
  std::uint32_t ecc = 0;        // max finite served distance to u
  NodeId farthest = kNoNextHop; // argmax (smallest id on ties)
  std::uint32_t unreachable = 0;  // active nodes with no finite entry
  // Deadline partial-result marker: ecc/farthest/unreachable aggregate only
  // row cells [0, scanned) — a lower bound on the true eccentricity.
  bool truncated = false;
  std::uint32_t scanned = 0;  // meaningful only when truncated
};

// An immutable query snapshot over a DQRY blob (owned bytes or an mmap
// view). All accessors are const and data-race-free: the object never
// mutates after construction, which is what lets SnapshotStore hand one
// instance to any number of concurrent readers.
class QuerySnapshot {
 public:
  // Takes ownership of a validated blob. Throws std::runtime_error naming
  // the CheckpointError on a damaged or inconsistent blob.
  static QuerySnapshot from_blob(std::vector<std::uint8_t> bytes);
  // Maps `path` read-only (zero-copy when mmap is available) and validates.
  static QuerySnapshot from_file(const std::string& path);

  QuerySnapshot(QuerySnapshot&&) noexcept = default;
  QuerySnapshot& operator=(QuerySnapshot&&) noexcept = default;
  QuerySnapshot(const QuerySnapshot&) = delete;
  QuerySnapshot& operator=(const QuerySnapshot&) = delete;

  NodeId n() const noexcept { return n_; }
  // The service epoch the snapshot was published at.
  std::uint64_t epoch() const noexcept { return epoch_; }
  // The publisher's monotone sequence number (swap ordinal).
  std::uint64_t sequence() const noexcept { return sequence_; }
  // Published mid-epoch, after dirty analysis downgraded statuses and
  // before the repair ran.
  bool degraded() const noexcept { return (flags_ & kQueryFlagDegraded) != 0; }
  bool has_labels() const noexcept { return (flags_ & kQueryFlagLabels) != 0; }
  std::uint32_t label_k() const noexcept { return k_; }

  bool active(NodeId v) const { return active_[v] != 0; }
  RowStatus status(NodeId s) const {
    return static_cast<RowStatus>(status_[s]);
  }

  // Row s: served distances to source s, indexed by node (contiguous).
  std::span<const std::uint32_t> dist_row(NodeId s) const {
    return {dist_ + std::size_t{s} * n_, n_};
  }
  // Served distance from `from` to `to` — the (from, to) entry of row `to`,
  // matching DapspService::query's value and status source.
  std::uint32_t dist(NodeId from, NodeId to) const {
    return dist_[std::size_t{to} * n_ + from];
  }
  NodeId next_hop(NodeId from, NodeId to) const {
    return hop_[std::size_t{to} * n_ + from];
  }

  std::span<const NodeId> dominators() const {
    return {dom_, dom_count_};
  }
  // d(v, dom[i]) for every dominator i (contiguous).
  std::span<const std::uint32_t> label_row(NodeId v) const {
    return {labels_ + std::size_t{v} * dom_count_, dom_count_};
  }

  // ---- Queries (each consults exactly one row; see header) --------------
  //
  // Every query takes an optional WorkBudget. nullptr (the default) means
  // unbounded — identical to the pre-budget behavior. With a budget, each
  // row cell touched charges one unit; when the budget exhausts mid-query
  // the answer is returned truncated (k_nearest/eccentricity set their
  // `truncated` marker; p2p_batch stops after the answered prefix, so
  // out.size() < pairs.size() is the truncation signal). Work accounting is
  // cell-exact and deterministic — the virtual-clock overload simulations
  // (core/resilience.h) convert it into service time.

  // Throws std::invalid_argument on out-of-universe ids.
  QueryAnswer p2p(NodeId from, NodeId to) const;
  void p2p_batch(std::span<const std::pair<NodeId, NodeId>> pairs,
                 std::vector<QueryAnswer>& out,
                 WorkBudget* budget = nullptr) const;

  KNearestAnswer k_nearest(NodeId u, std::uint32_t k,
                           WorkBudget* budget = nullptr) const;
  EccentricityAnswer eccentricity(NodeId u,
                                  WorkBudget* budget = nullptr) const;

  // APASP_{2k} estimate from the label section (requires has_labels()):
  // min over dominators of the saturating 2-hop sum. kInfDist when the
  // labels share no finite dominator.
  std::uint32_t label_estimate(NodeId u, NodeId v) const;

  // The underlying blob bytes (for re-serialization / persistence).
  std::span<const std::uint8_t> bytes() const noexcept;

 private:
  QuerySnapshot() = default;
  void bind(std::span<const std::uint8_t> blob);  // after validation

  std::vector<std::uint8_t> owned_;
  MappedBlob mapped_;

  NodeId n_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t sequence_ = 0;
  std::uint32_t flags_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t dom_count_ = 0;
  const std::uint32_t* dist_ = nullptr;
  const std::uint32_t* hop_ = nullptr;
  const std::uint32_t* dom_ = nullptr;
  const std::uint32_t* labels_ = nullptr;
  const std::uint8_t* active_ = nullptr;
  const std::uint8_t* status_ = nullptr;
};

// Serializes the service's served snapshot (and optionally a label section)
// into a DQRY blob. `sequence` is the publisher's swap ordinal; `degraded`
// marks a mid-epoch publish. The label section, when given, must cover the
// same universe (labels->label(v) for every v < n).
std::vector<std::uint8_t> encode_query_snapshot(
    const DapspService& svc, std::uint64_t sequence, bool degraded,
    const DistanceLabeling* labels = nullptr);

// Same, from raw tables: dist.at(v, s) = served distance v -> s (what the
// encoder transposes into row-major-by-source form). `next_hop` may be null
// (all entries become kNoNextHop) — the seq::apsp-backed path used by
// benches and tests.
std::vector<std::uint8_t> encode_query_snapshot_tables(
    const DistanceMatrix& dist,
    const std::vector<std::vector<NodeId>>* next_hop,
    std::span<const std::uint8_t> active, std::span<const RowStatus> status,
    std::uint64_t epoch, std::uint64_t sequence, bool degraded,
    const DistanceLabeling* labels = nullptr);

// ---- Lock-free snapshot swap ---------------------------------------------

inline constexpr std::size_t kMaxSnapshotReaders = 64;

class SnapshotStore;

// A pinned, stable view of the store's current snapshot. Move-only RAII:
// the pin is released on destruction. Holding a ref keeps that snapshot's
// memory valid even across any number of subsequent publishes.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& other) noexcept { *this = std::move(other); }
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef() { release(); }

  const QuerySnapshot* get() const noexcept { return snap_; }
  const QuerySnapshot& operator*() const noexcept { return *snap_; }
  const QuerySnapshot* operator->() const noexcept { return snap_; }
  explicit operator bool() const noexcept { return snap_ != nullptr; }

  void release() noexcept;

 private:
  friend class SnapshotReader;
  SnapshotRef(SnapshotStore* store, std::size_t slot,
              const QuerySnapshot* snap)
      : store_(store), slot_(slot), snap_(snap) {}

  SnapshotStore* store_ = nullptr;
  std::size_t slot_ = 0;
  const QuerySnapshot* snap_ = nullptr;
};

// Bounded spin-yield budget for SnapshotReader slot acquisition: how many
// full claim sweeps (each followed by a yield) to attempt before giving up.
// Transient exhaustion — a burst of short-lived readers churning slots —
// resolves within a few yields; a genuine leak (64 live readers) still
// fails fast instead of hanging.
inline constexpr std::uint32_t kReaderAcquireSpins = 4096;

// One registered reader (claims one epoch slot; create one per reader
// thread). acquire() is the wait-free hot-path pin: announce the current
// store epoch in the slot, then load the snapshot pointer. At most one
// outstanding SnapshotRef per reader at a time.
class SnapshotReader {
 public:
  // Claims a slot, spin-yielding up to `max_spins` sweeps while all
  // kMaxSnapshotReaders slots are transiently taken (each contended sweep
  // bumps the store's slots_exhausted() metric once per construction).
  // Throws std::runtime_error only after the spin budget is gone.
  explicit SnapshotReader(SnapshotStore& store,
                          std::uint32_t max_spins = kReaderAcquireSpins);
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  // Pins and returns the current snapshot; an empty ref when nothing has
  // been published yet.
  SnapshotRef acquire();

 private:
  SnapshotStore* store_;
  std::size_t slot_;
};

// The epoch-tagged snapshot holder. publish() is called by one writer (the
// service thread); acquire() by any number of registered readers, never
// blocked by a publish. Retired snapshots are reclaimed on later publishes
// (and in the destructor) once no reader pin can still reference them.
class SnapshotStore {
 public:
  SnapshotStore() = default;
  // Frees the current and all retired snapshots. All SnapshotReaders must
  // be destroyed (and their refs released) first.
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Atomically swaps in `snap` as the current snapshot and retires the
  // previous one; the previous snapshot's memory is freed only after every
  // reader pinned before the swap has released (retire-after-grace).
  void publish(std::unique_ptr<const QuerySnapshot> snap);

  std::uint64_t swaps() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }
  // Retired snapshots not yet reclaimed (observability / tests).
  std::size_t retired_pending() const;
  // Reader registrations that found every slot taken on their first sweep
  // and had to spin-yield (counted once per contended construction) — the
  // saturation signal the HealthReport surfaces.
  std::uint64_t slots_exhausted() const noexcept {
    return slots_exhausted_.load(std::memory_order_relaxed);
  }

 private:
  friend class SnapshotReader;
  friend class SnapshotRef;

  static constexpr std::uint64_t kSlotIdle = ~std::uint64_t{0};

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> pin{kSlotIdle};
    std::atomic<std::uint8_t> claimed{0};
  };

  void reclaim_locked();

  std::atomic<const QuerySnapshot*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> slots_exhausted_{0};
  std::array<Slot, kMaxSnapshotReaders> slots_{};

  // Writer-side only; readers never touch the mutex.
  mutable std::mutex retire_mu_;
  std::unique_ptr<const QuerySnapshot> current_owner_;
  struct Retired {
    std::unique_ptr<const QuerySnapshot> snap;
    std::uint64_t retire_epoch;
  };
  std::vector<Retired> retired_;
};

// SnapshotSink adapter: encodes the service's served tables into a DQRY
// snapshot and publishes it on every service publish point (degraded
// mid-epoch states included — that is what keeps reader-visible statuses
// conservative). Attach via ServiceConfig::snapshot_sink.
class ServingPublisher final : public SnapshotSink {
 public:
  explicit ServingPublisher(SnapshotStore& store) : store_(&store) {}

  void on_snapshot(const DapspService& svc, bool degraded) override;

  std::uint64_t published() const noexcept { return sequence_; }

 private:
  SnapshotStore* store_;
  std::uint64_t sequence_ = 0;
};

// ---- Hot-source label cache ----------------------------------------------

// LRU cache of fully-combined estimate rows for hot sources: row(u) holds
// est(u, v) for every v, computed once from the label section in
// O(n * |DOM|) and then answered in O(1) per lookup. Keyed by (snapshot
// sequence, source), so a snapshot swap naturally invalidates. NOT
// thread-safe — create one per reader thread.
class LabelCache {
 public:
  explicit LabelCache(std::size_t capacity) : capacity_(capacity) {}

  // Requires snap.has_labels() (throws std::logic_error otherwise).
  std::span<const std::uint32_t> row(const QuerySnapshot& snap, NodeId u);
  std::uint32_t estimate(const QuerySnapshot& snap, NodeId u, NodeId v);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::uint64_t sequence;
    NodeId source;
    std::uint64_t last_used;
    std::vector<std::uint32_t> row;
  };

  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> scratch_;  // capacity 0: compute-only answers
};

}  // namespace dapsp::core
