// Algorithm 1 of the paper: All Pairs Shortest Paths in O(n) rounds.
//
// The protocol, exactly as in Section 4.1:
//   1. Build the BFS tree T1 rooted at the leader (TreeMachine). The echo
//      wave additionally gives the root ecc(root), hence the D0 = 2*ecc
//      diameter bound of Fact 1 used for scheduling the aggregation phase.
//   2. Send a pebble on a depth-first traversal of T1. On entering a node
//      for the first time the pebble waits one round, then that node starts
//      a BFS flood of its own id; the pebble moves on in the same round.
//      Lemma 1: the staggered starts guarantee that no node — hence no edge
//      — ever carries two different BFS floods in the same round. The engine
//      *checks* this (bandwidth enforcement); a congestion test asserts that
//      at most one kApspFlood message crosses any directed edge per round.
//   3. Every node records its distance to every flood root: APSP.
//   4. (Applications, Lemmas 2-7.) After the traversal returns, the root
//      waits until every flood must have quiesced (2*ecc(root)+2 rounds),
//      broadcasts a COLLECT token, and a convergecast folds
//      (max eccentricity, min eccentricity, min cycle-witness length) =
//      (diameter, radius, girth). A final RESULT broadcast lets every node
//      decide center / peripheral membership locally (Definition 6: every
//      node must know the answer).
//
// Girth witnesses (Lemma 7): a node u that receives a flood of root v it
// already knows, from a neighbor w, has found the closed walk
// u ~ v ~ w + (w,u) of length d(u,v) + d(w,v) + 1; the forward-exclusion
// rule of Claim 1 ensures every such walk really contains a cycle, and the
// BFS from any vertex of a minimum cycle certifies its exact length.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "core/certify.h"
#include "graph/graph.h"
#include "seq/apsp.h"
#include "seq/properties.h"

namespace dapsp::core {

struct ApspOptions {
  congest::EngineConfig engine{};
  // Run the aggregation phase (Lemmas 2-7): diameter, radius, girth, center,
  // peripheral vertices. Costs O(D) extra rounds.
  bool aggregate = true;
};

struct ApspResult {
  DistanceMatrix dist;
  // next_hop[v][u]: the neighbor of v that lies on a shortest v->u path
  // (v's parent in the BFS tree T_u) — Remark 4: "shortest paths are
  // implicitly stored via BFS trees". kNoNextHop on the diagonal.
  std::vector<std::vector<NodeId>> next_hop;
  std::vector<std::uint32_t> ecc;      // per node (valid if aggregate)
  std::uint32_t diameter = 0;
  std::uint32_t radius = 0;
  std::uint32_t girth = seq::kInfGirth;  // kInfGirth for forests
  std::vector<std::uint8_t> is_center;
  std::vector<std::uint8_t> is_peripheral;
  bool tree_cycle_evidence = false;    // Claim 1: true iff G has a cycle
  std::uint32_t leader_ecc = 0;        // ecc(node 0), learned during setup

  // Crash survival (DESIGN.md §10). kCompleted on fault-free/masked runs;
  // kDegraded when nodes crashed or the failure detector fired — the tables
  // below are then partial and `coverage` says how partial.
  congest::RunStatus status = congest::RunStatus::kCompleted;
  std::vector<std::uint8_t> survived;  // per node: 1 = alive at harvest
  // Per source row (sources are all nodes here): coverage over survivors.
  std::vector<RowCoverage> coverage;
  // Survivors that switched to degraded mode after a failure notice.
  std::vector<NodeId> degraded_nodes;
  // False when the aggregation outputs (diameter/radius/girth/centers) must
  // not be trusted — any degraded run, or aggregate=false.
  bool aggregates_valid = false;

  congest::RunStats stats;
  // Messages per round (populated when options.engine.record_activity):
  // makes Algorithm 1's phase structure visible (tree build, pebble +
  // staggered floods, aggregation).
  std::vector<std::uint64_t> round_activity;
};

inline constexpr NodeId kNoNextHop = 0xffffffffu;

// Runs Algorithm 1 on a connected graph. Throws on disconnected inputs
// (the flood never terminates; a RoundLimitError surfaces).
//
// Under a fault plan with crash-stops and the reliable layer's failure
// detector (apply_reliable + suspect_after > 0), survivors terminate in
// degraded mode instead of stalling: the node holding a NeighborDown verdict
// floods a failure notice (kFailNotice, O(D) rounds), every survivor stops
// scheduling new work while still relaying in-flight BFS floods, and the
// harvested result reports status = kDegraded with per-row coverage.
ApspResult run_pebble_apsp(const Graph& g, const ApspOptions& options = {});

// Follows next_hop pointers from `from` to `to`; returns the node sequence
// (a shortest path). Local convenience over a harvested result.
std::vector<NodeId> extract_route(const ApspResult& r, NodeId from, NodeId to);

}  // namespace dapsp::core
