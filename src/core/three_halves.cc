#include "core/three_halves.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "core/ssp.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

constexpr std::uint32_t kTagGo1 = 100;     // broadcast: (d0, s)
constexpr std::uint32_t kTagArgmax = 101;  // argmax: (inf - r_s, id)
constexpr std::uint32_t kTagDomCnt = 102;  // convergecast: (|DOM|)
constexpr std::uint32_t kTagGo2 = 103;     // broadcast: (w, r_w, |DOM|)
constexpr std::uint8_t kWFlood = 104;      // w's BFS: (dist)
constexpr std::uint32_t kTagBallCnt = 105; // convergecast: (|S2|)
constexpr std::uint32_t kTagGo3 = 106;     // broadcast: (|S2|)
constexpr std::uint32_t kTagMax = 107;     // convergecast: (max delta)
constexpr std::uint32_t kTagAnswer = 108;  // broadcast: (estimate)

class ThreeHalvesProcess final : public congest::Process {
 public:
  ThreeHalvesProcess(NodeId id, NodeId n, std::uint32_t s, std::uint64_t seed)
      : id_(id),
        n_(n),
        s_(s),
        seed_(seed),
        detect_(id, n, /*in_s=*/true),
        ssp2_(id, n, /*in_s=*/false),
        go1_(kTagGo1),
        argmax_(kTagArgmax),
        dom_cnt_(kTagDomCnt, Convergecast::Op::kSum),
        go2_(kTagGo2),
        ball_cnt_(kTagBallCnt, Convergecast::Op::kSum),
        go3_(kTagGo3),
        max_up_(kTagMax, Convergecast::Op::kMax),
        answer_(kTagAnswer) {}

  void on_round(congest::RoundCtx& ctx) override {
    const std::uint32_t inf = congest::wire_infinity(n_);

    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (detect_configured_ && !detect_harvested_ && detect_.handle(ctx, r)) {
        continue;
      }
      if (ssp2_configured_ && ssp2_.handle(ctx, r)) continue;
      if (r.msg.kind == kWFlood) {
        handle_w_flood(r);
        continue;
      }
      if (argmax_.handle(r)) continue;
      if (dom_cnt_.handle(r)) continue;
      if (ball_cnt_.handle(r)) continue;
      if (max_up_.handle(r)) continue;
      if (go1_.handle(r)) {
        adopt_go1(ctx);
      } else if (go2_.handle(r)) {
        adopt_go2(ctx);
      } else if (go3_.handle(r)) {
        adopt_go3(ctx);
      } else if (answer_.handle(r)) {
        estimate_ = answer_.value(0);
      }
    }

    tree_.advance(ctx);

    // Phase 1: root announces d0; everyone starts truncated detection.
    if (id_ == 0 && tree_.root_complete() && !go1_sent_) {
      go1_sent_ = true;
      d0_ = 2 * tree_.root_ecc();
      go1_.start(d0_, s_);
      adopt_go1(ctx);
    }
    go1_.advance(ctx, tree_);
    if (detect_configured_ && !detect_harvested_) detect_.advance(ctx);

    // Phase 2: harvest the partial ball radius; argmax + DOM count upward.
    if (detect_configured_ && !detect_harvested_ &&
        detect_.finished(ctx.round())) {
      detect_harvested_ = true;
      const auto nearest = detect_.nearest_sources();
      r_s_ = nearest.empty() ? 0 : nearest.back().first;
      argmax_.arm(inf - r_s_, id_);
    }
    if (detect_harvested_) {
      argmax_.advance(ctx, tree_);
      if (!dom_armed_) {
        dom_armed_ = true;  // stagger one round behind the argmax wave
      } else if (!dom_cnt_armed_) {
        dom_cnt_armed_ = true;
        dom_cnt_.arm(in_dom_ ? 1 : 0);
      }
      if (dom_cnt_armed_) dom_cnt_.advance(ctx, tree_);
    }

    // Phase 3: root announces w; w floods its BFS.
    if (id_ == 0 && argmax_.complete() && dom_cnt_.complete() && !go2_sent_) {
      go2_sent_ = true;
      go2_.start(argmax_.payload(), inf - argmax_.key(), dom_cnt_.value(0));
      adopt_go2(ctx);
    }
    go2_.advance(ctx, tree_);
    if (go2_adopted_ && id_ == w_ && !w_flood_started_ &&
        ctx.round() >= t_wflood_) {
      w_flood_started_ = true;
      dist_w_ = 0;
      ctx.send_all(congest::Message::make(kWFlood, 1));
    }
    if (w_forward_pending_) {
      ctx.send_all(congest::Message::make(kWFlood, dist_w_ + 1));
      w_forward_pending_ = false;
    }

    // Phase 4: once w's flood has quiesced, count |S2| and announce it.
    if (go2_adopted_ && ctx.round() >= t_wflood_ + d0_ + 2 && !ball_armed_) {
      ball_armed_ = true;
      in_s2_ = id_ == w_ || (dist_w_ != kInfDist && dist_w_ <= r_w_) || in_dom_;
      ball_cnt_.arm(in_s2_ ? 1 : 0);
    }
    if (ball_armed_) ball_cnt_.advance(ctx, tree_);
    if (id_ == 0 && ball_cnt_.complete() && !go3_sent_) {
      go3_sent_ = true;
      go3_.start(ball_cnt_.value(0));
      adopt_go3(ctx);
    }
    go3_.advance(ctx, tree_);

    // Phase 5: S2-SP; then fold the maximum distance up (= max ecc over S2).
    if (ssp2_configured_) {
      ssp2_.advance(ctx);
      if (ssp2_.finished(ctx.round()) && !max_armed_) {
        max_armed_ = true;
        max_up_.arm(std::min(ssp2_.max_delta(), inf));
      }
    }
    if (max_armed_) max_up_.advance(ctx, tree_);
    if (id_ == 0 && max_up_.complete() && !answer_sent_) {
      answer_sent_ = true;
      estimate_ = max_up_.value(0);
      answer_.start(estimate_);
    }
    answer_.advance(ctx, tree_);

    quiescent_ = tree_.finished(id_) && estimate_ != kInfDist && answer_.idle();
  }

  bool done() const override { return quiescent_; }

  std::uint32_t estimate() const { return estimate_; }
  NodeId w() const { return w_; }
  std::uint32_t r_w() const { return r_w_; }
  std::uint32_t s2() const { return s2_count_; }

 private:
  void adopt_go1(congest::RoundCtx& ctx) {
    if (detect_configured_) return;
    detect_configured_ = true;
    if (id_ != 0) {
      d0_ = go1_.value(0);
      s_ = go1_.value(1);
    }
    // Hitting-set sample: whp every partial ball of s nodes is hit.
    const double p =
        std::min(1.0, 2.0 * std::log(static_cast<double>(n_) + 1.0) /
                          static_cast<double>(s_));
    Rng rng(seed_ * 0x9e3779b97f4a7c15ULL + id_ + 1);
    in_dom_ = rng.chance(p);

    const std::uint32_t delta = d0_ / 2 + 2;
    const std::uint64_t t_start =
        id_ == 0 ? ctx.round() + delta : ctx.round() - tree_.dist() + delta;
    detect_.set_cap(s_);
    detect_.configure(t_start, SspMachine::schedule_length(
                                   std::min<std::uint64_t>(s_, n_), d0_));
  }

  void adopt_go2(congest::RoundCtx& ctx) {
    if (go2_adopted_) return;
    go2_adopted_ = true;
    const std::uint32_t inf = congest::wire_infinity(n_);
    if (id_ == 0) {
      w_ = argmax_.payload();
      r_w_ = inf - argmax_.key();
    } else {
      w_ = go2_.value(0);
      r_w_ = go2_.value(1);
    }
    const std::uint32_t delta = d0_ / 2 + 2;
    t_wflood_ =
        id_ == 0 ? ctx.round() + delta : ctx.round() - tree_.dist() + delta;
  }

  void handle_w_flood(const congest::Received& r) {
    if (dist_w_ != kInfDist) return;  // already reached
    dist_w_ = r.msg.f[0];
    w_forward_pending_ = true;
  }

  void adopt_go3(congest::RoundCtx& ctx) {
    if (ssp2_configured_) return;
    ssp2_configured_ = true;
    s2_count_ = id_ == 0 ? ball_cnt_.value(0) : go3_.value(0);
    const std::uint32_t delta = d0_ / 2 + 2;
    const std::uint64_t t_start =
        id_ == 0 ? ctx.round() + delta : ctx.round() - tree_.dist() + delta;
    ssp2_ = SspMachine(id_, n_, in_s2_);
    ssp2_.configure(t_start, SspMachine::schedule_length(s2_count_, d0_));
  }

  NodeId id_;
  NodeId n_;
  std::uint32_t s_;
  std::uint64_t seed_;
  TreeMachine tree_;
  SspMachine detect_;
  SspMachine ssp2_;
  Broadcast go1_;
  ArgMinConvergecast argmax_;
  Convergecast dom_cnt_;
  Broadcast go2_;
  Convergecast ball_cnt_;
  Broadcast go3_;
  Convergecast max_up_;
  Broadcast answer_;

  bool go1_sent_ = false;
  bool detect_configured_ = false;
  bool detect_harvested_ = false;
  bool dom_armed_ = false;
  bool dom_cnt_armed_ = false;
  bool go2_sent_ = false;
  bool go2_adopted_ = false;
  bool w_flood_started_ = false;
  bool w_forward_pending_ = false;
  bool ball_armed_ = false;
  bool go3_sent_ = false;
  bool ssp2_configured_ = false;
  bool max_armed_ = false;
  bool answer_sent_ = false;
  bool quiescent_ = false;
  bool in_dom_ = false;
  bool in_s2_ = false;

  std::uint32_t d0_ = 0;
  std::uint32_t r_s_ = 0;
  NodeId w_ = 0;
  std::uint32_t r_w_ = 0;
  std::uint64_t t_wflood_ = 0;
  std::uint32_t dist_w_ = kInfDist;
  std::uint32_t s2_count_ = 0;
  std::uint32_t estimate_ = kInfDist;
};

}  // namespace

ThreeHalvesRun run_three_halves_diameter(const Graph& g,
                                         const ThreeHalvesOptions& o) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("three_halves: n >= 2");
  std::uint32_t s = o.s;
  if (s == 0) {
    s = static_cast<std::uint32_t>(std::ceil(std::sqrt(
        static_cast<double>(n) * std::log2(static_cast<double>(n) + 1.0))));
  }

  congest::Engine engine(g, o.engine);
  engine.init([&](NodeId v) {
    return std::make_unique<ThreeHalvesProcess>(v, n, s, o.seed);
  });

  ThreeHalvesRun out;
  out.stats = engine.run();
  auto& root = engine.process_as<ThreeHalvesProcess>(0);
  out.estimate = root.estimate();
  out.answer = (3 * out.estimate + 1) / 2;
  out.deepest = root.w();
  out.ball_radius = root.r_w();
  out.num_sources = root.s2();
  return out;
}

}  // namespace dapsp::core
