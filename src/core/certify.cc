#include "core/certify.h"

#include <algorithm>
#include <stdexcept>

#include "congest/message.h"
#include "core/primitives/bfs_process.h"

namespace dapsp::core {

const char* to_string(RowCoverage c) noexcept {
  switch (c) {
    case RowCoverage::kLost:
      return "lost";
    case RowCoverage::kPartial:
      return "partial";
    case RowCoverage::kComplete:
      return "complete";
  }
  return "?";
}

std::vector<RowCoverage> classify_coverage(
    std::span<const std::uint8_t> survived, std::span<const NodeId> sources,
    const DistEntryFn& entry) {
  const NodeId n = static_cast<NodeId>(survived.size());
  std::size_t survivors = 0;
  for (std::uint8_t s : survived) survivors += s != 0;

  std::vector<RowCoverage> out;
  out.reserve(sources.size());
  for (const NodeId s : sources) {
    if (s >= n) {
      throw std::invalid_argument("classify_coverage: source out of range");
    }
    std::size_t finite = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (survived[v] != 0 && entry(v, s) != kInfDist) ++finite;
    }
    if (finite == survivors) {
      out.push_back(RowCoverage::kComplete);
    } else if (finite <= (survived[s] != 0 ? std::size_t{1} : std::size_t{0})) {
      // Only the source's own trivial 0 (or nothing at all) survives.
      out.push_back(RowCoverage::kLost);
    } else {
      out.push_back(RowCoverage::kPartial);
    }
  }
  return out;
}

namespace {

// One node of the distributed verifier. Round 2k: broadcast (k, value) for
// row k. Round 2k+1: judge row k against the neighborhood broadcast of the
// previous round. Dead nodes never run (crash-stopped at round 0), so their
// entries are neither offered nor demanded.
class CertifyProcess final : public congest::Process {
 public:
  CertifyProcess(NodeId id, std::span<const NodeId> sources,
                 const DistEntryFn& entry)
      : id_(id), sources_(sources.begin(), sources.end()) {
    values_.reserve(sources_.size());
    for (const NodeId s : sources_) values_.push_back(entry(id, s));
    row_ok_.assign(sources_.size(), 1);
  }

  void on_round(congest::RoundCtx& ctx) override {
    const std::uint64_t k = ctx.round() / 2;
    if (ctx.round() % 2 == 0) {
      if (k < sources_.size()) {
        const std::uint32_t inf = congest::wire_infinity(ctx.n());
        const std::uint32_t w =
            values_[k] == kInfDist ? inf : std::min(values_[k], inf);
        ctx.send_all(congest::Message::make(
            kCertValue, static_cast<std::uint32_t>(k), w));
      }
    } else if (k < sources_.size()) {
      judge_row(ctx, k);
      ++rows_judged_;
    }
  }

  bool done() const override { return rows_judged_ == sources_.size(); }

  std::span<const std::uint8_t> row_ok() const noexcept { return row_ok_; }
  std::uint64_t checks_failed() const noexcept { return checks_failed_; }

 private:
  static constexpr std::uint32_t kAbsent = 0xfffffffeu;

  void fail(std::uint64_t k) {
    row_ok_[k] = 0;
    ++checks_failed_;
  }

  void judge_row(congest::RoundCtx& ctx, std::uint64_t k) {
    const std::uint32_t inf = congest::wire_infinity(ctx.n());
    // Surviving neighbors' values, decoded; crashed neighbors stay kAbsent
    // (they sent nothing and are not part of the surviving subgraph).
    nbr_.assign(ctx.degree(), kAbsent);
    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind != kCertValue || r.msg.f[0] != k) continue;
      nbr_[r.from_index] = r.msg.f[1] == inf ? kInfDist : r.msg.f[1];
    }

    const NodeId s = sources_[k];
    const std::uint32_t d = values_[k];
    // (a) the source is the unique zero.
    if (id_ == s && d != 0) fail(k);
    if (id_ != s && d == 0) fail(k);
    // (b) 1-Lipschitz across every surviving edge; a finite/infinite
    // boundary is a violation (BFS reaches across edges).
    bool witness = false;
    for (const std::uint32_t du : nbr_) {
      if (du == kAbsent) continue;
      const bool fin_v = d != kInfDist;
      const bool fin_u = du != kInfDist;
      if (fin_v != fin_u) {
        fail(k);
        continue;
      }
      if (fin_v && fin_u) {
        if (d > du + 1 || du > d + 1) fail(k);
        if (du + 1 == d) witness = true;
      }
    }
    // (c) every finite non-source needs a neighbor one step closer.
    if (id_ != s && d != kInfDist && d != 0 && !witness) fail(k);
  }

  NodeId id_;
  std::vector<NodeId> sources_;
  std::vector<std::uint32_t> values_;
  std::vector<std::uint8_t> row_ok_;
  std::vector<std::uint32_t> nbr_;
  std::uint64_t checks_failed_ = 0;
  std::size_t rows_judged_ = 0;
};

}  // namespace

CertifyReport certify_rows(const Graph& g,
                           std::span<const std::uint8_t> survived,
                           std::span<const NodeId> sources,
                           const DistEntryFn& entry,
                           const CertifyOptions& options) {
  const NodeId n = g.num_nodes();
  if (survived.size() != n) {
    throw std::invalid_argument("certify_rows: survived must have one entry "
                                "per node");
  }
  for (const NodeId s : sources) {
    if (s >= n) throw std::invalid_argument("certify_rows: source out of range");
  }

  CertifyReport report;
  report.certified.assign(sources.size(), 1);
  if (sources.empty()) return report;

  congest::EngineConfig cfg = options.engine;
  congest::FaultPlan plan = cfg.faults.value_or(congest::FaultPlan{});
  for (NodeId v = 0; v < n; ++v) {
    if (survived[v] == 0) plan.crashes.push_back({v, 0});
  }
  if (!plan.crashes.empty()) cfg.faults = plan;

  congest::Engine engine(g, cfg);
  engine.init([&](NodeId v) {
    return std::make_unique<CertifyProcess>(v, sources, entry);
  });
  report.stats = engine.run();

  for (NodeId v = 0; v < n; ++v) {
    if (survived[v] == 0) continue;
    const auto& p = engine.process_as<CertifyProcess>(v);
    report.checks_failed += p.checks_failed();
    const auto ok = p.row_ok();
    for (std::size_t k = 0; k < ok.size(); ++k) {
      if (ok[k] == 0) report.certified[k] = 0;
    }
  }
  for (const std::uint8_t c : report.certified) report.rows_certified += c;
  return report;
}

// ---------------------------------------------------------------------------

struct FloodCongestionMonitor::State {
  const Graph* g = nullptr;
  std::vector<std::size_t> offsets;     // directed-edge indexing
  std::vector<std::uint64_t> stamp;     // round of the last flood per edge
  std::uint64_t flood_sends = 0;
  std::uint64_t violations = 0;

  void observe(NodeId from, NodeId to, std::uint64_t round,
               std::uint8_t msg_kind) {
    if (msg_kind != kApspFlood) return;
    ++flood_sends;
    const auto idx = g->neighbor_index(from, to);
    const std::size_t edge = offsets[from] + (idx ? *idx : 0);
    if (stamp[edge] == round) {
      ++violations;  // a second flood on this edge in this round: Lemma 1
    } else {
      stamp[edge] = round;
    }
  }
};

FloodCongestionMonitor::FloodCongestionMonitor(const Graph& g)
    : state_(std::make_shared<State>()) {
  state_->g = &g;
  const NodeId n = g.num_nodes();
  state_->offsets.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    state_->offsets[v + 1] = state_->offsets[v] + g.degree(v);
  }
  state_->stamp.assign(state_->offsets[n], ~std::uint64_t{0});
}

congest::EngineConfig::SendObserver FloodCongestionMonitor::hook() const {
  auto st = state_;
  return [st](const congest::SendEvent& ev) {
    st->observe(ev.from, ev.to, ev.round, ev.msg.kind);
  };
}

void FloodCongestionMonitor::scan(
    std::span<const congest::TraceEvent> events) {
  for (const congest::TraceEvent& ev : events) {
    if (ev.kind != congest::TraceEventKind::kSend) continue;
    state_->observe(ev.node, ev.peer, ev.round, ev.msg.kind);
  }
}

std::uint64_t FloodCongestionMonitor::flood_sends() const noexcept {
  return state_->flood_sends;
}

std::uint64_t FloodCongestionMonitor::violations() const noexcept {
  return state_->violations;
}

}  // namespace dapsp::core
