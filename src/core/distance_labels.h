// Distance labeling / All-Pairs Almost Shortest Paths (the Section 3.2
// connection, built from the paper's own machinery).
//
// The paper relates S-SP to APASP_k (all distances overestimated by at most
// an additive k) and to distance oracles. Composing its tools gives a
// label-based APASP scheme:
//
//   1. build a k-dominating set DOM (|DOM| <= n/(k+1) + 1; Lemma 10),
//   2. solve DOM-SP with Algorithm 2 (O(|DOM| + D) rounds; Theorem 3);
//      afterwards each node v holds the label L(v) = { (s, d(v,s)) : s in
//      DOM } of size |DOM|,
//   3. any two labels answer queries locally:
//        est(u, v) = min_{s in DOM} d(u,s) + d(s,v)
//      with d(u,v) <= est(u,v) <= d(u,v) + 2k  (u's dominator is within k,
//      and the triangle inequality gives the rest) — an APASP_{2k} oracle.
//
// Total construction: O(n/k + D + k) rounds, versus Theta(n) for exact APSP
// — the trade the paper's Section 3.2 discusses.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

class DistanceLabeling {
 public:
  // d(u,v) <= estimate(u,v) <= d(u,v) + 2k. Requires both labels complete
  // (connected graph, construction finished).
  std::uint32_t estimate(NodeId u, NodeId v) const;

  std::uint32_t k() const { return k_; }
  const std::vector<NodeId>& dominators() const { return dom_; }
  // Words per node label (= |DOM| entries of (id, distance)).
  std::size_t label_entries() const { return dom_.size(); }
  const congest::RunStats& stats() const { return stats_; }

 private:
  friend DistanceLabeling build_distance_labels(const Graph&, std::uint32_t,
                                                const congest::EngineConfig&);
  std::uint32_t k_ = 0;
  std::vector<NodeId> dom_;
  // labels_[v][i] = d(v, dom_[i]).
  std::vector<std::vector<std::uint32_t>> labels_;
  congest::RunStats stats_;
};

// Builds the labeling with slack parameter k (k = 0 degenerates to exact
// APSP via Algorithm 2 with S = V). Connected graphs only.
DistanceLabeling build_distance_labels(const Graph& g, std::uint32_t k,
                                       const congest::EngineConfig& cfg = {});

}  // namespace dapsp::core
