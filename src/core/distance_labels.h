// Distance labeling / All-Pairs Almost Shortest Paths (the Section 3.2
// connection, built from the paper's own machinery).
//
// The paper relates S-SP to APASP_k (all distances overestimated by at most
// an additive k) and to distance oracles. Composing its tools gives a
// label-based APASP scheme:
//
//   1. build a k-dominating set DOM (|DOM| <= n/(k+1) + 1; Lemma 10),
//   2. solve DOM-SP with Algorithm 2 (O(|DOM| + D) rounds; Theorem 3);
//      afterwards each node v holds the label L(v) = { (s, d(v,s)) : s in
//      DOM } of size |DOM|,
//   3. any two labels answer queries locally:
//        est(u, v) = min_{s in DOM} d(u,s) + d(s,v)
//      with d(u,v) <= est(u,v) <= d(u,v) + 2k  (u's dominator is within k,
//      and the triangle inequality gives the rest) — an APASP_{2k} oracle.
//
// Total construction: O(n/k + D + k) rounds, versus Theta(n) for exact APSP
// — the trade the paper's Section 3.2 discusses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::core {

class DistanceLabeling {
 public:
  // d(u,v) <= estimate(u,v) <= d(u,v) + 2k on a connected graph with
  // complete labels. Incomplete labels (no dominator finite in both — only
  // possible on corrupted or hand-built label sets, since construction
  // requires connectivity) answer kInfDist rather than inventing a finite
  // value; the addition saturates at the kInfDist sentinel, so near-max or
  // damaged entries can never wrap into a tiny bogus estimate.
  std::uint32_t estimate(NodeId u, NodeId v) const;

  // The label-combination core, exposed for the query tier and for boundary
  // tests: min_i sat_add_dist(lu[i], lv[i]), kInfDist when the spans share
  // no finite dominator entry. Requires lu.size() == lv.size().
  static std::uint32_t combine(std::span<const std::uint32_t> lu,
                               std::span<const std::uint32_t> lv) noexcept;

  std::uint32_t k() const { return k_; }
  const std::vector<NodeId>& dominators() const { return dom_; }
  // Words per node label (= |DOM| entries of (id, distance)).
  std::size_t label_entries() const { return dom_.size(); }
  // d(v, dom_[i]) for every dominator, in dominator order.
  std::span<const std::uint32_t> label(NodeId v) const { return labels_[v]; }
  const congest::RunStats& stats() const { return stats_; }

 private:
  friend DistanceLabeling build_distance_labels(const Graph&, std::uint32_t,
                                                const congest::EngineConfig&);
  std::uint32_t k_ = 0;
  std::vector<NodeId> dom_;
  // labels_[v][i] = d(v, dom_[i]).
  std::vector<std::vector<std::uint32_t>> labels_;
  congest::RunStats stats_;
};

// Builds the labeling with slack parameter k (k = 0 degenerates to exact
// APSP via Algorithm 2 with S = V: every tree level survives the residue
// pick, so DOM = V and the estimate is the true distance). Connected graphs
// only: disconnected inputs throw std::invalid_argument up front (the
// alternative — partial labels that silently answer kInfDist across the cut
// — is exactly the kind of half-state the serving tier must never publish).
// The Lemma 10 bound |DOM| <= floor(n/(k+1)) + 1 and full per-node labels
// are verified before returning; violations throw std::logic_error.
DistanceLabeling build_distance_labels(const Graph& g, std::uint32_t k,
                                       const congest::EngineConfig& cfg = {});

}  // namespace dapsp::core
