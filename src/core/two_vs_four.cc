#include "core/two_vs_four.h"

#include <cmath>
#include <memory>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "core/ssp.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

constexpr std::uint32_t kTagLowMin = 60;   // argmin: (low? id : inf, deg+1)
constexpr std::uint32_t kTagSample = 61;   // broadcast: (d0) - sample now
constexpr std::uint32_t kTagCount = 62;    // convergecast: (|S| so far)
constexpr std::uint32_t kTagParams = 63;   // broadcast: (v* or inf, |S|, d0)
constexpr std::uint32_t kTagDepth = 64;    // convergecast: (max delta)
constexpr std::uint32_t kTagAnswer = 65;   // broadcast: (2 or 4)
constexpr std::uint8_t kRecruit = 66;      // v* -> neighbors: join S

std::uint32_t threshold(NodeId n) {
  return static_cast<std::uint32_t>(std::ceil(std::sqrt(
      static_cast<double>(n) * std::log2(static_cast<double>(n) + 1.0))));
}

class TwoVsFourProcess final : public congest::Process {
 public:
  TwoVsFourProcess(NodeId id, NodeId n, std::uint64_t seed)
      : id_(id),
        n_(n),
        seed_(seed),
        ssp_(id, n, false),
        low_min_(kTagLowMin),
        sample_bcast_(kTagSample),
        count_up_(kTagCount, Convergecast::Op::kSum),
        params_bcast_(kTagParams),
        depth_up_(kTagDepth, Convergecast::Op::kMax),
        answer_bcast_(kTagAnswer) {}

  void on_round(congest::RoundCtx& ctx) override {
    const std::uint32_t inf = congest::wire_infinity(n_);

    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (ssp_.handle(ctx, r)) continue;
      if (r.msg.kind == kRecruit) {
        in_s_ = true;
        ssp_.set_in_s(true);
        continue;
      }
      if (low_min_.handle(r)) continue;
      if (count_up_.handle(r)) continue;
      if (depth_up_.handle(r)) continue;
      if (sample_bcast_.handle(r)) {
        do_sample(sample_bcast_.value(0));
      } else if (params_bcast_.handle(r)) {
        adopt_params(ctx, params_bcast_.value(0), params_bcast_.value(1),
                     params_bcast_.value(2));
      } else if (answer_bcast_.handle(r)) {
        answer_ = answer_bcast_.value(0);
      }
    }

    tree_.advance(ctx);

    // Phase 1: elect the lowest-id low-degree node (if any). Armed one round
    // after the local tree echo so the two convergecasts never share an
    // edge-round (bandwidth).
    if (tree_.finished(id_) && !low_armed_) {
      if (tree_finish_seen_) {
        low_armed_ = true;
        const std::uint32_t s = threshold(n_);
        const bool low = ctx.degree() + 1 < s;
        low_min_.arm(low ? id_ : inf, ctx.degree() + 1);
      }
      tree_finish_seen_ = true;
    }
    if (low_armed_) low_min_.advance(ctx, tree_);

    // Root: branch.
    if (id_ == 0 && low_min_.complete() && !branched_) {
      branched_ = true;
      d0_ = 2 * tree_.root_ecc();
      if (low_min_.key() != inf) {
        // Low-degree branch: S = N1(v*), |S| = deg(v*)+1.
        fire_params(ctx, low_min_.key(), low_min_.payload());
      } else {
        sample_bcast_.start(d0_);
        do_sample(d0_);
      }
    }
    sample_bcast_.advance(ctx, tree_);
    if (count_armed_) count_up_.advance(ctx, tree_);
    if (id_ == 0 && count_up_.complete() && !params_sent_) {
      fire_params(ctx, congest::wire_infinity(n_), count_up_.value(0));
    }
    params_bcast_.advance(ctx, tree_);

    ssp_.advance(ctx);
    if (ssp_.configured() && ssp_.finished(ctx.round()) && !depth_armed_) {
      depth_armed_ = true;
      depth_up_.arm(ssp_.max_delta());
    }
    if (depth_armed_) depth_up_.advance(ctx, tree_);
    if (id_ == 0 && depth_up_.complete() && !answer_sent_) {
      answer_sent_ = true;
      answer_ = depth_up_.value(0) <= 2 ? 2 : 4;
      answer_bcast_.start(answer_);
    }
    answer_bcast_.advance(ctx, tree_);

    if (recruit_pending_ && ctx.round() >= recruit_round_) {
      send_recruits(ctx);
    }
    quiescent_ = tree_.finished(id_) && answer_ != 0 && answer_bcast_.idle() &&
                 !recruit_pending_;
  }

  bool done() const override { return quiescent_; }

  std::uint32_t answer() const { return answer_; }
  bool used_low_branch() const { return used_low_branch_; }
  std::uint32_t num_sources() const { return num_sources_; }
  bool in_s() const { return in_s_; }

 private:
  void do_sample(std::uint32_t d0) {
    if (sampled_) return;
    sampled_ = true;
    d0_ = d0;
    const double p = std::sqrt(std::log2(static_cast<double>(n_) + 1.0) /
                               static_cast<double>(n_));
    Rng rng(seed_ * 0x9e3779b97f4a7c15ULL + id_);
    in_s_ = rng.chance(p);
    ssp_.set_in_s(in_s_);
    count_armed_ = true;
    count_up_.arm(in_s_ ? 1 : 0);
  }

  void fire_params(congest::RoundCtx& ctx, std::uint32_t v_star,
                   std::uint32_t s_count) {
    params_sent_ = true;
    params_bcast_.start(v_star, s_count, d0_);
    adopt_params(ctx, v_star, s_count, d0_);
  }

  void adopt_params(congest::RoundCtx& ctx, std::uint32_t v_star,
                    std::uint32_t s_count, std::uint32_t d0) {
    if (params_adopted_) return;
    params_adopted_ = true;
    d0_ = d0;
    num_sources_ = s_count;
    const std::uint32_t inf = congest::wire_infinity(n_);
    if (v_star != inf) {
      used_low_branch_ = true;
      if (id_ == v_star) {
        in_s_ = true;
        ssp_.set_in_s(true);
        // Recruit one round later: the PARAMS broadcast still occupies our
        // edges this round (bandwidth).
        recruit_pending_ = true;
        recruit_round_ = ctx.round() + 1;
      }
    }
    // Loop start: delta = ecc0 + 3 leaves room for the delayed recruit round
    // (recruits arrive at most two rounds after the latest PARAMS arrival).
    const std::uint32_t delta = d0_ / 2 + 3;
    const std::uint64_t t_start =
        id_ == 0 ? ctx.round() + delta : ctx.round() - tree_.dist() + delta;
    ssp_.configure(t_start, SspMachine::schedule_length(s_count, d0_));
  }

  void send_recruits(congest::RoundCtx& ctx) {
    recruit_pending_ = false;
    for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
      ctx.send(i, congest::Message::make(kRecruit));
    }
  }

  NodeId id_;
  NodeId n_;
  std::uint64_t seed_;
  TreeMachine tree_;
  SspMachine ssp_;
  ArgMinConvergecast low_min_;
  Broadcast sample_bcast_;
  Convergecast count_up_;
  Broadcast params_bcast_;
  Convergecast depth_up_;
  Broadcast answer_bcast_;

  bool low_armed_ = false;
  bool tree_finish_seen_ = false;
  bool branched_ = false;
  bool sampled_ = false;
  bool count_armed_ = false;
  bool params_sent_ = false;
  bool params_adopted_ = false;
  bool depth_armed_ = false;
  bool answer_sent_ = false;
  bool recruit_pending_ = false;
  std::uint64_t recruit_round_ = 0;
  bool in_s_ = false;
  bool used_low_branch_ = false;
  bool quiescent_ = false;
  std::uint32_t d0_ = 0;
  std::uint32_t num_sources_ = 0;
  std::uint32_t answer_ = 0;
};

}  // namespace

TwoVsFourResult run_two_vs_four(const Graph& g,
                                const TwoVsFourOptions& options) {
  const NodeId n = g.num_nodes();
  congest::Engine engine(g, options.engine);
  engine.init([&](NodeId v) {
    return std::make_unique<TwoVsFourProcess>(v, n, options.seed);
  });

  TwoVsFourResult out;
  out.stats = engine.run();
  out.s_threshold = threshold(n);
  auto& root = engine.process_as<TwoVsFourProcess>(0);
  out.answer = root.answer();
  out.used_low_degree_branch = root.used_low_branch();
  out.num_sources = root.num_sources();
  return out;
}

}  // namespace dapsp::core
