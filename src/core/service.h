// Long-running DAPSP service: churn, incremental repair, supervision
// (DESIGN.md §14, ROADMAP item 2).
//
// The paper computes APSP once, for one static graph. DapspService keeps the
// answer *alive* while the graph mutates under it: every epoch it ingests one
// ChurnBatch (graph/delta.h — edge inserts/removes, node joins/leaves, plus
// crash-stops and stored-entry bit-rot), maps the batch to the set of
// invalidated certificate rows, and heals exactly those rows through the
// repair machinery (core/repair.h) at O(|affected| + D) rounds instead of
// re-running the O(n)-round Algorithm 1.
//
// Dirty-region analysis (analyze_dirty_rows). The certificate rules of
// core/certify.h are sound AND complete — a row certifies iff it equals the
// true distances on the current graph — so deltas can be screened against the
// *previous, certified* table:
//   * inserted edge {u, v} (both endpoints pre-existing): row s changes iff
//     |D_s(u) - D_s(v)| >= 2 (the new edge shortcuts something); a diff <= 1
//     leaves the certificate — hence the distances — intact;
//   * removed edge {u, v}: row s can only change if the edge sat on a
//     shortest path (|diff| == 1 in an unweighted graph) AND the downstream
//     endpoint lost its last parent — if it keeps another post-batch
//     neighbor at the same parent distance, its distance and everything
//     beyond it are unchanged (the old shortest-path suffix survives).
//     Checking parents against the post-batch adjacency keeps multi-delta
//     batches sound: distance *increases* must propagate through some node
//     whose every old parent connection was lost this batch, and that
//     node's check fires;
//   * left/crashed node x: row s changes iff some surviving neighbor y of x
//     had D_s(y) = D_s(x) + 1 and y has no alternative parent at D_s(x) in
//     the post-batch graph (same argument; this also catches disconnections
//     — the first node beyond a cut always has that boundary pattern). Row
//     x itself is dead and gets zeroed;
//   * joined node w with attachment frontier F: row w is always recomputed.
//     For another row s, paths through w can only shortcut between frontier
//     nodes, so the row changes iff some y in F has D_s(y) > min_F D_s + 2
//     (or is infinite while the min is finite); otherwise the row is clean
//     and the single new entry is patched directly:
//     D_s(w) = 1 + min_{x in F} D_s(x), next_hop = the argmin. Two joined
//     nodes that are adjacent to each other break the "frontier distances
//     are old exact values" premise — the analyzer reports needs_full and
//     the service escalates to a full recompute.
//
// Supervision. Each epoch runs an escalation ladder under a watchdog that
// bounds every attempt in engine rounds (RepairOptions engine.max_rounds)
// and optionally wall-clock: (1) incremental repair of exactly the analyzed
// suspects, certifying only those rows; (2) on failure, retry with
// certificate-driven detection over all rows; (3) full recompute (suspects =
// every active node). Oversized dirty regions (> escalate_fraction of the
// active population) and needs_full skip straight to (3). Failed epochs
// leave the suspects marked kStale and the service keeps running.
//
// Graceful degradation. Queries are answered from a *served snapshot* that
// is refreshed per row only when that row certifies, with a per-row status:
// kExact (certified, untouched since the last full pass), kRepaired
// (certified after an incremental heal), kStale (certification pending or
// failed — the snapshot still answers, with the staleness disclosed).
// Status disclosure is monotone-conservative within an epoch: the moment
// the dirty-region analyzer implicates a row, its status drops to kStale —
// *before* any repair attempt runs — and only a successful certification
// raises it again. A consumer that observes the service mid-epoch (the
// query tier's snapshot publishes, a checkpoint taken from a sink) can
// therefore never see a row claiming kExact whose stored values predate a
// batch that invalidated them.
// Bit-rot corruption is invisible to the delta analyzer by design; the
// periodic scrub() — a certificate-driven detection repair over all rows —
// is what catches it (ServiceConfig::scrub_every automates the cadence).
//
// Checkpoint/restore. checkpoint() serializes the full *state* (graph,
// working tables, served snapshot, row statuses, epoch counter, caller
// words for e.g. DeltaPlan resume) with a trailing checksum; restore()
// rebuilds a service that continues bit-identically — state excludes the
// cumulative stats, so a restored run and a straight-through run produce
// identical checkpoints from the same epoch onward, at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "congest/engine.h"
#include "core/pebble_apsp.h"
#include "core/repair.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace dapsp::core {

// Why a checkpoint blob was rejected — the distinct failure modes a durable
// deployment must tell apart (DESIGN.md §15). kTruncated is what a process
// kill mid-write leaves; kChecksumMismatch is bit damage of a full-length
// blob; kVersionMismatch is a checkpoint from a different format version
// (right magic, wrong version word) and must not be repaired away.
enum class CheckpointError : std::uint8_t {
  kNone = 0,
  kMissing = 1,           // no bytes at all
  kTruncated = 2,         // shorter than its own structure claims
  kBadMagic = 3,          // not a service checkpoint
  kVersionMismatch = 4,   // "DSVC" magic, different version word
  kChecksumMismatch = 5,  // full structure, body damaged (or bytes appended)
  kBadPayload = 6,        // checksum holds but a field is inconsistent
};

const char* to_string(CheckpointError e) noexcept;

// Classifies a checkpoint blob without building a service from it. Pure and
// noexcept: a dry structural parse plus the trailing-checksum check.
// (kBadPayload cases that need full deserialization — an inconsistent edge
// list, say — are only caught by restore_blob/try_restore_blob.)
CheckpointError classify_checkpoint_blob(
    std::span<const std::uint8_t> blob) noexcept;

// The epoch stored in a checkpoint blob. Only meaningful when
// classify_checkpoint_blob returned kNone.
std::uint64_t peek_checkpoint_epoch(std::span<const std::uint8_t> blob) noexcept;

// Retry backoff saturates here instead of overflowing: long degraded
// streaks shift the exponential multiplier far past 64 bits, and a service
// that sleeps "forever" (or UB-shifts into a tiny value) is as broken as
// one that hot-loops.
inline constexpr std::uint64_t kMaxBackoffMs = 60'000;

// base_ms * 2^exp, clamped to kMaxBackoffMs (0 stays 0 at any exponent).
std::uint64_t backoff_delay_ms(std::uint64_t base_ms,
                               std::uint64_t exp) noexcept;

// One decorrelated-jitter draw: uniform in [lo, hi] inclusive, deterministic
// from the (seed, a, b) key — the same keyed-stream construction as the
// fault injector's per-(node, round) RNG streams (congest/faults.cc), so
// adjacent keys share no affine structure. lo > hi answers lo.
std::uint64_t jitter_between(std::uint64_t lo, std::uint64_t hi,
                             std::uint64_t seed, std::uint64_t a,
                             std::uint64_t b) noexcept;

// Decorrelated-jitter retry backoff (the AWS "decorrelated jitter" shape):
// a draw uniform in [base_ms, min(kMaxBackoffMs, max(base_ms, prev_ms) * 3)],
// keyed by (seed, epoch, attempt). Unlike the bare exponential, co-churning
// shards with identical degraded streaks spread out instead of slamming the
// repair ladder in lockstep; unlike free-running RNG backoff, the same
// (seed, epoch, attempt) always sleeps the same amount — reruns reproduce.
// base_ms == 0 stays 0 (don't sleep). Feed the previous epoch/attempt's
// delay back in as prev_ms to grow the envelope across a failure streak.
std::uint64_t decorrelated_backoff_ms(std::uint64_t base_ms,
                                      std::uint64_t prev_ms,
                                      std::uint64_t seed, std::uint64_t epoch,
                                      std::uint64_t attempt) noexcept;

// Per-source-row serving status (see header note).
enum class RowStatus : std::uint8_t {
  kExact = 0,
  kRepaired = 1,
  kStale = 2,
};

const char* to_string(RowStatus s) noexcept;

// What the dirty-region analyzer concluded about one batch of deltas.
struct DirtyReport {
  // Rows whose stored distances may differ from the new graph's (sorted,
  // active sources only; joined nodes always appear).
  std::vector<NodeId> dirty;
  // The analyzer could not bound the affected region (adjacent joins):
  // treat every row as suspect.
  bool needs_full = false;

  // The canonical batch diff the rules were evaluated over.
  std::vector<NodeId> joined;     // newly active
  std::vector<NodeId> left;       // newly inactive (leaves and crashes)
  std::vector<Edge> inserted;     // added edges between pre-existing actives
  std::vector<Edge> removed;      // removed edges between still-active nodes
};

// Screens a batch against the previous (certified) distance table. `dist` is
// the pre-batch working table indexed (node, source); `active_before` /
// `edges_before` describe the pre-batch graph; `after` is the post-batch
// state. Pure analysis — mutates nothing.
DirtyReport analyze_dirty_rows(const DistanceMatrix& dist,
                               std::span<const std::uint8_t> active_before,
                               std::span<const Edge> edges_before,
                               const DynamicGraph& after);

// How an epoch's repair resolved (also the kEpoch trace event's aux value).
enum class EpochOutcome : std::uint8_t {
  kClean = 0,       // empty dirty set — nothing ran
  kRepaired = 1,    // incremental repair succeeded first try
  kRetried = 2,     // needed the detection retry
  kEscalated = 3,   // full recompute fired (oversized region, needs_full,
                    // exhausted retries, or watchdog trips)
  kSuppressed = 4,  // the repair gate (circuit breaker) refused the ladder;
                    // suspects stay kStale, the last certified snapshot
                    // keeps serving, and no repair work was spent
};

const char* to_string(EpochOutcome o) noexcept;

struct EpochReport {
  std::uint64_t epoch = 0;
  EpochOutcome outcome = EpochOutcome::kClean;
  std::uint32_t deltas_applied = 0;
  std::uint32_t crashes = 0;
  std::uint32_t corrupted_entries = 0;
  std::uint32_t suspect_rows = 0;  // rows recomputed this epoch
  std::uint32_t attempts = 0;      // repair attempts consumed
  bool escalated = false;
  bool certified = true;  // the epoch's repaired rows certified

  // Engine rounds of the successful attempt (max over components — the
  // network-parallel cost), plus its asserted O(|S| + D) bound.
  std::uint64_t repair_rounds = 0;
  std::uint64_t round_bound = 0;
  bool bound_ok = true;

  // Everything the epoch's engine runs cost, summed over attempts.
  congest::RunStats stats;

  std::string debug_string() const;
};

struct ServiceStats {
  std::uint64_t epochs = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t crashes = 0;
  std::uint64_t corrupted_entries = 0;
  std::uint64_t rows_repaired = 0;
  std::uint64_t epochs_failed = 0;  // all attempts failed; rows left stale
  std::uint64_t scrubs = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t backoff_ms = 0;  // total retry backoff slept
  // Overload robustness (core/resilience.h): epochs whose repair ladder the
  // gate refused, and gate state changes the service observed (each one is
  // also a kBreaker trace event).
  std::uint64_t repairs_suppressed = 0;
  std::uint64_t breaker_transitions = 0;

  // Accumulated engine stats over every repair/certify run, including the
  // service counters (repairs_attempted / repairs_escalated /
  // checkpoint_bytes) surfaced in RunStats::debug_string().
  congest::RunStats run;

  std::string debug_string() const;
};

class DapspService;

// Observer hook for the query serving tier (core/query.h): the service
// calls it whenever the served snapshot reaches a publishable state. Two
// publish points per epoch:
//   * degraded = true — right after dirty analysis downgraded the affected
//     rows to kStale, before any repair runs. Values are the pre-batch ones,
//     statuses are conservative for the post-batch graph; publishing here is
//     what keeps mid-epoch readers from trusting a row that is in flight.
//     Only fired when at least one row was downgraded this epoch.
//   * degraded = false — at the end of every step()/scrub(), statuses final.
// The service is in a consistent, queryable state at both points; the sink
// must not mutate it.
struct SnapshotSink {
  virtual ~SnapshotSink() = default;
  virtual void on_snapshot(const DapspService& svc, bool degraded) = 0;
};

// Admission gate in front of the repair ladder — the hook a circuit breaker
// (core/resilience.h BreakerRepairGate) plugs into. Consulted once per
// step() that has a non-empty suspect set, before any repair work runs:
//   * allow_repair(epoch) == false suppresses the whole ladder for the
//     epoch. The suspects stay kStale, the served snapshot keeps answering
//     from the last certified state, and the epoch reports kSuppressed —
//     degraded, but at zero repair cost (how an open breaker pins the last
//     certified snapshot while the engine is misbehaving).
//   * on_repair_outcome(epoch, certified) reports how a ladder that did run
//     resolved, driving the gate's failure/success accounting.
// scrub() bypasses allow_repair (operator-initiated maintenance must always
// be able to heal) but still reports its outcome, so a successful scrub can
// close an open breaker. state() is observability: 0 closed / 1 open /
// 2 half-open; the service emits a kBreaker trace event whenever the value
// changes across its consultations. Gate state is not checkpointed (like
// degraded_streak() — a restored service starts from a closed gate).
struct RepairGate {
  virtual ~RepairGate() = default;
  virtual bool allow_repair(std::uint64_t epoch) = 0;
  virtual void on_repair_outcome(std::uint64_t epoch, bool certified) = 0;
  virtual std::uint8_t state() const = 0;
};

struct ServiceConfig {
  // Engine knobs for all repair/certify sub-runs (threads, bandwidth_ids are
  // honored; faults and instrumentation are stripped by the repair layer —
  // attach `engine.trace` to receive the service's own kDelta/kEpoch
  // events instead).
  congest::EngineConfig engine{};

  // Escalate straight to a full recompute when the dirty set exceeds this
  // fraction of the active population (incremental repair would not be
  // cheaper). Must lie in (0, 1].
  double escalate_fraction = 0.5;

  // Attempts per epoch before giving up (>= 1): incremental, detection
  // retry, full recompute — the ladder truncates to this many rungs.
  std::uint32_t max_repair_attempts = 3;

  // Watchdog: per-attempt engine round budget (0 = the engine default of
  // 64n + 1024) and wall-clock budget for the whole epoch (0 = unbounded).
  // A round-limit trip fails the attempt; blowing the wall budget jumps
  // straight to the final escalation rung.
  std::uint64_t watchdog_rounds = 0;
  std::uint64_t watchdog_wall_ms = 0;

  // Retry backoff: sleep a decorrelated-jittered delay between failed
  // attempts (0 = don't sleep; the default keeps tests and benches fast).
  // The envelope starts at the bare exponential backoff_delay_ms(base,
  // degraded_streak) and each draw is uniform in [base, min(cap, 3 * prev)]
  // via decorrelated_backoff_ms, keyed by (backoff_seed, epoch, attempt).
  std::uint64_t backoff_base_ms = 0;
  std::uint64_t backoff_seed = 1;

  // Run scrub() automatically after every k-th epoch (0 = never). Scrubbing
  // is what catches bit-rot corruption, which is invisible to the delta
  // analyzer.
  std::uint32_t scrub_every = 0;

  // Query-tier publish hook (see SnapshotSink). Not owned; must outlive the
  // service. Not part of the checkpointed state.
  SnapshotSink* snapshot_sink = nullptr;

  // Repair-ladder admission gate (see RepairGate). Not owned; must outlive
  // the service. Not part of the checkpointed state.
  RepairGate* repair_gate = nullptr;
};

// One distance query, answered from the served snapshot.
struct ServiceQuery {
  bool active = false;  // both endpoints currently active
  std::uint32_t dist = kInfDist;
  NodeId next_hop = kNoNextHop;
  RowStatus status = RowStatus::kStale;  // status of the consulted row
};

class DapspService {
 public:
  // Builds the initial certified tables for `initial` (all nodes active) via
  // a full S-SP recompute — works on disconnected graphs too. Throws on an
  // empty graph or invalid config.
  DapspService(const Graph& initial, const ServiceConfig& config = {});

  // One service epoch: apply the batch, analyze, heal, serve. See header.
  EpochReport step(const ChurnBatch& batch);

  // Certificate-driven repair over all rows (catches corruption and any
  // analyzer miss); refreshes every row to kExact on success.
  EpochReport scrub();

  const DynamicGraph& dynamic_graph() const noexcept { return graph_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  const ServiceStats& stats() const noexcept { return stats_; }
  const ApspResult& tables() const noexcept { return apsp_; }
  const ServiceConfig& config() const noexcept { return config_; }

  // Consecutive failed epochs (reset by any certified epoch). Feeds the
  // retry backoff exponent, saturating via backoff_delay_ms. Not part of
  // the checkpointed state — a restored service starts its streak at 0.
  std::uint64_t degraded_streak() const noexcept { return degraded_streak_; }

  // Ops/fault-drill knob: retune the per-attempt round watchdog on a live
  // service (0 restores the engine default). Deliberately mutable — the
  // overload drills pin it to 1 round to force deterministic repair
  // failures, then lift it; it is config, not checkpointed state.
  void set_watchdog_rounds(std::uint64_t rounds) noexcept {
    config_.watchdog_rounds = rounds;
  }

  RowStatus row_status(NodeId s) const { return row_status_[s]; }
  std::span<const RowStatus> row_statuses() const noexcept {
    return row_status_;
  }
  // Read-only views of the served snapshot, for the query tier's snapshot
  // encoder (core/query.h). served_dist().at(v, s) is the served distance
  // from v to s with the freshness of row s (= row_status(s)).
  const DistanceMatrix& served_dist() const noexcept { return served_dist_; }
  const std::vector<std::vector<NodeId>>& served_next_hop() const noexcept {
    return served_next_hop_;
  }
  // True when no active row is stale — every served row is certified
  // against the current graph (modulo not-yet-scrubbed bit-rot).
  bool fully_certified() const;

  // Distance from `from` to `to` per the served snapshot. Inactive
  // endpoints answer active = false with everything else defaulted.
  ServiceQuery query(NodeId from, NodeId to) const;

  // Serializes the full service state (see header; excludes stats) plus the
  // caller's words (e.g. DeltaPlan rng state + batch counter). Counts the
  // blob size into stats().run.checkpoint_bytes.
  void checkpoint(std::ostream& out,
                  std::span<const std::uint64_t> user_words = {});
  std::vector<std::uint8_t> checkpoint_blob(
      std::span<const std::uint64_t> user_words = {});

  // Rebuilds a service from a checkpoint stream. Throws std::runtime_error
  // naming the CheckpointError (missing / truncated / bad magic / version
  // mismatch / checksum mismatch / bad payload). `user_words_out` receives
  // the caller words stored at checkpoint time.
  static DapspService restore(std::istream& in, const ServiceConfig& config,
                              std::vector<std::uint64_t>* user_words_out);
  // Same, from an in-memory blob.
  static DapspService restore_blob(std::span<const std::uint8_t> blob,
                                   const ServiceConfig& config,
                                   std::vector<std::uint64_t>* user_words_out);
  // Non-throwing variant: returns std::nullopt and the classification in
  // `error_out` instead. Used by generation-fallback recovery
  // (core/durable.h), which must survive a damaged newest checkpoint.
  static std::optional<DapspService> try_restore_blob(
      std::span<const std::uint8_t> blob, const ServiceConfig& config,
      std::vector<std::uint64_t>* user_words_out, CheckpointError* error_out);

 private:
  struct RestoreTag {};
  DapspService(RestoreTag, const ServiceConfig& config, DynamicGraph graph);

  void validate_config() const;
  // Zero source row x (dead) in working and served tables.
  void zero_row(NodeId x);
  // Direct-patch entry (w, s) of clean rows for a joined node (see header).
  void patch_join_entries(const DirtyReport& dr);
  // The repair ladder shared by step() and scrub(). `suspects` nullopt =
  // detection mode for the first rung. Fills the report's repair fields.
  void run_repair_ladder(std::optional<std::vector<NodeId>> suspects,
                         bool force_escalate, EpochReport& ep);
  void refresh_served(std::span<const NodeId> rows, RowStatus status);
  void emit_epoch_event(const EpochReport& ep);
  // kBreaker event + counter when the gate's observed state changed.
  void note_gate_state();

  ServiceConfig config_;
  DynamicGraph graph_;
  ApspResult apsp_;  // working tables over the fixed universe
  DistanceMatrix served_dist_;
  std::vector<std::vector<NodeId>> served_next_hop_;
  std::vector<RowStatus> row_status_;
  std::uint64_t epoch_ = 0;
  std::uint64_t degraded_streak_ = 0;
  std::uint8_t last_gate_state_ = 0;  // last observed RepairGate::state()
  ServiceStats stats_;
};

}  // namespace dapsp::core
