#include "core/tree_check.h"

#include <memory>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"

namespace dapsp::core {
namespace {

class TreeCheckProcess final : public congest::Process {
 public:
  explicit TreeCheckProcess(NodeId id) : id_(id), verdict_(/*tag=*/31) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (verdict_.handle(r)) {
        is_tree_ = verdict_.value(0) != 0;
        decided_ = true;
      }
    }
    tree_.advance(ctx);
    if (id_ == 0 && tree_.root_complete() && !sent_) {
      sent_ = true;
      is_tree_ = !tree_.root_cycle_evidence();
      decided_ = true;
      verdict_.start(is_tree_ ? 1 : 0);
    }
    verdict_.advance(ctx, tree_);
    quiescent_ = tree_.finished(id_) && decided_ && verdict_.idle();
  }

  bool done() const override { return quiescent_; }

  bool is_tree() const { return is_tree_; }
  const TreeMachine& tree() const { return tree_; }

 private:
  NodeId id_;
  TreeMachine tree_;
  Broadcast verdict_;
  bool sent_ = false;
  bool decided_ = false;
  bool is_tree_ = false;
  bool quiescent_ = false;
};

}  // namespace

TreeCheckRun run_tree_check(const Graph& g, const congest::EngineConfig& cfg) {
  congest::Engine engine(g, cfg);
  engine.init([](NodeId v) { return std::make_unique<TreeCheckProcess>(v); });
  TreeCheckRun out;
  out.stats = engine.run();
  auto& leader = engine.process_as<TreeCheckProcess>(0);
  out.is_tree = leader.is_tree();
  out.leader_ecc = leader.tree().root_ecc();
  return out;
}

}  // namespace dapsp::core
