#include "seq/apsp.h"

#include "seq/bfs.h"

namespace dapsp {

std::uint32_t DistanceMatrix::max_finite() const {
  std::uint32_t best = 0;
  for (const std::uint32_t d : d_) {
    if (d != kInfDist && d > best) best = d;
  }
  return best;
}

namespace seq {

DistanceMatrix apsp(const Graph& g) {
  DistanceMatrix m(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const BfsResult r = bfs(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) m.set(u, v, r.dist[v]);
  }
  return m;
}

}  // namespace seq
}  // namespace dapsp
