#include "seq/aingworth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "seq/bfs.h"
#include "seq/properties.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dapsp::seq {

std::uint32_t aingworth_threshold(NodeId n) {
  const double s = std::sqrt(static_cast<double>(n) *
                             std::log2(static_cast<double>(n) + 1.0));
  return static_cast<std::uint32_t>(std::ceil(s));
}

std::vector<NodeId> low_degree_nodes(const Graph& g, std::uint32_t s) {
  std::vector<NodeId> low;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) + 1 < s) low.push_back(v);
  }
  return low;
}

std::vector<NodeId> sample_dominating_set_for_high(const Graph& g,
                                                   std::uint32_t s,
                                                   std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  const double p = std::sqrt(std::log2(static_cast<double>(n) + 1.0) /
                             static_cast<double>(n));
  Rng rng(seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<NodeId> dom;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.chance(p)) dom.push_back(v);
    }
    // Check domination of H(V): every high-degree node has a sampled node in
    // its inclusive neighborhood.
    bool ok = true;
    std::vector<std::uint8_t> sampled(n, 0);
    for (const NodeId v : dom) sampled[v] = 1;
    for (NodeId v = 0; v < n && ok; ++v) {
      if (g.degree(v) + 1 < s) continue;  // low-degree: not required
      if (sampled[v]) continue;
      bool dominated = false;
      for (const NodeId u : g.neighbors(v)) {
        if (sampled[u]) {
          dominated = true;
          break;
        }
      }
      ok = dominated;
    }
    if (ok) return dom;
  }
  throw std::runtime_error(
      "sample_dominating_set_for_high: sampling failed 64 times (graph too "
      "small for the whp guarantee?)");
}

PartialBfs partial_bfs(const Graph& g, NodeId v, std::uint32_t s) {
  PartialBfs out;
  const BfsResult full = bfs(g, v);
  std::vector<std::pair<std::uint32_t, NodeId>> order;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (full.dist[u] != kInfDist) order.push_back({full.dist[u], u});
  }
  std::sort(order.begin(), order.end());
  const std::size_t keep = std::min<std::size_t>(s, order.size());
  for (std::size_t i = 0; i < keep; ++i) {
    out.nearest.push_back(order[i].second);
    out.radius = order[i].first;
  }
  return out;
}

ThreeHalvesResult three_halves_diameter(const Graph& g, std::uint32_t s) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("three_halves_diameter: n >= 2");
  if (s == 0) s = aingworth_threshold(n);

  ThreeHalvesResult out;
  auto run_bfs = [&](NodeId root) {
    const BfsResult b = bfs(g, root);
    ++out.bfs_performed;
    out.estimate = std::max(out.estimate, b.ecc);
  };

  // 1. Partial s-BFS everywhere; find the deepest.
  std::vector<PartialBfs> partial(n);
  std::uint32_t deepest_radius = 0;
  for (NodeId v = 0; v < n; ++v) {
    partial[v] = partial_bfs(g, v, s);
    if (partial[v].radius > deepest_radius) {
      deepest_radius = partial[v].radius;
      out.deepest = v;
    }
  }

  // 2. Full BFS from w and from each of its s nearest.
  run_bfs(out.deepest);
  for (const NodeId u : partial[out.deepest].nearest) {
    if (u != out.deepest) run_bfs(u);
  }

  // 3. Greedy hitting set of { N_s(v) : v in V }, then BFS from each member
  //    (the deterministic dominating-set step of [2]).
  std::vector<std::uint8_t> hit(n, 0);
  std::size_t unhit = n;
  while (unhit > 0) {
    // Count, for each node u, how many un-hit neighborhoods contain u.
    std::vector<std::uint32_t> gain(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (hit[v]) continue;
      for (const NodeId u : partial[v].nearest) ++gain[u];
    }
    NodeId best = 0;
    for (NodeId u = 1; u < n; ++u) {
      if (gain[u] > gain[best]) best = u;
    }
    ++out.hitting_set_size;
    run_bfs(best);
    for (NodeId v = 0; v < n; ++v) {
      if (hit[v]) continue;
      for (const NodeId u : partial[v].nearest) {
        if (u == best) {
          hit[v] = 1;
          --unhit;
          break;
        }
      }
    }
  }
  return out;
}

TwoVsFourResult two_vs_four(const Graph& g, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("two_vs_four: n >= 2");
  const std::uint32_t s = aingworth_threshold(n);

  TwoVsFourResult result;
  std::vector<NodeId> roots;
  const std::vector<NodeId> low = low_degree_nodes(g, s);
  if (!low.empty()) {
    result.used_low_degree_branch = true;
    // BFS from every vertex in N1(v) for a low-degree v (|N1(v)| < s).
    const NodeId v = low.front();
    roots.push_back(v);
    for (const NodeId u : g.neighbors(v)) roots.push_back(u);
  } else {
    roots = sample_dominating_set_for_high(g, s, seed);
  }

  std::uint32_t max_depth = 0;
  for (const NodeId r : roots) {
    const BfsResult b = bfs(g, r);
    ++result.bfs_performed;
    max_depth = std::max(max_depth, b.ecc);
  }
  result.answer = (max_depth <= 2) ? 2u : 4u;
  return result;
}

}  // namespace dapsp::seq
