// Sequential all-pairs shortest paths (n BFS runs) and the distance-matrix
// container shared with the distributed algorithms' results.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dapsp {

// Dense n x n matrix of hop distances. Row u holds distances from u.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(NodeId n)
      : n_(n), d_(std::size_t{n} * n, kInfDist) {}

  NodeId n() const noexcept { return n_; }

  std::uint32_t at(NodeId u, NodeId v) const {
    return d_[std::size_t{u} * n_ + v];
  }
  void set(NodeId u, NodeId v, std::uint32_t dist) {
    d_[std::size_t{u} * n_ + v] = dist;
  }

  // Row of distances from u.
  std::span<const std::uint32_t> row(NodeId u) const {
    return {d_.data() + std::size_t{u} * n_, n_};
  }

  // Maximum finite entry (the diameter, if the graph is connected).
  std::uint32_t max_finite() const;

  friend bool operator==(const DistanceMatrix&, const DistanceMatrix&) = default;

 private:
  NodeId n_ = 0;
  std::vector<std::uint32_t> d_;
};

namespace seq {

// Reference APSP: one BFS per node, O(n * (n + m)).
DistanceMatrix apsp(const Graph& g);

}  // namespace seq
}  // namespace dapsp
