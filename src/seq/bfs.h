// Sequential breadth-first search: the ground-truth oracle against which the
// distributed algorithms are tested, and a building block for src/seq.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace dapsp::seq {

struct BfsResult {
  // dist[v] = hop distance from the source, kInfDist if unreachable.
  std::vector<std::uint32_t> dist;
  // parent[v] = predecessor of v on a shortest path from the source
  // (smallest-id predecessor); kInfParent for the source and unreachable.
  std::vector<NodeId> parent;
  // Maximum finite distance (the source's eccentricity within its component).
  std::uint32_t ecc = 0;

  static constexpr NodeId kInfParent = 0xffffffffu;
};

BfsResult bfs(const Graph& g, NodeId source);

// Distances from `source` truncated at `max_depth` (nodes further away get
// kInfDist). Mirrors the paper's partial k-BFS trees (Definition 7).
BfsResult bfs_limited(const Graph& g, NodeId source, std::uint32_t max_depth);

}  // namespace dapsp::seq
