// Sequential computation of the graph properties studied by the paper
// (Definitions 3, 4 and 6): eccentricities, diameter, radius, center,
// peripheral vertices, girth — plus structural predicates used by tests.
//
// These are the trusted oracles; every distributed algorithm is validated
// against them.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "seq/apsp.h"

namespace dapsp::seq {

// Girth of a forest is "infinity" (Definition 3).
inline constexpr std::uint32_t kInfGirth = kInfDist;

bool is_connected(const Graph& g);

// True iff g is connected and acyclic (Claim 1's predicate).
bool is_tree(const Graph& g);

// ecc(v) for every v. Requires a connected graph.
std::vector<std::uint32_t> eccentricities(const Graph& g);
std::vector<std::uint32_t> eccentricities(const DistanceMatrix& d);

// Diameter / radius. Require a connected graph.
std::uint32_t diameter(const Graph& g);
std::uint32_t radius(const Graph& g);

// Center: nodes with ecc(v) == radius (Definition 4).
std::vector<NodeId> center(const Graph& g);
// Peripheral vertices: nodes with ecc(v) == diameter (Definition 4).
std::vector<NodeId> peripheral_vertices(const Graph& g);

// Exact girth via n BFS runs; kInfGirth for forests.
std::uint32_t girth(const Graph& g);

// Number of nodes within distance k of v, including v (|N_k(v)|).
std::uint32_t count_within(const Graph& g, NodeId v, std::uint32_t k);

// True iff every node of g is within distance k of some node in dom
// (Definition 9).
bool is_k_dominating(const Graph& g, std::span<const NodeId> dom,
                     std::uint32_t k);

}  // namespace dapsp::seq
