// Sequential version of Algorithm 3 ("2-vs-4", after Aingworth, Chekuri,
// Indyk, Motwani): distinguish diameter-2 graphs from diameter-4 graphs.
// Serves as the reference implementation for the distributed version in
// src/core/two_vs_four and as a standalone baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dapsp::seq {

// Degree threshold used by Algorithm 3; the paper (following [2]) picks
// s = sqrt(n * log n).
std::uint32_t aingworth_threshold(NodeId n);

// L(V) = { v : deg(v) + 1 < s } (Definition 10 counts v itself in N1(v)).
std::vector<NodeId> low_degree_nodes(const Graph& g, std::uint32_t s);

// A 1-dominating set for the high-degree nodes H(V), by random sampling with
// probability sqrt(log n / n) per node (Remark 6). Retries until dominating
// (whp a single attempt suffices).
std::vector<NodeId> sample_dominating_set_for_high(const Graph& g,
                                                   std::uint32_t s,
                                                   std::uint64_t seed);

struct TwoVsFourResult {
  std::uint32_t answer = 0;        // 2 or 4
  std::size_t bfs_performed = 0;   // cost proxy: number of full BFS runs
  bool used_low_degree_branch = false;
};

// Input promise: diameter(g) is exactly 2 or exactly 4.
TwoVsFourResult two_vs_four(const Graph& g, std::uint64_t seed);

// The s nearest nodes of v (ties broken by id), i.e. the partial s-BFS of
// [2], together with the distance of the s-th (the ball radius).
struct PartialBfs {
  std::vector<NodeId> nearest;   // <= s nodes, including v itself
  std::uint32_t radius = 0;      // distance of the farthest of them
};
PartialBfs partial_bfs(const Graph& g, NodeId v, std::uint32_t s);

// The Aingworth-Chekuri-Indyk-Motwani (x,3/2) diameter estimate
// (Section 3.3): partial s-BFS everywhere, a full BFS from the deepest
// partial tree's root w and from each of w's s nearest, plus BFS from a
// greedy hitting set of all the partial neighborhoods. Returns a lower
// estimate with floor(2D/3) <= estimate <= D, deterministically.
struct ThreeHalvesResult {
  std::uint32_t estimate = 0;    // max eccentricity seen
  NodeId deepest = 0;            // w
  std::size_t bfs_performed = 0; // cost proxy
  std::size_t hitting_set_size = 0;
};
ThreeHalvesResult three_halves_diameter(const Graph& g, std::uint32_t s = 0);

}  // namespace dapsp::seq
