#include "seq/properties.h"

#include <algorithm>
#include <stdexcept>

#include "seq/bfs.h"

namespace dapsp::seq {

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const BfsResult r = bfs(g, 0);
  return std::none_of(r.dist.begin(), r.dist.end(),
                      [](std::uint32_t d) { return d == kInfDist; });
}

bool is_tree(const Graph& g) {
  return is_connected(g) &&
         g.num_edges() + 1 == static_cast<std::size_t>(g.num_nodes());
}

std::vector<std::uint32_t> eccentricities(const Graph& g) {
  std::vector<std::uint32_t> ecc(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const BfsResult r = bfs(g, v);
    for (const std::uint32_t d : r.dist) {
      if (d == kInfDist) {
        throw std::invalid_argument("eccentricities: graph is disconnected");
      }
    }
    ecc[v] = r.ecc;
  }
  return ecc;
}

std::vector<std::uint32_t> eccentricities(const DistanceMatrix& d) {
  std::vector<std::uint32_t> ecc(d.n(), 0);
  for (NodeId v = 0; v < d.n(); ++v) {
    for (const std::uint32_t dist : d.row(v)) {
      if (dist == kInfDist) {
        throw std::invalid_argument("eccentricities: matrix has infinities");
      }
      ecc[v] = std::max(ecc[v], dist);
    }
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  const auto ecc = eccentricities(g);
  return *std::max_element(ecc.begin(), ecc.end());
}

std::uint32_t radius(const Graph& g) {
  const auto ecc = eccentricities(g);
  return *std::min_element(ecc.begin(), ecc.end());
}

std::vector<NodeId> center(const Graph& g) {
  const auto ecc = eccentricities(g);
  const std::uint32_t rad = *std::min_element(ecc.begin(), ecc.end());
  std::vector<NodeId> c;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ecc[v] == rad) c.push_back(v);
  }
  return c;
}

std::vector<NodeId> peripheral_vertices(const Graph& g) {
  const auto ecc = eccentricities(g);
  const std::uint32_t diam = *std::max_element(ecc.begin(), ecc.end());
  std::vector<NodeId> p;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ecc[v] == diam) p.push_back(v);
  }
  return p;
}

std::uint32_t girth(const Graph& g) {
  // For each source v: BFS, then scan every edge (u,w); a non-tree edge
  // closes a cycle through the BFS paths of length dist[u] + dist[w] + 1.
  // The minimum over all sources and edges is exactly the girth (the BFS
  // from any vertex on a minimum cycle certifies it; no candidate is ever
  // shorter than the girth since each candidate closed walk contains a
  // cycle). This mirrors the distributed detection rule of Lemma 7.
  std::uint32_t best = kInfGirth;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const BfsResult r = bfs(g, v);
    for (const Edge& e : g.edges()) {
      if (r.dist[e.u] == kInfDist || r.dist[e.v] == kInfDist) continue;
      if (r.parent[e.u] == e.v || r.parent[e.v] == e.u) continue;  // tree edge
      const std::uint32_t len = r.dist[e.u] + r.dist[e.v] + 1;
      best = std::min(best, len);
    }
  }
  return best;
}

std::uint32_t count_within(const Graph& g, NodeId v, std::uint32_t k) {
  const BfsResult r = bfs_limited(g, v, k);
  std::uint32_t count = 0;
  for (const std::uint32_t d : r.dist) {
    if (d != kInfDist) ++count;
  }
  return count;
}

bool is_k_dominating(const Graph& g, std::span<const NodeId> dom,
                     std::uint32_t k) {
  // Multi-source BFS from dom, truncated at depth k.
  std::vector<std::uint32_t> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> frontier;
  for (const NodeId v : dom) {
    if (v >= g.num_nodes()) throw std::invalid_argument("is_k_dominating: bad node");
    if (dist[v] != 0) {
      dist[v] = 0;
      frontier.push_back(v);
    }
  }
  for (std::uint32_t depth = 0; depth < k && !frontier.empty(); ++depth) {
    std::vector<NodeId> next;
    for (const NodeId u : frontier) {
      for (const NodeId w : g.neighbors(u)) {
        if (dist[w] == kInfDist) {
          dist[w] = depth + 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kInfDist; });
}

}  // namespace dapsp::seq
