#include "seq/bfs.h"

#include <queue>

namespace dapsp::seq {

BfsResult bfs(const Graph& g, NodeId source) {
  return bfs_limited(g, source, kInfDist);
}

BfsResult bfs_limited(const Graph& g, NodeId source, std::uint32_t max_depth) {
  BfsResult r;
  r.dist.assign(g.num_nodes(), kInfDist);
  r.parent.assign(g.num_nodes(), BfsResult::kInfParent);
  std::queue<NodeId> q;
  r.dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    r.ecc = r.dist[u];
    if (r.dist[u] == max_depth) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (r.dist[v] == kInfDist) {
        r.dist[v] = r.dist[u] + 1;
        r.parent[v] = u;
        q.push(v);
      }
    }
  }
  return r;
}

}  // namespace dapsp::seq
