#include "baselines/naive_apsp.h"

#include <algorithm>
#include <memory>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"

namespace dapsp::baselines {
namespace {

using core::Broadcast;
using core::TreeMachine;
using core::kApspFlood;

constexpr std::uint32_t kTagSchedule = 70;  // broadcast: (slot_len, delta)

class NaiveApspProcess final : public congest::Process {
 public:
  NaiveApspProcess(NodeId id, NodeId n)
      : id_(id), n_(n), dist_row_(n, kInfDist), schedule_(kTagSchedule) {
    dist_row_[id] = 0;
  }

  void on_round(congest::RoundCtx& ctx) override {
    new_roots_.clear();
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (r.msg.kind == kApspFlood) {
        handle_flood(r);
      } else if (schedule_.handle(r)) {
        adopt_schedule(ctx.round() - tree_.dist());
      }
    }

    tree_.advance(ctx);
    if (id_ == 0 && tree_.root_complete() && !schedule_sent_) {
      schedule_sent_ = true;
      const std::uint32_t slot = 2 * tree_.root_ecc() + 2;
      const std::uint32_t delta = tree_.root_ecc() + 1;
      schedule_.start(slot, delta);
      slot_len_ = slot;
      delta_ = delta;
      adopt_schedule(ctx.round());
    }
    schedule_.advance(ctx, tree_);

    if (scheduled_ && !flood_started_ &&
        ctx.round() >= my_start_) {
      flood_started_ = true;
      for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
        ctx.send(i, congest::Message::make(kApspFlood, id_, 1));
      }
    }
    flush_new_roots(ctx);

    quiescent_ = tree_.finished(id_) && flood_started_ && schedule_.idle();
  }

  bool done() const override { return quiescent_; }

  const std::vector<std::uint32_t>& dist_row() const { return dist_row_; }
  std::uint32_t slot_len() const { return slot_len_; }
  const TreeMachine& tree() const { return tree_; }

 private:
  void adopt_schedule(std::uint64_t broadcast_round) {
    if (scheduled_) return;
    scheduled_ = true;
    if (slot_len_ == 0) {
      slot_len_ = schedule_.value(0);
      delta_ = schedule_.value(1);
    }
    const std::uint64_t t_start = broadcast_round + delta_;
    my_start_ = t_start + std::uint64_t{id_} * slot_len_;
  }

  void handle_flood(const congest::Received& r) {
    const std::uint32_t root = r.msg.f[0];
    const std::uint32_t d = r.msg.f[1];
    if (dist_row_[root] == kInfDist) {
      dist_row_[root] = d;
      new_roots_.push_back({root, {r.from_index}});
    } else {
      for (auto& [nr, senders] : new_roots_) {
        if (nr == root) senders.push_back(r.from_index);
      }
    }
  }

  void flush_new_roots(congest::RoundCtx& ctx) {
    const std::uint32_t deg = ctx.degree();
    for (const auto& [root, senders] : new_roots_) {
      for (std::uint32_t i = 0; i < deg; ++i) {
        if (std::find(senders.begin(), senders.end(), i) != senders.end()) {
          continue;
        }
        ctx.send(i,
                 congest::Message::make(kApspFlood, root, dist_row_[root] + 1));
      }
    }
    new_roots_.clear();
  }

  NodeId id_;
  NodeId n_;
  TreeMachine tree_;
  std::vector<std::uint32_t> dist_row_;
  Broadcast schedule_;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> new_roots_;
  bool schedule_sent_ = false;
  bool scheduled_ = false;
  bool flood_started_ = false;
  bool quiescent_ = false;
  std::uint32_t slot_len_ = 0;
  std::uint32_t delta_ = 0;
  std::uint64_t my_start_ = 0;
};

}  // namespace

NaiveApspResult run_naive_apsp(const Graph& g,
                               const congest::EngineConfig& cfg) {
  const NodeId n = g.num_nodes();
  congest::EngineConfig config = cfg;
  if (config.max_rounds == 0) {
    // Theta(n * D) rounds by design; size the safety valve accordingly.
    config.max_rounds = 8 * std::uint64_t{n} * (std::uint64_t{n} + 4) + 1024;
  }
  congest::Engine engine(g, config);
  engine.init([&](NodeId v) {
    return std::make_unique<NaiveApspProcess>(v, n);
  });

  NaiveApspResult out;
  out.stats = engine.run();
  out.dist = DistanceMatrix(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<NaiveApspProcess>(v);
    for (NodeId u = 0; u < n; ++u) out.dist.set(v, u, p.dist_row()[u]);
    if (v == 0) {
      out.slot_len = p.slot_len();
      out.d0 = 2 * p.tree().root_ecc();
    }
  }
  return out;
}

}  // namespace dapsp::baselines
