#include "baselines/distance_vector.h"

#include <deque>
#include <memory>

#include "core/primitives/bfs_process.h"

namespace dapsp::baselines {
namespace {

using core::kDvEntry;

class DistanceVectorProcess final : public congest::Process {
 public:
  DistanceVectorProcess(NodeId id, NodeId n, std::uint32_t degree)
      : id_(id),
        dist_(n, kInfDist),
        queues_(degree),
        queued_(degree, std::vector<std::uint8_t>(n, 0)) {
    dist_[id] = 0;
    for (std::uint32_t i = 0; i < degree; ++i) enqueue(i, id);
  }

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind != kDvEntry) continue;
      const std::uint32_t dest = r.msg.f[0];
      const std::uint32_t via = r.msg.f[1] + 1;
      if (via < dist_[dest]) {
        dist_[dest] = via;
        for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
          if (i != r.from_index) enqueue(i, dest);
        }
      }
    }
    // One update per edge per round (the serialization the paper demands).
    for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
      if (queues_[i].empty()) continue;
      const std::uint32_t dest = queues_[i].front();
      queues_[i].pop_front();
      queued_[i][dest] = 0;
      ctx.send(i, congest::Message::make(kDvEntry, dest, dist_[dest]));
    }
    quiescent_ = true;
    for (const auto& q : queues_) {
      if (!q.empty()) quiescent_ = false;
    }
  }

  bool done() const override { return quiescent_; }

  const std::vector<std::uint32_t>& dist() const { return dist_; }

 private:
  void enqueue(std::uint32_t neighbor, std::uint32_t dest) {
    if (queued_[neighbor][dest]) return;  // already pending; will send the
    queued_[neighbor][dest] = 1;          // freshest value when popped
    queues_[neighbor].push_back(dest);
  }

  NodeId id_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::deque<std::uint32_t>> queues_;
  std::vector<std::vector<std::uint8_t>> queued_;
  bool quiescent_ = false;
};

}  // namespace

DistanceVectorResult run_distance_vector(const Graph& g,
                                         const congest::EngineConfig& cfg) {
  const NodeId n = g.num_nodes();
  congest::EngineConfig config = cfg;
  if (config.max_rounds == 0) {
    config.max_rounds = 16 * std::uint64_t{n} * (std::uint64_t{n} + 4) + 1024;
  }
  congest::Engine engine(g, config);
  engine.init([&](NodeId v) {
    return std::make_unique<DistanceVectorProcess>(v, n, g.degree(v));
  });

  DistanceVectorResult out;
  out.stats = engine.run();
  out.dist = DistanceMatrix(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<DistanceVectorProcess>(v);
    for (NodeId u = 0; u < n; ++u) out.dist.set(v, u, p.dist()[u]);
  }
  return out;
}

}  // namespace dapsp::baselines
