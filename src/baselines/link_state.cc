#include "baselines/link_state.h"

#include <deque>
#include <memory>
#include <unordered_set>

#include "core/primitives/bfs_process.h"
#include "seq/bfs.h"

namespace dapsp::baselines {
namespace {

using core::kLinkEdge;

class LinkStateProcess final : public congest::Process {
 public:
  LinkStateProcess(NodeId id, NodeId n, const Graph& g)
      : id_(id), n_(n), queues_(g.degree(id)) {
    // Seed the flood with our incident edges.
    for (const NodeId u : g.neighbors(id)) {
      const Edge e = id < u ? Edge{id, u} : Edge{u, id};
      if (known_.insert(key(e)).second) {
        for (std::uint32_t i = 0; i < queues_.size(); ++i) {
          queues_[i].push_back(e);
        }
      }
    }
  }

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (r.msg.kind != kLinkEdge) continue;
      const Edge e{r.msg.f[0], r.msg.f[1]};
      if (!known_.insert(key(e)).second) continue;
      for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
        if (i != r.from_index) queues_[i].push_back(e);
      }
    }
    // One edge record per edge per round.
    for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
      if (queues_[i].empty()) continue;
      const Edge e = queues_[i].front();
      queues_[i].pop_front();
      ctx.send(i, congest::Message::make(kLinkEdge, e.u, e.v));
    }
    quiescent_ = true;
    for (const auto& q : queues_) {
      if (!q.empty()) quiescent_ = false;
    }
  }

  bool done() const override { return quiescent_; }

  std::size_t known_edges() const { return known_.size(); }

  // Local topology view as a Graph (local computation is free in CONGEST).
  Graph view() const {
    std::vector<Edge> edges;
    edges.reserve(known_.size());
    for (const std::uint64_t k : known_) {
      edges.push_back({static_cast<NodeId>(k / n_),
                       static_cast<NodeId>(k % n_)});
    }
    return Graph(n_, edges);
  }

 private:
  std::uint64_t key(const Edge& e) const {
    return std::uint64_t{e.u} * n_ + e.v;
  }

  NodeId id_;
  NodeId n_;
  std::unordered_set<std::uint64_t> known_;
  std::vector<std::deque<Edge>> queues_;
  bool quiescent_ = false;
};

}  // namespace

LinkStateResult run_link_state(const Graph& g,
                               const congest::EngineConfig& cfg) {
  const NodeId n = g.num_nodes();
  congest::EngineConfig config = cfg;
  if (config.max_rounds == 0) {
    config.max_rounds = 16 * (g.num_edges() + 16) + 64 * n;
  }
  congest::Engine engine(g, config);
  engine.init([&](NodeId v) {
    return std::make_unique<LinkStateProcess>(v, n, g);
  });

  LinkStateResult out;
  out.stats = engine.run();
  out.all_views_complete = true;
  for (NodeId v = 0; v < n; ++v) {
    auto& p = engine.process_as<LinkStateProcess>(v);
    if (p.known_edges() != g.num_edges()) out.all_views_complete = false;
  }
  // APSP is a free local computation once the topology is known; compute it
  // from node 0's reconstructed view.
  const Graph view = engine.process_as<LinkStateProcess>(0).view();
  out.dist = seq::apsp(view);
  return out;
}

}  // namespace dapsp::baselines
