// Baseline: the unmodified classical approach the paper improves on
// (Section 3.1 / 4.1): one BFS per node, run one after another, each in its
// own time slot of D0 + 2 rounds. Takes Theta(n * D) rounds — this is the
// O(n * D) bound the paper attributes to the unmodified n-fold-BFS approach
// and the comparison target for Algorithm 1's O(n).
#pragma once

#include "congest/engine.h"
#include "graph/graph.h"
#include "seq/apsp.h"

namespace dapsp::baselines {

struct NaiveApspResult {
  DistanceMatrix dist;
  std::uint32_t d0 = 0;        // slot sizing bound 2*ecc(leader)
  std::uint32_t slot_len = 0;  // d0 + 2 rounds per BFS
  congest::RunStats stats;
};

// Connected graphs only.
NaiveApspResult run_naive_apsp(const Graph& g,
                               const congest::EngineConfig& cfg = {});

}  // namespace dapsp::baselines
