#include "baselines/prt_diameter.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "util/rng.h"

namespace dapsp::baselines {
namespace {

using core::ArgMinConvergecast;
using core::Broadcast;
using core::Convergecast;
using core::TreeMachine;
using core::kApspFlood;
using core::kNoParent;

constexpr std::uint8_t kRankCount = 71;   // child -> parent: (subtree samples)
constexpr std::uint8_t kRankOffset = 72;  // parent -> child: (rank offset)
constexpr std::uint32_t kTagSample = 73;  // broadcast: (d0)
constexpr std::uint32_t kTagParams = 74;  // broadcast: (S_total, slot, delta)
constexpr std::uint32_t kTagFarthest = 75;  // argmax convergecast (encoded)
constexpr std::uint32_t kTagW = 76;       // broadcast: (w, delta2)
constexpr std::uint32_t kTagMax = 77;     // convergecast: (max depth)
constexpr std::uint32_t kTagAnswer = 78;  // broadcast: (estimate)

class PrtProcess final : public congest::Process {
 public:
  PrtProcess(NodeId id, NodeId n, std::uint64_t seed)
      : id_(id),
        n_(n),
        seed_(seed),
        sample_bcast_(kTagSample),
        params_bcast_(kTagParams),
        far_up_(kTagFarthest),
        w_bcast_(kTagW),
        max_up_(kTagMax, Convergecast::Op::kMax),
        answer_bcast_(kTagAnswer) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      switch (r.msg.kind) {
        case kApspFlood:
          handle_flood(r);
          continue;
        case kRankCount:
          if (child_counts_.size() <= r.from_index) {
            child_counts_.resize(r.from_index + 1, 0);
          }
          child_counts_[r.from_index] = r.msg.f[0];
          ++count_reports_;
          continue;
        case kRankOffset:
          my_offset_ = r.msg.f[0];
          have_offset_ = true;
          continue;
        default:
          break;
      }
      if (far_up_.handle(r)) continue;
      if (max_up_.handle(r)) continue;
      if (sample_bcast_.handle(r)) {
        do_sample(sample_bcast_.value(0));
      } else if (params_bcast_.handle(r)) {
        adopt_params(ctx.round() - tree_.dist());
      } else if (w_bcast_.handle(r)) {
        adopt_w(ctx.round() - tree_.dist());
      } else if (answer_bcast_.handle(r)) {
        estimate_ = answer_bcast_.value(0);
      }
    }

    tree_.advance(ctx);

    // Phase: sampling.
    if (id_ == 0 && tree_.root_complete() && !sample_sent_) {
      sample_sent_ = true;
      d0_ = 2 * tree_.root_ecc();
      sample_bcast_.start(d0_);
      do_sample(d0_);
    }
    sample_bcast_.advance(ctx, tree_);

    // Phase: DFS-rank the sampled nodes (counts up, offsets down).
    advance_ranking(ctx);

    // Root: schedule the sequential BFS slots. Fired a few rounds after the
    // ranking total is known so the PARAMS broadcast travels strictly behind
    // the offset wave and never shares an edge-round with it (bandwidth).
    if (id_ == 0 && total_known_ && !params_sent_ && ++params_delay_ >= 3) {
      params_sent_ = true;
      s_total_ = subtree_count_;
      slot_len_ = d0_ + 2;
      params_bcast_.start(s_total_, slot_len_, 2 * tree_.root_ecc() / 2 + 2);
      adopt_params(ctx.round());
    }
    params_bcast_.advance(ctx, tree_);

    // My own BFS slot.
    if (phase1_configured_ && sampled_ && have_offset_ && !flood_started_ &&
        ctx.round() >= t_start_ + std::uint64_t{my_offset_} * slot_len_) {
      flood_started_ = true;
      start_flood(ctx);
    }
    // w's extra BFS.
    if (w_known_ && id_ == w_ && !w_flood_started_ &&
        ctx.round() >= t2_) {
      w_flood_started_ = true;
      start_flood(ctx);
    }
    flush_new_roots(ctx);

    // Phase: find the node farthest from the sample.
    if (phase1_configured_ &&
        ctx.round() >= t_start_ + std::uint64_t{s_total_} * slot_len_ + d0_ + 2 &&
        !far_armed_) {
      far_armed_ = true;
      // Arg-max via key = inf - distance-to-sample.
      const std::uint32_t inf = congest::wire_infinity(n_);
      const std::uint32_t d = std::min(min_dist_to_sample_, inf);
      far_up_.arm(inf - d, id_);
    }
    if (far_armed_) far_up_.advance(ctx, tree_);
    if (id_ == 0 && far_up_.complete() && !w_sent_) {
      w_sent_ = true;
      w_bcast_.start(far_up_.payload(), tree_.root_ecc() + 2);
      adopt_w(ctx.round());
    }
    w_bcast_.advance(ctx, tree_);

    // Phase: final max-depth aggregation after w's BFS.
    if (w_known_ && ctx.round() >= t2_ + d0_ + 2 && !max_armed_) {
      max_armed_ = true;
      max_up_.arm(max_depth_);
    }
    if (max_armed_) max_up_.advance(ctx, tree_);
    if (id_ == 0 && max_up_.complete() && !answer_sent_) {
      answer_sent_ = true;
      estimate_ = max_up_.value(0);
      answer_bcast_.start(estimate_);
    }
    answer_bcast_.advance(ctx, tree_);

    quiescent_ = tree_.finished(id_) && estimate_ != kInfDist &&
                 answer_bcast_.idle();
  }

  bool done() const override { return quiescent_; }

  std::uint32_t estimate() const { return estimate_; }
  std::uint32_t s_total() const { return s_total_; }
  NodeId w() const { return w_; }

 private:
  void do_sample(std::uint32_t d0) {
    if (sample_decided_) return;
    sample_decided_ = true;
    d0_ = d0;
    const double p = std::sqrt(std::log2(static_cast<double>(n_) + 1.0) /
                               static_cast<double>(n_));
    Rng rng(seed_ * 0x2545f4914f6cdd1dULL + id_);
    sampled_ = rng.chance(p) || id_ == 0;  // the leader always participates
    if (sampled_) min_dist_to_sample_ = 0;
  }

  void advance_ranking(congest::RoundCtx& ctx) {
    if (!sample_decided_ || !tree_.finished(id_)) return;
    if (child_counts_.size() < ctx.degree()) {
      child_counts_.resize(ctx.degree(), 0);  // keyed by neighbor index
    }
    if (!count_sent_ && count_reports_ == tree_.children().size()) {
      subtree_count_ = sampled_ ? 1 : 0;
      for (const std::uint32_t c : child_counts_) subtree_count_ += c;
      if (tree_.parent_index() == kNoParent) {
        total_known_ = true;
        my_offset_ = 0;
        have_offset_ = true;
      } else {
        ctx.send(tree_.parent_index(),
                 congest::Message::make(kRankCount, subtree_count_));
      }
      count_sent_ = true;
    }
    if (have_offset_ && !offsets_sent_ && count_sent_) {
      offsets_sent_ = true;
      std::uint32_t next = my_offset_ + (sampled_ ? 1 : 0);
      for (const std::uint32_t kid : tree_.children()) {
        ctx.send(kid, congest::Message::make(kRankOffset, next));
        next += child_counts_[kid];
      }
    }
  }

  void adopt_params(std::uint64_t bcast_round) {
    if (phase1_configured_) return;
    phase1_configured_ = true;
    if (id_ != 0) {
      s_total_ = params_bcast_.value(0);
      slot_len_ = params_bcast_.value(1);
    }
    const std::uint32_t delta =
        id_ == 0 ? d0_ / 2 + 2 : params_bcast_.value(2);
    t_start_ = bcast_round + delta;
  }

  void adopt_w(std::uint64_t bcast_round) {
    if (w_known_) return;
    w_known_ = true;
    if (id_ != 0) {
      w_ = w_bcast_.value(0);
      t2_ = bcast_round + w_bcast_.value(1);
    } else {
      w_ = far_up_.payload();
      t2_ = bcast_round + tree_.root_ecc() + 2;
    }
  }

  void start_flood(congest::RoundCtx& ctx) {
    for (std::uint32_t i = 0; i < ctx.degree(); ++i) {
      ctx.send(i, congest::Message::make(kApspFlood, id_, 1));
    }
  }

  // The BFS floods are strictly sequential (one per slot), so per-node state
  // for the *current* flood suffices — no n-sized distance table needed.
  void handle_flood(const congest::Received& r) {
    const std::uint32_t root = r.msg.f[0];
    const std::uint32_t d = r.msg.f[1];
    if (root != cur_root_) {
      // A new flood has begun (the previous one is over by slot design).
      cur_root_ = root;
      cur_dist_ = d;
      cur_senders_.assign(1, r.from_index);
      forward_pending_ = true;
      max_depth_ = std::max(max_depth_, d);
      if (!w_known_ || root != w_) {
        min_dist_to_sample_ = std::min(min_dist_to_sample_, d);
      }
    } else if (forward_pending_) {
      // Same-round co-parent: exclude it from the forward.
      cur_senders_.push_back(r.from_index);
    }
    // Later duplicates of the current flood are ignored (already forwarded).
  }

  void flush_new_roots(congest::RoundCtx& ctx) {
    if (!forward_pending_) return;
    forward_pending_ = false;
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t i = 0; i < deg; ++i) {
      if (std::find(cur_senders_.begin(), cur_senders_.end(), i) !=
          cur_senders_.end()) {
        continue;
      }
      ctx.send(i, congest::Message::make(kApspFlood, cur_root_, cur_dist_ + 1));
    }
  }

  NodeId id_;
  NodeId n_;
  std::uint64_t seed_;
  TreeMachine tree_;
  Broadcast sample_bcast_;
  Broadcast params_bcast_;
  ArgMinConvergecast far_up_;
  Broadcast w_bcast_;
  Convergecast max_up_;
  Broadcast answer_bcast_;

  std::vector<std::uint32_t> child_counts_;
  std::size_t count_reports_ = 0;
  bool count_sent_ = false;
  bool offsets_sent_ = false;
  bool have_offset_ = false;
  bool total_known_ = false;
  std::uint32_t my_offset_ = 0;
  std::uint32_t subtree_count_ = 0;
  int params_delay_ = 0;

  bool sample_decided_ = false;
  bool sampled_ = false;
  bool sample_sent_ = false;
  bool params_sent_ = false;
  bool phase1_configured_ = false;
  bool flood_started_ = false;
  bool far_armed_ = false;
  bool w_sent_ = false;
  bool w_known_ = false;
  bool w_flood_started_ = false;
  bool max_armed_ = false;
  bool answer_sent_ = false;
  bool quiescent_ = false;

  std::uint32_t d0_ = 0;
  std::uint32_t s_total_ = 0;
  std::uint32_t slot_len_ = 0;
  std::uint64_t t_start_ = 0;
  std::uint64_t t2_ = 0;
  NodeId w_ = 0;
  std::uint32_t max_depth_ = 0;
  std::uint32_t min_dist_to_sample_ = kInfDist;
  std::uint32_t estimate_ = kInfDist;

  std::uint32_t cur_root_ = kInfDist;
  std::uint32_t cur_dist_ = 0;
  std::vector<std::uint32_t> cur_senders_;
  bool forward_pending_ = false;
};

}  // namespace

PrtDiameterResult run_prt_diameter(const Graph& g,
                                   const PrtDiameterOptions& options) {
  const NodeId n = g.num_nodes();
  congest::EngineConfig config = options.engine;
  if (config.max_rounds == 0) {
    // Theta(sqrt(n log n) * D) by design.
    config.max_rounds = 64 * std::uint64_t{n} * 32 + 4096;
  }
  congest::Engine engine(g, config);
  engine.init([&](NodeId v) {
    return std::make_unique<PrtProcess>(v, n, options.seed);
  });

  PrtDiameterResult out;
  out.stats = engine.run();
  auto& root = engine.process_as<PrtProcess>(0);
  out.estimate = root.estimate();
  out.sample_size = root.s_total();
  out.farthest = root.w();
  return out;
}

}  // namespace dapsp::baselines
