// Baseline: distance-vector routing (RIP-style Bellman-Ford), serialized to
// the CONGEST bandwidth (Section 3.1): each node keeps a distance vector and
// per-neighbor queues of changed entries; one (destination, distance) update
// crosses each edge per round. The paper's point: once messages are limited
// to O(log n) bits, distance-vector needs superlinear time — the bench
// measures exactly how many rounds convergence takes.
#pragma once

#include "congest/engine.h"
#include "graph/graph.h"
#include "seq/apsp.h"

namespace dapsp::baselines {

struct DistanceVectorResult {
  DistanceMatrix dist;
  congest::RunStats stats;
};

// Runs until global convergence (quiescence). Connected graphs only.
DistanceVectorResult run_distance_vector(const Graph& g,
                                         const congest::EngineConfig& cfg = {});

}  // namespace dapsp::baselines
