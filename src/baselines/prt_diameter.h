// PRT-style diameter estimation arm for Corollary 1.
//
// The paper combines its own O(n/D + D) (x,1+eps)-approximation with the
// independent Peleg-Roditty-Tal ICALP'12 algorithm that achieves a (x,3/2)-
// approximation in O(D * sqrt(n)) rounds. We implement a PRT-style arm with
// the same round shape: sample ~sqrt(n log n) nodes, run one *sequential*
// BFS per sampled node (each in its own Theta(D) slot — this is what makes
// the arm Theta(D sqrt(n))), then one more BFS from the node farthest from
// the sample. The estimate max(ecc over sample, ecc(w)) is a lower bound on
// D that is always >= D/2 (Fact 1) and empirically >= 2D/3 on our suite.
//
// DEVIATION (documented in DESIGN.md): the genuine PRT algorithm adds BFS
// layers around w to certify the 3/2 ratio in the worst case; this arm is a
// comparator whose *cost shape* (D sqrt(n) vs n/D + D crossover) is what
// Corollary 1's min-selector is about.
#pragma once

#include "congest/engine.h"
#include "graph/graph.h"

namespace dapsp::baselines {

struct PrtDiameterOptions {
  congest::EngineConfig engine{};
  std::uint64_t seed = 1;
};

struct PrtDiameterResult {
  std::uint32_t estimate = 0;    // max observed eccentricity: D/2 <= est <= D
  std::uint32_t sample_size = 0;
  NodeId farthest = 0;           // the node farthest from the sample
  congest::RunStats stats;
};

// Connected graphs only.
PrtDiameterResult run_prt_diameter(const Graph& g,
                                   const PrtDiameterOptions& options = {});

}  // namespace dapsp::baselines
