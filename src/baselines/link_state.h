// Baseline: link-state routing (OSPF-style), serialized to the CONGEST
// bandwidth (Section 3.1): every node floods every edge record it learns,
// one (u, v) record per edge per round, until everyone knows the whole
// topology; APSP is then a free local computation. The paper's point: a
// link-state message describing the topology is Theta(m log n) bits, so the
// serialized flood needs Omega(m) rounds — superlinear (quadratic on dense
// graphs) — and Theta(m^2) messages.
#pragma once

#include "congest/engine.h"
#include "graph/graph.h"
#include "seq/apsp.h"

namespace dapsp::baselines {

struct LinkStateResult {
  DistanceMatrix dist;           // computed locally by node 0 after the flood
  bool all_views_complete = false;  // every node learned every edge
  congest::RunStats stats;
};

// Runs until the topology flood quiesces. Connected graphs only.
LinkStateResult run_link_state(const Graph& g,
                               const congest::EngineConfig& cfg = {});

}  // namespace dapsp::baselines
