#!/usr/bin/env python3
"""Validate a dapsp Chrome-trace JSON file (stdlib only).

Usage: validate_trace.py trace.json [metrics.json]

Checks that the trace parses, has a non-empty "traceEvents" array, and that
event timestamps (ts = CONGEST round) are non-decreasing in file order — the
ordering guarantee of the sharded trace collector (DESIGN.md section 12).
With a second argument, also checks the --metrics-out JSON shape.
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_trace.py trace.json [metrics.json]")

    with open(sys.argv[1]) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    prev = None
    for i, ev in enumerate(events):
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i} has no numeric ts")
        if prev is not None and ts < prev:
            fail(f"ts decreases at event {i}: {prev} -> {ts}")
        prev = ts

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            metrics = json.load(f)
        for key in ("counters", "histograms"):
            if key not in metrics:
                fail(f"metrics JSON missing {key!r}")
        for name, hist in metrics["histograms"].items():
            if hist["total"] != sum(int(c) for c in hist["counts"].values()):
                fail(f"histogram {name!r}: total != sum of counts")

    print(f"validate_trace: OK ({len(events)} events)")


if __name__ == "__main__":
    main()
