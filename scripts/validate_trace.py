#!/usr/bin/env python3
"""Validate a dapsp Chrome-trace JSON file (stdlib only).

Usage: validate_trace.py trace.json [metrics.json]

Checks that the trace parses, has a non-empty "traceEvents" array, and that
event timestamps (ts = CONGEST round) are non-decreasing in file order — the
ordering guarantee of the sharded trace collector (DESIGN.md section 12).
"corrupt" events (a fault-plan single-bit payload flip, DESIGN.md section
13) are validated structurally: each must name the edge it happened on and
carry a plausible flipped-bit index. With a second argument, also checks the
--metrics-out JSON shape, and cross-checks the corrupt-event count against
the "messages_corrupted" counter when both artifacts come from one run.
"""
import json
import sys

# kTagBits + kMaxFields * widest value_bits (8 + 5*32): no flipped-bit index
# can lie beyond the widest possible wire image.
MAX_WIRE_BITS = 8 + 5 * 32


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_corrupt_event(i: int, ev: dict) -> None:
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"corrupt event {i} has no args")
    for key in ("node", "peer"):
        if not isinstance(args.get(key), int):
            fail(f"corrupt event {i} missing int {key!r} (edge unknown)")
    # The writer omits aux when it is 0 (flipped bit 0).
    aux = args.get("aux", 0)
    if not isinstance(aux, int) or not 0 <= aux < MAX_WIRE_BITS:
        fail(f"corrupt event {i}: flipped-bit index {aux!r} not in "
             f"[0, {MAX_WIRE_BITS})")
    if not isinstance(args.get("msg_kind"), int):
        fail(f"corrupt event {i} missing int 'msg_kind'")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_trace.py trace.json [metrics.json]")

    with open(sys.argv[1]) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    prev = None
    corrupt_events = 0
    for i, ev in enumerate(events):
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i} has no numeric ts")
        if prev is not None and ts < prev:
            fail(f"ts decreases at event {i}: {prev} -> {ts}")
        prev = ts
        if ev.get("cat") == "corrupt":
            corrupt_events += 1
            check_corrupt_event(i, ev)

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            metrics = json.load(f)
        for key in ("counters", "histograms"):
            if key not in metrics:
                fail(f"metrics JSON missing {key!r}")
        for name, hist in metrics["histograms"].items():
            if hist["total"] != sum(int(c) for c in hist["counts"].values()):
                fail(f"histogram {name!r}: total != sum of counts")
        # Per-node Chrome traces carry every corrupt event, so when the two
        # artifacts come from the same run the counts must agree.
        want = metrics["counters"].get("messages_corrupted")
        if want is not None and int(want) != corrupt_events:
            fail(f"messages_corrupted counter {want} != "
                 f"{corrupt_events} corrupt trace events")

    print(f"validate_trace: OK ({len(events)} events, "
          f"{corrupt_events} corrupt)")


if __name__ == "__main__":
    main()
