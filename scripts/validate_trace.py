#!/usr/bin/env python3
"""Validate a dapsp Chrome-trace JSON file (stdlib only).

Usage: validate_trace.py trace.json [metrics.json]

Checks that the trace parses, has a non-empty "traceEvents" array, and that
event timestamps (ts = CONGEST round) are non-decreasing in file order — the
ordering guarantee of the sharded trace collector (DESIGN.md section 12).
"corrupt" events (a fault-plan single-bit payload flip, DESIGN.md section
13) are validated structurally: each must name the edge it happened on and
carry a plausible flipped-bit index. "delta" / "epoch" events (the
long-running service's churn stream and per-epoch repair outcomes, DESIGN.md
section 14) are validated against their aux encodings. With a second
argument, also checks the --metrics-out JSON shape, and cross-checks event
counts against the run's counters: corrupt events vs "messages_corrupted",
and — for a dapsp_service run — delta/crash/epoch events vs the
service_deltas / service_crashes / service_epochs / service_scrubs counters.
"shed" / "breaker" events (the resilience layer's explicit load-shedding
decisions and repair-circuit-breaker state changes, DESIGN.md section 18)
are validated against their encodings and cross-checked per shed reason
against the resilience_shed_* counters and the
service_breaker_transitions counter.
"""
import json
import sys

# kTagBits + kMaxFields * widest value_bits (8 + 5*32): no flipped-bit index
# can lie beyond the widest possible wire image.
MAX_WIRE_BITS = 8 + 5 * 32

# kDelta aux encoding (core/service.cc): low byte = DeltaKind (0..3), bit 8
# marks an unannounced crash (only ever set on a node-leave).
DELTA_CRASH_BIT = 0x100
NODE_LEAVE = 3
MAX_EPOCH_OUTCOME = 4  # clean / repaired / retried / escalated / suppressed

# kShed aux = ShedReason (core/resilience.h): rate / queue-full / queue-wait.
MAX_SHED_REASON = 2
# kBreaker node/peer = BreakerState: closed / open / half-open.
MAX_BREAKER_STATE = 2


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_corrupt_event(i: int, ev: dict) -> None:
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"corrupt event {i} has no args")
    for key in ("node", "peer"):
        if not isinstance(args.get(key), int):
            fail(f"corrupt event {i} missing int {key!r} (edge unknown)")
    # The writer omits aux when it is 0 (flipped bit 0).
    aux = args.get("aux", 0)
    if not isinstance(aux, int) or not 0 <= aux < MAX_WIRE_BITS:
        fail(f"corrupt event {i}: flipped-bit index {aux!r} not in "
             f"[0, {MAX_WIRE_BITS})")
    if not isinstance(args.get("msg_kind"), int):
        fail(f"corrupt event {i} missing int 'msg_kind'")


def check_delta_event(i: int, ev: dict) -> bool:
    """Validates one service churn event; returns True for a crash-leave."""
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"delta event {i} has no args")
    if not isinstance(args.get("node"), int):
        fail(f"delta event {i} missing int 'node'")
    aux = args.get("aux", 0)
    kind = aux & 0xFF
    if aux & ~(DELTA_CRASH_BIT | 0xFF):
        fail(f"delta event {i}: unknown aux bits in {aux:#x}")
    if kind > NODE_LEAVE:
        fail(f"delta event {i}: delta kind {kind} out of range")
    crash = bool(aux & DELTA_CRASH_BIT)
    if crash and kind != NODE_LEAVE:
        fail(f"delta event {i}: crash bit on a non-leave delta (aux {aux:#x})")
    # Node join/leave deltas are self-events (peer == node).
    if kind >= 2 and args.get("peer") != args["node"]:
        fail(f"delta event {i}: node delta with peer != node")
    return crash


def check_journal_event(i: int, ev: dict) -> int:
    """Validates one WAL-append event; returns the payload byte count."""
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"journal event {i} has no args")
    if not isinstance(args.get("node"), int):
        fail(f"journal event {i} missing int 'node' (record index)")
    payload = args.get("peer", 0)
    if not isinstance(payload, int) or payload <= 0:
        fail(f"journal event {i}: payload byte count {payload!r} not positive")
    return payload


# kRecovery aux bits (core/durable.h): generation fallback, journal tail
# truncated, fresh start.
RECOVERY_AUX_MASK = 0x7


def check_recovery_event(i: int, ev: dict) -> int:
    """Validates one recovery event; returns the replayed-batch count."""
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"recovery event {i} has no args")
    aux = args.get("aux", 0)
    if not isinstance(aux, int) or aux & ~RECOVERY_AUX_MASK:
        fail(f"recovery event {i}: unknown aux bits in {aux!r}")
    replayed = args.get("peer", 0)
    if not isinstance(replayed, int) or replayed < 0:
        fail(f"recovery event {i}: replayed-batch count {replayed!r} bad")
    # node carries the checkpoint epoch, ts/round the recovered epoch; the
    # journal can only move the epoch forward.
    if isinstance(args.get("node"), int) and isinstance(ev.get("ts"), int):
        if args["node"] > ev["ts"]:
            fail(f"recovery event {i}: checkpoint epoch {args['node']} "
                 f"beyond recovered epoch {ev['ts']}")
    return replayed


def check_epoch_event(i: int, ev: dict) -> None:
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"epoch event {i} has no args")
    outcome = args.get("aux", 0)
    if not isinstance(outcome, int) or not 0 <= outcome <= MAX_EPOCH_OUTCOME:
        fail(f"epoch event {i}: outcome {outcome!r} out of range")
    if not isinstance(args.get("peer", 0), int):
        fail(f"epoch event {i}: suspect-row count missing")


def check_shed_event(i: int, ev: dict) -> int:
    """Validates one load-shed event; returns the ShedReason."""
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"shed event {i} has no args")
    if not isinstance(args.get("node"), int):
        fail(f"shed event {i} missing int 'node' (request id)")
    cls = args.get("peer")
    if not isinstance(cls, int) or not 0 <= cls <= 2:
        fail(f"shed event {i}: priority class {cls!r} not in [0, 2]")
    reason = args.get("aux", 0)
    if not isinstance(reason, int) or not 0 <= reason <= MAX_SHED_REASON:
        fail(f"shed event {i}: shed reason {reason!r} out of range")
    return reason


def check_breaker_event(i: int, ev: dict) -> None:
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"breaker event {i} has no args")
    new = args.get("node")
    prev = args.get("peer", 0)
    for label, state in (("new", new), ("previous", prev)):
        if not isinstance(state, int) or not 0 <= state <= MAX_BREAKER_STATE:
            fail(f"breaker event {i}: {label} state {state!r} out of range")
    if new == prev:
        fail(f"breaker event {i}: state change to the same state {new}")
    count = args.get("aux", 0)
    if not isinstance(count, int) or count < 1:
        fail(f"breaker event {i}: cumulative transition count {count!r} bad")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_trace.py trace.json [metrics.json]")

    with open(sys.argv[1]) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    prev = None
    corrupt_events = 0
    delta_events = crash_events = epoch_events = 0
    journal_events = recovery_events = 0
    journal_payload_bytes = replayed_batches = 0
    shed_by_reason = [0, 0, 0]  # rate / queue-full / queue-wait
    breaker_events = 0
    for i, ev in enumerate(events):
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i} has no numeric ts")
        if prev is not None and ts < prev:
            fail(f"ts decreases at event {i}: {prev} -> {ts}")
        prev = ts
        cat = ev.get("cat")
        if cat == "corrupt":
            corrupt_events += 1
            check_corrupt_event(i, ev)
        elif cat == "delta":
            if check_delta_event(i, ev):
                crash_events += 1
            else:
                delta_events += 1
        elif cat == "epoch":
            epoch_events += 1
            check_epoch_event(i, ev)
        elif cat == "journal":
            journal_events += 1
            journal_payload_bytes += check_journal_event(i, ev)
        elif cat == "recovery":
            recovery_events += 1
            replayed_batches += check_recovery_event(i, ev)
        elif cat == "shed":
            shed_by_reason[check_shed_event(i, ev)] += 1
        elif cat == "breaker":
            breaker_events += 1
            check_breaker_event(i, ev)

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            metrics = json.load(f)
        for key in ("counters", "histograms"):
            if key not in metrics:
                fail(f"metrics JSON missing {key!r}")
        for name, hist in metrics["histograms"].items():
            if hist["total"] != sum(int(c) for c in hist["counts"].values()):
                fail(f"histogram {name!r}: total != sum of counts")
        # Per-node Chrome traces carry every corrupt event, so when the two
        # artifacts come from the same run the counts must agree.
        want = metrics["counters"].get("messages_corrupted")
        if want is not None and int(want) != corrupt_events:
            fail(f"messages_corrupted counter {want} != "
                 f"{corrupt_events} corrupt trace events")
        # A dapsp_service run emits one kDelta event per applied delta (the
        # crash bit marking unannounced leaves) and one kEpoch event per
        # step() or scrub(); the service counters must agree exactly.
        counters = metrics["counters"]
        for name, got in (("service_deltas", delta_events),
                          ("service_crashes", crash_events)):
            want = counters.get(name)
            if want is not None and int(want) != got:
                fail(f"{name} counter {want} != {got} trace events")
        epochs = counters.get("service_epochs")
        scrubs = counters.get("service_scrubs")
        if epochs is not None and scrubs is not None:
            want_epochs = int(epochs) + int(scrubs)
            if want_epochs != epoch_events:
                fail(f"service_epochs + service_scrubs = {want_epochs} != "
                     f"{epoch_events} epoch trace events")
        # Durable-mode runs emit one kJournal event per acknowledged append
        # and one kRecovery event per recover(); the counters must agree
        # (all are per-process, like the trace itself).
        for name, got in (("service_journal_appends", journal_events),
                          ("service_recoveries", recovery_events),
                          ("service_batches_replayed", replayed_batches)):
            want = counters.get(name)
            if want is not None and int(want) != got:
                fail(f"{name} counter {want} != {got} from trace events")
        # Each on-disk record is its payload plus a 12-byte len+checksum
        # frame (util/journal.h).
        want = counters.get("service_journal_bytes")
        if want is not None and journal_events and \
                int(want) != journal_payload_bytes + 12 * journal_events:
            fail(f"service_journal_bytes counter {want} != "
                 f"{journal_payload_bytes} payload + 12*{journal_events}")
        # The resilience layer emits one kShed event per refused request;
        # every shed decision must be visible in BOTH the trace and the
        # per-reason counters (a HealthReport export), and they must agree.
        for name, got in (("resilience_shed_rate", shed_by_reason[0]),
                          ("resilience_shed_queue_full", shed_by_reason[1]),
                          ("resilience_shed_queue_wait", shed_by_reason[2]),
                          ("resilience_shed_total", sum(shed_by_reason))):
            want = counters.get(name)
            if want is not None and int(want) != got:
                fail(f"{name} counter {want} != {got} shed trace events")
        # One kBreaker event per observed state change.
        for name in ("service_breaker_transitions",
                     "resilience_breaker_transitions"):
            want = counters.get(name)
            if want is not None and int(want) != breaker_events:
                fail(f"{name} counter {want} != "
                     f"{breaker_events} breaker trace events")

    print(f"validate_trace: OK ({len(events)} events, "
          f"{corrupt_events} corrupt, {delta_events} delta, "
          f"{crash_events} crash, {epoch_events} epoch, "
          f"{journal_events} journal, {recovery_events} recovery, "
          f"{sum(shed_by_reason)} shed, {breaker_events} breaker)")


if __name__ == "__main__":
    main()
