#!/usr/bin/env bash
# Full local check: build + test in the default (RelWithDebInfo) config and
# under ASan+UBSan.
#
# Usage: scripts/check.sh [--tsan] [--perf-smoke] [--kill-matrix [dir]]
#                         [--query-smoke [dir]] [--overload-smoke [dir]]
#                         [extra ctest args...]
#   --tsan         run only the ThreadSanitizer configuration (the concurrency
#                  surface: engine, equivalence, faults, determinism, and the
#                  query tier's snapshot-swap soak) instead of the full matrix.
#   --perf-smoke   run only the engine perf-regression gate
#                  (bench_engine_perf --assert-speedup); self-skips on hosts
#                  with < 4 hardware threads.
#   --kill-matrix  run only the crash-point sweep against an existing build
#                  directory (default build-asan) — no rebuild.
#   --query-smoke  run only the query-tier gate: bench_query's lookup-rate
#                  floor plus a serve soak (snapshot swaps under churn with
#                  reader threads validating against the oracle).
#   --overload-smoke  run only the overload-robustness gate: bench_resilience
#                  floors (admitted-interactive p99 within 5x unloaded at 4x
#                  saturation, explicit sheds, zero overclaims), a seeded
#                  query_server overload replay with the shed-trace validated
#                  against the health counters, and a dapsp_service breaker
#                  open/half-open/close round trip.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1" type="$2"
  shift 2
  echo "== ${type} (${dir}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${type}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "$@"
}

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  # The tests that exercise the worker pool and the sharded phases —
  # test_engine_equivalence in particular runs the flat engine's arenas and
  # inbox frames differentially at 1/2/8 threads.
  run_config build-tsan Tsan \
    -R 'test_engine|test_engine_equivalence|test_arena|test_faults|test_determinism|test_query|test_resilience' "$@"
  echo "TSan checks passed."
  exit 0
fi

# Perf-regression gate (DESIGN.md section 16): the flat engine must keep its
# multi-thread speedups on hosts that can demonstrate them. The gate is
# inside the bench binary; on small hosts it prints SKIPPED and exits 0.
perf_smoke() {
  local dir="$1"
  echo "== perf smoke (${dir}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target bench_engine_perf
  "${dir}/bench/bench_engine_perf" --assert-speedup
}

if [[ "${1:-}" == "--perf-smoke" ]]; then
  perf_smoke build
  exit 0
fi

# Observability smoke (DESIGN.md section 12): run the CLI with --trace-out /
# --metrics-out on a small graph and validate the Chrome-trace JSON parses
# with non-decreasing round timestamps.
trace_smoke() {
  local dir="$1" tmp
  echo "== trace smoke (${dir}) =="
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  "${dir}/examples/dapsp_cli" gen grid 8 8 > "${tmp}/g.txt"
  "${dir}/examples/dapsp_cli" apsp -g "${tmp}/g.txt" \
    --trace-out "${tmp}/trace.json" --metrics-out "${tmp}/metrics.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_trace.py "${tmp}/trace.json" "${tmp}/metrics.json"
  else
    echo "python3 not found; skipping trace JSON validation"
  fi
}

# Chaos smoke (DESIGN.md section 13): a seeded crash + corruption + loss
# campaign driven through the CLI's --repair path. Exit code 0 means the
# degraded run was repaired and every row re-certified (all_certified);
# 2/3 mean uncertified / bound-exceeded and fail the check.
chaos_smoke() {
  local dir="$1" tmp
  echo "== chaos smoke (${dir}) =="
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  "${dir}/examples/dapsp_cli" gen grid 5 6 > "${tmp}/g.txt"
  "${dir}/examples/dapsp_cli" apsp -g "${tmp}/g.txt" \
    --drop 0.1 --corrupt 0.25 --crash 12@60 --fault-seed 7 --repair
}

# Churn-soak smoke (DESIGN.md section 14): 500 updates of seeded graph churn
# with interleaved crash-stops and bit-rot through the long-running service.
# Exit code 0 means the run ended with every row certified against the final
# graph; the trace validator then cross-checks the service's kDelta/kEpoch
# events against its metrics counters.
churn_smoke() {
  local dir="$1" tmp
  echo "== churn soak smoke (${dir}) =="
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  "${dir}/examples/dapsp_service" --updates 500 --universe 24 --seed 7 \
    --chaos 0.05 --scrub-every 50 --checkpoint-every 100 \
    --checkpoint-file "${tmp}/svc.ckpt" \
    --trace-out "${tmp}/service_trace.json" \
    --metrics-out "${tmp}/service_metrics.json" --quiet
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_trace.py \
      "${tmp}/service_trace.json" "${tmp}/service_metrics.json"
  else
    echo "python3 not found; skipping service trace validation"
  fi
}

# Kill-matrix smoke (DESIGN.md section 15): sweep process kills across the
# whole durable byte stream (journal appends AND checkpoint rotations), then
# recover each one. Every swept offset must exit 42 (killed), recover with
# exit 0, and produce a final checkpoint bit-identical to the uninterrupted
# reference run — no acknowledged update lost, no divergence.
kill_matrix_smoke() {
  local dir="$1" tmp
  echo "== kill matrix smoke (${dir}) =="
  if ! command -v python3 >/dev/null 2>&1; then
    echo "python3 not found; skipping kill matrix smoke"
    return 0
  fi
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local svc="${dir}/examples/dapsp_service"
  local flags=(--updates 24 --universe 12 --seed 7 --chaos 0.05
               --checkpoint-every 6 --quiet)
  # Reference: durable mode end-to-end, no kills. durable_bytes in the
  # metrics is the total durable stream length — the sweep range.
  "${svc}" --durable-dir "${tmp}/ref" "${flags[@]}" \
    --ckpt-dump "${tmp}/ref.bin" \
    --trace-out "${tmp}/ref_trace.json" \
    --metrics-out "${tmp}/ref_metrics.json"
  python3 scripts/validate_trace.py \
    "${tmp}/ref_trace.json" "${tmp}/ref_metrics.json"
  local bytes
  bytes="$(python3 -c "import json; print(json.load(open(
      '${tmp}/ref_metrics.json'))['counters']['durable_bytes'])")"
  local points=16 step=$(( bytes / 17 )) k at rc
  for (( k = 1; k <= points; k++ )); do
    at=$(( k * step ))
    rm -rf "${tmp}/run"
    rc=0
    "${svc}" --durable-dir "${tmp}/run" "${flags[@]}" \
      --kill-at-byte "${at}" || rc=$?
    if [[ "${rc}" -ne 42 ]]; then
      echo "kill matrix: offset ${at}: expected exit 42 (killed), got ${rc}"
      exit 1
    fi
    "${svc}" --durable-dir "${tmp}/run" --recover "${flags[@]}" \
      --ckpt-dump "${tmp}/rec.bin" \
      --trace-out "${tmp}/rec_trace.json" \
      --metrics-out "${tmp}/rec_metrics.json"
    python3 scripts/validate_trace.py \
      "${tmp}/rec_trace.json" "${tmp}/rec_metrics.json" >/dev/null
    if ! cmp -s "${tmp}/ref.bin" "${tmp}/rec.bin"; then
      echo "kill matrix: offset ${at}: recovered checkpoint differs"
      exit 1
    fi
  done
  echo "kill matrix: ${points} crash points swept," \
       "all recovered bit-identically"
}

if [[ "${1:-}" == "--kill-matrix" ]]; then
  kill_matrix_smoke "${2:-build-asan}"
  exit 0
fi

# Query-tier smoke (DESIGN.md section 17): the serial lookup-rate floor on
# bench_query, then a serve soak — dapsp_service publishing DQRY snapshots
# under churn while reader threads validate every fresh-status answer
# against a per-epoch sequential oracle. Exit 1 on any overclaim. Finally a
# query_server export/serve round trip through the mmap path.
query_smoke() {
  local dir="$1" tmp
  echo "== query smoke (${dir}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}" \
    --target bench_query dapsp_service query_server
  "${dir}/bench/bench_query" --smoke --assert-rate 1000000 >/dev/null
  "${dir}/examples/dapsp_service" --universe 24 --updates 60 --seed 7 \
    --serve 2 --serve-lookups 128 --chaos 0.05 --quiet
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  "${dir}/examples/query_server" --export "${tmp}/s.dqry" \
    --universe 32 --seed 7 --labels 2
  "${dir}/examples/query_server" --snapshot "${tmp}/s.dqry" --info
  "${dir}/examples/query_server" --snapshot "${tmp}/s.dqry" --query 1 30
}

if [[ "${1:-}" == "--query-smoke" ]]; then
  query_smoke "${2:-build}"
  exit 0
fi

# Overload-robustness smoke (DESIGN.md section 18): the resilience floors in
# bench_resilience (--smoke --assert), then a seeded query_server overload
# replay whose kShed trace is cross-checked against the exported health
# counters, and a dapsp_service run whose repair breaker provably opens
# during a strangle window, suppresses repairs, and closes again — exit 0
# requires the final tables fully certified despite the outage.
overload_smoke() {
  local dir="$1" tmp
  echo "== overload smoke (${dir}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}" \
    --target bench_resilience dapsp_service query_server
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  # Run in ${tmp}: the smoke run's BENCH_resilience.json must not clobber
  # the committed full-size curve.
  ( cd "${tmp}" && "${OLDPWD}/${dir}/bench/bench_resilience" \
      --smoke --assert >/dev/null )
  "${dir}/examples/query_server" --export "${tmp}/s.dqry" \
    --universe 48 --seed 7 --labels 2
  "${dir}/examples/query_server" --snapshot "${tmp}/s.dqry" \
    --overload 20000 --offered 2000000 --deadline-us 3 --seed 7 \
    --trace-out "${tmp}/shed.json" --metrics-out "${tmp}/health.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_trace.py "${tmp}/shed.json" "${tmp}/health.json"
  else
    echo "python3 not found; skipping shed trace validation"
  fi
  "${dir}/examples/dapsp_service" --universe 20 --updates 30 --seed 7 \
    --breaker 2@3 --strangle 5:9 --quiet \
    --trace-out "${tmp}/svc_trace.json" \
    --metrics-out "${tmp}/svc_metrics.json" > "${tmp}/svc.out"
  if ! grep -q 'breaker: state=closed' "${tmp}/svc.out"; then
    echo "overload smoke: breaker did not close after the strangle window"
    cat "${tmp}/svc.out"
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/validate_trace.py \
      "${tmp}/svc_trace.json" "${tmp}/svc_metrics.json"
  fi
  echo "overload smoke passed"
}

if [[ "${1:-}" == "--overload-smoke" ]]; then
  overload_smoke "${2:-build}"
  exit 0
fi

run_config build RelWithDebInfo "$@"
trace_smoke build
chaos_smoke build
churn_smoke build
perf_smoke build
query_smoke build
overload_smoke build
run_config build-asan Asan "$@"
kill_matrix_smoke build-asan

echo "All checks passed. (Run scripts/check.sh --tsan for the TSan config.)"
