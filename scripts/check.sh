#!/usr/bin/env bash
# Full local check: build + test in the default (RelWithDebInfo) config and
# under ASan+UBSan. Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1" type="$2"
  echo "== ${type} (${dir}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${type}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "$@"
}

run_config build RelWithDebInfo "${@:1}"
run_config build-asan Asan "${@:1}"

echo "All checks passed."
