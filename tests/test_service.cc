// Long-running DAPSP service (core/service.h) and its churn substrate
// (graph/delta.h): DynamicGraph invariants, seeded DeltaPlan determinism and
// checkpoint-resume, dirty-region analyzer soundness against the sequential
// oracle, per-epoch oracle-exact serving, escalation and graceful
// degradation under a tight watchdog, bit-rot + scrub, checkpoint/restore
// round-trips, and thread-count invariance.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/service.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "seq/apsp.h"

namespace dapsp::core {
namespace {

// DynamicGraph over `universe` nodes (all active) with the given edges.
DynamicGraph make_dynamic(NodeId universe, const std::vector<Edge>& edges) {
  DynamicGraph dg(universe);
  for (const Edge& e : edges) {
    dg.apply({DeltaKind::kEdgeInsert, e.u, e.v});
  }
  return dg;
}

// The oracle distance table for the current active subgraph, in the
// service's (node, source) convention (symmetric, so seq::apsp works as-is).
DistanceMatrix oracle_table(const DynamicGraph& dg) {
  return seq::apsp(dg.snapshot());
}

// ---------------------------------------------------------------- DynamicGraph

TEST(DynamicGraph, ValidatesEveryDelta) {
  DynamicGraph dg(4);
  EXPECT_THROW(DynamicGraph(0), std::invalid_argument);
  EXPECT_THROW(dg.apply({DeltaKind::kEdgeInsert, 0, 0}), std::invalid_argument);
  EXPECT_THROW(dg.apply({DeltaKind::kEdgeInsert, 0, 9}), std::invalid_argument);
  EXPECT_THROW(dg.apply({DeltaKind::kEdgeRemove, 0, 1}), std::invalid_argument);
  EXPECT_THROW(dg.apply({DeltaKind::kNodeJoin, 2, 2}), std::invalid_argument);
  dg.apply({DeltaKind::kEdgeInsert, 0, 1});
  EXPECT_THROW(dg.apply({DeltaKind::kEdgeInsert, 1, 0}), std::invalid_argument);
  dg.apply({DeltaKind::kNodeLeave, 1, 1});
  EXPECT_THROW(dg.apply({DeltaKind::kNodeLeave, 1, 1}), std::invalid_argument);
  EXPECT_THROW(dg.apply({DeltaKind::kEdgeInsert, 1, 2}), std::invalid_argument);
  EXPECT_FALSE(dg.can_apply({DeltaKind::kEdgeInsert, 1, 2}));
  EXPECT_TRUE(dg.can_apply({DeltaKind::kNodeJoin, 1, 1}));
}

TEST(DynamicGraph, LeaveDropsIncidentEdgesAndRejoinIsEdgeless) {
  DynamicGraph dg = make_dynamic(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(dg.num_edges(), 3u);
  dg.apply({DeltaKind::kNodeLeave, 1, 1});
  EXPECT_EQ(dg.num_edges(), 1u);  // only {2, 3} survives
  EXPECT_FALSE(dg.has_edge(0, 1));
  EXPECT_EQ(dg.degree(0), 0u);
  EXPECT_EQ(dg.num_active(), 3u);
  dg.apply({DeltaKind::kNodeJoin, 1, 1});
  EXPECT_TRUE(dg.active(1));
  EXPECT_EQ(dg.degree(1), 0u);  // joins come back edgeless
  // The CSR snapshot keeps the universe index-stable: node 1 is present.
  const Graph snap = dg.snapshot();
  EXPECT_EQ(snap.num_nodes(), 4u);
  EXPECT_EQ(snap.num_edges(), 1u);
}

TEST(DynamicGraph, ConnectivityProbes) {
  // Barbell: two triangles joined by the bridge {2, 3}.
  DynamicGraph dg = make_dynamic(
      6, {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}});
  EXPECT_TRUE(dg.connected_active());
  EXPECT_TRUE(dg.edge_is_bridge(2, 3));
  EXPECT_FALSE(dg.edge_is_bridge(0, 1));
  EXPECT_TRUE(dg.node_is_cut(2));
  EXPECT_FALSE(dg.node_is_cut(0));
  dg.apply({DeltaKind::kEdgeRemove, 2, 3});
  EXPECT_FALSE(dg.connected_active());
  EXPECT_THROW(dg.edge_is_bridge(2, 3), std::invalid_argument);
}

// -------------------------------------------------------------------- DeltaPlan

TEST(DeltaPlan, SameSeedProducesTheSameStream) {
  const Graph g = gen::random_connected(12, 10, 3);
  DeltaPlanConfig pc;
  pc.seed = 11;
  pc.crash_prob = 0.2;
  pc.corrupt_prob = 0.2;
  DeltaPlan a(pc), b(pc);
  DynamicGraph ga(g), gb(g);
  for (int i = 0; i < 50; ++i) {
    const ChurnBatch ba = a.next(ga), bb = b.next(gb);
    ASSERT_EQ(ba.deltas, bb.deltas) << "batch " << i;
    ASSERT_EQ(ba.crashes, bb.crashes);
    ASSERT_EQ(ba.corrupt_flips, bb.corrupt_flips);
    ASSERT_EQ(ba.corrupt_seed, bb.corrupt_seed);
    for (const GraphDelta& d : ba.deltas) ga.apply(d);
    for (const NodeId v : ba.crashes) ga.apply({DeltaKind::kNodeLeave, v, v});
    for (const GraphDelta& d : bb.deltas) gb.apply(d);
    for (const NodeId v : bb.crashes) gb.apply({DeltaKind::kNodeLeave, v, v});
  }
}

TEST(DeltaPlan, ResumeContinuesBitIdentically) {
  const Graph g = gen::random_connected(12, 10, 3);
  DeltaPlanConfig pc;
  pc.seed = 7;
  DeltaPlan full(pc);
  DynamicGraph dg(g);
  for (int i = 0; i < 10; ++i) {
    for (const GraphDelta& d : full.next(dg).deltas) dg.apply(d);
  }
  // Capture the two state scalars; a resumed plan must continue the stream.
  DeltaPlan resumed(pc);
  resumed.resume(full.rng_state(), full.batches_generated());
  DynamicGraph dg2 = dg;
  for (int i = 0; i < 10; ++i) {
    const ChurnBatch want = full.next(dg);
    const ChurnBatch got = resumed.next(dg2);
    ASSERT_EQ(want.deltas, got.deltas) << "batch " << i;
    for (const GraphDelta& d : want.deltas) dg.apply(d);
    for (const GraphDelta& d : got.deltas) dg2.apply(d);
  }
}

TEST(DeltaPlan, KeepsConnectivityAndMinActive) {
  const Graph g = gen::random_connected(14, 12, 9);
  DeltaPlanConfig pc;
  pc.seed = 5;
  pc.min_active = 6;
  pc.crash_prob = 0.3;
  DeltaPlan plan(pc);
  DynamicGraph dg(g);
  for (int i = 0; i < 200; ++i) {
    const ChurnBatch b = plan.next(dg);
    for (const GraphDelta& d : b.deltas) dg.apply(d);  // throws if invalid
    for (const NodeId v : b.crashes) dg.apply({DeltaKind::kNodeLeave, v, v});
    ASSERT_TRUE(dg.connected_active()) << "batch " << i;
    ASSERT_GE(dg.num_active(), 6u);
  }
}

// --------------------------------------------------------- analyze_dirty_rows

TEST(Analyzer, InsertShortcutMarksExactlyTheChangedRows) {
  // Path 0-1-2-3-4, insert {0, 2}: rows 0, 2, 3, 4 change (their distance
  // to 0 or 2 drops); row 1 sees |D_1(0) - D_1(2)| = 0 and stays clean.
  DynamicGraph dg = make_dynamic(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const DistanceMatrix table = oracle_table(dg);
  const auto mask = dg.active_mask();
  const auto edges = dg.sorted_edges();
  dg.apply({DeltaKind::kEdgeInsert, 0, 2});
  const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
  EXPECT_FALSE(dr.needs_full);
  EXPECT_EQ(dr.dirty, (std::vector<NodeId>{0, 2, 3, 4}));
}

TEST(Analyzer, RemovalSparesRowsWithAnAlternativeParent) {
  // Cycle of 6, remove {0, 1}. Rows 3 and 4 keep all distances (the other
  // arc already realizes them); rows 0, 1, 2, 5 genuinely change.
  DynamicGraph dg =
      make_dynamic(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}});
  const DistanceMatrix table = oracle_table(dg);
  const auto mask = dg.active_mask();
  const auto edges = dg.sorted_edges();
  dg.apply({DeltaKind::kEdgeRemove, 0, 1});
  const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
  EXPECT_FALSE(dr.needs_full);
  EXPECT_EQ(dr.dirty, (std::vector<NodeId>{0, 1, 2, 5}));
}

TEST(Analyzer, LeaveOfALeafIsFreeAndACutNodeDirtiesBothSides) {
  {
    DynamicGraph dg = make_dynamic(4, {{0, 1}, {1, 2}, {2, 3}});
    const DistanceMatrix table = oracle_table(dg);
    const auto mask = dg.active_mask();
    const auto edges = dg.sorted_edges();
    dg.apply({DeltaKind::kNodeLeave, 3, 3});
    const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
    EXPECT_TRUE(dr.dirty.empty());  // no surviving row changes
    EXPECT_EQ(dr.left, (std::vector<NodeId>{3}));
  }
  {
    DynamicGraph dg = make_dynamic(4, {{0, 1}, {1, 2}, {2, 3}});
    const DistanceMatrix table = oracle_table(dg);
    const auto mask = dg.active_mask();
    const auto edges = dg.sorted_edges();
    dg.apply({DeltaKind::kNodeLeave, 1, 1});  // disconnects 0 from {2, 3}
    const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
    EXPECT_EQ(dr.dirty, (std::vector<NodeId>{0, 2, 3}));
  }
}

TEST(Analyzer, JoinFrontierSpreadAndDirectPatch) {
  // Path 0-1-2-3-4 with node 5 inactive; join 5 attached to 0 and 4.
  DynamicGraph dg = make_dynamic(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  dg.apply({DeltaKind::kNodeLeave, 5, 5});
  const DistanceMatrix table = oracle_table(dg);
  const auto mask = dg.active_mask();
  const auto edges = dg.sorted_edges();
  dg.apply({DeltaKind::kNodeJoin, 5, 5});
  dg.apply({DeltaKind::kEdgeInsert, 5, 0});
  dg.apply({DeltaKind::kEdgeInsert, 5, 4});
  const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
  EXPECT_FALSE(dr.needs_full);
  EXPECT_EQ(dr.joined, (std::vector<NodeId>{5}));
  // Only the path's ends see the shortcut (frontier spread 4 > 2), plus row
  // 5 itself. Rows 1-3 have frontier spreads <= 2, stay clean, and get the
  // direct patch: D_1(5) = 1 + min(1, 3) = 2 matches the oracle.
  EXPECT_EQ(dr.dirty, (std::vector<NodeId>{0, 4, 5}));
  const DistanceMatrix after = oracle_table(dg);
  EXPECT_EQ(after.at(5, 1), 2u);
}

TEST(Analyzer, AdjacentJoinsRequestFullRecompute) {
  DynamicGraph dg = make_dynamic(6, {{0, 1}, {1, 2}, {2, 3}});
  dg.apply({DeltaKind::kNodeLeave, 4, 4});
  dg.apply({DeltaKind::kNodeLeave, 5, 5});
  const DistanceMatrix table = oracle_table(dg);
  const auto mask = dg.active_mask();
  const auto edges = dg.sorted_edges();
  dg.apply({DeltaKind::kNodeJoin, 4, 4});
  dg.apply({DeltaKind::kNodeJoin, 5, 5});
  dg.apply({DeltaKind::kEdgeInsert, 4, 0});
  dg.apply({DeltaKind::kEdgeInsert, 5, 4});
  const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
  EXPECT_TRUE(dr.needs_full);
}

// Randomized soundness: rows the analyzer calls clean must be truly
// unchanged (and joined-node entries of clean rows must match the direct
// patch), batch after batch, against the sequential oracle.
TEST(Analyzer, CleanRowsAreTrulyUnchangedUnderRandomChurn) {
  const Graph g = gen::random_connected(14, 12, 21);
  DynamicGraph dg(g);
  DistanceMatrix table = oracle_table(dg);
  DeltaPlanConfig pc;
  pc.seed = 31;
  pc.min_active = 5;
  pc.crash_prob = 0.15;
  DeltaPlan plan(pc);
  const NodeId n = dg.universe();
  for (int i = 0; i < 120; ++i) {
    const auto mask = dg.active_mask();
    const auto edges = dg.sorted_edges();
    const ChurnBatch b = plan.next(dg);
    for (const GraphDelta& d : b.deltas) dg.apply(d);
    for (const NodeId v : b.crashes) dg.apply({DeltaKind::kNodeLeave, v, v});
    const DirtyReport dr = analyze_dirty_rows(table, mask, edges, dg);
    const DistanceMatrix truth = oracle_table(dg);
    if (!dr.needs_full) {
      std::vector<std::uint8_t> dirty(n, 0), joined(n, 0);
      for (const NodeId s : dr.dirty) dirty[s] = 1;
      for (const NodeId w : dr.joined) joined[w] = 1;
      for (NodeId s = 0; s < n; ++s) {
        if (!dg.active(s) || dirty[s]) continue;
        for (NodeId v = 0; v < n; ++v) {
          if (!dg.active(v)) continue;
          if (joined[v]) {
            // Clean row + joined node: the direct patch must be exact.
            std::uint32_t mn = kInfDist;
            for (const NodeId x : dg.neighbors(v)) {
              mn = std::min(mn, table.at(x, s));
            }
            const std::uint32_t want = mn == kInfDist ? kInfDist : mn + 1;
            ASSERT_EQ(truth.at(v, s), want)
                << "batch " << i << " patch (" << v << ", " << s << ")";
          } else {
            ASSERT_EQ(truth.at(v, s), table.at(v, s))
                << "batch " << i << " clean row " << s << " node " << v;
          }
        }
      }
    }
    table = truth;  // simulate a perfect repair for the next round
  }
}

// ------------------------------------------------------------------- service

// Working and served tables both match the oracle on the current active
// subgraph, and no row is stale.
void expect_oracle_exact(const DapspService& svc) {
  const DynamicGraph& dg = svc.dynamic_graph();
  const DistanceMatrix truth = oracle_table(dg);
  for (NodeId s = 0; s < dg.universe(); ++s) {
    if (!dg.active(s)) continue;
    ASSERT_NE(svc.row_status(s), RowStatus::kStale) << "row " << s;
    for (NodeId v = 0; v < dg.universe(); ++v) {
      if (!dg.active(v)) continue;
      ASSERT_EQ(svc.tables().dist.at(v, s), truth.at(v, s))
          << "working (" << v << ", " << s << ")";
      const ServiceQuery q = svc.query(v, s);
      ASSERT_TRUE(q.active);
      ASSERT_EQ(q.dist, truth.at(v, s)) << "served (" << v << ", " << s << ")";
    }
  }
  EXPECT_TRUE(svc.fully_certified());
}

TEST(Service, ServesOracleExactTablesThroughEveryEpoch) {
  const Graph g = gen::random_connected(14, 12, 5);
  DapspService svc(g, {});
  expect_oracle_exact(svc);
  DeltaPlanConfig pc;
  pc.seed = 13;
  pc.min_active = 5;
  pc.crash_prob = 0.15;  // crashes yes, bit-rot no (scrub tests cover that)
  DeltaPlan plan(pc);
  for (int i = 0; i < 60; ++i) {
    const ChurnBatch b = plan.next(svc.dynamic_graph());
    const EpochReport ep = svc.step(b);
    ASSERT_TRUE(ep.certified) << ep.debug_string();
    ASSERT_TRUE(ep.bound_ok) << ep.debug_string();
    expect_oracle_exact(svc);
  }
  EXPECT_EQ(svc.stats().epochs, 60u);
  EXPECT_EQ(svc.stats().epochs_failed, 0u);
  EXPECT_GT(svc.stats().run.repairs_attempted, 0u);
}

TEST(Service, CleanEpochRunsNoProtocol) {
  DapspService svc(gen::grid(3, 4), {});
  const std::uint64_t rounds_before = svc.stats().run.rounds;
  const EpochReport ep = svc.step({});
  EXPECT_EQ(ep.outcome, EpochOutcome::kClean);
  EXPECT_EQ(ep.attempts, 0u);
  EXPECT_TRUE(ep.certified);
  EXPECT_EQ(svc.stats().run.rounds, rounds_before);
  expect_oracle_exact(svc);
}

TEST(Service, OversizedDirtyRegionEscalates) {
  // A long chord across a path dirties nearly every row: the service should
  // skip the incremental rung and do one full recompute.
  DapspService svc(gen::path(10), {});
  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeInsert, 0, 9});
  const EpochReport ep = svc.step(b);
  EXPECT_EQ(ep.outcome, EpochOutcome::kEscalated);
  EXPECT_TRUE(ep.certified);
  EXPECT_EQ(ep.attempts, 1u);
  EXPECT_EQ(svc.stats().run.repairs_escalated, 1u);
  expect_oracle_exact(svc);
  for (NodeId s = 0; s < 10; ++s) {
    EXPECT_EQ(svc.row_status(s), RowStatus::kExact);
  }
}

TEST(Service, AdjacentJoinsEscalateViaNeedsFull) {
  const Graph g = gen::path(6);
  DapspService svc(g, {});
  svc.step([] {
    ChurnBatch b;
    b.deltas.push_back({DeltaKind::kNodeLeave, 4, 4});
    b.deltas.push_back({DeltaKind::kNodeLeave, 5, 5});
    return b;
  }());
  ChurnBatch joins;
  joins.deltas.push_back({DeltaKind::kNodeJoin, 4, 4});
  joins.deltas.push_back({DeltaKind::kNodeJoin, 5, 5});
  joins.deltas.push_back({DeltaKind::kEdgeInsert, 4, 3});
  joins.deltas.push_back({DeltaKind::kEdgeInsert, 5, 4});
  const EpochReport ep = svc.step(joins);
  EXPECT_EQ(ep.outcome, EpochOutcome::kEscalated);
  EXPECT_TRUE(ep.certified);
  expect_oracle_exact(svc);
}

TEST(Service, BitRotIsInvisibleUntilTheScrubCatchesIt) {
  DapspService svc(gen::random_connected(12, 10, 7), {});
  ChurnBatch rot;
  rot.corrupt_flips = 6;
  rot.corrupt_seed = 99;
  const EpochReport ep = svc.step(rot);
  EXPECT_EQ(ep.outcome, EpochOutcome::kClean);  // analyzer can't see it
  EXPECT_GT(ep.corrupted_entries, 0u);
  EXPECT_EQ(svc.stats().corrupted_entries, ep.corrupted_entries);
  // The working table now disagrees with the oracle somewhere...
  const DistanceMatrix truth = oracle_table(svc.dynamic_graph());
  EXPECT_FALSE(svc.tables().dist == truth);
  // ...and a certificate scrub finds and heals every corrupted row.
  const EpochReport s = svc.scrub();
  EXPECT_TRUE(s.certified);
  EXPECT_GT(s.suspect_rows, 0u);
  EXPECT_EQ(svc.stats().scrubs, 1u);
  expect_oracle_exact(svc);
}

TEST(Service, ScrubEveryAutomatesTheCadence) {
  ServiceConfig cfg;
  cfg.scrub_every = 2;
  DapspService svc(gen::grid(3, 3), cfg);
  ChurnBatch rot;
  rot.corrupt_flips = 3;
  rot.corrupt_seed = 5;
  for (int i = 0; i < 4; ++i) svc.step(rot);
  EXPECT_EQ(svc.stats().scrubs, 2u);
  // The auto-scrub runs at the end of its epoch, after that epoch's bit-rot
  // lands, so epoch 4's scrub leaves the service fully healed.
  expect_oracle_exact(svc);
}

std::vector<std::uint8_t> blob_of(DapspService& svc) {
  return svc.checkpoint_blob();
}

TEST(Service, CheckpointRestoreRoundTripsBitIdentically) {
  DapspService svc(gen::random_connected(12, 10, 7), {});
  DeltaPlanConfig pc;
  pc.seed = 3;
  pc.crash_prob = 0.1;
  DeltaPlan plan(pc);
  for (int i = 0; i < 15; ++i) svc.step(plan.next(svc.dynamic_graph()));

  const std::uint64_t words[2] = {plan.rng_state(), plan.batches_generated()};
  std::ostringstream out;
  svc.checkpoint(out, words);
  EXPECT_EQ(svc.stats().checkpoints, 1u);
  EXPECT_GT(svc.stats().run.checkpoint_bytes, 0u);

  std::istringstream in(out.str());
  std::vector<std::uint64_t> restored_words;
  DapspService twin = DapspService::restore(in, {}, &restored_words);
  ASSERT_EQ(restored_words.size(), 2u);
  EXPECT_EQ(restored_words[0], plan.rng_state());
  EXPECT_EQ(restored_words[1], plan.batches_generated());
  EXPECT_EQ(twin.epoch(), svc.epoch());
  EXPECT_EQ(blob_of(twin), blob_of(svc));

  // Restore-continue equals straight-through, epoch for epoch.
  DeltaPlan plan2(pc);
  plan2.resume(restored_words[0], restored_words[1]);
  for (int i = 0; i < 15; ++i) {
    svc.step(plan.next(svc.dynamic_graph()));
    twin.step(plan2.next(twin.dynamic_graph()));
  }
  EXPECT_EQ(blob_of(twin), blob_of(svc));
  expect_oracle_exact(twin);
}

TEST(Service, RestoreRejectsDamagedCheckpoints) {
  DapspService svc(gen::grid(3, 3), {});
  const std::vector<std::uint8_t> blob = svc.checkpoint_blob();
  {
    std::istringstream in("not a checkpoint");
    EXPECT_THROW(DapspService::restore(in, {}, nullptr), std::runtime_error);
  }
  {
    std::vector<std::uint8_t> bad = blob;
    bad[bad.size() / 2] ^= 0x10;  // body damage -> checksum mismatch
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(bad.data()), bad.size()));
    EXPECT_THROW(DapspService::restore(in, {}, nullptr), std::runtime_error);
  }
  {
    std::istringstream in(std::string(
        reinterpret_cast<const char*>(blob.data()), blob.size() / 2));
    EXPECT_THROW(DapspService::restore(in, {}, nullptr), std::runtime_error);
  }
}

TEST(Service, ThreadCountNeverChangesTheCheckpoint) {
  const Graph g = gen::random_connected(12, 10, 7);
  std::vector<std::vector<std::uint8_t>> blobs;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    ServiceConfig cfg;
    cfg.engine.threads = threads;
    DapspService svc(g, cfg);
    DeltaPlanConfig pc;
    pc.seed = 41;
    pc.crash_prob = 0.1;
    pc.corrupt_prob = 0.1;
    DeltaPlan plan(pc);
    for (int i = 0; i < 20; ++i) svc.step(plan.next(svc.dynamic_graph()));
    blobs.push_back(svc.checkpoint_blob());
  }
  EXPECT_EQ(blobs[0], blobs[1]);
  EXPECT_EQ(blobs[0], blobs[2]);
}

TEST(Service, WatchdogTripsFailTheEpochButNotTheService) {
  // Build healthy, checkpoint, then restore under a 2-round watchdog: every
  // ladder rung trips, the epoch fails, and the service keeps serving the
  // pre-epoch snapshot with the staleness disclosed.
  DapspService healthy(gen::cycle(8), {});
  const std::vector<std::uint8_t> blob = healthy.checkpoint_blob();

  ServiceConfig strict;
  strict.watchdog_rounds = 2;
  strict.backoff_base_ms = 1;
  strict.escalate_fraction = 1.0;  // walk the whole ladder, don't force-jump
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService svc = DapspService::restore(in, strict, nullptr);

  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeRemove, 0, 1});
  const EpochReport ep = svc.step(b);
  EXPECT_FALSE(ep.certified);
  EXPECT_TRUE(ep.escalated);  // the ladder reached the final rung
  EXPECT_EQ(ep.attempts, 3u);
  EXPECT_EQ(svc.stats().epochs_failed, 1u);
  EXPECT_GE(svc.stats().backoff_ms, 2u);  // two jittered sleeps, each >= base
  EXPECT_FALSE(svc.fully_certified());

  // Graceful degradation: the failed rows answer from the last certified
  // snapshot (pre-removal distances), flagged stale.
  const ServiceQuery q = svc.query(0, 1);
  EXPECT_TRUE(q.active);
  EXPECT_EQ(q.status, RowStatus::kStale);
  EXPECT_EQ(q.dist, 1u);  // the old snapshot still says "adjacent"

  // Recovery: restore the degraded state under a sane config; the stale
  // rows carry over as suspects and the next (empty) epoch heals them.
  const std::vector<std::uint8_t> degraded = svc.checkpoint_blob();
  std::istringstream in2(std::string(
      reinterpret_cast<const char*>(degraded.data()), degraded.size()));
  DapspService healed = DapspService::restore(in2, {}, nullptr);
  EXPECT_FALSE(healed.fully_certified());  // staleness survives the blob
  const EpochReport fix = healed.step({});
  EXPECT_TRUE(fix.certified);
  EXPECT_GT(fix.suspect_rows, 0u);
  expect_oracle_exact(healed);
}

TEST(Service, QueryValidatesEndpointsAndReportsInactive) {
  DapspService svc(gen::path(5), {});
  EXPECT_THROW(svc.query(0, 9), std::invalid_argument);
  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kNodeLeave, 4, 4});
  svc.step(b);
  const ServiceQuery q = svc.query(0, 4);
  EXPECT_FALSE(q.active);
  EXPECT_EQ(q.dist, kInfDist);
}

// ------------------------------------------------------------ CheckpointError

TEST(CheckpointErrors, ClassificationNamesEveryFailureMode) {
  DapspService svc(gen::grid(3, 3), {});
  const std::vector<std::uint8_t> blob = svc.checkpoint_blob();
  EXPECT_EQ(classify_checkpoint_blob(blob), CheckpointError::kNone);
  EXPECT_EQ(peek_checkpoint_epoch(blob), svc.epoch());

  EXPECT_EQ(classify_checkpoint_blob({}), CheckpointError::kMissing);

  // Every strict prefix is a truncation — the dry structural walk never
  // misreads a cut as checksum damage.
  for (std::size_t len = 1; len < blob.size(); len += 7) {
    EXPECT_EQ(classify_checkpoint_blob(
                  std::span<const std::uint8_t>(blob.data(), len)),
              CheckpointError::kTruncated)
        << "prefix of " << len << " bytes";
  }

  std::vector<std::uint8_t> bad = blob;
  bad[0] ^= 0xff;
  EXPECT_EQ(classify_checkpoint_blob(bad), CheckpointError::kBadMagic);

  bad = blob;
  bad[5] ^= 0x01;  // magic intact, version word damaged
  EXPECT_EQ(classify_checkpoint_blob(bad), CheckpointError::kVersionMismatch);

  bad = blob;
  bad[bad.size() / 2] ^= 0x10;
  EXPECT_EQ(classify_checkpoint_blob(bad), CheckpointError::kChecksumMismatch);

  bad = blob;
  bad.push_back(0);  // bytes beyond the declared structure
  EXPECT_EQ(classify_checkpoint_blob(bad), CheckpointError::kChecksumMismatch);
}

TEST(CheckpointErrors, ToStringCoversEveryCode) {
  EXPECT_STREQ(to_string(CheckpointError::kNone), "none");
  EXPECT_STREQ(to_string(CheckpointError::kMissing), "missing");
  EXPECT_STREQ(to_string(CheckpointError::kTruncated), "truncated");
  EXPECT_STREQ(to_string(CheckpointError::kBadMagic), "bad-magic");
  EXPECT_STREQ(to_string(CheckpointError::kVersionMismatch),
               "version-mismatch");
  EXPECT_STREQ(to_string(CheckpointError::kChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(to_string(CheckpointError::kBadPayload), "bad-payload");
}

TEST(CheckpointErrors, TryRestoreReportsTheCodeWithoutThrowing) {
  DapspService svc(gen::grid(3, 3), {});
  const std::vector<std::uint8_t> blob = svc.checkpoint_blob();

  CheckpointError err = CheckpointError::kBadPayload;
  std::optional<DapspService> ok =
      DapspService::try_restore_blob(blob, {}, nullptr, &err);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(err, CheckpointError::kNone);
  EXPECT_EQ(ok->epoch(), svc.epoch());

  std::vector<std::uint8_t> bad = blob;
  bad[bad.size() - 9] ^= 0x40;  // last body byte, before the checksum
  err = CheckpointError::kNone;
  EXPECT_FALSE(
      DapspService::try_restore_blob(bad, {}, nullptr, &err).has_value());
  EXPECT_EQ(err, CheckpointError::kChecksumMismatch);

  err = CheckpointError::kNone;
  EXPECT_FALSE(
      DapspService::try_restore_blob({}, {}, nullptr, &err).has_value());
  EXPECT_EQ(err, CheckpointError::kMissing);
}

TEST(CheckpointErrors, RestoreMessagesNameTheClassification) {
  DapspService svc(gen::grid(3, 3), {});
  const std::vector<std::uint8_t> blob = svc.checkpoint_blob();
  const auto expect_restore_says = [](std::span<const std::uint8_t> b,
                                      const std::string& code) {
    try {
      DapspService::restore_blob(b, {}, nullptr);
      FAIL() << "restore_blob accepted a " << code << " checkpoint";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(code), std::string::npos)
          << e.what();
    }
  };
  expect_restore_says({}, "missing");
  expect_restore_says(std::span<const std::uint8_t>(blob.data(), 40),
                      "truncated");
  std::vector<std::uint8_t> bad = blob;
  bad[1] ^= 0x08;
  expect_restore_says(bad, "bad-magic");
  bad = blob;
  bad[6] ^= 0x02;
  expect_restore_says(bad, "version-mismatch");
  bad = blob;
  bad[bad.size() / 3] ^= 0x20;
  expect_restore_says(bad, "checksum-mismatch");
}

// ---------------------------------------------------------- saturating backoff

TEST(Backoff, ZeroBaseNeverSleepsAtAnyExponent) {
  for (const std::uint64_t exp :
       {0ull, 1ull, 13ull, 62ull, 63ull, 64ull, 10'000ull, ~0ull}) {
    EXPECT_EQ(backoff_delay_ms(0, exp), 0u) << "exp " << exp;
  }
}

TEST(Backoff, DoublesExactlyBelowTheCapAndSaturatesAbove) {
  EXPECT_EQ(backoff_delay_ms(5, 0), 5u);
  EXPECT_EQ(backoff_delay_ms(5, 3), 40u);
  EXPECT_EQ(backoff_delay_ms(5, 13), 40'960u);  // last doubling under the cap
  EXPECT_EQ(backoff_delay_ms(5, 14), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(1, 16), kMaxBackoffMs);  // 65'536 > 60'000
  EXPECT_EQ(backoff_delay_ms(kMaxBackoffMs, 0), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(kMaxBackoffMs + 1, 0), kMaxBackoffMs);
}

TEST(Backoff, HugeExponentsSaturateInsteadOfOverflowing) {
  // exp >= 63 would be UB as a plain shift of a nonzero base; a wrapped
  // shift would come back tiny and turn the backoff into a hot loop.
  EXPECT_EQ(backoff_delay_ms(1, 62), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(1, 63), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(1, 64), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(3, 62), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(1, ~0ull), kMaxBackoffMs);
  EXPECT_EQ(backoff_delay_ms(~0ull, 1), kMaxBackoffMs);
}

TEST(Service, WallBudgetZeroIsNoBudgetAndTinyBudgetSkipsToEscalation) {
  DapspService healthy(gen::cycle(8), {});
  const std::vector<std::uint8_t> blob = healthy.checkpoint_blob();
  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeRemove, 0, 1});

  // watchdog_wall_ms == 0 means "no wall budget": every rung of the ladder
  // is attempted, exactly as if the knob did not exist.
  ServiceConfig unlimited;
  unlimited.watchdog_rounds = 2;
  unlimited.escalate_fraction = 1.0;
  unlimited.watchdog_wall_ms = 0;
  std::istringstream in1(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService svc1 = DapspService::restore(in1, unlimited, nullptr);
  EXPECT_EQ(svc1.step(b).attempts, 3u);

  // A tiny wall budget (blown during the first backoff sleep) skips the
  // intermediate rungs but always keeps the final escalation.
  ServiceConfig tight = unlimited;
  tight.watchdog_wall_ms = 1;
  tight.backoff_base_ms = 2;
  std::istringstream in2(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService svc2 = DapspService::restore(in2, tight, nullptr);
  const EpochReport ep = svc2.step(b);
  EXPECT_EQ(ep.attempts, 2u);  // first rung + final escalation only
  EXPECT_TRUE(ep.escalated);
}

TEST(Service, DegradedStreakFeedsTheBackoffEnvelopeAndIsNotCheckpointed) {
  DapspService healthy(gen::cycle(8), {});
  const std::vector<std::uint8_t> blob = healthy.checkpoint_blob();

  ServiceConfig strict;
  strict.watchdog_rounds = 2;
  strict.escalate_fraction = 1.0;
  strict.backoff_base_ms = 1;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService svc = DapspService::restore(in, strict, nullptr);
  EXPECT_EQ(svc.degraded_streak(), 0u);

  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeRemove, 0, 1});
  svc.step(b);
  EXPECT_EQ(svc.degraded_streak(), 1u);
  // Two jittered sleeps between the three rungs, each >= base; with the
  // streak-0 envelope seed of backoff_delay_ms(1, 0) = 1ms the first draw
  // is <= 3ms and the second <= 3 * max(base, first) <= 9ms.
  const std::uint64_t first = svc.stats().backoff_ms;
  EXPECT_GE(first, 2u);
  EXPECT_LE(first, 12u);

  ChurnBatch b2;
  b2.deltas.push_back({DeltaKind::kEdgeRemove, 2, 3});
  svc.step(b2);
  EXPECT_EQ(svc.degraded_streak(), 2u);
  // The second failed epoch's envelope widens (seed backoff_delay_ms(1, 1)
  // = 2ms -> draws in [1, 6] then [1, 18]); individual draws are jittered
  // so only the bounds are asserted.
  const std::uint64_t second = svc.stats().backoff_ms - first;
  EXPECT_GE(second, 2u);
  EXPECT_LE(second, 24u);

  // Determinism: a twin driven through the same epochs accumulates the
  // identical jittered total — the draws are keyed by (seed, epoch,
  // attempt), never by wall time.
  std::istringstream in_twin(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService twin = DapspService::restore(in_twin, strict, nullptr);
  ChurnBatch tb;
  tb.deltas.push_back({DeltaKind::kEdgeRemove, 0, 1});
  twin.step(tb);
  ChurnBatch tb2;
  tb2.deltas.push_back({DeltaKind::kEdgeRemove, 2, 3});
  twin.step(tb2);
  EXPECT_EQ(twin.stats().backoff_ms, svc.stats().backoff_ms);

  // The streak is runtime-only: a restored twin starts calm, and a
  // successful healing epoch keeps it at zero.
  const std::vector<std::uint8_t> degraded = svc.checkpoint_blob();
  std::istringstream in2(std::string(
      reinterpret_cast<const char*>(degraded.data()), degraded.size()));
  DapspService healed = DapspService::restore(in2, {}, nullptr);
  EXPECT_EQ(healed.degraded_streak(), 0u);
  EXPECT_TRUE(healed.step({}).certified);
  EXPECT_EQ(healed.degraded_streak(), 0u);
}

// ------------------------------------------- churn codec & plan round-trips

TEST(DeltaPlan, TwoScalarCheckpointRoundTripsAtEverySplitPoint) {
  constexpr int kTotal = 20;
  const Graph g = gen::random_connected(12, 10, 3);
  DeltaPlanConfig pc;
  pc.seed = 17;
  pc.crash_prob = 0.15;
  pc.corrupt_prob = 0.1;

  // Reference stream, recorded once.
  std::vector<ChurnBatch> want;
  {
    DeltaPlan plan(pc);
    DynamicGraph dg(g);
    for (int i = 0; i < kTotal; ++i) {
      const ChurnBatch b = plan.next(dg);
      for (const GraphDelta& d : b.deltas) dg.apply(d);
      for (const NodeId v : b.crashes) dg.apply({DeltaKind::kNodeLeave, v, v});
      want.push_back(b);
    }
  }

  // Property: for EVERY split point, draining `split` batches, freezing the
  // two scalars, and resuming a fresh plan replays the identical suffix.
  for (int split = 0; split <= kTotal; ++split) {
    DeltaPlan head(pc);
    DynamicGraph dg(g);
    for (int i = 0; i < split; ++i) {
      const ChurnBatch b = head.next(dg);
      for (const GraphDelta& d : b.deltas) dg.apply(d);
      for (const NodeId v : b.crashes) dg.apply({DeltaKind::kNodeLeave, v, v});
    }
    DeltaPlan tail(pc);
    tail.resume(head.rng_state(), head.batches_generated());
    EXPECT_EQ(tail.batches_generated(), static_cast<std::uint64_t>(split));
    for (int i = split; i < kTotal; ++i) {
      const ChurnBatch b = tail.next(dg);
      ASSERT_EQ(b, want[static_cast<std::size_t>(i)])
          << "split " << split << ", batch " << i;
      for (const GraphDelta& d : b.deltas) dg.apply(d);
      for (const NodeId v : b.crashes) dg.apply({DeltaKind::kNodeLeave, v, v});
    }
  }
}

TEST(ChurnCodec, RoundTripsEveryBatchShape) {
  const Graph g = gen::random_connected(12, 10, 3);
  DeltaPlanConfig pc;
  pc.seed = 23;
  pc.crash_prob = 0.2;
  pc.corrupt_prob = 0.2;
  DeltaPlan plan(pc);
  DynamicGraph dg(g);
  for (int i = 0; i < 40; ++i) {
    const ChurnBatch b = plan.next(dg);
    const std::vector<std::uint8_t> bytes = encode_churn_batch(b);
    EXPECT_EQ(decode_churn_batch(bytes), b) << "batch " << i;
    for (const GraphDelta& d : b.deltas) dg.apply(d);
    for (const NodeId v : b.crashes) dg.apply({DeltaKind::kNodeLeave, v, v});
  }
  const ChurnBatch empty;
  EXPECT_EQ(decode_churn_batch(encode_churn_batch(empty)), empty);
}

TEST(ChurnCodec, RejectsTruncatedBytes) {
  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeInsert, 0, 1});
  b.crashes.push_back(3);
  b.corrupt_flips = 2;
  b.corrupt_seed = 99;
  const std::vector<std::uint8_t> bytes = encode_churn_batch(b);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(decode_churn_batch(std::span<const std::uint8_t>(
                     bytes.data(), len)),
                 std::exception)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(Service, CountersSurfaceInDebugStrings) {
  DapspService svc(gen::grid(3, 3), {});
  svc.checkpoint_blob();
  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeInsert, 0, 8});
  svc.step(b);
  const std::string run = svc.stats().run.debug_string();
  EXPECT_NE(run.find("repairs="), std::string::npos);
  EXPECT_NE(run.find("checkpoint_bytes="), std::string::npos);
  const std::string s = svc.stats().debug_string();
  EXPECT_NE(s.find("epochs=1"), std::string::npos);  // ctor counts no epoch
  EXPECT_EQ(std::string(to_string(RowStatus::kRepaired)), "repaired");
  EXPECT_EQ(std::string(to_string(EpochOutcome::kEscalated)), "escalated");
  EXPECT_EQ(std::string(to_string(DeltaKind::kNodeJoin)), "node-join");
  EXPECT_FALSE(to_string(GraphDelta{DeltaKind::kEdgeInsert, 0, 8}).empty());
}

}  // namespace
}  // namespace dapsp::core
