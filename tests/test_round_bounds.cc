// Golden round-count regression tests: the paper's round bounds, pinned to
// the implementation's true constants.
//
// Theorem 1 promises Algorithm 1 in O(n) rounds and Theorem 3 promises
// Algorithm 2 in O(|S| + D). Our implementation's constants differ from the
// extended abstract's (leader election + tree echo, a one-round pebble wait
// per node, the doubled SSP schedule documented in core/ssp.h, and the
// Lemma 2-7 aggregation phases), but they are *exact* functions of the
// instance:
//
//   Algorithm 1:  rounds == 3n + 7*ecc(leader) + 3
//   Algorithm 2:  rounds == 2|S| + 7*ecc(leader) + 9
//
// measured across every suite shape and pinned here both as closed forms
// and as literal golden values on canonical graphs. Any scheduling change —
// an extra wait round, a lost phase overlap, a broadcast regression — moves
// these counts and fails loudly. Since ecc(leader) <= D, the closed forms
// also certify the paper-shaped bounds O(n) and O(|S| + D) with explicit
// constants (3n + 7D + 3 and 2|S| + 7D + 9).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

std::uint64_t apsp_round_formula(std::uint64_t n, std::uint64_t leader_ecc) {
  return 3 * n + 7 * leader_ecc + 3;
}

std::uint64_t ssp_round_formula(std::uint64_t s_count,
                                std::uint64_t leader_ecc) {
  return 2 * s_count + 7 * leader_ecc + 9;
}

// Sources used by every SSP bound test: nodes 0, 4, 8, ... (never empty).
std::vector<NodeId> every_fourth(const Graph& g) {
  std::vector<NodeId> s;
  for (NodeId v = 0; v < g.num_nodes(); v += 4) s.push_back(v);
  return s;
}

// --- Literal golden values on canonical graphs --------------------------

struct GoldenCase {
  const char* name;
  Graph g;
  std::uint64_t apsp_rounds;  // run_pebble_apsp (with aggregation)
  std::uint64_t ssp_rounds;   // run_ssp with every_fourth sources
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> out;
  out.push_back({"path1", gen::path(1), 6, 11});
  out.push_back({"path32", gen::path(32), 316, 242});
  out.push_back({"cycle33", gen::cycle(33), 214, 139});
  out.push_back({"complete16", gen::complete(16), 58, 24});
  out.push_back({"grid5x5", gen::grid(5, 5), 134, 79});
  out.push_back({"petersen", gen::petersen(), 47, 29});
  out.push_back({"btree31", gen::balanced_tree(31, 2), 124, 53});
  out.push_back({"star20", gen::star(20), 70, 26});
  out.push_back({"rand40", gen::random_connected(40, 30, 11), 151, 57});
  return out;
}

TEST(RoundBounds, GoldenApspRoundCounts) {
  for (const GoldenCase& c : golden_cases()) {
    const ApspResult r = run_pebble_apsp(c.g);
    EXPECT_EQ(r.stats.rounds, c.apsp_rounds) << c.name;
  }
}

TEST(RoundBounds, GoldenSspRoundCounts) {
  for (const GoldenCase& c : golden_cases()) {
    const SspResult r = run_ssp(c.g, every_fourth(c.g));
    EXPECT_EQ(r.stats.rounds, c.ssp_rounds) << c.name;
  }
}

// The golden counts are properties of the *schedule*, not of the engine's
// memory layout or sharding: the flat engine (arena outboxes, CSR mirror
// table, per-shard merge — DESIGN.md §16) must reproduce every literal
// value byte-for-byte at every thread count, including a case large enough
// that all 8 shards hold many nodes.
TEST(RoundBounds, GoldenRoundCountsAcrossThreadCounts) {
  std::vector<GoldenCase> cases = golden_cases();
  cases.push_back(
      {"rand256", gen::random_connected(256, 512, 21), 806, 172});
  for (const GoldenCase& c : cases) {
    for (const std::uint32_t t : {2u, 8u}) {
      ApspOptions aopt;
      aopt.engine.threads = t;
      const ApspResult a = run_pebble_apsp(c.g, aopt);
      EXPECT_EQ(a.stats.rounds, c.apsp_rounds) << c.name << " threads=" << t;
      SspOptions sopt;
      sopt.engine.threads = t;
      const SspResult s = run_ssp(c.g, every_fourth(c.g), sopt);
      EXPECT_EQ(s.stats.rounds, c.ssp_rounds) << c.name << " threads=" << t;
    }
  }
}

// --- Closed forms across the suites -------------------------------------

TEST(RoundBounds, ApspClosedFormOnSuites) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_EQ(r.stats.rounds,
              apsp_round_formula(g.num_nodes(), r.leader_ecc))
        << name;
  }
  for (const auto& [name, g] : testing::medium_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_EQ(r.stats.rounds,
              apsp_round_formula(g.num_nodes(), r.leader_ecc))
        << name;
  }
}

TEST(RoundBounds, SspClosedFormOnSuites) {
  for (const auto& [name, g] : testing::small_suite()) {
    const auto sources = every_fourth(g);
    const SspResult r = run_ssp(g, sources);
    // The broadcast D0 bound is exactly 2*ecc(leader) (Fact 1).
    EXPECT_EQ(r.d0, 2 * r.leader_ecc) << name;
    EXPECT_EQ(r.stats.rounds,
              ssp_round_formula(sources.size(), r.leader_ecc))
        << name;
  }
}

// --- Paper-shaped bounds with explicit constants ------------------------

// Theorem 1 (O(n) rounds): since ecc(leader) <= D <= n-1, the closed form
// gives rounds <= 3n + 7D + 3 <= 10n. Checked against the oracle D.
TEST(RoundBounds, ApspWithinLinearPaperBound) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    const std::uint64_t d = seq::diameter(g);
    EXPECT_LE(r.stats.rounds, 3 * std::uint64_t{g.num_nodes()} + 7 * d + 3)
        << name;
    EXPECT_LE(r.stats.rounds, 10 * std::uint64_t{g.num_nodes()}) << name;
  }
}

// Theorem 3 (O(|S| + D) rounds): rounds <= 2|S| + 7D + 9. The loop itself
// is schedule_length(|S|, D0) = 2(|S| + D0) + 4 (the doubled schedule of
// core/ssp.h); setup adds 3*ecc(leader) + 5.
TEST(RoundBounds, SspWithinPaperBound) {
  for (const auto& [name, g] : testing::small_suite()) {
    const auto sources = every_fourth(g);
    const SspResult r = run_ssp(g, sources);
    const std::uint64_t d = seq::diameter(g);
    EXPECT_LE(r.stats.rounds, 2 * sources.size() + 7 * d + 9) << name;
    EXPECT_EQ(r.loop_rounds,
              SspMachine::schedule_length(sources.size(), r.d0))
        << name;
  }
}

}  // namespace
}  // namespace dapsp::core
