// Direct unit tests for the protocol primitives (TreeMachine, Broadcast,
// Convergecast, ArgMinConvergecast) through minimal harness processes, plus
// the DistanceMatrix container.
#include <gtest/gtest.h>

#include <memory>

#include "congest/engine.h"
#include "core/primitives/aggregation.h"
#include "core/primitives/bfs_process.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

// Harness: tree build only.
class TreeOnly final : public congest::Process {
 public:
  explicit TreeOnly(NodeId id) : id_(id) {}
  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) tree_.handle(ctx, r);
    tree_.advance(ctx);
  }
  bool done() const override { return tree_.finished(id_); }
  TreeMachine tree_;

 private:
  NodeId id_;
};

TEST(TreeMachine, DistancesMatchBfs) {
  for (const auto& [name, g] : testing::small_suite()) {
    congest::Engine e(g);
    e.init([](NodeId v) { return std::make_unique<TreeOnly>(v); });
    e.run();
    const seq::BfsResult want = seq::bfs(g, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(e.process_as<TreeOnly>(v).tree_.dist(), want.dist[v])
          << name << " node " << v;
    }
  }
}

TEST(TreeMachine, RootLearnsExactEcc) {
  for (const auto& [name, g] : testing::small_suite()) {
    congest::Engine e(g);
    e.init([](NodeId v) { return std::make_unique<TreeOnly>(v); });
    e.run();
    EXPECT_EQ(e.process_as<TreeOnly>(0).tree_.root_ecc(), seq::bfs(g, 0).ecc)
        << name;
  }
}

TEST(TreeMachine, ParentsFormValidBfsTree) {
  const Graph g = gen::random_connected(60, 50, 5);
  congest::Engine e(g);
  e.init([](NodeId v) { return std::make_unique<TreeOnly>(v); });
  e.run();
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const auto& tm = e.process_as<TreeOnly>(v).tree_;
    ASSERT_NE(tm.parent_index(), kNoParent);
    const NodeId parent = g.neighbors(v)[tm.parent_index()];
    EXPECT_EQ(e.process_as<TreeOnly>(parent).tree_.dist() + 1, tm.dist());
  }
}

TEST(TreeMachine, ChildrenAreConsistentWithParents) {
  const Graph g = gen::grid(6, 7);
  congest::Engine e(g);
  e.init([](NodeId v) { return std::make_unique<TreeOnly>(v); });
  e.run();
  // v's children list: exactly the nodes whose parent is v.
  std::size_t total_children = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& tm = e.process_as<TreeOnly>(v).tree_;
    for (const std::uint32_t ci : tm.children()) {
      const NodeId child = g.neighbors(v)[ci];
      const auto& cm = e.process_as<TreeOnly>(child).tree_;
      EXPECT_EQ(g.neighbors(child)[cm.parent_index()], v);
    }
    total_children += tm.children().size();
  }
  EXPECT_EQ(total_children, g.num_nodes() - 1u);  // a spanning tree
}

TEST(TreeMachine, CompletesInLinearDiameterRounds) {
  for (const auto& [name, g] : testing::medium_suite()) {
    congest::Engine e(g);
    e.init([](NodeId v) { return std::make_unique<TreeOnly>(v); });
    const congest::RunStats s = e.run();
    const std::uint32_t ecc = seq::bfs(g, 0).ecc;
    EXPECT_LE(s.rounds, 2 * std::uint64_t{ecc} + 8) << name;
  }
}

TEST(TreeMachine, CycleEvidenceIffNotTree) {
  for (const auto& [name, g] : testing::small_suite()) {
    congest::Engine e(g);
    e.init([](NodeId v) { return std::make_unique<TreeOnly>(v); });
    e.run();
    const bool is_tree = g.num_edges() + 1 == g.num_nodes();
    EXPECT_EQ(e.process_as<TreeOnly>(0).tree_.root_cycle_evidence(), !is_tree)
        << name;
  }
}

TEST(TreeMachine, MarkedCountSumsMarks) {
  const Graph g = gen::balanced_tree(40, 3);
  congest::Engine e(g);
  // Mark every third node.
  class Marked final : public congest::Process {
   public:
    Marked(NodeId id, bool m) : tree_(m), id_(id) {}
    void on_round(congest::RoundCtx& ctx) override {
      for (const congest::Received& r : ctx.inbox()) tree_.handle(ctx, r);
      tree_.advance(ctx);
    }
    bool done() const override { return tree_.finished(id_); }
    TreeMachine tree_;

   private:
    NodeId id_;
  };
  e.init([](NodeId v) { return std::make_unique<Marked>(v, v % 3 == 0); });

  e.run();
  std::uint32_t want = 0;
  for (NodeId v = 0; v < 40; ++v) want += (v % 3 == 0) ? 1 : 0;
  EXPECT_EQ(e.process_as<Marked>(0).tree_.root_marked_count(), want);
}

// Harness: tree build, then a broadcast from the root and a convergecast of
// per-node values.
class BcastConv final : public congest::Process {
 public:
  BcastConv(NodeId id, std::uint32_t value)
      : id_(id), value_(value), bcast_(7),
        conv_(8, Convergecast::Op::kMax, Convergecast::Op::kMin,
              Convergecast::Op::kSum) {}

  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      if (bcast_.handle(r)) continue;
      conv_.handle(r);
    }
    tree_.advance(ctx);
    if (id_ == 0 && tree_.root_complete() && !started_) {
      started_ = true;
      bcast_.start(11, 22, 33);
    }
    bcast_.advance(ctx, tree_);
    if (bcast_.delivered() && !armed_) {
      armed_ = true;
      conv_.arm(value_, value_, 1);  // sums must stay < 2n (wire width)
    }
    if (armed_) conv_.advance(ctx, tree_);
  }
  bool done() const override {
    return id_ == 0 ? conv_.complete() : (armed_ && conv_.idle());
  }

  NodeId id_;
  std::uint32_t value_;
  TreeMachine tree_;
  Broadcast bcast_;
  Convergecast conv_;
  bool started_ = false;
  bool armed_ = false;
};

TEST(BroadcastConvergecast, DeliversAndAggregates) {
  const Graph g = gen::random_connected(50, 30, 9);
  congest::Engine e(g);
  e.init([](NodeId v) {
    return std::make_unique<BcastConv>(v, v + 10);  // values 10..59
  });
  e.run();
  for (NodeId v = 0; v < 50; ++v) {
    auto& p = e.process_as<BcastConv>(v);
    EXPECT_TRUE(p.bcast_.delivered());
    EXPECT_EQ(p.bcast_.value(0), 11u);
    EXPECT_EQ(p.bcast_.value(1), 22u);
    EXPECT_EQ(p.bcast_.value(2), 33u);
  }
  auto& root = e.process_as<BcastConv>(0);
  EXPECT_EQ(root.conv_.value(0), 59u);            // max
  EXPECT_EQ(root.conv_.value(1), 10u);            // min
  EXPECT_EQ(root.conv_.value(2), 50u);            // sum (count)
}

TEST(BroadcastConvergecast, CompletesInDiameterTime) {
  const Graph g = gen::path(80);
  congest::Engine e(g);
  e.init([](NodeId v) { return std::make_unique<BcastConv>(v, v); });
  const congest::RunStats s = e.run();
  // tree (2*79) + broadcast (79) + convergecast (79) + constants
  EXPECT_LE(s.rounds, 6u * 79u + 16u);
}

// ArgMin harness.
class ArgMinHarness final : public congest::Process {
 public:
  ArgMinHarness(NodeId id, std::uint32_t key, std::uint32_t payload)
      : am_(9), id_(id), key_(key), payload_(payload) {}
  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) {
      if (tree_.handle(ctx, r)) continue;
      am_.handle(r);
    }
    tree_.advance(ctx);
    if (tree_.finished(id_) && !armed_) {
      if (seen_finish_) {
        armed_ = true;
        am_.arm(key_, payload_);
      }
      seen_finish_ = true;
    }
    if (armed_) am_.advance(ctx, tree_);
  }
  bool done() const override {
    return id_ == 0 ? am_.complete() : (armed_ && am_.idle());
  }
  TreeMachine tree_;
  ArgMinConvergecast am_;

 private:
  NodeId id_;
  std::uint32_t key_, payload_;
  bool armed_ = false;
  bool seen_finish_ = false;
};

TEST(ArgMinConvergecast, FindsGlobalMinimumWithPayload) {
  const Graph g = gen::random_connected(40, 25, 3);
  congest::Engine e(g);
  // Key: (id * 7 + 3) % 41 — minimized at some specific node; payload: id.
  e.init([](NodeId v) {
    return std::make_unique<ArgMinHarness>(v, (v * 7 + 3) % 41, v);
  });
  e.run();
  std::uint32_t best_key = 0xffffffffu;
  NodeId best_node = 0;
  for (NodeId v = 0; v < 40; ++v) {
    const std::uint32_t key = (v * 7 + 3) % 41;
    if (key < best_key) {
      best_key = key;
      best_node = v;
    }
  }
  auto& root = e.process_as<ArgMinHarness>(0);
  EXPECT_EQ(root.am_.key(), best_key);
  EXPECT_EQ(root.am_.payload(), best_node);
}

// ---- DistanceMatrix ---------------------------------------------------------

TEST(DistanceMatrix, Basics) {
  DistanceMatrix m(3);
  EXPECT_EQ(m.n(), 3u);
  EXPECT_EQ(m.at(1, 2), kInfDist);
  m.set(1, 2, 7);
  EXPECT_EQ(m.at(1, 2), 7u);
  EXPECT_EQ(m.row(1)[2], 7u);
  EXPECT_EQ(m.max_finite(), 7u);
}

TEST(DistanceMatrix, Equality) {
  DistanceMatrix a(2), b(2);
  EXPECT_EQ(a, b);
  a.set(0, 1, 1);
  EXPECT_NE(a, b);
  b.set(0, 1, 1);
  EXPECT_EQ(a, b);
}

TEST(DistanceMatrix, MaxFiniteIgnoresInfinity) {
  DistanceMatrix m(2);
  EXPECT_EQ(m.max_finite(), 0u);
  m.set(0, 0, 0);
  m.set(0, 1, 5);
  EXPECT_EQ(m.max_finite(), 5u);
}

}  // namespace
}  // namespace dapsp::core
