// Unit and property tests for util/arena.h, plus the steady-state
// zero-allocation guarantee of the flat round engine (DESIGN.md §16).
//
// The whole point of the arena rewrite is that after a warm-up round the
// engine's round loop performs ZERO heap allocations: outboxes, deliveries
// and event buffers reset without freeing, inbox frames reuse their
// capacity, and the worker pool keeps its threads. Two probes pin this:
//
//   * arena_slab_allocations() — a global counter bumped on every BumpArena
//     slab growth;
//   * a replacement global operator new in this binary counting EVERY heap
//     allocation, arena or not.
//
// Both must stay flat across hundreds of steady-state rounds, at 1 and 2
// worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "congest/engine.h"
#include "graph/generators.h"
#include "util/arena.h"

// --- Global allocation counter ------------------------------------------
//
// Replacing operator new in the test binary counts every allocation made by
// any code in the process (gtest included — which is why tests snapshot a
// delta around the measured region rather than asserting a global zero).

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};

std::uint64_t heap_allocations() noexcept {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? align : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dapsp {
namespace {

// --- BumpArena ----------------------------------------------------------

TEST(BumpArena, PushPreservesOrderAndValues) {
  BumpArena<int> a;
  for (int i = 0; i < 100; ++i) a.push(i * 3);
  ASSERT_EQ(a.size(), 100u);
  const std::span<const int> s = a.span();
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(s[i], static_cast<int>(i) * 3);
  }
}

TEST(BumpArena, ResetReusesCapacityAndSlab) {
  BumpArena<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 500; ++i) a.push(i);
  const std::size_t cap = a.capacity();
  const std::uint64_t* slab = a.data();
  const std::uint64_t slabs_before = arena_slab_allocations();

  for (std::uint64_t round = 0; round < 50; ++round) {
    a.reset();
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(a.capacity(), cap);
    for (std::uint64_t i = 0; i < 500; ++i) a.push(i ^ round);
    EXPECT_EQ(a.data(), slab) << "slab must not move on reset/refill";
    EXPECT_EQ(a.span()[499], 499u ^ round);
  }
  EXPECT_EQ(arena_slab_allocations(), slabs_before)
      << "reset/refill within capacity must not touch the slab probe";
}

TEST(BumpArena, GrowthCountsSlabAllocationsAndPreservesContents) {
  const std::uint64_t slabs_before = arena_slab_allocations();
  BumpArena<int> a;
  for (int i = 0; i < 1000; ++i) a.push(i);
  EXPECT_GT(arena_slab_allocations(), slabs_before);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a[static_cast<std::size_t>(i)], i) << "grow lost record " << i;
  }
}

TEST(BumpArena, ReserveThenPushNeverGrows) {
  BumpArena<int> a;
  a.reserve(256);
  const std::uint64_t slabs = arena_slab_allocations();
  for (int i = 0; i < 256; ++i) a.push(i);
  EXPECT_EQ(arena_slab_allocations(), slabs);
}

TEST(BumpArena, MarkDelimitsSegments) {
  BumpArena<int> a;
  a.push(1);
  a.push(2);
  const std::size_t m = a.mark();
  a.push(3);
  a.push(4);
  a.push(5);
  const std::span<const int> seg = a.span(m, a.size() - m);
  ASSERT_EQ(seg.size(), 3u);
  EXPECT_EQ(seg[0], 3);
  EXPECT_EQ(seg[2], 5);
}

TEST(BumpArena, MoveTransfersSlab) {
  BumpArena<int> a;
  for (int i = 0; i < 32; ++i) a.push(i);
  const int* slab = a.data();
  BumpArena<int> b = std::move(a);
  EXPECT_EQ(b.data(), slab);
  ASSERT_EQ(b.size(), 32u);
  EXPECT_EQ(b[31], 31);
}

#if DAPSP_ASAN
TEST(BumpArena, ResetPoisonsRetainedRegion) {
  BumpArena<int> a;
  for (int i = 0; i < 64; ++i) a.push(i);
  const int* slab = a.data();
  EXPECT_FALSE(__asan_address_is_poisoned(slab));
  EXPECT_FALSE(__asan_address_is_poisoned(slab + 63));
  a.reset();
  EXPECT_TRUE(__asan_address_is_poisoned(slab))
      << "reset must poison the retained region so stale spans fault";
  a.push(7);
  EXPECT_FALSE(__asan_address_is_poisoned(slab));
  EXPECT_TRUE(__asan_address_is_poisoned(slab + 1))
      << "only the pushed slot is unpoisoned";
}
#endif

// --- CacheAligned -------------------------------------------------------

TEST(CacheAligned, ElementsNeverShareALine) {
  static_assert(alignof(CacheAligned<std::uint32_t>) == kCacheLineBytes);
  static_assert(sizeof(CacheAligned<std::uint32_t>) % kCacheLineBytes == 0);
  std::vector<CacheAligned<std::uint32_t>> v(4);
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&v[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&v[i + 1]);
    EXPECT_EQ(a % kCacheLineBytes, 0u);
    EXPECT_GE(b - a, kCacheLineBytes);
  }
}

// --- Bitset -------------------------------------------------------------

TEST(Bitset, SetTestUnset) {
  Bitset b;
  b.resize(200);
  EXPECT_EQ(b.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(b.test(i));
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(1));
  EXPECT_FALSE(b.test(128));
  b.unset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_TRUE(b.test(63));
}

TEST(Bitset, EnsureGrowsWithoutClearing) {
  Bitset b;
  b.resize(64);
  b.set(10);
  b.ensure(1024);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_TRUE(b.test(10));
  EXPECT_FALSE(b.test(1023));
  b.ensure(512);  // shrinking request is a no-op
  EXPECT_EQ(b.size(), 1024u);
}

TEST(Bitset, ClearPrefixClearsWholeWordsOnly) {
  Bitset b;
  b.resize(256);
  b.set(0);
  b.set(63);
  b.set(127);
  b.set(255);
  b.clear_prefix(64);  // word 0 only
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(63));
  EXPECT_TRUE(b.test(127));
  EXPECT_TRUE(b.test(255));
  b.clear_prefix(65);  // words 0..1
  EXPECT_FALSE(b.test(127));
  EXPECT_TRUE(b.test(255));
  b.clear_all();
  EXPECT_FALSE(b.test(255));
}

// --- Engine steady state ------------------------------------------------

// Constant traffic forever: one 1-field message per edge per round, so
// inbox/outbox/delivery capacities stabilize after the first round and the
// round loop must then run allocation-free.
class Chatter final : public congest::Process {
 public:
  void on_round(congest::RoundCtx& ctx) override {
    heard_ += ctx.inbox().size();
    ctx.send_all(congest::Message::make(1, 1));
  }
  bool done() const override { return false; }

 private:
  std::size_t heard_ = 0;
};

TEST(ArenaSteadyState, EngineRoundLoopDoesNotAllocate) {
  const Graph g = gen::grid(8, 8);
  for (const std::uint32_t threads : {1u, 2u}) {
    congest::EngineConfig cfg;
    cfg.threads = threads;
    cfg.max_rounds = 1000000;
    congest::Engine eng(g, cfg);
    eng.init([](NodeId) { return std::make_unique<Chatter>(); });

    eng.run_rounds(64);  // warm-up: capacities reach their fixed point

    const std::uint64_t slabs = arena_slab_allocations();
    const std::uint64_t news = heap_allocations();
    eng.run_rounds(256);
    EXPECT_EQ(arena_slab_allocations() - slabs, 0u)
        << "threads=" << threads << ": arena slab grew in steady state";
    EXPECT_EQ(heap_allocations() - news, 0u)
        << "threads=" << threads
        << ": heap allocation inside the steady-state round loop";
  }
}

// Same property under transport faults: duplication and delay route
// messages through the delay ring, which must also reach a fixed point.
TEST(ArenaSteadyState, FaultyRoundLoopDoesNotAllocate) {
  const Graph g = gen::grid(6, 6);
  congest::EngineConfig cfg;
  cfg.max_rounds = 1000000;
  congest::FaultPlan plan;
  plan.seed = 42;
  plan.drop_prob = 0.1;
  plan.duplicate_prob = 0.2;
  plan.delay_prob = 0.2;
  plan.max_extra_delay = 4;
  cfg.faults = plan;
  congest::Engine eng(g, cfg);
  eng.init([](NodeId) { return std::make_unique<Chatter>(); });

  // Warm-up: under faults the delivery high-water mark drifts up as rare
  // coincidences (duplicates + delayed arrivals landing together) set new
  // maxima, so capacities need longer to reach their fixed point. The fault
  // stream is a pure function of (seed, node, round), so this length is
  // deterministic, not a flakiness knob.
  eng.run_rounds(1024);

  const std::uint64_t slabs = arena_slab_allocations();
  const std::uint64_t news = heap_allocations();
  eng.run_rounds(256);
  EXPECT_EQ(arena_slab_allocations() - slabs, 0u);
  EXPECT_EQ(heap_allocations() - news, 0u);
}

}  // namespace
}  // namespace dapsp
