// The sharded engine's determinism contract (DESIGN.md §11): every
// observable output — harvested tables, aggregates, and the full RunStats
// line (messages, bits, per-edge/node maxima, fault counters) — is
// byte-identical at every EngineConfig::threads value, on fault-free and
// faulty runs alike, with and without the reliable layer and send observers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include <filesystem>

#include "congest/engine.h"
#include "congest/faults.h"
#include "congest/reliable.h"
#include "core/durable.h"
#include "core/pebble_apsp.h"
#include "core/repair.h"
#include "core/ssp.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "testing/suite.h"

namespace dapsp::congest {
namespace {

const std::uint32_t kThreadCounts[] = {1, 2, 8};

// A BFS flood from node 0 that keeps correcting itself: re-floods whenever a
// better distance arrives, so faulty transports produce long, fault-shaped
// traces — a good determinism probe.
class Flood final : public Process {
 public:
  explicit Flood(NodeId id) : dist_(id == 0 ? 0 : kInfDist) {}

  void on_round(RoundCtx& ctx) override {
    bool improved = dist_ == 0 && ctx.round() == 0;
    for (const Received& r : ctx.inbox()) {
      if (r.msg.f[0] + 1 < dist_) {
        dist_ = r.msg.f[0] + 1;
        improved = true;
      }
    }
    if (improved) ctx.send_all(Message::make(1, dist_));
    ran_ = true;  // quiescent once no corrections are in flight
  }
  bool done() const override { return ran_; }

  std::uint32_t dist() const { return dist_; }

 private:
  std::uint32_t dist_;
  bool ran_ = false;
};

struct FloodRun {
  std::string stats;
  std::string status;
  std::vector<std::uint32_t> dist;
};

FloodRun run_flood(const Graph& g, EngineConfig cfg, std::uint32_t threads) {
  cfg.threads = threads;
  cfg.max_rounds = 200000;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Flood>(v); });
  const Outcome out = e.run_bounded();
  FloodRun run;
  run.stats = out.stats.debug_string();
  run.status = std::string(to_string(out.status)) + " " + out.message;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    run.dist.push_back(
        dynamic_cast<const Flood&>(e.process(v).underlying()).dist());
  }
  return run;
}

// --- Fault-free algorithm runs over the whole small suite ---------------

TEST(Determinism, PebbleApspAcrossThreadCounts) {
  for (const auto& [name, g] : testing::small_suite()) {
    core::ApspOptions opt;
    opt.engine.threads = 1;
    const core::ApspResult ref = core::run_pebble_apsp(g, opt);
    for (const std::uint32_t t : {2u, 8u}) {
      opt.engine.threads = t;
      const core::ApspResult r = core::run_pebble_apsp(g, opt);
      ASSERT_EQ(r.stats.debug_string(), ref.stats.debug_string())
          << name << " threads=" << t;
      ASSERT_EQ(r.dist, ref.dist) << name << " threads=" << t;
      ASSERT_EQ(r.ecc, ref.ecc) << name << " threads=" << t;
      ASSERT_EQ(r.girth, ref.girth) << name << " threads=" << t;
      ASSERT_EQ(r.next_hop, ref.next_hop) << name << " threads=" << t;
    }
  }
}

TEST(Determinism, SspAcrossThreadCounts) {
  for (const auto& [name, g] : testing::small_suite()) {
    // Every third node a source (at least one).
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < g.num_nodes(); v += 3) sources.push_back(v);
    core::SspOptions opt;
    opt.engine.threads = 1;
    const core::SspResult ref = core::run_ssp(g, sources, opt);
    for (const std::uint32_t t : {2u, 8u}) {
      opt.engine.threads = t;
      const core::SspResult r = core::run_ssp(g, sources, opt);
      ASSERT_EQ(r.stats.debug_string(), ref.stats.debug_string())
          << name << " threads=" << t;
      ASSERT_EQ(r.delta, ref.delta) << name << " threads=" << t;
    }
  }
}

// --- Faulty transports --------------------------------------------------

// Three fault plans spanning the injector's feature space. Every plan keeps
// node 0 alive (it is the flood root).
EngineConfig lossy_config() {
  FaultPlan plan;
  plan.seed = 9001;
  plan.drop_prob = 0.25;
  plan.duplicate_prob = 0.15;
  plan.delay_prob = 0.2;
  plan.max_extra_delay = 4;
  EngineConfig cfg;
  cfg.faults = plan;
  return cfg;
}

EngineConfig structural_config(const Graph& g) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.drop_prob = 0.05;
  // Fail the lexicographically first edge at round 3; crash the last node at
  // round 5.
  plan.link_failures.push_back({g.edges()[0].u, g.edges()[0].v, 3});
  plan.crashes.push_back({g.num_nodes() - 1, 5});
  EngineConfig cfg;
  cfg.faults = plan;
  return cfg;
}

EngineConfig reliable_lossy_config() {
  EngineConfig cfg = lossy_config();
  apply_reliable(cfg);
  return cfg;
}

// Exercises the PR-5 fault classes: payload corruption (base + per-edge
// override) and a transient stall, on top of loss.
EngineConfig chaos_config(const Graph& g) {
  FaultPlan plan;
  plan.seed = 777;
  plan.drop_prob = 0.1;
  plan.duplicate_prob = 0.1;
  plan.corrupt_prob = 0.3;
  plan.edge_corrupt_overrides.push_back({g.edges()[0].u, g.edges()[0].v, 0.9});
  plan.stalls.push_back({g.num_nodes() / 2, 2, 3});
  EngineConfig cfg;
  cfg.faults = plan;
  return cfg;
}

EngineConfig reliable_chaos_config(const Graph& g) {
  EngineConfig cfg = chaos_config(g);
  apply_reliable(cfg);
  return cfg;
}

std::vector<Graph> fault_graphs() {
  std::vector<Graph> out;
  out.push_back(gen::grid(4, 5));
  out.push_back(gen::petersen());
  out.push_back(gen::random_connected(24, 20, 33));
  return out;
}

TEST(Determinism, FaultyRunsAcrossThreadCounts) {
  for (const Graph& g : fault_graphs()) {
    const EngineConfig plans[] = {lossy_config(), structural_config(g),
                                  reliable_lossy_config(), chaos_config(g),
                                  reliable_chaos_config(g)};
    int plan_no = 0;
    for (const EngineConfig& cfg : plans) {
      ++plan_no;
      const FloodRun ref = run_flood(g, cfg, 1);
      for (const std::uint32_t t : {2u, 8u}) {
        const FloodRun r = run_flood(g, cfg, t);
        ASSERT_EQ(r.stats, ref.stats)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
        ASSERT_EQ(r.status, ref.status)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
        ASSERT_EQ(r.dist, ref.dist)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
      }
    }
  }
}

// Faulty runs must also be repeatable at a fixed thread count (the injector
// holds no mutable state; two runs share nothing).
TEST(Determinism, FaultyRunsAreRepeatable) {
  const Graph g = gen::random_connected(20, 15, 7);
  for (const std::uint32_t t : kThreadCounts) {
    const FloodRun a = run_flood(g, lossy_config(), t);
    const FloodRun b = run_flood(g, lossy_config(), t);
    ASSERT_EQ(a.stats, b.stats) << "threads=" << t;
    ASSERT_EQ(a.dist, b.dist) << "threads=" << t;
  }
}

// --- Degraded runs and their repair -------------------------------------

// A full chaos campaign — crash + drops + corruption, wrapped, degraded,
// then repaired — must be byte-identical at every thread count, both in the
// degraded harvest and in every repair output (suspects, rounds, coverage
// histograms, certificate).
TEST(Determinism, RepairCampaignAcrossThreadCounts) {
  const Graph g = gen::grid(4, 5);
  auto campaign = [&](std::uint32_t threads) {
    core::ApspOptions opt;
    opt.engine.threads = threads;
    opt.engine.max_rounds = 1000000;
    FaultPlan plan;
    plan.seed = 31415;
    plan.drop_prob = 0.1;
    plan.corrupt_prob = 0.25;
    plan.crashes.push_back({g.num_nodes() / 2, 60});
    opt.engine.faults = plan;
    apply_reliable(opt.engine);
    core::ApspResult r = core::run_pebble_apsp(g, opt);
    core::RepairOptions ropt;
    ropt.engine.threads = threads;
    const core::RepairReport report = core::repair_apsp(g, r, ropt);
    std::string digest = r.stats.debug_string();
    digest += "|" + report.debug_string();
    digest += "|suspects:";
    for (const NodeId s : report.suspect_sources) {
      digest += std::to_string(s) + ",";
    }
    digest += "|" + report.stats.debug_string();
    return std::make_tuple(std::move(digest), r.dist, r.next_hop);
  };
  const auto ref = campaign(1);
  ASSERT_EQ(std::get<1>(ref), std::get<1>(ref));  // sanity: comparable
  for (const std::uint32_t t : {2u, 8u}) {
    const auto run = campaign(t);
    ASSERT_EQ(std::get<0>(run), std::get<0>(ref)) << "threads=" << t;
    ASSERT_EQ(std::get<1>(run), std::get<1>(ref)) << "threads=" << t;
    ASSERT_EQ(std::get<2>(run), std::get<2>(ref)) << "threads=" << t;
  }
}

// --- The send-observer path (serial phase-B accounting) -----------------

TEST(Determinism, ObserverSeesGlobalSendOrderAtEveryThreadCount) {
  const Graph g = gen::grid(4, 4);
  std::vector<std::string> traces;
  for (const std::uint32_t t : kThreadCounts) {
    std::string trace;
    EngineConfig cfg;
    cfg.threads = t;
    cfg.send_observer = [&trace](const SendEvent& ev) {
      trace += std::to_string(ev.round) + ":" + std::to_string(ev.from) +
               ">" + std::to_string(ev.to) + ";";
    };
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<Flood>(v); });
    const RunStats stats = e.run();
    trace += "|" + stats.debug_string();
    traces.push_back(std::move(trace));
  }
  ASSERT_EQ(traces[0], traces[1]);
  ASSERT_EQ(traces[0], traces[2]);
}

// Errors must not depend on the shard partition: the congestion violation of
// the smallest offending node is the one reported, at every thread count.
TEST(Determinism, CongestionErrorIsPartitionIndependent) {
  // Every node spams its neighbors far past the budget in round 0.
  class Spammer final : public Process {
   public:
    void on_round(RoundCtx& ctx) override {
      if (ctx.round() == 0) {
        for (int k = 0; k < 64; ++k) {
          ctx.send_all(Message::make(2, 1, 2));
        }
      }
      ran_ = true;
    }
    bool done() const override { return ran_; }

   private:
    bool ran_ = false;
  };

  const Graph g = gen::complete(12);
  std::vector<std::string> errors;
  for (const std::uint32_t t : kThreadCounts) {
    EngineConfig cfg;
    cfg.threads = t;
    Engine e(g, cfg);
    e.init([](NodeId) { return std::make_unique<Spammer>(); });
    try {
      e.run();
      FAIL() << "expected CongestionError at threads=" << t;
    } catch (const CongestionError& err) {
      errors.emplace_back(err.what());
    }
  }
  ASSERT_EQ(errors[0], errors[1]);
  ASSERT_EQ(errors[0], errors[2]);
}

TEST(Determinism, DurableRecoveryReplayAcrossThreadCounts) {
  namespace fs = std::filesystem;
  const Graph g = gen::random_connected(12, 6, 7);
  DeltaPlanConfig pc;
  pc.seed = 3;
  pc.max_batch = 3;
  pc.crash_prob = 0.1;
  pc.corrupt_prob = 0.1;

  // Build a durable state: checkpoint rotation lands at epoch 6, then four
  // more acknowledged epochs stay journal-only — a real suffix to replay.
  const std::string dir = ::testing::TempDir() + "det_durable";
  fs::remove_all(dir);
  {
    core::DurableConfig dc;
    dc.dir = dir;
    dc.checkpoint_every = 6;
    core::DurableDapspService d(g, dc);
    DeltaPlan plan(pc);
    for (int u = 0; u < 10; ++u) {
      const ChurnBatch b = plan.next(d.service().dynamic_graph());
      const std::uint64_t words[3] = {plan.rng_state(),
                                      plan.batches_generated(),
                                      static_cast<std::uint64_t>(u + 1)};
      d.ack_and_step(b, words);
    }
  }  // dropped without a final rotation, like a crash after epoch 10's ack

  // Recovery replays the journal suffix through the repair ladder; the
  // recovered checkpoint must be bit-identical at every thread count.
  std::vector<std::vector<std::uint8_t>> blobs;
  for (const std::uint32_t t : kThreadCounts) {
    const std::string copy = dir + "_t" + std::to_string(t);
    fs::remove_all(copy);
    fs::copy(dir, copy, fs::copy_options::recursive);
    core::DurableConfig dc;
    dc.dir = copy;
    dc.service.engine.threads = t;
    core::RecoveryReport rr;
    core::DurableDapspService d =
        core::DurableDapspService::recover(dc, &g, &rr);
    EXPECT_EQ(rr.checkpoint_epoch, 6u) << "threads " << t;
    EXPECT_EQ(rr.recovered_epoch, 10u) << "threads " << t;
    EXPECT_EQ(rr.batches_replayed, 4u) << "threads " << t;
    blobs.push_back(d.service().checkpoint_blob(d.plan_words()));
  }
  ASSERT_EQ(blobs.size(), 3u);
  EXPECT_EQ(blobs[0], blobs[1]);
  EXPECT_EQ(blobs[0], blobs[2]);
}

// --- Large-n determinism over the flat engine (DESIGN.md §16) -----------
//
// The flat rewrite's riskiest surface is scale: thousands of nodes sharded
// across 8 workers, arena capacities growing mid-run, inbox frames
// scattering tens of thousands of messages per round. A 4096-node random
// graph and a 64x64 grid pin the determinism contract at that size — small
// graphs can mask shard-merge bugs because every shard fits one worker.

TEST(Determinism, LargeGraphsAcrossThreadCounts) {
  const Graph graphs[] = {gen::random_connected(4096, 8192, 99),
                          gen::grid(64, 64)};
  for (const Graph& g : graphs) {
    // Faults make the merge order load-bearing: drops, duplicates and
    // delays are drawn per (node, round), so any shard skew shows up in
    // stats and distances immediately.
    const EngineConfig cfg = lossy_config();
    const FloodRun ref = run_flood(g, cfg, 1);
    for (const std::uint32_t t : {2u, 8u}) {
      const FloodRun r = run_flood(g, cfg, t);
      ASSERT_EQ(r.status, ref.status) << g.summary() << " threads=" << t;
      ASSERT_EQ(r.stats, ref.stats) << g.summary() << " threads=" << t;
      ASSERT_EQ(r.dist, ref.dist) << g.summary() << " threads=" << t;
    }
  }
}

// The traced path at scale: per-shard event arenas merged in fixed sender
// order must reproduce the exact event stream at every thread count. The
// stream is compared by digest (count + order-sensitive hash of every
// field) — materializing multi-megabyte JSONL three times would only slow
// the suite without tightening the check.
TEST(Determinism, LargeGraphTracedRunsAreIdentical) {
  const Graph g = gen::random_connected(4096, 8192, 99);
  std::vector<std::pair<std::size_t, std::uint64_t>> digests;
  for (const std::uint32_t t : kThreadCounts) {
    TraceLog log;
    EngineConfig cfg = lossy_config();
    cfg.trace = &log;
    cfg.threads = t;
    cfg.max_rounds = 200000;
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<Flood>(v); });
    e.run_bounded();
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over event fields
    const auto mix = [&h](std::uint64_t x) {
      h = (h ^ x) * 1099511628211ull;
    };
    for (const TraceEvent& ev : log.events()) {
      mix(static_cast<std::uint64_t>(ev.kind));
      mix(ev.node);
      mix(ev.peer);
      mix(ev.round);
      mix(ev.aux);
      mix(ev.msg.kind);
      mix(ev.msg.num_fields);
      for (const std::uint32_t f : ev.msg.f) mix(f);
    }
    digests.emplace_back(log.events().size(), h);
  }
  ASSERT_EQ(digests[0], digests[1]);
  ASSERT_EQ(digests[0], digests[2]);
}

}  // namespace
}  // namespace dapsp::congest
