// Lemma 7 (exact girth), Theorem 5 ((x,1+eps)-girth) and the Corollary 2
// selector.
#include <gtest/gtest.h>

#include "core/combined.h"
#include "core/girth.h"
#include "core/girth_approx.h"
#include "graph/generators.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

TEST(GirthExact, MatchesOracleOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    const GirthRun r = run_girth(g);
    EXPECT_EQ(r.girth, seq::girth(g)) << name;
    EXPECT_EQ(r.was_tree, seq::is_tree(g)) << name;
  }
}

TEST(GirthExact, KnownGirths) {
  EXPECT_EQ(run_girth(gen::cycle(9)).girth, 9u);
  EXPECT_EQ(run_girth(gen::petersen()).girth, 5u);
  EXPECT_EQ(run_girth(gen::complete_bipartite(3, 4)).girth, 4u);
  EXPECT_EQ(run_girth(gen::hypercube(4)).girth, 4u);
  EXPECT_EQ(run_girth(gen::complete(5)).girth, 3u);
}

TEST(GirthExact, TreesShortCircuitInDiameterTime) {
  const Graph g = gen::balanced_tree(127, 2);
  const GirthRun r = run_girth(g);
  EXPECT_EQ(r.girth, seq::kInfGirth);
  EXPECT_TRUE(r.was_tree);
  // Only the Claim 1 check ran: O(D), far below the O(n) of Algorithm 1.
  EXPECT_LE(r.stats.rounds, 80u);
}

TEST(GirthExact, GirthControlledFamily) {
  for (const NodeId girth : {3u, 4u, 6u, 9u, 12u}) {
    const Graph g = gen::tree_with_cycle(80, girth, 1);
    EXPECT_EQ(run_girth(g).girth, girth) << girth;
  }
}

TEST(GirthApprox, WithinRatioOnSuite) {
  const double eps = 0.5;
  for (const auto& [name, g] : testing::small_suite()) {
    GirthApproxOptions opt;
    opt.epsilon = eps;
    const GirthApproxResult r = run_girth_approx(g, opt);
    const std::uint32_t truth = seq::girth(g);
    if (truth == seq::kInfGirth) {
      EXPECT_TRUE(r.was_tree) << name;
      continue;
    }
    EXPECT_GE(r.girth_estimate, truth) << name;
    EXPECT_LE(r.girth_estimate, static_cast<double>(truth) * (1.0 + eps) + 1e-9)
        << name;
  }
}

TEST(GirthApprox, MediumSuite) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const GirthApproxResult r = run_girth_approx(g);
    const std::uint32_t truth = seq::girth(g);
    if (truth == seq::kInfGirth) {
      EXPECT_TRUE(r.was_tree) << name;
      continue;
    }
    EXPECT_GE(r.girth_estimate, truth) << name;
    EXPECT_LE(r.girth_estimate, 1.5 * truth + 1e-9) << name;
  }
}

TEST(GirthApprox, TightEpsilon) {
  const Graph g = gen::tree_with_cycle(150, 9, 2);
  GirthApproxOptions opt;
  opt.epsilon = 0.12;
  const GirthApproxResult r = run_girth_approx(g, opt);
  EXPECT_GE(r.girth_estimate, 9u);
  EXPECT_LE(r.girth_estimate, 10u);  // 9 * 1.12
}

TEST(GirthApprox, IterationsRefine) {
  // Large diameter, small girth: several refinement iterations expected,
  // with weakly decreasing estimates.
  const Graph g = gen::tree_with_cycle(200, 4, 3);
  const GirthApproxResult r = run_girth_approx(g);
  EXPECT_GE(r.iterations.size(), 1u);
  for (std::size_t i = 1; i < r.iterations.size(); ++i) {
    EXPECT_LE(r.iterations[i].witness, r.iterations[i - 1].witness + 0u);
  }
}

TEST(GirthApprox, TreeDetectedCheaply) {
  const GirthApproxResult r = run_girth_approx(gen::path(100));
  EXPECT_TRUE(r.was_tree);
  EXPECT_EQ(r.girth_estimate, seq::kInfGirth);
  EXPECT_TRUE(r.iterations.empty());
}

TEST(GirthApprox, InvalidEpsilonThrows) {
  EXPECT_THROW(run_girth_approx(gen::cycle(5), {.epsilon = 0.0}),
               std::invalid_argument);
}

TEST(CombinedGirth, SelectorCorrectOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    const CombinedGirthResult r = run_combined_girth_approx(g);
    const std::uint32_t truth = seq::girth(g);
    if (truth == seq::kInfGirth) {
      EXPECT_EQ(r.estimate, seq::kInfGirth) << name;
      continue;
    }
    EXPECT_GE(r.estimate, truth) << name;
    EXPECT_LE(r.estimate, 1.5 * truth + 1e-9) << name;
  }
}

TEST(CombinedGirth, TotalRoundsLinear) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const CombinedGirthResult r = run_combined_girth_approx(g);
    // O(min{n/g + D log(D/g), n}) <= O(n) with bounded constants.
    EXPECT_LE(r.stats.rounds, 30 * std::uint64_t{g.num_nodes()} + 512) << name;
  }
}

}  // namespace
}  // namespace dapsp::core
