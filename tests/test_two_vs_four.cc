// Algorithm 3 (Theorem 7): distinguishing diameter-2 from diameter-4 graphs
// in O(sqrt(n log n)) rounds.
#include <gtest/gtest.h>

#include "core/two_vs_four.h"
#include "graph/generators.h"
#include "seq/properties.h"

namespace dapsp::core {
namespace {

TEST(TwoVsFour, LowDegreeBranchStar) {
  // Stars have diameter 2 and low-degree leaves.
  for (const NodeId n : {8u, 32u, 100u}) {
    const TwoVsFourResult r = run_two_vs_four(gen::star(n));
    EXPECT_EQ(r.answer, 2u) << n;
    EXPECT_TRUE(r.used_low_degree_branch) << n;
  }
}

TEST(TwoVsFour, LowDegreeBranchDiameter4) {
  for (const NodeId leaves : {4u, 16u, 50u}) {
    const TwoVsFourResult r = run_two_vs_four(gen::diameter4(leaves));
    EXPECT_EQ(r.answer, 4u) << leaves;
    EXPECT_TRUE(r.used_low_degree_branch) << leaves;
  }
}

TEST(TwoVsFour, HighDegreeBranchDense) {
  // Complement of a perfect matching: diameter 2, all degrees n-2.
  for (const NodeId n : {32u, 64u, 128u}) {
    const TwoVsFourResult r = run_two_vs_four(gen::dense_diameter2(n));
    EXPECT_EQ(r.answer, 2u) << n;
    EXPECT_FALSE(r.used_low_degree_branch) << n;
    // The sampled source set is ~sqrt(n log n), well below n.
    EXPECT_LT(r.num_sources, n / 2) << n;
    EXPECT_GT(r.num_sources, 0u) << n;
  }
}

TEST(TwoVsFour, PetersenIsDiameter2) {
  const TwoVsFourResult r = run_two_vs_four(gen::petersen());
  EXPECT_EQ(r.answer, 2u);
}

TEST(TwoVsFour, ManySeedsStable) {
  const Graph g2 = gen::dense_diameter2(48);
  const Graph g4 = gen::diameter4(20);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TwoVsFourOptions opt;
    opt.seed = seed;
    EXPECT_EQ(run_two_vs_four(g2, opt).answer, 2u) << seed;
    EXPECT_EQ(run_two_vs_four(g4, opt).answer, 4u) << seed;
  }
}

TEST(TwoVsFour, CompleteBipartiteDiameter2) {
  const TwoVsFourResult r = run_two_vs_four(gen::complete_bipartite(20, 20));
  EXPECT_EQ(r.answer, 2u);
}

TEST(TwoVsFour, RoundsSublinearOnDense) {
  // Theorem 7: O(sqrt(n log n)) rounds whp. The dense family exercises the
  // sampled branch; rounds must be well below n.
  const NodeId n = 256;
  const TwoVsFourResult r = run_two_vs_four(gen::dense_diameter2(n));
  EXPECT_EQ(r.answer, 2u);
  EXPECT_LE(r.stats.rounds, 4 * std::uint64_t{r.s_threshold} + 64);
  EXPECT_LT(r.stats.rounds, n);
}

TEST(TwoVsFour, RelabeledStar) {
  // Shuffled ids: the elected low-degree node is not node 0.
  const Graph g = gen::star(50).relabeled(99);
  const TwoVsFourResult r = run_two_vs_four(g);
  EXPECT_EQ(r.answer, 2u);
}

TEST(TwoVsFour, LowBranchSourceCount) {
  // In the low branch, |S| = |N1(v*)| = deg(v*) + 1; for a star leaf = 2.
  const TwoVsFourResult r = run_two_vs_four(gen::star(30));
  EXPECT_TRUE(r.used_low_degree_branch);
  EXPECT_EQ(r.num_sources, 2u);
}

}  // namespace
}  // namespace dapsp::core
