#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp {
namespace {

TEST(Graph, EmptyDefault) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, BasicConstruction) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, DuplicateEdgesCollapse) {
  Graph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, NeighborIndex) {
  Graph g(5, {{2, 4}, {2, 0}, {2, 3}});
  EXPECT_EQ(g.neighbor_index(2, 0).value(), 0u);
  EXPECT_EQ(g.neighbor_index(2, 3).value(), 1u);
  EXPECT_EQ(g.neighbor_index(2, 4).value(), 2u);
  EXPECT_FALSE(g.neighbor_index(2, 1).has_value());
}

TEST(Graph, EdgesNormalized) {
  Graph g(4, {{3, 1}, {2, 0}});
  for (const Edge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(Graph, RelabeledIsIsomorphic) {
  const Graph g = gen::random_connected(30, 25, 5);
  std::vector<NodeId> perm;
  const Graph h = g.relabeled(123, &perm);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(h.has_edge(perm[e.u], perm[e.v]));
  }
  // Degree multiset preserved.
  std::vector<std::uint32_t> dg, dh;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

// ---- Generators: known analytic properties --------------------------------

TEST(Generators, Path) {
  const Graph g = gen::path(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_TRUE(seq::is_tree(g));
  EXPECT_EQ(seq::diameter(g), 9u);
  EXPECT_EQ(seq::radius(g), 5u);  // ceil(9/2)
}

TEST(Generators, Cycle) {
  for (NodeId n : {3u, 4u, 9u, 16u}) {
    const Graph g = gen::cycle(n);
    EXPECT_EQ(g.num_edges(), n);
    EXPECT_EQ(seq::diameter(g), n / 2);
    EXPECT_EQ(seq::girth(g), n);
  }
}

TEST(Generators, Complete) {
  const Graph g = gen::complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(seq::diameter(g), 1u);
  EXPECT_EQ(seq::girth(g), 3u);
}

TEST(Generators, Star) {
  const Graph g = gen::star(12);
  EXPECT_EQ(seq::diameter(g), 2u);
  EXPECT_EQ(seq::radius(g), 1u);
  EXPECT_EQ(seq::center(g), std::vector<NodeId>{0});
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(4, 5);
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_EQ(seq::diameter(g), 2u);
  EXPECT_EQ(seq::girth(g), 4u);
}

TEST(Generators, BalancedTreeIsTree) {
  for (std::uint32_t arity : {1u, 2u, 3u, 5u}) {
    const Graph g = gen::balanced_tree(40, arity);
    EXPECT_TRUE(seq::is_tree(g)) << "arity " << arity;
    EXPECT_EQ(seq::girth(g), seq::kInfGirth);
  }
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(4, 7);
  EXPECT_EQ(g.num_nodes(), 28u);
  EXPECT_EQ(seq::diameter(g), 3u + 6u);
  EXPECT_EQ(seq::girth(g), 4u);
}

TEST(Generators, Torus) {
  const Graph g = gen::torus(4, 6);
  EXPECT_EQ(seq::diameter(g), 2u + 3u);
  EXPECT_EQ(seq::girth(g), 4u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, Hypercube) {
  const Graph g = gen::hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_EQ(seq::diameter(g), 5u);
  EXPECT_EQ(seq::girth(g), 4u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, Petersen) {
  const Graph g = gen::petersen();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(seq::diameter(g), 2u);
  EXPECT_EQ(seq::girth(g), 5u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(Generators, Barbell) {
  const Graph g = gen::barbell(5, 4);
  EXPECT_TRUE(seq::is_connected(g));
  EXPECT_EQ(seq::diameter(g), 4u + 2u);
  EXPECT_EQ(seq::girth(g), 3u);
}

TEST(Generators, Lollipop) {
  const Graph g = gen::lollipop(6, 7);
  EXPECT_TRUE(seq::is_connected(g));
  EXPECT_EQ(g.num_nodes(), 13u);
  EXPECT_EQ(seq::diameter(g), 8u);
}

TEST(Generators, ErdosRenyiExtremes) {
  const Graph empty = gen::erdos_renyi(10, 0.0, 1);
  EXPECT_EQ(empty.num_edges(), 0u);
  const Graph full = gen::erdos_renyi(10, 1.0, 1);
  EXPECT_EQ(full.num_edges(), 45u);
}

TEST(Generators, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = gen::random_connected(50, 30, seed);
    EXPECT_TRUE(seq::is_connected(g));
    EXPECT_EQ(g.num_edges(), 49u + 30u);
  }
}

TEST(Generators, CycleWithChords) {
  const Graph g = gen::cycle_with_chords(30, 10, 3);
  EXPECT_TRUE(seq::is_connected(g));
  EXPECT_EQ(g.num_edges(), 40u);
  EXPECT_LE(seq::girth(g), 30u);
}

TEST(Generators, TreeWithCycleGirth) {
  for (NodeId girth : {3u, 5u, 8u, 13u}) {
    const Graph g = gen::tree_with_cycle(60, girth, 1);
    EXPECT_TRUE(seq::is_connected(g));
    EXPECT_EQ(seq::girth(g), girth) << "g=" << girth;
  }
}

TEST(Generators, DenseDiameter2) {
  const Graph g = gen::dense_diameter2(12);
  EXPECT_EQ(seq::diameter(g), 2u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 10u);
}

TEST(Generators, Diameter4) {
  const Graph g = gen::diameter4(5);
  EXPECT_EQ(seq::diameter(g), 4u);
}

TEST(Generators, PathOfCliquesShape) {
  const Graph g = gen::path_of_cliques(5, 6);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_TRUE(seq::is_connected(g));
  EXPECT_EQ(seq::girth(g), 3u);
  // Diameter grows linearly in the number of cliques.
  const Graph h = gen::path_of_cliques(10, 6);
  EXPECT_GT(seq::diameter(h), seq::diameter(g));
}

TEST(Generators, SuiteAllConnected) {
  for (const auto& [name, g] : testing::small_suite()) {
    EXPECT_TRUE(seq::is_connected(g)) << name;
  }
  for (const auto& [name, g] : testing::medium_suite()) {
    EXPECT_TRUE(seq::is_connected(g)) << name;
  }
}

// ---- IO --------------------------------------------------------------------

TEST(Io, RoundTrip) {
  const Graph g = gen::random_connected(25, 20, 99);
  const std::string text = io::to_edge_list(g);
  const Graph h = io::from_edge_list(text);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(h.has_edge(e.u, e.v));
}

TEST(Io, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a comment\n\n3 2 # header\n0 1\n\n# another\n1 2\n";
  const Graph g = io::from_edge_list(text);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, TruncatedThrows) {
  EXPECT_THROW(io::from_edge_list("3 2\n0 1\n"), std::invalid_argument);
  EXPECT_THROW(io::from_edge_list(""), std::invalid_argument);
}

TEST(Io, DotOutputContainsEdges) {
  const Graph g = gen::path(3);
  const std::string dot = io::to_dot(g);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

}  // namespace
}  // namespace dapsp
