#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/bits.h"
#include "util/rng.h"

namespace dapsp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    hit_lo |= v == 3;
    hit_hi |= v == 6;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShufflePermutes) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  Rng rng(19);
  shuffle(w, rng);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), w.begin()));
}

TEST(Bits, BitsFor) {
  EXPECT_EQ(bits_for(0), 1);
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 2);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 3);
  EXPECT_EQ(bits_for(255), 8);
  EXPECT_EQ(bits_for(256), 9);
  EXPECT_EQ(bits_for((1ull << 40) - 1), 40);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1000000), 1000u);
  EXPECT_EQ(isqrt(999999), 999u);
}

TEST(Bits, IsqrtExhaustiveSmall) {
  for (std::uint64_t n = 0; n < 5000; ++n) {
    const std::uint64_t r = isqrt(n);
    EXPECT_LE(r * r, n);
    EXPECT_GT((r + 1) * (r + 1), n);
  }
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

}  // namespace
}  // namespace dapsp
