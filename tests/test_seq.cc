// The sequential oracles themselves, checked on graphs with analytically
// known properties plus brute-force cross-checks.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "seq/aingworth.h"
#include "seq/apsp.h"
#include "seq/bfs.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::seq {
namespace {

TEST(Bfs, PathDistances) {
  const Graph g = gen::path(6);
  const BfsResult r = bfs(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.ecc, 5u);
  EXPECT_EQ(r.parent[0], BfsResult::kInfParent);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(r.parent[v], v - 1);
}

TEST(Bfs, DisconnectedInfinity) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_EQ(r.dist[3], kInfDist);
}

TEST(Bfs, LimitedDepth) {
  const Graph g = gen::path(10);
  const BfsResult r = bfs_limited(g, 0, 3);
  EXPECT_EQ(r.dist[3], 3u);
  EXPECT_EQ(r.dist[4], kInfDist);
  EXPECT_EQ(r.ecc, 3u);
}

TEST(Bfs, ParentIsShortestPredecessor) {
  const Graph g = gen::grid(4, 4);
  const BfsResult r = bfs(g, 0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const NodeId p = r.parent[v];
    ASSERT_NE(p, BfsResult::kInfParent);
    EXPECT_EQ(r.dist[v], r.dist[p] + 1);
    EXPECT_TRUE(g.has_edge(p, v));
  }
}

TEST(Apsp, MatchesBfsRows) {
  const Graph g = gen::random_connected(30, 25, 3);
  const DistanceMatrix m = apsp(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const BfsResult r = bfs(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(m.at(u, v), r.dist[v]);
    }
  }
}

TEST(Apsp, Symmetric) {
  for (const auto& [name, g] : testing::small_suite()) {
    const DistanceMatrix m = apsp(g);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        EXPECT_EQ(m.at(u, v), m.at(v, u)) << name;
      }
    }
  }
}

TEST(Apsp, TriangleInequality) {
  const Graph g = gen::random_connected(25, 30, 7);
  const DistanceMatrix m = apsp(g);
  const NodeId n = g.num_nodes();
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      for (NodeId c = 0; c < n; ++c)
        EXPECT_LE(m.at(a, c), m.at(a, b) + m.at(b, c));
}

TEST(Properties, EccentricityFactsHold) {
  // Fact 1: ecc(u) <= D <= 2 ecc(u) for every u; rad <= D <= 2 rad.
  for (const auto& [name, g] : testing::small_suite()) {
    const auto ecc = eccentricities(g);
    const std::uint32_t diam = *std::max_element(ecc.begin(), ecc.end());
    const std::uint32_t rad = *std::min_element(ecc.begin(), ecc.end());
    EXPECT_EQ(diam, diameter(g)) << name;
    EXPECT_EQ(rad, radius(g)) << name;
    for (const std::uint32_t e : ecc) {
      EXPECT_LE(e, diam) << name;
      EXPECT_LE(diam, 2 * e) << name;
    }
    EXPECT_LE(rad, diam) << name;
    EXPECT_LE(diam, 2 * rad) << name;
  }
}

TEST(Properties, CenterAndPeripheralConsistent) {
  for (const auto& [name, g] : testing::small_suite()) {
    const auto ecc = eccentricities(g);
    const std::uint32_t diam = diameter(g);
    const std::uint32_t rad = radius(g);
    const auto c = center(g);
    const auto p = peripheral_vertices(g);
    EXPECT_FALSE(c.empty()) << name;
    EXPECT_FALSE(p.empty()) << name;
    for (const NodeId v : c) EXPECT_EQ(ecc[v], rad) << name;
    for (const NodeId v : p) EXPECT_EQ(ecc[v], diam) << name;
  }
}

TEST(Properties, CenterOfPathIsMiddle) {
  const Graph g = gen::path(9);
  EXPECT_EQ(center(g), std::vector<NodeId>{4});
  const Graph h = gen::path(10);
  EXPECT_EQ(center(h), (std::vector<NodeId>{4, 5}));
}

TEST(Properties, GirthKnownValues) {
  EXPECT_EQ(girth(gen::cycle(5)), 5u);
  EXPECT_EQ(girth(gen::cycle(12)), 12u);
  EXPECT_EQ(girth(gen::complete(4)), 3u);
  EXPECT_EQ(girth(gen::complete_bipartite(3, 3)), 4u);
  EXPECT_EQ(girth(gen::petersen()), 5u);
  EXPECT_EQ(girth(gen::hypercube(3)), 4u);
  EXPECT_EQ(girth(gen::path(7)), kInfGirth);
  EXPECT_EQ(girth(gen::balanced_tree(20, 2)), kInfGirth);
}

TEST(Properties, GirthBruteForceCrossCheck) {
  // Compare the BFS-witness girth against an independent per-edge
  // computation: remove each edge, girth = min over edges of
  // (1 + shortest path between endpoints without the edge).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::random_connected(18, 12, seed);
    std::uint32_t brute = kInfGirth;
    for (std::size_t skip = 0; skip < g.num_edges(); ++skip) {
      const Edge removed = g.edges()[skip];
      std::vector<Edge> rest;
      for (std::size_t i = 0; i < g.num_edges(); ++i) {
        if (i != skip) rest.push_back(g.edges()[i]);
      }
      const Graph h(g.num_nodes(), rest);
      const BfsResult r = bfs(h, removed.u);
      if (r.dist[removed.v] != kInfDist) {
        brute = std::min(brute, r.dist[removed.v] + 1);
      }
    }
    EXPECT_EQ(girth(g), brute) << "seed=" << seed;
  }
}

TEST(Properties, IsTree) {
  EXPECT_TRUE(is_tree(gen::path(5)));
  EXPECT_TRUE(is_tree(gen::balanced_tree(17, 3)));
  EXPECT_TRUE(is_tree(gen::star(9)));
  EXPECT_FALSE(is_tree(gen::cycle(5)));
  EXPECT_FALSE(is_tree(Graph(4, {{0, 1}, {2, 3}})));  // disconnected forest
}

TEST(Properties, CountWithin) {
  const Graph g = gen::path(10);
  EXPECT_EQ(count_within(g, 0, 0), 1u);
  EXPECT_EQ(count_within(g, 0, 3), 4u);
  EXPECT_EQ(count_within(g, 5, 2), 5u);
  EXPECT_EQ(count_within(g, 0, 100), 10u);
}

TEST(Properties, KDominating) {
  const Graph g = gen::path(10);
  const std::vector<NodeId> mid{5};
  EXPECT_TRUE(is_k_dominating(g, mid, 5));
  EXPECT_FALSE(is_k_dominating(g, mid, 4));
  const std::vector<NodeId> two{2, 7};
  EXPECT_TRUE(is_k_dominating(g, two, 2));
  EXPECT_FALSE(is_k_dominating(g, two, 1));
  const std::vector<NodeId> none{};
  EXPECT_FALSE(is_k_dominating(g, none, 100));
}

TEST(Properties, EccentricitiesFromMatrixAgree) {
  const Graph g = gen::random_connected(40, 20, 2);
  EXPECT_EQ(eccentricities(g), eccentricities(apsp(g)));
}

TEST(Properties, DisconnectedThrows) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(eccentricities(g), std::invalid_argument);
}

// ---- Sequential 2-vs-4 (Algorithm 3 reference) -----------------------------

TEST(Aingworth, LowDegreeBranchOnStar) {
  // A big star has diameter 2 and (many) low-degree nodes.
  const auto r = two_vs_four(gen::star(64), 1);
  EXPECT_EQ(r.answer, 2u);
  EXPECT_TRUE(r.used_low_degree_branch);
}

TEST(Aingworth, Diameter4Detected) {
  const auto r = two_vs_four(gen::diameter4(20), 1);
  EXPECT_EQ(r.answer, 4u);
}

TEST(Aingworth, HighDegreeBranchOnDense) {
  // Complement of a perfect matching: diameter 2, all degrees n-2 >= s.
  const Graph g = gen::dense_diameter2(64);
  const auto r = two_vs_four(g, 1);
  EXPECT_EQ(r.answer, 2u);
  EXPECT_FALSE(r.used_low_degree_branch);
  // The number of BFS runs should be well below n.
  EXPECT_LT(r.bfs_performed, 40u);
}

TEST(Aingworth, ManySeedsConsistent) {
  const Graph g2 = gen::dense_diameter2(32);
  const Graph g4 = gen::diameter4(14);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(two_vs_four(g2, seed).answer, 2u) << seed;
    EXPECT_EQ(two_vs_four(g4, seed).answer, 4u) << seed;
  }
}

TEST(Aingworth, ThresholdMonotone) {
  EXPECT_LT(aingworth_threshold(16), aingworth_threshold(256));
  EXPECT_GE(aingworth_threshold(2), 1u);
}

TEST(Aingworth, LowDegreeSetDefinition) {
  const Graph g = gen::star(10);  // hub degree 9, leaves degree 1
  const auto low = low_degree_nodes(g, 5);
  // Leaves have |N1| = 2 < 5; hub has |N1| = 10.
  EXPECT_EQ(low.size(), 9u);
  EXPECT_TRUE(std::find(low.begin(), low.end(), 0) == low.end());
}

}  // namespace
}  // namespace dapsp::seq
