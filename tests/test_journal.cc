// Write-ahead journal (util/journal.h) and checkpoint store (core/durable.h):
// record round-trips, torn-tail classification and truncate-on-repair across
// every byte offset, refusal to repair foreign files, deterministic
// crash-budget semantics of FileSink, and atomic checkpoint rotation that
// never loses the last-good generation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/durable.h"
#include "core/service.h"
#include "graph/generators.h"
#include "util/journal.h"

namespace dapsp {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_all(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> rec(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> v;
  for (const int b : bytes) v.push_back(static_cast<std::uint8_t>(b));
  return v;
}

// A journal with three known records; returns its path.
std::string make_journal(const std::string& name) {
  const std::string path = temp_path(name);
  fs::remove(path);
  JournalWriter w(path, FileSink::Mode::kTruncate);
  w.append(rec({1, 2, 3}));
  w.append(rec({}));  // empty payloads are legal records
  w.append(rec({9, 8, 7, 6, 5}));
  return path;
}

// ------------------------------------------------------------------- journal

TEST(Journal, RoundTripAndCleanScan) {
  const std::string path = make_journal("rt.wal");
  const JournalScan s = scan_journal(path);
  EXPECT_EQ(s.error, JournalError::kNone);
  ASSERT_EQ(s.records.size(), 3u);
  EXPECT_EQ(s.records[0], rec({1, 2, 3}));
  EXPECT_EQ(s.records[1], rec({}));
  EXPECT_EQ(s.records[2], rec({9, 8, 7, 6, 5}));
  EXPECT_EQ(s.valid_bytes, s.file_bytes);
  EXPECT_FALSE(repair_journal(path));  // clean: untouched
}

TEST(Journal, FreshWriterIsHeaderOnly) {
  const std::string path = temp_path("fresh.wal");
  fs::remove(path);
  { JournalWriter w(path, FileSink::Mode::kTruncate); }
  const JournalScan s = scan_journal(path);
  EXPECT_EQ(s.error, JournalError::kNone);
  EXPECT_TRUE(s.records.empty());
  EXPECT_EQ(s.file_bytes, kJournalHeaderBytes);
}

TEST(Journal, MissingFile) {
  const std::string path = temp_path("missing.wal");
  fs::remove(path);
  EXPECT_EQ(scan_journal(path).error, JournalError::kMissing);
  EXPECT_FALSE(repair_journal(path));
}

// The crash model: any byte prefix of the file can survive. Every prefix
// must classify as clean (record boundary), torn header, or torn tail — and
// repair must recover exactly the whole-record prefix.
TEST(Journal, EveryPrefixClassifiesAndRepairs) {
  const std::string path = make_journal("sweep.wal");
  const std::vector<std::uint8_t> full = read_all(path);
  // Record boundaries: header, then 12 + payload per record.
  std::vector<std::size_t> boundaries = {kJournalHeaderBytes};
  for (const std::size_t p : {3u, 0u, 5u}) {
    boundaries.push_back(boundaries.back() + 12 + p);
  }
  ASSERT_EQ(boundaries.back(), full.size());

  const std::string cut = temp_path("sweep_cut.wal");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_all(cut, std::span<const std::uint8_t>(full.data(), len));
    const JournalScan s = scan_journal(cut);
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= len) {
      ++whole;
    }
    if (len < kJournalHeaderBytes) {
      EXPECT_EQ(s.error, JournalError::kTornHeader) << "len=" << len;
    } else if (len == boundaries[whole]) {
      EXPECT_EQ(s.error, JournalError::kNone) << "len=" << len;
      EXPECT_EQ(s.records.size(), whole) << "len=" << len;
    } else {
      EXPECT_EQ(s.error, JournalError::kTornTail) << "len=" << len;
      EXPECT_EQ(s.records.size(), whole) << "len=" << len;
      EXPECT_EQ(s.valid_bytes, boundaries[whole]) << "len=" << len;
    }
    if (s.error == JournalError::kTornHeader ||
        s.error == JournalError::kTornTail) {
      EXPECT_TRUE(repair_journal(cut)) << "len=" << len;
      const JournalScan after = scan_journal(cut);
      EXPECT_EQ(after.error, len < kJournalHeaderBytes ? JournalError::kMissing
                                                       : JournalError::kNone)
          << "len=" << len;
      if (after.error == JournalError::kNone) {
        EXPECT_EQ(after.records.size(), whole);
      }
    }
  }
}

TEST(Journal, ChecksumDamageCutsThereEvenMidFile) {
  const std::string path = make_journal("bitrot.wal");
  std::vector<std::uint8_t> bytes = read_all(path);
  // Flip a payload byte of record 1 (the empty record's *length* field
  // would also do): everything from record 1 on is dropped.
  const std::size_t r0_end = kJournalHeaderBytes + 12 + 3;
  bytes[r0_end + 4] ^= 0x40;  // inside record 1's checksum field
  write_all(path, bytes);
  const JournalScan s = scan_journal(path);
  EXPECT_EQ(s.error, JournalError::kTornTail);
  ASSERT_EQ(s.records.size(), 1u);
  EXPECT_EQ(s.records[0], rec({1, 2, 3}));
  EXPECT_TRUE(repair_journal(path));
  EXPECT_EQ(scan_journal(path).error, JournalError::kNone);
}

TEST(Journal, ForeignFilesAreRefused) {
  const std::string bad_magic = temp_path("foreign.wal");
  write_all(bad_magic, rec({'N', 'O', 'P', 'E', 1, 0, 0, 0, 5}));
  EXPECT_EQ(scan_journal(bad_magic).error, JournalError::kBadMagic);
  EXPECT_THROW(repair_journal(bad_magic), std::runtime_error);

  const std::string bad_version = temp_path("future.wal");
  write_all(bad_version, rec({'D', 'J', 'R', 'N', 2, 0, 0, 0}));
  EXPECT_EQ(scan_journal(bad_version).error, JournalError::kVersionMismatch);
  EXPECT_THROW(repair_journal(bad_version), std::runtime_error);
  // Both files still intact.
  EXPECT_EQ(read_all(bad_magic).size(), 9u);
  EXPECT_EQ(read_all(bad_version).size(), 8u);
}

TEST(Journal, AppendContinuesARepairedJournal) {
  const std::string path = make_journal("cont.wal");
  std::vector<std::uint8_t> bytes = read_all(path);
  bytes.resize(bytes.size() - 2);  // tear the last record
  write_all(path, bytes);
  EXPECT_TRUE(repair_journal(path));
  {
    JournalWriter w(path, FileSink::Mode::kAppend);
    w.append(rec({42}));
  }
  const JournalScan s = scan_journal(path);
  EXPECT_EQ(s.error, JournalError::kNone);
  ASSERT_EQ(s.records.size(), 3u);  // r0, r1, then the new record
  EXPECT_EQ(s.records[2], rec({42}));
}

// ------------------------------------------------------------------ FileSink

TEST(FileSink, CrashBudgetLeavesTheExactPrefix) {
  const std::string path = temp_path("sink.bin");
  CrashPoint crash;
  crash.kill_at_byte = 10;
  FileSink sink(path, FileSink::Mode::kTruncate, &crash);
  std::vector<std::uint8_t> data(25, 0xab);
  EXPECT_THROW(sink.write(data), CrashPointReached);
  EXPECT_EQ(read_all(path).size(), 10u);
  EXPECT_EQ(crash.written, 10u);
}

TEST(FileSink, BudgetIsSharedAcrossSinks) {
  CrashPoint crash;
  crash.kill_at_byte = 12;
  const std::string p1 = temp_path("sink1.bin");
  const std::string p2 = temp_path("sink2.bin");
  {
    FileSink s1(p1, FileSink::Mode::kTruncate, &crash);
    s1.write(std::vector<std::uint8_t>(8, 1));  // 8 of 12
  }
  FileSink s2(p2, FileSink::Mode::kTruncate, &crash);
  EXPECT_THROW(s2.write(std::vector<std::uint8_t>(8, 2)), CrashPointReached);
  EXPECT_EQ(read_all(p1).size(), 8u);
  EXPECT_EQ(read_all(p2).size(), 4u);  // the remaining budget
}

// ----------------------------------------------------------- CheckpointStore

// A tiny service plus one stepped epoch, for two distinct valid blobs.
struct TwoBlobs {
  std::vector<std::uint8_t> epoch0;
  std::vector<std::uint8_t> epoch1;
};

TwoBlobs make_blobs() {
  core::DapspService svc(gen::path(4), {});
  TwoBlobs b;
  b.epoch0 = svc.checkpoint_blob();
  svc.step({});  // empty batch: clean epoch 1
  b.epoch1 = svc.checkpoint_blob();
  return b;
}

TEST(CheckpointStoreTest, RotationAlternatesSlotsAndLoadsNewest) {
  const std::string base = temp_path("cs_rot");
  fs::remove(base + ".g0");
  fs::remove(base + ".g1");
  const TwoBlobs b = make_blobs();
  core::CheckpointStore store(base);

  store.rotate(b.epoch0);
  core::CheckpointStore::Loaded l = store.load();
  EXPECT_FALSE(l.fallback);
  EXPECT_EQ(l.blob, b.epoch0);

  store.rotate(b.epoch1);
  l = store.load();
  EXPECT_FALSE(l.fallback);
  EXPECT_EQ(l.blob, b.epoch1);  // newest epoch wins
  // Both generations now on disk, both valid.
  EXPECT_EQ(l.slot_errors[0], core::CheckpointError::kNone);
  EXPECT_EQ(l.slot_errors[1], core::CheckpointError::kNone);
}

TEST(CheckpointStoreTest, DamagedNewestFallsBackToPreviousGeneration) {
  const std::string base = temp_path("cs_fb");
  fs::remove(base + ".g0");
  fs::remove(base + ".g1");
  const TwoBlobs b = make_blobs();
  core::CheckpointStore store(base);
  store.rotate(b.epoch0);
  store.rotate(b.epoch1);

  // Find and damage the slot holding the newer blob.
  for (int slot = 0; slot < 2; ++slot) {
    std::vector<std::uint8_t> bytes = read_all(store.slot_path(slot));
    if (core::peek_checkpoint_epoch(bytes) == 1) {
      bytes[bytes.size() / 2] ^= 0x01;
      write_all(store.slot_path(slot), bytes);
    }
  }
  const core::CheckpointStore::Loaded l = store.load();
  EXPECT_TRUE(l.fallback);
  EXPECT_EQ(l.rejected_error, core::CheckpointError::kChecksumMismatch);
  EXPECT_EQ(l.blob, b.epoch0);
}

// The rotation contract: at EVERY byte of a crashed rotation, the previous
// generation still loads.
TEST(CheckpointStoreTest, KilledRotationNeverLosesLastGood) {
  const TwoBlobs b = make_blobs();
  const std::string base = temp_path("cs_kill");
  for (std::uint64_t k = 1; k <= b.epoch1.size(); k += 97) {
    fs::remove(base + ".g0");
    fs::remove(base + ".g1");
    fs::remove(base + ".tmp");
    core::CheckpointStore store(base);
    store.rotate(b.epoch0);

    CrashPoint crash;
    crash.kill_at_byte = k;
    core::CheckpointStore killed(base, &crash);
    EXPECT_THROW(killed.rotate(b.epoch1), CrashPointReached) << "k=" << k;
    core::CheckpointStore::Loaded l = store.load();
    EXPECT_EQ(l.blob, b.epoch0) << "k=" << k;  // last good intact

    // And the retried rotation completes and supersedes it.
    store.rotate(b.epoch1);
    l = store.load();
    EXPECT_EQ(l.blob, b.epoch1) << "k=" << k;
  }
}

}  // namespace
}  // namespace dapsp
