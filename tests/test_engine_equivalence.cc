// Differential verification of the flat-memory engine (DESIGN.md §16).
//
// The production engine rebuilt its hot path around flat memory: per-shard
// bump arenas, a CSR mirror-edge table, and double-buffered flat inbox
// frames. None of that may change a single observable bit. This suite runs
// the production engine — at 1, 2 and 8 threads — differentially against
// tests/testing/reference_engine.h, a deliberately naive per-node
// vector-of-vectors model that shares no machinery with the flat layout,
// over 200+ seeded (graph, fault plan, protocol) configurations:
//
//   * statuses, error strings, every RunStats counter, and the harvested
//     per-node protocol state must match the reference exactly;
//   * the send-observer stream (round-major, sender-major, send order) must
//     be byte-identical to the reference's serial stream;
//   * congestion / field-width / round-limit error paths must surface the
//     same error text from the same node;
//   * the reliable-delivery wrapper must behave identically on both.
//
// Under AddressSanitizer this suite doubles as the arena-reuse check: every
// round resets the per-shard arenas, poisoning their tails (util/arena.h),
// so a stale span read from a previous round faults the run instead of
// silently passing a stale byte into the comparison.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "congest/engine.h"
#include "congest/faults.h"
#include "congest/reliable.h"
#include "graph/generators.h"
#include "testing/reference_engine.h"
#include "util/rng.h"

namespace dapsp::congest {
namespace {

const std::uint32_t kThreadCounts[] = {1, 2, 8};

// A BFS flood from node 0 that re-floods whenever a better distance
// arrives: on faulty transports its behaviour depends on exactly which
// copies arrive in exactly which order, so any divergence in delivery
// content or order shows up in the harvested distances.
class Flood final : public Process {
 public:
  explicit Flood(NodeId id) : dist_(id == 0 ? 0 : kInfDist) {}

  void on_round(RoundCtx& ctx) override {
    bool improved = dist_ == 0 && ctx.round() == 0;
    for (const Received& r : ctx.inbox()) {
      if (r.msg.f[0] + 1 < dist_) {
        dist_ = r.msg.f[0] + 1;
        improved = true;
      }
    }
    if (improved) ctx.send_all(Message::make(1, dist_));
    ran_ = true;
  }
  bool done() const override { return ran_; }

  std::string harvest() const { return std::to_string(dist_); }

 private:
  std::uint32_t dist_;
  bool ran_ = false;
};

// Multi-message traffic: for eight rounds every node sends two messages per
// edge per round (a 2-field payload plus a control ping) — filling most of
// the default bandwidth budget — and folds everything it hears into a
// digest. Exercises multiple sends per (edge, round), multiple fields, and
// inbox order sensitivity (the digest mixes position).
class Gossip final : public Process {
 public:
  explicit Gossip(NodeId id) : id_(id) {}

  void on_round(RoundCtx& ctx) override {
    std::uint32_t pos = 1;
    for (const Received& r : ctx.inbox()) {
      digest_ = digest_ * 31 + r.from_index + pos * r.msg.kind;
      digest_ += r.msg.f[0] ^ (r.msg.f[1] << 1);
      ++pos;
    }
    if (ctx.round() < 8) {
      const std::uint32_t d = ctx.degree();
      for (std::uint32_t i = 0; i < d; ++i) {
        ctx.send(i, Message::make(7, id_ % 200,
                                  static_cast<std::uint32_t>(ctx.round())));
        ctx.send(i, Message::make(3));
      }
    } else {
      done_ = true;
    }
  }
  bool done() const override { return done_; }

  std::string harvest() const { return std::to_string(digest_); }

 private:
  NodeId id_;
  std::uint32_t digest_ = 0;
  bool done_ = false;
};

// Everything one run can be compared by.
struct Digest {
  std::string status;
  std::string stats;
  std::vector<std::string> harvest;
  std::string observed;  // send-observer stream

  bool operator==(const Digest&) const = default;
};

enum class Protocol { kFlood, kGossip };

std::unique_ptr<Process> make_process(Protocol p, NodeId v) {
  if (p == Protocol::kFlood) return std::make_unique<Flood>(v);
  return std::make_unique<Gossip>(v);
}

std::string harvest_process(Protocol p, Process& proc) {
  if (p == Protocol::kFlood) {
    return dynamic_cast<const Flood&>(proc.underlying()).harvest();
  }
  return dynamic_cast<const Gossip&>(proc.underlying()).harvest();
}

EngineConfig with_observer(EngineConfig cfg, std::string* sink) {
  cfg.send_observer = [sink](const SendEvent& ev) {
    *sink += std::to_string(ev.round) + ":" + std::to_string(ev.from) + ">" +
             std::to_string(ev.to) + "." + std::to_string(ev.msg.kind) + ";";
  };
  return cfg;
}

Digest run_reference(const Graph& g, const EngineConfig& cfg, Protocol p) {
  Digest d;
  dapsp::testing::ReferenceEngine eng(g, with_observer(cfg, &d.observed));
  eng.init([&](NodeId v) { return make_process(p, v); });
  const Outcome out = eng.run_bounded();
  d.status = std::string(to_string(out.status)) + "|" + out.message;
  d.stats = out.stats.debug_string();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    d.harvest.push_back(harvest_process(p, eng.process(v)));
  }
  return d;
}

Digest run_flat(const Graph& g, const EngineConfig& cfg, Protocol p,
                std::uint32_t threads) {
  Digest d;
  EngineConfig run_cfg = with_observer(cfg, &d.observed);
  run_cfg.threads = threads;
  Engine eng(g, run_cfg);
  eng.init([&](NodeId v) { return make_process(p, v); });
  const Outcome out = eng.run_bounded();
  d.status = std::string(to_string(out.status)) + "|" + out.message;
  d.stats = out.stats.debug_string();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    d.harvest.push_back(harvest_process(p, eng.process(v)));
  }
  return d;
}

// Seeded instance space: graph shape, fault plan, protocol all derived from
// one seed via the library Rng, so the suite replays bit-for-bit.
Graph graph_for(Rng& r) {
  switch (r.below(5)) {
    case 0: {
      const NodeId n = static_cast<NodeId>(r.between(8, 40));
      return gen::random_connected(n, r.below(2 * n), r());
    }
    case 1:
      return gen::grid(static_cast<NodeId>(r.between(2, 6)),
                       static_cast<NodeId>(r.between(2, 6)));
    case 2:
      return gen::petersen();
    case 3:
      return gen::cycle_with_chords(static_cast<NodeId>(r.between(8, 24)),
                                    r.below(6), r());
    default:
      return gen::barbell(static_cast<NodeId>(r.between(3, 6)),
                          static_cast<NodeId>(r.between(1, 4)));
  }
}

FaultPlan plan_for(Rng& r, const Graph& g) {
  FaultPlan plan;
  plan.seed = r();
  switch (r.below(5)) {
    case 0:  // trivial plan: fault machinery attached, nothing fires
      break;
    case 1:  // lossy
      plan.drop_prob = 0.05 + 0.3 * r.uniform01();
      plan.duplicate_prob = 0.2 * r.uniform01();
      plan.delay_prob = 0.25 * r.uniform01();
      plan.max_extra_delay = static_cast<std::uint32_t>(r.between(1, 5));
      break;
    case 2:  // corrupting + stall
      plan.corrupt_prob = 0.1 + 0.3 * r.uniform01();
      plan.stalls.push_back({static_cast<NodeId>(r.below(g.num_nodes())),
                             r.between(1, 4), r.between(1, 3)});
      plan.edge_corrupt_overrides.push_back(
          {g.edges()[0].u, g.edges()[0].v, 0.9});
      break;
    case 3:  // structural: link failure + crash
      plan.drop_prob = 0.1 * r.uniform01();
      plan.link_failures.push_back({g.edges()[r.below(g.num_edges())].u,
                                    g.edges()[r.below(g.num_edges())].v,
                                    r.between(1, 6)});
      plan.crashes.push_back({static_cast<NodeId>(r.below(g.num_nodes())),
                              r.between(2, 10)});
      break;
    default:  // kitchen sink
      plan.drop_prob = 0.15 * r.uniform01();
      plan.duplicate_prob = 0.15 * r.uniform01();
      plan.delay_prob = 0.15 * r.uniform01();
      plan.max_extra_delay = static_cast<std::uint32_t>(r.between(1, 4));
      plan.corrupt_prob = 0.15 * r.uniform01();
      plan.crashes.push_back({static_cast<NodeId>(r.below(g.num_nodes())),
                              r.between(3, 12)});
      plan.stalls.push_back({static_cast<NodeId>(r.below(g.num_nodes())),
                             r.between(1, 5), r.between(1, 2)});
      break;
  }
  // Fix up a link failure naming a non-edge (the draws above always pick
  // real edges, but two draws may name the same endpoint twice — the
  // injector validates, so keep the plan well-formed).
  for (auto& lf : plan.link_failures) {
    if (!g.has_edge(lf.u, lf.v)) {
      lf.u = g.edges()[0].u;
      lf.v = g.edges()[0].v;
    }
  }
  return plan;
}

// --- The main randomized differential -----------------------------------

TEST(EngineEquivalence, RandomizedDifferentialAgainstReference) {
  constexpr std::uint64_t kConfigs = 200;
  for (std::uint64_t seed = 0; seed < kConfigs; ++seed) {
    Rng r(0x5eed0000 + seed);
    const Graph g = graph_for(r);
    EngineConfig cfg;
    cfg.faults = plan_for(r, g);
    cfg.max_rounds = 100000;
    const Protocol p = r.chance(0.5) ? Protocol::kFlood : Protocol::kGossip;
    const bool reliable = r.chance(0.25);
    if (reliable) apply_reliable(cfg);

    const Digest ref = run_reference(g, cfg, p);
    for (const std::uint32_t t : kThreadCounts) {
      const Digest flat = run_flat(g, cfg, p, t);
      ASSERT_EQ(flat.status, ref.status)
          << "seed=" << seed << " threads=" << t << " " << g.summary();
      ASSERT_EQ(flat.stats, ref.stats)
          << "seed=" << seed << " threads=" << t << " " << g.summary();
      ASSERT_EQ(flat.harvest, ref.harvest)
          << "seed=" << seed << " threads=" << t << " " << g.summary();
      ASSERT_EQ(flat.observed, ref.observed)
          << "seed=" << seed << " threads=" << t << " " << g.summary();
    }
  }
}

// Fault-free configurations keep a dedicated sweep: with no plan attached
// the engine skips the fault machinery entirely (a different code path from
// a trivial plan).
TEST(EngineEquivalence, FaultFreeDifferential) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng r(0xfa017 + seed);
    const Graph g = graph_for(r);
    EngineConfig cfg;
    cfg.max_rounds = 100000;
    const Protocol p = r.chance(0.5) ? Protocol::kFlood : Protocol::kGossip;
    const Digest ref = run_reference(g, cfg, p);
    for (const std::uint32_t t : kThreadCounts) {
      const Digest flat = run_flat(g, cfg, p, t);
      ASSERT_EQ(flat.status, ref.status) << "seed=" << seed << " t=" << t;
      ASSERT_EQ(flat.stats, ref.stats) << "seed=" << seed << " t=" << t;
      ASSERT_EQ(flat.harvest, ref.harvest) << "seed=" << seed << " t=" << t;
      ASSERT_EQ(flat.observed, ref.observed) << "seed=" << seed << " t=" << t;
    }
  }
}

// --- Error paths ---------------------------------------------------------

// Every node spams far past the budget in round 0: both engines must report
// the same CongestionError text (the smallest node's violation).
TEST(EngineEquivalence, CongestionErrorTextMatchesReference) {
  class Spammer final : public Process {
   public:
    void on_round(RoundCtx& ctx) override {
      if (ctx.round() == 0) {
        for (int k = 0; k < 64; ++k) ctx.send_all(Message::make(2, 1, 2));
      }
      ran_ = true;
    }
    bool done() const override { return ran_; }

   private:
    bool ran_ = false;
  };

  const Graph g = gen::complete(9);
  EngineConfig cfg;
  dapsp::testing::ReferenceEngine ref(g, cfg);
  ref.init([](NodeId) { return std::make_unique<Spammer>(); });
  const Outcome ref_out = ref.run_bounded();
  ASSERT_EQ(ref_out.status, RunStatus::kCongestion);

  for (const std::uint32_t t : kThreadCounts) {
    EngineConfig run_cfg = cfg;
    run_cfg.threads = t;
    Engine eng(g, run_cfg);
    eng.init([](NodeId) { return std::make_unique<Spammer>(); });
    const Outcome out = eng.run_bounded();
    ASSERT_EQ(out.status, ref_out.status) << "threads=" << t;
    ASSERT_EQ(out.message, ref_out.message) << "threads=" << t;
    ASSERT_EQ(out.stats.debug_string(), ref_out.stats.debug_string())
        << "threads=" << t;
  }
}

// A payload field exceeding the declared width must surface the same error
// from the same (smallest) node.
TEST(EngineEquivalence, FieldWidthErrorTextMatchesReference) {
  class Liar final : public Process {
   public:
    explicit Liar(NodeId id) : id_(id) {}
    void on_round(RoundCtx& ctx) override {
      if (ctx.round() == 1 && id_ >= 2) {
        ctx.send_all(Message::make(1, 0xffffffffu));
      } else if (ctx.round() == 0) {
        ctx.send_all(Message::make(1, 1));
      }
      ran_ = ctx.round() >= 1;
    }
    bool done() const override { return ran_; }

   private:
    NodeId id_;
    bool ran_ = false;
  };

  const Graph g = gen::cycle(8);
  EngineConfig cfg;
  dapsp::testing::ReferenceEngine ref(g, cfg);
  ref.init([](NodeId v) { return std::make_unique<Liar>(v); });
  const Outcome ref_out = ref.run_bounded();
  ASSERT_EQ(ref_out.status, RunStatus::kCongestion);
  ASSERT_NE(ref_out.message.find("exceeds value width"), std::string::npos);

  for (const std::uint32_t t : kThreadCounts) {
    EngineConfig run_cfg = cfg;
    run_cfg.threads = t;
    Engine eng(g, run_cfg);
    eng.init([](NodeId v) { return std::make_unique<Liar>(v); });
    const Outcome out = eng.run_bounded();
    ASSERT_EQ(out.status, ref_out.status) << "threads=" << t;
    ASSERT_EQ(out.message, ref_out.message) << "threads=" << t;
    ASSERT_EQ(out.stats.debug_string(), ref_out.stats.debug_string())
        << "threads=" << t;
  }
}

// A protocol that never quiesces must hit the same round limit with the
// same stats on both sides.
TEST(EngineEquivalence, RoundLimitMatchesReference) {
  class Babbler final : public Process {
   public:
    void on_round(RoundCtx& ctx) override { ctx.send_all(Message::make(1, 0)); }
    bool done() const override { return false; }
  };

  const Graph g = gen::path(6);
  EngineConfig cfg;
  cfg.max_rounds = 50;
  dapsp::testing::ReferenceEngine ref(g, cfg);
  ref.init([](NodeId) { return std::make_unique<Babbler>(); });
  const Outcome ref_out = ref.run_bounded();
  ASSERT_EQ(ref_out.status, RunStatus::kRoundLimit);

  for (const std::uint32_t t : kThreadCounts) {
    EngineConfig run_cfg = cfg;
    run_cfg.threads = t;
    Engine eng(g, run_cfg);
    eng.init([](NodeId) { return std::make_unique<Babbler>(); });
    const Outcome out = eng.run_bounded();
    ASSERT_EQ(out.status, ref_out.status) << "threads=" << t;
    ASSERT_EQ(out.message, ref_out.message) << "threads=" << t;
    ASSERT_EQ(out.stats.debug_string(), ref_out.stats.debug_string())
        << "threads=" << t;
  }
}

}  // namespace
}  // namespace dapsp::congest
