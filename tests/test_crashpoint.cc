// Deterministic crash-point fuzzer for the durable service (core/durable.h).
//
// The fault model is crash-only: a kill can land at ANY byte of the durable
// stream (journal appends, checkpoint staging files) and leaves exactly the
// written prefix. The fuzzer drives DurableDapspService through seeded churn
// with a soft CrashPoint budget, "kills" the process by catching
// CrashPointReached and discarding the service object, then recovers from
// disk — sweeping single-kill offsets across the whole stream and composing
// multi-kill schedules (including kills inside recovery itself).
//
// Invariants asserted at every recovery and at every completion:
//   * no acknowledged update lost, none invented: the recovered epoch lies
//     in [last completed ack, last attempted ack];
//   * the run always converges to fully certified;
//   * the final canonical checkpoint blob is byte-identical to an
//     uninterrupted run's (replay determinism).
//
// Failing schedules are shrunk to a minimal reproducer with a ddmin-style
// delta debugger before being reported.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "util/journal.h"

namespace dapsp::core {
namespace {

namespace fs = std::filesystem;

constexpr NodeId kUniverse = 12;
constexpr std::uint64_t kUpdates = 16;
constexpr std::uint32_t kCheckpointEvery = 5;

Graph initial_graph() { return gen::random_connected(kUniverse, 6, 7); }

DeltaPlanConfig plan_config() {
  DeltaPlanConfig pc;
  pc.seed = 3;
  pc.max_batch = 3;
  pc.crash_prob = 0.1;
  pc.corrupt_prob = 0.1;
  return pc;
}

// A fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = (fs::path(::testing::TempDir()) / name).string();
  fs::remove_all(dir);
  return dir;
}

// Ack bookkeeping across incarnations of one simulated process lineage.
struct AckCounters {
  std::uint64_t attempted = 0;  // highest epoch whose ack_and_step began
  std::uint64_t completed = 0;  // highest epoch whose ack_and_step returned
};

struct IncarnationResult {
  bool completed = false;     // ran to the end (budget never fired)
  bool invariant_ok = true;   // recovery bounds + certification held
  std::string violation;
  std::vector<std::uint8_t> blob;  // canonical final blob when completed
};

// One process incarnation: fresh start or recovery, then churn to the end
// unless the caller's crash budget fires. Mirrors examples/dapsp_service
// --durable-dir, including the unconditional final scrub that makes the
// final blob canonical.
IncarnationResult incarnation(const std::string& dir, bool fresh,
                              CrashPoint& crash, AckCounters& acks,
                              std::uint32_t threads = 1) {
  IncarnationResult res;
  DurableConfig dcfg;
  dcfg.dir = dir;
  dcfg.checkpoint_every = kCheckpointEvery;
  dcfg.service.engine.threads = threads;
  dcfg.crash = &crash;

  DeltaPlan plan(plan_config());
  std::uint64_t done = 0;
  try {
    const Graph g = initial_graph();
    std::optional<DurableDapspService> d;
    if (fresh) {
      d.emplace(g, dcfg);
    } else {
      RecoveryReport rr;
      d.emplace(DurableDapspService::recover(dcfg, &g, &rr));
      if (rr.recovered_epoch < acks.completed ||
          rr.recovered_epoch > acks.attempted) {
        std::ostringstream os;
        os << "recovered epoch " << rr.recovered_epoch
           << " outside the acked window [" << acks.completed << ", "
           << acks.attempted << "] (" << rr.debug_string() << ")";
        res.invariant_ok = false;
        res.violation = std::move(os).str();
        return res;
      }
      const std::span<const std::uint64_t> words = d->plan_words();
      if (words.size() == 3) {
        plan.resume(words[0], words[1]);
        done = words[2];
      }
    }
    for (std::uint64_t u = done; u < kUpdates; ++u) {
      const ChurnBatch batch = plan.next(d->service().dynamic_graph());
      const std::uint64_t words[3] = {plan.rng_state(),
                                      plan.batches_generated(), u + 1};
      acks.attempted = std::max(acks.attempted, u + 1);
      d->ack_and_step(batch, words);
      acks.completed = std::max(acks.completed, u + 1);
    }
    d->service().scrub();
    d->rotate_checkpoint();
    if (!d->service().fully_certified()) {
      res.invariant_ok = false;
      res.violation = "run finished but tables are not fully certified";
      return res;
    }
    res.completed = true;
    res.blob = d->service().checkpoint_blob(d->plan_words());
  } catch (const CrashPointReached&) {
    // The injected kill — this incarnation is dead, state is on disk.
  } catch (const std::exception& e) {
    // Unexpected: acked-update loss or state corruption surfaces here.
    res.invariant_ok = false;
    res.violation = e.what();
  }
  return res;
}

// Runs a kill schedule: incarnation i dies at durable byte schedule[i] (of
// ITS OWN stream), then one unbudgeted incarnation must finish. Returns
// true when every invariant held and the final blob matches `ref`.
bool schedule_passes(const std::vector<std::uint64_t>& schedule,
                     const std::vector<std::uint8_t>& ref,
                     std::string* why = nullptr) {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  const std::string dir = scratch_dir("cp_schedule");
  AckCounters acks;
  bool fresh = true;
  for (const std::uint64_t k : schedule) {
    CrashPoint crash;
    crash.kill_at_byte = k;
    const IncarnationResult r = incarnation(dir, fresh, crash, acks);
    fresh = false;
    if (!r.invariant_ok) return fail(r.violation);
    if (r.completed) break;  // budget landed beyond the end of the run
  }
  CrashPoint no_kill;
  const IncarnationResult r = incarnation(dir, fresh, no_kill, acks);
  if (!r.invariant_ok) return fail(r.violation);
  if (!r.completed) return fail("unbudgeted final incarnation crashed");
  if (r.blob != ref) return fail("final checkpoint differs from reference");
  return true;
}

// ddmin-style schedule shrinker: removes complement chunks while the
// predicate still fails, converging to a 1-minimal failing subsequence
// (order preserved).
template <typename Fails>
std::vector<std::uint64_t> shrink_schedule(std::vector<std::uint64_t> failing,
                                           Fails fails) {
  std::size_t granularity = 2;
  while (failing.size() >= 2) {
    const std::size_t chunk =
        (failing.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < failing.size() && !reduced;
         start += chunk) {
      std::vector<std::uint64_t> candidate;
      for (std::size_t i = 0; i < failing.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(failing[i]);
      }
      if (!candidate.empty() && fails(candidate)) {
        failing = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;  // 1-minimal
      granularity = std::min(failing.size(), granularity * 2);
    }
  }
  return failing;
}

std::string schedule_string(const std::vector<std::uint64_t>& s) {
  std::ostringstream os;
  for (std::size_t i = 0; i < s.size(); ++i) os << (i ? ", " : "{") << s[i];
  os << "}";
  return std::move(os).str();
}

// Straight-through reference: final blob + the total durable byte count
// (the sweep range).
struct Reference {
  std::vector<std::uint8_t> blob;
  std::uint64_t durable_bytes = 0;
};

const Reference& reference() {
  static const Reference ref = [] {
    Reference r;
    CrashPoint counter;  // budget off; still counts durable bytes
    AckCounters acks;
    const IncarnationResult res =
        incarnation(scratch_dir("cp_reference"), true, counter, acks);
    EXPECT_TRUE(res.completed && res.invariant_ok) << res.violation;
    r.blob = res.blob;
    r.durable_bytes = counter.written;
    return r;
  }();
  return ref;
}

// ------------------------------------------------------------------- fuzzer

TEST(CrashPointFuzzer, SingleKillSweepAcrossTheWholeDurableStream) {
  const Reference& ref = reference();
  ASSERT_FALSE(ref.blob.empty());
  ASSERT_GT(ref.durable_bytes, 1000u);

  // >= 64 offsets spread over every durable byte ever written: inside the
  // generation-0 checkpoint, journal headers, every record, every rotation.
  const std::uint64_t step = std::max<std::uint64_t>(1, ref.durable_bytes / 64);
  int swept = 0;
  for (std::uint64_t k = 1; k <= ref.durable_bytes; k += step) {
    ++swept;
    std::string why;
    if (!schedule_passes({k}, ref.blob, &why)) {
      ADD_FAILURE() << "kill at durable byte " << k << ": " << why;
    }
  }
  EXPECT_GE(swept, 64);
}

TEST(CrashPointFuzzer, MultiKillSchedulesIncludingKillsDuringRecovery) {
  const Reference& ref = reference();
  const std::vector<std::vector<std::uint64_t>> schedules = {
      {1, 1, 1, 1},        // die at the first durable byte, four times
      {8, 8, 8},           // inside the journal header / first record
      {2000, 500, 2500},   // mid-checkpoint, then mid-journal, twice over
      {5000, 5000},        // deep into the second incarnation's stream
      {300, 40, 7000, 61}, // mixed: checkpoint, header, late journal, early
  };
  for (const std::vector<std::uint64_t>& schedule : schedules) {
    std::string why;
    if (!schedule_passes(schedule, ref.blob, &why)) {
      // Auto-shrink before reporting: the minimal reproducer is what a
      // human wants to replay with --kill-at-byte.
      const std::vector<std::uint64_t> minimal = shrink_schedule(
          schedule, [&](const std::vector<std::uint64_t>& s) {
            return !schedule_passes(s, ref.blob);
          });
      ADD_FAILURE() << "schedule " << schedule_string(schedule)
                    << " failed: " << why
                    << "\n  minimal reproducer: " << schedule_string(minimal);
    }
  }
}

TEST(CrashPointFuzzer, RecoveryIsThreadCountInvariant) {
  const Reference& ref = reference();
  // Kill mid-stream, then recover the SAME on-disk state at 1/2/8 engine
  // threads — each from its own copy, since recovery repairs in place.
  const std::string dir = scratch_dir("cp_threads");
  AckCounters acks;
  CrashPoint crash;
  crash.kill_at_byte = 6000;
  const IncarnationResult killed = incarnation(dir, true, crash, acks);
  ASSERT_FALSE(killed.completed);
  ASSERT_TRUE(killed.invariant_ok) << killed.violation;

  std::vector<std::vector<std::uint8_t>> blobs;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    const std::string copy =
        scratch_dir("cp_threads_t" + std::to_string(threads));
    fs::copy(dir, copy, fs::copy_options::recursive);
    AckCounters acks_copy = acks;
    CrashPoint no_kill;
    const IncarnationResult r =
        incarnation(copy, false, no_kill, acks_copy, threads);
    ASSERT_TRUE(r.completed && r.invariant_ok)
        << "threads=" << threads << ": " << r.violation;
    blobs.push_back(r.blob);
  }
  EXPECT_EQ(blobs[0], ref.blob);
  EXPECT_EQ(blobs[0], blobs[1]);
  EXPECT_EQ(blobs[0], blobs[2]);
}

// ---------------------------------------------------------------- delta-debug

TEST(DeltaDebug, ShrinksToTheMinimalFailingSubsequence) {
  // Synthetic predicate: a schedule fails iff it contains both 7 and 13.
  int calls = 0;
  const auto fails = [&](const std::vector<std::uint64_t>& s) {
    ++calls;
    const bool has7 = std::find(s.begin(), s.end(), 7u) != s.end();
    const bool has13 = std::find(s.begin(), s.end(), 13u) != s.end();
    return has7 && has13;
  };
  std::vector<std::uint64_t> noisy = {3, 7, 99, 42, 13, 5, 6, 8};
  ASSERT_TRUE(fails(noisy));
  const std::vector<std::uint64_t> minimal = shrink_schedule(noisy, fails);
  EXPECT_EQ(minimal, (std::vector<std::uint64_t>{7, 13}));
  EXPECT_GT(calls, 2);
}

TEST(DeltaDebug, SingletonCauseShrinksToOneElement) {
  const auto fails = [](const std::vector<std::uint64_t>& s) {
    return std::find(s.begin(), s.end(), 42u) != s.end();
  };
  const std::vector<std::uint64_t> minimal =
      shrink_schedule({1, 2, 42, 3, 4, 5}, fails);
  EXPECT_EQ(minimal, (std::vector<std::uint64_t>{42}));
}

}  // namespace
}  // namespace dapsp::core
