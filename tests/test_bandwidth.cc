// Bandwidth sensitivity: which B = (#ids) budget each protocol actually
// needs. The paper assumes B = O(log n) fits "a constant number of node or
// edge IDs"; these tests pin our constants and prove the enforcement is
// real (undersized budgets throw CongestionError).
#include <gtest/gtest.h>

#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "graph/generators.h"
#include "seq/apsp.h"

namespace dapsp::core {
namespace {

congest::EngineConfig ids(std::uint32_t n) {
  congest::EngineConfig cfg;
  cfg.bandwidth_ids = n;
  return cfg;
}

TEST(Bandwidth, FloodPhaseFitsThreeIds) {
  // Algorithm 1's flood phase needs a (root, dist) pair plus the pebble tag
  // on a shared edge-round: 3 id-widths suffice.
  const Graph g = gen::random_connected(40, 30, 3);
  ApspOptions opt;
  opt.engine = ids(3);
  opt.aggregate = false;
  const ApspResult r = run_pebble_apsp(g, opt);
  EXPECT_EQ(r.dist, seq::apsp(g));
}

TEST(Bandwidth, AggregationNeedsFourIds) {
  // The O(D) aggregation phase uses 4-field control messages (tag + three
  // values): a 3-id budget is genuinely insufficient and must be *detected*.
  const Graph g = gen::random_connected(40, 30, 3);
  ApspOptions opt;
  opt.engine = ids(3);
  opt.aggregate = true;
  EXPECT_THROW(run_pebble_apsp(g, opt), congest::CongestionError);
}

TEST(Bandwidth, TreeBuildFitsThreeIds) {
  const Graph g = gen::grid(8, 8);
  // Tree build echo carries 3 fields + tag byte.
  const TreeCheckRun r = run_tree_check(g, ids(4));
  EXPECT_FALSE(r.is_tree);
}

TEST(Bandwidth, SspDefaultBudgetHasHeadroom) {
  // Algorithm 2's loop sends one 2-field token per edge-round; the worst
  // observed load must stay at exactly one token during the loop.
  const Graph g = gen::cycle(32);
  const std::vector<NodeId> s{3, 17, 29};
  const SspResult r = run_ssp(g, s);
  EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits);
}

TEST(Bandwidth, OversizedBudgetChangesNothing) {
  // Algorithms must not silently exploit extra bandwidth: rounds and
  // messages are identical at B and 4B.
  const Graph g = gen::random_connected(50, 40, 7);
  ApspOptions narrow;
  narrow.engine = ids(4);
  ApspOptions wide;
  wide.engine = ids(16);
  const ApspResult a = run_pebble_apsp(g, narrow);
  const ApspResult b = run_pebble_apsp(g, wide);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(Bandwidth, EnforcementCoversEveryProtocolPhase) {
  // Across a full Algorithm 1 run the peak per-edge load never exceeds B;
  // with enforcement disabled the measured peak must be identical (the
  // protocols were designed to the budget, not saved by the exception).
  const Graph g = gen::random_connected(60, 60, 11);
  ApspOptions enforced;
  ApspOptions free;
  free.engine.enforce_bandwidth = false;
  const ApspResult a = run_pebble_apsp(g, enforced);
  const ApspResult b = run_pebble_apsp(g, free);
  EXPECT_EQ(a.stats.max_edge_bits, b.stats.max_edge_bits);
  EXPECT_LE(b.stats.max_edge_bits, b.stats.bandwidth_bits);
}

}  // namespace
}  // namespace dapsp::core
