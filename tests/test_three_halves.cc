// The (x,3/2) diameter machinery: sequential ACIM reference (Section 3.3),
// truncated source detection (SspMachine cap), and the distributed
// O~(sqrt(n)+D) estimator built on it.
#include <gtest/gtest.h>

#include <algorithm>

#include "congest/engine.h"
#include "core/ssp.h"
#include "core/three_halves.h"
#include "graph/generators.h"
#include "seq/aingworth.h"
#include "seq/apsp.h"
#include "seq/bfs.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

// ---- Sequential ACIM reference ---------------------------------------------

TEST(SeqThreeHalves, GuaranteeOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 2) continue;
    const auto r = seq::three_halves_diameter(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_LE(r.estimate, diam) << name;
    EXPECT_GE(3 * r.estimate + 2, 2 * diam) << name;  // est >= floor(2D/3)
  }
}

TEST(SeqThreeHalves, GuaranteeOnRandoms) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Graph g = gen::random_connected(70, 30 + 5 * seed, seed);
    const auto r = seq::three_halves_diameter(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_LE(r.estimate, diam) << seed;
    EXPECT_GE(3 * r.estimate + 2, 2 * diam) << seed;
  }
}

TEST(SeqThreeHalves, CostSubQuadratic) {
  // #BFS = 1 + s + |hitting set| ~ sqrt(n log n) + (n/s) log n << n.
  const Graph g = gen::random_connected(300, 400, 5);
  const auto r = seq::three_halves_diameter(g);
  EXPECT_LT(r.bfs_performed, 200u);
}

TEST(SeqPartialBfs, NearestAreNearest) {
  const Graph g = gen::grid(6, 6);
  const DistanceMatrix d = seq::apsp(g);
  for (const NodeId v : {0u, 17u, 35u}) {
    const auto p = seq::partial_bfs(g, v, 7);
    ASSERT_EQ(p.nearest.size(), 7u);
    EXPECT_EQ(p.nearest.front(), v);  // self at distance 0
    // Every non-member is at least as far as the ball radius.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (std::find(p.nearest.begin(), p.nearest.end(), u) !=
          p.nearest.end()) {
        EXPECT_LE(d.at(v, u), p.radius);
      } else {
        EXPECT_GE(d.at(v, u), p.radius);
      }
    }
  }
}

// ---- Truncated source detection ---------------------------------------------

// The cap-s detection must deliver exactly the s lexicographically smallest
// (distance, id) sources at every node. Validated through the distributed
// machinery by comparing with the sequential partial BFS.
TEST(TruncatedDetection, MatchesSequentialPartialBfs) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 4) continue;
    const std::uint32_t cap = 5;
    ThreeHalvesOptions opt;
    opt.s = cap;
    // Reuse the full protocol; its phase-1 result is validated indirectly by
    // the estimate below, but here check the primitive head-on with a
    // bespoke driver: run_three_halves already exercises it, so instead we
    // verify via the w/ball outputs: r_w must equal the oracle's partial-BFS
    // radius of the elected node.
    const ThreeHalvesRun r = run_three_halves_diameter(g, opt);
    const auto oracle = seq::partial_bfs(g, r.deepest, cap);
    EXPECT_EQ(r.ball_radius, oracle.radius) << name;
  }
}

TEST(TruncatedDetection, DeepestBallIsGlobalArgmax) {
  const Graph g = gen::lollipop(12, 40);
  const std::uint32_t cap = 6;
  ThreeHalvesOptions opt;
  opt.s = cap;
  const ThreeHalvesRun r = run_three_halves_diameter(g, opt);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, seq::partial_bfs(g, v, cap).radius);
  }
  EXPECT_EQ(r.ball_radius, best);
}

// Head-on check of the primitive: a bespoke driver runs cap-s detection with
// S = V and every node's learned set is compared with the oracle's s nearest.
class DetectOnly final : public congest::Process {
 public:
  DetectOnly(NodeId id, NodeId n, std::uint32_t cap, std::uint64_t start,
             std::uint64_t loop)
      : ssp_(id, n, /*in_s=*/true), id_(id) {
    ssp_.set_cap(cap);
    ssp_.configure(start, loop);
  }
  void on_round(congest::RoundCtx& ctx) override {
    for (const congest::Received& r : ctx.inbox()) ssp_.handle(ctx, r);
    ssp_.advance(ctx);
    done_ = ssp_.finished(ctx.round());
  }
  bool done() const override { return done_; }
  SspMachine ssp_;

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(TruncatedDetection, EveryNodeLearnsItsNearest) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 3) continue;
    const std::uint32_t cap = 4;
    const std::uint32_t d0 = 2 * seq::diameter(g);
    const std::uint64_t loop = SspMachine::schedule_length(cap, d0);
    congest::Engine e(g);
    e.init([&](NodeId v) {
      return std::make_unique<DetectOnly>(v, g.num_nodes(), cap, 1, loop);
    });
    e.run();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto got = e.process_as<DetectOnly>(v).ssp_.nearest_sources();
      const auto want = seq::partial_bfs(g, v, cap);
      ASSERT_EQ(got.size(), want.nearest.size()) << name << " v=" << v;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].second, want.nearest[i]) << name << " v=" << v;
        EXPECT_EQ(got[i].first,
                  seq::bfs(g, v).dist[want.nearest[i]])
            << name << " v=" << v;
      }
    }
  }
}

// ---- Distributed estimator ---------------------------------------------------

TEST(ThreeHalves, GuaranteeOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 2) continue;
    const ThreeHalvesRun r = run_three_halves_diameter(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_LE(r.estimate, diam) << name;
    EXPECT_GE(3 * r.estimate + 2, 2 * diam) << name;
    EXPECT_GE(r.answer, diam) << name;
    EXPECT_LE(r.answer, (3 * diam + 1) / 2 + 1) << name;
  }
}

TEST(ThreeHalves, GuaranteeOnMediumSuite) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const ThreeHalvesRun r = run_three_halves_diameter(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_LE(r.estimate, diam) << name;
    EXPECT_GE(3 * r.estimate + 2, 2 * diam) << name;
  }
}

TEST(ThreeHalves, SublinearOnShallowGraphs) {
  // O~(sqrt(n) + D): on a 576-node torus (D = 24) the run must be well
  // below the ~1800 rounds of exact APSP.
  const Graph g = gen::torus(24, 24);
  const ThreeHalvesRun r = run_three_halves_diameter(g);
  EXPECT_LT(r.stats.rounds, 1300u);  // exact APSP takes ~1800 here
  EXPECT_GT(r.num_sources, 0u);
  EXPECT_LT(r.num_sources, g.num_nodes() / 2);
}

TEST(ThreeHalves, DeterministicPerSeed) {
  const Graph g = gen::random_connected(80, 70, 3);
  ThreeHalvesOptions opt;
  opt.seed = 9;
  const auto a = run_three_halves_diameter(g, opt);
  const auto b = run_three_halves_diameter(g, opt);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(ThreeHalves, RespectsBandwidth) {
  const Graph g = gen::random_connected(100, 150, 4);
  const ThreeHalvesRun r = run_three_halves_diameter(g);
  EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits);
}

}  // namespace
}  // namespace dapsp::core
