// Algorithm 2 (S-SP): exact distances to every source, within the
// |S| + D0 loop bound of Theorem 3, on many graphs and source sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/properties.h"
#include "testing/suite.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

std::vector<NodeId> random_sources(NodeId n, std::size_t count,
                                   std::uint64_t seed) {
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  Rng rng(seed);
  shuffle(all, rng);
  all.resize(std::min<std::size_t>(count, n));
  std::sort(all.begin(), all.end());
  return all;
}

void expect_ssp_correct(const Graph& g, std::span<const NodeId> sources,
                        const char* label) {
  const SspResult r = run_ssp(g, sources);
  const DistanceMatrix want = seq::apsp(g);
  std::vector<std::uint8_t> in_s(g.num_nodes(), 0);
  for (const NodeId s : sources) in_s[s] = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (in_s[u]) {
        EXPECT_EQ(r.delta[v][u], want.at(v, u))
            << label << " v=" << v << " u=" << u;
      } else {
        EXPECT_EQ(r.delta[v][u], kInfDist) << label << " v=" << v << " u=" << u;
      }
    }
  }
}

TEST(Ssp, SingleSourceEverywhere) {
  for (const auto& [name, g] : testing::small_suite()) {
    const std::vector<NodeId> s{0};
    expect_ssp_correct(g, s, name.c_str());
  }
}

TEST(Ssp, RandomSourceSets) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 4) continue;
    for (const std::size_t count : {2u, 5u}) {
      const auto s = random_sources(g.num_nodes(), count, 17 + count);
      expect_ssp_correct(g, s, name.c_str());
    }
  }
}

TEST(Ssp, AllNodesAsSourcesIsApsp) {
  // S = V turns Algorithm 2 into an (alternative) APSP algorithm.
  for (const auto& [name, g] : testing::small_suite()) {
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    const SspResult r = run_ssp(g, all);
    const DistanceMatrix want = seq::apsp(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(r.delta[v][u], want.at(v, u)) << name;
      }
    }
  }
}

TEST(Ssp, MediumSuiteSpotChecks) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const auto s = random_sources(g.num_nodes(), 8, 5);
    expect_ssp_correct(g, s, name.c_str());
  }
}

// Theorem 3: O(|S| + D) rounds. Our constants: tree build + params
// broadcast (<= 4 ecc + 8) + loop 2(|S| + 2 ecc) + 4 + trailing round.
TEST(Ssp, RoundBound) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const auto s = random_sources(g.num_nodes(), 10, 3);
    const SspResult r = run_ssp(g, s);
    const std::uint64_t bound =
        2 * s.size() + 12 * std::uint64_t{r.leader_ecc} + 40;
    EXPECT_LE(r.stats.rounds, bound) << name;
  }
}

// The loop is the documented schedule 2(|S| + D0) + 4 (see SspMachine).
TEST(Ssp, LoopLengthMatchesSchedule) {
  const Graph g = gen::grid(8, 8);
  const auto s = random_sources(g.num_nodes(), 6, 9);
  const SspResult r = run_ssp(g, s);
  EXPECT_EQ(r.d0, 2 * r.leader_ecc);
  EXPECT_EQ(r.loop_rounds, 2 * (s.size() + r.d0) + 4);
}

// Bandwidth: Algorithm 2 sends at most one (id, distance) token per edge per
// round, plus nothing else during the loop.
TEST(Ssp, RespectsBandwidth) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const auto s = random_sources(g.num_nodes(), 12, 29);
    const SspResult r = run_ssp(g, s);
    EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits) << name;
  }
}

TEST(Ssp, EmptySourceSet) {
  const Graph g = gen::path(10);
  const SspResult r = run_ssp(g, {});
  for (NodeId v = 0; v < 10; ++v) {
    for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(r.delta[v][u], kInfDist);
  }
}

TEST(Ssp, SourceOutOfRangeThrows) {
  const Graph g = gen::path(4);
  const std::vector<NodeId> bad{7};
  EXPECT_THROW(run_ssp(g, bad), std::invalid_argument);
}

TEST(Ssp, DuplicateSourcesDeduplicated) {
  const Graph g = gen::cycle(8);
  const std::vector<NodeId> dup{3, 3, 5, 5, 5};
  const SspResult r = run_ssp(g, dup);
  EXPECT_EQ(r.sources, (std::vector<NodeId>{3, 5}));
  EXPECT_EQ(r.delta[0][3], 3u);
  EXPECT_EQ(r.delta[0][5], 3u);
}

// Lemma-7-style witnesses collected during S-SP floods bound the girth:
// girth <= witness <= girth + 2 * max distance from a source to the minimum
// cycle (coarsely: + 2D).
TEST(Ssp, GirthWitnessSoundness) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (seq::is_tree(g)) continue;
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    const SspResult r = run_ssp(g, all);
    // With S = V, some source lies on the minimum cycle: witness is exact.
    EXPECT_EQ(r.min_girth_witness, seq::girth(g)) << name;
  }
}

TEST(Ssp, GirthWitnessOnTreeIsInfinite) {
  const Graph g = gen::balanced_tree(25, 2);
  std::vector<NodeId> all(25);
  for (NodeId v = 0; v < 25; ++v) all[v] = v;
  const SspResult r = run_ssp(g, all);
  EXPECT_EQ(r.min_girth_witness, kInfDist);
}

TEST(Ssp, SparseSourceWitnessIsUpperBoundOnly) {
  const Graph g = gen::tree_with_cycle(60, 5, 1);
  const std::vector<NodeId> s{0};
  const SspResult r = run_ssp(g, s);
  if (r.min_girth_witness != kInfDist) {
    EXPECT_GE(r.min_girth_witness, seq::girth(g));
  }
}

TEST(Ssp, Deterministic) {
  const Graph g = gen::random_connected(60, 60, 31);
  const auto s = random_sources(60, 7, 4);
  const SspResult a = run_ssp(g, s);
  const SspResult b = run_ssp(g, s);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.delta, b.delta);
}

}  // namespace
}  // namespace dapsp::core
