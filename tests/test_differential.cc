// Randomized differential testing: the distributed algorithms against the
// sequential oracles on ~200 seeded random graphs.
//
// The fixed suites (testing/suite.h) cover the shapes the paper reasons
// about; this harness covers the shapes nobody thought of. Three generator
// families — G(n,p) filtered to connected, uniform random trees, and
// randomly subdivided gadgets (long induced paths grafted into dense cores,
// the classical trigger for wavefront-collision bugs) — are driven from a
// single base seed. Every assertion message carries the generator family and
// seed, so any failure is reproducible by pasting one line into a unit test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/pebble_apsp.h"
#include "core/repair.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "seq/apsp.h"
#include "seq/bfs.h"
#include "seq/properties.h"
#include "util/rng.h"

namespace dapsp {
namespace {

// One differential instance: a connected graph plus the one-line recipe that
// regenerates it ("gnp n=19 p=0.21 seed=4242").
struct Instance {
  std::string recipe;
  Graph graph;
};

// Subdivides `count` randomly chosen edges of g, each into a path of
// `segments` edges through fresh nodes. Preserves connectivity; stretches
// distances non-uniformly, which is exactly what the pebble/SSP wavefront
// scheduling must survive.
Graph subdivide_random_edges(const Graph& g, std::size_t count,
                             std::uint32_t segments, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  shuffle(edges, rng);
  count = std::min(count, edges.size());

  NodeId next = g.num_nodes();
  std::vector<Edge> out;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i >= count || segments <= 1) {
      out.push_back(edges[i]);
      continue;
    }
    NodeId prev = edges[i].u;
    for (std::uint32_t s = 1; s < segments; ++s) {
      out.push_back({prev, next});
      prev = next++;
    }
    out.push_back({prev, edges[i].v});
  }
  return Graph(next, out);
}

std::vector<Instance> differential_instances() {
  std::vector<Instance> out;

  // Family 1: G(n, p) conditioned on connectivity. Densities straddle the
  // connectivity threshold ln(n)/n so both sparse near-trees and dense
  // near-cliques appear.
  for (std::uint64_t seed = 1; out.size() < 80; ++seed) {
    const NodeId n = static_cast<NodeId>(6 + (seed * 7) % 27);  // 6..32
    const double p = 0.08 + 0.9 * static_cast<double>(seed % 11) / 11.0;
    Graph g = gen::erdos_renyi(n, p, seed);
    if (!seq::is_connected(g)) continue;
    out.push_back({"gnp n=" + std::to_string(n) + " p=" + std::to_string(p) +
                       " seed=" + std::to_string(seed),
                   std::move(g)});
  }

  // Family 2: uniform random trees (random_connected with 0 extra edges) —
  // infinite girth, large diameter, every aggregation edge case.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const NodeId n = static_cast<NodeId>(2 + (seed * 13) % 39);  // 2..40
    out.push_back({"tree n=" + std::to_string(n) +
                       " seed=" + std::to_string(seed),
                   gen::random_connected(n, 0, seed)});
  }

  // Family 3: subdivided gadgets — dense cores with randomly stretched
  // edges. Base shapes with known adversarial structure; the subdivision
  // seed controls which edges stretch.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    out.push_back({"subdiv-petersen seed=" + std::to_string(seed),
                   subdivide_random_edges(
                       gen::petersen(), 5,
                       static_cast<std::uint32_t>(2 + seed % 4), seed)});
    out.push_back({"subdiv-complete7 seed=" + std::to_string(seed),
                   subdivide_random_edges(
                       gen::complete(7), 8,
                       static_cast<std::uint32_t>(2 + seed % 3), seed)});
    out.push_back(
        {"subdiv-rand seed=" + std::to_string(seed),
         subdivide_random_edges(gen::random_connected(16, 14, seed), 6,
                                static_cast<std::uint32_t>(2 + seed % 5),
                                seed ^ 0xabcd)});
  }

  return out;  // 80 + 60 + 60 = 200 instances
}

TEST(Differential, PebbleApspMatchesOracle) {
  for (const Instance& inst : differential_instances()) {
    const core::ApspResult r = core::run_pebble_apsp(inst.graph);
    const DistanceMatrix want = seq::apsp(inst.graph);
    ASSERT_EQ(r.dist, want) << inst.recipe;
  }
}

TEST(Differential, ApplicationsMatchOracles) {
  for (const Instance& inst : differential_instances()) {
    const Graph& g = inst.graph;
    const core::ApspResult r = core::run_pebble_apsp(g);
    EXPECT_EQ(r.ecc, seq::eccentricities(g)) << inst.recipe;
    EXPECT_EQ(r.diameter, seq::diameter(g)) << inst.recipe;
    EXPECT_EQ(r.radius, seq::radius(g)) << inst.recipe;
    EXPECT_EQ(r.girth, seq::girth(g)) << inst.recipe;
    std::vector<NodeId> ctr, per;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.is_center[v]) ctr.push_back(v);
      if (r.is_peripheral[v]) per.push_back(v);
    }
    EXPECT_EQ(ctr, seq::center(g)) << inst.recipe;
    EXPECT_EQ(per, seq::peripheral_vertices(g)) << inst.recipe;
  }
}

TEST(Differential, SspMatchesBfsRows) {
  std::uint64_t salt = 0;
  for (const Instance& inst : differential_instances()) {
    const Graph& g = inst.graph;
    // A random source set drawn per instance: expected ~30% of the nodes,
    // never empty.
    Rng rng(0x5579 + ++salt);
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.chance(0.3)) sources.push_back(v);
    }
    if (sources.empty()) {
      sources.push_back(static_cast<NodeId>(rng.below(g.num_nodes())));
    }

    const core::SspResult r = core::run_ssp(g, sources);
    for (const NodeId s : sources) {
      const seq::BfsResult oracle = seq::bfs(g, s);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(r.delta[v][s], oracle.dist[v])
            << inst.recipe << " |S|=" << sources.size() << " source=" << s
            << " node=" << v;
      }
    }
  }
}

TEST(Differential, RepairedStaleHarvestsMatchSubgraphOracle) {
  // Differential probe for the self-healing path (core/repair.h): per
  // instance, kill 1-2 seeded random nodes, hand repair_apsp() the full
  // pre-crash oracle tables (the worst kind of degradation: every row
  // coverage-complete, arbitrarily many silently stale), and demand the
  // repaired tables equal the sequential oracle on the surviving subgraph —
  // including disconnections, which random trees produce constantly.
  std::uint64_t salt = 0;
  for (const Instance& inst : differential_instances()) {
    const Graph& g = inst.graph;
    const NodeId n = g.num_nodes();
    Rng rng(0xf1c5 + ++salt);
    std::vector<std::uint8_t> survived(n, 1);
    survived[static_cast<std::size_t>(rng.below(n))] = 0;
    if (n > 4 && rng.chance(0.5)) {
      survived[static_cast<std::size_t>(rng.below(n))] = 0;
    }

    core::ApspResult r;
    r.dist = seq::apsp(g);
    r.next_hop.assign(n, std::vector<NodeId>(n, core::kNoNextHop));
    r.status = congest::RunStatus::kDegraded;
    r.survived = survived;

    const core::RepairReport report = core::repair_apsp(g, r);
    ASSERT_TRUE(report.all_certified())
        << inst.recipe << ": " << report.debug_string();
    ASSERT_TRUE(report.bound_ok)
        << inst.recipe << ": " << report.debug_string();

    std::vector<Edge> live_edges;
    for (const Edge& e : g.edges()) {
      if (survived[e.u] != 0 && survived[e.v] != 0) live_edges.push_back(e);
    }
    const Graph sub(n, live_edges);
    for (NodeId s = 0; s < n; ++s) {
      const seq::BfsResult oracle = seq::bfs(sub, s);
      for (NodeId v = 0; v < n; ++v) {
        if (survived[v] == 0) continue;
        const std::uint32_t want =
            survived[s] != 0 ? oracle.dist[v] : (v == s ? 0u : kInfDist);
        ASSERT_EQ(r.dist.at(v, s), want)
            << inst.recipe << " node=" << v << " source=" << s;
      }
    }
  }
}

// The harness itself must stay deterministic: a failure recipe printed by a
// CI run has to regenerate the same graph locally.
TEST(Differential, InstanceSetIsStable) {
  const auto a = differential_instances();
  const auto b = differential_instances();
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].recipe, b[i].recipe);
    ASSERT_EQ(a[i].graph.num_nodes(), b[i].graph.num_nodes());
    ASSERT_TRUE(std::equal(a[i].graph.edges().begin(),
                           a[i].graph.edges().end(),
                           b[i].graph.edges().begin(),
                           b[i].graph.edges().end()))
        << a[i].recipe;
  }
}

}  // namespace
}  // namespace dapsp
