// Certified outputs: coverage classification, the distributed per-row
// distance certificate (soundness on exact tables, detection of corrupted
// and stale entries, uncertifiability of crashed-source rows), and the
// Lemma 1 flood-congestion monitor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "congest/engine.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "core/primitives/bfs_process.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"

namespace dapsp::core {
namespace {

std::vector<NodeId> all_nodes(NodeId n) {
  std::vector<NodeId> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = v;
  return out;
}

std::vector<Graph> test_families() {
  std::vector<Graph> out;
  out.push_back(gen::path(8));
  out.push_back(gen::grid(3, 4));
  out.push_back(gen::petersen());
  out.push_back(gen::random_connected(14, 10, 21));
  return out;
}

// ---------------------------------------------------------------------------
// Coverage classification

TEST(Coverage, ClassifiesCompletePartialLost) {
  // 4 nodes, node 2 dead. Entries are a lookup table per (node, source).
  const std::vector<std::uint8_t> survived = {1, 1, 0, 1};
  const std::vector<NodeId> sources = {0, 1, 3};
  // Row 0: every survivor finite -> complete (dead node 2's entry ignored).
  // Row 1: survivors 0 and 1 finite, 3 unknown -> partial.
  // Row 3: only the source's own 0 -> lost.
  const std::uint32_t table[4][4] = {
      {0, 1, kInfDist, kInfDist},
      {1, 0, kInfDist, kInfDist},
      {kInfDist, kInfDist, 0, kInfDist},
      {3, kInfDist, kInfDist, 0},
  };
  const auto cov = classify_coverage(
      survived, sources, [&](NodeId v, NodeId s) { return table[v][s]; });
  ASSERT_EQ(cov.size(), 3u);
  EXPECT_EQ(cov[0], RowCoverage::kComplete);
  EXPECT_EQ(cov[1], RowCoverage::kPartial);
  EXPECT_EQ(cov[2], RowCoverage::kLost);
  EXPECT_STREQ(to_string(RowCoverage::kComplete), "complete");
  EXPECT_STREQ(to_string(RowCoverage::kPartial), "partial");
  EXPECT_STREQ(to_string(RowCoverage::kLost), "lost");
}

TEST(Coverage, DeadSourceRowWithNoFiniteEntriesIsLost) {
  const std::vector<std::uint8_t> survived = {1, 1, 0};
  const std::vector<NodeId> sources = {2};
  const auto cov = classify_coverage(
      survived, sources, [](NodeId, NodeId) { return kInfDist; });
  ASSERT_EQ(cov.size(), 1u);
  EXPECT_EQ(cov[0], RowCoverage::kLost);
}

TEST(Coverage, RejectsOutOfRangeSource) {
  const std::vector<std::uint8_t> survived = {1, 1};
  const std::vector<NodeId> sources = {5};
  EXPECT_THROW(classify_coverage(survived, sources,
                                 [](NodeId, NodeId) { return 0u; }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The distributed certificate

TEST(Certify, ExactTablesCertifyOnAllFamilies) {
  for (const Graph& g : test_families()) {
    const NodeId n = g.num_nodes();
    const DistanceMatrix oracle = seq::apsp(g);
    const std::vector<std::uint8_t> survived(n, 1);
    const auto sources = all_nodes(n);
    const auto report = certify_rows(
        g, survived, sources,
        [&](NodeId v, NodeId s) { return oracle.at(v, s); });
    EXPECT_TRUE(report.all_certified()) << g.summary();
    EXPECT_EQ(report.rows_certified, n) << g.summary();
    EXPECT_EQ(report.checks_failed, 0u) << g.summary();
    // Two engine rounds per row.
    EXPECT_EQ(report.stats.rounds, 2u * n) << g.summary();
  }
}

TEST(Certify, CorruptedEntryFailsExactlyItsRow) {
  const Graph g = gen::grid(3, 4);
  const NodeId n = g.num_nodes();
  const DistanceMatrix oracle = seq::apsp(g);
  const std::vector<std::uint8_t> survived(n, 1);
  const auto sources = all_nodes(n);
  // Node 5 inflates its distance to source 0 by 2: breaks Lipschitz and/or
  // the witness rule at node 5 or its neighbors, but only in row 0.
  const auto report = certify_rows(
      g, survived, sources, [&](NodeId v, NodeId s) {
        const std::uint32_t d = oracle.at(v, s);
        return (v == 5 && s == 0) ? d + 2 : d;
      });
  EXPECT_FALSE(report.all_certified());
  EXPECT_EQ(report.certified[0], 0u);
  EXPECT_GT(report.checks_failed, 0u);
  for (NodeId s = 1; s < n; ++s) {
    EXPECT_EQ(report.certified[s], 1u) << "row " << s;
  }
}

TEST(Certify, FakeZeroAwayFromSourceIsRejected) {
  const Graph g = gen::path(4);
  const std::vector<std::uint8_t> survived(4, 1);
  const std::vector<NodeId> sources = {0};
  // Node 3 claims distance 0 to source 0 — a forged "I am the source".
  const auto report = certify_rows(
      g, survived, sources, [&](NodeId v, NodeId) -> std::uint32_t {
        return v == 3 ? 0 : v;
      });
  EXPECT_EQ(report.certified[0], 0u);
}

TEST(Certify, SurvivingSubgraphDistancesCertifyAfterCrash) {
  // Path 0-1-2-3, node 3 (a leaf) dead: distances among 0,1,2 are unchanged
  // and must certify; the dead node's entries are never consulted.
  const Graph g = gen::path(4);
  const std::vector<std::uint8_t> survived = {1, 1, 1, 0};
  const std::vector<NodeId> sources = {0, 1, 2};
  const DistanceMatrix oracle = seq::apsp(g);
  const auto report = certify_rows(
      g, survived, sources,
      [&](NodeId v, NodeId s) { return oracle.at(v, s); });
  EXPECT_TRUE(report.all_certified());
  EXPECT_EQ(report.checks_failed, 0u);
}

TEST(Certify, StaleEntriesLearnedThroughCrashedRelayFail) {
  // Path 0-1-2-3, node 1 dead. Nodes 2 and 3 still hold their pre-crash
  // distances to node 0 (2 and 3) — true in the original graph, stale on the
  // surviving one: node 2's witness (node 1 at distance 1) is gone, so the
  // minimum surviving entry of the stale component must fail rule (c).
  const Graph g = gen::path(4);
  const std::vector<std::uint8_t> survived = {1, 0, 1, 1};
  const std::vector<NodeId> sources = {0};
  const DistanceMatrix oracle = seq::apsp(g);
  const auto report = certify_rows(
      g, survived, sources,
      [&](NodeId v, NodeId s) { return oracle.at(v, s); });
  EXPECT_EQ(report.certified[0], 0u);
  EXPECT_GT(report.checks_failed, 0u);
}

TEST(Certify, DisconnectedSurvivorsCertifyAsInfinite) {
  // Same cut, but nodes 2 and 3 correctly report "unreachable": the
  // all-infinite far component is consistent and the row certifies.
  const Graph g = gen::path(4);
  const std::vector<std::uint8_t> survived = {1, 0, 1, 1};
  const std::vector<NodeId> sources = {0};
  const auto report = certify_rows(
      g, survived, sources, [&](NodeId v, NodeId) -> std::uint32_t {
        if (v == 0) return 0;
        return kInfDist;
      });
  EXPECT_TRUE(report.all_certified());
  EXPECT_EQ(report.checks_failed, 0u);
}

TEST(Certify, CrashedSourceRowIsNeverCertifiable) {
  // Node 0 dead; the survivors hold the original exact distances to it.
  // Nobody may claim 0, so the row must fail even though every surviving
  // entry is "correct" for the pre-crash graph.
  const Graph g = gen::petersen();
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> survived(n, 1);
  survived[0] = 0;
  const std::vector<NodeId> sources = {0};
  const auto oracle = seq::bfs(g, 0);
  const auto report = certify_rows(
      g, survived, sources,
      [&](NodeId v, NodeId) { return oracle.dist[v]; });
  EXPECT_EQ(report.certified[0], 0u);
}

TEST(Certify, CrashedSourceAllInfiniteRowCertifies) {
  // The repair module's normalization target (core/repair.h step 1): once a
  // crashed source's row is zeroed to all-infinite over the survivors, it
  // certifies vacuously — even when the crash splits the survivors into
  // disconnected components ({0} and {2, 3} here), since each all-infinite
  // component is internally consistent and nobody claims 0.
  const Graph g = gen::path(4);
  const std::vector<std::uint8_t> survived = {1, 0, 1, 1};
  const std::vector<NodeId> sources = {1};  // the dead node itself
  const auto report = certify_rows(
      g, survived, sources, [](NodeId, NodeId) { return kInfDist; });
  EXPECT_TRUE(report.all_certified());
  EXPECT_EQ(report.checks_failed, 0u);
}

TEST(Certify, AllNodesCrashedHarvestIsVacuouslyCertified) {
  // Total loss degenerates gracefully: with no survivor left to judge (or to
  // be misinformed), every row certifies vacuously and coverage over the
  // empty survivor set reads complete — "all zero survivors are covered".
  const Graph g = gen::petersen();
  const NodeId n = g.num_nodes();
  const std::vector<std::uint8_t> survived(n, 0);
  const auto entry = [](NodeId, NodeId) { return kInfDist; };
  const auto report = certify_rows(g, survived, all_nodes(n), entry);
  EXPECT_TRUE(report.all_certified());
  EXPECT_EQ(report.rows_certified, n);
  EXPECT_EQ(report.checks_failed, 0u);
  const auto cov = classify_coverage(survived, all_nodes(n), entry);
  for (const RowCoverage c : cov) EXPECT_EQ(c, RowCoverage::kComplete);
}

TEST(Certify, CoverageCompleteStaleRelayRowStillFailsWitnessRule) {
  // The case coverage accounting alone cannot catch — and the reason
  // repair_apsp() pre-certifies coverage-complete rows. Ring of 6, node 1
  // crashes; every survivor keeps its pre-crash distance to source 0. All
  // entries are finite (coverage complete!) but node 2's stale entry 2 has
  // no surviving witness: its only live neighbor, node 3, holds 3, so
  // rule (c) fails.
  const Graph g = gen::cycle(6);
  const std::vector<std::uint8_t> survived = {1, 0, 1, 1, 1, 1};
  const std::vector<NodeId> sources = {0};
  const DistanceMatrix oracle = seq::apsp(g);
  const auto entry = [&](NodeId v, NodeId s) { return oracle.at(v, s); };
  const auto cov = classify_coverage(survived, sources, entry);
  ASSERT_EQ(cov[0], RowCoverage::kComplete);
  const auto report = certify_rows(g, survived, sources, entry);
  EXPECT_EQ(report.certified[0], 0u);
  EXPECT_GT(report.checks_failed, 0u);
}

TEST(Certify, PebbleApspOutputCertifiesEndToEnd) {
  // The full pipeline: run Algorithm 1, feed its harvested matrix to the
  // verifier — the paper's output is its own certificate's witness.
  const Graph g = gen::random_connected(14, 10, 21);
  const NodeId n = g.num_nodes();
  const auto r = run_pebble_apsp(g);
  ASSERT_EQ(r.status, congest::RunStatus::kCompleted);
  const auto report = certify_rows(
      g, r.survived, all_nodes(n),
      [&](NodeId v, NodeId s) { return r.dist.at(v, s); });
  EXPECT_TRUE(report.all_certified());
  for (const RowCoverage c : r.coverage) {
    EXPECT_EQ(c, RowCoverage::kComplete);
  }
}

TEST(Certify, RejectsMalformedInputs) {
  const Graph g = gen::path(3);
  const std::vector<std::uint8_t> short_survived = {1, 1};
  const std::vector<NodeId> sources = {0};
  const auto entry = [](NodeId, NodeId) { return 0u; };
  EXPECT_THROW(certify_rows(g, short_survived, sources, entry),
               std::invalid_argument);
  const std::vector<std::uint8_t> survived = {1, 1, 1};
  const std::vector<NodeId> bad_sources = {9};
  EXPECT_THROW(certify_rows(g, survived, bad_sources, entry),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The Lemma 1 congestion monitor

TEST(FloodMonitor, FaultFreePebbleRunHasZeroViolations) {
  for (const Graph& g : test_families()) {
    FloodCongestionMonitor monitor(g);
    ApspOptions opt;
    opt.engine.send_observer = monitor.hook();
    const auto r = run_pebble_apsp(g, opt);
    ASSERT_EQ(r.status, congest::RunStatus::kCompleted);
    EXPECT_GT(monitor.flood_sends(), 0u) << g.summary();
    EXPECT_EQ(monitor.violations(), 0u) << g.summary();
  }
}

TEST(FloodMonitor, DetectsSyntheticDoubleFlood) {
  // A rogue process that puts two kApspFlood messages on the same directed
  // edge in one round — exactly what Lemma 1 forbids.
  class DoubleFlooder final : public congest::Process {
   public:
    void on_round(congest::RoundCtx& ctx) override {
      if (ctx.round() == 0 && ctx.id() == 0) {
        ctx.send(0, congest::Message::make(kApspFlood, 0, 1));
        ctx.send(0, congest::Message::make(kApspFlood, 0, 1));
      }
      done_ = true;
    }
    bool done() const override { return done_; }

   private:
    bool done_ = false;
  };
  const Graph g = gen::path(2);
  FloodCongestionMonitor monitor(g);
  congest::EngineConfig cfg;
  cfg.bandwidth_ids = 8;  // room for both sends; the monitor, not B, judges
  cfg.send_observer = monitor.hook();
  congest::Engine e(g, cfg);
  e.init([](NodeId) { return std::make_unique<DoubleFlooder>(); });
  e.run();
  EXPECT_EQ(monitor.flood_sends(), 2u);
  EXPECT_EQ(monitor.violations(), 1u);
}

}  // namespace
}  // namespace dapsp::core
