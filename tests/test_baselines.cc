// Baselines from Section 3.1: naive n-fold BFS, serialized distance-vector,
// serialized link-state — correctness vs the oracle plus the cost shapes the
// paper attributes to them. Also the PRT-style diameter arm.
#include <gtest/gtest.h>

#include "baselines/distance_vector.h"
#include "baselines/link_state.h"
#include "baselines/naive_apsp.h"
#include "baselines/prt_diameter.h"
#include "core/pebble_apsp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::baselines {
namespace {

TEST(NaiveApsp, MatchesOracle) {
  for (const auto& [name, g] : testing::small_suite()) {
    const NaiveApspResult r = run_naive_apsp(g);
    EXPECT_EQ(r.dist, seq::apsp(g)) << name;
  }
}

TEST(NaiveApsp, RoundsAreNTimesD) {
  // The point of the baseline: Theta(n * D) rounds.
  const Graph g = gen::path(64);
  const NaiveApspResult r = run_naive_apsp(g);
  EXPECT_GE(r.stats.rounds, std::uint64_t{63} * 64);  // ~ n * (n-1)
  // Compare with Algorithm 1 on the same graph: linear.
  const core::ApspResult fast = core::run_pebble_apsp(g);
  EXPECT_LT(fast.stats.rounds * 8, r.stats.rounds);
}

TEST(NaiveApsp, SlotIsolation) {
  // One flood at a time: never more than one flood message (plus nothing
  // else) per edge per round.
  const Graph g = gen::grid(6, 6);
  const NaiveApspResult r = run_naive_apsp(g);
  EXPECT_EQ(r.slot_len, r.d0 + 2);
  EXPECT_LE(r.stats.max_edge_messages, 1u);
}

TEST(DistanceVector, MatchesOracle) {
  for (const auto& [name, g] : testing::small_suite()) {
    const DistanceVectorResult r = run_distance_vector(g);
    EXPECT_EQ(r.dist, seq::apsp(g)) << name;
  }
}

TEST(DistanceVector, SerializedUpdatesRespectBandwidth) {
  const Graph g = gen::random_connected(60, 60, 9);
  const DistanceVectorResult r = run_distance_vector(g);
  EXPECT_LE(r.stats.max_edge_messages, 1u);
  EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits);
}

TEST(DistanceVector, SuperlinearOnDenseGraphs) {
  // Section 3.1: with B-bit messages, distance-vector needs far more than
  // D rounds — every node must serialize ~n entries per edge.
  const Graph g = gen::complete(48);
  const DistanceVectorResult r = run_distance_vector(g);
  EXPECT_GE(r.stats.rounds, 40u);  // D = 1, rounds >> D
}

TEST(LinkState, MatchesOracleAndCompletes) {
  for (const auto& [name, g] : testing::small_suite()) {
    const LinkStateResult r = run_link_state(g);
    EXPECT_TRUE(r.all_views_complete) << name;
    EXPECT_EQ(r.dist, seq::apsp(g)) << name;
  }
}

TEST(LinkState, RoundsScaleWithEdges) {
  // Serialized link-state floods m edge records over each link: Omega(m).
  const Graph sparse = gen::cycle(64);                 // m = 64
  const Graph dense = gen::random_connected(64, 600, 3);  // m = 663
  const auto rs = run_link_state(sparse);
  const auto rd = run_link_state(dense);
  EXPECT_GE(rd.stats.rounds, rs.stats.rounds);
  EXPECT_GE(rd.stats.rounds, dense.num_edges() / 4);
}

TEST(LinkState, MessageComplexityQuadraticInEdges) {
  const Graph g = gen::random_connected(40, 100, 1);
  const LinkStateResult r = run_link_state(g);
  // Every node forwards ~every edge on ~every incident link once: Theta(m^2)
  // messages on dense-ish graphs (here just a sanity lower bound).
  EXPECT_GE(r.stats.messages, g.num_edges() * 20);
}

TEST(PrtDiameter, EstimateBounds) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 3) continue;
    const PrtDiameterResult r = run_prt_diameter(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_LE(r.estimate, diam) << name;           // eccs never exceed D
    EXPECT_GE(2 * r.estimate, diam) << name;       // Fact 1: ecc >= D/2
    EXPECT_GE(r.sample_size, 1u) << name;          // leader always sampled
  }
}

TEST(PrtDiameter, EmpiricallyNearExactOnSuite) {
  // The 3/2-arm quality check: max(ecc over sample+farthest) >= 2D/3 on the
  // bench suite (heuristic arm; see DESIGN.md).
  for (const auto& [name, g] : testing::medium_suite()) {
    const PrtDiameterResult r = run_prt_diameter(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_GE(3 * r.estimate + 3, 2 * diam) << name;
  }
}

TEST(PrtDiameter, RoundShapeSampleTimesD) {
  const Graph g = gen::grid(10, 10);
  const PrtDiameterResult r = run_prt_diameter(g);
  const std::uint64_t d0 = 2u * 18u;  // 2 * ecc(corner)
  // Dominated by sample_size sequential BFS slots.
  EXPECT_LE(r.stats.rounds, (r.sample_size + 4) * (d0 + 2) + 8 * d0 + 64);
}

TEST(PrtDiameter, DeterministicPerSeed) {
  const Graph g = gen::random_connected(70, 50, 4);
  PrtDiameterOptions opt;
  opt.seed = 5;
  const auto a = run_prt_diameter(g, opt);
  const auto b = run_prt_diameter(g, opt);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

}  // namespace
}  // namespace dapsp::baselines
