// Algorithm 1 (pebble APSP) and its applications (Lemmas 2-7), validated
// against the sequential oracle on the whole suite, plus the paper's
// complexity and congestion claims as checked invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/apsp_applications.h"
#include "core/pebble_apsp.h"
#include "core/tree_check.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

TEST(PebbleApsp, MatchesOracleOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    const DistanceMatrix want = seq::apsp(g);
    EXPECT_EQ(r.dist, want) << name;
  }
}

TEST(PebbleApsp, MatchesOracleOnMediumSuite) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_EQ(r.dist, seq::apsp(g)) << name;
  }
}

TEST(PebbleApsp, MatchesOracleUnderRelabeling) {
  // The algorithm must not depend on generator id structure.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = gen::random_connected(60, 50, seed).relabeled(seed * 7);
    EXPECT_EQ(run_pebble_apsp(g).dist, seq::apsp(g)) << seed;
  }
}

TEST(PebbleApsp, AggregatesMatchOracle) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_EQ(r.diameter, seq::diameter(g)) << name;
    EXPECT_EQ(r.radius, seq::radius(g)) << name;
    EXPECT_EQ(r.ecc, seq::eccentricities(g)) << name;
    EXPECT_EQ(r.girth, seq::girth(g)) << name;
    std::vector<NodeId> ctr, per;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.is_center[v]) ctr.push_back(v);
      if (r.is_peripheral[v]) per.push_back(v);
    }
    EXPECT_EQ(ctr, seq::center(g)) << name;
    EXPECT_EQ(per, seq::peripheral_vertices(g)) << name;
  }
}

TEST(PebbleApsp, TreeCycleEvidenceMatchesClaimOne) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_EQ(r.tree_cycle_evidence, !seq::is_tree(g)) << name;
  }
}

// Theorem 1: O(n) rounds. With our constants: T1 build (<= 2 ecc + 4) +
// traversal (< 3n) + last flood (<= 2 ecc) + aggregation (~4 ecc + 4).
TEST(PebbleApsp, LinearRoundBound) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    const std::uint64_t n = g.num_nodes();
    const std::uint64_t ecc = r.leader_ecc;
    EXPECT_LE(r.stats.rounds, 3 * n + 10 * ecc + 16) << name;
  }
  for (const auto& [name, g] : testing::medium_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_LE(r.stats.rounds,
              3 * std::uint64_t{g.num_nodes()} + 10 * r.leader_ecc + 16)
        << name;
  }
}

// Lemma 1, as a checked invariant: no congestion. At most one flood message
// plus the pebble ever share a directed edge in a round, so the observed
// worst per-edge load stays within B even though the engine would allow
// multiple messages.
TEST(PebbleApsp, NoCongestion) {
  for (const auto& [name, g] : testing::medium_suite()) {
    ApspOptions opt;
    opt.aggregate = false;  // isolate the flood phase
    const ApspResult r = run_pebble_apsp(g, opt);
    EXPECT_LE(r.stats.max_edge_messages, 2u) << name;  // flood + pebble
    EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits) << name;
  }
}

TEST(PebbleApsp, WithoutAggregationStillApsp) {
  const Graph g = gen::random_connected(40, 35, 9);
  ApspOptions opt;
  opt.aggregate = false;
  const ApspResult r = run_pebble_apsp(g, opt);
  EXPECT_EQ(r.dist, seq::apsp(g));
}

TEST(PebbleApsp, SingleNode) {
  const ApspResult r = run_pebble_apsp(gen::path(1));
  EXPECT_EQ(r.dist.at(0, 0), 0u);
  EXPECT_EQ(r.diameter, 0u);
  EXPECT_EQ(r.radius, 0u);
  EXPECT_EQ(r.girth, seq::kInfGirth);
}

TEST(PebbleApsp, TwoNodes) {
  const ApspResult r = run_pebble_apsp(gen::path(2));
  EXPECT_EQ(r.dist.at(0, 1), 1u);
  EXPECT_EQ(r.diameter, 1u);
}

TEST(PebbleApsp, LeaderEccIsExact) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    EXPECT_EQ(r.leader_ecc, seq::bfs(g, 0).ecc) << name;
  }
}

TEST(PebbleApsp, DeterministicRounds) {
  const Graph g = gen::random_connected(50, 40, 21);
  const ApspResult a = run_pebble_apsp(g);
  const ApspResult b = run_pebble_apsp(g);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
}

TEST(PebbleApsp, DisconnectedThrows) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(run_pebble_apsp(g), congest::RoundLimitError);
}

// Message complexity: Algorithm 1 sends O((n + D) * m) flood messages.
TEST(PebbleApsp, MessageComplexityBound) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    const std::uint64_t n = g.num_nodes();
    const std::uint64_t m = g.num_edges();
    // Floods: <= 2m per root; tree build <= 4m + 2n; pebble <= 3n;
    // aggregation <= 6n.
    EXPECT_LE(r.stats.messages, 2 * m * n + 4 * m + 12 * n + 16) << name;
  }
}

// ---- Remark 4: routing tables --------------------------------------------

TEST(PebbleApsp, NextHopsLieOnShortestPaths) {
  for (const auto& [name, g] : testing::small_suite()) {
    const ApspResult r = run_pebble_apsp(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (u == v) {
          EXPECT_EQ(r.next_hop[v][u], kNoNextHop) << name;
          continue;
        }
        const NodeId nh = r.next_hop[v][u];
        ASSERT_NE(nh, kNoNextHop) << name << " v=" << v << " u=" << u;
        EXPECT_TRUE(g.has_edge(v, nh)) << name;
        EXPECT_EQ(r.dist.at(nh, u) + 1, r.dist.at(v, u))
            << name << " v=" << v << " u=" << u;
      }
    }
  }
}

TEST(PebbleApsp, ExtractRouteIsShortest) {
  const Graph g = gen::random_connected(50, 40, 77);
  const ApspResult r = run_pebble_apsp(g);
  for (NodeId v = 0; v < 50; v += 7) {
    for (NodeId u = 0; u < 50; u += 5) {
      const auto route = extract_route(r, v, u);
      EXPECT_EQ(route.size(), r.dist.at(v, u) + 1) << v << "->" << u;
      EXPECT_EQ(route.front(), v);
      EXPECT_EQ(route.back(), u);
      for (std::size_t i = 0; i + 1 < route.size(); ++i) {
        EXPECT_TRUE(g.has_edge(route[i], route[i + 1]));
      }
    }
  }
}

// ---- Applications (Lemmas 2-6 wrappers) ------------------------------------

TEST(Applications, DiameterRadiusCenterPeripheral) {
  const Graph g = gen::lollipop(7, 8);
  EXPECT_EQ(distributed_diameter(g).value, seq::diameter(g));
  EXPECT_EQ(distributed_radius(g).value, seq::radius(g));
  EXPECT_EQ(distributed_center(g).members, seq::center(g));
  EXPECT_EQ(distributed_peripheral(g).members, seq::peripheral_vertices(g));
  EXPECT_EQ(distributed_eccentricities(g).ecc, seq::eccentricities(g));
}

// Remark 1: the (x,2)-approximation runs in O(D) and satisfies
// D <= estimate <= 2D.
TEST(Applications, TwoApproxDiameter) {
  for (const auto& [name, g] : testing::small_suite()) {
    const PropertyRun r = distributed_diameter_2approx(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_GE(r.value, diam) << name;
    EXPECT_LE(r.value, 2 * diam) << name;
    // O(D) rounds: tree build + broadcast.
    EXPECT_LE(r.stats.rounds, 4 * std::uint64_t{diam} + 12) << name;
  }
}

// ---- Claim 1 (tree check) ---------------------------------------------------

TEST(TreeCheck, MatchesOracle) {
  for (const auto& [name, g] : testing::small_suite()) {
    const TreeCheckRun r = run_tree_check(g);
    EXPECT_EQ(r.is_tree, seq::is_tree(g)) << name;
  }
}

TEST(TreeCheck, RunsInDiameterTime) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const TreeCheckRun r = run_tree_check(g);
    const std::uint64_t diam = seq::diameter(g);
    EXPECT_LE(r.stats.rounds, 4 * diam + 12) << name;
  }
}

TEST(TreeCheck, LeaderEccReported) {
  const Graph g = gen::path(30);
  const TreeCheckRun r = run_tree_check(g);
  EXPECT_EQ(r.leader_ecc, 29u);
}

}  // namespace
}  // namespace dapsp::core
