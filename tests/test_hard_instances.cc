// Oracle verification of the lower-bound instance families (Theorems 2/6/8):
// the gadget diameters must be exactly what the construction promises, for
// many random inputs — this is what makes the lower-bound benches meaningful.
#include <gtest/gtest.h>

#include "graph/hard_instances.h"
#include "seq/properties.h"

namespace dapsp::hard {
namespace {

TEST(BitMatrix, Basics) {
  BitMatrix m(3);
  EXPECT_EQ(m.popcount(), 0u);
  m.set(0, 1);
  m.set(2, 2);
  EXPECT_TRUE(m.at(0, 1));
  EXPECT_FALSE(m.at(1, 0));
  EXPECT_EQ(m.popcount(), 2u);
  m.set(0, 1, false);
  EXPECT_EQ(m.popcount(), 1u);
  m.fill(true);
  EXPECT_EQ(m.popcount(), 9u);
}

TEST(BitMatrix, Intersects) {
  BitMatrix a(2), b(2);
  a.set(0, 0);
  b.set(1, 1);
  EXPECT_FALSE(a.intersects(b));
  b.set(0, 0);
  EXPECT_TRUE(a.intersects(b));
}

TEST(Gadget, NodeCountMatches) {
  for (std::uint32_t k : {1u, 2u, 5u}) {
    for (std::uint32_t len : {1u, 2u, 4u}) {
      BitMatrix sa(k), sb(k);
      const TwoPartyGadget g = two_party_gadget(len, sa, sb);
      EXPECT_EQ(g.graph.num_nodes(), gadget_num_nodes(k, len));
    }
  }
}

// Theorem 6 family: diameter 2 vs 3, over many random inputs.
TEST(Gadget, DiameterTwoVsThree) {
  for (std::uint32_t k : {2u, 3u, 5u, 8u}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const TwoPartyGadget g2 = diameter_2_vs_3(k, false, seed);
      EXPECT_EQ(seq::diameter(g2.graph), 2u) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(g2.expected_diameter, 2u);
      const TwoPartyGadget g3 = diameter_2_vs_3(k, true, seed);
      EXPECT_EQ(seq::diameter(g3.graph), 3u) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(g3.expected_diameter, 3u);
    }
  }
}

// The scaled gap-1 family: diameter L+1 vs L+2.
TEST(Gadget, ScaledGapOne) {
  for (std::uint32_t len : {2u, 3u, 5u}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const TwoPartyGadget far =
          random_gadget(4, len, GadgetCase::kDisjoint, seed);
      EXPECT_EQ(seq::diameter(far.graph), len + 1) << "L=" << len;
      const TwoPartyGadget near =
          random_gadget(4, len, GadgetCase::kIntersecting, seed);
      EXPECT_EQ(seq::diameter(near.graph), len + 2) << "L=" << len;
    }
  }
}

// Theorem 2 family (wide gap): diameter d vs d+2 with d = L+2 — exactly the
// paper's promise gap.
TEST(Gadget, WideGapFamily) {
  for (std::uint32_t len : {3u, 4u, 6u}) {
    for (std::uint32_t k : {2u, 4u}) {
      const TwoPartyGadget small = diameter_wide_gap(k, len, false, 77);
      EXPECT_EQ(seq::diameter(small.graph), len + 2)
          << "k=" << k << " L=" << len;
      EXPECT_EQ(small.expected_diameter, len + 2);
      const TwoPartyGadget large = diameter_wide_gap(k, len, true, 77);
      EXPECT_EQ(seq::diameter(large.graph), len + 4)
          << "k=" << k << " L=" << len;
      EXPECT_EQ(large.expected_diameter, len + 4);
    }
  }
}

// Theorem 8 family: the gadgets have girth 3 for k >= 3 (the cliques), so
// they double as the "computing all 2-BFS trees is hard" family.
TEST(Gadget, GirthThree) {
  const TwoPartyGadget g = diameter_2_vs_3(4, false, 5);
  EXPECT_EQ(seq::girth(g.graph), 3u);
}

TEST(Gadget, CutAudit) {
  const TwoPartyGadget g = diameter_2_vs_3(8, true, 1);
  EXPECT_EQ(g.cut_edge_count, 2u * 8 + 1);
  EXPECT_EQ(g.input_bits(), 64u);
  // ceil(64 / (17 * B))
  EXPECT_EQ(g.certified_min_rounds(1), (64 + 16) / 17);
  EXPECT_GE(g.certified_min_rounds(4), 1u);
}

TEST(Gadget, MaxKForNodes) {
  const std::uint32_t k = max_k_for_nodes(200, 1);
  EXPECT_GT(k, 0u);
  EXPECT_LE(gadget_num_nodes(k, 1), 200u);
  EXPECT_GT(gadget_num_nodes(k + 1, 1), 200u);
}

TEST(Gadget, IntersectingRequiresWitness) {
  // random_gadget(kIntersecting) must really produce intersecting inputs:
  // verified indirectly through the diameter, and directly here.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const TwoPartyGadget g = random_gadget(3, 1, GadgetCase::kIntersecting, seed);
    EXPECT_EQ(g.expected_diameter, 3u);
  }
}

TEST(Gadget, DegenerateKOne) {
  // k = 1: a single input bit per side still yields the right diameters.
  BitMatrix sa(1), sb(1);
  const TwoPartyGadget far = two_party_gadget(1, sa, sb);
  EXPECT_EQ(seq::diameter(far.graph), 2u);
  sa.set(0, 0);
  sb.set(0, 0);
  const TwoPartyGadget near = two_party_gadget(1, sa, sb);
  EXPECT_EQ(seq::diameter(near.graph), 3u);
}

}  // namespace
}  // namespace dapsp::hard
